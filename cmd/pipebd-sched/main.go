// Command pipebd-sched is the schedule explorer: it profiles a workload
// on a system (the paper's pre-training profiling step), prints the
// per-block execution-time table at every feasible batch split, and
// reports the schedules chosen by plain teacher relaying and by automatic
// hybrid distribution, with their estimated bottlenecks.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"pipebd/internal/hw"
	"pipebd/internal/metrics"
	"pipebd/internal/model"
	"pipebd/internal/profilegen"
	"pipebd/internal/sched"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "pipebd-sched: %v\n", err)
		os.Exit(2)
	}
}

// run parses args and writes the schedule report to stdout. Split from
// main for the smoke tests.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("pipebd-sched", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	workload := fs.String("workload", "nas-cifar10",
		"workload: nas-cifar10|nas-imagenet|compression-cifar10|compression-imagenet|transformer-tokens")
	system := fs.String("system", "a6000", "system preset: a6000|2080ti")
	batch := fs.Int("batch", 256, "global batch size")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			fmt.Fprintf(stdout, "Usage of %s:\n", fs.Name())
			fs.SetOutput(stdout)
			fs.PrintDefaults()
			return nil
		}
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if *batch <= 0 {
		return fmt.Errorf("-batch must be positive, got %d", *batch)
	}

	var w model.Workload
	switch *workload {
	case "nas-cifar10":
		w = model.NAS(false)
	case "nas-imagenet":
		w = model.NAS(true)
	case "compression-cifar10":
		w = model.Compression(false)
	case "compression-imagenet":
		w = model.Compression(true)
	case "transformer-tokens":
		w = model.TransformerDistill()
	default:
		return fmt.Errorf("unknown workload %q", *workload)
	}
	var sys hw.System
	switch *system {
	case "a6000":
		sys = hw.A6000x4()
	case "2080ti":
		sys = hw.RTX2080Tix4()
	default:
		return fmt.Errorf("unknown system %q", *system)
	}

	n := sys.NumDevices()
	prof := profilegen.Measure(w, sys.GPUs[0], *batch, n, 100)

	fmt.Fprintf(stdout, "Profile: %s on %s, global batch %d (times per step, ms)\n\n", w.Name, sys.Name, *batch)
	header := []string{"block", "T.fwd x1", "S.train x1", "x2 split", "x4 split", "student MB"}
	var rows [][]string
	for b := 0; b < prof.NumBlocks(); b++ {
		rows = append(rows, []string{
			fmt.Sprintf("B%d", b),
			fmt.Sprintf("%.2f", prof.TeacherFwd[b][0]*1e3),
			fmt.Sprintf("%.2f", (prof.StudentFwd[b][0]+prof.StudentBwd[b][0])*1e3),
			fmt.Sprintf("%.2f", prof.StepTime(b, 2)*1e3),
			fmt.Sprintf("%.2f", prof.StepTime(b, 4)*1e3),
			fmt.Sprintf("%.0f", float64(prof.StudentMem[b][0])/(1<<20)),
		})
	}
	fmt.Fprint(stdout, metrics.Table(header, rows))

	tr := sched.TRContiguous(prof, n)
	ahd := sched.AHD(prof, sys, sched.DefaultAHDConfig())
	fmt.Fprintf(stdout, "\nTR plan  : %s\n", tr.Describe())
	fmt.Fprintf(stdout, "AHD plan : %s\n", ahd.Describe())
	return nil
}
