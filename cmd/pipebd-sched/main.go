// Command pipebd-sched is the schedule explorer: it profiles a workload
// on a system (the paper's pre-training profiling step), prints the
// per-block execution-time table at every feasible batch split, and
// reports the schedules chosen by plain teacher relaying and by automatic
// hybrid distribution, with their estimated bottlenecks.
package main

import (
	"flag"
	"fmt"
	"os"

	"pipebd/internal/hw"
	"pipebd/internal/metrics"
	"pipebd/internal/model"
	"pipebd/internal/profilegen"
	"pipebd/internal/sched"
)

func main() {
	workload := flag.String("workload", "nas-cifar10",
		"workload: nas-cifar10|nas-imagenet|compression-cifar10|compression-imagenet")
	system := flag.String("system", "a6000", "system preset: a6000|2080ti")
	batch := flag.Int("batch", 256, "global batch size")
	flag.Parse()

	var w model.Workload
	switch *workload {
	case "nas-cifar10":
		w = model.NAS(false)
	case "nas-imagenet":
		w = model.NAS(true)
	case "compression-cifar10":
		w = model.Compression(false)
	case "compression-imagenet":
		w = model.Compression(true)
	default:
		fmt.Fprintf(os.Stderr, "pipebd-sched: unknown workload %q\n", *workload)
		os.Exit(2)
	}
	var sys hw.System
	switch *system {
	case "a6000":
		sys = hw.A6000x4()
	case "2080ti":
		sys = hw.RTX2080Tix4()
	default:
		fmt.Fprintf(os.Stderr, "pipebd-sched: unknown system %q\n", *system)
		os.Exit(2)
	}

	n := sys.NumDevices()
	prof := profilegen.Measure(w, sys.GPUs[0], *batch, n, 100)

	fmt.Printf("Profile: %s on %s, global batch %d (times per step, ms)\n\n", w.Name, sys.Name, *batch)
	header := []string{"block", "T.fwd x1", "S.train x1", "x2 split", "x4 split", "student MB"}
	var rows [][]string
	for b := 0; b < prof.NumBlocks(); b++ {
		rows = append(rows, []string{
			fmt.Sprintf("B%d", b),
			fmt.Sprintf("%.2f", prof.TeacherFwd[b][0]*1e3),
			fmt.Sprintf("%.2f", (prof.StudentFwd[b][0]+prof.StudentBwd[b][0])*1e3),
			fmt.Sprintf("%.2f", prof.StepTime(b, 2)*1e3),
			fmt.Sprintf("%.2f", prof.StepTime(b, 4)*1e3),
			fmt.Sprintf("%.0f", float64(prof.StudentMem[b][0])/(1<<20)),
		})
	}
	fmt.Print(metrics.Table(header, rows))

	tr := sched.TRContiguous(prof, n)
	ahd := sched.AHD(prof, sys, sched.DefaultAHDConfig())
	fmt.Printf("\nTR plan  : %s\n", tr.Describe())
	fmt.Printf("AHD plan : %s\n", ahd.Describe())
}
