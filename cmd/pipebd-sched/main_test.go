package main

import (
	"strings"
	"testing"
)

func TestRunFlagErrors(t *testing.T) {
	cases := [][]string{
		{"-workload", "mnist"}, // unknown workload
		{"-system", "tpu"},     // unknown system
		{"-batch", "0"},        // non-positive batch
		{"-batch"},             // missing value
		{"stray"},              // positional junk
	}
	for _, args := range cases {
		if err := run(args, &strings.Builder{}); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

// TestRunEndToEnd invokes the explorer once per workload family and
// checks the report's load-bearing sections are present.
func TestRunEndToEnd(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-workload", "nas-cifar10", "-system", "a6000", "-batch", "256"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	got := out.String()
	for _, want := range []string{"Profile:", "global batch 256", "TR plan", "AHD plan", "B0"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}

	out.Reset()
	if err := run([]string{"-workload", "compression-imagenet", "-system", "2080ti"}, &out); err != nil {
		t.Fatalf("run (compression): %v", err)
	}
	if !strings.Contains(out.String(), "AHD plan") {
		t.Errorf("compression output missing AHD plan:\n%s", out.String())
	}
}

// TestHelpPrintsUsage: -h must print flag documentation and succeed.
func TestHelpPrintsUsage(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-h"}, &out); err != nil {
		t.Fatalf("run(-h): %v", err)
	}
	if !strings.Contains(out.String(), "-workload") {
		t.Fatalf("-h output missing flag docs:\n%s", out.String())
	}
}
