// Command pipebd-worker hosts Pipe-BD pipeline devices for a remote
// coordinator: it listens for a coordinator connection (pipebd -cluster),
// receives a plan assignment with a model spec and parameter snapshot,
// runs the assigned devices' training loops, and streams activations,
// gradients, and losses back over the length-prefixed TCP wire protocol.
//
// Usage:
//
//	pipebd-worker -listen 127.0.0.1:7710                # serve forever
//	pipebd-worker -listen 127.0.0.1:7710 -sessions 1    # one session, then exit
//	pipebd-worker -listen 127.0.0.1:0 -backend parallel # parallel kernels
//	pipebd-worker -listen 127.0.0.1:7710 -sessions 1 -rejoin
//	  # fault-tolerant: a killed session does not consume the budget, so
//	  # the worker stays up for the coordinator's re-placement (resume)
//	  # session and exits only after serving one session to completion.
//	  # The same flag covers a coordinator crash: when the coordinator is
//	  # restarted from its ledger (pipebd -resume), the worker accepts the
//	  # re-attachment session exactly like a re-placement
//
// The bound address is printed as "pipebd-worker: listening on ADDR" so
// scripts can scrape the port when listening on :0.
//
// Observability: -trace-dir DIR records every session's per-step spans
// locally — whether or not the coordinator asked for tracing — and dumps
// each completed session as a Chrome trace JSON file in DIR. -net-stats
// prints the worker's peer data-plane byte totals when it exits (in ring
// topology that is where the activations and all-reduces actually flow).
// -debug-addr HOST:PORT serves net/http/pprof plus a plain-text /metrics
// page (sessions, device steps, per-category busy nanoseconds, peer
// transport totals) for the worker's lifetime.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"pipebd/internal/cluster"
	"pipebd/internal/cluster/transport"
	"pipebd/internal/obs"
	"pipebd/internal/tensor"
)

func main() {
	w, err := newWorker(os.Args[1:], os.Stdout)
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return // usage already printed to stdout
		}
		fmt.Fprintf(os.Stderr, "pipebd-worker: %v\n", err)
		os.Exit(2)
	}
	err = w.Serve()
	w.finish()
	if err != nil {
		fmt.Fprintf(os.Stderr, "pipebd-worker: %v\n", err)
		os.Exit(1)
	}
}

// workerApp is the worker plus the observability teardown main runs after
// Serve returns: print the peer-meter totals, stop the debug listener.
type workerApp struct {
	*cluster.Worker
	finish func()
}

// newWorker parses flags, applies the backend choice, binds the listener,
// and returns the ready-to-Serve worker. Split from main for the smoke
// tests.
func newWorker(args []string, stdout io.Writer) (*workerApp, error) {
	fs := flag.NewFlagSet("pipebd-worker", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	listen := fs.String("listen", "127.0.0.1:7710", "TCP address to listen on (host:port; :0 picks a free port)")
	sessions := fs.Int("sessions", 0, "coordinator sessions to serve before exiting (0: forever)")
	rejoin := fs.Bool("rejoin", false, "only count successful sessions toward -sessions, so the worker survives dropped sessions and re-joins the coordinator's recovery")
	backend := fs.String("backend", "", "process-default tensor backend: "+strings.Join(tensor.Backends(), "|")+" (coordinator may override per session)")
	workers := fs.Int("workers", 0, "parallel-backend worker count (0: GOMAXPROCS)")
	slowdown := fs.Int("slowdown", 1, "throttle this worker's compute by the given factor (sleep (N-1)x each kernel's duration) — a bit-identical straggler for exercising -repartition; 1 disables")
	quiet := fs.Bool("quiet", false, "suppress per-session progress output")
	peerTimeout := fs.Duration("peer-timeout", 5*time.Second, "ring mode: how long to hold a slot open for each expected inbound peer connection while the mesh forms")
	meshTimeout := fs.Duration("mesh-timeout", 10*time.Second, "ring mode: overall deadline for establishing the full peer mesh")
	traceDir := fs.String("trace-dir", "", "trace every session's spans locally and dump each completed session as a Chrome trace JSON file in this directory")
	netStats := fs.Bool("net-stats", false, "print the peer data-plane byte/frame totals when the worker exits")
	debugAddr := fs.String("debug-addr", "", "serve net/http/pprof and a plain-text /metrics page on this address for the worker's lifetime")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			fmt.Fprintf(stdout, "Usage of %s:\n", fs.Name())
			fs.SetOutput(stdout)
			fs.PrintDefaults()
		}
		return nil, err
	}
	if fs.NArg() > 0 {
		return nil, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if *sessions < 0 {
		return nil, fmt.Errorf("-sessions must be >= 0, got %d", *sessions)
	}
	if *workers < 0 {
		return nil, fmt.Errorf("-workers must be >= 0, got %d", *workers)
	}
	if *workers > 0 && *backend != "" && *backend != "parallel" {
		return nil, fmt.Errorf("-workers only applies to -backend parallel (got -backend %s)", *backend)
	}
	if *workers > 0 {
		tensor.SetDefault(tensor.NewParallel(*workers))
	} else if *backend != "" {
		be, ok := tensor.Lookup(*backend)
		if !ok {
			return nil, fmt.Errorf("unknown backend %q (want %s)", *backend, strings.Join(tensor.Backends(), " or "))
		}
		tensor.SetDefault(be)
	}

	lis, err := transport.TCP{}.Listen(*listen)
	if err != nil {
		return nil, err
	}
	counters := obs.NewMetrics()
	// Ring-topology sessions (pipebd -topology ring) need the worker to
	// dial its pipeline peers directly; hub sessions ignore Dial. The
	// meter wraps that dial network, so its totals are exactly the peer
	// data plane: activations relayed onward and all-reduce segments.
	var peerDial transport.Network = transport.TCP{}
	var peerMeter *transport.Meter
	if *netStats || *debugAddr != "" {
		peerMeter = transport.NewMeter(peerDial)
		peerDial = peerMeter
	}
	if *peerTimeout <= 0 || *meshTimeout <= 0 {
		lis.Close()
		return nil, fmt.Errorf("-peer-timeout and -mesh-timeout must be positive (got %v, %v)", *peerTimeout, *meshTimeout)
	}
	cfg := cluster.WorkerConfig{Sessions: *sessions, Rejoin: *rejoin, Dial: peerDial,
		TraceDir: *traceDir, Metrics: counters,
		PeerTimeout: *peerTimeout, MeshTimeout: *meshTimeout}
	if *slowdown < 1 {
		lis.Close()
		return nil, fmt.Errorf("-slowdown must be >= 1, got %d", *slowdown)
	}
	if *slowdown > 1 {
		// Throttling wraps the process default (which -backend/-workers
		// already set above) and overrides any per-session backend choice:
		// this worker models a uniformly slower machine.
		cfg.Backend = tensor.NewThrottled(tensor.Default(), *slowdown)
		fmt.Fprintf(stdout, "pipebd-worker: compute throttled %dx (straggler mode)\n", *slowdown)
	}
	if !*quiet {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(stdout, "pipebd-worker: "+format+"\n", args...)
		}
	}
	var debug *obs.DebugServer
	if *debugAddr != "" {
		debug, err = obs.StartDebugServer(*debugAddr, func(w io.Writer) {
			counters.Render(w)
			writeMeterTotals(w, "peer data plane", peerMeter.Totals())
		})
		if err != nil {
			lis.Close()
			return nil, err
		}
		fmt.Fprintf(stdout, "pipebd-worker: debug server on http://%s (/metrics, /debug/pprof/)\n", debug.Addr())
	}
	w := cluster.NewWorker(lis, cfg)
	fmt.Fprintf(stdout, "pipebd-worker: listening on %s\n", w.Addr())
	finish := func() {
		if *netStats && peerMeter != nil {
			writeMeterTotals(stdout, "pipebd-worker: net: peer data plane", peerMeter.Totals())
		}
		if debug != nil {
			debug.Close()
		}
	}
	return &workerApp{Worker: w, finish: finish}, nil
}

// writeMeterTotals prints one transport.Meter's totals on a single line.
func writeMeterTotals(w io.Writer, role string, t transport.Totals) {
	fmt.Fprintf(w, "%s: sent %d B / %d frame(s), received %d B / %d frame(s)\n",
		role, t.SentBytes, t.SentFrames, t.RecvBytes, t.RecvFrames)
}
