// Command pipebd-worker hosts Pipe-BD pipeline devices for a remote
// coordinator: it listens for a coordinator connection (pipebd -cluster),
// receives a plan assignment with a model spec and parameter snapshot,
// runs the assigned devices' training loops, and streams activations,
// gradients, and losses back over the length-prefixed TCP wire protocol.
//
// Usage:
//
//	pipebd-worker -listen 127.0.0.1:7710                # serve forever
//	pipebd-worker -listen 127.0.0.1:7710 -sessions 1    # one session, then exit
//	pipebd-worker -listen 127.0.0.1:0 -backend parallel # parallel kernels
//	pipebd-worker -listen 127.0.0.1:7710 -sessions 1 -rejoin
//	  # fault-tolerant: a killed session does not consume the budget, so
//	  # the worker stays up for the coordinator's re-placement (resume)
//	  # session and exits only after serving one session to completion.
//	  # The same flag covers a coordinator crash: when the coordinator is
//	  # restarted from its ledger (pipebd -resume), the worker accepts the
//	  # re-attachment session exactly like a re-placement
//
// The bound address is printed as "pipebd-worker: listening on ADDR" so
// scripts can scrape the port when listening on :0.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"pipebd/internal/cluster"
	"pipebd/internal/cluster/transport"
	"pipebd/internal/tensor"
)

func main() {
	w, err := newWorker(os.Args[1:], os.Stdout)
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return // usage already printed to stdout
		}
		fmt.Fprintf(os.Stderr, "pipebd-worker: %v\n", err)
		os.Exit(2)
	}
	if err := w.Serve(); err != nil {
		fmt.Fprintf(os.Stderr, "pipebd-worker: %v\n", err)
		os.Exit(1)
	}
}

// newWorker parses flags, applies the backend choice, binds the listener,
// and returns the ready-to-Serve worker. Split from main for the smoke
// tests.
func newWorker(args []string, stdout io.Writer) (*cluster.Worker, error) {
	fs := flag.NewFlagSet("pipebd-worker", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	listen := fs.String("listen", "127.0.0.1:7710", "TCP address to listen on (host:port; :0 picks a free port)")
	sessions := fs.Int("sessions", 0, "coordinator sessions to serve before exiting (0: forever)")
	rejoin := fs.Bool("rejoin", false, "only count successful sessions toward -sessions, so the worker survives dropped sessions and re-joins the coordinator's recovery")
	backend := fs.String("backend", "", "process-default tensor backend: "+strings.Join(tensor.Backends(), "|")+" (coordinator may override per session)")
	workers := fs.Int("workers", 0, "parallel-backend worker count (0: GOMAXPROCS)")
	quiet := fs.Bool("quiet", false, "suppress per-session progress output")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			fmt.Fprintf(stdout, "Usage of %s:\n", fs.Name())
			fs.SetOutput(stdout)
			fs.PrintDefaults()
		}
		return nil, err
	}
	if fs.NArg() > 0 {
		return nil, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if *sessions < 0 {
		return nil, fmt.Errorf("-sessions must be >= 0, got %d", *sessions)
	}
	if *workers < 0 {
		return nil, fmt.Errorf("-workers must be >= 0, got %d", *workers)
	}
	if *workers > 0 && *backend != "" && *backend != "parallel" {
		return nil, fmt.Errorf("-workers only applies to -backend parallel (got -backend %s)", *backend)
	}
	if *workers > 0 {
		tensor.SetDefault(tensor.NewParallel(*workers))
	} else if *backend != "" {
		be, ok := tensor.Lookup(*backend)
		if !ok {
			return nil, fmt.Errorf("unknown backend %q (want %s)", *backend, strings.Join(tensor.Backends(), " or "))
		}
		tensor.SetDefault(be)
	}

	lis, err := transport.TCP{}.Listen(*listen)
	if err != nil {
		return nil, err
	}
	// Ring-topology sessions (pipebd -topology ring) need the worker to
	// dial its pipeline peers directly; hub sessions ignore Dial.
	cfg := cluster.WorkerConfig{Sessions: *sessions, Rejoin: *rejoin, Dial: transport.TCP{}}
	if !*quiet {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(stdout, "pipebd-worker: "+format+"\n", args...)
		}
	}
	w := cluster.NewWorker(lis, cfg)
	fmt.Fprintf(stdout, "pipebd-worker: listening on %s\n", w.Addr())
	return w, nil
}
