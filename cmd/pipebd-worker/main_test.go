package main

import (
	"errors"
	"flag"
	"io"
	"math/rand"
	"net/http"
	"path/filepath"
	"strings"
	"testing"

	"pipebd/internal/cluster"
	"pipebd/internal/cluster/transport"
	"pipebd/internal/dataset"
	"pipebd/internal/distill"
	"pipebd/internal/sched"
)

func TestNewWorkerFlagErrors(t *testing.T) {
	cases := [][]string{
		{"-listen"},                             // missing value
		{"-sessions", "-1"},                     // negative sessions
		{"-workers", "-2"},                      // negative pool
		{"-workers", "4", "-backend", "serial"}, // pool without parallel backend
		{"-backend", "cuda"},                    // unknown backend
		{"extra-arg"},                           // positional junk
		{"-listen", "notaport"},                 // unbindable address
	}
	for _, args := range cases {
		if w, err := newWorker(args, &strings.Builder{}); err == nil {
			w.Close()
			t.Errorf("newWorker(%v) succeeded, want error", args)
		}
	}
}

func trainOnce(t *testing.T, net transport.Network, addr string) {
	t.Helper()
	tiny := distill.DefaultTinyConfig()
	data := dataset.NewRandom(rand.New(rand.NewSource(7)), 2*8, 3, tiny.Height, tiny.Width, 4)
	w := distill.NewTinyWorkbench(tiny)
	plan := sched.Plan{Name: "tr", Groups: []sched.Group{
		{Devices: []int{0}, Blocks: []int{0, 1}},
		{Devices: []int{1}, Blocks: []int{2, 3}},
	}}
	res, err := cluster.Run(net, []string{addr}, w, data.Batches(8),
		cluster.Config{Plan: plan, DPU: true, LR: 0.05, Momentum: 0.9, Spec: cluster.TinySpec(tiny)})
	if err != nil {
		t.Fatalf("cluster run against worker: %v", err)
	}
	if len(res.Loss) != 4 || len(res.Loss[0]) != 2 {
		t.Fatalf("unexpected trajectory shape: %d blocks x %d steps", len(res.Loss), len(res.Loss[0]))
	}
	for b, row := range res.Loss {
		for s, l := range row {
			if !(l > 0) {
				t.Fatalf("block %d step %d loss %v, want > 0", b, s, l)
			}
		}
	}
}

// TestWorkerEndToEndTCP boots the binary's worker (flag parsing included)
// on an ephemeral TCP port and trains one session against it.
func TestWorkerEndToEndTCP(t *testing.T) {
	var out strings.Builder
	w, err := newWorker([]string{"-listen", "127.0.0.1:0", "-sessions", "1", "-quiet"}, &out)
	if err != nil {
		t.Fatalf("newWorker: %v", err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- w.Serve() }()
	defer w.Close()

	if !strings.Contains(out.String(), "listening on "+w.Addr()) {
		t.Fatalf("startup banner missing address: %q", out.String())
	}
	trainOnce(t, transport.TCP{}, w.Addr())
	if err := <-serveDone; err != nil {
		t.Fatalf("Serve: %v", err)
	}
}

// TestWorkerLoopbackSmoke runs the same worker server the binary wraps
// over the in-memory loopback transport: one session, no sockets.
func TestWorkerLoopbackSmoke(t *testing.T) {
	net := transport.NewLoopback()
	lis, err := net.Listen("")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	w := cluster.NewWorker(lis, cluster.WorkerConfig{Sessions: 1})
	serveDone := make(chan error, 1)
	go func() { serveDone <- w.Serve() }()
	defer w.Close()

	trainOnce(t, net, w.Addr())
	if err := <-serveDone; err != nil {
		t.Fatalf("Serve: %v", err)
	}
}

// TestWorkerObservabilityFlags drives the binary's worker with every
// observability flag at once: a ring session against it must leave a
// Chrome trace dump in -trace-dir, the -debug-addr /metrics page must
// serve the session counters, and -net-stats must print the peer
// data-plane totals at exit (a single-worker ring still dials its peer
// mesh over TCP, so the meter sees real traffic).
func TestWorkerObservabilityFlags(t *testing.T) {
	dir := t.TempDir()
	var out strings.Builder
	w, err := newWorker([]string{"-listen", "127.0.0.1:0", "-sessions", "1", "-quiet",
		"-trace-dir", dir, "-net-stats", "-debug-addr", "127.0.0.1:0"}, &out)
	if err != nil {
		t.Fatalf("newWorker: %v", err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- w.Serve() }()
	defer w.Close()

	tiny := distill.DefaultTinyConfig()
	data := dataset.NewRandom(rand.New(rand.NewSource(7)), 2*8, 3, tiny.Height, tiny.Width, 4)
	bench := distill.NewTinyWorkbench(tiny)
	plan := sched.Plan{Name: "hybrid", Groups: []sched.Group{
		{Devices: []int{0, 1}, Blocks: []int{0, 1}},
		{Devices: []int{2}, Blocks: []int{2, 3}},
	}}
	if _, err := cluster.Run(transport.TCP{}, []string{w.Addr()}, bench, data.Batches(8),
		cluster.Config{Plan: plan, DPU: true, LR: 0.05, Momentum: 0.9, Topology: "ring",
			Spec: cluster.TinySpec(tiny)}); err != nil {
		t.Fatalf("ring run against observed worker: %v", err)
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("Serve: %v", err)
	}

	files, _ := filepath.Glob(filepath.Join(dir, "trace-*.json"))
	if len(files) != 1 {
		t.Fatalf("want one trace dump in %s, got %v", dir, files)
	}

	// The debug server outlives Serve until finish(); scrape /metrics now.
	banner := out.String()
	i := strings.Index(banner, "debug server on http://")
	if i < 0 {
		t.Fatalf("debug banner missing:\n%s", banner)
	}
	addr := banner[i+len("debug server on http://"):]
	addr = addr[:strings.IndexByte(addr, ' ')]
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"sessions_completed 1", "device_steps", "busy_student_bwd_ns", "peer data plane: sent"} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}

	w.finish()
	if !strings.Contains(out.String(), "net: peer data plane: sent") {
		t.Fatalf("-net-stats totals missing at exit:\n%s", out.String())
	}
}

// TestHelpPrintsUsage: -h must print flag documentation and surface
// flag.ErrHelp (main exits 0 on it).
func TestHelpPrintsUsage(t *testing.T) {
	var out strings.Builder
	_, err := newWorker([]string{"-h"}, &out)
	if !errors.Is(err, flag.ErrHelp) {
		t.Fatalf("newWorker(-h): got %v, want flag.ErrHelp", err)
	}
	if !strings.Contains(out.String(), "-listen") {
		t.Fatalf("-h output missing flag docs:\n%s", out.String())
	}
}
