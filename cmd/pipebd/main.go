// Command pipebd regenerates the tables and figures of "Pipe-BD:
// Pipelined Parallel Blockwise Distillation" (DATE 2023) on the analytic
// multi-GPU simulator.
//
// Usage:
//
//	pipebd -exp fig4                 # one experiment
//	pipebd -exp all                  # everything
//	pipebd -exp fig4 -system 2080ti  # alternative hardware
//	pipebd -exp table2 -quick        # truncated epochs, skip accuracy proxy
//	pipebd -exp table2 -backend parallel            # multi-core numeric engine
//	pipebd -exp table2 -backend parallel -workers 8 # explicit pool size
//
// Cluster mode trains the numeric workbench across pipebd-worker
// processes instead of running experiments:
//
//	pipebd -cluster 127.0.0.1:7710,127.0.0.1:7711 -cluster-plan hybrid
//	pipebd -cluster 127.0.0.1:7710 -cluster-plan tr -verify
//	pipebd -cluster 127.0.0.1:7710,127.0.0.1:7711 \
//	    -max-restarts 2 -chaos-kills 1 -chaos-seed 7 -verify
//
// -verify re-runs the same schedule in-process and requires the cluster's
// loss trajectory and trained weights to match bit-for-bit.
//
// -topology selects the cluster data plane. The default "ring" moves
// forwarded activations and gradient all-reduces directly between the
// workers over peer-to-peer connections, demoting the coordinator to a
// control plane (placement, batch feed, loss collection, the step
// barrier, snapshots); "hub" routes every tensor through the
// coordinator. Both topologies are bit-identical to the in-process
// pipeline — and therefore to each other.
//
// -max-restarts N enables fault tolerance: when a worker connection dies
// (or goes silent past -cluster-heartbeat), the coordinator re-places its
// devices on a surviving or re-joined worker, restores their per-step
// snapshots, and replays — the result stays bit-identical, which the
// chaos flags prove by injecting seeded kills under -verify.
//
// -retry-budget D adds a cheaper tier below restarts: a broken worker or
// peer link first tries to reconnect (exponential backoff from
// -retry-backoff) and replay its missed frames, absorbing transient
// flaps without touching the restart budget; a peer link that stays down
// past the budget while its workers remain alive is degraded to hub
// relay through the coordinator instead of cutting the run. Self-test
// with -chaos-flaps N (seeded transient breaks) and -chaos-partition D
// (a healing blackhole the reconnect loop must outlast) under -verify.
//
// -ledger DIR makes the run durable: the coordinator persists a manifest
// and an append-only record of its recovery state, so the coordinator
// process itself can be killed and restarted:
//
//	pipebd -cluster 127.0.0.1:7710,127.0.0.1:7711 -ledger /tmp/run1
//	# ... pipebd dies mid-run (crash, OOM, kill -9) ...
//	pipebd -resume /tmp/run1 -verify
//
// The resumed run re-attaches the workers (start them with -rejoin so a
// dropped session does not consume their budget), replays from the
// persisted snapshots, and finishes bit-identical to an uninterrupted
// run. -snapshot-interval k trades snapshot traffic for replay length
// (snapshot every k-th step); -snapshot-dedup ships one snapshot per
// split group instead of one per member.
//
// -compact-ledger DIR rewrites a ledger's append-only record log as one
// checkpoint record per plan generation holding only what a resume still
// needs, bounding the log's growth; a compacted ledger — including one a
// mid-run repartition split into generations — resumes bit-identically.
//
// Observability (cluster mode): -trace-out run.json makes every worker
// record per-step spans (teacher/student forward, backward, update,
// all-reduce phases, peer sends and ack waits, snapshot writes) and ship
// them to the coordinator at step boundaries; the collected timeline is
// written as Chrome trace-event JSON (load it in chrome://tracing or
// https://ui.perfetto.dev) and summarized as a measured utilization
// report printed side-by-side with the cost model's prediction of the
// same schedule. -net-stats prints the coordinator's transport byte
// totals even with tracing off; -debug-addr HOST:PORT serves
// net/http/pprof plus a plain-text /metrics page (steps completed,
// recoveries, snapshots, ledger records/bytes, transport totals) for the
// duration of the run. Tracing is off unless asked for and costs nothing
// when disabled.
//
// The -backend flag selects the tensor compute backend for every numeric
// (real float32 training) portion of the experiments: "serial" is the
// single-threaded reference, "parallel" row-partitions GEMMs across a
// bounded worker pool sized by GOMAXPROCS (override with -workers N).
// Backends are bit-identical by contract, so results never depend on the
// choice — only wall-clock does.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"pipebd/internal/cluster"
	"pipebd/internal/cluster/ledger"
	"pipebd/internal/experiments"
	"pipebd/internal/hw"
	"pipebd/internal/tensor"
)

func main() {
	exp := flag.String("exp", "all", "experiment: fig2|fig4|fig5|fig6|fig7|table1|table2|all")
	system := flag.String("system", "a6000", "system preset: a6000|2080ti")
	batch := flag.Int("batch", 256, "global batch size")
	quick := flag.Bool("quick", false, "truncate epochs to 40 steps and skip the accuracy proxy")
	chart := flag.Bool("chart", false, "append ASCII charts to figure output")
	asJSON := flag.Bool("json", false, "emit machine-readable JSON instead of tables")
	backend := flag.String("backend", "serial", "tensor compute backend: "+strings.Join(tensor.Backends(), "|"))
	workers := flag.Int("workers", 0, "parallel-backend worker count (0: GOMAXPROCS)")
	clusterAddrs := flag.String("cluster", "", "comma-separated pipebd-worker addresses; enables cluster training mode")
	clusterPlanName := flag.String("cluster-plan", "hybrid", "cluster schedule: tr|tr3|hybrid|ir|dp3")
	clusterModel := flag.String("cluster-model", "tiny", "cluster workload: tiny (conv compression workbench) or transformer (encoder blocks with KL logit distillation)")
	clusterSteps := flag.Int("cluster-steps", 6, "cluster training steps")
	clusterBatch := flag.Int("cluster-batch", 8, "cluster global batch size")
	clusterDPU := flag.Bool("cluster-dpu", true, "decoupled parameter update in cluster mode")
	clusterTopology := flag.String("topology", "ring", "cluster data plane: ring (activations and all-reduce travel worker-to-worker; coordinator is control plane only) or hub (all traffic through the coordinator)")
	clusterTimeout := flag.Duration("cluster-timeout", 10*time.Second, "per-worker join timeout in cluster mode")
	maxRestarts := flag.Int("max-restarts", 0, "cluster mode: recover up to N dead workers by re-placing their devices and replaying from snapshots (0: a lost worker fails the run); with -resume, 0 reuses the manifest's budget and a negative value disables worker recovery")
	clusterHeartbeat := flag.Duration("cluster-heartbeat", 0, "cluster mode: worker heartbeat interval; a worker silent for 4 intervals is declared dead (0: disable silence detection)")
	retryBackoff := flag.Duration("retry-backoff", 10*time.Millisecond, "cluster mode: initial reconnect backoff of a -retry-budget link, doubling per attempt")
	retryBudget := flag.Duration("retry-budget", 0, "cluster mode: transient-fault absorption — a broken worker or peer link reconnects with exponential backoff and replays its missed frames for up to this long before the failure escalates (0: links fail on first break, classic behavior)")
	ledgerDir := flag.String("ledger", "", "cluster mode: persist the coordinator's run state under this directory so a killed pipebd can restart with -resume")
	snapInterval := flag.Int("snapshot-interval", 0, "cluster mode: device snapshot interval k — snapshot every k-th step (0: every step when fault tolerance is on)")
	snapDedup := flag.Bool("snapshot-dedup", false, "cluster mode: ship one snapshot per split group (rank 0) instead of one per member")
	fsync := flag.String("fsync", "none", "ledger record-log durability tier: none (page cache only — survives process death), interval[:N] (fsync every N records, default 64), or always (fsync every record); needs -ledger or -resume")
	repartition := flag.Bool("repartition", false, "cluster mode: rebalance the pipeline placement mid-run from measured span timings — when observed per-block step times predict a better contiguous split, cut at a step boundary and re-place (weights stay bit-identical; needs an all-unsplit plan such as tr or ir)")
	repartitionThreshold := flag.Float64("repartition-threshold", 0.1, "minimum predicted relative step-time improvement before a repartition executes (0.1 = 10%)")
	repartitionHysteresis := flag.Int("repartition-hysteresis", 3, "consecutive qualifying measurements required before a repartition executes")
	repartitionWarmup := flag.Int("repartition-warmup", 3, "measured steps per device before repartition proposals are evaluated")
	resumeDir := flag.String("resume", "", "restart a killed coordinator from this ledger directory (plan, model, batches, and workers come from the manifest; -cluster overrides the worker addresses; explicitly-set -cluster-plan/-topology/-cluster-steps become checked expectations against the manifest)")
	compactDir := flag.String("compact-ledger", "", "rewrite this ledger directory's record log as one checkpoint per plan generation holding only what a resume still needs, then exit")
	chaosKills := flag.Int("chaos-kills", 0, "cluster mode: inject N seeded worker-connection kills mid-run (self-test for -max-restarts; combine with -verify)")
	chaosSeed := flag.Int64("chaos-seed", 1, "cluster mode: seed for the -chaos-kills and -chaos-flaps schedules")
	chaosFlaps := flag.Int("chaos-flaps", 0, "cluster mode: inject N seeded transient link flaps mid-run (self-test for -retry-budget; combine with -verify)")
	chaosPartition := flag.Duration("chaos-partition", 0, "cluster mode: inject one healing partition — a link breaks and its address stays unreachable for this duration, so the reconnect loop must back off until it heals (needs -retry-budget > the partition)")
	verify := flag.Bool("verify", false, "cluster mode: require bit-identical match with the in-process pipeline")
	traceOut := flag.String("trace-out", "", "cluster mode: trace every device's per-step spans, write a Chrome trace-event JSON file here (open in chrome://tracing or Perfetto), and print the measured-vs-modeled utilization report")
	netStats := flag.Bool("net-stats", false, "cluster mode: print the coordinator's transport byte/frame totals at run end")
	debugAddr := flag.String("debug-addr", "", "cluster mode: serve net/http/pprof and a plain-text /metrics page on this address for the duration of the run")
	flag.Parse()

	if *workers < 0 {
		fmt.Fprintf(os.Stderr, "pipebd: -workers must be >= 0, got %d\n", *workers)
		os.Exit(2)
	}
	if *workers > 0 && *backend != "parallel" {
		fmt.Fprintf(os.Stderr, "pipebd: -workers only applies to -backend parallel (got -backend %s)\n", *backend)
		os.Exit(2)
	}
	if *workers > 0 {
		tensor.SetDefault(tensor.NewParallel(*workers))
	} else if be, ok := tensor.Lookup(*backend); ok {
		tensor.SetDefault(be)
	} else {
		fmt.Fprintf(os.Stderr, "pipebd: unknown backend %q (want %s)\n", *backend, strings.Join(tensor.Backends(), " or "))
		os.Exit(2)
	}

	if *clusterAddrs == "" {
		for flagName, set := range map[string]bool{
			"-trace-out":  *traceOut != "",
			"-net-stats":  *netStats,
			"-debug-addr": *debugAddr != "",
		} {
			if set {
				fmt.Fprintf(os.Stderr, "pipebd: %s requires -cluster\n", flagName)
				os.Exit(2)
			}
		}
	}
	if *clusterAddrs == "" && *resumeDir == "" {
		for flagName, set := range map[string]bool{
			"-repartition": *repartition,
			"-fsync":       *fsync != "none",
		} {
			if set {
				fmt.Fprintf(os.Stderr, "pipebd: %s requires -cluster or -resume\n", flagName)
				os.Exit(2)
			}
		}
	}
	fsyncPolicy, err := ledger.ParseSyncPolicy(*fsync)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pipebd: %v\n", err)
		os.Exit(2)
	}
	repartCfg := cluster.RepartitionConfig{
		Enabled:    *repartition,
		Threshold:  *repartitionThreshold,
		Hysteresis: *repartitionHysteresis,
		Warmup:     *repartitionWarmup,
	}
	// Flags set explicitly on the command line, as opposed to resting at
	// their defaults: a -resume alongside e.g. -cluster-plan tr means the
	// user *expects* the ledger to hold that plan, and a silent mismatch
	// would resume a different run than intended.
	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })

	if *compactDir != "" {
		if err := ledger.Compact(*compactDir); err != nil {
			fmt.Fprintf(os.Stderr, "pipebd: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("pipebd: compacted ledger %s (resume with: pipebd -resume %s)\n", *compactDir, *compactDir)
		return
	}

	if *resumeDir != "" {
		opts := resumeOptions{
			Dir:         *resumeDir,
			Timeout:     *clusterTimeout,
			MaxRestarts: *maxRestarts,
			Heartbeat:   *clusterHeartbeat,
			Verify:      *verify,
			Fsync:       fsyncPolicy,
			Repartition: repartCfg,
		}
		if *clusterAddrs != "" {
			opts.Workers = strings.Split(*clusterAddrs, ",")
		}
		if explicit["cluster-plan"] || explicit["topology"] || explicit["cluster-steps"] || explicit["cluster-model"] {
			opts.Expect = &cluster.ResumeExpectation{}
			if explicit["cluster-plan"] {
				opts.Expect.PlanName = *clusterPlanName
			}
			if explicit["topology"] {
				opts.Expect.Topology = *clusterTopology
			}
			if explicit["cluster-steps"] {
				opts.Expect.Steps = *clusterSteps
			}
			if explicit["cluster-model"] {
				opts.Expect.Model = *clusterModel
			}
		}
		if err := runResume(os.Stdout, opts); err != nil {
			fmt.Fprintf(os.Stderr, "pipebd: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *clusterAddrs != "" {
		opts := clusterOptions{
			Workers:      strings.Split(*clusterAddrs, ","),
			PlanName:     *clusterPlanName,
			Model:        *clusterModel,
			Steps:        *clusterSteps,
			Batch:        *clusterBatch,
			DPU:          *clusterDPU,
			Topology:     *clusterTopology,
			Timeout:      *clusterTimeout,
			Verify:       *verify,
			MaxRestarts:  *maxRestarts,
			Heartbeat:    *clusterHeartbeat,
			Ledger:       *ledgerDir,
			SnapInterval: *snapInterval,
			SnapDedup:    *snapDedup,
			ChaosKills:   *chaosKills,
			ChaosSeed:    *chaosSeed,
			ChaosFlaps:   *chaosFlaps,
			ChaosPart:    *chaosPartition,
			RetryBackoff: *retryBackoff,
			RetryBudget:  *retryBudget,
			TraceOut:     *traceOut,
			NetStats:     *netStats,
			DebugAddr:    *debugAddr,
			Fsync:        fsyncPolicy,
			Repartition:  repartCfg,
		}
		if *backend != "serial" {
			opts.Backend = *backend
		}
		if err := runCluster(os.Stdout, opts); err != nil {
			fmt.Fprintf(os.Stderr, "pipebd: %v\n", err)
			os.Exit(1)
		}
		return
	}

	var sys hw.System
	switch *system {
	case "a6000":
		sys = hw.A6000x4()
	case "2080ti":
		sys = hw.RTX2080Tix4()
	default:
		fmt.Fprintf(os.Stderr, "pipebd: unknown system %q (want a6000 or 2080ti)\n", *system)
		os.Exit(2)
	}

	opts := experiments.Options{Batch: *batch}
	if *quick {
		opts.MaxSteps = 40
	}

	run := func(name string) bool { return *exp == name || *exp == "all" }
	jsonOut := map[string]any{}
	any := false
	if run("table1") {
		if !*asJSON {
			fmt.Println(experiments.Table1())
		}
		any = true
	}
	if run("fig2") {
		rows := experiments.Fig2(sys, opts)
		if *asJSON {
			jsonOut["fig2"] = rows
		} else {
			fmt.Println(experiments.FormatFig2(rows))
			if *chart {
				fmt.Println(experiments.ChartFig2(rows))
			}
		}
		any = true
	}
	if run("fig4") {
		rows := experiments.Fig4(sys, opts)
		if *asJSON {
			jsonOut["fig4"] = rows
		} else {
			fmt.Println(experiments.FormatFig4(rows))
			if *chart {
				fmt.Println(experiments.ChartFig4(rows))
			}
		}
		any = true
	}
	if run("fig5") {
		res := experiments.Fig5(opts)
		if *asJSON {
			jsonOut["fig5"] = res.Rows
		} else {
			fmt.Println(experiments.FormatFig5(res))
		}
		any = true
	}
	if run("fig6") {
		rows := experiments.Fig6(sys, opts)
		if *asJSON {
			jsonOut["fig6"] = rows
		} else {
			fmt.Println(experiments.FormatFig6(rows))
			if *chart {
				fmt.Println(experiments.ChartFig6(rows))
			}
		}
		any = true
	}
	if run("fig7") {
		rows := experiments.Fig7(sys, opts)
		if *asJSON {
			jsonOut["fig7"] = rows
		} else {
			fmt.Println(experiments.FormatFig7(rows))
			if *chart {
				fmt.Println(experiments.ChartFig7(rows))
			}
		}
		any = true
	}
	if run("table2") {
		rows := experiments.Table2(sys, opts, *quick)
		if *asJSON {
			jsonOut["table2"] = rows
		} else {
			fmt.Println(experiments.FormatTable2(rows))
		}
		any = true
	}
	if !any {
		fmt.Fprintf(os.Stderr, "pipebd: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(jsonOut); err != nil {
			fmt.Fprintf(os.Stderr, "pipebd: %v\n", err)
			os.Exit(1)
		}
	}
}
