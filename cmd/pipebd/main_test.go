package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"pipebd/internal/cluster"
	"pipebd/internal/cluster/transport"
)

// TestClusterOptionsValidate pins the flag-combination checks of cluster
// mode, including the new snapshot-policy flags.
func TestClusterOptionsValidate(t *testing.T) {
	good := clusterOptions{Workers: []string{"w"}, PlanName: "hybrid", Steps: 4, Batch: 8}
	if err := good.validate(); err != nil {
		t.Fatalf("good options rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*clusterOptions)
		want string
	}{
		{"no workers", func(o *clusterOptions) { o.Workers = nil }, "worker"},
		{"zero steps", func(o *clusterOptions) { o.Steps = 0 }, "positive"},
		{"zero batch", func(o *clusterOptions) { o.Batch = 0 }, "positive"},
		{"negative interval", func(o *clusterOptions) { o.MaxRestarts = 1; o.SnapInterval = -1 }, "snapshot-interval"},
		{"policy without recovery", func(o *clusterOptions) { o.SnapInterval = 3 }, "max-restarts or -ledger"},
		{"dedup without recovery", func(o *clusterOptions) { o.SnapDedup = true }, "max-restarts or -ledger"},
		{"chaos beyond budget", func(o *clusterOptions) { o.ChaosKills = 2; o.MaxRestarts = 1 }, "chaos-kills"},
	}
	for _, c := range cases {
		o := good
		c.mut(&o)
		err := o.validate()
		if err == nil {
			t.Errorf("%s: validate succeeded", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}

	// Policy flags become valid once a recovery mechanism is configured.
	o := good
	o.SnapInterval, o.SnapDedup, o.MaxRestarts = 3, true, 1
	if err := o.validate(); err != nil {
		t.Fatalf("policy with -max-restarts rejected: %v", err)
	}
	o = good
	o.SnapInterval, o.Ledger = 3, "/tmp/led"
	if err := o.validate(); err != nil {
		t.Fatalf("policy with -ledger rejected: %v", err)
	}
}

// TestRunResumeBadLedgerDir: -resume against a missing or empty directory
// must fail with a clean error, not hang dialing workers.
func TestRunResumeBadLedgerDir(t *testing.T) {
	var out strings.Builder
	if err := runResume(&out, resumeOptions{}); err == nil || !strings.Contains(err.Error(), "ledger directory") {
		t.Fatalf("empty dir: got %v", err)
	}
	err := runResume(&out, resumeOptions{Dir: filepath.Join(t.TempDir(), "absent")})
	if err == nil {
		t.Fatal("resume of absent directory succeeded")
	}
	if !strings.Contains(err.Error(), "manifest") {
		t.Fatalf("error should point at the missing manifest: %v", err)
	}
}

// startTCPWorkers boots n real TCP worker servers in-process (the same
// server the pipebd-worker binary wraps) with rejoin semantics, so a
// crashed coordinator session does not consume their session budget.
func startTCPWorkers(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		lis, err := transport.TCP{}.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		w := cluster.NewWorker(lis, cluster.WorkerConfig{Sessions: 1, Rejoin: true, Dial: transport.TCP{}})
		addrs[i] = w.Addr()
		wg.Add(1)
		go func() { defer wg.Done(); w.Serve() }()
		t.Cleanup(func() { w.Close() })
	}
	t.Cleanup(wg.Wait)
	return addrs
}

// TestClusterCrashThenResumeEndToEnd drives the two CLI entry points the
// way an operator would: a durable cluster run dies mid-stream (seeded
// chaos kill with no restart budget — the coordinator-crash stand-in),
// then -resume finishes it from the ledger and -verify proves the result
// bit-identical to the in-process pipeline.
func TestClusterCrashThenResumeEndToEnd(t *testing.T) {
	addrs := startTCPWorkers(t, 2)
	dir := filepath.Join(t.TempDir(), "ledger")
	var out strings.Builder
	err := runCluster(&out, clusterOptions{
		Workers: addrs, PlanName: "hybrid", Steps: 6, Batch: 8, DPU: true,
		Timeout:      10 * time.Second,
		Ledger:       dir,
		SnapInterval: 2, SnapDedup: true,
		ChaosKills: 1, ChaosSeed: 7,
	})
	if err == nil {
		t.Fatalf("rigged cluster run finished; output:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "durable run: ledger at "+dir) {
		t.Fatalf("ledger banner missing; output:\n%s", out.String())
	}

	out.Reset()
	if err := runResume(&out, resumeOptions{
		Dir: dir, Timeout: 10 * time.Second, Verify: true,
	}); err != nil {
		t.Fatalf("resume failed: %v\noutput:\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "verify OK") {
		t.Fatalf("verify did not report success; output:\n%s", out.String())
	}
}

// TestClusterRingEndToEnd drives runCluster with the CLI's default ring
// topology over real TCP workers — peer connections dialed worker-to-
// worker — and -verify proves the result bit-identical to the in-process
// pipeline.
func TestClusterRingEndToEnd(t *testing.T) {
	addrs := startTCPWorkers(t, 2)
	var out strings.Builder
	err := runCluster(&out, clusterOptions{
		Workers: addrs, PlanName: "hybrid", Steps: 4, Batch: 8, DPU: true,
		Topology: "ring", Timeout: 10 * time.Second, Verify: true,
	})
	if err != nil {
		t.Fatalf("ring cluster run failed: %v\noutput:\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "topology=ring") {
		t.Fatalf("banner missing topology; output:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "verify OK") {
		t.Fatalf("verify did not report success; output:\n%s", out.String())
	}
}

// TestClusterTraceOutEndToEnd is the acceptance run of the observability
// layer: a 3-worker TCP ring with -trace-out must stay bit-identical,
// produce a Chrome trace whose device tracks cover forward, backward,
// all-reduce, and peer-ack-wait spans, print the measured-vs-modeled
// utilization report, and (with -net-stats) the coordinator byte totals.
func TestClusterTraceOutEndToEnd(t *testing.T) {
	addrs := startTCPWorkers(t, 3)
	traceFile := filepath.Join(t.TempDir(), "run.json")
	var out strings.Builder
	err := runCluster(&out, clusterOptions{
		// dp3: 3-way split front group — the plan whose ring runs a true
		// reduce-scatter + all-gather. Batch 12 divides by both groups, so
		// the modeled side of the report is exercised too.
		Workers: addrs, PlanName: "dp3", Steps: 3, Batch: 12, DPU: true,
		Topology: "ring", Timeout: 10 * time.Second, Verify: true,
		TraceOut: traceFile, NetStats: true, DebugAddr: "127.0.0.1:0",
	})
	if err != nil {
		t.Fatalf("traced ring run failed: %v\noutput:\n%s", err, out.String())
	}
	for _, want := range []string{
		"verify OK",
		"wrote Chrome trace",
		"measured utilization",
		"measured vs modeled",
		"net: coordinator control plane: sent",
		"debug server on http://",
	} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}
	raw, err := os.ReadFile(traceFile)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph   string         `json:"ph"`
			Name string         `json:"name"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace file is not valid JSON: %v", err)
	}
	tracks := map[string]bool{}
	spans := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			if n, ok := ev.Args["name"].(string); ok {
				tracks[n] = true
			}
		case "X":
			spans[ev.Name] = true
		}
	}
	for _, dev := range []string{"dev0", "dev1", "dev2", "dev3"} {
		if !tracks[dev] {
			t.Fatalf("trace has no %s track (tracks: %v)", dev, tracks)
		}
	}
	for _, span := range []string{"teacher_fwd", "student_fwd", "student_bwd",
		"allreduce", "reduce_scatter", "all_gather", "peer_ack_wait"} {
		if !spans[span] {
			t.Fatalf("trace missing %q spans (have: %v)", span, spans)
		}
	}
}
