package main

// observe.go is the CLI face of the runtime observability layer
// (internal/obs): it turns a traced cluster run's span collection into a
// Chrome trace file plus a measured utilization report, and builds the
// cost-model prediction for the same schedule so the two print
// side-by-side. The modeled half is the paper's simulator pointed at the
// numeric tiny workbench: the cluster executes real float32 kernels on
// CPU while the model predicts a GPU schedule, so absolute seconds are
// incomparable — the report compares busy/idle *fractions*, where the
// schedule shape (who waits, and how much) is the meaningful signal.

import (
	"fmt"
	"io"

	"pipebd/internal/cluster/transport"
	"pipebd/internal/cost"
	"pipebd/internal/dataset"
	"pipebd/internal/distill"
	"pipebd/internal/hw"
	"pipebd/internal/metrics"
	"pipebd/internal/model"
	"pipebd/internal/obs"
	"pipebd/internal/pipeline"
	"pipebd/internal/sched"
)

// writeMeterTotals prints one transport.Meter's role-attributed byte and
// frame totals on a single line.
func writeMeterTotals(w io.Writer, role string, t transport.Totals) {
	fmt.Fprintf(w, "%s: sent %d B / %d frame(s), received %d B / %d frame(s)\n",
		role, t.SentBytes, t.SentFrames, t.RecvBytes, t.RecvFrames)
}

// tinyWorkload describes the numeric tiny workbench to the analytic cost
// model: the same teacher (Conv3x3+BN+ReLU) and student (DW3x3+PW1x1+ReLU)
// block pairs NewTinyWorkbench trains, as exact cost.Layer geometry, so
// pipeline.RunTR can predict the very schedule the cluster executed.
func tinyWorkload(tiny distill.TinyConfig, steps, batch int) model.Workload {
	teacher := cost.Network{Name: "tiny-teacher"}
	student := cost.Network{Name: "tiny-student"}
	h, w := tiny.Height, tiny.Width
	for b := 0; b < tiny.Blocks; b++ {
		inC := tiny.Channels
		if b == 0 {
			inC = 3
		}
		teacher.Blocks = append(teacher.Blocks, cost.Block{
			Name: fmt.Sprintf("T%d", b),
			Layers: []cost.Layer{
				{Name: "conv3", Kind: cost.Conv, InC: inC, OutC: tiny.Channels,
					InH: h, InW: w, Kernel: 3, Stride: 1, Pad: 1},
				{Name: "bn", Kind: cost.BatchNorm, InC: tiny.Channels, OutC: tiny.Channels, InH: h, InW: w},
				{Name: "relu", Kind: cost.Act, InC: tiny.Channels, OutC: tiny.Channels, InH: h, InW: w},
			},
		})
		student.Blocks = append(student.Blocks, cost.Block{
			Name: fmt.Sprintf("S%d", b),
			Layers: []cost.Layer{
				{Name: "dw3", Kind: cost.DWConv, InC: inC, OutC: inC,
					InH: h, InW: w, Kernel: 3, Stride: 1, Pad: 1},
				{Name: "pw1", Kind: cost.Conv, InC: inC, OutC: tiny.Channels,
					InH: h, InW: w, Kernel: 1, Stride: 1, Bias: true},
				{Name: "relu", Kind: cost.Act, InC: tiny.Channels, OutC: tiny.Channels, InH: h, InW: w},
			},
		})
	}
	return model.Workload{
		Name:    "tiny-workbench",
		Teacher: model.Model{Net: teacher, Units: teacher.Blocks},
		Student: model.Model{Net: student, Units: student.Blocks},
		// The synthetic dataset is raw in-memory float32; give it a raw
		// storage profile with negligible decode cost.
		Data: dataset.Spec{
			Name:             "tiny-random",
			NumTrain:         steps * batch,
			Channels:         3,
			Height:           tiny.Height,
			Width:            tiny.Width,
			StorageBytes:     int64(3 * tiny.Height * tiny.Width),
			DecodeCPUSeconds: 1e-7,
		},
	}
}

// transformerWorkload describes the numeric transformer workbench to the
// analytic cost model: the same embed-plus-encoder-layer blocks
// NewTransformerWorkbench trains, via the model package's transformer
// family, so pipeline.RunTR can predict the very schedule the cluster
// executed. The teacher and student geometries differ only in MLP width,
// exactly like the workbench.
func transformerWorkload(cfg distill.TransformerConfig, steps, batch int) model.Workload {
	teacher := model.TransformerGeom{Blocks: cfg.Blocks, Dim: cfg.Dim, Heads: cfg.Heads,
		FF: cfg.TeacherFF, SeqLen: cfg.SeqLen, Vocab: cfg.Vocab, Classes: cfg.Classes}
	student := teacher
	student.FF = cfg.StudentFF
	return model.Workload{
		Name:                 "transformer-workbench",
		Teacher:              model.TransformerEncoder("transformer-teacher", teacher),
		Student:              model.TransformerEncoder("transformer-student", student),
		Data:                 dataset.TokensSynthetic(steps*batch, cfg.SeqLen),
		LSAtBlockGranularity: true,
	}
}

// modeledReport predicts the traced schedule with the cost-model
// simulator on a homogeneous A6000 system of the same device count. It
// returns nil with a reason when the model cannot shard the batch the way
// the numeric engine did (the simulator splits every group's batch
// evenly, so non-divisible configurations would model a different
// schedule than the one measured).
func modeledReport(plan sched.Plan, dpu bool, nDev, steps, batch int, wl model.Workload) (*metrics.Report, string) {
	if batch%nDev != 0 {
		return nil, fmt.Sprintf("modeled comparison skipped: global batch %d not divisible by %d devices", batch, nDev)
	}
	for _, g := range plan.Groups {
		if batch%g.Split() != 0 {
			return nil, fmt.Sprintf("modeled comparison skipped: global batch %d not divisible by the %d-way split group", batch, g.Split())
		}
	}
	sys := hw.Homogeneous(fmt.Sprintf("%dx RTX A6000 (modeled)", nDev), nDev,
		hw.RTXA6000(), hw.PCIe4(), hw.EPYC7302Host())
	rep := pipeline.RunTR(pipeline.Config{
		Workload:    wl,
		System:      sys,
		GlobalBatch: batch,
		MaxSteps:    steps,
	}, plan, dpu, "tr-modeled")
	return &rep, ""
}

// writeTraceReport exports the collected spans as Chrome trace JSON and
// prints the measured-vs-modeled utilization report. Device tracks are
// ordered by rank; the coordinator's own track rides along in the trace
// file but stays out of the per-rank comparison (the model has no
// coordinator).
func writeTraceReport(stdout io.Writer, path string, collect *obs.Collector,
	plan sched.Plan, dpu bool, nDev, steps, batch int, wl model.Workload) error {
	if err := obs.WriteChromeTraceFile(path, collect); err != nil {
		return fmt.Errorf("writing trace: %w", err)
	}
	fmt.Fprintf(stdout, "pipebd: wrote Chrome trace (%d spans) to %s — load it in chrome://tracing or https://ui.perfetto.dev\n",
		collect.SpanCount(), path)
	order := make([]string, nDev)
	for i := range order {
		order[i] = fmt.Sprintf("dev%d", i)
	}
	_, byTrack := collect.Tracks()
	ranks, epoch := obs.Measured(order, byTrack)
	modeled, skip := modeledReport(plan, dpu, nDev, steps, batch, wl)
	fmt.Fprint(stdout, obs.UtilizationReport(ranks, epoch, modeled))
	if skip != "" {
		fmt.Fprintf(stdout, "pipebd: %s\n", skip)
	}
	return nil
}
