package main

import (
	"fmt"
	"io"
	"strings"
	"time"

	"pipebd/internal/cluster"
	"pipebd/internal/cluster/ledger"
	"pipebd/internal/cluster/transport"
	"pipebd/internal/cluster/wire"
	"pipebd/internal/distill"
	"pipebd/internal/engine"
	"pipebd/internal/model"
	"pipebd/internal/obs"
	"pipebd/internal/sched"
)

// clusterOptions configures the multi-process training mode.
type clusterOptions struct {
	Workers  []string // worker addresses, in device-placement order
	PlanName string   // tr | hybrid | ir
	Model    string   // tiny (default) | transformer
	Steps    int
	Batch    int
	DPU      bool
	Backend  string
	// Topology selects the data plane: "ring" (default for the CLI) moves
	// activations and gradient all-reduces worker-to-worker, "hub" (or
	// empty) routes everything through the coordinator.
	Topology string
	Verify   bool // re-run in-process and require bit-identical results
	Timeout  time.Duration
	// MaxRestarts enables fault tolerance: up to this many dead workers
	// are re-placed and replayed instead of failing the run.
	MaxRestarts int
	// Heartbeat asks workers for liveness beacons on this interval and
	// declares one dead after 4 missed beats; 0 disables.
	Heartbeat time.Duration
	// Ledger makes the run durable: the coordinator persists its state
	// under this directory so a killed pipebd can restart with -resume.
	Ledger string
	// SnapInterval is the snapshot interval k (0: every step when fault
	// tolerance is on); SnapDedup ships one snapshot per split group.
	SnapInterval int
	SnapDedup    bool
	// ChaosKills injects this many seeded connection kills (derived from
	// ChaosSeed) mid-run — the self-test for the recovery path, normally
	// combined with -verify.
	ChaosKills int
	ChaosSeed  int64
	// ChaosFlaps injects this many seeded transient link flaps — the
	// self-test for RetryBudget absorption: every flap must reconnect and
	// replay without consuming a restart.
	ChaosFlaps int
	// ChaosPart injects one healing partition: a link breaks and its
	// address stays unreachable for this duration, forcing the reconnect
	// loop to back off until the partition heals.
	ChaosPart time.Duration
	// RetryBackoff/RetryBudget arm transient-fault absorption: broken
	// worker and peer links reconnect with exponential backoff (initial
	// RetryBackoff, doubling) and replay their missed frames for up to
	// RetryBudget before the failure escalates to recovery or degrade.
	RetryBackoff time.Duration
	RetryBudget  time.Duration
	// TraceOut enables span tracing across the cluster and writes the
	// collected timeline as Chrome trace-event JSON to this path, then
	// prints the measured-vs-modeled utilization report.
	TraceOut string
	// NetStats prints the coordinator-side transport.Meter byte totals at
	// run end (independent of tracing).
	NetStats bool
	// DebugAddr starts an HTTP debug listener (net/http/pprof plus a
	// plain-text /metrics page) for the duration of the run.
	DebugAddr string
	// Fsync is the ledger record-log durability tier (needs Ledger).
	Fsync ledger.SyncPolicy
	// Repartition arms the measurement-driven runtime repartitioner.
	Repartition cluster.RepartitionConfig
}

// validate rejects option combinations before any socket is touched.
func (o clusterOptions) validate() error {
	if len(o.Workers) == 0 {
		return fmt.Errorf("cluster mode needs at least one worker address")
	}
	if o.Steps <= 0 || o.Batch <= 0 {
		return fmt.Errorf("cluster steps and batch must be positive (got %d, %d)", o.Steps, o.Batch)
	}
	if o.SnapInterval < 0 {
		return fmt.Errorf("-snapshot-interval must be >= 0, got %d", o.SnapInterval)
	}
	if (o.SnapInterval > 0 || o.SnapDedup) && o.MaxRestarts <= 0 && o.Ledger == "" {
		return fmt.Errorf("snapshot policy flags need -max-restarts or -ledger (snapshots exist for recovery)")
	}
	// A kill beyond the restart budget means the run is expected to die.
	// That is a configuration mistake — unless a ledger makes the death
	// resumable, which is exactly how the resume path is self-tested.
	if o.ChaosKills > 0 && o.MaxRestarts < o.ChaosKills && o.Ledger == "" {
		return fmt.Errorf("-chaos-kills %d needs -max-restarts >= %d to survive (or -ledger to resume from)", o.ChaosKills, o.ChaosKills)
	}
	if o.Fsync.Mode != ledger.SyncNone && o.Ledger == "" {
		return fmt.Errorf("-fsync %s needs -ledger (there is no record log to sync without one)", o.Fsync)
	}
	if (o.ChaosFlaps > 0 || o.ChaosPart > 0) && o.RetryBudget <= 0 {
		return fmt.Errorf("-chaos-flaps/-chaos-partition need -retry-budget > 0 (transient faults are absorbed by reconnecting links)")
	}
	if o.ChaosPart > 0 && o.RetryBudget <= o.ChaosPart {
		return fmt.Errorf("-chaos-partition %v needs -retry-budget > %v, or the partition cannot heal inside the reconnect budget", o.ChaosPart, o.ChaosPart)
	}
	return nil
}

// resumeOptions configures pipebd -resume: everything that defines the
// run lives in the ledger manifest, so only operational overrides remain.
type resumeOptions struct {
	Dir         string   // ledger directory (required)
	Workers     []string // override manifest worker addresses; nil reuses them
	Timeout     time.Duration
	MaxRestarts int // 0 reuses the manifest's budget
	Heartbeat   time.Duration
	Verify      bool
	Fsync       ledger.SyncPolicy
	Repartition cluster.RepartitionConfig
	// Expect pins explicitly-requested run properties (plan name,
	// topology, steps) against the manifest; nil checks nothing.
	Expect *cluster.ResumeExpectation
}

func (o resumeOptions) validate() error {
	if o.Dir == "" {
		return fmt.Errorf("-resume needs a ledger directory")
	}
	return nil
}

// clusterWorkload resolves the -cluster-model name into everything the
// cluster run needs: the wire model spec workers rebuild the workbench
// from, the deterministic data recipe ring workers regenerate batches
// from, the local workbench constructor, and the cost-model workload the
// trace report's modeled comparison uses. Both workbenches have four
// blocks, so every named cluster plan applies to either model.
func clusterWorkload(name string, steps, batch int) (wire.ModelSpec, wire.DataSpec, func() *distill.Workbench, model.Workload, error) {
	switch name {
	case "", "tiny":
		tiny := distill.DefaultTinyConfig()
		ds := wire.DataSpec{Seed: 7, N: steps * batch, C: 3,
			H: tiny.Height, W: tiny.Width, Classes: 4, Batch: batch}
		build := func() *distill.Workbench { return distill.NewTinyWorkbench(tiny) }
		return cluster.TinySpec(tiny), ds, build, tinyWorkload(tiny, steps, batch), nil
	case "transformer":
		tc := distill.DefaultTransformerConfig()
		ds := wire.DataSpec{Seed: 7, N: steps * batch, Classes: tc.Classes,
			Batch: batch, Kind: "tokens", L: tc.SeqLen, Vocab: tc.Vocab}
		build := func() *distill.Workbench { return distill.NewTransformerWorkbench(tc) }
		return cluster.TransformerSpec(tc), ds, build, transformerWorkload(tc, steps, batch), nil
	default:
		return wire.ModelSpec{}, wire.DataSpec{}, nil, model.Workload{},
			fmt.Errorf("unknown cluster model %q (want tiny or transformer)", name)
	}
}

// clusterPlan maps the named schedule onto the workbench's 4 blocks.
func clusterPlan(name string) (sched.Plan, error) {
	g := func(devs, blocks []int) sched.Group { return sched.Group{Devices: devs, Blocks: blocks} }
	switch name {
	case "tr":
		return sched.Plan{Name: "tr", Groups: []sched.Group{
			g([]int{0}, []int{0, 1}), g([]int{1}, []int{2, 3})}}, nil
	case "tr3":
		// Three devices, one per group, front-loaded: the all-unsplit
		// shape -repartition can rebalance when a device measures slow.
		return sched.Plan{Name: "tr3", Groups: []sched.Group{
			g([]int{0}, []int{0, 1}), g([]int{1}, []int{2}), g([]int{2}, []int{3})}}, nil
	case "hybrid":
		return sched.Plan{Name: "hybrid", Groups: []sched.Group{
			g([]int{0, 1}, []int{0, 1}), g([]int{2}, []int{2, 3})}}, nil
	case "ir":
		return sched.InternalRelaying(2, 4), nil
	case "dp3":
		// 3-way split front group: the smallest plan whose ring topology
		// runs a true reduce-scatter + all-gather ring (k >= 3) instead of
		// the two-member full exchange. Batch must divide by 3.
		return sched.Plan{Name: "dp3", Groups: []sched.Group{
			g([]int{0, 1, 2}, []int{0, 1}), g([]int{3}, []int{2, 3})}}, nil
	default:
		return sched.Plan{}, fmt.Errorf("unknown cluster plan %q (want tr, tr3, hybrid, ir, or dp3)", name)
	}
}

// runCluster trains the selected workbench (tiny compression by default,
// transformer with -cluster-model transformer) across the given workers
// and, with opts.Verify, proves the run bit-identical to the in-process
// pipeline.
func runCluster(stdout io.Writer, opts clusterOptions) error {
	if err := opts.validate(); err != nil {
		return err
	}
	plan, err := clusterPlan(opts.PlanName)
	if err != nil {
		return err
	}
	nDev := 0
	for _, g := range plan.Groups {
		nDev += g.Split()
	}

	spec, recipe, buildBench, costWL, err := clusterWorkload(opts.Model, opts.Steps, opts.Batch)
	if err != nil {
		return err
	}
	// The run's batches are exactly the recipe's evaluation, so ring
	// workers load their training data locally instead of receiving it
	// from the coordinator.
	batches, err := recipe.Batches()
	if err != nil {
		return err
	}

	cfg := cluster.Config{
		Plan: plan, DPU: opts.DPU, LR: 0.05, Momentum: 0.9,
		Backend: opts.Backend, Topology: opts.Topology, Spec: spec,
		Data:        recipe,
		JoinTimeout: opts.Timeout,
		MaxRestarts: opts.MaxRestarts,
		Snapshot:    cluster.SnapshotPolicy{Interval: opts.SnapInterval, Rank0Dedup: opts.SnapDedup},
		LedgerDir:   opts.Ledger,
		Fsync:       opts.Fsync,
		Repartition: opts.Repartition,
		Retry: wire.RetrySpec{
			BackoffMillis: int(opts.RetryBackoff / time.Millisecond),
			BudgetMillis:  int(opts.RetryBudget / time.Millisecond),
		},
		LedgerMeta: fmt.Sprintf("pipebd -cluster %s -cluster-plan %s -cluster-model %s -cluster-steps %d -cluster-batch %d",
			strings.Join(opts.Workers, ","), opts.PlanName, spec.Name, opts.Steps, opts.Batch),
		Logf: func(format string, args ...any) {
			fmt.Fprintf(stdout, "pipebd: "+format+"\n", args...)
		},
	}
	if opts.Heartbeat > 0 {
		cfg.HeartbeatInterval = opts.Heartbeat
		cfg.HeartbeatTimeout = 4 * opts.Heartbeat
	}
	counters := obs.NewMetrics()
	cfg.Metrics = counters
	var collect *obs.Collector
	if opts.TraceOut != "" {
		collect = obs.NewCollector()
		cfg.Trace = true
		cfg.TraceSink = collect.Add
	}
	var net transport.Network = transport.TCP{}
	var chaos *transport.Chaos
	var schedule []transport.Fault
	if opts.ChaosKills > 0 {
		schedule = append(schedule, transport.RandomKills(opts.ChaosSeed, len(opts.Workers), opts.Steps, opts.ChaosKills)...)
	}
	if opts.ChaosFlaps > 0 {
		schedule = append(schedule, transport.RandomFlaps(opts.ChaosSeed, len(opts.Workers), opts.Steps, opts.ChaosFlaps)...)
	}
	if opts.ChaosPart > 0 {
		// One healing partition on the first dialed link, mid-run: the
		// break itself looks like a flap, but redials keep failing until
		// the blackhole lifts, so the reconnect loop must outlast it.
		schedule = append(schedule, transport.Fault{
			Trigger: transport.Trigger{Conn: 0, Op: transport.OpRecv,
				Kind: wire.KindLosses, Step: int32(opts.Steps / 2), Count: 1},
			Action: transport.ActPartition,
			Delay:  opts.ChaosPart,
		})
	}
	if len(schedule) > 0 {
		for _, f := range schedule {
			fmt.Fprintf(stdout, "pipebd: chaos schedule: %v\n", f)
		}
		chaos = transport.NewChaos(net, schedule...)
		chaos.Logf = cfg.Logf
		net = chaos
	}
	// The meter wraps outermost so it sees exactly what crosses the
	// coordinator's sockets — the control plane's share of the traffic
	// (ring runs move tensors worker-to-worker; those bytes show up on
	// the workers' own -net-stats meters, not here).
	var meter *transport.Meter
	if opts.NetStats || opts.DebugAddr != "" {
		meter = transport.NewMeter(net)
		net = meter
	}
	if opts.DebugAddr != "" {
		srv, err := obs.StartDebugServer(opts.DebugAddr, func(w io.Writer) {
			counters.Render(w)
			writeMeterTotals(w, "coordinator control plane", meter.Totals())
		})
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(stdout, "pipebd: debug server on http://%s (/metrics, /debug/pprof/)\n", srv.Addr())
	}
	w := buildBench()
	topo := opts.Topology
	if topo == "" {
		topo = "hub"
	}
	fmt.Fprintf(stdout, "pipebd: cluster run: plan %s (%s), model %s, %d device(s) on %d worker(s), %d steps, batch %d, dpu=%v, topology=%s, max-restarts=%d\n",
		plan.Name, plan.Describe(), spec.Name, nDev, len(opts.Workers), opts.Steps, opts.Batch, opts.DPU, topo, opts.MaxRestarts)
	if opts.Ledger != "" {
		fmt.Fprintf(stdout, "pipebd: durable run: ledger at %s (restart a killed coordinator with: pipebd -resume %s)\n",
			opts.Ledger, opts.Ledger)
	}
	start := time.Now()
	res, err := cluster.Run(net, opts.Workers, w, batches, cfg)
	if opts.NetStats && meter != nil {
		// Byte totals print even when the run failed — partial traffic is
		// often exactly what a failure post-mortem needs.
		writeMeterTotals(stdout, "pipebd: net: coordinator control plane", meter.Totals())
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "pipebd: cluster run finished in %v\n", time.Since(start).Round(time.Millisecond))
	if opts.Repartition.Enabled {
		fmt.Fprintf(stdout, "pipebd: repartitions executed: %d\n", counters.Counter("repartitions").Load())
	}
	if cfg.Retry.Enabled() {
		fmt.Fprintf(stdout, "pipebd: link faults absorbed: %d (%d frame(s) replayed), links degraded to hub relay: %d, restarts consumed: %d of %d\n",
			counters.Counter("link_faults_absorbed").Load(),
			counters.Counter("link_frames_replayed").Load(),
			counters.Counter("degrades").Load(),
			counters.Counter("recoveries").Load(), opts.MaxRestarts)
	}
	if chaos != nil {
		if unfired := chaos.Unfired(); len(unfired) > 0 {
			// A kill that never fired (e.g. aimed at a worker the plan never
			// dialed) would make this self-test vacuous: the run "survived"
			// nothing. Fail loudly instead.
			return fmt.Errorf("chaos self-test invalid: %d scheduled fault(s) never fired (%v); pick a different -chaos-seed or fewer workers", len(unfired), unfired)
		}
	}
	final := res.FinalLoss()
	parts := make([]string, len(final))
	for b, l := range final {
		parts[b] = fmt.Sprintf("B%d=%.6g", b, l)
	}
	fmt.Fprintf(stdout, "pipebd: final per-block losses: %s\n", strings.Join(parts, " "))

	if collect != nil {
		if err := writeTraceReport(stdout, opts.TraceOut, collect,
			plan, opts.DPU, nDev, opts.Steps, opts.Batch, costWL); err != nil {
			return err
		}
	}

	if !opts.Verify {
		return nil
	}
	ref := buildBench()
	refRes := engine.RunPipelined(ref, batches, engine.Config{
		Plan: plan, DPU: opts.DPU, LR: 0.05, Momentum: 0.9})
	return verifyBitIdentical(stdout, res, w, refRes, ref)
}

// verifyBitIdentical requires a run's loss trajectory and trained student
// weights to match an in-process reference bit-for-bit — the CLI face of
// the cluster's equivalence guarantee, shared by -cluster -verify and
// -resume -verify.
func verifyBitIdentical(stdout io.Writer, res engine.Result, w *distill.Workbench, refRes engine.Result, ref *distill.Workbench) error {
	for b := range refRes.Loss {
		for s := range refRes.Loss[b] {
			if refRes.Loss[b][s] != res.Loss[b][s] {
				return fmt.Errorf("verify failed: loss diverged at block %d step %d: cluster %v vs in-process %v",
					b, s, res.Loss[b][s], refRes.Loss[b][s])
			}
		}
	}
	for b := 0; b < ref.NumBlocks(); b++ {
		pw, pr := w.StudentParams(b), ref.StudentParams(b)
		for i := range pw {
			if !pw[i].Value.Equal(pr[i].Value) {
				return fmt.Errorf("verify failed: trained weights diverged at block %d param %d (%s)",
					b, i, pw[i].Name)
			}
		}
	}
	fmt.Fprintln(stdout, "pipebd: verify OK: cluster trajectory and trained weights are bit-identical to the in-process pipeline")
	return nil
}

// runResume restarts a killed coordinator from its ledger directory: the
// manifest supplies the plan, model, hyperparameters, batches, and worker
// addresses; the record log supplies the crash-time hub state. With
// opts.Verify the finished run is additionally checked bit-identical
// against a fresh in-process pipeline built from the same manifest.
func runResume(stdout io.Writer, opts resumeOptions) error {
	if err := opts.validate(); err != nil {
		return err
	}
	logf := func(format string, args ...any) {
		fmt.Fprintf(stdout, "pipebd: "+format+"\n", args...)
	}
	fmt.Fprintf(stdout, "pipebd: resuming coordinator from ledger %s\n", opts.Dir)
	start := time.Now()
	res, w, err := cluster.ResumeRun(transport.TCP{}, opts.Dir, cluster.ResumeConfig{
		Addrs:             opts.Workers,
		JoinTimeout:       opts.Timeout,
		MaxRestarts:       opts.MaxRestarts,
		HeartbeatInterval: opts.Heartbeat,
		HeartbeatTimeout:  heartbeatTimeout(opts.Heartbeat),
		Logf:              logf,
		Fsync:             opts.Fsync,
		Repartition:       opts.Repartition,
		Expect:            opts.Expect,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "pipebd: resumed run finished in %v\n", time.Since(start).Round(time.Millisecond))
	final := res.FinalLoss()
	parts := make([]string, len(final))
	for b, l := range final {
		parts[b] = fmt.Sprintf("B%d=%.6g", b, l)
	}
	fmt.Fprintf(stdout, "pipebd: final per-block losses: %s\n", strings.Join(parts, " "))
	if !opts.Verify {
		return nil
	}
	// The manifest pins everything the reference needs; re-read it so the
	// comparison cannot drift from what was actually resumed.
	led, man, _, err := ledger.Open(opts.Dir)
	if err != nil {
		return err
	}
	led.Close()
	ref, err := cluster.BuildWorkbench(man.Assign.Spec)
	if err != nil {
		return err
	}
	if err := cluster.InstallSnapshot(ref, man.Assign.Snapshot); err != nil {
		return err
	}
	refRes := engine.RunPipelined(ref, man.Batches, engine.Config{
		Plan: man.Assign.Plan, DPU: man.Assign.Run.DPU,
		LR: man.Assign.Run.LR, Momentum: man.Assign.Run.Momentum})
	return verifyBitIdentical(stdout, res, w, refRes, ref)
}

func heartbeatTimeout(interval time.Duration) time.Duration {
	if interval <= 0 {
		return 0
	}
	return 4 * interval
}
