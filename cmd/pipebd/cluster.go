package main

import (
	"fmt"
	"io"
	"math/rand"
	"strings"
	"time"

	"pipebd/internal/cluster"
	"pipebd/internal/cluster/transport"
	"pipebd/internal/dataset"
	"pipebd/internal/distill"
	"pipebd/internal/engine"
	"pipebd/internal/sched"
)

// clusterOptions configures the multi-process training mode.
type clusterOptions struct {
	Workers  []string // worker addresses, in device-placement order
	PlanName string   // tr | hybrid | ir
	Steps    int
	Batch    int
	DPU      bool
	Backend  string
	Verify   bool // re-run in-process and require bit-identical results
	Timeout  time.Duration
	// MaxRestarts enables fault tolerance: up to this many dead workers
	// are re-placed and replayed instead of failing the run.
	MaxRestarts int
	// Heartbeat asks workers for liveness beacons on this interval and
	// declares one dead after 4 missed beats; 0 disables.
	Heartbeat time.Duration
	// ChaosKills injects this many seeded connection kills (derived from
	// ChaosSeed) mid-run — the self-test for the recovery path, normally
	// combined with -verify.
	ChaosKills int
	ChaosSeed  int64
}

// clusterPlan maps the named schedule onto the tiny workbench's 4 blocks.
func clusterPlan(name string) (sched.Plan, error) {
	g := func(devs, blocks []int) sched.Group { return sched.Group{Devices: devs, Blocks: blocks} }
	switch name {
	case "tr":
		return sched.Plan{Name: "tr", Groups: []sched.Group{
			g([]int{0}, []int{0, 1}), g([]int{1}, []int{2, 3})}}, nil
	case "hybrid":
		return sched.Plan{Name: "hybrid", Groups: []sched.Group{
			g([]int{0, 1}, []int{0, 1}), g([]int{2}, []int{2, 3})}}, nil
	case "ir":
		return sched.InternalRelaying(2, 4), nil
	default:
		return sched.Plan{}, fmt.Errorf("unknown cluster plan %q (want tr, hybrid, or ir)", name)
	}
}

// runCluster trains the tiny compression workbench across the given
// workers and, with opts.Verify, proves the run bit-identical to the
// in-process pipeline.
func runCluster(stdout io.Writer, opts clusterOptions) error {
	plan, err := clusterPlan(opts.PlanName)
	if err != nil {
		return err
	}
	nDev := 0
	for _, g := range plan.Groups {
		nDev += g.Split()
	}
	if opts.Steps <= 0 || opts.Batch <= 0 {
		return fmt.Errorf("cluster steps and batch must be positive (got %d, %d)", opts.Steps, opts.Batch)
	}

	tiny := distill.DefaultTinyConfig()
	data := dataset.NewRandom(rand.New(rand.NewSource(7)), opts.Steps*opts.Batch, 3, tiny.Height, tiny.Width, 4)
	batches := data.Batches(opts.Batch)

	cfg := cluster.Config{
		Plan: plan, DPU: opts.DPU, LR: 0.05, Momentum: 0.9,
		Backend: opts.Backend, Spec: cluster.TinySpec(tiny),
		JoinTimeout: opts.Timeout,
		MaxRestarts: opts.MaxRestarts,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(stdout, "pipebd: "+format+"\n", args...)
		},
	}
	if opts.Heartbeat > 0 {
		cfg.HeartbeatInterval = opts.Heartbeat
		cfg.HeartbeatTimeout = 4 * opts.Heartbeat
	}
	var net transport.Network = transport.TCP{}
	var chaos *transport.Chaos
	if opts.ChaosKills > 0 {
		schedule := transport.RandomKills(opts.ChaosSeed, len(opts.Workers), opts.Steps, opts.ChaosKills)
		for _, f := range schedule {
			fmt.Fprintf(stdout, "pipebd: chaos schedule: %v\n", f)
		}
		chaos = transport.NewChaos(net, schedule...)
		chaos.Logf = cfg.Logf
		net = chaos
	}
	w := distill.NewTinyWorkbench(tiny)
	fmt.Fprintf(stdout, "pipebd: cluster run: plan %s (%s), %d device(s) on %d worker(s), %d steps, batch %d, dpu=%v, max-restarts=%d\n",
		plan.Name, plan.Describe(), nDev, len(opts.Workers), opts.Steps, opts.Batch, opts.DPU, opts.MaxRestarts)
	start := time.Now()
	res, err := cluster.Run(net, opts.Workers, w, batches, cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "pipebd: cluster run finished in %v\n", time.Since(start).Round(time.Millisecond))
	if chaos != nil {
		if unfired := chaos.Unfired(); len(unfired) > 0 {
			// A kill that never fired (e.g. aimed at a worker the plan never
			// dialed) would make this self-test vacuous: the run "survived"
			// nothing. Fail loudly instead.
			return fmt.Errorf("chaos self-test invalid: %d of %d scheduled faults never fired (%v); pick a different -chaos-seed or fewer workers", len(unfired), opts.ChaosKills, unfired)
		}
	}
	final := res.FinalLoss()
	parts := make([]string, len(final))
	for b, l := range final {
		parts[b] = fmt.Sprintf("B%d=%.6g", b, l)
	}
	fmt.Fprintf(stdout, "pipebd: final per-block losses: %s\n", strings.Join(parts, " "))

	if !opts.Verify {
		return nil
	}
	ref := distill.NewTinyWorkbench(tiny)
	refRes := engine.RunPipelined(ref, batches, engine.Config{
		Plan: plan, DPU: opts.DPU, LR: 0.05, Momentum: 0.9})
	for b := range refRes.Loss {
		for s := range refRes.Loss[b] {
			if refRes.Loss[b][s] != res.Loss[b][s] {
				return fmt.Errorf("verify failed: loss diverged at block %d step %d: cluster %v vs in-process %v",
					b, s, res.Loss[b][s], refRes.Loss[b][s])
			}
		}
	}
	for b := 0; b < ref.NumBlocks(); b++ {
		pw, pr := w.StudentParams(b), ref.StudentParams(b)
		for i := range pw {
			if !pw[i].Value.Equal(pr[i].Value) {
				return fmt.Errorf("verify failed: trained weights diverged at block %d param %d (%s)",
					b, i, pw[i].Name)
			}
		}
	}
	fmt.Fprintln(stdout, "pipebd: verify OK: cluster trajectory and trained weights are bit-identical to the in-process pipeline")
	return nil
}
