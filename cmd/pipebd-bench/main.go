// Command pipebd-bench captures the repository's performance baseline as
// machine-readable JSON: MatMul and Conv2d-forward kernel throughput, the
// numeric engine's pipeline-step rate (each measured on the serial
// reference backend and the parallel backend), and the cluster's
// end-to-end latencies on loopback — a fault-free run, the same run with
// one injected worker kill (worker-recovery latency), a snapshot-interval
// sweep (k ∈ {1, 4, all} — snapshot traffic falls k-fold as k grows),
// rank-0 dedup on versus off (dedup cuts a split group's snapshot
// traffic k-fold again), a durable run persisting its ledger, and a full
// coordinator crash + ResumeRun cycle. The output file (committed as
// BENCH_PR4.json, alongside the PR2/PR3 baselines) gives later PRs a
// trajectory to compare against.
//
// Usage:
//
//	pipebd-bench -out BENCH_PR4.json          # full sizes
//	pipebd-bench -out bench.json -quick       # small sizes for smoke tests
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"pipebd/internal/cluster"
	"pipebd/internal/cluster/transport"
	"pipebd/internal/cluster/wire"
	"pipebd/internal/dataset"
	"pipebd/internal/distill"
	"pipebd/internal/engine"
	"pipebd/internal/nn"
	"pipebd/internal/sched"
	"pipebd/internal/tensor"
)

// Record is one benchmark measurement.
type Record struct {
	Name      string  `json:"name"`
	Backend   string  `json:"backend"`
	NsPerOp   float64 `json:"ns_per_op"`
	OpsPerSec float64 `json:"ops_per_sec"`
	N         int     `json:"iterations"`
	// MBPerSec is the data throughput for kernels that declare bytes
	// moved (MatMul); 0 otherwise.
	MBPerSec float64 `json:"mb_per_sec,omitempty"`
}

// Report is the file layout of BENCH_PR4.json.
type Report struct {
	GoMaxProcs int      `json:"go_max_procs"`
	GoVersion  string   `json:"go_version"`
	Quick      bool     `json:"quick"`
	Records    []Record `json:"benchmarks"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "pipebd-bench: %v\n", err)
		os.Exit(2)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("pipebd-bench", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	out := fs.String("out", "BENCH_PR4.json", "output JSON path (- for stdout)")
	quick := fs.Bool("quick", false, "small problem sizes (smoke testing)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			fmt.Fprintf(stdout, "Usage of %s:\n", fs.Name())
			fs.SetOutput(stdout)
			fs.PrintDefaults()
			return nil
		}
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}

	backends := []tensor.Backend{tensor.Serial{}, tensor.NewParallel(0)}
	report := Report{GoMaxProcs: runtime.GOMAXPROCS(0), GoVersion: runtime.Version(), Quick: *quick}

	matmulSizes := []int{128, 256, 512}
	convBatch, convC, convHW := 8, 16, 28
	stepBatches, stepBatch := 4, 16
	if *quick {
		matmulSizes = []int{32}
		convBatch, convC, convHW = 2, 4, 8
		stepBatches, stepBatch = 2, 8
	}

	// MatMul: the GEMM at the heart of Linear and (via im2col) Conv2d.
	rng := rand.New(rand.NewSource(1))
	for _, size := range matmulSizes {
		x := tensor.Rand(rng, -1, 1, size, size)
		y := tensor.Rand(rng, -1, 1, size, size)
		dst := tensor.New(size, size)
		for _, be := range backends {
			be := be
			res := testing.Benchmark(func(b *testing.B) {
				b.SetBytes(int64(2 * size * size * size * 4))
				for i := 0; i < b.N; i++ {
					be.MatMulInto(dst, x, y)
				}
			})
			report.add(fmt.Sprintf("MatMul/%dx%dx%d", size, size, size), be.Name(), res)
		}
	}

	// ConvForward: a full conv3x3 layer forward (im2col + GEMM + bias).
	for _, be := range backends {
		be := be
		conv := nn.NewConv2d(rand.New(rand.NewSource(2)), convC, convC, 3, 1, 1, true)
		conv.SetBackend(be)
		x := tensor.Rand(rand.New(rand.NewSource(3)), -1, 1, convBatch, convC, convHW, convHW)
		res := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				conv.Forward(x, false)
			}
		})
		report.add(fmt.Sprintf("ConvForward/%dx%dx%dx%d", convBatch, convC, convHW, convHW), be.Name(), res)
	}

	// PipelineStep: one full hybrid-plan pipelined training pass over the
	// tiny workbench; ops_per_sec × batches = training steps per second.
	tiny := distill.DefaultTinyConfig()
	data := dataset.NewRandom(rand.New(rand.NewSource(4)), stepBatches*stepBatch, 3, tiny.Height, tiny.Width, 4)
	batches := data.Batches(stepBatch)
	plan := sched.Plan{Name: "hybrid", Groups: []sched.Group{
		{Devices: []int{0, 1}, Blocks: []int{0, 1}},
		{Devices: []int{2}, Blocks: []int{2, 3}},
	}}
	for _, be := range backends {
		be := be
		res := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				w := distill.NewTinyWorkbench(tiny)
				b.StartTimer()
				engine.RunPipelined(w, batches, engine.Config{Plan: plan, DPU: true,
					LR: 0.05, Momentum: 0.9, Backend: be})
			}
		})
		report.add(fmt.Sprintf("PipelineStep/hybrid/%dsteps-batch%d", stepBatches, stepBatch), be.Name(), res)
	}

	// ClusterRun / ClusterRecovery: a full hybrid-plan cluster run on
	// loopback workers, fault-free versus with one seeded worker kill
	// mid-run. The delta between the two is the end-to-end recovery
	// latency: death detection, re-placement dial, snapshot restore over
	// the wire, and step replay.
	clusterSteps := 6
	if *quick {
		clusterSteps = 3
	}
	clusterBench := func(name string, o clusterBenchOpts) {
		res := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				run := newClusterBenchRun(o)
				b.StartTimer()
				if err := run.exec(); err != nil {
					b.Fatalf("cluster bench run %s: %v", name, err)
				}
				b.StopTimer()
				run.close()
			}
		})
		report.add(name, "loopback", res)
	}
	base := clusterBenchOpts{steps: clusterSteps, batch: stepBatch}
	clusterBench(fmt.Sprintf("ClusterRun/hybrid/%dsteps-batch%d", clusterSteps, stepBatch), base)
	killOpts := base
	killOpts.kill = true
	clusterBench(fmt.Sprintf("ClusterRecovery/hybrid/%dsteps-batch%d-one-kill", clusterSteps, stepBatch), killOpts)

	// Snapshot-interval sweep: k = 1 (every step), k = 4, and k = steps
	// ("all": one snapshot at the end of the run). Snapshot traffic falls
	// k-fold as k grows; the remaining cost is the run itself.
	for _, every := range []int{1, 4, clusterSteps} {
		o := base
		o.snapEvery = every
		clusterBench(fmt.Sprintf("ClusterSnapshotInterval/hybrid/%dsteps-batch%d-every-%d",
			clusterSteps, stepBatch, every), o)
	}

	// Rank-0 dedup: the hybrid plan's first group is 2-way split, so
	// dedup halves its snapshot traffic (k-fold for k-way groups) while
	// the tail group is unaffected.
	for _, dedup := range []bool{false, true} {
		o := base
		o.snapEvery = 1
		o.dedup = dedup
		clusterBench(fmt.Sprintf("ClusterSnapshotDedup/hybrid/%dsteps-batch%d-dedup-%v",
			clusterSteps, stepBatch, dedup), o)
	}

	// ClusterDurableRun: the same fault-free run persisting every piece of
	// recovery state to an on-disk ledger — the durability overhead.
	durable := base
	durable.durable = true
	clusterBench(fmt.Sprintf("ClusterDurableRun/hybrid/%dsteps-batch%d", clusterSteps, stepBatch), durable)

	// CoordinatorResume: a durable run is crashed mid-stream (seeded kill,
	// no restart budget), then the timed section restarts the coordinator
	// from the ledger — manifest load, record replay, worker
	// re-attachment, and step replay through to completion.
	resumeRes := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			o := base
			o.kill = true
			o.durable = true
			o.crash = true
			run := newClusterBenchRun(o)
			if err := run.exec(); err == nil {
				b.Fatal("rigged durable run did not crash")
			}
			b.StartTimer()
			if _, _, err := cluster.ResumeRun(run.inner, run.ledgerDir, cluster.ResumeConfig{
				JoinTimeout: 10 * time.Second,
			}); err != nil {
				b.Fatalf("coordinator resume: %v", err)
			}
			b.StopTimer()
			run.close()
		}
	})
	report.add(fmt.Sprintf("CoordinatorResume/hybrid/%dsteps-batch%d", clusterSteps, stepBatch), "loopback", resumeRes)

	data2, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data2 = append(data2, '\n')
	if *out == "-" {
		_, err = stdout.Write(data2)
		return err
	}
	if err := os.WriteFile(*out, data2, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "pipebd-bench: wrote %d benchmarks to %s\n", len(report.Records), *out)
	return nil
}

// clusterBenchOpts selects a prepared loopback cluster's shape: a chaos
// kill of the second-group worker at the middle step (recovered within
// the budget, or — with crash — failing a durable run so ResumeRun can be
// timed), the snapshot policy, and on-disk ledger persistence.
type clusterBenchOpts struct {
	steps, batch int
	kill         bool
	snapEvery    int
	dedup        bool
	durable      bool
	crash        bool // no restart budget: the kill fails the run
}

// clusterBenchRun is one prepared loopback cluster (2 workers, hybrid
// plan) ready to execute.
type clusterBenchRun struct {
	inner     transport.Network
	net       transport.Network
	addrs     []string
	workers   []*cluster.Worker
	batches   []dataset.Batch
	cfg       cluster.Config
	ledgerDir string
	done      chan struct{}
}

func newClusterBenchRun(o clusterBenchOpts) *clusterBenchRun {
	tiny := distill.DefaultTinyConfig()
	data := dataset.NewRandom(rand.New(rand.NewSource(5)), o.steps*o.batch, 3, tiny.Height, tiny.Width, 4)
	inner := transport.NewLoopback()
	r := &clusterBenchRun{
		inner:   inner,
		batches: data.Batches(o.batch),
		done:    make(chan struct{}),
		cfg: cluster.Config{
			Plan: sched.Plan{Name: "hybrid", Groups: []sched.Group{
				{Devices: []int{0, 1}, Blocks: []int{0, 1}},
				{Devices: []int{2}, Blocks: []int{2, 3}},
			}},
			DPU: true, LR: 0.05, Momentum: 0.9,
			Spec:        cluster.TinySpec(tiny),
			MaxRestarts: 1, // snapshots on in every variant: deltas isolate the mechanism under test
			Snapshot:    cluster.SnapshotPolicy{Interval: o.snapEvery, Rank0Dedup: o.dedup},
		},
	}
	if o.crash {
		r.cfg.MaxRestarts = 0
	}
	if o.durable {
		dir, err := os.MkdirTemp("", "pipebd-bench-ledger-*")
		if err != nil {
			panic(err)
		}
		r.ledgerDir = dir
		r.cfg.LedgerDir = dir
	}
	r.net = inner
	if o.kill {
		r.net = transport.NewChaos(inner, transport.Fault{
			Trigger: transport.Trigger{Conn: 1, Op: transport.OpRecv,
				Kind: wire.KindLosses, Step: int32(o.steps / 2), Count: 1},
			Action: transport.ActKill,
		})
	}
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		lis, err := inner.Listen("")
		if err != nil {
			panic(err)
		}
		w := cluster.NewWorker(lis, cluster.WorkerConfig{Sessions: 1, Rejoin: true})
		r.workers = append(r.workers, w)
		r.addrs = append(r.addrs, w.Addr())
		wg.Add(1)
		go func() { defer wg.Done(); w.Serve() }()
	}
	go func() { wg.Wait(); close(r.done) }()
	return r
}

func (r *clusterBenchRun) exec() error {
	w := distill.NewTinyWorkbench(distill.DefaultTinyConfig())
	_, err := cluster.Run(r.net, r.addrs, w, r.batches, r.cfg)
	return err
}

func (r *clusterBenchRun) close() {
	for _, w := range r.workers {
		w.Close()
	}
	<-r.done
	if r.ledgerDir != "" {
		os.RemoveAll(r.ledgerDir)
	}
}

func (r *Report) add(name, backend string, res testing.BenchmarkResult) {
	nsPerOp := float64(res.T.Nanoseconds()) / float64(res.N)
	rec := Record{
		Name:      name,
		Backend:   backend,
		NsPerOp:   nsPerOp,
		OpsPerSec: 1e9 / nsPerOp,
		N:         res.N,
	}
	if res.Bytes > 0 {
		rec.MBPerSec = float64(res.Bytes) * float64(res.N) / res.T.Seconds() / 1e6
	}
	r.Records = append(r.Records, rec)
}
