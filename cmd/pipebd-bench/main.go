// Command pipebd-bench captures the repository's performance baseline as
// machine-readable JSON: the kernel sweep from the shared registry
// (internal/bench — the GEMM family, fused conv layers, the skinny
// batched attention GEMMs, and the numeric engine's pipeline-step rate
// for both the conv and transformer workloads, each on the serial and
// parallel backends), plus the cluster's end-to-end latencies on loopback — a fault-free run,
// the same run with one injected worker kill, a snapshot-interval sweep,
// rank-0 dedup on versus off, a durable run persisting its ledger, a
// full coordinator crash + ResumeRun cycle, hub-vs-ring topology traffic
// attribution, a straggler pair (the same throttled-worker run with
// dynamic repartitioning off and on — the -repartition headline), and a
// fault-recovery pair (one identical mid-run link break absorbed by
// resumable reconnect-and-replay versus recovered by a global restart —
// the -retry-budget headline). The output file (committed as
// BENCH_PR10.json, alongside the PR2–PR9 baselines) gives later PRs a
// trajectory to compare against.
//
// Every record carries the GOMAXPROCS it ran under, and -procs sweeps the
// registry suite across several values in one invocation (the committed
// PR2/PR4 baselines were taken at GOMAXPROCS=1). -compare prints
// per-benchmark deltas against an older report so perf PRs don't eyeball
// JSON.
//
// Usage:
//
//	pipebd-bench -out BENCH_PR5.json -procs 1,4    # full sizes, two widths
//	pipebd-bench -out bench.json -quick            # small sizes for smoke tests
//	pipebd-bench -quick -compare BENCH_PR4.json    # run, then print deltas
//	pipebd-bench -in new.json -compare old.json    # compare two existing files
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"pipebd/internal/bench"
	"pipebd/internal/cluster"
	"pipebd/internal/cluster/transport"
	"pipebd/internal/cluster/wire"
	"pipebd/internal/dataset"
	"pipebd/internal/distill"
	"pipebd/internal/sched"
	"pipebd/internal/tensor"
)

// Record is one benchmark measurement.
type Record struct {
	Name    string `json:"name"`
	Backend string `json:"backend"`
	// Procs is the GOMAXPROCS the measurement ran under. Records in
	// pre-PR5 baselines lack it; readers default those to the report's
	// go_max_procs.
	Procs     int     `json:"procs,omitempty"`
	NsPerOp   float64 `json:"ns_per_op"`
	OpsPerSec float64 `json:"ops_per_sec"`
	N         int     `json:"iterations"`
	// MBPerSec is the data throughput for kernels that declare bytes
	// moved (MatMul); 0 otherwise.
	MBPerSec float64 `json:"mb_per_sec,omitempty"`
	// CoordBytesPerStep / PeerBytesPerStep split a cluster run's
	// steady-state traffic by role (set only by the topology suite):
	// marginal bytes per training step crossing the coordinator's
	// connections vs. the workers' peer connections, measured as a
	// 2×steps run minus a steps run so session-fixed traffic (model
	// broadcast, trained-weight return) cancels. The ring topology's
	// point is the first number collapsing to control-plane size while
	// the second absorbs the data plane.
	CoordBytesPerStep float64 `json:"coord_bytes_per_step,omitempty"`
	PeerBytesPerStep  float64 `json:"peer_bytes_per_step,omitempty"`
}

// Report is the file layout of BENCH_PR5.json.
type Report struct {
	GoMaxProcs int      `json:"go_max_procs"`
	GoVersion  string   `json:"go_version"`
	Quick      bool     `json:"quick"`
	Records    []Record `json:"benchmarks"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "pipebd-bench: %v\n", err)
		os.Exit(2)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("pipebd-bench", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	out := fs.String("out", "BENCH_PR10.json", "output JSON path (- for stdout)")
	quick := fs.Bool("quick", false, "small problem sizes (smoke testing)")
	procsFlag := fs.String("procs", "", "comma-separated GOMAXPROCS values to sweep the registry suite across (default: current)")
	compare := fs.String("compare", "", "older report JSON to diff the produced (or -in) report against")
	in := fs.String("in", "", "load an existing report instead of benchmarking (for -compare); suppresses -out")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			fmt.Fprintf(stdout, "Usage of %s:\n", fs.Name())
			fs.SetOutput(stdout)
			fs.PrintDefaults()
			return nil
		}
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}

	hostProcs := runtime.GOMAXPROCS(0)
	report := Report{GoMaxProcs: hostProcs, GoVersion: runtime.Version(), Quick: *quick}

	if *in != "" {
		loaded, err := loadReport(*in)
		if err != nil {
			return err
		}
		report = *loaded
	} else {
		procsList, err := parseProcs(*procsFlag, hostProcs)
		if err != nil {
			return err
		}
		for _, p := range procsList {
			runtime.GOMAXPROCS(p)
			for _, c := range bench.All(*quick) {
				c := c
				res := testing.Benchmark(func(b *testing.B) {
					if c.Bytes > 0 {
						b.SetBytes(c.Bytes)
					}
					c.Run(b)
				})
				report.add(c.Name, c.Backend, p, res)
			}
		}
		// Cluster benches run once, at the widest swept value: they
		// measure transport + engine latency, not kernel scaling.
		widest := procsList[0]
		for _, p := range procsList {
			widest = max(widest, p)
		}
		runtime.GOMAXPROCS(widest)
		clusterSuite(&report, *quick, widest)
		topologySuite(&report, *quick, widest)
		repartitionSuite(&report, *quick, widest)
		runtime.GOMAXPROCS(hostProcs)
	}

	if *compare != "" {
		old, err := loadReport(*compare)
		if err != nil {
			return err
		}
		printCompare(stdout, *compare, old, &report)
	}

	if *in != "" {
		return nil
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if *out == "-" {
		_, err = stdout.Write(data)
		return err
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "pipebd-bench: wrote %d benchmarks to %s\n", len(report.Records), *out)
	return nil
}

func parseProcs(s string, def int) ([]int, error) {
	if s == "" {
		return []int{def}, nil
	}
	var list []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad -procs value %q", part)
		}
		list = append(list, v)
	}
	return list, nil
}

func loadReport(path string) (*Report, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(raw, &r); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	return &r, nil
}

// recordKey identifies a benchmark across reports. Records without a
// per-record procs value (pre-PR5 baselines) inherit the report header's.
func recordKey(r Record, rep *Report) string {
	procs := r.Procs
	if procs == 0 {
		procs = rep.GoMaxProcs
	}
	return fmt.Sprintf("%s|%s|%d", r.Name, r.Backend, procs)
}

// printCompare prints per-benchmark deltas between two reports: speedup
// is old/new ns_per_op, so >1 is faster. Benchmarks present on only one
// side are listed separately.
func printCompare(w io.Writer, oldPath string, old, cur *Report) {
	oldByKey := map[string]Record{}
	for _, r := range old.Records {
		oldByKey[recordKey(r, old)] = r
	}
	fmt.Fprintf(w, "comparing against %s (GOMAXPROCS=%d, %s)\n", oldPath, old.GoMaxProcs, old.GoVersion)
	if old.Quick != cur.Quick {
		fmt.Fprintf(w, "warning: quick-mode mismatch (old=%v new=%v); sizes differ\n", old.Quick, cur.Quick)
	}
	fmt.Fprintf(w, "%-52s %-9s %5s %14s %14s %9s\n", "benchmark", "backend", "procs", "old ns/op", "new ns/op", "speedup")
	var missing []string
	for _, r := range cur.Records {
		key := recordKey(r, cur)
		procs := r.Procs
		if procs == 0 {
			procs = cur.GoMaxProcs
		}
		o, ok := oldByKey[key]
		if !ok {
			missing = append(missing, fmt.Sprintf("only in new report: %s/%s@%d", r.Name, r.Backend, procs))
			continue
		}
		delete(oldByKey, key)
		fmt.Fprintf(w, "%-52s %-9s %5d %14.0f %14.0f %8.2fx\n",
			r.Name, r.Backend, procs, o.NsPerOp, r.NsPerOp, o.NsPerOp/r.NsPerOp)
	}
	var stale []string
	for key := range oldByKey {
		stale = append(stale, "only in old report: "+strings.ReplaceAll(key, "|", "/"))
	}
	sort.Strings(stale)
	for _, line := range append(missing, stale...) {
		fmt.Fprintln(w, line)
	}
}

// clusterSuite appends the cluster end-to-end latency benches: a
// fault-free hybrid-plan run, worker-kill recovery, the snapshot-interval
// sweep, rank-0 dedup on/off, a durable (ledger-persisting) run, and a
// coordinator crash + resume cycle.
func clusterSuite(report *Report, quick bool, procs int) {
	stepBatch := 16
	clusterSteps := 6
	if quick {
		stepBatch = 8
		clusterSteps = 3
	}
	clusterBench := func(name string, o clusterBenchOpts) {
		res := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				run := newClusterBenchRun(o)
				b.StartTimer()
				if err := run.exec(); err != nil {
					b.Fatalf("cluster bench run %s: %v", name, err)
				}
				b.StopTimer()
				run.close()
			}
		})
		report.add(name, "loopback", procs, res)
	}
	base := clusterBenchOpts{steps: clusterSteps, batch: stepBatch}
	clusterBench(fmt.Sprintf("ClusterRun/hybrid/%dsteps-batch%d", clusterSteps, stepBatch), base)
	killOpts := base
	killOpts.kill = true
	clusterBench(fmt.Sprintf("ClusterRecovery/hybrid/%dsteps-batch%d-one-kill", clusterSteps, stepBatch), killOpts)

	// Snapshot-interval sweep: k = 1 (every step), k = 4, and k = steps
	// ("all": one snapshot at the end of the run). Snapshot traffic falls
	// k-fold as k grows; the remaining cost is the run itself.
	for _, every := range []int{1, 4, clusterSteps} {
		o := base
		o.snapEvery = every
		clusterBench(fmt.Sprintf("ClusterSnapshotInterval/hybrid/%dsteps-batch%d-every-%d",
			clusterSteps, stepBatch, every), o)
	}

	// Rank-0 dedup: the hybrid plan's first group is 2-way split, so
	// dedup halves its snapshot traffic (k-fold for k-way groups) while
	// the tail group is unaffected.
	for _, dedup := range []bool{false, true} {
		o := base
		o.snapEvery = 1
		o.dedup = dedup
		clusterBench(fmt.Sprintf("ClusterSnapshotDedup/hybrid/%dsteps-batch%d-dedup-%v",
			clusterSteps, stepBatch, dedup), o)
	}

	// ClusterDurableRun: the same fault-free run persisting every piece of
	// recovery state to an on-disk ledger — the durability overhead.
	durable := base
	durable.durable = true
	clusterBench(fmt.Sprintf("ClusterDurableRun/hybrid/%dsteps-batch%d", clusterSteps, stepBatch), durable)

	// CoordinatorResume: a durable run is crashed mid-stream (seeded kill,
	// no restart budget), then the timed section restarts the coordinator
	// from the ledger — manifest load, record replay, worker
	// re-attachment, and step replay through to completion.
	resumeRes := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			o := base
			o.kill = true
			o.durable = true
			o.crash = true
			run := newClusterBenchRun(o)
			if err := run.exec(); err == nil {
				b.Fatal("rigged durable run did not crash")
			}
			b.StartTimer()
			if _, _, err := cluster.ResumeRun(run.inner, run.ledgerDir, cluster.ResumeConfig{
				JoinTimeout: 10 * time.Second,
			}); err != nil {
				b.Fatalf("coordinator resume: %v", err)
			}
			b.StopTimer()
			run.close()
		}
	})
	report.add(fmt.Sprintf("CoordinatorResume/hybrid/%dsteps-batch%d", clusterSteps, stepBatch), "loopback", procs, resumeRes)
}

// topologySuite runs the same 4-device plan (a 3-way-split front group
// feeding a single-device tail) on three workers under both topologies
// and attributes the traffic by role: the coordinator's dial network and
// the workers' shared peer dial network each get their own Meter. Under
// the hub every activation and gradient reduction crosses the
// coordinator; under the ring those travel worker-to-worker and the
// coordinator keeps only batches, losses, and barriers — the
// coord_bytes_per_step column is the PR's headline number. Per-step
// bytes are marginal (a 2×steps run minus a steps run), so the
// session-fixed model broadcast and trained-weight return — identical
// under both topologies — cancel out of the steady-state figure.
func topologySuite(report *Report, quick bool, procs int) {
	steps, batch := 6, 18
	if quick {
		steps, batch = 3, 12
	}
	p := sched.Plan{Name: "dp3-tail", Groups: []sched.Group{
		{Devices: []int{0, 1, 2}, Blocks: []int{0, 1}},
		{Devices: []int{3}, Blocks: []int{2, 3}},
	}}
	tiny := distill.DefaultTinyConfig()
	data := dataset.NewRandom(rand.New(rand.NewSource(5)), 2*steps*batch, 3, tiny.Height, tiny.Width, 4)
	batches := data.Batches(batch)

	// runOnce executes one fresh 3-worker cluster run of nb batches under
	// topo, metering coordinator and peer dials separately. With a non-nil
	// b only the Run call is timed.
	runOnce := func(topo string, nb int, b *testing.B) (coordBytes, peerBytes int64) {
		inner := transport.NewLoopback()
		coordMeter := transport.NewMeter(inner)
		peerMeter := transport.NewMeter(inner)
		var addrs []string
		var workers []*cluster.Worker
		done := make(chan struct{})
		var wg sync.WaitGroup
		for j := 0; j < 3; j++ {
			lis, err := inner.Listen("")
			if err != nil {
				panic(err)
			}
			w := cluster.NewWorker(lis, cluster.WorkerConfig{Sessions: 1, Dial: peerMeter})
			workers = append(workers, w)
			addrs = append(addrs, w.Addr())
			wg.Add(1)
			go func() { defer wg.Done(); w.Serve() }()
		}
		go func() { wg.Wait(); close(done) }()
		wb := distill.NewTinyWorkbench(tiny)
		cfg := cluster.Config{
			Plan: p, DPU: true, LR: 0.05, Momentum: 0.9,
			Topology: topo, Spec: cluster.TinySpec(tiny),
			// Ring workers regenerate the batch schedule from this recipe
			// instead of receiving tensors, so the coordinator's marginal
			// traffic is pure control plane.
			Data: wire.DataSpec{Seed: 5, N: 2 * steps * batch, C: 3,
				H: tiny.Height, W: tiny.Width, Classes: 4, Batch: batch},
		}
		if b != nil {
			b.StartTimer()
		}
		_, err := cluster.Run(coordMeter, addrs, wb, batches[:nb], cfg)
		if b != nil {
			b.StopTimer()
		}
		if err != nil {
			panic(fmt.Sprintf("topology bench (%s, %d steps): %v", topo, nb, err))
		}
		coordBytes = coordMeter.Totals().Bytes()
		peerBytes = peerMeter.Totals().Bytes()
		for _, w := range workers {
			w.Close()
		}
		<-done
		return coordBytes, peerBytes
	}

	for _, topo := range []string{"hub", "ring"} {
		res := testing.Benchmark(func(b *testing.B) {
			b.StopTimer()
			for i := 0; i < b.N; i++ {
				runOnce(topo, steps, b)
			}
		})
		report.add(fmt.Sprintf("ClusterTopology/%s/dp3-tail-%dsteps-batch%d", topo, steps, batch), "loopback", procs, res)
		c1, p1 := runOnce(topo, steps, nil)
		c2, p2 := runOnce(topo, 2*steps, nil)
		rec := &report.Records[len(report.Records)-1]
		rec.CoordBytesPerStep = float64(c2-c1) / float64(steps)
		rec.PeerBytesPerStep = float64(p2-p1) / float64(steps)
	}
}

// repartitionSuite measures what dynamic repartitioning buys. The same
// straggler-limited ring run — three workers, the first one's compute
// throttled 4x (bit-identical, just slower), under a front-loaded
// all-unsplit plan — is timed twice: with the controller off, the whole
// synchronous pipeline runs at the straggler's pace for every step; with
// it on, a planned mid-run cut sheds the straggler's extra block onto a
// fast sibling and the steady-state step latency recovers. Both runs
// produce identical bits by construction, so the delta between the two
// records is pure wall-clock — the headline number for -repartition.
func repartitionSuite(report *Report, quick bool, procs int) {
	steps, batch := 12, 8
	if quick {
		steps, batch = 6, 4
	}
	const factor = 4
	p := sched.Plan{Name: "lopsided", Groups: []sched.Group{
		{Devices: []int{0}, Blocks: []int{0, 1}},
		{Devices: []int{1}, Blocks: []int{2}},
		{Devices: []int{2}, Blocks: []int{3}},
	}}
	tiny := distill.DefaultTinyConfig()
	data := dataset.NewRandom(rand.New(rand.NewSource(5)), steps*batch, 3, tiny.Height, tiny.Width, 4)
	batches := data.Batches(batch)

	runOnce := func(repart bool, b *testing.B) {
		inner := transport.NewLoopback()
		var addrs []string
		var workers []*cluster.Worker
		done := make(chan struct{})
		var wg sync.WaitGroup
		for j := 0; j < 3; j++ {
			lis, err := inner.Listen("")
			if err != nil {
				panic(err)
			}
			cfg := cluster.WorkerConfig{Sessions: 1, Rejoin: true, Dial: inner}
			if j == 0 {
				cfg.Backend = tensor.NewThrottled(tensor.Serial{}, factor)
			}
			w := cluster.NewWorker(lis, cfg)
			workers = append(workers, w)
			addrs = append(addrs, w.Addr())
			wg.Add(1)
			go func() { defer wg.Done(); w.Serve() }()
		}
		go func() { wg.Wait(); close(done) }()
		wb := distill.NewTinyWorkbench(tiny)
		cfg := cluster.Config{
			Plan: p, DPU: true, LR: 0.05, Momentum: 0.9,
			Topology: "ring", Spec: cluster.TinySpec(tiny),
			Repartition: cluster.RepartitionConfig{Enabled: repart,
				Threshold: 0.2, Hysteresis: 2, Warmup: 2},
			JoinTimeout: 10 * time.Second,
		}
		if b != nil {
			b.StartTimer()
		}
		_, err := cluster.Run(inner, addrs, wb, batches, cfg)
		if b != nil {
			b.StopTimer()
		}
		if err != nil {
			panic(fmt.Sprintf("repartition bench (repart=%v): %v", repart, err))
		}
		for _, w := range workers {
			w.Close()
		}
		<-done
	}

	for _, repart := range []bool{false, true} {
		mode := "static"
		if repart {
			mode = "repartition"
		}
		res := testing.Benchmark(func(b *testing.B) {
			b.StopTimer()
			for i := 0; i < b.N; i++ {
				runOnce(repart, b)
			}
		})
		report.add(fmt.Sprintf("ClusterStraggler/%s/lopsided-%dsteps-batch%d-slow%d",
			mode, steps, batch, factor), "loopback", procs, res)
	}
}

// clusterBenchOpts selects a prepared loopback cluster's shape: a chaos
// kill of the second-group worker at the middle step (recovered within
// the budget, or — with crash — failing a durable run so ResumeRun can be
// timed), the snapshot policy, and on-disk ledger persistence.
type clusterBenchOpts struct {
	steps, batch int
	kill         bool
	snapEvery    int
	dedup        bool
	durable      bool
	crash        bool // no restart budget: the kill fails the run
}

// clusterBenchRun is one prepared loopback cluster (2 workers, hybrid
// plan) ready to execute.
type clusterBenchRun struct {
	inner     transport.Network
	net       transport.Network
	addrs     []string
	workers   []*cluster.Worker
	batches   []dataset.Batch
	cfg       cluster.Config
	ledgerDir string
	done      chan struct{}
}

func newClusterBenchRun(o clusterBenchOpts) *clusterBenchRun {
	tiny := distill.DefaultTinyConfig()
	data := dataset.NewRandom(rand.New(rand.NewSource(5)), o.steps*o.batch, 3, tiny.Height, tiny.Width, 4)
	inner := transport.NewLoopback()
	r := &clusterBenchRun{
		inner:   inner,
		batches: data.Batches(o.batch),
		done:    make(chan struct{}),
		cfg: cluster.Config{
			Plan: sched.Plan{Name: "hybrid", Groups: []sched.Group{
				{Devices: []int{0, 1}, Blocks: []int{0, 1}},
				{Devices: []int{2}, Blocks: []int{2, 3}},
			}},
			DPU: true, LR: 0.05, Momentum: 0.9,
			Spec:        cluster.TinySpec(tiny),
			MaxRestarts: 1, // snapshots on in every variant: deltas isolate the mechanism under test
			Snapshot:    cluster.SnapshotPolicy{Interval: o.snapEvery, Rank0Dedup: o.dedup},
		},
	}
	if o.crash {
		r.cfg.MaxRestarts = 0
	}
	if o.durable {
		dir, err := os.MkdirTemp("", "pipebd-bench-ledger-*")
		if err != nil {
			panic(err)
		}
		r.ledgerDir = dir
		r.cfg.LedgerDir = dir
	}
	r.net = inner
	if o.kill {
		r.net = transport.NewChaos(inner, transport.Fault{
			Trigger: transport.Trigger{Conn: 1, Op: transport.OpRecv,
				Kind: wire.KindLosses, Step: int32(o.steps / 2), Count: 1},
			Action: transport.ActKill,
		})
	}
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		lis, err := inner.Listen("")
		if err != nil {
			panic(err)
		}
		w := cluster.NewWorker(lis, cluster.WorkerConfig{Sessions: 1, Rejoin: true})
		r.workers = append(r.workers, w)
		r.addrs = append(r.addrs, w.Addr())
		wg.Add(1)
		go func() { defer wg.Done(); w.Serve() }()
	}
	go func() { wg.Wait(); close(r.done) }()
	return r
}

func (r *clusterBenchRun) exec() error {
	w := distill.NewTinyWorkbench(distill.DefaultTinyConfig())
	_, err := cluster.Run(r.net, r.addrs, w, r.batches, r.cfg)
	return err
}

func (r *clusterBenchRun) close() {
	for _, w := range r.workers {
		w.Close()
	}
	<-r.done
	if r.ledgerDir != "" {
		os.RemoveAll(r.ledgerDir)
	}
}

func (r *Report) add(name, backend string, procs int, res testing.BenchmarkResult) {
	nsPerOp := float64(res.T.Nanoseconds()) / float64(res.N)
	rec := Record{
		Name:      name,
		Backend:   backend,
		Procs:     procs,
		NsPerOp:   nsPerOp,
		OpsPerSec: 1e9 / nsPerOp,
		N:         res.N,
	}
	if res.Bytes > 0 {
		rec.MBPerSec = float64(res.Bytes) * float64(res.N) / res.T.Seconds() / 1e6
	}
	r.Records = append(r.Records, rec)
}
