// Command pipebd-bench captures the repository's performance baseline as
// machine-readable JSON: MatMul and Conv2d-forward kernel throughput and
// the numeric engine's pipeline-step rate, each measured on the serial
// reference backend and the parallel backend. The output file (committed
// as BENCH_PR2.json) gives later PRs a trajectory to compare against.
//
// Usage:
//
//	pipebd-bench -out BENCH_PR2.json          # full sizes
//	pipebd-bench -out bench.json -quick       # small sizes for smoke tests
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"testing"

	"pipebd/internal/dataset"
	"pipebd/internal/distill"
	"pipebd/internal/engine"
	"pipebd/internal/nn"
	"pipebd/internal/sched"
	"pipebd/internal/tensor"
)

// Record is one benchmark measurement.
type Record struct {
	Name      string  `json:"name"`
	Backend   string  `json:"backend"`
	NsPerOp   float64 `json:"ns_per_op"`
	OpsPerSec float64 `json:"ops_per_sec"`
	N         int     `json:"iterations"`
	// MBPerSec is the data throughput for kernels that declare bytes
	// moved (MatMul); 0 otherwise.
	MBPerSec float64 `json:"mb_per_sec,omitempty"`
}

// Report is the file layout of BENCH_PR2.json.
type Report struct {
	GoMaxProcs int      `json:"go_max_procs"`
	GoVersion  string   `json:"go_version"`
	Quick      bool     `json:"quick"`
	Records    []Record `json:"benchmarks"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "pipebd-bench: %v\n", err)
		os.Exit(2)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("pipebd-bench", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	out := fs.String("out", "BENCH_PR2.json", "output JSON path (- for stdout)")
	quick := fs.Bool("quick", false, "small problem sizes (smoke testing)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			fmt.Fprintf(stdout, "Usage of %s:\n", fs.Name())
			fs.SetOutput(stdout)
			fs.PrintDefaults()
			return nil
		}
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}

	backends := []tensor.Backend{tensor.Serial{}, tensor.NewParallel(0)}
	report := Report{GoMaxProcs: runtime.GOMAXPROCS(0), GoVersion: runtime.Version(), Quick: *quick}

	matmulSizes := []int{128, 256, 512}
	convBatch, convC, convHW := 8, 16, 28
	stepBatches, stepBatch := 4, 16
	if *quick {
		matmulSizes = []int{32}
		convBatch, convC, convHW = 2, 4, 8
		stepBatches, stepBatch = 2, 8
	}

	// MatMul: the GEMM at the heart of Linear and (via im2col) Conv2d.
	rng := rand.New(rand.NewSource(1))
	for _, size := range matmulSizes {
		x := tensor.Rand(rng, -1, 1, size, size)
		y := tensor.Rand(rng, -1, 1, size, size)
		dst := tensor.New(size, size)
		for _, be := range backends {
			be := be
			res := testing.Benchmark(func(b *testing.B) {
				b.SetBytes(int64(2 * size * size * size * 4))
				for i := 0; i < b.N; i++ {
					be.MatMulInto(dst, x, y)
				}
			})
			report.add(fmt.Sprintf("MatMul/%dx%dx%d", size, size, size), be.Name(), res)
		}
	}

	// ConvForward: a full conv3x3 layer forward (im2col + GEMM + bias).
	for _, be := range backends {
		be := be
		conv := nn.NewConv2d(rand.New(rand.NewSource(2)), convC, convC, 3, 1, 1, true)
		conv.SetBackend(be)
		x := tensor.Rand(rand.New(rand.NewSource(3)), -1, 1, convBatch, convC, convHW, convHW)
		res := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				conv.Forward(x, false)
			}
		})
		report.add(fmt.Sprintf("ConvForward/%dx%dx%dx%d", convBatch, convC, convHW, convHW), be.Name(), res)
	}

	// PipelineStep: one full hybrid-plan pipelined training pass over the
	// tiny workbench; ops_per_sec × batches = training steps per second.
	tiny := distill.DefaultTinyConfig()
	data := dataset.NewRandom(rand.New(rand.NewSource(4)), stepBatches*stepBatch, 3, tiny.Height, tiny.Width, 4)
	batches := data.Batches(stepBatch)
	plan := sched.Plan{Name: "hybrid", Groups: []sched.Group{
		{Devices: []int{0, 1}, Blocks: []int{0, 1}},
		{Devices: []int{2}, Blocks: []int{2, 3}},
	}}
	for _, be := range backends {
		be := be
		res := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				w := distill.NewTinyWorkbench(tiny)
				b.StartTimer()
				engine.RunPipelined(w, batches, engine.Config{Plan: plan, DPU: true,
					LR: 0.05, Momentum: 0.9, Backend: be})
			}
		})
		report.add(fmt.Sprintf("PipelineStep/hybrid/%dsteps-batch%d", stepBatches, stepBatch), be.Name(), res)
	}

	data2, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data2 = append(data2, '\n')
	if *out == "-" {
		_, err = stdout.Write(data2)
		return err
	}
	if err := os.WriteFile(*out, data2, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "pipebd-bench: wrote %d benchmarks to %s\n", len(report.Records), *out)
	return nil
}

func (r *Report) add(name, backend string, res testing.BenchmarkResult) {
	nsPerOp := float64(res.T.Nanoseconds()) / float64(res.N)
	rec := Record{
		Name:      name,
		Backend:   backend,
		NsPerOp:   nsPerOp,
		OpsPerSec: 1e9 / nsPerOp,
		N:         res.N,
	}
	if res.Bytes > 0 {
		rec.MBPerSec = float64(res.Bytes) * float64(res.N) / res.T.Seconds() / 1e6
	}
	r.Records = append(r.Records, rec)
}
