package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunFlagErrors(t *testing.T) {
	for _, args := range [][]string{{"-out"}, {"stray"}} {
		if err := run(args, &strings.Builder{}); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

// TestRunQuickWritesReport produces a quick report and checks that every
// benchmark family appears for both backends with sane numbers.
func TestRunQuickWritesReport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	var out strings.Builder
	if err := run([]string{"-quick", "-out", path}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read report: %v", err)
	}
	var rep Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("parse report: %v", err)
	}
	if !rep.Quick || rep.GoMaxProcs < 1 {
		t.Fatalf("bad header: %+v", rep)
	}
	seen := map[string]map[string]bool{}
	for _, r := range rep.Records {
		if r.NsPerOp <= 0 || r.OpsPerSec <= 0 || r.N <= 0 {
			t.Fatalf("degenerate record: %+v", r)
		}
		family := strings.SplitN(r.Name, "/", 2)[0]
		if seen[family] == nil {
			seen[family] = map[string]bool{}
		}
		seen[family][r.Backend] = true
	}
	for _, family := range []string{"MatMul", "ConvForward", "PipelineStep"} {
		for _, backend := range []string{"serial", "parallel"} {
			if !seen[family][backend] {
				t.Errorf("missing %s on %s backend; got %+v", family, backend, seen)
			}
		}
	}
	// The recovery-latency pair: a fault-free cluster run and the same
	// run surviving one injected worker kill.
	for _, family := range []string{"ClusterRun", "ClusterRecovery"} {
		if !seen[family]["loopback"] {
			t.Errorf("missing %s on loopback; got %+v", family, seen)
		}
	}
}

// TestCompareMode diffs two synthetic reports through -in/-compare: the
// table must pair records by (name, backend, procs), default the procs of
// pre-PR5 records to the report header, compute old/new speedups, and
// call out benchmarks present on only one side.
func TestCompareMode(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, rep Report) string {
		raw, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	// Old baseline: no per-record procs (pre-PR5 layout), header procs 1.
	oldPath := write("old.json", Report{GoMaxProcs: 1, Records: []Record{
		{Name: "MatMul/64", Backend: "serial", NsPerOp: 4000, OpsPerSec: 250000, N: 10},
		{Name: "Gone/1", Backend: "serial", NsPerOp: 5, OpsPerSec: 2e8, N: 10},
	}})
	newPath := write("new.json", Report{GoMaxProcs: 1, Records: []Record{
		{Name: "MatMul/64", Backend: "serial", Procs: 1, NsPerOp: 1000, OpsPerSec: 1e6, N: 10},
		{Name: "Fresh/1", Backend: "serial", Procs: 4, NsPerOp: 7, OpsPerSec: 1.4e8, N: 10},
	}})
	var out strings.Builder
	if err := run([]string{"-in", newPath, "-compare", oldPath}, &out); err != nil {
		t.Fatalf("run compare: %v", err)
	}
	got := out.String()
	for _, want := range []string{"4.00x", "MatMul/64", "only in new report: Fresh/1/serial@4", "only in old report: Gone/1/serial/1"} {
		if !strings.Contains(got, want) {
			t.Errorf("compare output missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "wrote") {
		t.Errorf("-in mode must not write a report:\n%s", got)
	}
}

// TestParseProcs covers the -procs sweep flag.
func TestParseProcs(t *testing.T) {
	if got, err := parseProcs("", 3); err != nil || len(got) != 1 || got[0] != 3 {
		t.Fatalf("parseProcs(\"\") = %v, %v", got, err)
	}
	if got, err := parseProcs("1, 4", 3); err != nil || len(got) != 2 || got[0] != 1 || got[1] != 4 {
		t.Fatalf("parseProcs(\"1, 4\") = %v, %v", got, err)
	}
	for _, bad := range []string{"0", "x", "1,,2", "-2"} {
		if _, err := parseProcs(bad, 3); err == nil {
			t.Errorf("parseProcs(%q) succeeded, want error", bad)
		}
	}
}

// TestHelpPrintsUsage: -h must print flag documentation and succeed.
func TestHelpPrintsUsage(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-h"}, &out); err != nil {
		t.Fatalf("run(-h): %v", err)
	}
	if !strings.Contains(out.String(), "-out") {
		t.Fatalf("-h output missing flag docs:\n%s", out.String())
	}
}
