package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunFlagErrors(t *testing.T) {
	for _, args := range [][]string{{"-out"}, {"stray"}} {
		if err := run(args, &strings.Builder{}); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

// TestRunQuickWritesReport produces a quick report and checks that every
// benchmark family appears for both backends with sane numbers.
func TestRunQuickWritesReport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	var out strings.Builder
	if err := run([]string{"-quick", "-out", path}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read report: %v", err)
	}
	var rep Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("parse report: %v", err)
	}
	if !rep.Quick || rep.GoMaxProcs < 1 {
		t.Fatalf("bad header: %+v", rep)
	}
	seen := map[string]map[string]bool{}
	for _, r := range rep.Records {
		if r.NsPerOp <= 0 || r.OpsPerSec <= 0 || r.N <= 0 {
			t.Fatalf("degenerate record: %+v", r)
		}
		family := strings.SplitN(r.Name, "/", 2)[0]
		if seen[family] == nil {
			seen[family] = map[string]bool{}
		}
		seen[family][r.Backend] = true
	}
	for _, family := range []string{"MatMul", "ConvForward", "PipelineStep"} {
		for _, backend := range []string{"serial", "parallel"} {
			if !seen[family][backend] {
				t.Errorf("missing %s on %s backend; got %+v", family, backend, seen)
			}
		}
	}
	// The recovery-latency pair: a fault-free cluster run and the same
	// run surviving one injected worker kill.
	for _, family := range []string{"ClusterRun", "ClusterRecovery"} {
		if !seen[family]["loopback"] {
			t.Errorf("missing %s on loopback; got %+v", family, seen)
		}
	}
}

// TestHelpPrintsUsage: -h must print flag documentation and succeed.
func TestHelpPrintsUsage(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-h"}, &out); err != nil {
		t.Fatalf("run(-h): %v", err)
	}
	if !strings.Contains(out.String(), "-out") {
		t.Fatalf("-h output missing flag docs:\n%s", out.String())
	}
}
