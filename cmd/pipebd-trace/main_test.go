package main

import (
	"strings"
	"testing"
)

func TestRunFlagErrors(t *testing.T) {
	cases := [][]string{
		{"-workload", "mnist"}, // unknown workload
		{"-system", "tpu"},     // unknown system
		{"-strategy", "magic"}, // unknown strategy
		{"-steps", "0"},        // non-positive steps
		{"-width"},             // missing value
		{"stray"},              // positional junk
	}
	for _, args := range cases {
		if err := run(args, &strings.Builder{}); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

// TestRunEndToEnd renders a timeline for every strategy and checks the
// Gantt header and device tracks appear.
func TestRunEndToEnd(t *testing.T) {
	for _, strategy := range []string{"DP", "LS", "TR", "TR+DPU", "TR+IR", "TR+DPU+AHD"} {
		var out strings.Builder
		args := []string{"-workload", "nas-imagenet", "-strategy", strategy, "-steps", "3", "-width", "80"}
		if err := run(args, &out); err != nil {
			t.Fatalf("run(%s): %v", strategy, err)
		}
		got := out.String()
		if !strings.Contains(got, "schedule:") {
			t.Errorf("%s output missing schedule header:\n%s", strategy, got)
		}
		if !strings.Contains(got, "gpu0") || !strings.Contains(got, "loader") {
			t.Errorf("%s output has no device/loader tracks:\n%s", strategy, got)
		}
	}
}

// TestHelpPrintsUsage: -h must print flag documentation and succeed.
func TestHelpPrintsUsage(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-h"}, &out); err != nil {
		t.Fatalf("run(-h): %v", err)
	}
	if !strings.Contains(out.String(), "-strategy") {
		t.Fatalf("-h output missing flag docs:\n%s", out.String())
	}
}
