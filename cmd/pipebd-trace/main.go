// Command pipebd-trace renders an ASCII Gantt timeline of a simulated
// training schedule — the textual analogue of the paper's Fig. 3 and
// Fig. 5b/5c schedule illustrations.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"pipebd/internal/hw"
	"pipebd/internal/model"
	"pipebd/internal/pipeline"
	"pipebd/internal/profilegen"
	"pipebd/internal/sched"
	"pipebd/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "pipebd-trace: %v\n", err)
		os.Exit(2)
	}
}

// run parses args and writes the Gantt timeline to stdout. Split from
// main for the smoke tests.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("pipebd-trace", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	workload := fs.String("workload", "nas-imagenet",
		"workload: nas-cifar10|nas-imagenet|compression-cifar10|compression-imagenet|transformer-tokens")
	system := fs.String("system", "a6000", "system preset: a6000|2080ti")
	strategy := fs.String("strategy", "TR+DPU+AHD", "DP|LS|TR|TR+DPU|TR+IR|TR+DPU+AHD")
	batch := fs.Int("batch", 256, "global batch size")
	steps := fs.Int("steps", 5, "steps to simulate")
	width := fs.Int("width", 120, "chart width in characters")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			fmt.Fprintf(stdout, "Usage of %s:\n", fs.Name())
			fs.SetOutput(stdout)
			fs.PrintDefaults()
			return nil
		}
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if *steps <= 0 || *batch <= 0 || *width <= 0 {
		return fmt.Errorf("-steps, -batch, and -width must be positive")
	}

	var w model.Workload
	switch *workload {
	case "nas-cifar10":
		w = model.NAS(false)
	case "nas-imagenet":
		w = model.NAS(true)
	case "compression-cifar10":
		w = model.Compression(false)
	case "compression-imagenet":
		w = model.Compression(true)
	case "transformer-tokens":
		w = model.TransformerDistill()
	default:
		return fmt.Errorf("unknown workload %q", *workload)
	}
	var sys hw.System
	switch *system {
	case "a6000":
		sys = hw.A6000x4()
	case "2080ti":
		sys = hw.RTX2080Tix4()
	default:
		return fmt.Errorf("unknown system %q", *system)
	}

	cfg := pipeline.Config{Workload: w, System: sys, GlobalBatch: *batch,
		MaxSteps: *steps, Record: true}
	prof := profilegen.Measure(w, sys.GPUs[0], *batch, sys.NumDevices(), 100)

	var tracks pipeline.Tracks
	var desc string
	switch *strategy {
	case "DP":
		report, tk := pipeline.RunDPTracks(cfg)
		tracks, desc = tk, report.ScheduleDesc
	case "LS":
		report, tk := pipeline.RunLSTracks(cfg)
		tracks, desc = tk, report.ScheduleDesc
	case "TR", "TR+DPU":
		plan := sched.TRContiguous(prof, sys.NumDevices())
		report, tk := pipeline.RunTRTracks(cfg, plan, *strategy == "TR+DPU", *strategy)
		tracks, desc = tk, report.ScheduleDesc
	case "TR+IR":
		plan := sched.InternalRelaying(sys.NumDevices(), w.NumBlocks())
		report, tk := pipeline.RunTRTracks(cfg, plan, true, "TR+IR")
		tracks, desc = tk, report.ScheduleDesc
	case "TR+DPU+AHD":
		plan := sched.AHD(prof, sys, sched.DefaultAHDConfig())
		report, tk := pipeline.RunTRTracks(cfg, plan, true, "TR+DPU+AHD")
		tracks, desc = tk, report.ScheduleDesc
	default:
		return fmt.Errorf("unknown strategy %q", *strategy)
	}

	fmt.Fprintf(stdout, "%s / %s / %s\nschedule: %s\n\n", w.Name, sys.Name, *strategy, desc)
	var end float64
	for _, d := range tracks.Devs {
		if d.FreeAt() > end {
			end = d.FreeAt()
		}
	}
	fmt.Fprint(stdout, trace.Gantt(append(tracks.Devs, tracks.Loader), 0, end, *width))
	return nil
}
