package pipeline

import (
	"testing"

	"pipebd/internal/hw"
	"pipebd/internal/model"
	"pipebd/internal/sched"
)

func mixedSystem() hw.System {
	return sched.HeteroSystem("2xA6000+2x2080Ti", hw.PCIe4(), hw.EPYC7302Host(),
		hw.RTXA6000(), hw.RTXA6000(), hw.RTX2080Ti(), hw.RTX2080Ti())
}

func TestHeteroSharesBeatEqualSplit(t *testing.T) {
	// On a mixed system, a group spanning unequal GPUs should run faster
	// with throughput-proportional shares than with an equal split.
	w := model.NAS(false)
	sys := mixedSystem()
	cfg := quickCfg(w, sys)

	groups := []sched.Group{
		{Devices: []int{0, 1, 2, 3}, Blocks: []int{0, 1, 2, 3, 4, 5}},
	}
	equal := sched.Plan{Name: "equal", Groups: groups}
	equalRep := RunTR(cfg, equal, true, "IR-equal")

	proportional := sched.AHDHetero(w, sys, cfg.GlobalBatch, sched.DefaultHeteroConfig())
	propRep := RunTR(cfg, proportional, true, "AHD-hetero")

	if propRep.EpochTime >= equalRep.EpochTime {
		t.Fatalf("hetero-aware plan (%v) should beat naive equal split (%v): %s",
			propRep.EpochTime, equalRep.EpochTime, proportional.Describe())
	}
}

func TestHeteroExecutorUsesPerDeviceSpeeds(t *testing.T) {
	// Two single-device groups on different GPU types: the slower GPU's
	// device must accumulate more busy time for the same blocks.
	w := model.NAS(false)
	sys := mixedSystem()
	cfg := quickCfg(w, sys)
	plan := sched.Plan{Name: "split", Groups: []sched.Group{
		{Devices: []int{0}, Blocks: []int{0, 1, 2}}, // A6000
		{Devices: []int{1}, Blocks: []int{3}},       // A6000
		{Devices: []int{2}, Blocks: []int{4}},       // 2080Ti
		{Devices: []int{3}, Blocks: []int{5}},       // 2080Ti
	}}
	rep := RunTR(cfg, plan, true, "hetero-tr")
	// Sanity: accounting still spans the epoch on every rank.
	for r, rank := range rep.Ranks {
		total := rank.TotalBusy() + rank.Idle
		if diff := total - rep.EpochTime; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("rank %d accounting broken: %v vs %v", r, total, rep.EpochTime)
		}
	}

	// Cross-check: the same single block costs more on the 2080Ti.
	slow := sched.Plan{Name: "slow", Groups: []sched.Group{
		{Devices: []int{0}, Blocks: []int{0, 1, 2, 3, 4}},
		{Devices: []int{1}, Blocks: []int{5}}, // A6000 runs block 5
		{Devices: []int{2}, Blocks: nil},
		{Devices: []int{3}, Blocks: nil},
	}}
	_ = slow // constructing an invalid plan is rejected; assert via validation
	if err := slow.Validate(4, 6); err == nil {
		t.Fatal("plan with empty groups must be invalid")
	}
}

func TestHeteroExplicitShares(t *testing.T) {
	w := model.NAS(false)
	sys := mixedSystem()
	cfg := quickCfg(w, sys)
	plan := sched.Plan{Name: "manual", Groups: []sched.Group{
		{Devices: []int{0, 1}, Blocks: []int{0, 1, 2}, Shares: []int{160, 96}},
		{Devices: []int{2, 3}, Blocks: []int{3, 4, 5}},
	}}
	rep := RunTR(cfg, plan, true, "manual-shares")
	if rep.EpochTime <= 0 {
		t.Fatal("hetero run produced no time")
	}
	// Rank 0 (share 160) must report more memory than rank 1 (share 96):
	// activations scale with the local batch.
	if rep.Ranks[0].PeakMemBytes <= rep.Ranks[1].PeakMemBytes {
		t.Fatalf("bigger share should mean more memory: %d vs %d",
			rep.Ranks[0].PeakMemBytes, rep.Ranks[1].PeakMemBytes)
	}
}

func TestHeteroBadSharesPanic(t *testing.T) {
	w := model.NAS(false)
	sys := mixedSystem()
	cfg := quickCfg(w, sys)
	plan := sched.Plan{Name: "bad", Groups: []sched.Group{
		{Devices: []int{0, 1}, Blocks: []int{0, 1, 2}, Shares: []int{100, 100}},
		{Devices: []int{2, 3}, Blocks: []int{3, 4, 5}},
	}}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on shares not summing to the batch")
		}
	}()
	RunTR(cfg, plan, true, "bad-shares")
}
