// Package pipeline contains the schedule executors: given a workload, a
// system model, and a schedule, each executor sweeps one training epoch
// over the virtual-time simulator and reports epoch time, per-rank busy
// breakdowns, and per-rank peak memory.
//
// Executors for every configuration the paper evaluates:
//
//   - RunDP — the data-parallel block-by-block baseline [9] (Fig. 3a)
//   - RunLS — the layerwise bin-packing baseline [7]
//   - RunTR — teacher relaying, with or without decoupled parameter
//     update, driven by any sched.Plan (plain contiguous TR, AHD hybrid
//     plans, and the internal-relaying ablation are all plans)
package pipeline

import (
	"fmt"

	"pipebd/internal/cost"
	"pipebd/internal/hw"
	"pipebd/internal/metrics"
	"pipebd/internal/model"
	"pipebd/internal/sim"
)

// Config parameterizes one simulated epoch.
type Config struct {
	Workload    model.Workload
	System      hw.System
	GlobalBatch int

	// MaxSteps truncates each dataset pass to this many steps when > 0
	// (useful for Gantt recording and fast tests). The reported Steps
	// and EpochTime then cover only the simulated prefix.
	MaxSteps int

	// Record retains per-track intervals for Gantt rendering.
	Record bool

	// DDPOverlap is the fraction of gradient all-reduce hidden beneath
	// the backward pass (bucketed DDP). Zero value selects the default.
	DDPOverlap float64
}

func (c Config) overlap() float64 {
	if c.DDPOverlap == 0 {
		return 0.7
	}
	return c.DDPOverlap
}

func (c Config) validate() {
	if err := c.System.Validate(); err != nil {
		panic(err)
	}
	if err := c.Workload.Validate(); err != nil {
		panic(err)
	}
	if c.GlobalBatch <= 0 {
		panic("pipeline: GlobalBatch must be positive")
	}
	n := c.System.NumDevices()
	if c.GlobalBatch%n != 0 {
		panic(fmt.Sprintf("pipeline: GlobalBatch %d not divisible by %d devices", c.GlobalBatch, n))
	}
}

// steps returns the number of steps for one dataset pass, honouring
// MaxSteps truncation.
func (c Config) steps() int {
	s := c.Workload.Data.StepsPerEpoch(c.GlobalBatch)
	if c.MaxSteps > 0 && s > c.MaxSteps {
		s = c.MaxSteps
	}
	return s
}

// loadTime returns the shared loader's time to produce the given number
// of samples.
func (c Config) loadTime(samples int) float64 {
	spec := c.Workload.Data
	return c.System.Host.LoadTime(spec.StorageBytes*int64(samples),
		spec.DecodeCPUSeconds*float64(samples))
}

// waitFor stalls dev until ready, attributing the gap to cat (load or
// relay wait). Gaps from barriers are left unattributed and fall into
// idle time during report assembly.
func waitFor(dev *sim.Track, ready float64, cat sim.Category, label string) {
	if gap := ready - dev.FreeAt(); gap > 0 {
		dev.Exec(dev.FreeAt(), gap, cat, label)
	}
}

// ingestBatch makes dev wait for its shard and pay the consumer-side
// per-batch cost (iterator dispatch, collation, host-to-device staging).
func ingestBatch(cfg Config, dev *sim.Track, shardReady float64) {
	waitFor(dev, shardReady, sim.CatLoad, "DL")
	dev.Exec(0, cfg.System.Host.PerBatchOverhead, sim.CatLoad, "DL")
}

// stepOverhead charges one training-loop iteration's fixed host-side cost
// (optimizer housekeeping, loss bookkeeping, dispatch stalls).
func stepOverhead(cfg Config, dev *sim.Track) {
	dev.Exec(0, cfg.System.Host.StepOverhead, sim.CatUpdate, "OV")
}

// epochEnvironment bundles the tracks every executor needs.
type epochEnvironment struct {
	loader *sim.Track
	devs   []*sim.Track
	copies []*sim.Track
}

func newEnvironment(cfg Config) *epochEnvironment {
	n := cfg.System.NumDevices()
	env := &epochEnvironment{
		loader: sim.NewTrack("loader", cfg.Record),
		devs:   make([]*sim.Track, n),
		copies: make([]*sim.Track, n),
	}
	for d := 0; d < n; d++ {
		env.devs[d] = sim.NewTrack(fmt.Sprintf("gpu%d", d), cfg.Record)
		env.copies[d] = sim.NewTrack(fmt.Sprintf("copy%d", d), cfg.Record)
	}
	return env
}

// report assembles a metrics.Report from the environment after the sweep.
func (env *epochEnvironment) report(cfg Config, strategy, scheduleDesc string, steps int, peakMem []int64) metrics.Report {
	var end float64
	for _, d := range env.devs {
		if d.FreeAt() > end {
			end = d.FreeAt()
		}
	}
	ranks := make([]metrics.RankStats, len(env.devs))
	for i, d := range env.devs {
		var busy [sim.NumCategories]float64
		for c := 0; c < sim.NumCategories; c++ {
			busy[c] = d.Busy(sim.Category(c))
		}
		idle := end - d.TotalBusy()
		if idle < 0 {
			idle = 0 // guard against float accumulation residue
		}
		ranks[i] = metrics.RankStats{
			Busy:         busy,
			Idle:         idle,
			PeakMemBytes: peakMem[i],
		}
	}
	return metrics.Report{
		Strategy:     strategy,
		Workload:     cfg.Workload.Name,
		System:       cfg.System.Name,
		GlobalBatch:  cfg.GlobalBatch,
		Steps:        steps,
		EpochTime:    end,
		Ranks:        ranks,
		ScheduleDesc: scheduleDesc,
	}
}

// Tracks exposes the environment's tracks of the last run for Gantt
// rendering; executors return it alongside the report when recording.
type Tracks struct {
	Loader *sim.Track
	Devs   []*sim.Track
	Copies []*sim.Track
}

func (env *epochEnvironment) tracks() Tracks {
	return Tracks{Loader: env.loader, Devs: env.devs, Copies: env.copies}
}

// exposedAllReduce returns the all-reduce time left visible after
// overlapping with the backward pass.
func exposedAllReduce(link hw.Link, bytes int64, k int, bwdTime, overlap float64) float64 {
	t := link.AllReduceTime(bytes, k) - overlap*bwdTime
	if t < 0 {
		return 0
	}
	return t
}

// blockLabel renders "T3"/"S3" style labels for Gantt output.
func blockLabel(prefix string, idx int) string { return fmt.Sprintf("%s%d", prefix, idx) }

// teacherBlocks and studentBlocks are small accessors to keep executor
// code readable.
func teacherBlocks(cfg Config) []cost.Block { return cfg.Workload.Teacher.Net.Blocks }
func studentBlocks(cfg Config) []cost.Block { return cfg.Workload.Student.Net.Blocks }
