package pipeline

import (
	"testing"

	"pipebd/internal/hw"
	"pipebd/internal/model"
	"pipebd/internal/profilegen"
	"pipebd/internal/sched"
)

// Degraded-device (straggler) injection: per-device GPU models let us
// slow one device down — thermal throttling, a failing card, a noisy
// neighbour — and observe how each schedule degrades. This is the
// fault-tolerance face of decoupled parameter update: without DPU every
// step synchronizes on the straggler; with DPU only the relay neighbours
// feel it.

// withStraggler returns the system with device idx derated to the given
// fraction of its compute and bandwidth.
func withStraggler(sys hw.System, idx int, frac float64) hw.System {
	gpus := append([]hw.GPU(nil), sys.GPUs...)
	gpus[idx].PeakFLOPS *= frac
	gpus[idx].MemBandwidth *= frac
	gpus[idx].Name = gpus[idx].Name + " (throttled)"
	out := sys
	out.GPUs = gpus
	return out
}

func TestStragglerHurtsBarrierScheduleMore(t *testing.T) {
	// Slow down the last device to 40%: the barrier schedule (TR) must
	// lose more than the decoupled one (TR+DPU), because every one of
	// its steps waits for the straggler's update.
	w := model.NAS(false)
	healthy := hw.A6000x4()
	sick := withStraggler(healthy, 3, 0.4)

	prof := profilegen.Measure(w, healthy.GPUs[0], 256, 4, 10)
	plan := sched.TRContiguous(prof, 4)

	run := func(sys hw.System, dpu bool) float64 {
		cfg := Config{Workload: w, System: sys, GlobalBatch: 256, MaxSteps: 40}
		return RunTR(cfg, plan, dpu, "probe").EpochTime
	}

	barrierSlowdown := run(sick, false) / run(healthy, false)
	dpuSlowdown := run(sick, true) / run(healthy, true)
	if barrierSlowdown <= 1.01 {
		t.Fatalf("straggler had no effect on barrier schedule (%.3fx)", barrierSlowdown)
	}
	if dpuSlowdown > barrierSlowdown+1e-9 {
		t.Fatalf("DPU (%.3fx slowdown) should degrade no worse than the barrier schedule (%.3fx)",
			dpuSlowdown, barrierSlowdown)
	}
}

func TestHeteroPlannerRoutesAroundStraggler(t *testing.T) {
	// Given a straggler, the heterogeneity-aware planner should produce
	// a schedule at least as good as the homogeneous planner's (which
	// believes all devices are healthy).
	w := model.NAS(false)
	sick := withStraggler(hw.A6000x4(), 0, 0.35)
	cfg := Config{Workload: w, System: sick, GlobalBatch: 256, MaxSteps: 40}

	prof := profilegen.Measure(w, hw.RTXA6000(), 256, 4, 10) // healthy profile: planner is blind
	blind := sched.AHD(prof, sick, sched.DefaultAHDConfig())
	aware := sched.AHDHetero(w, sick, 256, sched.DefaultHeteroConfig())

	blindTime := RunTR(cfg, blind, true, "blind").EpochTime
	awareTime := RunTR(cfg, aware, true, "aware").EpochTime
	if awareTime > blindTime*1.001 {
		t.Fatalf("straggler-aware plan (%v, %s) worse than blind plan (%v, %s)",
			awareTime, aware.Describe(), blindTime, blind.Describe())
	}
}

func TestStragglerShiftsShares(t *testing.T) {
	// With a throttled member inside a shared group, proportional shares
	// must shrink on the sick device.
	w := model.NAS(false)
	sick := withStraggler(hw.A6000x4(), 1, 0.5)
	plan := sched.AHDHetero(w, sick, 256, sched.DefaultHeteroConfig())
	for _, g := range plan.Groups {
		if g.Split() < 2 || g.Shares == nil {
			continue
		}
		for j, d := range g.Devices {
			if d != 1 {
				continue
			}
			// Device 1 is throttled: its share must be below the
			// group's equal split.
			if g.Shares[j] >= 256/g.Split() {
				t.Fatalf("throttled device got share %d of %d-way group: %s",
					g.Shares[j], g.Split(), plan.Describe())
			}
		}
	}
}
