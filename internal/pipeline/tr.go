package pipeline

import (
	"pipebd/internal/cost"
	"pipebd/internal/metrics"
	"pipebd/internal/sched"
	"pipebd/internal/sim"
)

// RunTR simulates Pipe-BD's teacher relaying (Fig. 3b-3d, Algorithm 1)
// under an arbitrary relay plan:
//
//   - a plain contiguous plan (sched.TRContiguous) reproduces TR;
//   - dpu=true removes the per-step update barrier (TR+DPU);
//   - a hybrid plan from sched.AHD adds data-parallel block sharing
//     (TR+DPU+AHD);
//   - sched.InternalRelaying degenerates to the TR+IR ablation;
//   - plans with explicit per-member batch shares (sched.AHDHetero)
//     balance heterogeneous devices — each member's times are computed
//     against its own GPU model.
//
// Per step, each group receives its input activation (from the shared
// loader for group 0, relayed over the interconnect otherwise), executes
// its teacher blocks, forwards the boundary activation to the next group
// through the copy engine (overlapped with student execution), trains its
// student blocks, all-reduces gradients within the group when shared, and
// updates either immediately (DPU) or after a global barrier.
func RunTR(cfg Config, plan sched.Plan, dpu bool, name string) metrics.Report {
	cfg.validate()
	env := newEnvironment(cfg)
	rep := runTR(cfg, env, plan, dpu, name)
	return rep
}

// RunTRTracks is RunTR returning the simulation tracks for rendering.
func RunTRTracks(cfg Config, plan sched.Plan, dpu bool, name string) (metrics.Report, Tracks) {
	cfg.validate()
	env := newEnvironment(cfg)
	rep := runTR(cfg, env, plan, dpu, name)
	return rep, env.tracks()
}

// memberState holds one group member's precomputed per-step costs on its
// own device model.
type memberState struct {
	device     int
	localBatch int
	tFwd       []float64 // per block in group
	sFwd       []float64
	sBwd       []float64
	bwdSum     float64
	updateSum  float64
	exposedAR  float64
	peakMem    int64
}

// groupState is one plan group with per-member costs.
type groupState struct {
	sched.Group
	members          []memberState
	inBytesPerSample int64
}

func runTR(cfg Config, env *epochEnvironment, plan sched.Plan, dpu bool, name string) metrics.Report {
	nDev := cfg.System.NumDevices()
	tb, sb := teacherBlocks(cfg), studentBlocks(cfg)
	if err := plan.Validate(nDev, len(tb)); err != nil {
		panic(err)
	}
	steps := cfg.steps()
	link := cfg.System.Link

	groups := make([]*groupState, len(plan.Groups))
	for gi, g := range plan.Groups {
		if err := g.ValidateShares(cfg.GlobalBatch); err != nil {
			panic(err)
		}
		gs := &groupState{Group: g}
		gs.inBytesPerSample = tb[g.Blocks[0]].InBytes(1)
		var gradBytes int64
		for _, b := range g.Blocks {
			gradBytes += sb[b].ParamBytes()
		}
		for j, d := range g.Devices {
			gpu := cfg.System.GPUs[d]
			lb := g.MemberBatch(cfg.GlobalBatch, j)
			m := memberState{device: d, localBatch: lb}
			for _, b := range g.Blocks {
				m.tFwd = append(m.tFwd, cost.BlockFwdTime(gpu, tb[b], lb))
				m.sFwd = append(m.sFwd, cost.BlockFwdTime(gpu, sb[b], lb))
				bwd := cost.BlockBwdTime(gpu, sb[b], lb)
				m.sBwd = append(m.sBwd, bwd)
				m.bwdSum += bwd
				m.updateSum += cost.UpdateTime(gpu, sb[b])
			}
			if g.Split() > 1 {
				m.exposedAR = exposedAllReduce(link, gradBytes, g.Split(), m.bwdSum, cfg.overlap())
			}
			m.peakMem = trPeakMemory(cfg, g, lb)
			gs.members = append(gs.members, m)
		}
		groups[gi] = gs
	}

	for s := 0; s < steps; s++ {
		// Relay order: senders' teacher-forward end times are known when
		// the next group is processed.
		var prevTeacherDone []float64 // per member of previous group
		var prevDevices []int
		for gi, gs := range groups {
			k := gs.Split()
			memberReady := make([]float64, k)
			waitCat := sim.CatComm
			if gi == 0 {
				// The first group loads from the shared host loader.
				waitCat = sim.CatLoad
				for j, m := range gs.members {
					_, end := env.loader.Exec(0, cfg.loadTime(m.localBatch), sim.CatLoad, "DL")
					memberReady[j] = end
				}
			} else {
				// Relay: every member of the previous group sends its
				// shard through its copy engine; receivers are ready
				// when the slowest contributing transfer lands.
				var ready float64
				for pj, sd := range prevDevices {
					bytes := gs.inBytesPerSample * int64(cfg.GlobalBatch/len(prevDevices))
					_, end := env.copies[sd].Exec(prevTeacherDone[pj], link.TransferTime(bytes), sim.CatComm, "TX")
					if end > ready {
						ready = end
					}
				}
				for j := range memberReady {
					memberReady[j] = ready
				}
			}

			// Teacher forward on every member.
			teacherDone := make([]float64, k)
			for j, m := range gs.members {
				dev := env.devs[m.device]
				stepOverhead(cfg, dev)
				if gi == 0 {
					ingestBatch(cfg, dev, memberReady[j])
				} else {
					waitFor(dev, memberReady[j], waitCat, "RX")
				}
				for bi, b := range gs.Blocks {
					dev.Exec(0, m.tFwd[bi], sim.CatTeacherFwd, blockLabel("T", b))
				}
				teacherDone[j] = dev.FreeAt()
			}

			// Student forward/backward, intra-group all-reduce, update.
			for _, m := range gs.members {
				dev := env.devs[m.device]
				for bi, b := range gs.Blocks {
					dev.Exec(0, m.sFwd[bi], sim.CatStudentFwd, blockLabel("S", b))
				}
				for bi := len(gs.Blocks) - 1; bi >= 0; bi-- {
					dev.Exec(0, m.sBwd[bi], sim.CatStudentBwd, blockLabel("S", gs.Blocks[bi]))
				}
				if k > 1 {
					dev.Exec(0, m.exposedAR, sim.CatAllReduce, "DP")
				}
				if dpu {
					dev.Exec(0, m.updateSum, sim.CatUpdate, "U")
				}
			}

			prevTeacherDone = teacherDone
			prevDevices = gs.Devices
		}

		if !dpu {
			// Per-step barrier: updates wait for every device's backward
			// (Fig. 3b), creating the bubbles DPU removes.
			var barrierAt float64
			for _, dev := range env.devs {
				if dev.FreeAt() > barrierAt {
					barrierAt = dev.FreeAt()
				}
			}
			for _, gs := range groups {
				for _, m := range gs.members {
					env.devs[m.device].AdvanceTo(barrierAt)
					env.devs[m.device].Exec(0, m.updateSum, sim.CatUpdate, "UP")
				}
			}
		}
	}

	mem := make([]int64, nDev)
	for _, gs := range groups {
		for _, m := range gs.members {
			mem[m.device] = m.peakMem
		}
	}
	return env.report(cfg, name, plan.Describe(), steps, mem)
}

// trPeakMemory estimates a group member's peak memory: its teacher blocks
// at inference, its student blocks under training, and the relay buffers
// at the group boundaries, all at the member's local batch.
func trPeakMemory(cfg Config, g sched.Group, localBatch int) int64 {
	tb, sb := teacherBlocks(cfg), studentBlocks(cfg)
	var total int64
	for _, b := range g.Blocks {
		total += cost.TeacherBlockMemory(tb[b], localBatch)
		total += cost.StudentBlockMemory(sb[b], localBatch)
	}
	first, last := g.Blocks[0], g.Blocks[len(g.Blocks)-1]
	total += tb[first].InBytes(localBatch) + tb[last].OutBytes(localBatch)
	return total
}

// StrategyName builds the conventional ablation names used in Fig. 4.
func StrategyName(dpu, ahd bool) string {
	switch {
	case ahd && dpu:
		return "TR+DPU+AHD"
	case dpu:
		return "TR+DPU"
	default:
		return "TR"
	}
}

// RunIR simulates the TR+IR ablation (internal relaying): the degenerate
// hybrid plan in which all devices share every block data-parallel and
// teacher activations stay in device memory instead of being relayed.
func RunIR(cfg Config) metrics.Report {
	cfg.validate()
	plan := sched.InternalRelaying(cfg.System.NumDevices(), len(teacherBlocks(cfg)))
	env := newEnvironment(cfg)
	return runTR(cfg, env, plan, true, "TR+IR")
}
