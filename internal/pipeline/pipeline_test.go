package pipeline

import (
	"math"
	"testing"

	"pipebd/internal/hw"
	"pipebd/internal/metrics"
	"pipebd/internal/model"
	"pipebd/internal/profilegen"
	"pipebd/internal/sched"
	"pipebd/internal/sim"
)

// quickCfg returns a truncated configuration that reaches steady state
// but keeps test runtime in milliseconds.
func quickCfg(w model.Workload, sys hw.System) Config {
	return Config{Workload: w, System: sys, GlobalBatch: 256, MaxSteps: 40}
}

func plans(t *testing.T, w model.Workload, sys hw.System) (tr, ahd sched.Plan) {
	t.Helper()
	prof := profilegen.Measure(w, sys.GPUs[0], 256, sys.NumDevices(), 10)
	return sched.TRContiguous(prof, sys.NumDevices()), sched.AHD(prof, sys, sched.DefaultAHDConfig())
}

func allReports(t *testing.T, w model.Workload, sys hw.System) map[string]metrics.Report {
	t.Helper()
	cfg := quickCfg(w, sys)
	trPlan, ahdPlan := plans(t, w, sys)
	return map[string]metrics.Report{
		"DP":         RunDP(cfg),
		"LS":         RunLS(cfg),
		"TR":         RunTR(cfg, trPlan, false, "TR"),
		"TR+DPU":     RunTR(cfg, trPlan, true, "TR+DPU"),
		"TR+IR":      RunIR(cfg),
		"TR+DPU+AHD": RunTR(cfg, ahdPlan, true, "TR+DPU+AHD"),
	}
}

func TestAccountingSpansEpoch(t *testing.T) {
	// For every strategy and rank: busy + idle == epoch time.
	for _, w := range []model.Workload{model.NAS(false), model.Compression(true)} {
		for name, rep := range allReports(t, w, hw.A6000x4()) {
			for r, rank := range rep.Ranks {
				total := rank.TotalBusy() + rank.Idle
				if math.Abs(total-rep.EpochTime) > 1e-9*math.Max(1, rep.EpochTime) {
					t.Errorf("%s/%s rank %d: busy+idle %v != epoch %v", w.Name, name, r, total, rep.EpochTime)
				}
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	w := model.NAS(false)
	sys := hw.A6000x4()
	a := allReports(t, w, sys)
	b := allReports(t, w, sys)
	for name := range a {
		if a[name].EpochTime != b[name].EpochTime {
			t.Errorf("%s: simulation not deterministic", name)
		}
	}
}

func TestPipeBDBeatsBaselinesEverywhere(t *testing.T) {
	// The headline result: TR+DPU+AHD is fastest on all four workloads.
	for _, w := range model.AllWorkloads() {
		reps := allReports(t, w, hw.A6000x4())
		best := reps["TR+DPU+AHD"].EpochTime
		for name, rep := range reps {
			if name == "TR+DPU+AHD" {
				continue
			}
			if best > rep.EpochTime+1e-9 {
				t.Errorf("%s: TR+DPU+AHD (%v) slower than %s (%v)", w.Name, best, name, rep.EpochTime)
			}
		}
		if sp := reps["DP"].EpochTime / best; sp < 1.5 {
			t.Errorf("%s: Pipe-BD speedup over DP only %.2fx", w.Name, sp)
		}
	}
}

func TestDPURemovesBubbles(t *testing.T) {
	// Decoupled parameter update must never slow training down, and on
	// workloads with imbalance it must strictly help.
	for _, w := range model.AllWorkloads() {
		cfg := quickCfg(w, hw.A6000x4())
		trPlan, _ := plans(t, w, hw.A6000x4())
		plain := RunTR(cfg, trPlan, false, "TR")
		dpu := RunTR(cfg, trPlan, true, "TR+DPU")
		if dpu.EpochTime > plain.EpochTime+1e-9 {
			t.Errorf("%s: DPU slowed training: %v vs %v", w.Name, dpu.EpochTime, plain.EpochTime)
		}
	}
}

func TestLSCrossover(t *testing.T) {
	// LS beats DP on CIFAR-10 but loses on ImageNet (paper §VII-A).
	sys := hw.A6000x4()
	for _, tc := range []struct {
		w        model.Workload
		lsFaster bool
	}{
		{model.NAS(false), true},
		{model.NAS(true), false},
		{model.Compression(false), true},
		{model.Compression(true), false},
	} {
		cfg := quickCfg(tc.w, sys)
		dp, ls := RunDP(cfg), RunLS(cfg)
		if got := ls.EpochTime < dp.EpochTime; got != tc.lsFaster {
			t.Errorf("%s: LS faster=%v, want %v (LS %v vs DP %v)",
				tc.w.Name, got, tc.lsFaster, ls.EpochTime, dp.EpochTime)
		}
	}
}

func TestDPRedundantTeacherAndLoading(t *testing.T) {
	// DP must execute far more teacher time and data loading than
	// TR+DPU — the motivation of Fig. 2.
	w := model.NAS(false)
	sys := hw.A6000x4()
	cfg := quickCfg(w, sys)
	trPlan, _ := plans(t, w, sys)
	dp := RunDP(cfg)
	tr := RunTR(cfg, trPlan, true, "TR+DPU")
	sumCat := func(r metrics.Report, c sim.Category) float64 {
		var s float64
		for _, rank := range r.Ranks {
			s += rank.Busy[c]
		}
		return s
	}
	if sumCat(dp, sim.CatTeacherFwd) < 2*sumCat(tr, sim.CatTeacherFwd) {
		t.Error("DP should execute at least 2x the teacher work of TR")
	}
	if sumCat(dp, sim.CatLoad) < 2*sumCat(tr, sim.CatLoad) {
		t.Error("DP should spend at least 2x the loading time of TR")
	}
}

func TestTRMemoryConcentratesOnRankZero(t *testing.T) {
	// Fig. 7: under TR the early blocks (big feature maps) live on rank
	// 0, which must have the highest peak memory.
	w := model.NAS(true)
	sys := hw.A6000x4()
	cfg := quickCfg(w, sys)
	trPlan, _ := plans(t, w, sys)
	rep := RunTR(cfg, trPlan, true, "TR+DPU")
	for r := 1; r < len(rep.Ranks); r++ {
		if rep.Ranks[r].PeakMemBytes > rep.Ranks[0].PeakMemBytes {
			t.Fatalf("rank %d memory %d exceeds rank 0's %d", r, rep.Ranks[r].PeakMemBytes, rep.Ranks[0].PeakMemBytes)
		}
	}
	// AHD's batch splitting must reduce the rank-0 peak.
	_, ahdPlan := plans(t, w, sys)
	ahd := RunTR(cfg, ahdPlan, true, "TR+DPU+AHD")
	if ahd.Ranks[0].PeakMemBytes >= rep.Ranks[0].PeakMemBytes {
		t.Fatal("AHD should reduce rank-0 memory versus plain TR")
	}
}

func TestIRMemoryHigherThanDP(t *testing.T) {
	// Internal relaying stores every teacher and student block per
	// device; its peak must exceed DP's.
	w := model.NAS(false)
	cfg := quickCfg(w, hw.A6000x4())
	ir, dp := RunIR(cfg), RunDP(cfg)
	if ir.PeakMemory() <= dp.PeakMemory() {
		t.Fatalf("IR memory %d should exceed DP %d", ir.PeakMemory(), dp.PeakMemory())
	}
}

func TestMaxStepsTruncation(t *testing.T) {
	w := model.NAS(false)
	cfg := quickCfg(w, hw.A6000x4())
	cfg.MaxSteps = 5
	rep := RunDP(cfg)
	if rep.Steps != 5*w.NumBlocks() {
		t.Fatalf("Steps = %d, want %d", rep.Steps, 5*w.NumBlocks())
	}
	full := cfg
	full.MaxSteps = 10
	if RunDP(full).EpochTime <= rep.EpochTime {
		t.Fatal("more steps must take longer")
	}
}

func TestRecordingProducesIntervals(t *testing.T) {
	w := model.NAS(false)
	cfg := quickCfg(w, hw.A6000x4())
	cfg.Record = true
	cfg.MaxSteps = 3
	_, tracks := RunTRTracks(cfg, sched.InternalRelaying(4, 6), true, "TR+IR")
	for d, dev := range tracks.Devs {
		if len(dev.Intervals()) == 0 {
			t.Fatalf("device %d recorded no intervals", d)
		}
	}
	if len(tracks.Loader.Intervals()) == 0 {
		t.Fatal("loader recorded no intervals")
	}
}

func TestConfigValidation(t *testing.T) {
	w := model.NAS(false)
	for name, cfg := range map[string]Config{
		"zero batch":    {Workload: w, System: hw.A6000x4(), GlobalBatch: 0},
		"odd batch":     {Workload: w, System: hw.A6000x4(), GlobalBatch: 254},
		"broken system": {Workload: w, System: hw.System{Name: "x"}, GlobalBatch: 256},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			RunDP(cfg)
		}()
	}
}

func TestBatchSensitivityShape(t *testing.T) {
	// Fig. 6: Pipe-BD's advantage over DP grows as the batch shrinks
	// (utilization gap) on CIFAR-10.
	w := model.NAS(false)
	sys := hw.A6000x4()
	speedup := func(batch int) float64 {
		cfg := Config{Workload: w, System: sys, GlobalBatch: batch, MaxSteps: 40}
		prof := profilegen.Measure(w, sys.GPUs[0], batch, 4, 10)
		tr := sched.TRContiguous(prof, 4)
		return RunDP(cfg).EpochTime / RunTR(cfg, tr, true, "TR+DPU").EpochTime
	}
	if s128, s512 := speedup(128), speedup(512); s128 <= s512 {
		t.Fatalf("speedup at batch 128 (%v) should exceed batch 512 (%v)", s128, s512)
	}
}

func Test2080TiAHDSharesLessThanA6000(t *testing.T) {
	// Fig. 5: the A6000's block-0 dominance is larger, so its AHD plan
	// shares at least as many devices on the first group as the 2080Ti's.
	w := model.NAS(true)
	split := func(sys hw.System) int {
		prof := profilegen.Measure(w, sys.GPUs[0], 256, 4, 10)
		plan := sched.AHD(prof, sys, sched.DefaultAHDConfig())
		return plan.Groups[0].Split()
	}
	if a, turing := split(hw.A6000x4()), split(hw.RTX2080Tix4()); a < turing {
		t.Fatalf("A6000 first-group split %d < 2080Ti's %d", a, turing)
	}
}
