package pipeline

import (
	"fmt"

	"pipebd/internal/cost"
	"pipebd/internal/metrics"
	"pipebd/internal/sched"
	"pipebd/internal/sim"
)

// RunLS simulates the layerwise-scheduling baseline of Blakeney et
// al. [7]: training each distillable task (a layer unit for compression,
// a DNA block for NAS — see model.Workload.LSTasks) is an *independent
// job*: it loads its own full batch and executes its own teacher prefix.
// Tasks are balanced across devices with LPT bin packing on a static
// FLOPs-proportional cost estimate — profiling-based scheduling is
// Pipe-BD's contribution (AHD), not the baseline's.
//
// Its weaknesses are the ones the paper calls out (§II-B, §VII-A):
// redundant teacher execution (every task re-runs its prefix), redundant
// data loading (every task re-loads the batch), and load imbalance — the
// static FLOPs estimate badly mispredicts ImageNet's bandwidth-bound
// early blocks, and NAS offers only six tasks for four devices
// ("insufficient layers in the model").
func RunLS(cfg Config) metrics.Report {
	cfg.validate()
	env := newEnvironment(cfg)
	rep, _ := runLS(cfg, env)
	return rep
}

// RunLSTracks is RunLS returning the simulation tracks for rendering.
func RunLSTracks(cfg Config) (metrics.Report, Tracks) {
	cfg.validate()
	env := newEnvironment(cfg)
	rep, _ := runLS(cfg, env)
	return rep, env.tracks()
}

func runLS(cfg Config, env *epochEnvironment) (metrics.Report, int) {
	n := cfg.System.NumDevices()
	batch := cfg.GlobalBatch
	steps := cfg.steps()
	gpu := cfg.System.GPUs[0]
	tu, su := cfg.Workload.LSTasks()
	nu := len(tu)

	// Measured per-task times at the full batch (what execution costs).
	tFwd := make([]float64, nu)
	sFwd := make([]float64, nu)
	sBwd := make([]float64, nu)
	update := make([]float64, nu)
	for u := 0; u < nu; u++ {
		tFwd[u] = cost.BlockFwdTime(gpu, tu[u], batch)
		sFwd[u] = cost.BlockFwdTime(gpu, su[u], batch)
		sBwd[u] = cost.BlockBwdTime(gpu, su[u], batch)
		update[u] = cost.UpdateTime(gpu, su[u])
	}

	// Static FLOPs-proportional standalone costs drive the bin packing:
	// teacher prefix forward plus student forward and backward (~2x
	// forward). This is the planning/execution mismatch that wrecks the
	// baseline's balance on bandwidth-bound models.
	est := make([]float64, nu)
	var prefixFLOPs float64
	for u := 0; u < nu; u++ {
		est[u] = prefixFLOPs + tu[u].FwdFLOPs(batch) + 3*su[u].FwdFLOPs(batch)
		prefixFLOPs += tu[u].FwdFLOPs(batch)
	}
	assign := sched.LPTPack(est, n)

	for s := 0; s < steps; s++ {
		for d := 0; d < n; d++ {
			dev := env.devs[d]
			// Every task is an independent job: its own batch load and
			// its own teacher prefix execution.
			for _, u := range assign[d] {
				stepOverhead(cfg, dev)
				_, shardReady := env.loader.Exec(0, cfg.loadTime(batch), sim.CatLoad, "DL")
				ingestBatch(cfg, dev, shardReady)
				for i := 0; i <= u; i++ {
					dev.Exec(0, tFwd[i], sim.CatTeacherFwd, blockLabel("T", i))
				}
				dev.Exec(0, sFwd[u], sim.CatStudentFwd, blockLabel("S", u))
				dev.Exec(0, sBwd[u], sim.CatStudentBwd, blockLabel("S", u))
				dev.Exec(0, update[u], sim.CatUpdate, "UP")
			}
		}
	}

	mem := make([]int64, n)
	for d := 0; d < n; d++ {
		mem[d] = lsPeakMemory(cfg, assign[d], batch)
	}
	desc := describeLS(assign)
	return env.report(cfg, "LS", desc, steps, mem), steps
}

// lsPeakMemory estimates one rank's peak memory under LS. Tasks run
// sequentially and release their prefix activations between tasks, so
// the peak is set by the worst single task: a streaming teacher prefix
// (largest working set plus prefix parameters) and that task's training
// state, all at the full batch.
func lsPeakMemory(cfg Config, units []int, batch int) int64 {
	if len(units) == 0 {
		return 0
	}
	tu, su := cfg.Workload.LSTasks()
	var peak int64
	for _, u := range units {
		var streaming, prefixParams int64
		for i := 0; i <= u; i++ {
			if m := 2 * tu[i].MaxActBytes(batch); m > streaming {
				streaming = m
			}
			prefixParams += tu[i].ParamBytes()
		}
		total := streaming + prefixParams + su[u].InBytes(batch) + cost.StudentBlockMemory(su[u], batch)
		if total > peak {
			peak = total
		}
	}
	return peak
}

func describeLS(assign [][]int) string {
	desc := ""
	for d, units := range assign {
		if d > 0 {
			desc += " | "
		}
		desc += fmt.Sprintf("dev%d: %d tasks", d, len(units))
	}
	return desc
}
