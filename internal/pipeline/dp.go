package pipeline

import (
	"pipebd/internal/cost"
	"pipebd/internal/metrics"
	"pipebd/internal/sim"
)

// RunDP simulates the paper's DP baseline (Fig. 3a), the scheme of the
// DNA [9] implementation: student blocks are trained one at a time; for
// block b every device loads a batch shard, executes teacher blocks
// 0..b (the redundant prefix), trains student block b on its shard, and
// all-reduces gradients across all devices before updating.
func RunDP(cfg Config) metrics.Report {
	cfg.validate()
	env := newEnvironment(cfg)
	rep, _ := runDP(cfg, env)
	return rep
}

// RunDPTracks is RunDP returning the simulation tracks for rendering.
func RunDPTracks(cfg Config) (metrics.Report, Tracks) {
	cfg.validate()
	env := newEnvironment(cfg)
	rep, _ := runDP(cfg, env)
	return rep, env.tracks()
}

func runDP(cfg Config, env *epochEnvironment) (metrics.Report, int) {
	n := cfg.System.NumDevices()
	shard := cfg.GlobalBatch / n
	steps := cfg.steps()
	tb, sb := teacherBlocks(cfg), studentBlocks(cfg)
	gpu := cfg.System.GPUs[0]
	link := cfg.System.Link

	// Precompute per-block times at the shard batch.
	tFwd := make([]float64, len(tb))
	sFwd := make([]float64, len(sb))
	sBwd := make([]float64, len(sb))
	update := make([]float64, len(sb))
	gradBytes := make([]int64, len(sb))
	for b := range tb {
		tFwd[b] = cost.BlockFwdTime(gpu, tb[b], shard)
		sFwd[b] = cost.BlockFwdTime(gpu, sb[b], shard)
		sBwd[b] = cost.BlockBwdTime(gpu, sb[b], shard)
		update[b] = cost.UpdateTime(gpu, sb[b])
		gradBytes[b] = sb[b].ParamBytes()
	}

	for b := range tb {
		// A fresh DataLoader pass begins for each block: no prefetch
		// across block boundaries.
		var passStart float64
		for _, d := range env.devs {
			if d.FreeAt() > passStart {
				passStart = d.FreeAt()
			}
		}
		env.loader.AdvanceTo(passStart)

		for s := 0; s < steps; s++ {
			// The shared loader produces every device's shard.
			shardReady := make([]float64, n)
			for d := 0; d < n; d++ {
				_, end := env.loader.Exec(0, cfg.loadTime(shard), sim.CatLoad, "DL")
				shardReady[d] = end
			}
			// Each device: teacher prefix, student block b.
			var bwdEnd float64
			for d := 0; d < n; d++ {
				dev := env.devs[d]
				stepOverhead(cfg, dev)
				ingestBatch(cfg, dev, shardReady[d])
				for i := 0; i <= b; i++ {
					dev.Exec(0, tFwd[i], sim.CatTeacherFwd, blockLabel("T", i))
				}
				dev.Exec(0, sFwd[b], sim.CatStudentFwd, blockLabel("S", b))
				dev.Exec(0, sBwd[b], sim.CatStudentBwd, blockLabel("S", b))
				if dev.FreeAt() > bwdEnd {
					bwdEnd = dev.FreeAt()
				}
			}
			// Gradient all-reduce across all devices (partially hidden
			// by backward), then the synchronized update.
			exposed := exposedAllReduce(link, gradBytes[b], n, sBwd[b], cfg.overlap())
			for d := 0; d < n; d++ {
				dev := env.devs[d]
				dev.AdvanceTo(bwdEnd) // DP barrier: all-reduce needs all ranks
				dev.Exec(0, exposed, sim.CatAllReduce, "DP")
				dev.Exec(0, update[b], sim.CatUpdate, "UP")
			}
		}
	}

	peak := dpPeakMemory(cfg, shard)
	mem := make([]int64, n)
	for d := range mem {
		mem[d] = peak
	}
	return env.report(cfg, "DP", "all devices data-parallel, blocks sequential", steps*len(tb), mem), steps
}

// dpPeakMemory estimates any rank's peak memory under DP: the worst block
// pass holds the whole teacher prefix (inference) plus the trained
// student block at the shard batch.
func dpPeakMemory(cfg Config, shard int) int64 {
	tb, sb := teacherBlocks(cfg), studentBlocks(cfg)
	var peak int64
	var prefix int64
	for b := range tb {
		prefix += cost.TeacherBlockMemory(tb[b], shard)
		total := prefix + cost.StudentBlockMemory(sb[b], shard)
		if total > peak {
			peak = total
		}
	}
	return peak
}
