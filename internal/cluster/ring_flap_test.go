package cluster

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"pipebd/internal/cluster/transport"
	"pipebd/internal/cluster/wire"
	"pipebd/internal/distill"
	"pipebd/internal/engine"
	"pipebd/internal/obs"
)

// fastRetry is the absorption policy the flap tests run under: near-
// immediate redial, a budget comfortably above any in-process reconnect,
// frequent acks so replay windows stay small.
func fastRetry() wire.RetrySpec {
	return wire.RetrySpec{BackoffMillis: 1, BudgetMillis: 2000, AckEvery: 2}
}

// shortRetry exhausts quickly: the persistent-partition tests wait out
// this budget once per broken endpoint before the degrade tier engages,
// so it stays small.
func shortRetry() wire.RetrySpec {
	return wire.RetrySpec{BackoffMillis: 1, BudgetMillis: 250, AckEvery: 2}
}

// TestRingFlapAbsorbedBitEquivalence is the transient-fault matrix: a
// link flaps — breaks and immediately accepts a redial — while a ring
// all-reduce segment, a forwarded activation, or a control-link loss
// report is in flight, at the first, a middle, and the last step, on
// loopback and on real TCP. Every flap must be absorbed by the resumable
// layer (reconnect, replay) without consuming any restart budget: the
// runs execute with MaxRestarts 0, must not log a global restart, and
// must finish bit-identical to the fault-free in-process pipeline.
func TestRingFlapAbsorbedBitEquivalence(t *testing.T) {
	leakCheck(t)
	const steps = 5
	batches := tinyBatches(steps, 8)
	p := hybridPlan()

	refs := map[bool]*distill.Workbench{}
	refRes := map[bool]engine.Result{}
	for _, dpu := range []bool{false, true} {
		ref := distill.NewTinyWorkbench(distill.DefaultTinyConfig())
		refRes[dpu] = engine.RunPipelined(ref, batches, engine.Config{Plan: p, DPU: dpu, LR: 0.05, Momentum: 0.9})
		refs[dpu] = ref
	}

	transports := map[string]func() transport.Network{
		"loopback": func() transport.Network { return transport.NewLoopback() },
		"tcp":      func() transport.Network { return transport.TCP{} },
	}
	links := map[string]wire.Kind{
		"all-reduce":  wire.KindRingSegment,
		"activations": wire.KindPeerInput,
		"control":     wire.KindLosses, // loss reports cross the worker->coordinator control link
	}
	for netName, mkNet := range transports {
		for linkName, kind := range links {
			for _, flapStep := range []int32{0, steps / 2, steps - 1} {
				dpu := kind == wire.KindPeerInput
				label := fmt.Sprintf("%s/%s/flap-step-%d", netName, linkName, flapStep)
				t.Run(label, func(t *testing.T) {
					inner := mkNet()
					chaos := transport.NewChaos(inner, transport.Fault{
						Trigger: transport.Trigger{Conn: transport.AnyConn, Op: transport.OpRecv,
							Kind: kind, Step: flapStep, Count: 1},
						Action: transport.ActFlap,
					})
					// Control flaps break a coordinator-dialed link, peer
					// flaps a worker-to-worker one; wrap whichever side the
					// fault targets and leave the other on the raw network.
					coordNet, workerDial := transport.Network(inner), transport.Network(chaos)
					if kind == wire.KindLosses {
						coordNet, workerDial = chaos, inner
					}
					counters := obs.NewMetrics()
					addrs := startWorkers(t, inner, 2, WorkerConfig{
						Sessions: 1, Rejoin: true, Dial: workerDial, Metrics: counters})
					logf, logs := captureLog()
					w := distill.NewTinyWorkbench(distill.DefaultTinyConfig())
					res, err := Run(coordNet, addrs, w, batches, Config{
						Plan: p, DPU: dpu, LR: 0.05, Momentum: 0.9, Topology: "ring",
						Spec:        TinySpec(distill.DefaultTinyConfig()),
						Retry:       fastRetry(), Metrics: counters,
						JoinTimeout: 10 * time.Second, Logf: logf,
					})
					if err != nil {
						t.Fatalf("ring run with injected flap failed: %v\nlog:\n%s", err, logs())
					}
					if unfired := chaos.Unfired(); len(unfired) > 0 {
						t.Fatalf("flap never fired (%v): the absorption self-test is vacuous", unfired)
					}
					if strings.Contains(logs(), "restarting every device from step") {
						t.Fatalf("flap consumed a restart instead of being absorbed; log:\n%s", logs())
					}
					if got := counters.Counter("link_faults_absorbed").Load(); got == 0 {
						t.Fatalf("no link fault recorded as absorbed; log:\n%s", logs())
					}
					lossesBitIdentical(t, label, res, refRes[dpu])
					weightsBitIdentical(t, label, w, refs[dpu])
				})
			}
		}
	}
}

// TestRingFlapTransformerAbsorbed repeats the absorption guarantee on the
// transformer workbench: one activation flap and one all-reduce flap in
// the same run, three workers, zero restarts, bit-identical.
func TestRingFlapTransformerAbsorbed(t *testing.T) {
	leakCheck(t)
	cfg := distill.DefaultTransformerConfig()
	batches := transformerBatches(4, 8)
	p := hybridPlan()
	ref := distill.NewTransformerWorkbench(cfg)
	refRes := engine.RunPipelined(ref, batches, engine.Config{Plan: p, DPU: true, LR: 0.05, Momentum: 0.9})

	inner := transport.NewLoopback()
	chaos := transport.NewChaos(inner,
		transport.Fault{Trigger: transport.Trigger{Conn: transport.AnyConn, Op: transport.OpRecv,
			Kind: wire.KindPeerInput, Step: 1, Count: 1}, Action: transport.ActFlap},
		transport.Fault{Trigger: transport.Trigger{Conn: transport.AnyConn, Op: transport.OpRecv,
			Kind: wire.KindRingSegment, Step: 2, Count: 1}, Action: transport.ActFlap},
	)
	counters := obs.NewMetrics()
	addrs := startWorkers(t, inner, 3, WorkerConfig{
		Sessions: 1, Rejoin: true, Dial: chaos, Metrics: counters})
	logf, logs := captureLog()
	w := distill.NewTransformerWorkbench(cfg)
	res, err := Run(inner, addrs, w, batches, Config{
		Plan: p, DPU: true, LR: 0.05, Momentum: 0.9, Topology: "ring",
		Spec:        TransformerSpec(cfg),
		Retry:       fastRetry(), Metrics: counters,
		JoinTimeout: 10 * time.Second, Logf: logf,
	})
	if err != nil {
		t.Fatalf("transformer ring run with flaps failed: %v\nlog:\n%s", err, logs())
	}
	if unfired := chaos.Unfired(); len(unfired) > 0 {
		t.Fatalf("flaps never fired (%v)", unfired)
	}
	if strings.Contains(logs(), "restarting every device from step") {
		t.Fatalf("flap consumed a restart; log:\n%s", logs())
	}
	if got := counters.Counter("link_faults_absorbed").Load(); got < 2 {
		t.Fatalf("absorbed %d link fault(s), want both flaps; log:\n%s", got, logs())
	}
	lossesBitIdentical(t, "transformer flaps", res, refRes)
	weightsBitIdentical(t, "transformer flaps", w, ref)
}

// TestRingPersistentPartitionDegradesToHubRelay: a peer activation edge is
// partitioned and never heals. The reconnect budget runs out, the worker
// reports the edge down, and — because every worker is still alive — the
// coordinator degrades exactly that edge to hub relay instead of consuming
// a restart (MaxRestarts is 0). The degraded run must still finish
// bit-identical to the in-process pipeline, on loopback and on TCP.
func TestRingPersistentPartitionDegradesToHubRelay(t *testing.T) {
	leakCheck(t)
	const steps = 5
	batches := tinyBatches(steps, 8)
	p := plan("tr-2dev", g([]int{0}, []int{0, 1}), g([]int{1}, []int{2, 3}))
	ref := distill.NewTinyWorkbench(distill.DefaultTinyConfig())
	refRes := engine.RunPipelined(ref, batches, engine.Config{Plan: p, DPU: true, LR: 0.05, Momentum: 0.9})

	transports := map[string]func() transport.Network{
		"loopback": func() transport.Network { return transport.NewLoopback() },
		"tcp":      func() transport.Network { return transport.TCP{} },
	}
	for netName, mkNet := range transports {
		t.Run(netName, func(t *testing.T) {
			inner := mkNet()
			chaos := transport.NewChaos(inner, transport.Fault{
				Trigger: transport.Trigger{Conn: transport.AnyConn, Op: transport.OpRecv,
					Kind: wire.KindPeerInput, Step: 1, Count: 1},
				Action: transport.ActPartition, // Delay 0: never heals
			})
			counters := obs.NewMetrics()
			addrs := startWorkers(t, inner, 2, WorkerConfig{
				Sessions: 1, Rejoin: true, Dial: chaos, Metrics: counters})
			logf, logs := captureLog()
			w := distill.NewTinyWorkbench(distill.DefaultTinyConfig())
			res, err := Run(inner, addrs, w, batches, Config{
				Plan: p, DPU: true, LR: 0.05, Momentum: 0.9, Topology: "ring",
				Spec:        TinySpec(distill.DefaultTinyConfig()),
				Retry:       shortRetry(), Metrics: counters,
				JoinTimeout: 10 * time.Second, Logf: logf,
			})
			if err != nil {
				t.Fatalf("ring run with persistent partition failed: %v\nlog:\n%s", err, logs())
			}
			if !strings.Contains(logs(), "degrading peer link") {
				t.Fatalf("persistent partition did not engage the degrade tier; log:\n%s", logs())
			}
			if strings.Contains(logs(), "restarting every device from step") {
				t.Fatalf("degrade consumed a restart; log:\n%s", logs())
			}
			if got := counters.Counter("degrades").Load(); got == 0 {
				t.Fatalf("degrades counter is zero; log:\n%s", logs())
			}
			lossesBitIdentical(t, netName+" degraded relay", res, refRes)
			weightsBitIdentical(t, netName+" degraded relay", w, ref)
		})
	}
}

// TestRingPersistentPartitionDegradesAllReduce partitions the ring-segment
// edge of a split group (tail-dp: devices 1 and 2 share the tail group on
// separate workers). The degrade tier must fall the whole group back to
// the coordinator's hub all-reduce — which folds in the same rank order,
// so the result stays bit-identical — while the healthy activation edges
// keep flowing peer-to-peer.
func TestRingPersistentPartitionDegradesAllReduce(t *testing.T) {
	leakCheck(t)
	batches := tinyBatches(5, 8)
	p := plan("tail-dp", g([]int{0}, []int{0, 1}), g([]int{1, 2}, []int{2, 3}))
	ref := distill.NewTinyWorkbench(distill.DefaultTinyConfig())
	refRes := engine.RunPipelined(ref, batches, engine.Config{Plan: p, DPU: true, LR: 0.05, Momentum: 0.9})

	inner := transport.NewLoopback()
	chaos := transport.NewChaos(inner, transport.Fault{
		Trigger: transport.Trigger{Conn: transport.AnyConn, Op: transport.OpRecv,
			Kind: wire.KindRingSegment, Step: 1, Count: 1},
		Action: transport.ActPartition, // never heals
	})
	counters := obs.NewMetrics()
	addrs := startWorkers(t, inner, 3, WorkerConfig{
		Sessions: 1, Rejoin: true, Dial: chaos, Metrics: counters})
	logf, logs := captureLog()
	w := distill.NewTinyWorkbench(distill.DefaultTinyConfig())
	res, err := Run(inner, addrs, w, batches, Config{
		Plan: p, DPU: true, LR: 0.05, Momentum: 0.9, Topology: "ring",
		Spec:        TinySpec(distill.DefaultTinyConfig()),
		Retry:       shortRetry(), Metrics: counters,
		JoinTimeout: 10 * time.Second, Logf: logf,
	})
	if err != nil {
		t.Fatalf("ring run with partitioned all-reduce edge failed: %v\nlog:\n%s", err, logs())
	}
	if !strings.Contains(logs(), "degrading peer link") {
		t.Fatalf("partition did not engage the degrade tier; log:\n%s", logs())
	}
	if strings.Contains(logs(), "restarting every device from step") {
		t.Fatalf("degrade consumed a restart; log:\n%s", logs())
	}
	lossesBitIdentical(t, "degraded all-reduce", res, refRes)
	weightsBitIdentical(t, "degraded all-reduce", w, ref)
}
