package cluster

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"pipebd/internal/cluster/transport"
	"pipebd/internal/cluster/wire"
	"pipebd/internal/distill"
	"pipebd/internal/engine"
	"pipebd/internal/testutil"
)

// leakCheck is the shared goroutine-leak assertion (testutil.LeakCheck),
// aliased so the suite's many call sites stay short.
func leakCheck(t *testing.T) {
	t.Helper()
	testutil.LeakCheck(t)
}

// captureLog returns a concurrency-safe Logf plus a reader for the lines
// it collected.
func captureLog() (func(string, ...any), func() string) {
	var mu sync.Mutex
	var b strings.Builder
	logf := func(format string, args ...any) {
		mu.Lock()
		fmt.Fprintf(&b, format+"\n", args...)
		mu.Unlock()
	}
	read := func() string {
		mu.Lock()
		defer mu.Unlock()
		return b.String()
	}
	return logf, read
}

func killLosses(conn int, step int32) transport.Fault {
	return transport.Fault{
		Trigger: transport.Trigger{Conn: conn, Op: transport.OpRecv,
			Kind: wire.KindLosses, Step: step, Count: 1},
		Action: transport.ActKill,
	}
}

// TestRecoveryBitEquivalence is the fault-tolerance acceptance suite:
// a seeded chaos schedule kills one worker's connection while a step's
// loss report is in flight — at the first, a middle, and the last step —
// on loopback and on real TCP, with and without decoupled parameter
// update. Every case must recover (re-place the dead worker's devices,
// restore their snapshots, replay) and finish with losses AND trained
// weights bit-identical to the fault-free in-process engine.RunPipelined.
func TestRecoveryBitEquivalence(t *testing.T) {
	leakCheck(t)
	const steps = 5
	batches := tinyBatches(steps, 8)
	p := hybridPlan()

	refs := map[bool]*distill.Workbench{}
	refRes := map[bool]engine.Result{}
	for _, dpu := range []bool{false, true} {
		ref := distill.NewTinyWorkbench(distill.DefaultTinyConfig())
		refRes[dpu] = engine.RunPipelined(ref, batches, engine.Config{Plan: p, DPU: dpu, LR: 0.05, Momentum: 0.9})
		refs[dpu] = ref
	}

	transports := map[string]func() transport.Network{
		"loopback": func() transport.Network { return transport.NewLoopback() },
		"tcp":      func() transport.Network { return transport.TCP{} },
	}
	for name, mkNet := range transports {
		for _, dpu := range []bool{false, true} {
			for _, killStep := range []int32{0, steps / 2, steps - 1} {
				label := fmt.Sprintf("%s/dpu=%v/kill-step-%d", name, dpu, killStep)
				t.Run(label, func(t *testing.T) {
					inner := mkNet()
					// Rejoin: the killed worker's failed session must not
					// consume its budget, so it can host its own replacement.
					addrs := startWorkers(t, inner, 2, WorkerConfig{Sessions: 1, Rejoin: true})
					// Worker 1 hosts the second pipeline group's device; kill
					// its connection while the chosen step's losses cross.
					chaos := transport.NewChaos(inner, killLosses(1, killStep))
					logf, logs := captureLog()
					w := distill.NewTinyWorkbench(distill.DefaultTinyConfig())
					res, err := Run(chaos, addrs, w, batches, Config{
						Plan: p, DPU: dpu, LR: 0.05, Momentum: 0.9,
						Spec:        TinySpec(distill.DefaultTinyConfig()),
						MaxRestarts: 2, JoinTimeout: 10 * time.Second, Logf: logf,
					})
					if err != nil {
						t.Fatalf("run with injected kill failed: %v\nlog:\n%s", err, logs())
					}
					if !strings.Contains(logs(), "re-placed on worker") {
						t.Fatalf("kill did not trigger recovery; log:\n%s", logs())
					}
					lossesBitIdentical(t, label, res, refRes[dpu])
					weightsBitIdentical(t, label, w, refs[dpu])
				})
			}
		}
	}
}

// TestRecoveryKillSplitGroupWorker kills the worker hosting BOTH ranks of
// the data-parallel group: recovery must restore two devices at once,
// re-answer replayed gradient all-reduces from the hub's cache, and still
// match the fault-free trajectory exactly.
func TestRecoveryKillSplitGroupWorker(t *testing.T) {
	leakCheck(t)
	batches := tinyBatches(5, 8)
	p := hybridPlan()
	ref := distill.NewTinyWorkbench(distill.DefaultTinyConfig())
	refRes := engine.RunPipelined(ref, batches, engine.Config{Plan: p, DPU: true, LR: 0.05, Momentum: 0.9})

	inner := transport.NewLoopback()
	addrs := startWorkers(t, inner, 2, WorkerConfig{Sessions: 1, Rejoin: true})
	chaos := transport.NewChaos(inner, killLosses(0, 2))
	logf, logs := captureLog()
	w := distill.NewTinyWorkbench(distill.DefaultTinyConfig())
	res, err := Run(chaos, addrs, w, batches, Config{
		Plan: p, DPU: true, LR: 0.05, Momentum: 0.9,
		Spec:        TinySpec(distill.DefaultTinyConfig()),
		MaxRestarts: 1, JoinTimeout: 10 * time.Second, Logf: logf,
	})
	if err != nil {
		t.Fatalf("run with split-group kill failed: %v\nlog:\n%s", err, logs())
	}
	if !strings.Contains(logs(), "re-placed on worker") {
		t.Fatalf("kill did not trigger recovery; log:\n%s", logs())
	}
	lossesBitIdentical(t, "split-group recovery", res, refRes)
	weightsBitIdentical(t, "split-group recovery", w, ref)
}

// TestRecoveryFallsBackToSurvivingWorker: when the dead worker cannot be
// re-joined (its first re-placement handshake is killed too), the
// coordinator re-places the devices on the OTHER, still-running worker,
// which accepts the extra session concurrently with its own.
func TestRecoveryFallsBackToSurvivingWorker(t *testing.T) {
	leakCheck(t)
	batches := tinyBatches(4, 8)
	p := plan("tr-2dev", g([]int{0}, []int{0, 1}), g([]int{1}, []int{2, 3}))
	ref := distill.NewTinyWorkbench(distill.DefaultTinyConfig())
	refRes := engine.RunPipelined(ref, batches, engine.Config{Plan: p, DPU: true, LR: 0.05, Momentum: 0.9})

	inner := transport.NewLoopback()
	// Worker 0 serves until closed (it will absorb the re-placement);
	// worker 1 exits after its first (killed) session.
	addrA := startWorkers(t, inner, 1, WorkerConfig{})[0]
	addrB := startWorkers(t, inner, 1, WorkerConfig{Sessions: 1})[0]
	chaos := transport.NewChaos(inner,
		killLosses(1, 1),
		// Kill the first re-placement handshake (conn 2) no matter which
		// address it reaches: combined with worker 1's exit, the replay
		// must land on the surviving worker 0.
		transport.Fault{Trigger: transport.Trigger{Conn: 2, Op: transport.OpRecv,
			Step: transport.AnyStep, Count: 1}, Action: transport.ActKill},
	)
	logf, logs := captureLog()
	w := distill.NewTinyWorkbench(distill.DefaultTinyConfig())
	res, err := Run(chaos, []string{addrA, addrB}, w, batches, Config{
		Plan: p, DPU: true, LR: 0.05, Momentum: 0.9,
		Spec:        TinySpec(distill.DefaultTinyConfig()),
		MaxRestarts: 1, JoinTimeout: 10 * time.Second, Logf: logf,
	})
	if err != nil {
		t.Fatalf("run failed: %v\nlog:\n%s", err, logs())
	}
	if !strings.Contains(logs(), "re-placed on worker "+addrA) {
		t.Fatalf("devices were not re-placed on the surviving worker %s; log:\n%s", addrA, logs())
	}
	lossesBitIdentical(t, "surviving-worker fallback", res, refRes)
	weightsBitIdentical(t, "surviving-worker fallback", w, ref)
}

// TestHeartbeatTimeoutDetectsSilentWorker: a worker that accepts the
// session and then goes silent — no heartbeats, no data, but a healthy
// connection — is declared dead by the heartbeat monitor and its device
// re-placed on the live worker; the run still matches the fault-free
// trajectory bit-for-bit.
func TestHeartbeatTimeoutDetectsSilentWorker(t *testing.T) {
	leakCheck(t)
	batches := tinyBatches(3, 8)
	p := plan("tr-2dev", g([]int{0}, []int{0, 1}), g([]int{1}, []int{2, 3}))
	ref := distill.NewTinyWorkbench(distill.DefaultTinyConfig())
	refRes := engine.RunPipelined(ref, batches, engine.Config{Plan: p, DPU: true, LR: 0.05, Momentum: 0.9})

	net := transport.NewLoopback()
	addrA := startWorkers(t, net, 1, WorkerConfig{})[0]

	// A fake worker that handshakes and then plays dead: it accepts one
	// session, sends hello, and never speaks again.
	silentLis, err := net.Listen("")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	silentDone := make(chan struct{})
	go func() {
		defer close(silentDone)
		conn, err := silentLis.Accept()
		if err != nil {
			return
		}
		silentLis.Close() // refuse the re-join attempt: force the fallback
		conn.Send(wire.Control(wire.KindHello, wire.NoDev, wire.NoStep))
		for {
			if _, err := conn.Recv(); err != nil {
				return // coordinator killed the connection
			}
		}
	}()
	t.Cleanup(func() { silentLis.Close(); <-silentDone })

	logf, logs := captureLog()
	w := distill.NewTinyWorkbench(distill.DefaultTinyConfig())
	res, err := Run(net, []string{addrA, silentLis.Addr()}, w, batches, Config{
		Plan: p, DPU: true, LR: 0.05, Momentum: 0.9,
		Spec:        TinySpec(distill.DefaultTinyConfig()),
		MaxRestarts: 1, JoinTimeout: 5 * time.Second,
		HeartbeatInterval: 25 * time.Millisecond, HeartbeatTimeout: 500 * time.Millisecond,
		Logf: logf,
	})
	if err != nil {
		t.Fatalf("run failed: %v\nlog:\n%s", err, logs())
	}
	if !strings.Contains(logs(), "silent for over") {
		t.Fatalf("heartbeat monitor never fired; log:\n%s", logs())
	}
	if !strings.Contains(logs(), "re-placed on worker "+addrA) {
		t.Fatalf("silent worker's device was not re-placed; log:\n%s", logs())
	}
	lossesBitIdentical(t, "heartbeat recovery", res, refRes)
	weightsBitIdentical(t, "heartbeat recovery", w, ref)
}

// TestRecoveryBudgetExhausted: once MaxRestarts recoveries are spent, the
// next death fails the run with the underlying cause — and the failure
// path must not leak goroutines even though the second death hits an
// already-re-placed session.
func TestRecoveryBudgetExhausted(t *testing.T) {
	leakCheck(t)
	batches := tinyBatches(6, 8)
	p := hybridPlan()
	inner := transport.NewLoopback()
	addrs := startWorkers(t, inner, 2, WorkerConfig{Rejoin: true})
	chaos := transport.NewChaos(inner,
		killLosses(1, 1),
		// Conn 2 is the re-placement session; kill it too.
		killLosses(2, 3),
	)
	w := distill.NewTinyWorkbench(distill.DefaultTinyConfig())
	_, err := Run(chaos, addrs, w, batches, Config{
		Plan: p, DPU: true, LR: 0.05, Momentum: 0.9,
		Spec:        TinySpec(distill.DefaultTinyConfig()),
		MaxRestarts: 1, JoinTimeout: 5 * time.Second,
	})
	if err == nil {
		t.Fatal("run survived more deaths than MaxRestarts allows")
	}
	if !errors.Is(err, transport.ErrChaos) {
		t.Fatalf("failure should surface the injected fault: %v", err)
	}
}

// TestPeerDeathMidGatherFailsCleanly pins the pre-recovery contract and
// the leak fix together: with fault tolerance off (MaxRestarts 0), a
// worker killed while its gradient gather is half-assembled fails the run
// with the injected cause — and every goroutine (device loops blocked on
// the dead all-reduce, outbox writers, readers) is torn down, which
// leakCheck asserts after cleanup.
func TestPeerDeathMidGatherFailsCleanly(t *testing.T) {
	leakCheck(t)
	batches := tinyBatches(4, 8)
	p := hybridPlan()
	inner := transport.NewLoopback()
	addrs := startWorkers(t, inner, 2, WorkerConfig{Sessions: 1})
	// Worker 0 hosts both ranks of the split group; killing its
	// connection on a mid-run gradient frame leaves the hub's gather for
	// that step permanently incomplete.
	chaos := transport.NewChaos(inner, transport.Fault{
		Trigger: transport.Trigger{Conn: 0, Op: transport.OpRecv,
			Kind: wire.KindGrads, Step: 1, Count: 1},
		Action: transport.ActKill,
	})
	w := distill.NewTinyWorkbench(distill.DefaultTinyConfig())
	_, err := Run(chaos, addrs, w, batches, Config{
		Plan: p, DPU: true, LR: 0.05, Momentum: 0.9,
		Spec: TinySpec(distill.DefaultTinyConfig()),
	})
	if err == nil {
		t.Fatal("mid-gather worker death reported success")
	}
	if !errors.Is(err, transport.ErrChaos) {
		t.Fatalf("error should wrap the injected fault: %v", err)
	}
}

// TestRecoveryTruncatedFrame: a frame cut off mid-write (the crash
// half-writes a relay input) poisons the receiving worker's session; the
// coordinator recovers both the lost frame and the dead session, and the
// result is still bit-identical.
func TestRecoveryTruncatedFrame(t *testing.T) {
	leakCheck(t)
	batches := tinyBatches(4, 8)
	p := plan("tr-2dev", g([]int{0}, []int{0, 1}), g([]int{1}, []int{2, 3}))
	ref := distill.NewTinyWorkbench(distill.DefaultTinyConfig())
	refRes := engine.RunPipelined(ref, batches, engine.Config{Plan: p, DPU: true, LR: 0.05, Momentum: 0.9})

	inner := transport.NewLoopback()
	addrs := startWorkers(t, inner, 2, WorkerConfig{Sessions: 1, Rejoin: true})
	chaos := transport.NewChaos(inner, transport.Fault{
		Trigger: transport.Trigger{Conn: 1, Op: transport.OpSend,
			Kind: wire.KindInput, Step: 2, Count: 1},
		Action: transport.ActTruncate,
	})
	logf, logs := captureLog()
	w := distill.NewTinyWorkbench(distill.DefaultTinyConfig())
	res, err := Run(chaos, addrs, w, batches, Config{
		Plan: p, DPU: true, LR: 0.05, Momentum: 0.9,
		Spec:        TinySpec(distill.DefaultTinyConfig()),
		MaxRestarts: 1, JoinTimeout: 10 * time.Second, Logf: logf,
	})
	if err != nil {
		t.Fatalf("run with truncated frame failed: %v\nlog:\n%s", err, logs())
	}
	lossesBitIdentical(t, "truncated-frame recovery", res, refRes)
	weightsBitIdentical(t, "truncated-frame recovery", w, ref)
}

// TestRecoverySeededSchedule drives the reusable scenario generator
// end-to-end: a RandomKills schedule (the same shape the chaos CI job
// uses) must recover to a bit-identical result, and the same seed must
// produce the same schedule.
func TestRecoverySeededSchedule(t *testing.T) {
	leakCheck(t)
	const steps = 6
	batches := tinyBatches(steps, 8)
	p := hybridPlan()
	ref := distill.NewTinyWorkbench(distill.DefaultTinyConfig())
	refRes := engine.RunPipelined(ref, batches, engine.Config{Plan: p, DPU: true, LR: 0.05, Momentum: 0.9})

	inner := transport.NewLoopback()
	addrs := startWorkers(t, inner, 2, WorkerConfig{Sessions: 1, Rejoin: true})
	schedule := transport.RandomKills(7, len(addrs), steps, 1)
	chaos := transport.NewChaos(inner, schedule...)
	logf, logs := captureLog()
	w := distill.NewTinyWorkbench(distill.DefaultTinyConfig())
	res, err := Run(chaos, addrs, w, batches, Config{
		Plan: p, DPU: true, LR: 0.05, Momentum: 0.9,
		Spec:        TinySpec(distill.DefaultTinyConfig()),
		MaxRestarts: len(schedule), JoinTimeout: 10 * time.Second, Logf: logf,
	})
	if err != nil {
		t.Fatalf("seeded chaos run failed (schedule %v): %v\nlog:\n%s", schedule, err, logs())
	}
	lossesBitIdentical(t, "seeded schedule", res, refRes)
	weightsBitIdentical(t, "seeded schedule", w, ref)
}
