package cluster

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"pipebd/internal/cluster/transport"
	"pipebd/internal/cluster/wire"
	"pipebd/internal/distill"
	"pipebd/internal/engine"
	"pipebd/internal/sched"
)

// ringWorkers brings up n ring-capable workers (they dial siblings over
// the same network they listen on) and returns their addresses.
func ringWorkers(t *testing.T, net transport.Network, n int, cfg WorkerConfig) []string {
	t.Helper()
	cfg.Dial = net
	return startWorkers(t, net, n, cfg)
}

// TestRingMatchesPipelinedAcrossPlans is the ring topology's acceptance
// sweep: plan shapes (including a 3-way split, which exercises the true
// reduce-scatter + all-gather ring rather than the k=2 full exchange),
// DPU modes, and worker counts, all bit-identical to the in-process
// engine.
func TestRingMatchesPipelinedAcrossPlans(t *testing.T) {
	batches := tinyBatches(5, 6)
	plans := map[string]sched.Plan{
		"tr-2dev": plan("tr-2dev", g([]int{0}, []int{0, 1}), g([]int{1}, []int{2, 3})),
		"hybrid":  hybridPlan(),
		"tail-dp": plan("tail-dp", g([]int{0}, []int{0, 1}), g([]int{1, 2}, []int{2, 3})),
		"dp3":     plan("dp3", g([]int{0, 1, 2}, []int{0, 1}), g([]int{3}, []int{2, 3})),
	}
	for name, p := range plans {
		for _, dpu := range []bool{false, true} {
			for _, workers := range []int{1, 2, 3} {
				ref := distill.NewTinyWorkbench(distill.DefaultTinyConfig())
				refRes := engine.RunPipelined(ref, batches, engine.Config{Plan: p, DPU: dpu, LR: 0.05, Momentum: 0.9})

				net := transport.NewLoopback()
				addrs := ringWorkers(t, net, workers, WorkerConfig{Sessions: 1})
				w := distill.NewTinyWorkbench(distill.DefaultTinyConfig())
				res, err := Run(net, addrs, w, batches, Config{Plan: p, DPU: dpu,
					LR: 0.05, Momentum: 0.9, Topology: "ring",
					Spec: TinySpec(distill.DefaultTinyConfig())})
				if err != nil {
					t.Fatalf("%s dpu=%v workers=%d: %v", name, dpu, workers, err)
				}
				label := name
				lossesBitIdentical(t, label, res, refRes)
				weightsBitIdentical(t, label, w, ref)
			}
		}
	}
}

// TestRingDataRecipe covers distributed data loading: a run handed
// Config.Data ships no batch tensors anywhere — sessions hosting group-0
// devices regenerate the schedule locally from the recipe — and stays
// bit-identical to the in-process engine. A recipe that fails to
// reproduce the run's actual batches must be rejected up front, before
// any worker session starts.
func TestRingDataRecipe(t *testing.T) {
	const steps, batch = 5, 6
	batches := tinyBatches(steps, batch)
	tiny := distill.DefaultTinyConfig()
	// The recipe mirrors tinyBatches exactly.
	spec := wire.DataSpec{Seed: 7, N: steps * batch, C: 3,
		H: tiny.Height, W: tiny.Width, Classes: 4, Batch: batch}
	p := hybridPlan()
	ref := distill.NewTinyWorkbench(tiny)
	refRes := engine.RunPipelined(ref, batches, engine.Config{Plan: p, DPU: true, LR: 0.05, Momentum: 0.9})

	net := transport.NewLoopback()
	addrs := ringWorkers(t, net, 3, WorkerConfig{Sessions: 1})
	w := distill.NewTinyWorkbench(tiny)
	res, err := Run(net, addrs, w, batches, Config{Plan: p, DPU: true,
		LR: 0.05, Momentum: 0.9, Topology: "ring", Data: spec,
		Spec: TinySpec(tiny)})
	if err != nil {
		t.Fatalf("ring data-recipe run: %v", err)
	}
	lossesBitIdentical(t, "data recipe", res, refRes)
	weightsBitIdentical(t, "data recipe", w, ref)

	bad := spec
	bad.Seed = 8
	w2 := distill.NewTinyWorkbench(tiny)
	_, err = Run(transport.NewLoopback(), []string{"unused"}, w2, batches,
		Config{Plan: p, DPU: true, LR: 0.05, Momentum: 0.9,
			Topology: "ring", Data: bad, Spec: TinySpec(tiny)})
	if err == nil || !strings.Contains(err.Error(), "Config.Data") {
		t.Fatalf("bad recipe: got %v, want Config.Data validation error", err)
	}
}

// TestRingBitEquivalenceTCP runs the hybrid plan over real TCP sockets in
// ring topology: three workers, peer-to-peer data plane, bit-identical to
// the in-process engine.
func TestRingBitEquivalenceTCP(t *testing.T) {
	batches := tinyBatches(6, 8)
	p := hybridPlan()
	ref := distill.NewTinyWorkbench(distill.DefaultTinyConfig())
	refRes := engine.RunPipelined(ref, batches, engine.Config{Plan: p, DPU: true, LR: 0.05, Momentum: 0.9})

	net := transport.TCP{}
	addrs := ringWorkers(t, net, 3, WorkerConfig{Sessions: 1})
	w := distill.NewTinyWorkbench(distill.DefaultTinyConfig())
	res, err := Run(net, addrs, w, batches, Config{Plan: p, DPU: true,
		LR: 0.05, Momentum: 0.9, Topology: "ring",
		Spec: TinySpec(distill.DefaultTinyConfig())})
	if err != nil {
		t.Fatalf("tcp ring run: %v", err)
	}
	lossesBitIdentical(t, "tcp ring vs in-process", res, refRes)
	weightsBitIdentical(t, "tcp ring vs in-process", w, ref)
}

// TestRingRecoveryBitEquivalence is the ring fault-tolerance matrix: a
// peer-to-peer connection is killed while a ring all-reduce segment or a
// forwarded activation is in flight — at the first, a middle, and the
// last step — on loopback and on real TCP. The cascade (the stranded
// peers cannot finish their collectives either) must collapse into one
// global restart from the cut, and the finished run must match the
// fault-free in-process trajectory bit for bit. leakCheck guards the
// attempt-teardown path: no stranded device loops, mesh readers, or
// outbox writers.
func TestRingRecoveryBitEquivalence(t *testing.T) {
	leakCheck(t)
	const steps = 5
	batches := tinyBatches(steps, 8)
	p := hybridPlan()

	refs := map[bool]*distill.Workbench{}
	refRes := map[bool]engine.Result{}
	for _, dpu := range []bool{false, true} {
		ref := distill.NewTinyWorkbench(distill.DefaultTinyConfig())
		refRes[dpu] = engine.RunPipelined(ref, batches, engine.Config{Plan: p, DPU: dpu, LR: 0.05, Momentum: 0.9})
		refs[dpu] = ref
	}

	transports := map[string]func() transport.Network{
		"loopback": func() transport.Network { return transport.NewLoopback() },
		"tcp":      func() transport.Network { return transport.TCP{} },
	}
	kinds := map[string]wire.Kind{
		"all-reduce":  wire.KindRingSegment,
		"activations": wire.KindPeerInput,
	}
	for netName, mkNet := range transports {
		for kindName, kind := range kinds {
			for _, killStep := range []int32{0, steps / 2, steps - 1} {
				// Exercise the barrier path under all-reduce kills and the
				// DPU path under activation kills.
				dpu := kind == wire.KindPeerInput
				label := fmt.Sprintf("%s/%s/kill-step-%d", netName, kindName, killStep)
				t.Run(label, func(t *testing.T) {
					inner := mkNet()
					// All workers share one chaos-wrapped dial network, so the
					// fault arms on whichever peer link carries the matching
					// frame first. The coordinator dials over the inner net.
					chaos := transport.NewChaos(inner, transport.Fault{
						Trigger: transport.Trigger{Conn: transport.AnyConn, Op: transport.OpRecv,
							Kind: kind, Step: killStep, Count: 1},
						Action: transport.ActKill,
					})
					addrs := startWorkers(t, inner, 2, WorkerConfig{Sessions: 1, Rejoin: true, Dial: chaos})
					logf, logs := captureLog()
					w := distill.NewTinyWorkbench(distill.DefaultTinyConfig())
					res, err := Run(inner, addrs, w, batches, Config{
						Plan: p, DPU: dpu, LR: 0.05, Momentum: 0.9, Topology: "ring",
						Spec:        TinySpec(distill.DefaultTinyConfig()),
						MaxRestarts: 2, JoinTimeout: 10 * time.Second, Logf: logf,
					})
					if err != nil {
						t.Fatalf("ring run with injected kill failed: %v\nlog:\n%s", err, logs())
					}
					if !strings.Contains(logs(), "restarting every device from step") {
						t.Fatalf("kill did not trigger a ring restart; log:\n%s", logs())
					}
					lossesBitIdentical(t, label, res, refRes[dpu])
					weightsBitIdentical(t, label, w, refs[dpu])
				})
			}
		}
	}
}

// TestRingRecoveryFallsBackToSurvivingWorker: when the worker process
// itself dies (listener closed, sessions killed) the restart attempt
// cannot re-join it; its devices must land on the surviving worker — the
// peer directory then points both pipeline stages at one address — and
// the run still finishes bit-identically.
func TestRingRecoveryFallsBackToSurvivingWorker(t *testing.T) {
	leakCheck(t)
	batches := tinyBatches(4, 8)
	p := plan("tr-2dev", g([]int{0}, []int{0, 1}), g([]int{1}, []int{2, 3}))
	ref := distill.NewTinyWorkbench(distill.DefaultTinyConfig())
	refRes := engine.RunPipelined(ref, batches, engine.Config{Plan: p, DPU: true, LR: 0.05, Momentum: 0.9})

	inner := transport.NewLoopback()
	// Kill the peer link carrying step 1's forwarded activation; worker B
	// exits after that failed session (no Rejoin), so the restart falls
	// back to worker A for both devices.
	chaos := transport.NewChaos(inner, transport.Fault{
		Trigger: transport.Trigger{Conn: transport.AnyConn, Op: transport.OpRecv,
			Kind: wire.KindPeerInput, Step: 1, Count: 1},
		Action: transport.ActKill,
	})
	addrA := startWorkers(t, inner, 1, WorkerConfig{Rejoin: true, Dial: chaos})[0]
	addrB := startWorkers(t, inner, 1, WorkerConfig{Sessions: 1, Dial: chaos})[0]
	logf, logs := captureLog()
	w := distill.NewTinyWorkbench(distill.DefaultTinyConfig())
	res, err := Run(inner, []string{addrA, addrB}, w, batches, Config{
		Plan: p, DPU: true, LR: 0.05, Momentum: 0.9, Topology: "ring",
		Spec:        TinySpec(distill.DefaultTinyConfig()),
		MaxRestarts: 2, JoinTimeout: 10 * time.Second, Logf: logf,
	})
	if err != nil {
		t.Fatalf("ring fallback run failed: %v\nlog:\n%s", err, logs())
	}
	if !strings.Contains(logs(), "restarting every device from step") {
		t.Fatalf("kill did not trigger a ring restart; log:\n%s", logs())
	}
	lossesBitIdentical(t, "ring surviving-worker fallback", res, refRes)
	weightsBitIdentical(t, "ring surviving-worker fallback", w, ref)
}

// TestRingRecoveryBudgetExhausted: once the restart budget is spent, the
// next loss fails the run with the injected cause, and the failure
// teardown leaks nothing.
func TestRingRecoveryBudgetExhausted(t *testing.T) {
	leakCheck(t)
	batches := tinyBatches(5, 8)
	p := hybridPlan()
	inner := transport.NewLoopback()
	chaos := transport.NewChaos(inner,
		transport.Fault{Trigger: transport.Trigger{Conn: transport.AnyConn, Op: transport.OpRecv,
			Kind: wire.KindRingSegment, Step: 1, Count: 1}, Action: transport.ActKill},
		transport.Fault{Trigger: transport.Trigger{Conn: transport.AnyConn, Op: transport.OpRecv,
			Kind: wire.KindRingSegment, Step: 3, Count: 1}, Action: transport.ActKill},
	)
	addrs := startWorkers(t, inner, 2, WorkerConfig{Rejoin: true, Dial: chaos})
	w := distill.NewTinyWorkbench(distill.DefaultTinyConfig())
	_, err := Run(inner, addrs, w, batches, Config{
		Plan: p, DPU: true, LR: 0.05, Momentum: 0.9, Topology: "ring",
		Spec:        TinySpec(distill.DefaultTinyConfig()),
		MaxRestarts: 1, JoinTimeout: 5 * time.Second,
	})
	if err == nil {
		t.Fatal("ring run survived more deaths than MaxRestarts allows")
	}
}

// TestRingRejectsMisconfiguration: ring sessions need a dial network on
// the worker, and unknown topologies are rejected up front.
func TestRingRejectsMisconfiguration(t *testing.T) {
	batches := tinyBatches(2, 8)
	w := distill.NewTinyWorkbench(distill.DefaultTinyConfig())
	cfg := Config{Plan: hybridPlan(), DPU: true, LR: 0.05,
		Spec: TinySpec(distill.DefaultTinyConfig()), Topology: "mesh"}
	if _, err := Run(transport.NewLoopback(), []string{"x"}, w, batches, cfg); err == nil {
		t.Fatal("unknown topology accepted")
	}

	// Worker without a dial network: the session fails, the run errors.
	net := transport.NewLoopback()
	addrs := startWorkers(t, net, 1, WorkerConfig{Sessions: 1, Rejoin: true})
	cfg.Topology = "ring"
	if _, err := Run(net, addrs, w, batches, cfg); err == nil {
		t.Fatal("ring session without worker dial network succeeded")
	}
}
