package cluster

import (
	"fmt"
	"time"

	"pipebd/internal/cluster/ledger"
	"pipebd/internal/cluster/transport"
	"pipebd/internal/cluster/wire"
	"pipebd/internal/distill"
	"pipebd/internal/engine"
	"pipebd/internal/tensor"
)

// ResumeConfig holds the operational knobs of a resumed run — everything
// else (plan, model spec, hyperparameters, snapshot policy, batches, seed
// weights) comes from the ledger manifest, so the resumed trajectory
// cannot drift from the original by a flag mismatch.
type ResumeConfig struct {
	// Addrs overrides the manifest's worker addresses; nil reuses them.
	Addrs []string
	// JoinTimeout bounds each re-attachment attempt; <= 0 means 10s.
	JoinTimeout time.Duration
	// MaxRestarts is the worker-loss budget of the resumed run; 0 reuses
	// the manifest's budget, negative disables worker-loss recovery (the
	// run stays durable either way — its ledger keeps growing, so a
	// failed resume can itself be resumed).
	MaxRestarts int
	// HeartbeatInterval/HeartbeatTimeout configure silence detection;
	// zero values reuse the manifest's heartbeat interval (with the
	// conventional 4x timeout) when one was set.
	HeartbeatInterval time.Duration
	HeartbeatTimeout  time.Duration
	// Logf receives progress lines; nil is silent.
	Logf func(format string, args ...any)
	// Fsync is the resumed run's record-log durability tier (the ledger is
	// re-opened with it); the zero policy is SyncNone, matching Config.
	Fsync ledger.SyncPolicy
	// Repartition re-arms the runtime repartitioner for the resumed run.
	// A ledger that already holds repartition records enables it
	// implicitly regardless (the original run opted in, and the restore
	// needs the repartition machinery either way); these knobs then tune
	// the re-armed controller.
	Repartition RepartitionConfig
	// Expect, when non-nil, pins what the caller believes the ledger
	// holds; any mismatch fails with a diagnostic before a single worker
	// is dialed, instead of silently resuming a different run.
	Expect *ResumeExpectation
}

// ResumeExpectation states the run a caller intends to resume. Zero
// fields are not checked. It guards the operational gap the manifest
// cannot close by itself: the manifest always wins on *what* runs (plan,
// spec, topology), so a caller pointing -resume at the wrong ledger
// directory would otherwise quietly train a different model.
type ResumeExpectation struct {
	// PlanName must match the manifest plan's name, e.g. "tr".
	PlanName string
	// Topology must match the manifest's data plane; "hub" matches a
	// manifest that spelled it "" (the hub default).
	Topology string
	// Steps must match the manifest's step count.
	Steps int
	// Model must match the manifest spec's registry name, e.g. "tiny" or
	// "transformer".
	Model string
	// Spec, when non-nil, must match the manifest's model spec exactly.
	Spec *wire.ModelSpec
}

// validateManifest rejects a self-inconsistent manifest (a plan that
// cannot drive the persisted snapshot or batch schedule) and any
// expectation mismatch.
func validateManifest(dir string, man *ledger.Manifest, exp *ResumeExpectation) error {
	nDev := 0
	for _, g := range man.Assign.Plan.Groups {
		nDev += g.Split()
	}
	if err := man.Assign.Plan.Validate(nDev, len(man.Assign.Snapshot.Student)); err != nil {
		return fmt.Errorf("ledger %s: manifest plan does not fit its own seed snapshot: %w", dir, err)
	}
	if len(man.Batches) < man.Assign.Run.Steps {
		return fmt.Errorf("ledger %s: manifest stages %d batches for %d steps", dir, len(man.Batches), man.Assign.Run.Steps)
	}
	if exp == nil {
		return nil
	}
	topo := man.Assign.Run.Topology
	if topo == "" {
		topo = "hub"
	}
	if exp.Topology != "" && exp.Topology != topo {
		return fmt.Errorf("ledger %s holds a %s-topology run, not %s — resume inherits the topology from the manifest; drop the override or point at the right ledger", dir, topo, exp.Topology)
	}
	if exp.PlanName != "" && exp.PlanName != man.Assign.Plan.Name {
		return fmt.Errorf("ledger %s holds plan %q (%s), not %q — resume inherits the plan from the manifest; drop the override or point at the right ledger",
			dir, man.Assign.Plan.Name, man.Assign.Plan.Describe(), exp.PlanName)
	}
	if exp.Steps > 0 && exp.Steps != man.Assign.Run.Steps {
		return fmt.Errorf("ledger %s holds a %d-step run, not %d — resume inherits the step count from the manifest; drop the override or point at the right ledger",
			dir, man.Assign.Run.Steps, exp.Steps)
	}
	if exp.Model != "" && exp.Model != man.Assign.Spec.Name {
		return fmt.Errorf("ledger %s holds model %q, not %q — resume inherits the model from the manifest; drop the override or point at the right ledger",
			dir, man.Assign.Spec.Name, exp.Model)
	}
	if exp.Spec != nil && *exp.Spec != man.Assign.Spec {
		return fmt.Errorf("ledger %s holds model %+v, not the expected %+v — resume inherits the model from the manifest; drop the override or point at the right ledger",
			dir, man.Assign.Spec, *exp.Spec)
	}
	return nil
}

// ResumeRun restarts a killed coordinator from its on-disk ledger: it
// reloads the manifest, replays the record log into a fresh hub state,
// rebuilds the coordinator's workbench from the model spec and seed
// snapshot, re-attaches every worker through the wire Resume machinery
// (each device restored to its last persisted snapshot), and drives the
// run to completion. The returned losses and the returned workbench's
// trained student weights are bit-identical to what the uninterrupted
// run — and therefore the fault-free engine.RunPipelined — would have
// produced, for any snapshot interval and with or without rank-0 dedup.
//
// The resumed run keeps appending to the same ledger, so a resume that is
// itself killed can be resumed again.
func ResumeRun(net transport.Network, dir string, rc ResumeConfig) (engine.Result, *distill.Workbench, error) {
	led, man, rep, err := ledger.Open(dir)
	if err != nil {
		return engine.Result{}, nil, err
	}
	if err := validateManifest(dir, man, rc.Expect); err != nil {
		led.Close()
		return engine.Result{}, nil, err
	}
	if err := led.SetSync(rc.Fsync); err != nil {
		led.Close()
		return engine.Result{}, nil, err
	}
	w, err := BuildWorkbench(man.Assign.Spec)
	if err != nil {
		led.Close()
		return engine.Result{}, nil, err
	}
	if err := InstallSnapshot(w, man.Assign.Snapshot); err != nil {
		led.Close()
		return engine.Result{}, nil, err
	}
	addrs := rc.Addrs
	if len(addrs) == 0 {
		addrs = man.Addrs
	}
	maxRestarts := rc.MaxRestarts
	switch {
	case maxRestarts == 0:
		maxRestarts = man.MaxRestarts
	case maxRestarts < 0:
		maxRestarts = 0
	}
	cfg := Config{
		Plan:     man.Assign.Plan,
		DPU:      man.Assign.Run.DPU,
		LR:       man.Assign.Run.LR,
		Momentum: man.Assign.Run.Momentum,
		Buffer:   man.Assign.Run.Buffer,
		Backend:  man.Assign.Run.Backend,
		Topology: man.Assign.Run.Topology,
		Spec:     man.Assign.Spec,
		Snapshot: man.Assign.Run.Snap,
		// LedgerDir marks the run durable for the fault-tolerance switch;
		// the already-open ledger below is reused rather than re-created.
		LedgerDir:         dir,
		JoinTimeout:       rc.JoinTimeout,
		MaxRestarts:       maxRestarts,
		HeartbeatInterval: rc.HeartbeatInterval,
		HeartbeatTimeout:  rc.HeartbeatTimeout,
		Logf:              rc.Logf,
		Fsync:             rc.Fsync,
		Repartition:       rc.Repartition,
	}
	if cfg.HeartbeatInterval == 0 && man.Assign.Run.HeartbeatMillis > 0 {
		cfg.HeartbeatInterval = time.Duration(man.Assign.Run.HeartbeatMillis) * time.Millisecond
		cfg.HeartbeatTimeout = 4 * cfg.HeartbeatInterval
	}
	gens := splitGenerations(rep.Records)
	if len(gens) > 1 {
		// The log spans plan generations: the original run repartitioned,
		// so the resumed run keeps the machinery (and the controller) armed
		// whether or not the caller re-asked for it.
		cfg.Repartition.Enabled = true
	}
	c := NewCoordinator(net, cfg)
	if cfg.Topology == "ring" || cfg.Repartition.Enabled {
		return c.resumeDriven(w, man, rep, gens, addrs, led, dir)
	}
	r, err := c.newRun(w, man.Batches, addrs)
	if err != nil {
		led.Close()
		return engine.Result{}, nil, err
	}
	r.led = led
	defer r.teardown()
	if err := r.restore(rep); err != nil {
		return engine.Result{}, nil, err
	}
	c.logf("ledger %s: restored %d records (%d torn bytes dropped); re-attaching %d worker(s)",
		dir, len(rep.Records), rep.TornBytes, len(addrs))
	if err := r.rejoinAll(); err != nil {
		return engine.Result{}, nil, err
	}
	res, err := c.execute(r)
	if err != nil {
		return engine.Result{}, nil, err
	}
	return res, w, nil
}

// planGeneration is one contiguous slice of a ledger's record log that
// replays under a single plan. A repartition record ends a generation:
// it carries the cut step and the next generation's plan.
type planGeneration struct {
	recs   []*ledger.Record
	repart *ledger.Record // the terminating cut; nil for the final generation
}

// splitGenerations partitions a replayed log at its repartition records.
// A log with none is a single generation under the manifest's plan.
// Compacted checkpoints never straddle a cut (Compact writes one
// checkpoint per generation, with the repartition records between them at
// the top level), so the split only looks at the top level.
func splitGenerations(recs []*ledger.Record) []planGeneration {
	gens := []planGeneration{{}}
	for _, rec := range recs {
		if rec.Type == ledger.TypeRepartition {
			gens[len(gens)-1].repart = rec
			gens = append(gens, planGeneration{})
			continue
		}
		gens[len(gens)-1].recs = append(gens[len(gens)-1].recs, rec)
	}
	return gens
}

// resumeDriven restores a killed attempt-driven coordinator (ring
// topology, and any repartition-enabled hub run). The data plane state
// these runs need is a global restart cut, not per-device surgical
// replay, so the record log is replayed into scratch runs only to
// recover that cut, and the attempt driver then re-places every device
// against the still-running workers exactly as a live restart would —
// same carry, same Resume frames, same bit-identical trajectory.
//
// A repartitioned log replays generation by generation: each superseded
// generation's records rebuild the snapshot history under *its* plan,
// the carry at the recorded cut is remapped onto the next recorded plan
// (block boundaries move between devices; no tensor is recombined), and
// the final generation is restored in full and driven to completion
// under the log's last plan. The resumed run keeps appending to the
// same ledger.
func (c *Coordinator) resumeDriven(w *distill.Workbench, man *ledger.Manifest, rep *ledger.Replay,
	gens []planGeneration, addrs []string, led *ledger.Ledger, dir string) (engine.Result, *distill.Workbench, error) {
	defer led.Close()
	var carry *ringCarry
	for _, gen := range gens[:len(gens)-1] {
		next, err := c.replayGeneration(w, man, gen, addrs, carry)
		if err != nil {
			return engine.Result{}, nil, err
		}
		carry = next
	}
	scratch, err := c.newRun(w, man.Batches, addrs)
	if err != nil {
		return engine.Result{}, nil, err
	}
	scratch.led = led
	scratch.ledShared = true
	scratch.installRingCarry(carry)
	final := gens[len(gens)-1]
	if err := scratch.restore(&ledger.Replay{Records: final.recs}); err != nil {
		scratch.teardown()
		return engine.Result{}, nil, err
	}
	restart := scratch.captureRingCarry()
	scratch.teardown()
	topo := c.cfg.Topology
	if topo == "" {
		topo = "hub"
	}
	c.logf("ledger %s: restored %d records (%d torn bytes dropped, %d plan generation(s)); %s restart of %d device(s) under plan %q from step %d",
		dir, len(rep.Records), rep.TornBytes, len(gens), topo, scratch.nDev, c.cfg.Plan.Name, restart.cut+1)
	res, err := c.driveRing(w, man.Batches, addrs, led, restart)
	if err != nil {
		return engine.Result{}, nil, err
	}
	return res, w, nil
}

// replayGeneration rebuilds a superseded generation's snapshot history in
// a detached scratch run (no ledger: a closed generation must not append)
// and returns the carry at its recorded cut, remapped onto the next
// generation's plan. It mutates c.cfg.Plan to that plan, so subsequent
// scratch runs — and the final drive — build under it.
func (c *Coordinator) replayGeneration(w *distill.Workbench, man *ledger.Manifest,
	gen planGeneration, addrs []string, carry *ringCarry) (*ringCarry, error) {
	newPlan, err := wire.DecodePlan(gen.repart.Payload)
	if err != nil {
		return nil, fmt.Errorf("cluster: repartition record (cut after step %d): %w", gen.repart.Step, err)
	}
	scratch, err := c.newRun(w, man.Batches, addrs)
	if err != nil {
		return nil, err
	}
	defer scratch.teardown()
	scratch.installRingCarry(carry)
	if err := scratch.replayRecords(gen.recs); err != nil {
		return nil, err
	}
	next := scratch.carryAt(gen.repart.Step)
	remapped := remapCarry(next, c.cfg.Plan, newPlan, w)
	c.cfg.Plan = newPlan
	return remapped, nil
}

// carryAt builds the restart carry for a recorded repartition cut: the
// recorded step itself when every group's replayed history covers it,
// else the highest earlier covered step (persistence can lag the live
// cut — e.g. pending dedup snapshots are recorded in memory before their
// group commit reaches the log — and replaying a few extra steps under
// the next plan is bit-identical anyway), else the seed.
func (r *run) carryAt(step int) *ringCarry {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := &ringCarry{cut: -1, losses: r.losses,
		params:   make([][]*tensor.Tensor, len(r.plan.Groups)),
		velocity: make([][]*tensor.Tensor, len(r.plan.Groups))}
	for s := step; s >= 0 && c.cut < 0; s-- {
		all := true
		for _, h := range r.histG {
			if _, ok := h[s]; !ok {
				all = false
				break
			}
		}
		if all {
			c.cut = s
		}
	}
	if c.cut >= 0 {
		for gi := range r.histG {
			e := r.histG[gi][c.cut]
			c.params[gi], c.velocity[gi] = e.params, e.velocity
		}
	}
	return c
}

// restore replays the ledger's records through the same state mutations
// the live handlers use, reconstructing the hub exactly as it stood after
// the last persisted record: committed snapshots, retained inputs,
// half-assembled gathers, the reduction cache, the loss matrix, and the
// replay high-water marks. It runs before any worker attaches, so sends
// inside the shared helpers are naturally suppressed (no peer is mapped)
// while forwards of gathers that completed unpersisted are re-logged.
func (r *run) restore(rep *ledger.Replay) error {
	if err := r.replayRecords(rep.Records); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	// Marks with no record of their own:
	// - Barrier arrivals are implied by releases: a released step was
	//   reached by every device, an unreleased one by no completed device,
	//   so every device re-arrives on replay.
	// - An unsplit group's relayed outputs are implied by the inputs
	//   forwarded to the next group (the payload is forwarded verbatim, so
	//   no separate output record exists).
	for _, ds := range r.devs {
		if !r.co.cfg.DPU && r.stepGoThrough > ds.barrierSeen {
			ds.barrierSeen = r.stepGoThrough
		}
	}
	for gi, g := range r.plan.Groups[:len(r.plan.Groups)-1] {
		if g.Split() != 1 {
			continue
		}
		ds := r.devs[g.Devices[0]]
		if t := r.groupInThrough[gi+1]; t > ds.outputSeen {
			ds.outputSeen = t
		}
	}
	// The credit window: restore released one credit per completed
	// group-0 step; consume one for every step already fed so the
	// in-flight count picks up where the crashed coordinator left off.
	for s := 0; s <= r.fedThrough; s++ {
		select {
		case <-r.credits:
		default:
			// More completed than fed can only under-drain, never block.
			return nil
		}
	}
	return nil
}

// replayRecords replays one record slice through the live handlers' state
// mutations — the record half of restore, shared with the generation
// replays of a repartitioned log (which skip restore's implied-marks and
// credit tails: a superseded generation only contributes its snapshot
// history and loss rows).
func (r *run) replayRecords(recs []*ledger.Record) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, rec := range recs {
		if err := r.restoreRecordLocked(rec); err != nil {
			return fmt.Errorf("cluster: ledger record %d (%v): %w", i, rec.Type, err)
		}
	}
	return nil
}

func (r *run) restoreRecordLocked(rec *ledger.Record) error {
	switch rec.Type {
	case ledger.TypeDevSnapshot:
		ds, ok := r.devs[rec.Dev]
		if !ok {
			return fmt.Errorf("unknown device %d", rec.Dev)
		}
		if err := r.checkSnapshotShapes(rec.Dev, ds.place.gi, rec.Params, rec.Velocity); err != nil {
			return err
		}
		if rec.Step > ds.snapStep {
			r.applyDevSnapshotLocked(ds, rec.Step, rec.Params, rec.Velocity)
		}
	case ledger.TypeGroupSnapshot:
		if rec.Group < 0 || rec.Group >= len(r.plan.Groups) {
			return fmt.Errorf("unknown group %d", rec.Group)
		}
		if err := r.checkSnapshotShapes(r.plan.Groups[rec.Group].Devices[0], rec.Group, rec.Params, rec.Velocity); err != nil {
			return err
		}
		r.applyGroupSnapshotLocked(rec.Group, rec.Step, rec.Params, rec.Velocity)
	case ledger.TypeInput:
		if len(rec.Devs) == 0 {
			return fmt.Errorf("input record without devices")
		}
		for _, d := range rec.Devs {
			if _, ok := r.devs[d]; !ok {
				return fmt.Errorf("unknown device %d", d)
			}
		}
		r.applyInputLocked(rec.Devs, rec.Step, rec.Payload)
	case ledger.TypeOutput:
		ds, ok := r.devs[rec.Dev]
		if !ok {
			return fmt.Errorf("unknown device %d", rec.Dev)
		}
		if ds.place.gi >= len(r.plan.Groups)-1 || r.plan.Groups[ds.place.gi].Split() == 1 {
			return fmt.Errorf("output record for device %d of a non-sharding group", rec.Dev)
		}
		if rec.Step <= ds.outputSeen {
			return nil // duplicate across resume generations
		}
		t, err := wire.DecodeTensor(&wire.Frame{Kind: wire.KindOutput, Payload: rec.Payload})
		if err != nil {
			return err
		}
		return r.applyOutputLocked(ds, rec.Step, t)
	case ledger.TypeReduction:
		if rec.Group < 0 || rec.Group >= len(r.plan.Groups) {
			return fmt.Errorf("unknown group %d", rec.Group)
		}
		r.reduceCache[rec.Group][rec.Step] = rec.Payload
	case ledger.TypeLosses:
		ds, ok := r.devs[rec.Dev]
		if !ok {
			return fmt.Errorf("unknown device %d", rec.Dev)
		}
		if len(rec.Losses) != len(r.plan.Groups[ds.place.gi].Blocks) {
			return fmt.Errorf("loss row has %d entries, group %d trains %d blocks",
				len(rec.Losses), ds.place.gi, len(r.plan.Groups[ds.place.gi].Blocks))
		}
		if rec.Step < 0 || rec.Step >= r.steps {
			return fmt.Errorf("loss step %d outside run of %d", rec.Step, r.steps)
		}
		if rec.Step > ds.lossSeen {
			r.applyLossesLocked(ds, rec.Step, rec.Losses)
		}
	case ledger.TypeBarrier:
		if rec.Step > r.stepGoThrough {
			r.stepGoThrough = rec.Step
		}
	case ledger.TypeCheckpoint:
		// A compacted log: the children preserve their original order, so
		// replaying them is replaying the valid sub-history Compact kept.
		for _, child := range rec.Children {
			if err := r.restoreRecordLocked(child); err != nil {
				return err
			}
		}
	case ledger.TypeMarks:
		// Input high-water marks of the records Compact dropped: restore
		// the feed cursors so those inputs are never re-fed.
		if len(rec.Marks) > len(r.plan.Groups) {
			return fmt.Errorf("marks record covers %d groups, plan has %d", len(rec.Marks), len(r.plan.Groups))
		}
		for gi, m := range rec.Marks {
			if m > r.groupInThrough[gi] {
				r.groupInThrough[gi] = m
			}
			if gi == 0 && m > r.fedThrough {
				r.fedThrough = m
			}
		}
	default:
		return fmt.Errorf("unsupported record")
	}
	return nil
}

// rejoinAll re-attaches every worker of a resumed run: the original
// contiguous placement is rebuilt and each worker receives a wire Resume
// session restoring its devices to their persisted snapshots — the same
// machinery a single dead worker's re-placement uses, applied to the
// whole cluster at once. When a worker's own address no longer answers,
// its devices fall back to any other configured worker.
func (r *run) rejoinAll() error {
	placement := PlaceDevices(r.nDev, len(r.addrs))
	for i, addr := range r.addrs {
		if len(placement[i]) == 0 {
			r.co.logf("worker %s: no devices to place, skipping", addr)
			continue
		}
		sid := r.newSessionID()
		resume := r.buildResume(placement[i], sid)
		candidates := []string{addr}
		for _, a := range r.addrs {
			if a != addr {
				candidates = append(candidates, a)
			}
		}
		conn, got, err := r.dialResume(candidates, resume)
		if err != nil {
			return fmt.Errorf("cluster: re-attaching devices %v: %w", placement[i], err)
		}
		if _, ok := r.attachResumed(conn, got, placement[i], sid); !ok {
			return fmt.Errorf("cluster: run closed while re-attaching workers")
		}
		r.co.logf("devices %v re-attached to worker %s, replaying from the ledger", placement[i], got)
	}
	return nil
}
