package cluster

import (
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"pipebd/internal/cluster/ledger"
	"pipebd/internal/cluster/transport"
	"pipebd/internal/cluster/wire"
	"pipebd/internal/distill"
	"pipebd/internal/engine"
)

// The durable tests rig a "coordinator crash" deterministically: a chaos
// kill severs a coordinator connection while MaxRestarts is 0, so the
// run fails exactly as a SIGKILLed coordinator would leave it — ledger
// written through the crash point, workers orphaned mid-session (they
// survive via Rejoin, awaiting re-attachment). The CI job covers the
// literal kill -9 of a real pipebd process over TCP.
const stepsPerRun = 5

// TestCoordinatorKillResume is the durable-run acceptance matrix: a
// coordinator killed at the first, a middle, and the last step — on
// loopback and on real TCP, at snapshot interval 1 and k > 1 — must be
// restartable via ResumeRun with losses AND trained weights bit-identical
// to the fault-free in-process engine.RunPipelined.
func TestCoordinatorKillResume(t *testing.T) {
	leakCheck(t)
	batches := tinyBatches(stepsPerRun, 8)
	p := hybridPlan()
	ref := distill.NewTinyWorkbench(distill.DefaultTinyConfig())
	refRes := engine.RunPipelined(ref, batches, engine.Config{Plan: p, DPU: true, LR: 0.05, Momentum: 0.9})

	transports := map[string]func() transport.Network{
		"loopback": func() transport.Network { return transport.NewLoopback() },
		"tcp":      func() transport.Network { return transport.TCP{} },
	}
	for name, mkNet := range transports {
		for _, interval := range []int{1, 3} {
			for _, killStep := range []int32{0, stepsPerRun / 2, stepsPerRun - 1} {
				label := fmt.Sprintf("%s/interval-%d/kill-step-%d", name, interval, killStep)
				t.Run(label, func(t *testing.T) {
					inner := mkNet()
					addrs := startWorkers(t, inner, 2, WorkerConfig{Sessions: 1, Rejoin: true})
					dir := filepath.Join(t.TempDir(), "ledger")
					chaos := transport.NewChaos(inner, killLosses(1, killStep))
					w := distill.NewTinyWorkbench(distill.DefaultTinyConfig())
					_, err := Run(chaos, addrs, w, batches, Config{
						Plan: p, DPU: true, LR: 0.05, Momentum: 0.9,
						Spec:        TinySpec(distill.DefaultTinyConfig()),
						Snapshot:    SnapshotPolicy{Interval: interval},
						LedgerDir:   dir,
						JoinTimeout: 10 * time.Second,
					})
					if err == nil {
						t.Fatal("rigged run finished despite the injected coordinator crash")
					}
					if !errors.Is(err, transport.ErrChaos) {
						t.Fatalf("crash should surface the injected fault: %v", err)
					}

					logf, logs := captureLog()
					res, w2, err := ResumeRun(inner, dir, ResumeConfig{
						JoinTimeout: 10 * time.Second, Logf: logf,
					})
					if err != nil {
						t.Fatalf("resume failed: %v\nlog:\n%s", err, logs())
					}
					if !strings.Contains(logs(), "re-attached to worker") {
						t.Fatalf("resume did not re-attach workers; log:\n%s", logs())
					}
					lossesBitIdentical(t, label, res, refRes)
					weightsBitIdentical(t, label, w2, ref)
				})
			}
		}
	}
}

// TestCoordinatorKillResumeDedup runs the crash/resume cycle with rank-0
// dedup on the split group, with and without the global step barrier
// (DPU off exercises the barrier-arrival half of the commit accounting).
// The loss matrix comparison doubles as the completeness check: a dropped
// member loss row would diverge from the fault-free reference.
func TestCoordinatorKillResumeDedup(t *testing.T) {
	leakCheck(t)
	batches := tinyBatches(stepsPerRun, 8)
	p := hybridPlan()
	refs := map[bool]*distill.Workbench{}
	refRes := map[bool]engine.Result{}
	for _, dpu := range []bool{false, true} {
		ref := distill.NewTinyWorkbench(distill.DefaultTinyConfig())
		refRes[dpu] = engine.RunPipelined(ref, batches, engine.Config{Plan: p, DPU: dpu, LR: 0.05, Momentum: 0.9})
		refs[dpu] = ref
	}
	for _, dpu := range []bool{false, true} {
		for _, interval := range []int{1, 2} {
			for _, conn := range []int{0, 1} { // kill the split-group worker and the tail worker
				label := fmt.Sprintf("dpu=%v/interval-%d/kill-conn-%d", dpu, interval, conn)
				t.Run(label, func(t *testing.T) {
					inner := transport.NewLoopback()
					addrs := startWorkers(t, inner, 2, WorkerConfig{Sessions: 1, Rejoin: true})
					dir := filepath.Join(t.TempDir(), "ledger")
					chaos := transport.NewChaos(inner, killLosses(conn, stepsPerRun/2))
					w := distill.NewTinyWorkbench(distill.DefaultTinyConfig())
					_, err := Run(chaos, addrs, w, batches, Config{
						Plan: p, DPU: dpu, LR: 0.05, Momentum: 0.9,
						Spec:        TinySpec(distill.DefaultTinyConfig()),
						Snapshot:    SnapshotPolicy{Interval: interval, Rank0Dedup: true},
						LedgerDir:   dir,
						JoinTimeout: 10 * time.Second,
					})
					if err == nil {
						t.Fatal("rigged run finished despite the injected coordinator crash")
					}
					res, w2, err := ResumeRun(inner, dir, ResumeConfig{JoinTimeout: 10 * time.Second})
					if err != nil {
						t.Fatalf("resume failed: %v", err)
					}
					lossesBitIdentical(t, label, res, refRes[dpu])
					weightsBitIdentical(t, label, w2, refs[dpu])
				})
			}
		}
	}
}

// TestDoubleCrashResume kills the coordinator, kills the RESUMED
// coordinator too, and resumes again: the ledger keeps growing across
// generations, so the third coordinator restores state written by both
// predecessors and still lands bit-identical.
func TestDoubleCrashResume(t *testing.T) {
	leakCheck(t)
	batches := tinyBatches(stepsPerRun, 8)
	p := hybridPlan()
	ref := distill.NewTinyWorkbench(distill.DefaultTinyConfig())
	refRes := engine.RunPipelined(ref, batches, engine.Config{Plan: p, DPU: true, LR: 0.05, Momentum: 0.9})

	inner := transport.NewLoopback()
	addrs := startWorkers(t, inner, 2, WorkerConfig{Sessions: 1, Rejoin: true})
	dir := filepath.Join(t.TempDir(), "ledger")

	chaos := transport.NewChaos(inner, killLosses(1, 1))
	w := distill.NewTinyWorkbench(distill.DefaultTinyConfig())
	if _, err := Run(chaos, addrs, w, batches, Config{
		Plan: p, DPU: true, LR: 0.05, Momentum: 0.9,
		Spec:     TinySpec(distill.DefaultTinyConfig()),
		Snapshot: SnapshotPolicy{Interval: 2}, LedgerDir: dir,
		JoinTimeout: 10 * time.Second,
	}); err == nil {
		t.Fatal("first rigged run finished")
	}

	// Second generation: resume through a chaos net that kills again.
	chaos2 := transport.NewChaos(inner, killLosses(1, 3))
	if _, _, err := ResumeRun(chaos2, dir, ResumeConfig{JoinTimeout: 10 * time.Second}); err == nil {
		t.Fatal("second rigged run finished")
	}

	res, w3, err := ResumeRun(inner, dir, ResumeConfig{JoinTimeout: 10 * time.Second})
	if err != nil {
		t.Fatalf("second resume failed: %v", err)
	}
	lossesBitIdentical(t, "double crash", res, refRes)
	weightsBitIdentical(t, "double crash", w3, ref)
}

// TestResumeOfCompletedRun: resuming a ledger whose run already finished
// must replay the trailing steps idempotently and return the identical
// result — the degenerate case a too-late resume script will hit.
func TestResumeOfCompletedRun(t *testing.T) {
	leakCheck(t)
	batches := tinyBatches(4, 8)
	p := hybridPlan()
	ref := distill.NewTinyWorkbench(distill.DefaultTinyConfig())
	refRes := engine.RunPipelined(ref, batches, engine.Config{Plan: p, DPU: true, LR: 0.05, Momentum: 0.9})

	inner := transport.NewLoopback()
	addrs := startWorkers(t, inner, 2, WorkerConfig{Sessions: 2, Rejoin: true})
	dir := filepath.Join(t.TempDir(), "ledger")
	w := distill.NewTinyWorkbench(distill.DefaultTinyConfig())
	res, err := Run(inner, addrs, w, batches, Config{
		Plan: p, DPU: true, LR: 0.05, Momentum: 0.9,
		Spec:     TinySpec(distill.DefaultTinyConfig()),
		Snapshot: SnapshotPolicy{Interval: 3}, LedgerDir: dir,
		JoinTimeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatalf("durable run failed: %v", err)
	}
	lossesBitIdentical(t, "durable run", res, refRes)

	res2, w2, err := ResumeRun(inner, dir, ResumeConfig{JoinTimeout: 10 * time.Second})
	if err != nil {
		t.Fatalf("resume of completed run failed: %v", err)
	}
	lossesBitIdentical(t, "resume of completed run", res2, refRes)
	weightsBitIdentical(t, "resume of completed run", w2, ref)
}

// TestResumedRunSurvivesWorkerLoss composes the two recovery layers: the
// resumed coordinator itself loses a worker mid-replay and must re-place
// it within the resumed run's restart budget, still bit-identical.
func TestResumedRunSurvivesWorkerLoss(t *testing.T) {
	leakCheck(t)
	batches := tinyBatches(stepsPerRun, 8)
	p := hybridPlan()
	ref := distill.NewTinyWorkbench(distill.DefaultTinyConfig())
	refRes := engine.RunPipelined(ref, batches, engine.Config{Plan: p, DPU: true, LR: 0.05, Momentum: 0.9})

	inner := transport.NewLoopback()
	addrs := startWorkers(t, inner, 2, WorkerConfig{Sessions: 1, Rejoin: true})
	dir := filepath.Join(t.TempDir(), "ledger")
	chaos := transport.NewChaos(inner, killLosses(1, 1))
	w := distill.NewTinyWorkbench(distill.DefaultTinyConfig())
	if _, err := Run(chaos, addrs, w, batches, Config{
		Plan: p, DPU: true, LR: 0.05, Momentum: 0.9,
		Spec:        TinySpec(distill.DefaultTinyConfig()),
		LedgerDir:   dir,
		JoinTimeout: 10 * time.Second,
	}); err == nil {
		t.Fatal("rigged run finished")
	}

	// The resumed run loses worker conn 1 (dial order of rejoinAll) on a
	// later step and must recover it with its own restart budget.
	chaos2 := transport.NewChaos(inner, killLosses(1, stepsPerRun-1))
	logf, logs := captureLog()
	res, w2, err := ResumeRun(chaos2, dir, ResumeConfig{
		JoinTimeout: 10 * time.Second, MaxRestarts: 1, Logf: logf,
	})
	if err != nil {
		t.Fatalf("resume with worker loss failed: %v\nlog:\n%s", err, logs())
	}
	if !strings.Contains(logs(), "re-placed on worker") {
		t.Fatalf("worker loss during resume did not trigger re-placement; log:\n%s", logs())
	}
	lossesBitIdentical(t, "resume + worker loss", res, refRes)
	weightsBitIdentical(t, "resume + worker loss", w2, ref)
}

// TestSnapshotPolicyEdgeCases is the table-driven policy suite: interval
// beyond the run length (resume replays everything from the seed),
// interval 1, dedup defaults, and the validation errors.
func TestSnapshotPolicyEdgeCases(t *testing.T) {
	t.Run("interval-longer-than-run", func(t *testing.T) {
		leakCheck(t)
		batches := tinyBatches(3, 8)
		p := hybridPlan()
		ref := distill.NewTinyWorkbench(distill.DefaultTinyConfig())
		refRes := engine.RunPipelined(ref, batches, engine.Config{Plan: p, DPU: true, LR: 0.05, Momentum: 0.9})

		inner := transport.NewLoopback()
		addrs := startWorkers(t, inner, 2, WorkerConfig{Sessions: 1, Rejoin: true})
		dir := filepath.Join(t.TempDir(), "ledger")
		chaos := transport.NewChaos(inner, killLosses(1, 1))
		w := distill.NewTinyWorkbench(distill.DefaultTinyConfig())
		if _, err := Run(chaos, addrs, w, batches, Config{
			Plan: p, DPU: true, LR: 0.05, Momentum: 0.9,
			Spec:        TinySpec(distill.DefaultTinyConfig()),
			Snapshot:    SnapshotPolicy{Interval: 100}, // no step ever snapshots
			LedgerDir:   dir,
			JoinTimeout: 10 * time.Second,
		}); err == nil {
			t.Fatal("rigged run finished")
		}
		// No snapshot can exist; resume must replay the whole run from the
		// seed weights, fed purely by retained inputs. Close the
		// inspection handle before resuming: Open holds the single-writer
		// flock.
		led, _, rep, err := ledger.Open(dir)
		if err != nil {
			t.Fatalf("ledger open: %v", err)
		}
		led.Close()
		for _, rec := range rep.Records {
			if rec.Type == ledger.TypeDevSnapshot || rec.Type == ledger.TypeGroupSnapshot {
				t.Fatalf("interval 100 still persisted a %v record", rec.Type)
			}
		}
		res, w2, err := ResumeRun(inner, dir, ResumeConfig{JoinTimeout: 10 * time.Second})
		if err != nil {
			t.Fatalf("seed-replay resume failed: %v", err)
		}
		lossesBitIdentical(t, "interval > steps", res, refRes)
		weightsBitIdentical(t, "interval > steps", w2, ref)
	})

	t.Run("validation-errors", func(t *testing.T) {
		batches := tinyBatches(2, 8)
		w := distill.NewTinyWorkbench(distill.DefaultTinyConfig())
		net := transport.NewLoopback()
		base := Config{Plan: hybridPlan(), LR: 0.05,
			Spec: TinySpec(distill.DefaultTinyConfig()), MaxRestarts: 1}

		bad := base
		bad.Snapshot = SnapshotPolicy{Interval: -2}
		if _, err := Run(net, []string{"x"}, w, batches, bad); err == nil || !strings.Contains(err.Error(), "interval") {
			t.Fatalf("negative interval accepted: %v", err)
		}
		bad = base
		bad.MaxRestarts = 0
		bad.Snapshot = SnapshotPolicy{Interval: 2}
		if _, err := Run(net, []string{"x"}, w, batches, bad); err == nil || !strings.Contains(err.Error(), "fault tolerance") {
			t.Fatalf("policy without fault tolerance accepted: %v", err)
		}
		bad = base
		bad.MaxRestarts = 0
		bad.Snapshot = SnapshotPolicy{Rank0Dedup: true}
		if _, err := Run(net, []string{"x"}, w, batches, bad); err == nil {
			t.Fatal("dedup without fault tolerance accepted")
		}
		if _, err := effectivePolicy(wire.SnapshotPolicy{Rank0Dedup: true}, true); err != nil {
			t.Fatalf("dedup with default interval rejected: %v", err)
		}
		if p, _ := effectivePolicy(wire.SnapshotPolicy{}, true); p.Interval != 1 {
			t.Fatalf("zero policy under fault tolerance resolved to %+v, want interval 1", p)
		}
		if p, err := effectivePolicy(wire.SnapshotPolicy{}, false); err != nil || p.Enabled() {
			t.Fatalf("zero policy without fault tolerance resolved to %+v (%v)", p, err)
		}
	})

	t.Run("dedup-ships-one-snapshot-per-group", func(t *testing.T) {
		batches := tinyBatches(4, 8)
		p := hybridPlan()
		inner := transport.NewLoopback()
		addrs := startWorkers(t, inner, 2, WorkerConfig{Sessions: 1, Rejoin: true})
		dir := filepath.Join(t.TempDir(), "ledger")
		w := distill.NewTinyWorkbench(distill.DefaultTinyConfig())
		if _, err := Run(inner, addrs, w, batches, Config{
			Plan: p, DPU: true, LR: 0.05, Momentum: 0.9,
			Spec:      TinySpec(distill.DefaultTinyConfig()),
			Snapshot:  SnapshotPolicy{Interval: 2, Rank0Dedup: true},
			LedgerDir: dir, JoinTimeout: 10 * time.Second,
		}); err != nil {
			t.Fatalf("durable dedup run failed: %v", err)
		}
		led, _, rep, err := ledger.Open(dir)
		if err != nil {
			t.Fatalf("ledger open: %v", err)
		}
		led.Close()
		groups := map[int]bool{}
		for _, rec := range rep.Records {
			switch rec.Type {
			case ledger.TypeDevSnapshot:
				t.Fatal("rank-0 dedup still persisted a per-member snapshot")
			case ledger.TypeGroupSnapshot:
				groups[rec.Group] = true
				if (rec.Step+1)%2 != 0 {
					t.Fatalf("interval 2 committed a snapshot at step %d", rec.Step)
				}
			}
		}
		if !groups[0] || !groups[1] {
			t.Fatalf("expected committed snapshots for both groups, got %v", groups)
		}
	})
}

// TestResumeErrors: a missing or unusable ledger directory surfaces a
// clean error, and resuming with an address override reaches the workers
// even when the manifest's addresses are stale.
func TestResumeErrors(t *testing.T) {
	if _, _, err := ResumeRun(transport.NewLoopback(), filepath.Join(t.TempDir(), "absent"), ResumeConfig{}); err == nil {
		t.Fatal("resume of absent ledger dir succeeded")
	}

	// Stale manifest addresses, fresh override.
	batches := tinyBatches(3, 8)
	p := hybridPlan()
	ref := distill.NewTinyWorkbench(distill.DefaultTinyConfig())
	refRes := engine.RunPipelined(ref, batches, engine.Config{Plan: p, DPU: true, LR: 0.05, Momentum: 0.9})
	inner := transport.NewLoopback()
	addrs := startWorkers(t, inner, 2, WorkerConfig{Sessions: 1, Rejoin: true})
	dir := filepath.Join(t.TempDir(), "ledger")
	chaos := transport.NewChaos(inner, killLosses(1, 0))
	w := distill.NewTinyWorkbench(distill.DefaultTinyConfig())
	if _, err := Run(chaos, addrs, w, batches, Config{
		Plan: p, DPU: true, LR: 0.05, Momentum: 0.9,
		Spec: TinySpec(distill.DefaultTinyConfig()), LedgerDir: dir,
		JoinTimeout: 10 * time.Second,
	}); err == nil {
		t.Fatal("rigged run finished")
	}
	// Resume against fresh workers at new addresses.
	addrs2 := startWorkers(t, inner, 2, WorkerConfig{Sessions: 1, Rejoin: true})
	res, w2, err := ResumeRun(inner, dir, ResumeConfig{
		Addrs: addrs2, JoinTimeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatalf("resume with address override failed: %v", err)
	}
	lossesBitIdentical(t, "address override", res, refRes)
	weightsBitIdentical(t, "address override", w2, ref)
}
