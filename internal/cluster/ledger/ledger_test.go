package ledger

import (
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pipebd/internal/cluster/wire"
	"pipebd/internal/dataset"
	"pipebd/internal/sched"
	"pipebd/internal/tensor"
)

func sampleManifest() *Manifest {
	rng := rand.New(rand.NewSource(11))
	return &Manifest{
		Assign: wire.Assign{
			Plan: sched.Plan{Name: "hybrid", Groups: []sched.Group{
				{Devices: []int{0, 1}, Blocks: []int{0, 1}},
				{Devices: []int{2}, Blocks: []int{2, 3}},
			}},
			Spec: wire.ModelSpec{Name: "tiny", Seed: 42, Blocks: 4, Channels: 6, Height: 8, Width: 8},
			Run: wire.RunConfig{DPU: true, LR: 0.05, Momentum: 0.9, Buffer: 2, Steps: 4,
				Snap: wire.SnapshotPolicy{Interval: 2, Rank0Dedup: true}},
			Snapshot: wire.Snapshot{
				Teacher: [][]*tensor.Tensor{{tensor.Rand(rng, -1, 1, 2, 2)}, {}, {}, {}},
				Student: [][]*tensor.Tensor{{tensor.Rand(rng, -1, 1, 3)}, {}, {}, {tensor.Rand(rng, -1, 1, 2)}},
			},
		},
		Addrs:       []string{"127.0.0.1:7710", "127.0.0.1:7711"},
		MaxRestarts: 2,
		Batches: []dataset.Batch{
			{X: tensor.Rand(rng, -1, 1, 4, 3, 2, 2), Labels: []int{1, 0, 3, 2}},
			{X: tensor.Rand(rng, -1, 1, 4, 3, 2, 2)},
		},
		Meta: "cli: -cluster-plan hybrid -cluster-steps 4",
	}
}

func sampleRecords(rng *rand.Rand) []*Record {
	return []*Record{
		Input([]int{0, 1}, 0, []byte{1, 2, 3, 4, 5}),
		Output(1, 0, []byte{6, 7}),
		DevSnapshot(2, 0,
			[]*tensor.Tensor{tensor.Rand(rng, -1, 1, 3), tensor.Rand(rng, -1, 1, 2, 2)},
			[]*tensor.Tensor{tensor.Rand(rng, -1, 1, 3), tensor.New(2, 2)}),
		GroupSnapshot(0, 1,
			[]*tensor.Tensor{tensor.Rand(rng, -1, 1, 4)},
			[]*tensor.Tensor{tensor.Rand(rng, -1, 1, 4)}),
		Reduction(0, 1, []byte{9, 9}),
		Losses(1, 1, []float64{0.25, -1.5}),
		Barrier(1),
	}
}

func mustCreate(t *testing.T, dir string, m *Manifest) *Ledger {
	t.Helper()
	led, err := Create(dir, m)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	return led
}

// TestManifestAndRecordRoundTrip writes a full ledger and reopens it: the
// manifest must decode field-for-field (tensors bit-exactly) and every
// record must replay in order with its contents intact.
func TestManifestAndRecordRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "run")
	m := sampleManifest()
	led := mustCreate(t, dir, m)
	recs := sampleRecords(rand.New(rand.NewSource(12)))
	for _, rec := range recs {
		if err := led.Append(rec); err != nil {
			t.Fatalf("Append(%v): %v", rec.Type, err)
		}
	}
	if err := led.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	led2, got, rep, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer led2.Close()
	if rep.TornBytes != 0 {
		t.Fatalf("clean log reported %d torn bytes", rep.TornBytes)
	}
	if got.Assign.Plan.Name != m.Assign.Plan.Name || got.Assign.Spec != m.Assign.Spec || got.Assign.Run != m.Assign.Run {
		t.Fatalf("manifest assign mismatch: %+v", got.Assign)
	}
	if len(got.Addrs) != 2 || got.Addrs[1] != m.Addrs[1] || got.MaxRestarts != 2 || got.Meta != m.Meta {
		t.Fatalf("manifest fields mismatch: %+v", got)
	}
	if len(got.Batches) != 2 || !got.Batches[0].X.Equal(m.Batches[0].X) || len(got.Batches[0].Labels) != 4 {
		t.Fatalf("manifest batches mismatch")
	}
	if !got.Assign.Snapshot.Student[0][0].Equal(m.Assign.Snapshot.Student[0][0]) {
		t.Fatal("seed snapshot not bit-identical after round trip")
	}
	if len(rep.Records) != len(recs) {
		t.Fatalf("replayed %d records, want %d", len(rep.Records), len(recs))
	}
	for i, want := range recs {
		r := rep.Records[i]
		if r.Type != want.Type || r.Dev != want.Dev || r.Group != want.Group || r.Step != want.Step {
			t.Fatalf("record %d header: %+v vs %+v", i, r, want)
		}
		if string(r.Payload) != string(want.Payload) {
			t.Fatalf("record %d payload differs", i)
		}
		for pi := range want.Params {
			if !r.Params[pi].Equal(want.Params[pi]) || !r.Velocity[pi].Equal(want.Velocity[pi]) {
				t.Fatalf("record %d tensor %d not bit-identical", i, pi)
			}
		}
		for li := range want.Losses {
			if r.Losses[li] != want.Losses[li] {
				t.Fatalf("record %d loss %d differs", i, li)
			}
		}
		if len(r.Devs) != len(want.Devs) {
			t.Fatalf("record %d devs %v vs %v", i, r.Devs, want.Devs)
		}
	}
}

// TestTornTailRecoversLastCompleteRecord truncates the log at every byte
// offset: Open must never error or panic, must replay exactly the records
// whose bytes fully survived, and must leave the file ready for clean
// appends (the torn tail physically removed).
func TestTornTailRecoversLastCompleteRecord(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "run")
	led := mustCreate(t, dir, sampleManifest())
	recs := sampleRecords(rand.New(rand.NewSource(13)))
	var ends []int // log offset after each record
	logPath := filepath.Join(dir, LogName)
	for _, rec := range recs {
		if err := led.Append(rec); err != nil {
			t.Fatalf("Append: %v", err)
		}
		fi, err := os.Stat(logPath)
		if err != nil {
			t.Fatal(err)
		}
		ends = append(ends, int(fi.Size()))
	}
	led.Close()
	full, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}

	for cut := 0; cut <= len(full); cut++ {
		wantRecs := 0
		for _, e := range ends {
			if e <= cut {
				wantRecs++
			}
		}
		sub := filepath.Join(t.TempDir(), "cut")
		led2 := mustCreate(t, sub, sampleManifest())
		led2.Close()
		if err := os.WriteFile(filepath.Join(sub, LogName), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		led3, _, rep, err := Open(sub)
		if err != nil {
			t.Fatalf("cut %d: Open: %v", cut, err)
		}
		if len(rep.Records) != wantRecs {
			t.Fatalf("cut %d: replayed %d records, want %d", cut, len(rep.Records), wantRecs)
		}
		// Appending after a torn open must extend a consistent log.
		if err := led3.Append(Barrier(7)); err != nil {
			t.Fatalf("cut %d: append after torn open: %v", cut, err)
		}
		led3.Close()
		_, _, rep2, err := Open(sub)
		if err != nil {
			t.Fatalf("cut %d: reopen: %v", cut, err)
		}
		if len(rep2.Records) != wantRecs+1 || rep2.TornBytes != 0 {
			t.Fatalf("cut %d: reopen replayed %d records (%d torn bytes), want %d clean",
				cut, len(rep2.Records), rep2.TornBytes, wantRecs+1)
		}
		if last := rep2.Records[len(rep2.Records)-1]; last.Type != TypeBarrier || last.Step != 7 {
			t.Fatalf("cut %d: appended record did not survive reopen: %+v", cut, last)
		}
	}
}

// TestMidLogCorruptionStopsReplay flips a byte inside an early record:
// replay must stop before the corrupt record (never decode garbage) and
// report the rest of the log as torn.
func TestMidLogCorruptionStopsReplay(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "run")
	led := mustCreate(t, dir, sampleManifest())
	for _, rec := range sampleRecords(rand.New(rand.NewSource(14))) {
		if err := led.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	led.Close()
	logPath := filepath.Join(dir, LogName)
	raw, _ := os.ReadFile(logPath)
	raw[recHeaderLen+2] ^= 0xFF // corrupt the first record's payload
	if err := os.WriteFile(logPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	led2, _, rep, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	led2.Close()
	if len(rep.Records) != 0 {
		t.Fatalf("corrupt first record still replayed %d records", len(rep.Records))
	}
	if rep.TornBytes == 0 {
		t.Fatal("corruption not reported as torn bytes")
	}
}

// TestManifestErrors: a corrupt, truncated, version-skewed, or missing
// manifest must be a hard error (never a silent partial resume) and must
// never panic.
func TestManifestErrors(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "run")
	led := mustCreate(t, dir, sampleManifest())
	led.Close()
	path := filepath.Join(dir, ManifestName)
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	reset := func(b []byte) {
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	mustFail := func(label, want string) {
		t.Helper()
		_, _, _, err := Open(dir)
		if err == nil {
			t.Fatalf("%s: Open succeeded", label)
		}
		if want != "" && !strings.Contains(err.Error(), want) {
			t.Fatalf("%s: error %q does not mention %q", label, err, want)
		}
	}

	// Version skew.
	skew := append([]byte(nil), good...)
	skew[4] = Version + 1
	reset(skew)
	mustFail("version skew", "version")

	// Flipped payload byte: checksum mismatch.
	corrupt := append([]byte(nil), good...)
	corrupt[len(corrupt)-1] ^= 0xFF
	reset(corrupt)
	mustFail("corrupt payload", "checksum")

	// Bad magic.
	magic := append([]byte(nil), good...)
	magic[0] = 'X'
	reset(magic)
	mustFail("bad magic", "magic")

	// Every truncation errors, none panics.
	for cut := 0; cut < len(good); cut += 13 {
		reset(good[:cut])
		mustFail("truncated", "")
	}

	// Missing manifest entirely.
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	mustFail("missing manifest", "manifest")

	// Missing directory.
	if _, _, _, err := Open(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("Open of absent directory succeeded")
	}
}

// TestCreateRejectsExistingRun: Create must refuse a directory that
// already holds a manifest so two coordinators never interleave one log.
func TestCreateRejectsExistingRun(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "run")
	led := mustCreate(t, dir, sampleManifest())
	led.Close()
	if _, err := Create(dir, sampleManifest()); err == nil {
		t.Fatal("Create over an existing run succeeded")
	}
}

// TestAppendAfterCloseFails: the ledger must not silently drop records
// once released.
func TestAppendAfterCloseFails(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "run")
	led := mustCreate(t, dir, sampleManifest())
	led.Close()
	if err := led.Append(Barrier(0)); err == nil {
		t.Fatal("append after close succeeded")
	}
}

// TestSyncPolicyParse pins the CLI grammar of -fsync.
func TestSyncPolicyParse(t *testing.T) {
	cases := []struct {
		in   string
		want SyncPolicy
		err  bool
	}{
		{"", SyncPolicy{Mode: SyncNone}, false},
		{"none", SyncPolicy{Mode: SyncNone}, false},
		{"always", SyncPolicy{Mode: SyncAlways}, false},
		{"interval", SyncPolicy{Mode: SyncInterval, Every: 64}, false},
		{"interval:3", SyncPolicy{Mode: SyncInterval, Every: 3}, false},
		{"interval:0", SyncPolicy{}, true},
		{"interval:-2", SyncPolicy{}, true},
		{"interval:x", SyncPolicy{}, true},
		{"sometimes", SyncPolicy{}, true},
	}
	for _, c := range cases {
		got, err := ParseSyncPolicy(c.in)
		if (err != nil) != c.err {
			t.Fatalf("ParseSyncPolicy(%q) err = %v, want err=%v", c.in, err, c.err)
		}
		if err == nil && got != c.want {
			t.Fatalf("ParseSyncPolicy(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
	if err := (SyncPolicy{Mode: SyncInterval}).Validate(); err == nil {
		t.Fatal("interval policy without Every validated")
	}
	if err := (SyncPolicy{Mode: SyncMode(9)}).Validate(); err == nil {
		t.Fatal("unknown mode validated")
	}
	if s := (SyncPolicy{Mode: SyncInterval, Every: 8}).String(); s != "interval:8" {
		t.Fatalf("String = %q", s)
	}
}

// TestSetSyncRejectsInvalid pins SetSync validation.
func TestSetSyncRejectsInvalid(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "run")
	led := mustCreate(t, dir, sampleManifest())
	defer led.Close()
	if err := led.SetSync(SyncPolicy{Mode: SyncInterval, Every: 0}); err == nil {
		t.Fatal("invalid policy accepted")
	}
	if err := led.SetSync(SyncPolicy{Mode: SyncAlways}); err != nil {
		t.Fatalf("valid policy rejected: %v", err)
	}
	if got := led.Sync(); got.Mode != SyncAlways {
		t.Fatalf("Sync() = %+v", got)
	}
}

// TestTornTailRecoversOnSyncedLogs re-runs the byte-level torn-tail sweep
// over logs written under each synced durability tier: fsync must not
// change the on-disk framing, so a tail torn by power loss (simulated by
// truncating at every offset) still recovers the longest consistent
// prefix and leaves the log appendable.
func TestTornTailRecoversOnSyncedLogs(t *testing.T) {
	for _, policy := range []SyncPolicy{
		{Mode: SyncAlways},
		{Mode: SyncInterval, Every: 2},
	} {
		t.Run(policy.String(), func(t *testing.T) {
			dir := filepath.Join(t.TempDir(), "run")
			led := mustCreate(t, dir, sampleManifest())
			if err := led.SetSync(policy); err != nil {
				t.Fatal(err)
			}
			recs := sampleRecords(rand.New(rand.NewSource(17)))
			var ends []int
			logPath := filepath.Join(dir, LogName)
			for _, rec := range recs {
				if err := led.Append(rec); err != nil {
					t.Fatalf("Append: %v", err)
				}
				fi, err := os.Stat(logPath)
				if err != nil {
					t.Fatal(err)
				}
				ends = append(ends, int(fi.Size()))
			}
			if err := led.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			full, err := os.ReadFile(logPath)
			if err != nil {
				t.Fatal(err)
			}
			for cut := 0; cut <= len(full); cut++ {
				wantRecs := 0
				for _, e := range ends {
					if e <= cut {
						wantRecs++
					}
				}
				sub := filepath.Join(t.TempDir(), "cut")
				led2 := mustCreate(t, sub, sampleManifest())
				led2.Close()
				if err := os.WriteFile(filepath.Join(sub, LogName), full[:cut], 0o644); err != nil {
					t.Fatal(err)
				}
				led3, _, rep, err := Open(sub)
				if err != nil {
					t.Fatalf("cut %d: Open: %v", cut, err)
				}
				if len(rep.Records) != wantRecs {
					t.Fatalf("cut %d: replayed %d records, want %d", cut, len(rep.Records), wantRecs)
				}
				// A resumed ledger keeps appending under the same tier.
				if err := led3.SetSync(policy); err != nil {
					t.Fatal(err)
				}
				if err := led3.Append(Barrier(9)); err != nil {
					t.Fatalf("cut %d: append after torn open: %v", cut, err)
				}
				if err := led3.Close(); err != nil {
					t.Fatalf("cut %d: close: %v", cut, err)
				}
				_, _, rep2, err := Open(sub)
				if err != nil {
					t.Fatalf("cut %d: reopen: %v", cut, err)
				}
				if len(rep2.Records) != wantRecs+1 || rep2.TornBytes != 0 {
					t.Fatalf("cut %d: reopen replayed %d records (%d torn bytes), want %d clean",
						cut, len(rep2.Records), rep2.TornBytes, wantRecs+1)
				}
			}
		})
	}
}

// TestSyncedAppendKeepsLogIdentical proves the sync tiers are invisible
// to the codec: byte-identical logs regardless of policy.
func TestSyncedAppendKeepsLogIdentical(t *testing.T) {
	write := func(policy SyncPolicy) []byte {
		dir := filepath.Join(t.TempDir(), "run")
		led := mustCreate(t, dir, sampleManifest())
		if err := led.SetSync(policy); err != nil {
			t.Fatal(err)
		}
		for _, rec := range sampleRecords(rand.New(rand.NewSource(21))) {
			if err := led.Append(rec); err != nil {
				t.Fatal(err)
			}
		}
		if err := led.Close(); err != nil {
			t.Fatal(err)
		}
		raw, err := os.ReadFile(filepath.Join(dir, LogName))
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	none := write(SyncPolicy{Mode: SyncNone})
	always := write(SyncPolicy{Mode: SyncAlways})
	interval := write(SyncPolicy{Mode: SyncInterval, Every: 3})
	if string(none) != string(always) || string(none) != string(interval) {
		t.Fatal("sync policy changed the on-disk log bytes")
	}
}
