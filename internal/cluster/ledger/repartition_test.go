package ledger

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"

	"pipebd/internal/cluster/wire"
	"pipebd/internal/sched"
)

// TestRepartitionRecordRoundTrip: a repartition record (cut step plus
// encoded new plan) must replay exactly — resume rebuilds the plan
// generations from it.
func TestRepartitionRecordRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "run")
	led := mustCreate(t, dir, sampleManifest())
	plan := sched.Plan{Name: "rebalanced", Groups: []sched.Group{
		{Devices: []int{0}, Blocks: []int{0}},
		{Devices: []int{2}, Blocks: []int{1, 2, 3}},
	}}
	payload := wire.EncodePlan(plan)
	recs := []*Record{
		Losses(0, 0, []float64{0.5}),
		Repartition(2, payload),
		Losses(0, 3, []float64{0.25}),
	}
	for _, rec := range recs {
		if err := led.Append(rec); err != nil {
			t.Fatalf("Append(%v): %v", rec.Type, err)
		}
	}
	led.Close()

	led2, _, rep, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer led2.Close()
	if len(rep.Records) != len(recs) {
		t.Fatalf("replayed %d records, want %d", len(rep.Records), len(recs))
	}
	got := rep.Records[1]
	if got.Type != TypeRepartition || got.Step != 2 {
		t.Fatalf("repartition record replayed as %+v, want type %v step 2", got, TypeRepartition)
	}
	if !bytes.Equal(got.Payload, payload) {
		t.Fatal("repartition payload not byte-identical after replay")
	}
	decoded, err := wire.DecodePlan(got.Payload)
	if err != nil {
		t.Fatalf("decoding replayed plan: %v", err)
	}
	if decoded.Name != plan.Name || len(decoded.Groups) != len(plan.Groups) {
		t.Fatalf("replayed plan = %+v, want %+v", decoded, plan)
	}
}

// TestCompactRefusesRepartitionedLog: compaction's horizon computation
// assumes one plan for the whole log, so a log spanning plan generations
// must be refused loudly rather than compacted wrong.
func TestCompactRefusesRepartitionedLog(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "run")
	led := mustCreate(t, dir, sampleManifest())
	rng := rand.New(rand.NewSource(13))
	for _, rec := range sampleRecords(rng) {
		if err := led.Append(rec); err != nil {
			t.Fatalf("Append(%v): %v", rec.Type, err)
		}
	}
	if err := led.Append(Repartition(1, wire.EncodePlan(sched.Plan{Name: "p", Groups: []sched.Group{
		{Devices: []int{0}, Blocks: []int{0, 1, 2, 3}},
	}}))); err != nil {
		t.Fatalf("Append(repartition): %v", err)
	}
	led.Close()

	err := Compact(dir)
	if err == nil || !strings.Contains(err.Error(), "cannot be compacted") {
		t.Fatalf("Compact on repartitioned log: got %v, want refusal", err)
	}
}
