package ledger

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"pipebd/internal/cluster/wire"
	"pipebd/internal/sched"
	"pipebd/internal/tensor"
)

// TestRepartitionRecordRoundTrip: a repartition record (cut step plus
// encoded new plan) must replay exactly — resume rebuilds the plan
// generations from it.
func TestRepartitionRecordRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "run")
	led := mustCreate(t, dir, sampleManifest())
	plan := sched.Plan{Name: "rebalanced", Groups: []sched.Group{
		{Devices: []int{0}, Blocks: []int{0}},
		{Devices: []int{2}, Blocks: []int{1, 2, 3}},
	}}
	payload := wire.EncodePlan(plan)
	recs := []*Record{
		Losses(0, 0, []float64{0.5}),
		Repartition(2, payload),
		Losses(0, 3, []float64{0.25}),
	}
	for _, rec := range recs {
		if err := led.Append(rec); err != nil {
			t.Fatalf("Append(%v): %v", rec.Type, err)
		}
	}
	led.Close()

	led2, _, rep, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer led2.Close()
	if len(rep.Records) != len(recs) {
		t.Fatalf("replayed %d records, want %d", len(rep.Records), len(recs))
	}
	got := rep.Records[1]
	if got.Type != TypeRepartition || got.Step != 2 {
		t.Fatalf("repartition record replayed as %+v, want type %v step 2", got, TypeRepartition)
	}
	if !bytes.Equal(got.Payload, payload) {
		t.Fatal("repartition payload not byte-identical after replay")
	}
	decoded, err := wire.DecodePlan(got.Payload)
	if err != nil {
		t.Fatalf("decoding replayed plan: %v", err)
	}
	if decoded.Name != plan.Name || len(decoded.Groups) != len(plan.Groups) {
		t.Fatalf("replayed plan = %+v, want %+v", decoded, plan)
	}
}

// unsplitManifest is a repartition-shaped manifest: an all-unsplit
// three-group plan (the only shape the repartitioner accepts).
func unsplitManifest() *Manifest {
	m := sampleManifest()
	m.Assign.Plan = sched.Plan{Name: "lopsided", Groups: []sched.Group{
		{Devices: []int{0}, Blocks: []int{0, 1}},
		{Devices: []int{1}, Blocks: []int{2}},
		{Devices: []int{2}, Blocks: []int{3}},
	}}
	return m
}

// rebalancedPlan is the plan the synthetic repartition cuts over to.
func rebalancedPlan() sched.Plan {
	return sched.Plan{Name: "rebalanced", Groups: []sched.Group{
		{Devices: []int{0}, Blocks: []int{0}},
		{Devices: []int{1}, Blocks: []int{1, 2}},
		{Devices: []int{2}, Blocks: []int{3}},
	}}
}

func snap(t *testing.T, rng *rand.Rand, gi, step int) *Record {
	t.Helper()
	return GroupSnapshot(gi, step,
		[]*tensor.Tensor{tensor.Rand(rng, -1, 1, 3)},
		[]*tensor.Tensor{tensor.Rand(rng, -1, 1, 3)})
}

// TestCompactRepartitionedLogMidGeneration: a log cut mid-generation (the
// superseded generation's last common snapshot step trails the recorded
// cut) compacts to one checkpoint per generation with the repartition
// record between them, keeps each generation's restartable snapshots and
// every loss row, drops superseded tensors, and is idempotent.
func TestCompactRepartitionedLogMidGeneration(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "run")
	led := mustCreate(t, dir, unsplitManifest())
	rng := rand.New(rand.NewSource(23))
	repartPayload := wire.EncodePlan(rebalancedPlan())
	recs := []*Record{
		// Generation 0 under the lopsided plan: every group snapshots
		// steps 0 and 1, only group 0 reaches step 2, so the carry cut a
		// resume recovers (and the horizon Compact must keep) is step 1 —
		// even though the recorded cut is after step 2, and even though
		// device 2's loss rows stop at step 0 (a superseded generation's
		// horizon mirrors the carry, not the ring's loss accounting).
		snap(t, rng, 0, 0), snap(t, rng, 1, 0), snap(t, rng, 2, 0),
		Input([]int{0}, 0, []byte{1}), Input([]int{0}, 1, []byte{2}), Input([]int{0}, 2, []byte{3}),
		Losses(0, 0, []float64{0.5, 0.4}), Losses(1, 0, []float64{0.3}), Losses(2, 0, []float64{0.2}),
		snap(t, rng, 0, 1), snap(t, rng, 1, 1), snap(t, rng, 2, 1),
		snap(t, rng, 0, 2),
		Repartition(2, repartPayload),
		// Generation 1 under the rebalanced plan.
		snap(t, rng, 0, 3), snap(t, rng, 1, 3), snap(t, rng, 2, 3),
		Losses(0, 3, []float64{0.1}), Losses(1, 3, []float64{0.2, 0.3}), Losses(2, 3, []float64{0.4}),
	}
	for _, rec := range recs {
		if err := led.Append(rec); err != nil {
			t.Fatalf("Append(%v): %v", rec.Type, err)
		}
	}
	led.Close()

	if err := Compact(dir); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	led2, _, rep, err := Open(dir)
	if err != nil {
		t.Fatalf("reopening compacted ledger: %v", err)
	}
	led2.Close()
	if len(rep.Records) != 3 ||
		rep.Records[0].Type != TypeCheckpoint ||
		rep.Records[1].Type != TypeRepartition ||
		rep.Records[2].Type != TypeCheckpoint {
		t.Fatalf("compacted repartitioned log = %v records, want checkpoint/repartition/checkpoint", typesOf(rep.Records))
	}
	if rep.Records[1].Step != 2 || !bytes.Equal(rep.Records[1].Payload, repartPayload) {
		t.Fatal("repartition record did not survive compaction byte-identically")
	}

	gen0 := rep.Records[0]
	snaps, losses := 0, 0
	for _, c := range gen0.Children {
		switch c.Type {
		case TypeGroupSnapshot:
			snaps++
			// The horizon is the last common snapshot step at or below the
			// cut — step 1 — so every step-0 snapshot is dropped and every
			// later one (including group 0's step-2) survives.
			if c.Step < 1 {
				t.Fatalf("superseded generation kept a step-%d snapshot below its horizon", c.Step)
			}
		case TypeLosses:
			losses++
		case TypeInput:
			t.Fatal("superseded generation kept an input already covered by device snapshots")
		}
	}
	if snaps != 4 || losses != 3 {
		t.Fatalf("superseded generation kept %d snapshots and %d loss rows, want 4 and 3", snaps, losses)
	}
	if last := gen0.Children[len(gen0.Children)-1]; last.Type != TypeMarks || last.Marks[0] != 2 {
		t.Fatalf("superseded generation's last child = %+v, want marks with group-0 cursor 2", last)
	}
	gen1 := rep.Records[2]
	for _, c := range gen1.Children {
		if c.Type == TypeGroupSnapshot && c.Step != 3 {
			t.Fatalf("final generation kept a step-%d snapshot, want only the step-3 horizon", c.Step)
		}
	}

	// Idempotency: a second Compact must be a byte-identical no-op.
	first, err := os.ReadFile(filepath.Join(dir, LogName))
	if err != nil {
		t.Fatal(err)
	}
	if err := Compact(dir); err != nil {
		t.Fatalf("second Compact: %v", err)
	}
	second, err := os.ReadFile(filepath.Join(dir, LogName))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatal("Compact is not idempotent on a repartitioned log")
	}
}

// TestCompactRepartitionedLogAtCutBoundary: a coordinator killed right
// after appending the repartition record leaves an empty final
// generation; Compact must keep the superseded generation's snapshots at
// the recorded cut itself and emit a degenerate (marks-only, seed-
// horizon) checkpoint for the empty generation.
func TestCompactRepartitionedLogAtCutBoundary(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "run")
	led := mustCreate(t, dir, unsplitManifest())
	rng := rand.New(rand.NewSource(29))
	recs := []*Record{
		snap(t, rng, 0, 0), snap(t, rng, 1, 0), snap(t, rng, 2, 0),
		snap(t, rng, 0, 1), snap(t, rng, 1, 1), snap(t, rng, 2, 1),
		Losses(0, 1, []float64{0.5, 0.4}),
		Repartition(1, wire.EncodePlan(rebalancedPlan())),
	}
	for _, rec := range recs {
		if err := led.Append(rec); err != nil {
			t.Fatalf("Append(%v): %v", rec.Type, err)
		}
	}
	led.Close()

	if err := Compact(dir); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	led2, _, rep, err := Open(dir)
	if err != nil {
		t.Fatalf("reopening compacted ledger: %v", err)
	}
	led2.Close()
	if len(rep.Records) != 3 || rep.Records[1].Type != TypeRepartition {
		t.Fatalf("compacted cut-boundary log = %v, want checkpoint/repartition/checkpoint", typesOf(rep.Records))
	}
	gen0 := rep.Records[0]
	for _, c := range gen0.Children {
		// Every group snapshotted the cut step itself, so the horizon is
		// the cut and the step-0 snapshots are dropped.
		if (c.Type == TypeGroupSnapshot || c.Type == TypeDevSnapshot) && c.Step < 1 {
			t.Fatalf("kept a step-%d snapshot below the cut horizon", c.Step)
		}
	}
	empty := rep.Records[2]
	if len(empty.Children) != 1 || empty.Children[0].Type != TypeMarks {
		t.Fatalf("empty final generation compacted to %+v, want a marks-only checkpoint", empty)
	}
}

func typesOf(recs []*Record) []Type {
	ts := make([]Type, len(recs))
	for i, r := range recs {
		ts[i] = r.Type
	}
	return ts
}
