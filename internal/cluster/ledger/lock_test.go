//go:build unix

package ledger

import (
	"strings"
	"testing"
)

// TestOpenRejectsConcurrentWriter pins the single-writer guarantee: while
// one ledger handle is live (from Create or Open), a second Open of the
// same directory must fail fast instead of interleaving records, and the
// lock must release on Close so a legitimate sequential resume proceeds.
func TestOpenRejectsConcurrentWriter(t *testing.T) {
	dir := t.TempDir()
	led := mustCreate(t, dir, sampleManifest())

	// Create holds the lock: a concurrent resume must be rejected.
	if _, _, _, err := Open(dir); err == nil || !strings.Contains(err.Error(), "locked") {
		t.Fatalf("Open while Create's handle is live: err = %v, want lock error", err)
	}
	if err := led.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// First resume takes the lock; a second concurrent resume fails.
	first, _, _, err := Open(dir)
	if err != nil {
		t.Fatalf("Open after Close: %v", err)
	}
	if _, _, _, err := Open(dir); err == nil || !strings.Contains(err.Error(), "locked") {
		t.Fatalf("second concurrent Open: err = %v, want lock error", err)
	}

	// Releasing the first handle unblocks the next resume.
	if err := first.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	second, _, _, err := Open(dir)
	if err != nil {
		t.Fatalf("Open after lock release: %v", err)
	}
	if err := second.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}
