package ledger

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// FuzzReplayLog drives the record-log parser with arbitrary bytes:
// replay must never panic, must stop at the first incomplete record, and
// whatever it accepted must re-encode to bytes the parser accepts again
// (the round-trip property on surviving records).
func FuzzReplayLog(f *testing.F) {
	seedRecs := sampleRecords(rand.New(rand.NewSource(21)))
	var log []byte
	for _, rec := range seedRecs {
		payload, err := rec.encode()
		if err != nil {
			f.Fatal(err)
		}
		log = append(log, frameRecord(rec.Type, payload)...)
	}
	f.Add(log)
	f.Add(log[:len(log)-3])         // torn tail
	f.Add([]byte{recMagic, 0xFF})   // unknown type
	f.Add([]byte{})                 // empty log
	f.Add([]byte{0x00, 0x01, 0x02}) // garbage
	f.Fuzz(func(t *testing.T, data []byte) {
		rep, good := replayLog(data)
		if good > len(data) || good < 0 {
			t.Fatalf("replay consumed %d of %d bytes", good, len(data))
		}
		if rep.TornBytes != len(data)-good {
			t.Fatalf("torn accounting: %d vs %d", rep.TornBytes, len(data)-good)
		}
		// Re-encode every accepted record; the result must replay cleanly
		// to the same count.
		var re []byte
		for _, rec := range rep.Records {
			payload, err := rec.encode()
			if err != nil {
				t.Fatalf("re-encode of replayed %v record failed: %v", rec.Type, err)
			}
			re = append(re, frameRecord(rec.Type, payload)...)
		}
		rep2, _ := replayLog(re)
		if len(rep2.Records) != len(rep.Records) || rep2.TornBytes != 0 {
			t.Fatalf("round trip: %d records (%d torn), want %d clean",
				len(rep2.Records), rep2.TornBytes, len(rep.Records))
		}
	})
}

// FuzzOpenManifest drives the manifest decoder with arbitrary bytes: it
// must return an error or a manifest, never panic — and a decoded
// manifest must survive an encode/decode round trip.
func FuzzOpenManifest(f *testing.F) {
	good, err := encodeManifest(sampleManifest())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add(good[:len(good)/2])
	f.Add([]byte("PBDL"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := decodeManifest(data)
		if err != nil {
			return
		}
		re, err := encodeManifest(m)
		if err != nil {
			t.Fatalf("re-encode of decoded manifest failed: %v", err)
		}
		if _, err := decodeManifest(re); err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
	})
}

// TestOpenArbitraryLogNeverErrors is the deterministic cousin of the
// fuzz targets: a valid manifest next to a garbage log must open (replay
// stops at the garbage) so a resume can always start from the last
// complete record.
func TestOpenArbitraryLogNeverErrors(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "run")
	led := mustCreate(t, dir, sampleManifest())
	led.Close()
	if err := os.WriteFile(filepath.Join(dir, LogName), []byte("not a log at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	led2, _, rep, err := Open(dir)
	if err != nil {
		t.Fatalf("Open with garbage log: %v", err)
	}
	led2.Close()
	if len(rep.Records) != 0 || rep.TornBytes == 0 {
		t.Fatalf("garbage log replayed as %d records, %d torn", len(rep.Records), rep.TornBytes)
	}
}
