// Package ledger is the durable-run store of the cluster coordinator: a
// versioned, crash-safe on-disk codec that persists everything a
// restarted coordinator needs to resume a run bit-identically — the
// immutable session setup in a manifest written via atomic rename, and
// the mutable hub state (per-device snapshots, retained inputs, completed
// gradient reductions, emitted loss rows, barrier releases) as an
// append-only record log.
//
// Crash semantics: every record carries a CRC over its payload, so a
// coordinator killed mid-append leaves at most one torn record at the
// tail. Open tolerates that — it replays the log up to the last complete
// record, truncates the torn tail, and reports how many bytes it dropped —
// while a corrupt or version-skewed manifest is a hard error (the
// manifest is written once, atomically, before any record, so it can
// never be legitimately half-written). Records reuse the wire package's
// payload codec, so every float crosses the disk boundary bit-exactly,
// which the resume path's bit-equivalence guarantee depends on.
package ledger

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"

	"pipebd/internal/cluster/wire"
	"pipebd/internal/dataset"
	"pipebd/internal/tensor"
)

const (
	// Version is the on-disk format version; manifests stamped with any
	// other version are rejected by Open.
	Version = 1

	// ManifestName and LogName are the two files a ledger directory holds.
	ManifestName = "MANIFEST"
	LogName      = "records.log"

	manifestMagic = "PBDL"
	recMagic      = 0xD1
	recHeaderLen  = 10 // magic, type, payload length u32, payload crc32
)

// ErrVersion is wrapped by Open errors caused by a manifest written by a
// different ledger format version.
var ErrVersion = errors.New("ledger: version mismatch")

// SyncMode selects how aggressively Append pushes records to stable
// storage. The default, SyncNone, hands records to the operating system
// and stops there: that survives process death (page-cache contents
// outlive a SIGKILL) but not power loss. The synced tiers close that gap
// at increasing append latency.
type SyncMode int

const (
	// SyncNone never fsyncs the record log (the pre-sync-policy behavior):
	// durable against process death only.
	SyncNone SyncMode = iota
	// SyncInterval fsyncs after every Every-th appended record, and again
	// on Close — bounded-loss durability: a power cut loses at most the
	// records since the last sync point.
	SyncInterval
	// SyncAlways fsyncs after every record: an Append that returned has
	// reached stable storage.
	SyncAlways
)

// SyncPolicy is a ledger's record-log durability tier. The zero value is
// SyncNone.
type SyncPolicy struct {
	Mode SyncMode
	// Every is the record interval for SyncInterval (ignored otherwise);
	// it must be >= 1 in that mode.
	Every int
}

// Validate rejects malformed policies.
func (p SyncPolicy) Validate() error {
	switch p.Mode {
	case SyncNone, SyncAlways:
		return nil
	case SyncInterval:
		if p.Every < 1 {
			return fmt.Errorf("ledger: interval sync needs Every >= 1, got %d", p.Every)
		}
		return nil
	default:
		return fmt.Errorf("ledger: unknown sync mode %d", int(p.Mode))
	}
}

func (p SyncPolicy) String() string {
	switch p.Mode {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return fmt.Sprintf("interval:%d", p.Every)
	default:
		return "none"
	}
}

// ParseSyncPolicy parses the CLI form of a sync policy: "none", "always",
// "interval" (every 64 records), or "interval:N".
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch {
	case s == "" || s == "none":
		return SyncPolicy{Mode: SyncNone}, nil
	case s == "always":
		return SyncPolicy{Mode: SyncAlways}, nil
	case s == "interval":
		return SyncPolicy{Mode: SyncInterval, Every: 64}, nil
	case len(s) > len("interval:") && s[:len("interval:")] == "interval:":
		var n int
		if _, err := fmt.Sscanf(s[len("interval:"):], "%d", &n); err != nil || n < 1 {
			return SyncPolicy{}, fmt.Errorf("ledger: bad sync interval %q (want interval:N with N >= 1)", s)
		}
		return SyncPolicy{Mode: SyncInterval, Every: n}, nil
	default:
		return SyncPolicy{}, fmt.Errorf("ledger: unknown sync policy %q (want none, interval[:N], or always)", s)
	}
}

// Manifest is the immutable setup of a durable run: the full session
// assignment (plan, model spec, run config including the snapshot policy,
// and the seed parameter snapshot — the Devices field is unused), the
// worker addresses, the training batches, and the worker-loss budget. It
// is everything a fresh process needs to rebuild the coordinator's
// workbench and re-drive the run; Meta is an opaque slot for the caller
// (e.g. CLI options for provenance).
type Manifest struct {
	Assign      wire.Assign
	Addrs       []string
	Batches     []dataset.Batch
	MaxRestarts int
	Meta        string
}

// Type identifies a record's kind in the log.
type Type uint8

const (
	// TypeDevSnapshot is one device's post-step recovery state (student
	// parameters + optimizer velocities), emitted under the per-member
	// snapshot policy.
	TypeDevSnapshot Type = iota + 1
	// TypeGroupSnapshot is a committed group-level snapshot under rank-0
	// dedup: one parameter set standing in for every member of the group.
	TypeGroupSnapshot
	// TypeInput is an input payload delivered to (and retained for) a set
	// of devices — the data batch for group 0, the assembled relay
	// activation otherwise.
	TypeInput
	// TypeOutput is one split-group member's boundary-activation shard as
	// received by the hub. Persisting shards individually is what keeps a
	// half-assembled gather recoverable: a member that snapshotted past
	// the step will never re-send its shard, so the restarted hub must
	// already hold it.
	TypeOutput
	// TypeReduction is a completed intra-group gradient reduction.
	TypeReduction
	// TypeLosses is one device's per-block loss row for one step.
	TypeLosses
	// TypeBarrier marks a released no-DPU step barrier.
	TypeBarrier
	// TypeCheckpoint is a consolidated prefix of the log written by
	// Compact: its payload nests the records that still matter for resume
	// (latest snapshots, still-replayable inputs/outputs/reductions, the
	// complete loss trajectory, the high-water marks) so everything before
	// it can be dropped.
	TypeCheckpoint
	// TypeMarks records the coordinator's input high-water marks
	// (groupInThrough per plan group; the feed cursor is group 0's entry).
	// It only appears inside checkpoints: dropping already-replayed input
	// records would otherwise regress the marks on resume and make the
	// coordinator re-feed batches the devices already consumed.
	TypeMarks
	// TypeRepartition marks a planned runtime placement change: the run
	// was cut after Step and continued on the plan encoded in Payload
	// (wire.EncodePlan). Records before it describe state under the
	// manifest's (or the previous repartition's) plan; records after it
	// describe state under the new plan, so resume replays the log in
	// plan generations.
	TypeRepartition
	typeEnd // sentinel: all valid types are below this
)

var typeNames = map[Type]string{
	TypeDevSnapshot: "dev-snapshot", TypeGroupSnapshot: "group-snapshot",
	TypeInput: "input", TypeOutput: "output", TypeReduction: "reduction",
	TypeLosses: "losses", TypeBarrier: "barrier",
	TypeCheckpoint: "checkpoint", TypeMarks: "marks",
	TypeRepartition: "repartition",
}

func (t Type) String() string {
	if s, ok := typeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("type(%d)", uint8(t))
}

// Record is one logged mutation of the coordinator's recovery state. The
// populated fields depend on Type; the rest are zero.
type Record struct {
	Type  Type
	Dev   int   // TypeDevSnapshot, TypeOutput, TypeLosses
	Group int   // TypeGroupSnapshot, TypeReduction
	Step  int   // every type
	Devs  []int // TypeInput: receiving device ranks

	Params   []*tensor.Tensor // snapshots: student parameters
	Velocity []*tensor.Tensor // snapshots: optimizer velocities
	Payload  []byte           // TypeInput, TypeOutput, TypeReduction: encoded frame payload
	Losses   []float64        // TypeLosses
	Children []*Record        // TypeCheckpoint: the consolidated records
	Marks    []int            // TypeMarks: groupInThrough per plan group
}

// DevSnapshot builds a per-member snapshot record.
func DevSnapshot(dev, step int, params, velocity []*tensor.Tensor) *Record {
	return &Record{Type: TypeDevSnapshot, Dev: dev, Step: step, Params: params, Velocity: velocity}
}

// GroupSnapshot builds a committed group-level snapshot record.
func GroupSnapshot(group, step int, params, velocity []*tensor.Tensor) *Record {
	return &Record{Type: TypeGroupSnapshot, Group: group, Step: step, Params: params, Velocity: velocity}
}

// Input builds a retained-input record for a set of devices (one record
// per group delivery, not per device, so split groups do not multiply the
// logged payload k-fold).
func Input(devs []int, step int, payload []byte) *Record {
	return &Record{Type: TypeInput, Devs: devs, Step: step, Payload: payload}
}

// Output builds a received-shard record for a split-group member.
func Output(dev, step int, payload []byte) *Record {
	return &Record{Type: TypeOutput, Dev: dev, Step: step, Payload: payload}
}

// Reduction builds a completed-reduction record.
func Reduction(group, step int, payload []byte) *Record {
	return &Record{Type: TypeReduction, Group: group, Step: step, Payload: payload}
}

// Losses builds a loss-row record.
func Losses(dev, step int, vals []float64) *Record {
	return &Record{Type: TypeLosses, Dev: dev, Step: step, Losses: vals}
}

// Barrier builds a barrier-release record.
func Barrier(step int) *Record {
	return &Record{Type: TypeBarrier, Step: step}
}

// Repartition builds a planned-repartition record: the run was cut after
// step and continues on the plan encoded in payload (wire.EncodePlan).
func Repartition(step int, payload []byte) *Record {
	return &Record{Type: TypeRepartition, Step: step, Payload: payload}
}

func (rec *Record) encode() ([]byte, error) {
	w := wire.NewWriter()
	switch rec.Type {
	case TypeDevSnapshot:
		w.I32(int32(rec.Dev))
		w.I32(int32(rec.Step))
		w.Tensors(rec.Params)
		w.Tensors(rec.Velocity)
	case TypeGroupSnapshot:
		w.I32(int32(rec.Group))
		w.I32(int32(rec.Step))
		w.Tensors(rec.Params)
		w.Tensors(rec.Velocity)
	case TypeInput:
		w.I32s(rec.Devs)
		w.I32(int32(rec.Step))
		w.Blob(rec.Payload)
	case TypeOutput:
		w.I32(int32(rec.Dev))
		w.I32(int32(rec.Step))
		w.Blob(rec.Payload)
	case TypeReduction:
		w.I32(int32(rec.Group))
		w.I32(int32(rec.Step))
		w.Blob(rec.Payload)
	case TypeLosses:
		w.I32(int32(rec.Dev))
		w.I32(int32(rec.Step))
		w.F64s(rec.Losses)
	case TypeBarrier:
		w.I32(int32(rec.Step))
	case TypeCheckpoint:
		w.U32(uint32(len(rec.Children)))
		for _, c := range rec.Children {
			if c.Type == TypeCheckpoint {
				return nil, fmt.Errorf("ledger: checkpoint records cannot nest")
			}
			payload, err := c.encode()
			if err != nil {
				return nil, err
			}
			w.Blob(frameRecord(c.Type, payload))
		}
	case TypeMarks:
		w.I32s(rec.Marks)
	case TypeRepartition:
		w.I32(int32(rec.Step))
		w.Blob(rec.Payload)
	default:
		return nil, fmt.Errorf("ledger: cannot encode record %v", rec.Type)
	}
	if len(w.Bytes()) > wire.MaxPayload {
		return nil, fmt.Errorf("ledger: %v record payload %d exceeds limit %d", rec.Type, len(w.Bytes()), wire.MaxPayload)
	}
	return w.Bytes(), nil
}

func decodeRecord(t Type, payload []byte) (*Record, error) {
	r := wire.NewReader(payload)
	rec := &Record{Type: t}
	switch t {
	case TypeDevSnapshot:
		rec.Dev = int(r.I32())
		rec.Step = int(r.I32())
		rec.Params = r.Tensors()
		rec.Velocity = r.Tensors()
	case TypeGroupSnapshot:
		rec.Group = int(r.I32())
		rec.Step = int(r.I32())
		rec.Params = r.Tensors()
		rec.Velocity = r.Tensors()
	case TypeInput:
		rec.Devs = r.I32s()
		rec.Step = int(r.I32())
		rec.Payload = r.Blob()
	case TypeOutput:
		rec.Dev = int(r.I32())
		rec.Step = int(r.I32())
		rec.Payload = r.Blob()
	case TypeReduction:
		rec.Group = int(r.I32())
		rec.Step = int(r.I32())
		rec.Payload = r.Blob()
	case TypeLosses:
		rec.Dev = int(r.I32())
		rec.Step = int(r.I32())
		rec.Losses = r.F64s()
	case TypeBarrier:
		rec.Step = int(r.I32())
	case TypeCheckpoint:
		n := r.U32()
		for i := uint32(0); i < n && r.Err() == nil; i++ {
			blob := r.Blob()
			if r.Err() != nil {
				break
			}
			child, used := parseRecord(blob)
			if child == nil || used != len(blob) {
				return nil, fmt.Errorf("ledger: corrupt checkpoint child %d", i)
			}
			if child.Type == TypeCheckpoint {
				return nil, fmt.Errorf("ledger: checkpoint records cannot nest")
			}
			rec.Children = append(rec.Children, child)
		}
	case TypeMarks:
		rec.Marks = r.I32s()
	case TypeRepartition:
		rec.Step = int(r.I32())
		rec.Payload = r.Blob()
	default:
		return nil, fmt.Errorf("ledger: unknown record %v", t)
	}
	if err := r.Close(); err != nil {
		return nil, err
	}
	if t == TypeDevSnapshot || t == TypeGroupSnapshot {
		if len(rec.Params) != len(rec.Velocity) {
			return nil, fmt.Errorf("ledger: %v record has %d params but %d velocities", t, len(rec.Params), len(rec.Velocity))
		}
	}
	return rec, nil
}

// Replay is the result of reading a ledger's record log.
type Replay struct {
	// Records holds every complete record, in append order.
	Records []*Record
	// TornBytes counts the trailing bytes Open dropped because they did
	// not form a complete, checksummed record — the residue of a
	// coordinator killed mid-append. 0 for a cleanly written log.
	TornBytes int
}

// Ledger is an open durable-run store: the manifest is on disk and the
// record log is positioned for appending. Append is safe for concurrent
// use; the coordinator serializes appends under its session lock anyway
// so record order matches mutation order.
type Ledger struct {
	dir string

	mu       sync.Mutex
	f        *os.File
	recs     int64 // records appended through this handle
	bytes    int64 // framed bytes appended through this handle
	sync     SyncPolicy
	unsynced int64 // records written since the last fsync
}

// Dir returns the ledger's directory.
func (l *Ledger) Dir() string { return l.dir }

// SetSync installs the record-log durability tier for subsequent Appends.
// The default is SyncNone. Raising the tier mid-stream is safe: the next
// qualifying Append (or Close) also covers every record written before
// the change.
func (l *Ledger) SetSync(p SyncPolicy) error {
	if err := p.Validate(); err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.sync = p
	return nil
}

// Sync returns the ledger's current durability tier.
func (l *Ledger) Sync() SyncPolicy {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sync
}

// Create initializes dir as a fresh ledger: it writes the manifest via
// write-to-temp + atomic rename and creates an empty record log. A
// directory that already holds a manifest is rejected — resuming an
// existing run must go through Open, and two runs must never interleave
// records in one log.
func Create(dir string, m *Manifest) (*Ledger, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ledger: %w", err)
	}
	// Take the flock on the record log before touching the manifest:
	// of two racing Creates (or a Create racing a live Open) the loser
	// must fail here, before it can rename its manifest over the
	// winner's or truncate the winner's live log.
	f, err := os.OpenFile(filepath.Join(dir, LogName), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("ledger: %w", err)
	}
	if err := lockFile(f, dir); err != nil {
		f.Close()
		return nil, err
	}
	manifestPath := filepath.Join(dir, ManifestName)
	if _, err := os.Stat(manifestPath); err == nil {
		f.Close()
		return nil, fmt.Errorf("ledger: %s already holds a run manifest (resume it instead of starting a new run)", dir)
	}
	blob, err := encodeManifest(m)
	if err != nil {
		f.Close()
		return nil, err
	}
	tmp := manifestPath + ".tmp"
	if err := writeFileSynced(tmp, blob); err != nil {
		f.Close()
		return nil, fmt.Errorf("ledger: %w", err)
	}
	if err := os.Rename(tmp, manifestPath); err != nil {
		f.Close()
		return nil, fmt.Errorf("ledger: %w", err)
	}
	// Make the rename itself durable. The manifest is written exactly once
	// per run, so this pair of syncs is a fixed cost, not an append-path
	// one — without it a power cut could leave a directory whose log has
	// synced records but whose manifest entry never reached the disk.
	syncDir(dir)
	if err := f.Truncate(0); err != nil {
		f.Close()
		return nil, fmt.Errorf("ledger: %w", err)
	}
	return &Ledger{dir: dir, f: f}, nil
}

// Open loads an existing ledger: it decodes and validates the manifest
// (corrupt or version-skewed manifests are errors), replays the record
// log up to the last complete record, truncates any torn tail so later
// appends extend a consistent log, and returns the ledger positioned for
// appending.
//
// Open takes a non-blocking advisory flock on the record log (released
// by Close, or by the kernel when the process dies): a second Open of
// the same directory while the first ledger is live fails fast, so two
// concurrent resumes can never interleave records from divergent
// states. Advisory locking — not an O_EXCL lock file — survives the
// very SIGKILL resume exists to handle without going stale. The lock is
// taken before the torn-tail truncation so a concurrent writer's live
// tail is never clipped.
func Open(dir string) (*Ledger, *Manifest, *Replay, error) {
	raw, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, nil, nil, fmt.Errorf("ledger: reading manifest: %w", err)
	}
	m, err := decodeManifest(raw)
	if err != nil {
		return nil, nil, nil, err
	}
	logPath := filepath.Join(dir, LogName)
	f, err := os.OpenFile(logPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("ledger: %w", err)
	}
	if err := lockFile(f, dir); err != nil {
		f.Close()
		return nil, nil, nil, err
	}
	logRaw, err := os.ReadFile(logPath)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		f.Close()
		return nil, nil, nil, fmt.Errorf("ledger: reading record log: %w", err)
	}
	replay, good := replayLog(logRaw)
	if replay.TornBytes > 0 {
		if err := os.Truncate(logPath, int64(good)); err != nil {
			f.Close()
			return nil, nil, nil, fmt.Errorf("ledger: truncating torn tail: %w", err)
		}
	}
	return &Ledger{dir: dir, f: f}, m, replay, nil
}

// writeFileSynced writes data to path and fsyncs it before closing, so
// the bytes are on stable storage before the caller renames the file
// into place.
func writeFileSynced(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// syncDir fsyncs a directory so a just-renamed entry survives power loss.
// Best-effort: some filesystems reject directory fsync, and the weaker
// pre-sync-policy durability (process death) never needed it.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}

// replayLog parses records until the first incomplete or corrupt one and
// returns them with the offset of the last complete record's end.
func replayLog(raw []byte) (*Replay, int) {
	rep := &Replay{}
	off := 0
	for {
		rec, n := parseRecord(raw[off:])
		if rec == nil {
			break
		}
		rep.Records = append(rep.Records, rec)
		off += n
	}
	rep.TornBytes = len(raw) - off
	return rep, off
}

// frameRecord wraps an encoded record payload in the log framing:
// magic, type, length, checksum.
func frameRecord(t Type, payload []byte) []byte {
	buf := make([]byte, recHeaderLen+len(payload))
	buf[0] = recMagic
	buf[1] = uint8(t)
	binary.LittleEndian.PutUint32(buf[2:6], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[6:10], crc32.ChecksumIEEE(payload))
	copy(buf[recHeaderLen:], payload)
	return buf
}

// parseRecord decodes one record from the head of raw, returning nil when
// raw does not start with a complete, checksummed, decodable record.
func parseRecord(raw []byte) (*Record, int) {
	if len(raw) < recHeaderLen || raw[0] != recMagic {
		return nil, 0
	}
	t := Type(raw[1])
	if t == 0 || t >= typeEnd {
		return nil, 0
	}
	n := binary.LittleEndian.Uint32(raw[2:6])
	if n > wire.MaxPayload || int(n) > len(raw)-recHeaderLen {
		return nil, 0
	}
	payload := raw[recHeaderLen : recHeaderLen+int(n)]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(raw[6:10]) {
		return nil, 0
	}
	rec, err := decodeRecord(t, payload)
	if err != nil {
		return nil, 0
	}
	return rec, recHeaderLen + int(n)
}

// Append writes one record to the log. The write reaches the operating
// system before Append returns, so a coordinator killed any time after
// has the record (process death does not lose page-cache contents). How
// far past the page cache the record travels is the SyncPolicy's call:
// under SyncAlways it is on stable storage when Append returns, under
// SyncInterval within Every records of it, and under SyncNone (the
// default) a power cut may still lose it — the torn-tail truncation in
// Open then recovers the longest consistent prefix either way, because
// fsync ordering guarantees no record is durable before its
// predecessors.
func (l *Ledger) Append(rec *Record) error {
	payload, err := rec.encode()
	if err != nil {
		return err
	}
	buf := frameRecord(rec.Type, payload)
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return fmt.Errorf("ledger: append after close")
	}
	if _, err := l.f.Write(buf); err != nil {
		return fmt.Errorf("ledger: appending %v record: %w", rec.Type, err)
	}
	l.recs++
	l.bytes += int64(len(buf))
	l.unsynced++
	switch l.sync.Mode {
	case SyncAlways:
		if err := l.syncLocked(); err != nil {
			return fmt.Errorf("ledger: syncing %v record: %w", rec.Type, err)
		}
	case SyncInterval:
		if l.unsynced >= int64(l.sync.Every) {
			if err := l.syncLocked(); err != nil {
				return fmt.Errorf("ledger: syncing %v record: %w", rec.Type, err)
			}
		}
	}
	return nil
}

// syncLocked flushes the record log to stable storage; callers hold l.mu.
func (l *Ledger) syncLocked() error {
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.unsynced = 0
	return nil
}

// Written reports how many records, and how many framed bytes, this
// handle has appended — not the on-disk size of a log it resumed.
func (l *Ledger) Written() (records int64, bytes int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.recs, l.bytes
}

// Close releases the record log, first flushing any unsynced records to
// stable storage when a synced tier is active. Appends after Close fail.
func (l *Ledger) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	var syncErr error
	if l.sync.Mode != SyncNone && l.unsynced > 0 {
		syncErr = l.syncLocked()
	}
	err := l.f.Close()
	l.f = nil
	if syncErr != nil {
		return syncErr
	}
	return err
}

// --- manifest codec ----------------------------------------------------------

// encodeManifest lays out: magic, version u32, payload length u32,
// payload crc32, payload.
func encodeManifest(m *Manifest) ([]byte, error) {
	w := wire.NewWriter()
	w.Blob(wire.EncodeAssign(&m.Assign).Payload)
	w.U32(uint32(len(m.Addrs)))
	for _, a := range m.Addrs {
		w.String(a)
	}
	w.I32(int32(m.MaxRestarts))
	w.U32(uint32(len(m.Batches)))
	for _, b := range m.Batches {
		w.Blob(wire.EncodeBatch(wire.NoDev, wire.NoStep, b).Payload)
	}
	w.String(m.Meta)
	payload := w.Bytes()
	if len(payload) > wire.MaxPayload {
		return nil, fmt.Errorf("ledger: manifest payload %d exceeds limit %d", len(payload), wire.MaxPayload)
	}
	hdr := make([]byte, 16)
	copy(hdr, manifestMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], Version)
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[12:16], crc32.ChecksumIEEE(payload))
	return append(hdr, payload...), nil
}

func decodeManifest(raw []byte) (*Manifest, error) {
	if len(raw) < 16 {
		return nil, fmt.Errorf("ledger: manifest truncated to %d bytes", len(raw))
	}
	if string(raw[:4]) != manifestMagic {
		return nil, fmt.Errorf("ledger: bad manifest magic %q (not a pipebd ledger)", raw[:4])
	}
	if v := binary.LittleEndian.Uint32(raw[4:8]); v != Version {
		return nil, fmt.Errorf("%w: manifest version %d, this ledger speaks %d", ErrVersion, v, Version)
	}
	n := binary.LittleEndian.Uint32(raw[8:12])
	if int64(n) != int64(len(raw)-16) {
		return nil, fmt.Errorf("ledger: manifest payload length %d, file holds %d", n, len(raw)-16)
	}
	payload := raw[16:]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(raw[12:16]) {
		return nil, fmt.Errorf("ledger: manifest checksum mismatch (corrupt manifest)")
	}
	r := wire.NewReader(payload)
	m := &Manifest{}
	assignBlob := r.Blob()
	if err := r.Err(); err != nil {
		return nil, err
	}
	assign, err := wire.DecodeAssign(&wire.Frame{Kind: wire.KindAssign, Payload: assignBlob})
	if err != nil {
		return nil, fmt.Errorf("ledger: manifest assignment: %w", err)
	}
	m.Assign = *assign
	nAddrs := r.U32()
	for i := uint32(0); i < nAddrs && r.Err() == nil; i++ {
		m.Addrs = append(m.Addrs, r.String())
	}
	m.MaxRestarts = int(r.I32())
	nBatches := r.U32()
	for i := uint32(0); i < nBatches && r.Err() == nil; i++ {
		blob := r.Blob()
		if r.Err() != nil {
			break
		}
		b, err := wire.DecodeBatch(&wire.Frame{Kind: wire.KindBatch, Payload: blob})
		if err != nil {
			return nil, fmt.Errorf("ledger: manifest batch %d: %w", i, err)
		}
		m.Batches = append(m.Batches, b)
	}
	m.Meta = r.String()
	if err := r.Close(); err != nil {
		return nil, err
	}
	return m, nil
}
