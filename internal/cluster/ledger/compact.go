package ledger

import (
	"fmt"
	"os"
	"path/filepath"

	"pipebd/internal/cluster/wire"
	"pipebd/internal/sched"
)

// Checkpoint builds a consolidated-prefix record.
func Checkpoint(step int, children []*Record) *Record {
	return &Record{Type: TypeCheckpoint, Step: step, Children: children}
}

// Marks builds an input high-water-marks record (groupInThrough per plan
// group).
func Marks(marks []int) *Record {
	return &Record{Type: TypeMarks, Marks: marks}
}

// horizonMode selects how compactGeneration picks the restore horizon —
// the oldest step whose snapshots a resume may still restart from.
type horizonMode int

const (
	// horizonPerDevice is the hub's surgical-replay horizon: the minimum
	// over devices of each device's newest snapshotted step. Each device
	// is restored to its own latest snapshot independently.
	horizonPerDevice horizonMode = iota
	// horizonGlobalAccounted is the global-restart horizon: the newest
	// step every group holds a snapshot for that is also fully accounted
	// (loss rows from every device and, without DPU, the barrier
	// release). Ring resumes — and the final generation of any
	// repartitioned log — restart every device from this common cut.
	horizonGlobalAccounted
	// horizonGlobalAtCut is a superseded generation's horizon: the newest
	// step at or below the recorded repartition cut that every group
	// holds a snapshot for. It mirrors the resume's carry computation
	// exactly — accounting does not apply, because the cut was already
	// validated by the live repartition that recorded it.
	horizonGlobalAtCut
)

// Compact rewrites a ledger's record log as one checkpoint record per
// plan generation holding only what a resume still needs, closing the
// "log grows unbounded with run length" debt. Within a generation it
// keeps:
//
//   - snapshot records at or past the generation's restore horizon (see
//     horizonMode: the hub keeps each device's latest, a global-restart
//     generation keeps the history its cut may need);
//   - input records still replayable by some receiving device (step past
//     that device's newest snapshot), plus a marks record so the dropped
//     ones cannot regress the coordinator's feed cursor;
//   - output shards and reductions past their group's restore horizon
//     (older ones can never be asked for again: a member restored from its
//     snapshot never re-sends work at or before the snapshotted step);
//   - every loss row — the final Result needs the complete trajectory, and
//     loss rows are tiny next to the tensor records compaction drops;
//   - the newest barrier release.
//
// A repartitioned log is compacted generation by generation: the log is
// split at its repartition records, each generation's records are
// filtered under that generation's plan (the manifest's, then each
// recorded re-plan in turn), and the output interleaves one checkpoint
// per generation with the original repartition records — so the resume's
// generation split sees exactly the structure it saw before compaction.
// Repartitioned logs always resume through the attempt driver, which
// restarts every device from a global cut rather than surgically
// replaying hub state, so every generation of a multi-generation log
// uses a global-cut horizon whatever the topology.
//
// Kept records preserve their original log order, so replaying a
// checkpoint is replaying a valid (sub)history. Compact is an offline
// operation: it must not run concurrently with a live coordinator on the
// same directory (the single-writer flock guards the old log inode during
// the rewrite, not the renamed-in replacement).
func Compact(dir string) error {
	led, man, rep, err := Open(dir)
	if err != nil {
		return err
	}
	defer led.Close()

	// Split the log at its repartition cuts. Earlier checkpoints are
	// flattened so Compact is idempotent; they never straddle a cut
	// (Compact itself writes one checkpoint per generation).
	type generation struct {
		recs   []*Record
		repart *Record // the terminating cut; nil for the last generation
	}
	gens := []generation{{}}
	for _, rec := range rep.Records {
		switch rec.Type {
		case TypeRepartition:
			gens[len(gens)-1].repart = rec
			gens = append(gens, generation{})
		case TypeCheckpoint:
			gens[len(gens)-1].recs = append(gens[len(gens)-1].recs, rec.Children...)
		default:
			gens[len(gens)-1].recs = append(gens[len(gens)-1].recs, rec)
		}
	}

	multi := len(gens) > 1
	plan := man.Assign.Plan
	var out []byte
	for _, gen := range gens {
		mode, cut := horizonPerDevice, -1
		switch {
		case gen.repart != nil:
			mode, cut = horizonGlobalAtCut, gen.repart.Step
		case multi || man.Assign.Run.Topology == "ring":
			mode = horizonGlobalAccounted
		}
		kept, horizon := compactGeneration(gen.recs, plan.Groups, man.Assign.Run.DPU, mode, cut)
		payload, err := Checkpoint(horizon, kept).encode()
		if err != nil {
			return err
		}
		out = append(out, frameRecord(TypeCheckpoint, payload)...)
		if gen.repart != nil {
			rp, err := gen.repart.encode()
			if err != nil {
				return err
			}
			out = append(out, frameRecord(TypeRepartition, rp)...)
			next, err := wire.DecodePlan(gen.repart.Payload)
			if err != nil {
				return fmt.Errorf("ledger: %s repartition record (cut after step %d): %w", dir, gen.repart.Step, err)
			}
			plan = next
		}
	}

	logPath := filepath.Join(dir, LogName)
	tmp := logPath + ".tmp"
	if err := os.WriteFile(tmp, out, 0o644); err != nil {
		return fmt.Errorf("ledger: writing compacted log: %w", err)
	}
	if err := os.Rename(tmp, logPath); err != nil {
		return fmt.Errorf("ledger: installing compacted log: %w", err)
	}
	return nil
}

// compactGeneration filters one generation's records under its plan,
// returning the kept records (original order, marks record last) and the
// generation's restore horizon.
func compactGeneration(recs []*Record, groups []sched.Group, dpu bool, mode horizonMode, cut int) ([]*Record, int) {
	groupOf := map[int]int{}
	finalSnap := map[int]int{}
	for gi, g := range groups {
		for _, d := range g.Devices {
			groupOf[d] = gi
			finalSnap[d] = -1
		}
	}

	// Pass 1: each device's newest snapshotted step, and the input marks.
	marks := make([]int, len(groups))
	for gi := range marks {
		marks[gi] = -1
	}
	for _, rec := range recs {
		switch rec.Type {
		case TypeDevSnapshot:
			if rec.Step > finalSnap[rec.Dev] {
				finalSnap[rec.Dev] = rec.Step
			}
		case TypeGroupSnapshot:
			for _, d := range groups[rec.Group].Devices {
				if rec.Step > finalSnap[d] {
					finalSnap[d] = rec.Step
				}
			}
		case TypeInput:
			if len(rec.Devs) > 0 {
				gi := groupOf[rec.Devs[0]]
				if rec.Step > marks[gi] {
					marks[gi] = rec.Step
				}
			}
		case TypeMarks:
			for gi, m := range rec.Marks {
				if gi < len(marks) && m > marks[gi] {
					marks[gi] = m
				}
			}
		}
	}
	horizon := -1 << 30
	for _, s := range finalSnap {
		if horizon == -1<<30 || s < horizon {
			horizon = s
		}
	}
	if horizon == -1<<30 {
		horizon = -1 // no devices: degenerate, keep everything
	}
	if mode != horizonPerDevice {
		// Global restore horizon: the restart rewinds every device to one
		// common cut, so the kept snapshots must include a step every
		// group holds. The per-device minimum above could keep the
		// groups' newest snapshots at *different* steps and drop their
		// last common one, leaving the resume nothing to restart from
		// short of the seed.
		groupSnaps := make([]map[int]bool, len(groups))
		for gi := range groupSnaps {
			groupSnaps[gi] = map[int]bool{}
		}
		lossHi := map[int]int{}
		for d := range groupOf {
			lossHi[d] = -1
		}
		barrierHi := -1
		for _, rec := range recs {
			switch rec.Type {
			case TypeDevSnapshot:
				groupSnaps[groupOf[rec.Dev]][rec.Step] = true
			case TypeGroupSnapshot:
				groupSnaps[rec.Group][rec.Step] = true
			case TypeLosses:
				if rec.Step > lossHi[rec.Dev] {
					lossHi[rec.Dev] = rec.Step
				}
			case TypeBarrier:
				if rec.Step > barrierHi {
					barrierHi = rec.Step
				}
			}
		}
		start := cut
		if mode == horizonGlobalAccounted {
			acct := 1 << 30
			for _, s := range lossHi {
				if s < acct {
					acct = s
				}
			}
			if acct == 1<<30 {
				acct = -1 // no devices
			}
			if !dpu && barrierHi < acct {
				acct = barrierHi
			}
			start = acct
		}
		horizon = -1 // no common step: keep everything, resume replays from the seed
		for s := start; s >= 0; s-- {
			all := true
			for _, snaps := range groupSnaps {
				if !snaps[s] {
					all = false
					break
				}
			}
			if all {
				horizon = s
				break
			}
		}
	}
	groupHorizon := func(gi int) int {
		h := -1 << 30
		for _, d := range groups[gi].Devices {
			if h == -1<<30 || finalSnap[d] < h {
				h = finalSnap[d]
			}
		}
		return h
	}

	// Pass 2: filter, preserving log order.
	var kept []*Record
	var lastBarrier *Record
	for _, rec := range recs {
		switch rec.Type {
		case TypeDevSnapshot, TypeGroupSnapshot:
			if rec.Step >= horizon {
				kept = append(kept, rec)
			}
		case TypeInput:
			replayable := false
			for _, d := range rec.Devs {
				if rec.Step > finalSnap[d] {
					replayable = true
					break
				}
			}
			if replayable {
				kept = append(kept, rec)
			}
		case TypeOutput:
			if rec.Step > groupHorizon(groupOf[rec.Dev]) {
				kept = append(kept, rec)
			}
		case TypeReduction:
			if rec.Step > groupHorizon(rec.Group) {
				kept = append(kept, rec)
			}
		case TypeLosses:
			kept = append(kept, rec)
		case TypeBarrier:
			if lastBarrier == nil || rec.Step > lastBarrier.Step {
				lastBarrier = rec
			}
		case TypeMarks:
			// folded into marks above
		}
	}
	if lastBarrier != nil {
		kept = append(kept, lastBarrier)
	}
	// The marks record goes last so it sets the final cursor values even if
	// a kept input record would land short of them.
	kept = append(kept, Marks(marks))
	return kept, horizon
}
