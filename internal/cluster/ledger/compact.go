package ledger

import (
	"fmt"
	"os"
	"path/filepath"
)

// Checkpoint builds a consolidated-prefix record.
func Checkpoint(step int, children []*Record) *Record {
	return &Record{Type: TypeCheckpoint, Step: step, Children: children}
}

// Marks builds an input high-water-marks record (groupInThrough per plan
// group).
func Marks(marks []int) *Record {
	return &Record{Type: TypeMarks, Marks: marks}
}

// Compact rewrites a ledger's record log as one checkpoint record holding
// only what a resume still needs, closing the "log grows unbounded with
// run length" debt:
//
//   - snapshot records at or past the restore horizon T (the minimum over
//     devices of each device's newest snapshotted step) — the hub keeps
//     each device's latest, the ring keeps the history its global restart
//     cut may need;
//   - input records still replayable by some receiving device (step past
//     that device's newest snapshot), plus a marks record so the dropped
//     ones cannot regress the coordinator's feed cursor;
//   - output shards and reductions past their group's restore horizon
//     (older ones can never be asked for again: a member restored from its
//     snapshot never re-sends work at or before the snapshotted step);
//   - every loss row — the final Result needs the complete trajectory, and
//     loss rows are tiny next to the tensor records compaction drops;
//   - the newest barrier release.
//
// Kept records preserve their original log order, so replaying the
// checkpoint is replaying a valid (sub)history. Compact is an offline
// operation: it must not run concurrently with a live coordinator on the
// same directory (the single-writer flock guards the old log inode during
// the rewrite, not the renamed-in replacement).
func Compact(dir string) error {
	led, man, rep, err := Open(dir)
	if err != nil {
		return err
	}
	defer led.Close()

	// Flatten earlier checkpoints so Compact is idempotent.
	var recs []*Record
	for _, rec := range rep.Records {
		if rec.Type == TypeRepartition {
			// The horizon computation below assumes one plan for the whole
			// log; a repartitioned log holds records under several plans
			// and must be replayed generation by generation. Refusing is
			// safe — the log stays resumable, just uncompacted.
			return fmt.Errorf("ledger: %s holds a repartition record (cut after step %d); repartitioned logs cannot be compacted", dir, rec.Step)
		}
		if rec.Type == TypeCheckpoint {
			recs = append(recs, rec.Children...)
		} else {
			recs = append(recs, rec)
		}
	}

	// Group membership from the manifest's plan.
	groups := man.Assign.Plan.Groups
	groupOf := map[int]int{}
	finalSnap := map[int]int{}
	for gi, g := range groups {
		for _, d := range g.Devices {
			groupOf[d] = gi
			finalSnap[d] = -1
		}
	}

	// Pass 1: each device's newest snapshotted step, and the input marks.
	marks := make([]int, len(groups))
	for gi := range marks {
		marks[gi] = -1
	}
	for _, rec := range recs {
		switch rec.Type {
		case TypeDevSnapshot:
			if rec.Step > finalSnap[rec.Dev] {
				finalSnap[rec.Dev] = rec.Step
			}
		case TypeGroupSnapshot:
			for _, d := range groups[rec.Group].Devices {
				if rec.Step > finalSnap[d] {
					finalSnap[d] = rec.Step
				}
			}
		case TypeInput:
			if len(rec.Devs) > 0 {
				gi := groupOf[rec.Devs[0]]
				if rec.Step > marks[gi] {
					marks[gi] = rec.Step
				}
			}
		case TypeMarks:
			for gi, m := range rec.Marks {
				if gi < len(marks) && m > marks[gi] {
					marks[gi] = m
				}
			}
		}
	}
	horizon := -1 << 30
	for _, s := range finalSnap {
		if horizon == -1<<30 || s < horizon {
			horizon = s
		}
	}
	if horizon == -1<<30 {
		horizon = -1 // no devices: degenerate, keep everything
	}
	if man.Assign.Run.Topology == "ring" {
		// Ring restore horizon: a ring resume restarts every device from
		// the global cut — the newest step every group holds a persisted
		// snapshot for that is also fully accounted (loss rows from every
		// device and, without DPU, the barrier release). The min final-
		// snapshot horizon above could keep the groups' newest snapshots
		// at *different* steps and drop their last common one, leaving
		// the resume nothing to restart from short of the seed.
		groupSnaps := make([]map[int]bool, len(groups))
		for gi := range groupSnaps {
			groupSnaps[gi] = map[int]bool{}
		}
		lossHi := map[int]int{}
		for d := range groupOf {
			lossHi[d] = -1
		}
		barrierHi := -1
		for _, rec := range recs {
			switch rec.Type {
			case TypeDevSnapshot:
				groupSnaps[groupOf[rec.Dev]][rec.Step] = true
			case TypeGroupSnapshot:
				groupSnaps[rec.Group][rec.Step] = true
			case TypeLosses:
				if rec.Step > lossHi[rec.Dev] {
					lossHi[rec.Dev] = rec.Step
				}
			case TypeBarrier:
				if rec.Step > barrierHi {
					barrierHi = rec.Step
				}
			}
		}
		acct := 1 << 30
		for _, s := range lossHi {
			if s < acct {
				acct = s
			}
		}
		if acct == 1<<30 {
			acct = -1 // no devices
		}
		if !man.Assign.Run.DPU && barrierHi < acct {
			acct = barrierHi
		}
		horizon = -1 // no common step: keep everything, resume replays from the seed
		for s := acct; s >= 0; s-- {
			all := true
			for _, snaps := range groupSnaps {
				if !snaps[s] {
					all = false
					break
				}
			}
			if all {
				horizon = s
				break
			}
		}
	}
	groupHorizon := func(gi int) int {
		h := -1 << 30
		for _, d := range groups[gi].Devices {
			if h == -1<<30 || finalSnap[d] < h {
				h = finalSnap[d]
			}
		}
		return h
	}

	// Pass 2: filter, preserving log order.
	var kept []*Record
	var lastBarrier *Record
	for _, rec := range recs {
		switch rec.Type {
		case TypeDevSnapshot, TypeGroupSnapshot:
			if rec.Step >= horizon {
				kept = append(kept, rec)
			}
		case TypeInput:
			replayable := false
			for _, d := range rec.Devs {
				if rec.Step > finalSnap[d] {
					replayable = true
					break
				}
			}
			if replayable {
				kept = append(kept, rec)
			}
		case TypeOutput:
			if rec.Step > groupHorizon(groupOf[rec.Dev]) {
				kept = append(kept, rec)
			}
		case TypeReduction:
			if rec.Step > groupHorizon(rec.Group) {
				kept = append(kept, rec)
			}
		case TypeLosses:
			kept = append(kept, rec)
		case TypeBarrier:
			if lastBarrier == nil || rec.Step > lastBarrier.Step {
				lastBarrier = rec
			}
		case TypeMarks:
			// folded into marks above
		}
	}
	if lastBarrier != nil {
		kept = append(kept, lastBarrier)
	}
	// The marks record goes last so it sets the final cursor values even if
	// a kept input record would land short of them.
	kept = append(kept, Marks(marks))

	payload, err := Checkpoint(horizon, kept).encode()
	if err != nil {
		return err
	}
	buf := frameRecord(TypeCheckpoint, payload)
	logPath := filepath.Join(dir, LogName)
	tmp := logPath + ".tmp"
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return fmt.Errorf("ledger: writing compacted log: %w", err)
	}
	if err := os.Rename(tmp, logPath); err != nil {
		return fmt.Errorf("ledger: installing compacted log: %w", err)
	}
	return nil
}
