//go:build unix

package ledger

import (
	"errors"
	"fmt"
	"os"
	"syscall"
)

// lockFile takes a non-blocking advisory flock on the open record log.
// Advisory locking (not O_EXCL lock files) is deliberate: the kernel
// drops an flock when the holder dies, so a coordinator killed by the
// very SIGKILL that resume exists to handle leaves nothing stale behind,
// while two live processes appending to one log — which would interleave
// records from divergent states — fail fast instead.
func lockFile(f *os.File, dir string) error {
	err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB)
	if err == nil {
		return nil
	}
	if errors.Is(err, syscall.EWOULDBLOCK) {
		return fmt.Errorf("ledger: %s is locked by another coordinator (concurrent resume?)", dir)
	}
	return fmt.Errorf("ledger: locking %s: %w", dir, err)
}
