//go:build !unix

package ledger

import "os"

// lockFile is a no-op on platforms without advisory flock; the caller
// must ensure single-writer discipline externally.
func lockFile(f *os.File, dir string) error { return nil }
