package cluster

import (
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"sync"
	"time"

	"pipebd/internal/cluster/transport"
	"pipebd/internal/cluster/wire"
	"pipebd/internal/distill"
	"pipebd/internal/engine"
	"pipebd/internal/nn"
	"pipebd/internal/obs"
	"pipebd/internal/tensor"
)

// WorkerConfig parameterizes a worker server.
type WorkerConfig struct {
	// Sessions bounds how many coordinator sessions to serve before
	// Serve returns; 0 serves until the listener closes.
	Sessions int
	// Rejoin keeps failed sessions from counting toward Sessions: a
	// worker whose session dies (coordinator crash, connection loss,
	// chaos kill) stays up to accept the replacement — the "re-joined
	// worker" half of the coordinator's recovery path. Without it every
	// accepted session counts, successful or not.
	Rejoin bool
	// Dial is the network used to dial sibling workers for the peer data
	// plane. Required for ring-topology sessions; hub sessions never dial
	// out. Tests meter or chaos-wrap it independently of the listener.
	Dial transport.Network
	// TraceDir, when set, enables span tracing for every session this
	// worker serves — independently of whether the coordinator asked for
	// spans — and dumps each completed session's spans as a Chrome trace
	// JSON file in this directory (one file per session, named by run
	// epoch and hosted devices).
	TraceDir string
	// Metrics, when non-nil, receives the worker's operational counters:
	// sessions started/completed, device steps, snapshot frames shipped,
	// and — when tracing is on — cumulative busy nanoseconds per span
	// category ("busy_<category>_ns").
	Metrics *obs.Metrics
	// Logf receives progress lines; nil is silent.
	Logf func(format string, args ...any)
	// PeerTimeout bounds how long an accepted peer connection waits for
	// the session hosting its target device to register; zero uses the
	// 5s default.
	PeerTimeout time.Duration
	// MeshTimeout bounds a ring session's whole mesh-establishment phase;
	// zero uses the 10s default.
	MeshTimeout time.Duration
	// Backend, when non-nil, overrides the compute backend for every
	// device this worker hosts, taking precedence over the backend the
	// Assign names. Used to model heterogeneous clusters — e.g. wrapping
	// the assigned backend in tensor.NewThrottled makes this worker a
	// bit-identical compute straggler the repartitioner can shed load
	// from.
	Backend tensor.Backend
}

// Worker hosts pipeline devices for a coordinator: it accepts a
// connection, receives an Assign (plan, model spec, run config, hosted
// device ranks, seed parameters) — or a Resume, which additionally
// restores per-device snapshots and replays from their step counters —
// rebuilds one workbench replica per hosted device, and drives each
// through engine.RunMember — the same device loop the in-process pipeline
// uses — over a transport-backed DeviceLink. After the last step it
// returns each group leader's trained student parameters and drains back
// to accepting the next session.
//
// Sessions are served concurrently: a surviving worker can host a dead
// sibling's re-placed devices in a second session while its own original
// session keeps running.
type Worker struct {
	lis transport.Listener
	cfg WorkerConfig

	// hosts routes accepted peer connections to the session hosting the
	// target device, keyed by run epoch so connections from a superseded
	// attempt can never reach a fresh mesh.
	hostMu sync.Mutex
	hosts  map[hostKey]*mesh

	// sessions routes redialed control connections (KindSessionResume) to
	// the live session's resumable link, keyed by the Assign's session id.
	sessMu   sync.Mutex
	sessions map[int64]*transport.Resumable
}

// hostKey identifies one hosted device within one run attempt.
type hostKey struct {
	epoch int64
	dev   int
}

// NewWorker wraps a bound listener in a worker server.
func NewWorker(lis transport.Listener, cfg WorkerConfig) *Worker {
	return &Worker{lis: lis, cfg: cfg, hosts: make(map[hostKey]*mesh),
		sessions: make(map[int64]*transport.Resumable)}
}

func (w *Worker) peerTimeout() time.Duration {
	if w.cfg.PeerTimeout > 0 {
		return w.cfg.PeerTimeout
	}
	return defaultPeerAcceptTimeout
}

func (w *Worker) meshTimeout() time.Duration {
	if w.cfg.MeshTimeout > 0 {
		return w.cfg.MeshTimeout
	}
	return defaultMeshTimeout
}

// Addr returns the listener's bound address.
func (w *Worker) Addr() string { return w.lis.Addr() }

// Close stops the listener; a blocked Serve returns after in-flight
// sessions finish.
func (w *Worker) Close() error { return w.lis.Close() }

// Serve accepts and runs coordinator sessions until the listener closes
// (returning nil) or the configured session count is reached — counting
// every session, or only successful ones when Rejoin is set. Sessions run
// concurrently; Serve waits for all in-flight sessions before returning.
// A failed session is logged and does not stop the server.
func (w *Worker) Serve() error {
	var wg sync.WaitGroup
	defer wg.Wait()
	var mu sync.Mutex
	counted := 0
	for {
		conn, err := w.lis.Accept()
		if err != nil {
			if errors.Is(err, transport.ErrClosed) || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		wg.Add(1)
		go func(conn transport.Conn) {
			defer wg.Done()
			isSession, err := w.serveConn(conn)
			if err != nil {
				w.logf("session failed: %v", err)
			}
			if !isSession {
				// A peer-mesh connection: ownership went to the hosting
				// session's mesh (or serveConn closed it on error), and it
				// never counts toward the session budget.
				return
			}
			conn.Close()
			if w.cfg.Sessions <= 0 {
				return
			}
			mu.Lock()
			if err == nil || !w.cfg.Rejoin {
				counted++
			}
			reached := counted >= w.cfg.Sessions
			mu.Unlock()
			if reached {
				// Session budget spent: stop accepting; Serve returns nil.
				w.lis.Close()
			}
		}(conn)
	}
}

func (w *Worker) logf(format string, args ...any) {
	if w.cfg.Logf != nil {
		w.cfg.Logf(format, args...)
	}
}

// hostedDevice is one pipeline device resident on this worker.
type hostedDevice struct {
	rank   int32
	member engine.Member
	link   *clusterLink
	ring   *ringLink // ring-topology wrapper; nil in hub sessions
	start  int       // first step to run (snapStep+1 on resume, else 0)
	blocks []int     // global block indices (for the final-params report)
}

// serveConn performs the shared accept handshake — a synchronous Hello,
// then the first frame — and dispatches on it: Assign/Resume open a
// coordinator session, PeerHello hands the raw connection to the session
// hosting the target device. It reports whether the connection was a
// session connection (which the caller closes and counts toward the
// session budget; peer connections are owned by their mesh).
func (w *Worker) serveConn(conn transport.Conn) (bool, error) {
	// The Hello is sent synchronously: if this turns out to be a peer
	// connection its outbox must be created by the owning session, and two
	// writers on one connection would race.
	if err := conn.Send(wire.Control(wire.KindHello, wire.NoDev, wire.NoStep)); err != nil {
		return true, fmt.Errorf("cluster: sending hello: %w", err)
	}
	first, err := conn.Recv()
	if err != nil {
		return true, fmt.Errorf("cluster: reading assign: %w", err)
	}
	switch first.Kind {
	case wire.KindPeerHello:
		err := w.acceptPeerConn(conn, first)
		if err != nil {
			conn.Close()
		}
		return false, err
	case wire.KindSessionResume:
		// A redialed control connection: ownership goes to the live
		// session's resumable link, which echoes the handshake and
		// replays the unacked tail.
		err := w.adoptSessionConn(conn, first)
		if err != nil {
			conn.Close()
		}
		return false, err
	}
	return true, w.serveSession(conn, first)
}

// adoptSessionConn re-attaches a redialed coordinator control connection
// to the session it resumes.
func (w *Worker) adoptSessionConn(conn transport.Conn, first *wire.Frame) error {
	sr, err := wire.DecodeSessionResume(first)
	if err != nil {
		return err
	}
	w.sessMu.Lock()
	res := w.sessions[sr.Session]
	w.sessMu.Unlock()
	if res == nil {
		return fmt.Errorf("cluster: resume for unknown session %d", sr.Session)
	}
	return res.Adopt(conn, sr.Recvd, func(recvd int64) *wire.Frame {
		return wire.EncodeSessionResume(wire.SessionResume{Session: sr.Session, Recvd: recvd})
	})
}

func (w *Worker) registerSession(id int64, res *transport.Resumable) {
	w.sessMu.Lock()
	w.sessions[id] = res
	w.sessMu.Unlock()
}

func (w *Worker) unregisterSession(id int64) {
	w.sessMu.Lock()
	delete(w.sessions, id)
	w.sessMu.Unlock()
}

// acceptPeerConn routes an inbound peer connection to the session hosting
// its target device, waiting briefly for that session to register — the
// sibling worker may have received its Assign first and dialed ahead.
func (w *Worker) acceptPeerConn(conn transport.Conn, first *wire.Frame) error {
	h, err := wire.DecodePeerHello(first)
	if err != nil {
		return err
	}
	m, err := w.awaitHost(h.Epoch, h.To)
	if err != nil {
		return fmt.Errorf("cluster: peer link %d->%d: %w", h.From, h.To, err)
	}
	if h.Resume {
		return m.adoptPeer(h, conn)
	}
	return m.acceptPeer(h, conn)
}

func (w *Worker) awaitHost(epoch int64, dev int) (*mesh, error) {
	deadline := time.Now().Add(w.peerTimeout())
	for {
		w.hostMu.Lock()
		m := w.hosts[hostKey{epoch, dev}]
		w.hostMu.Unlock()
		if m != nil {
			return m, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("no session hosts device %d under epoch %d", dev, epoch)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func (w *Worker) registerHosts(epoch int64, devices []*hostedDevice, m *mesh) {
	w.hostMu.Lock()
	for _, d := range devices {
		w.hosts[hostKey{epoch, int(d.rank)}] = m
	}
	w.hostMu.Unlock()
}

func (w *Worker) unregisterHosts(epoch int64, devices []*hostedDevice) {
	w.hostMu.Lock()
	for _, d := range devices {
		delete(w.hosts, hostKey{epoch, int(d.rank)})
	}
	w.hostMu.Unlock()
}

func (w *Worker) serveSession(conn transport.Conn, first *wire.Frame) (err error) {
	var assign *wire.Assign
	var states map[int]wire.DeviceState
	switch first.Kind {
	case wire.KindAssign:
		if assign, err = wire.DecodeAssign(first); err != nil {
			return err
		}
	case wire.KindResume:
		res, err := wire.DecodeResume(first)
		if err != nil {
			return err
		}
		assign = &res.Assign
		states = make(map[int]wire.DeviceState, len(res.States))
		for _, st := range res.States {
			states[st.Dev] = st
		}
	default:
		return fmt.Errorf("cluster: session opened with %v, want assign or resume", first.Kind)
	}

	// Transient-fault absorption: under a retry policy the control link
	// becomes resumable — the coordinator redials after a break, the
	// worker's accept path routes the KindSessionResume handshake back
	// here, and the unacked tail replays. Frame counting starts after the
	// Assign, identically on both sides.
	link := conn
	var res *transport.Resumable
	if assign.Run.Retry.Enabled() && assign.Session != 0 {
		res = transport.NewResumable(conn, retryPolicy(assign.Run.Retry), transport.ResumableOptions{
			Name: fmt.Sprintf("session %d control link", assign.Session),
			Logf: w.cfg.Logf,
			OnAbsorb: func(replayed int) {
				w.cfg.Metrics.Add("link_faults_absorbed", 1)
				w.cfg.Metrics.Add("link_frames_replayed", int64(replayed))
			},
		})
		link = res
		w.registerSession(assign.Session, res)
		defer w.unregisterSession(assign.Session)
		defer res.Close()
	}
	out := newOutbox(link)
	defer out.Close()
	// Liveness beacon, when the coordinator asked for one. It starts
	// before the replica rebuild: device construction (and resume-state
	// install) can take longer than the silence timeout, and a session
	// declared dead during its own setup would burn a restart for nothing.
	hbStop := make(chan struct{})
	defer close(hbStop)
	if assign.Run.HeartbeatMillis > 0 {
		interval := time.Duration(assign.Run.HeartbeatMillis) * time.Millisecond
		go func() {
			ticker := time.NewTicker(interval)
			defer ticker.Stop()
			for {
				select {
				case <-hbStop:
					return
				case <-ticker.C:
					out.Enqueue(wire.Control(wire.KindHeartbeat, wire.NoDev, wire.NoStep))
				}
			}
		}()
	}

	// Observability: the coordinator's Assign or the worker's own TraceDir
	// turns span recording on for this session. Spans drain at step
	// boundaries into the coordinator stream (Run.Trace) and into a
	// session-local collector (TraceDir), which is dumped as a Chrome
	// trace file once the session completes.
	var tracer *obs.Tracer
	var collect *obs.Collector
	var sink func(track string, spans []obs.Span)
	if assign.Run.Trace || w.cfg.TraceDir != "" {
		tracer = obs.NewTracer(true)
		if w.cfg.TraceDir != "" {
			collect = obs.NewCollector()
		}
		sink = func(track string, spans []obs.Span) {
			if collect != nil {
				collect.Add(track, spans)
			}
			for _, s := range spans {
				w.cfg.Metrics.Add("busy_"+obs.CategoryName(s.Cat)+"_ns", s.Dur)
			}
		}
	}
	w.cfg.Metrics.Add("sessions_started", 1)

	devices, err := w.buildDevices(assign, out, tracer, sink)
	if err != nil {
		return err
	}
	if states != nil {
		for _, d := range devices {
			st := states[int(d.rank)]
			if err := installDeviceState(d, st); err != nil {
				return err
			}
			d.start = st.Step + 1
		}
		w.logf("resuming %d device(s) of plan %q from per-device snapshots", len(devices), assign.Plan.Name)
	} else {
		w.logf("assigned %d device(s) of plan %q: %s", len(devices), assign.Plan.Name, assign.Plan.Describe())
	}

	// Ring topology: establish the peer mesh before any device loop runs,
	// and wrap each device's link so activations and gradient reductions
	// travel worker-to-worker.
	var m *mesh
	if assign.Run.Topology == "ring" {
		m, err = w.establishMesh(assign, devices)
		if err != nil {
			return err
		}
		defer w.unregisterHosts(assign.Epoch, devices)
		defer func() { m.close(err == nil) }()
		w.logf("peer mesh established for devices %v (epoch %d)", assign.Devices, assign.Epoch)
	}

	// Router: demux inbound frames to device inboxes until the
	// coordinator drains the session or the connection dies.
	drained := make(chan struct{})
	routerErr := make(chan error, 1)
	go func() {
		for {
			f, err := link.Recv()
			if err != nil {
				lost := fmt.Errorf("cluster: session connection lost: %w", err)
				for _, d := range devices {
					d.link.in.fail(lost)
				}
				if m != nil {
					// A device blocked on a peer frame must not outlive its
					// coordinator session.
					m.fail(lost)
				}
				routerErr <- err
				return
			}
			switch {
			case f.Kind == wire.KindDrain:
				if res != nil {
					// The coordinator is done with this session; its
					// imminent close is deliberate, not a fault to absorb.
					res.Retire()
				}
				close(drained)
				routerErr <- nil
				return
			case f.Kind == wire.KindRepartition:
				// Planned supersession: the coordinator is cutting this
				// placement at a committed step boundary and will re-place
				// everything under a rebalanced plan. The session ends like a
				// failure (device loops unwind, nothing more is sent) but the
				// cause is deliberate; with Rejoin set the worker stays up to
				// accept its slice of the new placement.
				superseded := fmt.Errorf("cluster: session superseded by repartition (cut after step %d)", f.Step)
				for _, d := range devices {
					d.link.in.fail(superseded)
				}
				if m != nil {
					m.fail(superseded)
				}
				routerErr <- superseded
				return
			case f.Dev == wire.NoDev:
				// Broadcast: every hosted device gets it.
				for _, d := range devices {
					d.link.in.put(f)
				}
			default:
				d := findDevice(devices, f.Dev)
				if d == nil {
					for _, dd := range devices {
						dd.link.in.fail(fmt.Errorf("cluster: frame %v for device %d not hosted here", f.Kind, f.Dev))
					}
					routerErr <- fmt.Errorf("cluster: frame for unhosted device %d", f.Dev)
					return
				}
				d.link.in.put(f)
			}
		}
	}()

	// Run every hosted device loop. A device that fails (transport loss
	// or a panic on a decodable-but-invalid frame) poisons only this
	// session: siblings are woken with the error and the caller closes
	// the connection, so the coordinator observes the failure too.
	var wg sync.WaitGroup
	errs := make([]error, len(devices))
	for i, d := range devices {
		wg.Add(1)
		go func(i int, d *hostedDevice) {
			defer wg.Done()
			errs[i] = runDevice(d, assign.Run.Steps, out)
			if errs[i] != nil {
				for _, dd := range devices {
					dd.link.in.fail(errs[i])
				}
				if m != nil {
					// Wake siblings blocked on peer frames too.
					m.fail(errs[i])
				}
			}
		}(i, d)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	if err := out.Err(); err != nil {
		return err
	}
	// Wait for the coordinator to confirm it consumed everything.
	if err := <-routerErr; err != nil {
		return err
	}
	<-drained
	for _, d := range devices {
		w.cfg.Metrics.Add("device_steps", int64(assign.Run.Steps-d.start))
	}
	w.cfg.Metrics.Add("sessions_completed", 1)
	if collect != nil {
		path := filepath.Join(w.cfg.TraceDir,
			fmt.Sprintf("trace-epoch%d-dev%d.json", assign.Epoch, devices[0].rank))
		if err := obs.WriteChromeTraceFile(path, collect); err != nil {
			w.logf("trace dump failed: %v", err)
		} else {
			w.logf("session trace (%s) written to %s", collect, path)
		}
	}
	w.logf("session complete (%d steps)", assign.Run.Steps)
	return nil
}

// runDevice drives one hosted device's training loop (from its start
// step, nonzero when resuming) and, for group leaders, reports the
// trained student weights; replicas are bit-identical, so one copy
// suffices. All panics are contained to an error.
func runDevice(d *hostedDevice, steps int, out *outbox) (err error) {
	defer recoverSession(&err)
	var link engine.DeviceLink = d.link
	if d.ring != nil {
		link = d.ring
	}
	engine.RunMemberFrom(d.member, d.start, steps, link)
	// Spans drain at every FinishStep; this catches a zero-step session's
	// (or a future post-loop instrumentation's) leftovers.
	d.link.flushSpans()
	if d.member.Rank == 0 {
		var params []*tensor.Tensor
		for _, pair := range d.member.Pairs {
			for _, p := range pair.Student.Params() {
				params = append(params, p.Value)
			}
		}
		out.Enqueue(wire.EncodeTensors(wire.KindFinalParams, d.rank, wire.NoStep, params))
	}
	out.Enqueue(wire.Control(wire.KindDone, d.rank, wire.NoStep))
	return nil
}

// buildDevices rebuilds a workbench replica for every hosted device rank
// and wires up its member state and transport link. A non-nil tracer
// attaches one span track per hosted device ("dev<rank>", matching the
// in-process engine's naming); sink receives the drained batches on the
// worker side.
func (w *Worker) buildDevices(assign *wire.Assign, out *outbox, tracer *obs.Tracer, sink func(string, []obs.Span)) ([]*hostedDevice, error) {
	nDev := 0
	for _, g := range assign.Plan.Groups {
		nDev += g.Split()
	}
	if err := assign.Plan.Validate(nDev, len(assign.Snapshot.Student)); err != nil {
		return nil, err
	}
	// Reject malformed session policies up front (e.g. a skewed or buggy
	// coordinator asking for dedup with snapshots disabled) instead of
	// silently hosting a session whose recovery contract cannot hold.
	if err := assign.Run.Snap.Validate(); err != nil {
		return nil, fmt.Errorf("cluster: assign snapshot policy: %w", err)
	}
	var backend tensor.Backend
	if assign.Run.Backend != "" {
		be, ok := tensor.Lookup(assign.Run.Backend)
		if !ok {
			return nil, fmt.Errorf("cluster: assign names unknown backend %q", assign.Run.Backend)
		}
		backend = be
	}
	if w.cfg.Backend != nil {
		backend = w.cfg.Backend
	}
	devices := make([]*hostedDevice, 0, len(assign.Devices))
	for _, rank := range assign.Devices {
		gi := assign.Plan.GroupOf(rank)
		if gi < 0 {
			return nil, fmt.Errorf("cluster: hosted device %d is not in plan %q", rank, assign.Plan.Name)
		}
		group := assign.Plan.Groups[gi]
		j := -1
		for idx, d := range group.Devices {
			if d == rank {
				j = idx
			}
		}
		// Each member trains a private, bit-identical replica: rebuild
		// from the deterministic spec, then overwrite the parameters with
		// the coordinator's snapshot.
		wb, err := BuildWorkbench(assign.Spec)
		if err != nil {
			return nil, err
		}
		if err := InstallSnapshot(wb, assign.Snapshot); err != nil {
			return nil, err
		}
		if backend != nil {
			wb.SetBackend(backend)
		}
		pairs := make([]distill.Pair, len(group.Blocks))
		opts := make([]*nn.SGD, len(group.Blocks))
		for bi, b := range group.Blocks {
			pairs[bi] = wb.Pairs[b]
			opts[bi] = nn.NewSGD(assign.Run.LR, assign.Run.Momentum, 0)
		}
		d := &hostedDevice{
			rank: int32(rank),
			member: engine.Member{Group: gi, Rank: j, GroupSize: group.Split(),
				Pairs: pairs, Opts: opts},
			link: &clusterLink{dev: int32(rank),
				lastGroup: gi == len(assign.Plan.Groups)-1,
				dpu:       assign.Run.DPU,
				in:        newInbox(), out: out},
			blocks: group.Blocks,
		}
		if tracer != nil {
			d.link.trace = tracer.NewTrack(fmt.Sprintf("dev%d", rank))
			d.link.shipSpans = assign.Run.Trace
			d.link.sink = sink
			d.member.Trace = d.link.trace
		}
		// Snapshot emission follows the session's policy: every member
		// under the per-member policy, only each group's rank 0 under
		// dedup (replicas are bit-identical after every step, so one copy
		// carries the whole group); the interval gating lives in the
		// link's FinishStep.
		if assign.Run.Snap.Enabled() && (!assign.Run.Snap.Rank0Dedup || j == 0) {
			d.link.snapshot = deviceSnapshotter(d)
			d.link.snap = assign.Run.Snap
		}
		devices = append(devices, d)
	}
	return devices, nil
}

// establishMesh wires a ring session's peer data plane: it registers the
// hosted devices so sibling dials can find them, dials every pair whose
// lower-ranked device lives elsewhere (higher rank dials lower — pairs on
// the same worker, or even the same session, dial through the network
// identically), waits for the inbound half, and wraps each hosted device
// in a ringLink over its endpoints.
func (w *Worker) establishMesh(assign *wire.Assign, devices []*hostedDevice) (*mesh, error) {
	if w.cfg.Dial == nil {
		return nil, fmt.Errorf("cluster: ring session needs a dial network (WorkerConfig.Dial)")
	}
	nDev := 0
	for _, g := range assign.Plan.Groups {
		nDev += g.Split()
	}
	if len(assign.Peers) != nDev {
		return nil, fmt.Errorf("cluster: ring assign names %d peer addresses for %d devices", len(assign.Peers), nDev)
	}
	plan := make([]groupInfo, len(assign.Plan.Groups))
	for gi, g := range assign.Plan.Groups {
		plan[gi] = groupInfo{devices: g.Devices}
	}
	m := newMesh(assign.Epoch, assign.Peers)
	if assign.Run.Retry.Enabled() {
		m.retry = assign.Run.Retry
		m.net = w.cfg.Dial
		m.logf = w.cfg.Logf
		m.onAbsorb = func(replayed int) {
			w.cfg.Metrics.Add("link_faults_absorbed", 1)
			w.cfg.Metrics.Add("link_frames_replayed", int64(replayed))
		}
		// A peer link whose reconnect budget is exhausted is reported to
		// the coordinator so it can degrade the edge to hub relay instead
		// of burning a restart. The session outbox is safe to use from the
		// reader goroutine: Enqueue never blocks.
		sessionOut := devices[0].link.out
		m.linkDown = func(local, remote int) {
			w.cfg.Metrics.Add("peer_links_down", 1)
			w.logf("peer link %d<->%d exhausted its reconnect budget; reporting for degrade", local, remote)
			sessionOut.Enqueue(wire.EncodeLinkDown(local, remote))
		}
	}
	// Degraded edges never dial: their traffic crosses the coordinator
	// hub relay instead.
	degraded := make(map[pairKey]bool)
	for _, e := range assign.DegradedEdges() {
		degraded[pairKey{e[0], e[1]}] = true
		degraded[pairKey{e[1], e[0]}] = true
	}
	type dialTask struct{ local, remote int }
	var dials []dialTask
	for _, d := range devices {
		local := int(d.rank)
		for _, remote := range peerRemotes(plan, local) {
			if degraded[pairKey{local, remote}] {
				continue
			}
			if local > remote {
				dials = append(dials, dialTask{local, remote})
			} else {
				m.expectAccept(local, remote)
			}
		}
	}
	// Register before dialing out: two sessions establishing their meshes
	// concurrently must each find the other's hosts already routable, or
	// the dial phases could mutually time out.
	w.registerHosts(assign.Epoch, devices, m)
	deadline := time.Now().Add(w.meshTimeout())
	for _, dl := range dials {
		if _, err := m.dialPeer(w.cfg.Dial, dl.local, dl.remote, deadline); err != nil {
			w.unregisterHosts(assign.Epoch, devices)
			m.close(false)
			return nil, err
		}
	}
	if err := m.waitAccepted(deadline); err != nil {
		w.unregisterHosts(assign.Epoch, devices)
		m.close(false)
		return nil, err
	}
	window := assign.Run.Buffer
	if window <= 0 {
		window = 2
	}
	g0Inputs, err := ringGroup0Inputs(assign, devices)
	if err != nil {
		w.unregisterHosts(assign.Epoch, devices)
		m.close(false)
		return nil, err
	}
	for _, d := range devices {
		local := int(d.rank)
		group, prev, next := peerSets(plan, local)
		peers := make(map[int]*peerEndpoint)
		var degSet map[int]bool
		for _, remote := range peerRemotes(plan, local) {
			if degraded[pairKey{local, remote}] {
				if degSet == nil {
					degSet = make(map[int]bool)
				}
				degSet[remote] = true
				continue
			}
			peers[remote] = m.endpoint(local, remote)
		}
		// Any degraded edge inside the group pulls every member's
		// all-reduce back to the coordinator fold — the group must agree
		// on the path, and members off the broken edge can't know their
		// siblings lost it.
		groupHub := false
		for i := 0; i < len(group) && !groupHub; i++ {
			for j := i + 1; j < len(group); j++ {
				if degraded[pairKey{group[i], group[j]}] {
					groupHub = true
					break
				}
			}
		}
		d.ring = &ringLink{clusterLink: d.link, gi: d.member.Group,
			rank: d.member.Rank, k: d.member.GroupSize,
			group: group, prev: prev, next: next,
			peers: peers, window: window,
			degraded: degSet, groupHub: groupHub}
		if d.member.Group == 0 {
			d.ring.inputs = g0Inputs
		}
	}
	return m, nil
}

// ringGroup0Inputs resolves the batch schedule a ring session's
// first-group members read from. With a Run.Data recipe the session
// regenerates the dataset locally — bit-identical by the recipe's
// determinism, and zero input bytes on any connection; otherwise it
// uses the schedule prestaged in the Assign. Nil when the session hosts
// no group-0 device. A session asked to run steps it has no batches for
// can only deadlock later, so short schedules are rejected here.
func ringGroup0Inputs(assign *wire.Assign, devices []*hostedDevice) ([]*tensor.Tensor, error) {
	hostsG0 := false
	for _, d := range devices {
		if d.member.Group == 0 {
			hostsG0 = true
		}
	}
	if !hostsG0 {
		return nil, nil
	}
	if ds := assign.Run.Data; ds.N > 0 {
		batches, err := ds.Batches()
		if err != nil {
			return nil, err
		}
		if len(batches) < assign.Run.Steps {
			return nil, fmt.Errorf("cluster: data recipe yields %d batches for %d steps", len(batches), assign.Run.Steps)
		}
		xs := make([]*tensor.Tensor, len(batches))
		for i, b := range batches {
			xs[i] = b.X
		}
		return xs, nil
	}
	if len(assign.Inputs) < assign.Run.Steps {
		return nil, fmt.Errorf("cluster: ring assign prestages %d inputs for %d steps", len(assign.Inputs), assign.Run.Steps)
	}
	return assign.Inputs, nil
}

// peerRemotes flattens peerSets into the remote device ranks one local
// device holds links to.
func peerRemotes(plan []groupInfo, dev int) []int {
	group, prev, next := peerSets(plan, dev)
	var out []int
	for _, r := range group {
		if r != dev {
			out = append(out, r)
		}
	}
	out = append(out, prev...)
	out = append(out, next...)
	return out
}

// deviceSnapshotter returns the closure that captures a device's
// post-step recovery state: every student parameter and its optimizer
// velocity (zeros when momentum has not touched a parameter yet), in the
// same flattened order the coordinator validates against.
func deviceSnapshotter(d *hostedDevice) func(step int) *wire.Frame {
	return func(step int) *wire.Frame {
		var params, vels []*tensor.Tensor
		for bi, pair := range d.member.Pairs {
			for _, p := range pair.Student.Params() {
				params = append(params, p.Value)
				v := d.member.Opts[bi].Velocity(p)
				if v == nil {
					v = tensor.New(p.Value.Shape()...)
				}
				vels = append(vels, v)
			}
		}
		// Encoding copies the data immediately, so sharing the live
		// tensors here is safe: the next step's mutations happen after
		// this frame's bytes are fixed.
		return wire.EncodeDeviceSnapshot(d.rank, int32(step), params, vels)
	}
}

// installDeviceState restores a resumed device to its snapshot: student
// parameters and optimizer velocities as they were right after the
// snapshot's step.
func installDeviceState(d *hostedDevice, st wire.DeviceState) error {
	var params []*nn.Param
	var opts []*nn.SGD
	for bi, pair := range d.member.Pairs {
		for _, p := range pair.Student.Params() {
			params = append(params, p)
			opts = append(opts, d.member.Opts[bi])
		}
	}
	if len(st.Params) != len(params) {
		return fmt.Errorf("cluster: resume state for device %d has %d params, replica has %d",
			d.rank, len(st.Params), len(params))
	}
	for i, p := range params {
		if !st.Params[i].SameShape(p.Value) || !st.Velocity[i].SameShape(p.Value) {
			return fmt.Errorf("cluster: resume state for device %d param %d shape %v/%v, want %v",
				d.rank, i, st.Params[i].Shape(), st.Velocity[i].Shape(), p.Value.Shape())
		}
		p.Value.CopyFrom(st.Params[i])
		// The decoded velocity tensor is private to this frame; the
		// optimizer takes ownership and mutates it in place from here on.
		opts[i].SetVelocity(p, st.Velocity[i])
	}
	return nil
}

func findDevice(devices []*hostedDevice, rank int32) *hostedDevice {
	for _, d := range devices {
		if d.rank == rank {
			return d
		}
	}
	return nil
}

var _ engine.DeviceLink = (*clusterLink)(nil)
var _ engine.StepFinisher = (*clusterLink)(nil)
