package cluster

import (
	"errors"
	"fmt"
	"net"
	"sync"

	"pipebd/internal/cluster/transport"
	"pipebd/internal/cluster/wire"
	"pipebd/internal/distill"
	"pipebd/internal/engine"
	"pipebd/internal/nn"
	"pipebd/internal/tensor"
)

// WorkerConfig parameterizes a worker server.
type WorkerConfig struct {
	// Sessions bounds how many coordinator sessions to serve before
	// Serve returns; 0 serves until the listener closes.
	Sessions int
	// Logf receives progress lines; nil is silent.
	Logf func(format string, args ...any)
}

// Worker hosts pipeline devices for a coordinator: it accepts a
// connection, receives an Assign (plan, model spec, run config, hosted
// device ranks, seed parameters), rebuilds one workbench replica per
// hosted device, and drives each through engine.RunMember — the same
// device loop the in-process pipeline uses — over a transport-backed
// DeviceLink. After the last step it returns each group leader's trained
// student parameters and drains back to accepting the next session.
type Worker struct {
	lis transport.Listener
	cfg WorkerConfig
}

// NewWorker wraps a bound listener in a worker server.
func NewWorker(lis transport.Listener, cfg WorkerConfig) *Worker {
	return &Worker{lis: lis, cfg: cfg}
}

// Addr returns the listener's bound address.
func (w *Worker) Addr() string { return w.lis.Addr() }

// Close stops the listener; a blocked Serve returns.
func (w *Worker) Close() error { return w.lis.Close() }

// Serve accepts and runs coordinator sessions until the listener closes
// (returning nil) or the configured session count is reached. A failed
// session is logged and does not stop the server.
func (w *Worker) Serve() error {
	for served := 0; w.cfg.Sessions == 0 || served < w.cfg.Sessions; served++ {
		conn, err := w.lis.Accept()
		if err != nil {
			if errors.Is(err, transport.ErrClosed) || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		if err := w.serveSession(conn); err != nil {
			w.logf("session failed: %v", err)
		}
		conn.Close()
	}
	return nil
}

func (w *Worker) logf(format string, args ...any) {
	if w.cfg.Logf != nil {
		w.cfg.Logf(format, args...)
	}
}

// hostedDevice is one pipeline device resident on this worker.
type hostedDevice struct {
	rank   int32
	member engine.Member
	link   *clusterLink
	blocks []int // global block indices (for the final-params report)
}

func (w *Worker) serveSession(conn transport.Conn) error {
	out := newOutbox(conn)
	defer out.Close()
	out.Enqueue(wire.Control(wire.KindHello, wire.NoDev, wire.NoStep))

	first, err := conn.Recv()
	if err != nil {
		return fmt.Errorf("cluster: reading assign: %w", err)
	}
	assign, err := wire.DecodeAssign(first)
	if err != nil {
		return err
	}
	devices, err := w.buildDevices(assign, out)
	if err != nil {
		return err
	}
	w.logf("assigned %d device(s) of plan %q: %s", len(devices), assign.Plan.Name, assign.Plan.Describe())

	// Router: demux inbound frames to device inboxes until the
	// coordinator drains the session or the connection dies.
	drained := make(chan struct{})
	routerErr := make(chan error, 1)
	go func() {
		for {
			f, err := conn.Recv()
			if err != nil {
				for _, d := range devices {
					d.link.in.fail(fmt.Errorf("cluster: session connection lost: %w", err))
				}
				routerErr <- err
				return
			}
			switch {
			case f.Kind == wire.KindDrain:
				close(drained)
				routerErr <- nil
				return
			case f.Dev == wire.NoDev:
				// Broadcast (step-go barriers): every hosted device gets it.
				for _, d := range devices {
					d.link.in.put(f)
				}
			default:
				d := findDevice(devices, f.Dev)
				if d == nil {
					for _, dd := range devices {
						dd.link.in.fail(fmt.Errorf("cluster: frame %v for device %d not hosted here", f.Kind, f.Dev))
					}
					routerErr <- fmt.Errorf("cluster: frame for unhosted device %d", f.Dev)
					return
				}
				d.link.in.put(f)
			}
		}
	}()

	// Run every hosted device loop. A device that fails (transport loss
	// or a panic on a decodable-but-invalid frame) poisons only this
	// session: siblings are woken with the error and the caller closes
	// the connection, so the coordinator observes the failure too.
	var wg sync.WaitGroup
	errs := make([]error, len(devices))
	for i, d := range devices {
		wg.Add(1)
		go func(i int, d *hostedDevice) {
			defer wg.Done()
			errs[i] = runDevice(d, assign.Run.Steps, out)
			if errs[i] != nil {
				for _, dd := range devices {
					dd.link.in.fail(errs[i])
				}
			}
		}(i, d)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	if err := out.Err(); err != nil {
		return err
	}
	// Wait for the coordinator to confirm it consumed everything.
	if err := <-routerErr; err != nil {
		return err
	}
	<-drained
	w.logf("session complete (%d steps)", assign.Run.Steps)
	return nil
}

// runDevice drives one hosted device's training loop and, for group
// leaders, reports the trained student weights; replicas are
// bit-identical, so one copy suffices. All panics are contained to an
// error.
func runDevice(d *hostedDevice, steps int, out *outbox) (err error) {
	defer recoverSession(&err)
	engine.RunMember(d.member, steps, d.link)
	if d.member.Rank == 0 {
		var params []*tensor.Tensor
		for _, pair := range d.member.Pairs {
			for _, p := range pair.Student.Params() {
				params = append(params, p.Value)
			}
		}
		out.Enqueue(wire.EncodeTensors(wire.KindFinalParams, d.rank, wire.NoStep, params))
	}
	out.Enqueue(wire.Control(wire.KindDone, d.rank, wire.NoStep))
	return nil
}

// buildDevices rebuilds a workbench replica for every hosted device rank
// and wires up its member state and transport link.
func (w *Worker) buildDevices(assign *wire.Assign, out *outbox) ([]*hostedDevice, error) {
	nDev := 0
	for _, g := range assign.Plan.Groups {
		nDev += g.Split()
	}
	if err := assign.Plan.Validate(nDev, len(assign.Snapshot.Student)); err != nil {
		return nil, err
	}
	var backend tensor.Backend
	if assign.Run.Backend != "" {
		be, ok := tensor.Lookup(assign.Run.Backend)
		if !ok {
			return nil, fmt.Errorf("cluster: assign names unknown backend %q", assign.Run.Backend)
		}
		backend = be
	}
	devices := make([]*hostedDevice, 0, len(assign.Devices))
	for _, rank := range assign.Devices {
		gi := assign.Plan.GroupOf(rank)
		if gi < 0 {
			return nil, fmt.Errorf("cluster: hosted device %d is not in plan %q", rank, assign.Plan.Name)
		}
		group := assign.Plan.Groups[gi]
		j := -1
		for idx, d := range group.Devices {
			if d == rank {
				j = idx
			}
		}
		// Each member trains a private, bit-identical replica: rebuild
		// from the deterministic spec, then overwrite the parameters with
		// the coordinator's snapshot.
		wb, err := BuildWorkbench(assign.Spec)
		if err != nil {
			return nil, err
		}
		if err := InstallSnapshot(wb, assign.Snapshot); err != nil {
			return nil, err
		}
		if backend != nil {
			wb.SetBackend(backend)
		}
		pairs := make([]distill.Pair, len(group.Blocks))
		opts := make([]*nn.SGD, len(group.Blocks))
		for bi, b := range group.Blocks {
			pairs[bi] = wb.Pairs[b]
			opts[bi] = nn.NewSGD(assign.Run.LR, assign.Run.Momentum, 0)
		}
		devices = append(devices, &hostedDevice{
			rank: int32(rank),
			member: engine.Member{Group: gi, Rank: j, GroupSize: group.Split(),
				Pairs: pairs, Opts: opts},
			link: &clusterLink{dev: int32(rank),
				lastGroup: gi == len(assign.Plan.Groups)-1,
				dpu:       assign.Run.DPU,
				in:        newInbox(), out: out},
			blocks: group.Blocks,
		})
	}
	return devices, nil
}

func findDevice(devices []*hostedDevice, rank int32) *hostedDevice {
	for _, d := range devices {
		if d.rank == rank {
			return d
		}
	}
	return nil
}

var _ engine.DeviceLink = (*clusterLink)(nil)
