package cluster

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"pipebd/internal/cluster/transport"
	"pipebd/internal/cluster/wire"
	"pipebd/internal/distill"
	"pipebd/internal/engine"
	"pipebd/internal/nn"
	"pipebd/internal/tensor"
)

// WorkerConfig parameterizes a worker server.
type WorkerConfig struct {
	// Sessions bounds how many coordinator sessions to serve before
	// Serve returns; 0 serves until the listener closes.
	Sessions int
	// Rejoin keeps failed sessions from counting toward Sessions: a
	// worker whose session dies (coordinator crash, connection loss,
	// chaos kill) stays up to accept the replacement — the "re-joined
	// worker" half of the coordinator's recovery path. Without it every
	// accepted session counts, successful or not.
	Rejoin bool
	// Logf receives progress lines; nil is silent.
	Logf func(format string, args ...any)
}

// Worker hosts pipeline devices for a coordinator: it accepts a
// connection, receives an Assign (plan, model spec, run config, hosted
// device ranks, seed parameters) — or a Resume, which additionally
// restores per-device snapshots and replays from their step counters —
// rebuilds one workbench replica per hosted device, and drives each
// through engine.RunMember — the same device loop the in-process pipeline
// uses — over a transport-backed DeviceLink. After the last step it
// returns each group leader's trained student parameters and drains back
// to accepting the next session.
//
// Sessions are served concurrently: a surviving worker can host a dead
// sibling's re-placed devices in a second session while its own original
// session keeps running.
type Worker struct {
	lis transport.Listener
	cfg WorkerConfig
}

// NewWorker wraps a bound listener in a worker server.
func NewWorker(lis transport.Listener, cfg WorkerConfig) *Worker {
	return &Worker{lis: lis, cfg: cfg}
}

// Addr returns the listener's bound address.
func (w *Worker) Addr() string { return w.lis.Addr() }

// Close stops the listener; a blocked Serve returns after in-flight
// sessions finish.
func (w *Worker) Close() error { return w.lis.Close() }

// Serve accepts and runs coordinator sessions until the listener closes
// (returning nil) or the configured session count is reached — counting
// every session, or only successful ones when Rejoin is set. Sessions run
// concurrently; Serve waits for all in-flight sessions before returning.
// A failed session is logged and does not stop the server.
func (w *Worker) Serve() error {
	var wg sync.WaitGroup
	defer wg.Wait()
	var mu sync.Mutex
	counted := 0
	for {
		conn, err := w.lis.Accept()
		if err != nil {
			if errors.Is(err, transport.ErrClosed) || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		wg.Add(1)
		go func(conn transport.Conn) {
			defer wg.Done()
			err := w.serveSession(conn)
			if err != nil {
				w.logf("session failed: %v", err)
			}
			conn.Close()
			if w.cfg.Sessions <= 0 {
				return
			}
			mu.Lock()
			if err == nil || !w.cfg.Rejoin {
				counted++
			}
			reached := counted >= w.cfg.Sessions
			mu.Unlock()
			if reached {
				// Session budget spent: stop accepting; Serve returns nil.
				w.lis.Close()
			}
		}(conn)
	}
}

func (w *Worker) logf(format string, args ...any) {
	if w.cfg.Logf != nil {
		w.cfg.Logf(format, args...)
	}
}

// hostedDevice is one pipeline device resident on this worker.
type hostedDevice struct {
	rank   int32
	member engine.Member
	link   *clusterLink
	start  int   // first step to run (snapStep+1 on resume, else 0)
	blocks []int // global block indices (for the final-params report)
}

func (w *Worker) serveSession(conn transport.Conn) error {
	out := newOutbox(conn)
	defer out.Close()
	out.Enqueue(wire.Control(wire.KindHello, wire.NoDev, wire.NoStep))

	first, err := conn.Recv()
	if err != nil {
		return fmt.Errorf("cluster: reading assign: %w", err)
	}
	var assign *wire.Assign
	var states map[int]wire.DeviceState
	switch first.Kind {
	case wire.KindAssign:
		if assign, err = wire.DecodeAssign(first); err != nil {
			return err
		}
	case wire.KindResume:
		res, err := wire.DecodeResume(first)
		if err != nil {
			return err
		}
		assign = &res.Assign
		states = make(map[int]wire.DeviceState, len(res.States))
		for _, st := range res.States {
			states[st.Dev] = st
		}
	default:
		return fmt.Errorf("cluster: session opened with %v, want assign or resume", first.Kind)
	}
	// Liveness beacon, when the coordinator asked for one. It starts
	// before the replica rebuild: device construction (and resume-state
	// install) can take longer than the silence timeout, and a session
	// declared dead during its own setup would burn a restart for nothing.
	hbStop := make(chan struct{})
	defer close(hbStop)
	if assign.Run.HeartbeatMillis > 0 {
		interval := time.Duration(assign.Run.HeartbeatMillis) * time.Millisecond
		go func() {
			ticker := time.NewTicker(interval)
			defer ticker.Stop()
			for {
				select {
				case <-hbStop:
					return
				case <-ticker.C:
					out.Enqueue(wire.Control(wire.KindHeartbeat, wire.NoDev, wire.NoStep))
				}
			}
		}()
	}

	devices, err := w.buildDevices(assign, out)
	if err != nil {
		return err
	}
	if states != nil {
		for _, d := range devices {
			st := states[int(d.rank)]
			if err := installDeviceState(d, st); err != nil {
				return err
			}
			d.start = st.Step + 1
		}
		w.logf("resuming %d device(s) of plan %q from per-device snapshots", len(devices), assign.Plan.Name)
	} else {
		w.logf("assigned %d device(s) of plan %q: %s", len(devices), assign.Plan.Name, assign.Plan.Describe())
	}

	// Router: demux inbound frames to device inboxes until the
	// coordinator drains the session or the connection dies.
	drained := make(chan struct{})
	routerErr := make(chan error, 1)
	go func() {
		for {
			f, err := conn.Recv()
			if err != nil {
				for _, d := range devices {
					d.link.in.fail(fmt.Errorf("cluster: session connection lost: %w", err))
				}
				routerErr <- err
				return
			}
			switch {
			case f.Kind == wire.KindDrain:
				close(drained)
				routerErr <- nil
				return
			case f.Dev == wire.NoDev:
				// Broadcast: every hosted device gets it.
				for _, d := range devices {
					d.link.in.put(f)
				}
			default:
				d := findDevice(devices, f.Dev)
				if d == nil {
					for _, dd := range devices {
						dd.link.in.fail(fmt.Errorf("cluster: frame %v for device %d not hosted here", f.Kind, f.Dev))
					}
					routerErr <- fmt.Errorf("cluster: frame for unhosted device %d", f.Dev)
					return
				}
				d.link.in.put(f)
			}
		}
	}()

	// Run every hosted device loop. A device that fails (transport loss
	// or a panic on a decodable-but-invalid frame) poisons only this
	// session: siblings are woken with the error and the caller closes
	// the connection, so the coordinator observes the failure too.
	var wg sync.WaitGroup
	errs := make([]error, len(devices))
	for i, d := range devices {
		wg.Add(1)
		go func(i int, d *hostedDevice) {
			defer wg.Done()
			errs[i] = runDevice(d, assign.Run.Steps, out)
			if errs[i] != nil {
				for _, dd := range devices {
					dd.link.in.fail(errs[i])
				}
			}
		}(i, d)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	if err := out.Err(); err != nil {
		return err
	}
	// Wait for the coordinator to confirm it consumed everything.
	if err := <-routerErr; err != nil {
		return err
	}
	<-drained
	w.logf("session complete (%d steps)", assign.Run.Steps)
	return nil
}

// runDevice drives one hosted device's training loop (from its start
// step, nonzero when resuming) and, for group leaders, reports the
// trained student weights; replicas are bit-identical, so one copy
// suffices. All panics are contained to an error.
func runDevice(d *hostedDevice, steps int, out *outbox) (err error) {
	defer recoverSession(&err)
	engine.RunMemberFrom(d.member, d.start, steps, d.link)
	if d.member.Rank == 0 {
		var params []*tensor.Tensor
		for _, pair := range d.member.Pairs {
			for _, p := range pair.Student.Params() {
				params = append(params, p.Value)
			}
		}
		out.Enqueue(wire.EncodeTensors(wire.KindFinalParams, d.rank, wire.NoStep, params))
	}
	out.Enqueue(wire.Control(wire.KindDone, d.rank, wire.NoStep))
	return nil
}

// buildDevices rebuilds a workbench replica for every hosted device rank
// and wires up its member state and transport link.
func (w *Worker) buildDevices(assign *wire.Assign, out *outbox) ([]*hostedDevice, error) {
	nDev := 0
	for _, g := range assign.Plan.Groups {
		nDev += g.Split()
	}
	if err := assign.Plan.Validate(nDev, len(assign.Snapshot.Student)); err != nil {
		return nil, err
	}
	// Reject malformed session policies up front (e.g. a skewed or buggy
	// coordinator asking for dedup with snapshots disabled) instead of
	// silently hosting a session whose recovery contract cannot hold.
	if err := assign.Run.Snap.Validate(); err != nil {
		return nil, fmt.Errorf("cluster: assign snapshot policy: %w", err)
	}
	var backend tensor.Backend
	if assign.Run.Backend != "" {
		be, ok := tensor.Lookup(assign.Run.Backend)
		if !ok {
			return nil, fmt.Errorf("cluster: assign names unknown backend %q", assign.Run.Backend)
		}
		backend = be
	}
	devices := make([]*hostedDevice, 0, len(assign.Devices))
	for _, rank := range assign.Devices {
		gi := assign.Plan.GroupOf(rank)
		if gi < 0 {
			return nil, fmt.Errorf("cluster: hosted device %d is not in plan %q", rank, assign.Plan.Name)
		}
		group := assign.Plan.Groups[gi]
		j := -1
		for idx, d := range group.Devices {
			if d == rank {
				j = idx
			}
		}
		// Each member trains a private, bit-identical replica: rebuild
		// from the deterministic spec, then overwrite the parameters with
		// the coordinator's snapshot.
		wb, err := BuildWorkbench(assign.Spec)
		if err != nil {
			return nil, err
		}
		if err := InstallSnapshot(wb, assign.Snapshot); err != nil {
			return nil, err
		}
		if backend != nil {
			wb.SetBackend(backend)
		}
		pairs := make([]distill.Pair, len(group.Blocks))
		opts := make([]*nn.SGD, len(group.Blocks))
		for bi, b := range group.Blocks {
			pairs[bi] = wb.Pairs[b]
			opts[bi] = nn.NewSGD(assign.Run.LR, assign.Run.Momentum, 0)
		}
		d := &hostedDevice{
			rank: int32(rank),
			member: engine.Member{Group: gi, Rank: j, GroupSize: group.Split(),
				Pairs: pairs, Opts: opts},
			link: &clusterLink{dev: int32(rank),
				lastGroup: gi == len(assign.Plan.Groups)-1,
				dpu:       assign.Run.DPU,
				in:        newInbox(), out: out},
			blocks: group.Blocks,
		}
		// Snapshot emission follows the session's policy: every member
		// under the per-member policy, only each group's rank 0 under
		// dedup (replicas are bit-identical after every step, so one copy
		// carries the whole group); the interval gating lives in the
		// link's FinishStep.
		if assign.Run.Snap.Enabled() && (!assign.Run.Snap.Rank0Dedup || j == 0) {
			d.link.snapshot = deviceSnapshotter(d)
			d.link.snap = assign.Run.Snap
		}
		devices = append(devices, d)
	}
	return devices, nil
}

// deviceSnapshotter returns the closure that captures a device's
// post-step recovery state: every student parameter and its optimizer
// velocity (zeros when momentum has not touched a parameter yet), in the
// same flattened order the coordinator validates against.
func deviceSnapshotter(d *hostedDevice) func(step int) *wire.Frame {
	return func(step int) *wire.Frame {
		var params, vels []*tensor.Tensor
		for bi, pair := range d.member.Pairs {
			for _, p := range pair.Student.Params() {
				params = append(params, p.Value)
				v := d.member.Opts[bi].Velocity(p)
				if v == nil {
					v = tensor.New(p.Value.Shape()...)
				}
				vels = append(vels, v)
			}
		}
		// Encoding copies the data immediately, so sharing the live
		// tensors here is safe: the next step's mutations happen after
		// this frame's bytes are fixed.
		return wire.EncodeDeviceSnapshot(d.rank, int32(step), params, vels)
	}
}

// installDeviceState restores a resumed device to its snapshot: student
// parameters and optimizer velocities as they were right after the
// snapshot's step.
func installDeviceState(d *hostedDevice, st wire.DeviceState) error {
	var params []*nn.Param
	var opts []*nn.SGD
	for bi, pair := range d.member.Pairs {
		for _, p := range pair.Student.Params() {
			params = append(params, p)
			opts = append(opts, d.member.Opts[bi])
		}
	}
	if len(st.Params) != len(params) {
		return fmt.Errorf("cluster: resume state for device %d has %d params, replica has %d",
			d.rank, len(st.Params), len(params))
	}
	for i, p := range params {
		if !st.Params[i].SameShape(p.Value) || !st.Velocity[i].SameShape(p.Value) {
			return fmt.Errorf("cluster: resume state for device %d param %d shape %v/%v, want %v",
				d.rank, i, st.Params[i].Shape(), st.Velocity[i].Shape(), p.Value.Shape())
		}
		p.Value.CopyFrom(st.Params[i])
		// The decoded velocity tensor is private to this frame; the
		// optimizer takes ownership and mutates it in place from here on.
		opts[i].SetVelocity(p, st.Velocity[i])
	}
	return nil
}

func findDevice(devices []*hostedDevice, rank int32) *hostedDevice {
	for _, d := range devices {
		if d.rank == rank {
			return d
		}
	}
	return nil
}

var _ engine.DeviceLink = (*clusterLink)(nil)
var _ engine.StepFinisher = (*clusterLink)(nil)
