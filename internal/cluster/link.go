package cluster

import (
	"errors"
	"fmt"
	"sync"

	"pipebd/internal/cluster/transport"
	"pipebd/internal/cluster/wire"
	"pipebd/internal/obs"
	"pipebd/internal/tensor"
)

// sessionError escapes a device loop through panic/recover: the
// engine.DeviceLink interface has no error returns (in-process links
// cannot fail), so a transport failure aborts the loop via a typed panic
// that the worker's device goroutine recovers and reports.
type sessionError struct{ err error }

func sessionFail(format string, args ...any) {
	panic(sessionError{fmt.Errorf(format, args...)})
}

// recoverSession turns any device-loop panic into *errp. sessionError
// carries a transport failure verbatim; anything else (e.g. a shape
// panic from the engine on a decodable-but-invalid frame) is wrapped, so
// one poisoned session can never crash a worker serving other
// coordinators.
func recoverSession(errp *error) {
	switch r := recover().(type) {
	case nil:
	case sessionError:
		if *errp == nil {
			*errp = r.err
		}
	default:
		if *errp == nil {
			*errp = fmt.Errorf("cluster: device loop panicked: %v", r)
		}
	}
}

// outbox decouples frame production from the connection: Enqueue never
// blocks (the queue is unbounded), a single writer goroutine drains it
// into the conn, and the first send error sticks. This is what makes the
// session layer deadlock-free — no protocol participant ever blocks on a
// peer's receive window while holding work the peer is waiting for.
type outbox struct {
	q    *transport.FrameQueue
	done chan struct{}
	mu   sync.Mutex
	err  error
}

func newOutbox(conn transport.Conn) *outbox {
	o := &outbox{q: transport.NewFrameQueue(), done: make(chan struct{})}
	go func() {
		defer close(o.done)
		for {
			f, err := o.q.Pop()
			if err != nil {
				return // closed and drained
			}
			if o.Err() != nil {
				continue // drain without sending after a failure
			}
			if err := conn.Send(f); err != nil {
				o.fail(err)
			}
		}
	}()
	return o
}

// Enqueue queues a frame for sending; it never blocks.
func (o *outbox) Enqueue(f *wire.Frame) {
	if err := o.q.Push(f); err != nil {
		o.fail(err)
	}
}

// Close flushes queued frames and stops the writer.
func (o *outbox) Close() {
	o.q.Close()
	<-o.done
}

// errOutboxKilled marks an outbox abandoned by Kill, not a real send
// failure.
var errOutboxKilled = errors.New("cluster: outbox killed")

// Kill poisons the outbox so the writer drains without sending: queued
// and future frames are discarded. Use on failure paths where the
// connection is already dead — flushing there could block forever on a
// peer that stopped reading.
func (o *outbox) Kill() {
	o.fail(errOutboxKilled)
}

func (o *outbox) fail(err error) {
	o.mu.Lock()
	if o.err == nil {
		o.err = err
	}
	o.mu.Unlock()
}

// Err returns the first send error, if any.
func (o *outbox) Err() error {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.err
}

// inbox is one device's view of the session's inbound frames, demuxed by
// kind. The worker's router goroutine fills it; the device loop pops the
// kind it is waiting for. fail wakes all waiters with an error.
type inbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	byKind map[wire.Kind][]*wire.Frame
	err    error
}

func newInbox() *inbox {
	b := &inbox{byKind: make(map[wire.Kind][]*wire.Frame)}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *inbox) put(f *wire.Frame) {
	b.mu.Lock()
	b.byKind[f.Kind] = append(b.byKind[f.Kind], f)
	b.cond.Broadcast()
	b.mu.Unlock()
}

func (b *inbox) fail(err error) {
	b.mu.Lock()
	if b.err == nil {
		b.err = err
	}
	b.cond.Broadcast()
	b.mu.Unlock()
}

// next blocks for the next frame of the given kind.
func (b *inbox) next(kind wire.Kind) (*wire.Frame, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for len(b.byKind[kind]) == 0 && b.err == nil {
		b.cond.Wait()
	}
	if q := b.byKind[kind]; len(q) > 0 {
		f := q[0]
		q[0] = nil
		b.byKind[kind] = q[1:]
		return f, nil
	}
	return nil, b.err
}

// clusterLink implements engine.DeviceLink over the worker's connection
// to the coordinator: inputs, reduced gradients, and barrier releases
// arrive through the device's inbox; outputs, raw gradients, losses, and
// barrier arrivals leave through the shared outbox. The coordinator does
// the routing (relay assembly, rank-ordered gradient reduction, barrier
// counting) — see coordinator.go for the matching hub logic.
type clusterLink struct {
	dev       int32
	lastGroup bool // the last group relays no output
	dpu       bool
	in        *inbox
	out       *outbox
	// snapshot, when set, encodes the device's post-step recovery state
	// (student params + optimizer velocities); FinishStep ships it to the
	// coordinator after every step the session's snapshot policy covers,
	// so a replacement device can replay from the latest covered step.
	snapshot func(step int) *wire.Frame
	snap     wire.SnapshotPolicy

	// trace, when non-nil, is the device's span track; FinishStep drains
	// it at each step boundary so span batches travel with (not instead
	// of) the session's regular traffic. shipSpans routes drained batches
	// to the coordinator over KindSpans frames; sink receives them on the
	// worker side (local trace dumps, worker metrics). Both may be active.
	trace     *obs.Track
	shipSpans bool
	sink      func(track string, spans []obs.Span)
}

// flushSpans drains the device's span buffer and routes the batch to the
// configured consumers. Called at step boundaries and once after the
// loop, on the device's own goroutine — Drain and Begin never race.
func (l *clusterLink) flushSpans() {
	if l.trace == nil {
		return
	}
	spans := l.trace.Drain()
	if len(spans) == 0 {
		return
	}
	if l.sink != nil {
		l.sink(l.trace.Name(), spans)
	}
	if l.shipSpans {
		ws := make([]wire.Span, len(spans))
		for i, s := range spans {
			ws[i] = wire.Span{Name: s.Name, Cat: int32(s.Cat), Start: s.Start, Dur: s.Dur}
		}
		l.out.Enqueue(wire.EncodeSpans(wire.SpanBatch{Dev: l.dev, Track: l.trace.Name(), Spans: ws}))
	}
}

func (l *clusterLink) recv(kind wire.Kind, step int) *wire.Frame {
	f, err := l.in.next(kind)
	if err != nil {
		sessionFail("cluster: dev %d waiting for %v frame of step %d: %w", l.dev, kind, step, err)
	}
	if int(f.Step) != step {
		sessionFail("cluster: dev %d got %v frame for step %d, want %d", l.dev, kind, f.Step, step)
	}
	return f
}

func (l *clusterLink) RecvInput(step int) *tensor.Tensor {
	f := l.recv(wire.KindInput, step)
	t, err := wire.DecodeTensor(f)
	if err != nil {
		sessionFail("cluster: dev %d decoding input of step %d: %w", l.dev, step, err)
	}
	return t
}

func (l *clusterLink) SendOutput(step int, out *tensor.Tensor) {
	if l.lastGroup {
		return
	}
	l.out.Enqueue(wire.EncodeTensor(wire.KindOutput, l.dev, int32(step), out))
}

func (l *clusterLink) AllReduce(step int, grads []*tensor.Tensor, scratch *tensor.Arena) {
	l.out.Enqueue(wire.EncodeTensors(wire.KindGrads, l.dev, int32(step), grads))
	f := l.recv(wire.KindGradsReduced, step)
	reduced, err := wire.DecodeTensors(f)
	if err != nil {
		sessionFail("cluster: dev %d decoding reduced gradients of step %d: %w", l.dev, step, err)
	}
	if len(reduced) != len(grads) {
		sessionFail("cluster: dev %d got %d reduced gradients, want %d", l.dev, len(reduced), len(grads))
	}
	for i, t := range reduced {
		if !t.SameShape(grads[i]) {
			sessionFail("cluster: dev %d reduced gradient %d shape %v, want %v", l.dev, i, t.Shape(), grads[i].Shape())
		}
		grads[i].CopyFrom(t)
	}
}

func (l *clusterLink) ReportLosses(step int, losses []float64) {
	l.out.Enqueue(wire.EncodeLosses(l.dev, int32(step), losses))
}

func (l *clusterLink) StepBarrier(step int) {
	if l.dpu {
		return
	}
	l.out.Enqueue(wire.Control(wire.KindStepDone, l.dev, int32(step)))
	l.recv(wire.KindStepGo, step)
}

// FinishStep implements engine.StepFinisher: once the step's updates are
// installed, the device's state is exactly "trained through step" — the
// snapshot the coordinator needs to re-place this device bit-identically.
// The policy's interval gates emission: with interval k only every k-th
// step ships, trading k-fold less snapshot traffic for up to k replayed
// steps on recovery.
func (l *clusterLink) FinishStep(step int) {
	if l.snapshot != nil && l.snap.Covers(step) {
		r := l.trace.Begin(obs.CatSnapshot, "snapshot_write")
		f := l.snapshot(step)
		r.End()
		l.out.Enqueue(f)
	}
	l.flushSpans()
}
