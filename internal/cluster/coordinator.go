package cluster

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pipebd/internal/cluster/ledger"
	"pipebd/internal/cluster/transport"
	"pipebd/internal/cluster/wire"
	"pipebd/internal/dataset"
	"pipebd/internal/distill"
	"pipebd/internal/engine"
	"pipebd/internal/obs"
	"pipebd/internal/sched"
	"pipebd/internal/sim"
	"pipebd/internal/tensor"
)

// SnapshotPolicy is the cluster-facing alias of the wire-level snapshot
// policy: interval-k snapshots plus rank-0 dedup for split groups.
type SnapshotPolicy = wire.SnapshotPolicy

// Config parameterizes a cluster run.
type Config struct {
	// Plan distributes blocks over devices exactly as in engine.Config.
	Plan sched.Plan
	// DPU enables decoupled parameter update; without it the coordinator
	// runs a global per-step barrier across all devices.
	DPU bool
	// LR and Momentum configure each block's SGD optimizer.
	LR, Momentum float32
	// Buffer is the pipeline depth: how many batches may be in flight
	// ahead of the slowest group-0 device; <= 0 means 2.
	Buffer int
	// Backend optionally names the tensor backend workers should use
	// (bit-identical by contract, so purely a throughput knob).
	Backend string
	// Topology selects the session's data plane: "hub" (or empty) routes
	// every activation and gradient through the coordinator; "ring" has
	// the workers dial each other and exchange activations and gradient
	// reductions peer-to-peer, demoting the coordinator to a control
	// plane (placement, barriers, losses, snapshots; inputs are prestaged
	// in the Assign or regenerated locally from Data). Both are
	// bit-identical to the in-process engine.
	Topology string
	// Data optionally hands ring workers a deterministic recipe for the
	// run's batch schedule (wire.DataSpec; N > 0 enables it). Sessions
	// hosting first-group devices then regenerate their inputs locally —
	// distributed data loading — and the Assign carries no batch tensors,
	// so the coordinator's connections see zero input bytes. The
	// coordinator validates at run start that the recipe reproduces the
	// batches passed to Run bit-exactly, keeping the bit-identity contract
	// checkable. Ignored for hub runs.
	Data wire.DataSpec
	// Spec names the model the workers rebuild. Its architecture must
	// match the workbench passed to Run.
	Spec wire.ModelSpec
	// JoinTimeout bounds how long the coordinator waits for each worker
	// to come up (and, during recovery, how long one re-placement attempt
	// may search for a live worker); <= 0 means 10 seconds.
	JoinTimeout time.Duration
	// MaxRestarts bounds how many dead-worker recoveries the run may
	// perform: each time a worker connection dies (error or heartbeat
	// timeout), the coordinator re-places its devices on a surviving or
	// re-joined worker and replays from the per-device snapshots. 0
	// disables worker-loss tolerance — a lost worker fails the run — and,
	// unless LedgerDir makes the run durable, also turns off the snapshot
	// traffic that recovery needs.
	MaxRestarts int
	// Snapshot tunes the recovery-snapshot traffic when fault tolerance
	// is on (MaxRestarts > 0 or LedgerDir set): Interval k makes devices
	// snapshot every k-th step (replay covers up to k steps instead of
	// one), and Rank0Dedup ships one member snapshot per split group
	// instead of k bit-identical copies. The zero policy means "every
	// step, every member" — exactly the pre-policy behavior. Configuring
	// a non-zero policy without fault tolerance is an error.
	Snapshot SnapshotPolicy
	// LedgerDir, when set, makes the run durable: the coordinator
	// persists its manifest and every piece of recovery state (snapshots,
	// retained inputs, output shards, reductions, loss rows, barrier
	// releases) to an on-disk ledger in this directory, so a killed
	// coordinator can be restarted with ResumeRun and finish the run
	// bit-identically. The directory must not already hold a run.
	LedgerDir string
	// LedgerMeta is an opaque note stored in the ledger manifest (e.g.
	// the CLI invocation), for provenance only.
	LedgerMeta string
	// Fsync selects the ledger's durability tier (how often appended
	// records reach stable storage): the zero policy keeps the pre-tier
	// behavior — OS-buffered writes surviving process death but not power
	// loss. Only meaningful with LedgerDir.
	Fsync ledger.SyncPolicy
	// Repartition enables the measurement-driven runtime repartitioner:
	// the coordinator aggregates the workers' span batches into measured
	// per-block step times and, when re-deriving the plan from them
	// predicts a bottleneck improvement past the threshold, cuts the run
	// at a snapshotted step boundary and restarts it on the rebalanced
	// placement (recovery machinery, weights bit-identical, wall-clock
	// only). Requires an all-unsplit plan; forces fault tolerance and
	// span shipping on.
	Repartition RepartitionConfig
	// HeartbeatInterval asks each worker to emit a liveness beacon this
	// often; HeartbeatTimeout declares a worker dead when nothing —
	// beacon or data — arrives within it. Zero disables silence
	// detection; connection errors still trigger recovery.
	HeartbeatInterval time.Duration
	HeartbeatTimeout  time.Duration
	// Retry enables transient-fault absorption on every session link:
	// a broken connection — control or peer — redials with exponential
	// backoff under BudgetMillis, re-handshakes against the peer's
	// high-water mark, and replays exactly the unacked frames, so a
	// link flap is invisible to the run (no restart consumed, results
	// bit-identical). A link still down when the budget exhausts is
	// reported instead of silently retried forever: a peer edge whose
	// workers are all still alive is degraded to hub relay (ring runs,
	// budget-free), anything else falls through to the existing
	// restart machinery. BudgetMillis > 0 enables it; ring runs with
	// retry force fault tolerance on (degrades restart from the global
	// cut). See wire.RetrySpec for the knobs.
	Retry wire.RetrySpec
	// Trace asks every worker session to record per-step span events and
	// ship them to the coordinator at step boundaries (wire.KindSpans).
	// Arriving batches are handed to TraceSink. Tracing never changes the
	// run's trajectory; a ring restart re-records replayed steps, so the
	// sink sees both attempts' spans in wall-clock order.
	Trace bool
	// TraceSink receives every span batch — the workers' device tracks
	// and the coordinator's own "coordinator" track (ledger appends). It
	// is called from reader goroutines and must be safe for concurrent
	// use (obs.Collector.Add qualifies). Required when Trace is set.
	TraceSink func(track string, spans []obs.Span)
	// Metrics, when non-nil, receives the coordinator's operational
	// counters: steps completed, snapshots installed, worker recoveries,
	// ledger records/bytes. Independent of Trace.
	Metrics *obs.Metrics
	// Logf receives progress lines; nil is silent.
	Logf func(format string, args ...any)
}

// Coordinator drives a cluster run: it joins the workers, maps the plan's
// devices onto them, broadcasts the model spec, seed parameters, and
// batches, and acts as the hub for the session's data flow — assembling
// teacher-relay activation shards and forwarding them downstream,
// performing the rank-ordered intra-group gradient reduction, counting
// the global no-DPU step barrier, accumulating per-block losses, and
// installing the trained weights it receives back.
//
// Every reduction the hub performs uses the exact floating-point
// evaluation order of the in-process engine (rank-ordered sums, merge via
// engine.MergeGroupLosses), so a cluster run's trajectory is bit-identical
// to engine.RunPipelined's.
//
// With MaxRestarts > 0 the hub is also the recovery authority: it retains
// each device's latest post-step snapshot (parameters + optimizer
// velocities), the inputs the device has not yet snapshotted past, and
// the completed gradient reductions its group may still need. When a
// worker dies, the hub re-places the lost devices on another worker via a
// Resume frame and replays the affected steps; because every replayed
// computation is a pure function of the restored state and the re-sent
// inputs, the run's losses and trained weights remain bit-identical to a
// fault-free run.
type Coordinator struct {
	net transport.Network
	cfg Config
}

// NewCoordinator returns a coordinator that dials workers over net.
func NewCoordinator(net transport.Network, cfg Config) *Coordinator {
	return &Coordinator{net: net, cfg: cfg}
}

// Run is shorthand for NewCoordinator(net, cfg).Run(w, batches, addrs).
func Run(net transport.Network, addrs []string, w *distill.Workbench, batches []dataset.Batch, cfg Config) (engine.Result, error) {
	return NewCoordinator(net, cfg).Run(w, batches, addrs)
}

// PlaceDevices maps nDev device ranks onto nWorkers workers
// contiguously, giving earlier workers one extra device when the split is
// uneven. Workers beyond nDev receive no devices.
func PlaceDevices(nDev, nWorkers int) [][]int {
	if nWorkers <= 0 {
		return nil
	}
	out := make([][]int, nWorkers)
	base, extra := nDev/nWorkers, nDev%nWorkers
	next := 0
	for i := range out {
		n := base
		if i < extra {
			n++
		}
		for d := 0; d < n; d++ {
			out[i] = append(out[i], next)
			next++
		}
	}
	return out
}

// sessionIDs hands out unique control-session ids; seeded once from the
// clock so ids from a restarted coordinator cannot collide with a
// previous process's sessions still registered on a worker.
var sessionIDs atomic.Int64

func nextSessionID() int64 {
	sessionIDs.CompareAndSwap(0, time.Now().UnixNano())
	return sessionIDs.Add(1)
}

// peerConn is the coordinator's handle on one joined worker session.
type peerConn struct {
	addr    string
	conn    transport.Conn
	res     *transport.Resumable // == conn under a retry policy; nil otherwise
	out     *outbox
	devices []int

	lastHeard atomic.Int64 // unix nanos of the last inbound frame
	hbLost    atomic.Bool  // set by the heartbeat monitor before it kills the conn
	dead      bool         // guarded by run.mu; set once when the peer is retired
}

func (p *peerConn) touch() { p.lastHeard.Store(time.Now().UnixNano()) }

// devPlace locates a device rank within the plan.
type devPlace struct {
	gi int // group index
	j  int // rank within the group
}

// devState is the coordinator's per-device ledger: where the device lives
// in the plan, the recovery state needed to re-place it, and the
// high-water marks that let the hub tell a replayed frame from a fresh
// one. Mutable fields are guarded by run.mu; place is immutable.
type devState struct {
	place devPlace

	// Recovery state (maintained only when fault tolerance is on).
	snapStep int              // last step covered by the snapshot; -1 = seed
	params   []*tensor.Tensor // student params after snapStep
	velocity []*tensor.Tensor // SGD momentum after snapStep
	inputs   map[int][]byte   // retained input payloads for steps > snapStep

	// Replay high-water marks. Frames from one device arrive in step
	// order on a single connection, so "step <= seen" identifies a replay
	// of work the hub already incorporated.
	outputSeen  int
	lossSeen    int
	barrierSeen int
	stepGoSent  int // highest StepGo actually delivered to the device
	done        bool
}

// pendingSnap is a rank-0 snapshot awaiting group-level commit: under
// Rank0Dedup the parameters are authoritative for every member, but the
// group's snapshot step may only advance once each member has accounted
// for the covered steps (losses, relayed output shards, barrier
// arrivals) — otherwise a member resumed from the committed step would
// skip replaying work the hub never incorporated, leaving loss rows or
// gathers permanently incomplete.
type pendingSnap struct {
	step     int
	params   []*tensor.Tensor
	velocity []*tensor.Tensor
}

// run is the mutable state of one cluster session.
type run struct {
	co       *Coordinator
	plan     sched.Plan
	nb       int
	steps    int
	nDev     int
	workb    *distill.Workbench
	batches  []dataset.Batch
	addrs    []string
	runCfg   wire.RunConfig
	ft       bool                // fault tolerance enabled (MaxRestarts > 0 or durable)
	policy   wire.SnapshotPolicy // effective snapshot policy (zero when !ft)
	seedSnap wire.Snapshot       // seed params, immutable; reused by every Resume
	ringMode bool                // peer-to-peer data plane (Config.Topology == "ring")
	epoch    int64               // ring attempt epoch, stamped into every Assign
	repart   *repartitioner      // drive-loop repartition controller; nil when disabled

	// tracer/coTrack instrument the coordinator's own control-plane work
	// (ledger appends) when Config.Trace is on; teardown drains the track
	// into Config.TraceSink. Per-attempt, like the rest of the run state.
	tracer  *obs.Tracer
	coTrack *obs.Track

	// Degraded peer edges (flattened pairs), installed by the ring driver
	// before join and carried into every Assign; degradedGroups marks the
	// groups with an internal degraded edge, whose gradient reductions
	// fall back to the hub fold. Immutable once readers start.
	degraded       []int
	degradedGroups map[int]bool

	mu             sync.Mutex
	linkDowns      [][2]int               // peer edges reported down this attempt
	led            *ledger.Ledger         // durable-run store; nil for in-memory-only runs
	ledShared      bool                   // ledger owned by the ring driver, not this run's teardown
	peerDir        []string               // ring: device rank → hosting worker address
	histG          []map[int]histEntry    // ring+ft: [gi] step → restart state (group-identical)
	peers          []*peerConn            // live worker sessions; dead ones are fully closed and dropped
	byDev          map[int]*peerConn      // device rank → live peer (absent while dead)
	devs           map[int]*devState      // device rank → ledger (map itself immutable)
	groupParams    [][]*tensor.Tensor     // [gi] workbench student params, flattened
	outputs        []map[int]*gather      // [gi] step → collected activation shards
	grads          []map[int]*gatherLists // [gi] step → collected gradient lists
	reduceCache    []map[int][]byte       // [gi] step → completed reduction payload
	pend           [][]pendingSnap        // [gi] uncommitted rank-0 snapshots (Rank0Dedup only)
	barrier        map[int]int            // step → devices arrived (no-DPU only)
	stepGoThrough  int                    // highest step whose barrier released
	losses         [][][]float64          // [gi][j*nb+bi][step]
	g0done         map[int]int            // step → group-0 members that completed it
	credits        chan struct{}
	fedThrough     int   // highest batch step delivered to group 0
	groupInThrough []int // [gi] highest input step ever delivered to the group
	done           int
	restarts       int
	closed         bool // teardown ran; no new peers may attach
	finished       chan struct{}

	failOnce sync.Once
	firstErr error
	failed   chan struct{}
}

type gather struct {
	parts []*tensor.Tensor
	have  int
}

type gatherLists struct {
	parts [][]*tensor.Tensor
	have  int
}

// Run executes the pipelined plan across the workers at addrs and
// returns the loss trajectory; w's student parameters are updated with
// the trained weights the group leaders send back. The run is
// bit-equivalent to engine.RunPipelined(w, batches, ...) with the same
// plan and hyperparameters — including runs that lose and recover
// workers, when cfg.MaxRestarts allows it.
func (c *Coordinator) Run(w *distill.Workbench, batches []dataset.Batch, addrs []string) (engine.Result, error) {
	if c.cfg.Topology == "ring" || c.cfg.Repartition.Enabled {
		// Ring runs and repartition-enabled runs (either topology) go
		// through the attempt driver: both may supersede a session and
		// restart every device from a global cut.
		return c.runDriven(w, batches, addrs)
	}
	r, err := c.newRun(w, batches, addrs)
	if err != nil {
		return engine.Result{}, err
	}
	if c.cfg.LedgerDir != "" {
		led, err := c.createLedger(r, batches, addrs)
		if err != nil {
			return engine.Result{}, err
		}
		r.led = led
	}
	defer r.teardown()
	if err := r.join(addrs); err != nil {
		return engine.Result{}, err
	}
	return c.execute(r)
}

// createLedger creates the run's durable store from its manifest state
// and applies the configured fsync durability tier.
func (c *Coordinator) createLedger(r *run, batches []dataset.Batch, addrs []string) (*ledger.Ledger, error) {
	led, err := ledger.Create(c.cfg.LedgerDir, &ledger.Manifest{
		Assign:      wire.Assign{Plan: r.plan, Spec: c.cfg.Spec, Run: r.runCfg, Snapshot: r.seedSnap},
		Addrs:       addrs,
		Batches:     batches,
		MaxRestarts: c.cfg.MaxRestarts,
		Meta:        c.cfg.LedgerMeta,
	})
	if err != nil {
		return nil, err
	}
	if err := led.SetSync(c.cfg.Fsync); err != nil {
		led.Close()
		return nil, err
	}
	return led, nil
}

// execute drives a prepared run (fresh or resumed) to completion: start
// the readers, feeder, and monitor, wait for every device's Done, then
// drain the sessions gracefully.
func (c *Coordinator) execute(r *run) (engine.Result, error) {
	r.start()
	select {
	case <-r.finished:
	case <-r.failed:
		return engine.Result{}, r.firstErr
	}
	// Graceful drain: every device reported Done, all frames consumed.
	r.mu.Lock()
	for _, p := range r.peers {
		p.out.Enqueue(wire.Control(wire.KindDrain, wire.NoDev, wire.NoStep))
	}
	r.mu.Unlock()
	return r.result(), nil
}

func (c *Coordinator) newRun(w *distill.Workbench, batches []dataset.Batch, addrs []string) (*run, error) {
	plan := c.cfg.Plan
	nDev := 0
	for _, g := range plan.Groups {
		nDev += g.Split()
	}
	if err := plan.Validate(nDev, w.NumBlocks()); err != nil {
		return nil, err
	}
	if len(batches) == 0 {
		return nil, fmt.Errorf("cluster: no batches")
	}
	if len(addrs) == 0 {
		return nil, fmt.Errorf("cluster: no worker addresses")
	}
	for _, g := range plan.Groups {
		if k := g.Split(); batches[0].X.Dim(0)%k != 0 {
			return nil, fmt.Errorf("cluster: batch %d not divisible by group size %d", batches[0].X.Dim(0), k)
		}
	}
	if c.cfg.Spec.Blocks != w.NumBlocks() {
		return nil, fmt.Errorf("cluster: spec has %d blocks, workbench has %d", c.cfg.Spec.Blocks, w.NumBlocks())
	}
	switch c.cfg.Topology {
	case "", "hub", "ring":
	default:
		return nil, fmt.Errorf("cluster: unknown topology %q (want \"hub\" or \"ring\")", c.cfg.Topology)
	}
	buffer := c.cfg.Buffer
	if buffer <= 0 {
		buffer = 2
	}
	if c.cfg.Repartition.Enabled {
		for gi, g := range plan.Groups {
			if g.Split() != 1 {
				return nil, fmt.Errorf("cluster: repartitioning needs an all-unsplit plan; %q group %d spans %d devices (split groups fold gradients, so moving their boundary would change the trajectory)",
					plan.Name, gi, g.Split())
			}
		}
	}
	// Repartitioning implies fault tolerance: the planned cut restores
	// from the same snapshot history recovery uses. So does retry on a
	// ring run: degrading a persistently severed peer edge to hub relay
	// restarts the attempt from the global cut, which needs the same
	// snapshot history (the degrade itself is budget-free).
	ft := c.cfg.MaxRestarts > 0 || c.cfg.LedgerDir != "" || c.cfg.Repartition.Enabled ||
		(c.cfg.Topology == "ring" && c.cfg.Retry.Enabled())
	policy, err := effectivePolicy(c.cfg.Snapshot, ft)
	if err != nil {
		return nil, err
	}
	r := &run{
		co: c, plan: plan, nb: w.NumBlocks(), steps: len(batches), nDev: nDev,
		byDev: make(map[int]*peerConn), devs: make(map[int]*devState),
		workb: w, batches: batches, addrs: addrs,
		ft:             ft,
		policy:         policy,
		ringMode:       c.cfg.Topology == "ring",
		outputs:        make([]map[int]*gather, len(plan.Groups)),
		grads:          make([]map[int]*gatherLists, len(plan.Groups)),
		reduceCache:    make([]map[int][]byte, len(plan.Groups)),
		pend:           make([][]pendingSnap, len(plan.Groups)),
		barrier:        make(map[int]int),
		stepGoThrough:  -1,
		losses:         make([][][]float64, len(plan.Groups)),
		g0done:         make(map[int]int),
		credits:        make(chan struct{}, len(batches)+buffer),
		fedThrough:     -1,
		groupInThrough: make([]int, len(plan.Groups)),
		finished:       make(chan struct{}),
		failed:         make(chan struct{}),
	}
	for gi := range r.groupInThrough {
		r.groupInThrough[gi] = -1
	}
	if (r.ringMode || c.cfg.Repartition.Enabled) && r.ft {
		// Global-cut restart state: always needed in ring mode, and by
		// hub runs that may repartition (a planned cut restarts every
		// device, not just a lost one).
		r.histG = make([]map[int]histEntry, len(plan.Groups))
		for gi := range r.histG {
			r.histG[gi] = make(map[int]histEntry)
		}
	}
	if c.cfg.Trace {
		if c.cfg.TraceSink == nil {
			return nil, fmt.Errorf("cluster: Config.Trace needs a TraceSink to deliver span batches to")
		}
		r.tracer = obs.NewTracer(true)
		r.coTrack = r.tracer.NewTrack("coordinator")
	}
	r.seedSnap = CaptureSnapshot(w)
	r.runCfg = wire.RunConfig{DPU: c.cfg.DPU, LR: c.cfg.LR, Momentum: c.cfg.Momentum,
		Buffer: c.cfg.Buffer, Steps: r.steps, Backend: c.cfg.Backend,
		Snap:            policy,
		HeartbeatMillis: int(c.cfg.HeartbeatInterval / time.Millisecond),
		Topology:        c.cfg.Topology,
		Retry:           c.cfg.Retry,
		// The repartitioner's measurements are the workers' span batches,
		// so a repartition-enabled run ships spans even when the caller
		// did not ask for a trace.
		Trace: c.cfg.Trace || c.cfg.Repartition.Enabled,
		Data:  c.cfg.Data}
	if r.ringMode && c.cfg.Data.N > 0 {
		if err := validateDataRecipe(c.cfg.Data, batches); err != nil {
			return nil, err
		}
	}
	r.groupParams = make([][]*tensor.Tensor, len(plan.Groups))
	for gi, g := range plan.Groups {
		r.outputs[gi] = make(map[int]*gather)
		r.grads[gi] = make(map[int]*gatherLists)
		r.reduceCache[gi] = make(map[int][]byte)
		r.losses[gi] = make([][]float64, len(g.Blocks)*g.Split())
		for i := range r.losses[gi] {
			r.losses[gi][i] = make([]float64, r.steps)
		}
		for _, b := range g.Blocks {
			for _, p := range w.Pairs[b].Student.Params() {
				r.groupParams[gi] = append(r.groupParams[gi], p.Value)
			}
		}
		for j, d := range g.Devices {
			ds := &devState{place: devPlace{gi: gi, j: j},
				snapStep: -1, outputSeen: -1, lossSeen: -1, barrierSeen: -1, stepGoSent: -1}
			if r.ft {
				// Seed recovery state: a device that dies before its first
				// snapshot resumes from the seed weights with zero momentum.
				// The tensors are shared read-only across devices of the
				// group — snapshots replace, never mutate, them.
				ds.params = r.seedGroupParams(gi)
				ds.velocity = zeroLike(ds.params)
				ds.inputs = make(map[int][]byte)
			}
			r.devs[d] = ds
		}
	}
	for i := 0; i < buffer; i++ {
		r.credits <- struct{}{}
	}
	return r, nil
}

// setDegraded installs the driver's accumulated degraded peer edges:
// flattened for the Assign, plus the set of groups whose internal edge
// is degraded (their reductions come back to the hub). Called before
// join, while the run is still single-threaded.
func (r *run) setDegraded(edges [][2]int) {
	if len(edges) == 0 {
		return
	}
	r.degraded = make([]int, 0, 2*len(edges))
	r.degradedGroups = make(map[int]bool)
	for _, e := range edges {
		r.degraded = append(r.degraded, e[0], e[1])
		if r.devs[e[0]].place.gi == r.devs[e[1]].place.gi {
			r.degradedGroups[r.devs[e[0]].place.gi] = true
		}
	}
}

// effectivePolicy resolves the configured snapshot policy against the
// run's fault-tolerance mode: the zero policy defaults to every-step
// per-member snapshots when recovery is possible and to no snapshots at
// all otherwise, while an explicit policy without any recovery mechanism
// is a configuration error (pure wasted traffic).
func effectivePolicy(p wire.SnapshotPolicy, ft bool) (wire.SnapshotPolicy, error) {
	if p.Interval < 0 {
		return wire.SnapshotPolicy{}, fmt.Errorf("cluster: snapshot interval must be >= 0, got %d", p.Interval)
	}
	if !ft {
		if p.Interval > 0 || p.Rank0Dedup {
			return wire.SnapshotPolicy{}, fmt.Errorf("cluster: snapshot policy %+v needs fault tolerance (MaxRestarts > 0 or LedgerDir)", p)
		}
		return wire.SnapshotPolicy{}, nil
	}
	if p.Interval == 0 {
		p.Interval = 1
	}
	// The policy shipped to workers must satisfy the wire-level contract
	// they re-validate on receipt.
	if err := p.Validate(); err != nil {
		return wire.SnapshotPolicy{}, err
	}
	return p, nil
}

// logRecord appends one record to the run's ledger; a durable run that
// cannot persist its state must fail rather than silently lose the
// resume guarantee. Callers hold r.mu, so the log's record order matches
// the mutation order exactly.
func (r *run) logRecord(rec *ledger.Record) {
	if r.led == nil {
		return
	}
	sp := r.coTrack.Begin(obs.CatLedger, "ledger_append")
	err := r.led.Append(rec)
	sp.End()
	if err != nil {
		r.fail(err)
		return
	}
	if m := r.co.cfg.Metrics; m != nil {
		recs, bytes := r.led.Written()
		m.Set("ledger_records", recs)
		m.Set("ledger_bytes", bytes)
	}
}

// seedGroupParams returns the seed student parameters of a group,
// flattened in the device's GradTensors order (blocks in group order,
// params in declaration order), cloned from the immutable seed snapshot.
func (r *run) seedGroupParams(gi int) []*tensor.Tensor {
	var out []*tensor.Tensor
	for _, b := range r.plan.Groups[gi].Blocks {
		out = append(out, r.seedSnap.Student[b]...)
	}
	return out
}

func zeroLike(ts []*tensor.Tensor) []*tensor.Tensor {
	out := make([]*tensor.Tensor, len(ts))
	for i, t := range ts {
		out[i] = tensor.New(t.Shape()...)
	}
	return out
}

// join dials every worker (retrying while it comes up), performs the
// hello handshake, and sends the session assignment.
func (r *run) join(addrs []string) error {
	placement := PlaceDevices(r.nDev, len(addrs))
	if r.ringMode {
		// Ring sessions need the placement directory before any worker can
		// start dialing its peers.
		peers := make([]string, r.nDev)
		for i, devs := range placement {
			for _, d := range devs {
				peers[d] = addrs[i]
			}
		}
		r.peerDir = peers
	}
	for i, addr := range addrs {
		if len(placement[i]) == 0 {
			r.co.logf("worker %s: no devices to place, skipping", addr)
			continue
		}
		conn, deadline, err := r.dialJoin(addr)
		if err != nil {
			return err
		}
		hello, err := recvDeadline(conn, deadline)
		if err != nil {
			conn.Close()
			return fmt.Errorf("cluster: worker %s handshake: %w", addr, err)
		}
		if hello.Kind != wire.KindHello {
			conn.Close()
			return fmt.Errorf("cluster: worker %s sent %v, want hello", addr, hello.Kind)
		}
		sid := r.newSessionID()
		assign := &wire.Assign{Plan: r.plan, Spec: r.co.cfg.Spec, Run: r.runCfg,
			Devices: placement[i], Snapshot: r.seedSnap,
			Peers: r.peerDir, Epoch: r.epoch, Session: sid, Degraded: r.degraded,
			Inputs: r.prestageInputs(placement[i])}
		if err := conn.Send(wire.EncodeAssign(assign)); err != nil {
			conn.Close()
			return fmt.Errorf("cluster: worker %s assign: %w", addr, err)
		}
		link, res := r.resumeControl(conn, addr, sid)
		p := &peerConn{addr: addr, conn: link, res: res, out: newOutbox(link), devices: placement[i]}
		p.touch()
		r.peers = append(r.peers, p)
		for _, d := range placement[i] {
			r.byDev[d] = p
		}
		r.co.logf("worker %s joined, hosting devices %v", addr, placement[i])
	}
	return nil
}

func (r *run) dialJoin(addr string) (transport.Conn, time.Time, error) {
	timeout := r.joinTimeout()
	deadline := time.Now().Add(timeout)
	for {
		conn, err := r.net().Dial(addr)
		if err == nil {
			return conn, deadline, nil
		}
		if time.Now().After(deadline) {
			return nil, deadline, fmt.Errorf("cluster: worker %s did not join within %v: %w", addr, timeout, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func (r *run) joinTimeout() time.Duration {
	if t := r.co.cfg.JoinTimeout; t > 0 {
		return t
	}
	return 10 * time.Second
}

// recvDeadline bounds a single handshake Recv by the join deadline: a
// TCP connect can succeed against a silent or busy peer (listen backlog)
// long before anything speaks, and Conn has no deadline of its own. On
// timeout the connection is closed, which unblocks the pending Recv; the
// spawned goroutine then drains into the buffered channel and exits.
func recvDeadline(conn transport.Conn, deadline time.Time) (*wire.Frame, error) {
	type result struct {
		f   *wire.Frame
		err error
	}
	ch := make(chan result, 1)
	go func() {
		f, err := conn.Recv()
		ch <- result{f, err}
	}()
	timer := time.NewTimer(time.Until(deadline))
	defer timer.Stop()
	select {
	case res := <-ch:
		return res.f, res.err
	case <-timer.C:
		conn.Close()
		return nil, fmt.Errorf("cluster: no handshake before join deadline")
	}
}

func (r *run) net() transport.Network { return r.co.net }

// newSessionID returns a fresh control-session id when the retry policy
// is on (zero otherwise — the Assign's zero Session disables resume on
// the worker side too).
func (r *run) newSessionID() int64 {
	if !r.runCfg.Retry.Enabled() {
		return 0
	}
	return nextSessionID()
}

// resumeControl wraps a freshly assigned session connection in its
// resumable layer when the retry policy is on: the coordinator side
// dials, so a break redials the worker and re-attaches to the live
// session by id, replaying the unacked tail.
func (r *run) resumeControl(conn transport.Conn, addr string, sid int64) (transport.Conn, *transport.Resumable) {
	if sid == 0 {
		return conn, nil
	}
	res := transport.NewResumable(conn, retryPolicy(r.runCfg.Retry), transport.ResumableOptions{
		Name: fmt.Sprintf("worker %s control link", addr),
		Logf: r.co.cfg.Logf,
		OnAbsorb: func(replayed int) {
			r.co.cfg.Metrics.Add("link_faults_absorbed", 1)
			r.co.cfg.Metrics.Add("link_frames_replayed", int64(replayed))
		},
		Redial: func(recvd int64) (transport.Conn, int64, error) {
			return r.redialControl(addr, sid, recvd)
		},
	})
	return res, res
}

// redialControl re-establishes a broken control link: fresh dial, the
// worker's Hello, then a SessionResume handshake carrying our receive
// count; the echo carries the worker's, bounding the replay.
func (r *run) redialControl(addr string, sid, recvd int64) (transport.Conn, int64, error) {
	conn, err := r.net().Dial(addr)
	if err != nil {
		return nil, 0, err
	}
	deadline := time.Now().Add(retryPolicy(r.runCfg.Retry).Budget)
	hello, err := recvDeadline(conn, deadline)
	if err == nil && hello.Kind != wire.KindHello {
		err = fmt.Errorf("worker %s sent %v, want hello", addr, hello.Kind)
	}
	if err == nil {
		err = conn.Send(wire.EncodeSessionResume(wire.SessionResume{Session: sid, Recvd: recvd}))
	}
	var sr wire.SessionResume
	if err == nil {
		var echo *wire.Frame
		if echo, err = recvDeadline(conn, deadline); err == nil {
			sr, err = wire.DecodeSessionResume(echo)
		}
	}
	if err == nil && sr.Session != sid {
		err = fmt.Errorf("resume echo names session %d, want %d", sr.Session, sid)
	}
	if err != nil {
		conn.Close()
		return nil, 0, err
	}
	return conn, sr.Recvd, nil
}

// start launches the per-peer readers, the group-0 batch feeder, and —
// when configured — the heartbeat monitor.
func (r *run) start() {
	r.mu.Lock()
	peers := append([]*peerConn(nil), r.peers...)
	r.mu.Unlock()
	for _, p := range peers {
		r.startReader(p)
	}
	go r.feed()
	if r.co.cfg.HeartbeatTimeout > 0 {
		go r.monitorHeartbeats()
	}
}

// startReader consumes one peer's inbound frames until the connection
// dies. A connection error during a live run is a worker death: it goes
// through handlePeerFailure, which recovers (re-places the devices) when
// the restart budget allows and fails the run otherwise. Protocol errors
// are never recovered — they mean a bug, not a crash.
func (r *run) startReader(p *peerConn) {
	go func() {
		// A panic while handling a malformed-but-decodable frame must
		// fail the run, not crash the coordinator process.
		defer func() {
			if rec := recover(); rec != nil {
				r.fail(fmt.Errorf("cluster: handling frames from worker %s panicked: %v", p.addr, rec))
			}
		}()
		for {
			f, err := p.conn.Recv()
			if err != nil {
				select {
				case <-r.finished: // normal teardown
				case <-r.failed:
				default:
					if p.hbLost.Load() {
						err = fmt.Errorf("heartbeat timeout after %v (%w)", r.co.cfg.HeartbeatTimeout, err)
					}
					r.handlePeerFailure(p, fmt.Errorf("cluster: worker %s: %w", p.addr, err))
				}
				return
			}
			p.touch()
			if err := r.handle(p, f); err != nil {
				r.fail(err)
				return
			}
		}
	}()
}

// monitorHeartbeats kills connections that have gone silent for longer
// than the configured timeout; the reader's Recv then errors and the
// normal failure/recovery path takes over.
func (r *run) monitorHeartbeats() {
	timeout := r.co.cfg.HeartbeatTimeout
	tick := timeout / 4
	if tick < 5*time.Millisecond {
		tick = 5 * time.Millisecond
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	for {
		select {
		case <-r.finished:
			return
		case <-r.failed:
			return
		case <-ticker.C:
			r.mu.Lock()
			peers := append([]*peerConn(nil), r.peers...)
			r.mu.Unlock()
			for _, p := range peers {
				if p.res != nil && p.res.Reconnecting() {
					// The link flapped and is being absorbed: silence is
					// expected, not death. If the reconnect budget runs out
					// the Recv turns terminal and the failure path runs; if
					// it heals, replayed heartbeats refresh lastHeard.
					p.touch()
					continue
				}
				heard := time.Unix(0, p.lastHeard.Load())
				if time.Since(heard) > timeout && p.hbLost.CompareAndSwap(false, true) {
					r.co.logf("worker %s silent for over %v, declaring it dead", p.addr, timeout)
					p.conn.Close()
				}
			}
		}
	}
}

// validateDataRecipe proves Config.Data regenerates the exact batches
// passed to Run: ring workers source their inputs from the recipe, so a
// recipe that drifted from the real schedule would silently train on
// different data. The comparison is bit-exact, same as every other
// equivalence contract in this package.
func validateDataRecipe(ds wire.DataSpec, batches []dataset.Batch) error {
	gen, err := ds.Batches()
	if err != nil {
		return err
	}
	if len(gen) < len(batches) {
		return fmt.Errorf("cluster: Config.Data regenerates %d batches, run has %d", len(gen), len(batches))
	}
	for i, b := range batches {
		bd, gd := b.X.Data(), gen[i].X.Data()
		if len(bd) != len(gd) {
			return fmt.Errorf("cluster: Config.Data batch %d has %d values, run's has %d", i, len(gd), len(bd))
		}
		for j := range bd {
			if math.Float32bits(bd[j]) != math.Float32bits(gd[j]) {
				return fmt.Errorf("cluster: Config.Data does not reproduce the run's batches (step %d diverges)", i)
			}
		}
	}
	return nil
}

// prestageInputs returns the batch schedule a ring session's Assign
// carries when the listed devices include a first-group member: the full
// run's input tensors, so group-0 members source every step locally and
// the coordinator sends no per-step input frames at all. Hub sessions,
// ring sessions hosting only later groups, and runs with a Data recipe
// (where workers regenerate the schedule themselves) get nothing.
func (r *run) prestageInputs(devices []int) []*tensor.Tensor {
	if !r.ringMode || r.runCfg.Data.N > 0 {
		return nil
	}
	hostsG0 := false
	for _, d := range devices {
		for _, gd := range r.plan.Groups[0].Devices {
			if d == gd {
				hostsG0 = true
			}
		}
	}
	if !hostsG0 {
		return nil
	}
	xs := make([]*tensor.Tensor, len(r.batches))
	for i, b := range r.batches {
		xs[i] = b.X
	}
	return xs
}

// feed streams the training batches to every member of the first group,
// windowed by the pipeline depth: a new batch enters only when the
// slowest group-0 member finishes an earlier step — the cluster analogue
// of the in-process relay channel's backpressure. A resumed run picks up
// after the highest step the previous coordinator already fed (steps
// before it are re-sent from the retained inputs at attach time). Ring
// runs prestage the whole schedule in each group-0 session's Assign
// instead: the workers self-pace on the peer acks, and the coordinator's
// steady-state traffic stays control-plane sized.
func (r *run) feed() {
	if r.ringMode {
		return
	}
	g0 := r.plan.Groups[0]
	r.mu.Lock()
	start := r.fedThrough + 1
	r.mu.Unlock()
	for s := start; s < r.steps; s++ {
		select {
		case <-r.credits:
		case <-r.failed:
			return
		case <-r.finished:
			return
		}
		payload := wire.EncodeTensor(wire.KindInput, wire.NoDev, int32(s), r.batches[s].X).Payload
		r.mu.Lock()
		r.sendGroupInputLocked(g0.Devices, s, payload)
		r.mu.Unlock()
	}
}

// applyInputLocked retains one step's input payload for every listed
// device whose snapshot has not covered the step yet, and advances the
// per-group delivery high-water marks. It is the state mutation shared by
// live delivery and ledger restore; it reports whether any device
// retained the payload.
func (r *run) applyInputLocked(devs []int, step int, payload []byte) bool {
	retained := false
	// Ring recovery restarts the whole pipeline at the global cut and
	// re-feeds batches from there, so inputs are never retained (or
	// persisted); the delivery marks still advance.
	if r.ft && !r.ringMode {
		for _, d := range devs {
			ds := r.devs[d]
			if step > ds.snapStep {
				ds.inputs[step] = payload
				retained = true
			}
		}
	}
	gi := r.devs[devs[0]].place.gi
	if step > r.groupInThrough[gi] {
		r.groupInThrough[gi] = step
	}
	if gi == 0 && step > r.fedThrough {
		r.fedThrough = step
	}
	return retained
}

// sendGroupInputLocked delivers one step's input payload to every member
// of a group: retain (fault tolerance), persist (durable runs), then
// enqueue to each attached member. A device that is currently dead only
// records — the retained payload is re-sent when the device is re-placed.
// Callers hold r.mu and must deliver each device's inputs in increasing
// step order. The retain→log→enqueue order is what makes a coordinator
// crash at any point consistent: an input a worker ever saw is always
// either persisted or covered by a later snapshot.
func (r *run) sendGroupInputLocked(devs []int, step int, payload []byte) {
	if r.applyInputLocked(devs, step, payload) {
		r.logRecord(ledger.Input(devs, step, payload))
	}
	for _, d := range devs {
		if p := r.byDev[d]; p != nil {
			p.out.Enqueue(&wire.Frame{Kind: wire.KindInput, Dev: int32(d), Step: int32(step), Payload: payload})
		}
	}
}

func (r *run) fail(err error) {
	r.failOnce.Do(func() {
		r.firstErr = err
		close(r.failed)
	})
}

// onLinkDown records a worker's report that a peer link exhausted its
// reconnect budget and fails the attempt immediately with the typed
// worker-lost error: the ring driver then classifies the failure —
// degrade the edge to hub relay when every worker is still alive
// (budget-free), or fall through to a budget-counted restart.
func (r *run) onLinkDown(p *peerConn, from, to int) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.linkDowns = append(r.linkDowns, [2]int{from, to})
	r.mu.Unlock()
	r.co.cfg.Metrics.Add("peer_links_down", 1)
	r.co.logf("worker %s reports peer link %d<->%d down (reconnect budget exhausted)", p.addr, from, to)
	r.fail(workerLostError{cause: fmt.Errorf("peer link %d<->%d persistently down", from, to)})
}

// handlePeerFailure retires a dead peer and either re-places its devices
// (within the restart budget) or fails the run. It runs on the dead
// peer's reader goroutine; concurrent failures of different peers recover
// independently.
func (r *run) handlePeerFailure(p *peerConn, cause error) {
	r.mu.Lock()
	if p.dead || r.closed {
		r.mu.Unlock()
		return
	}
	p.dead = true
	r.retirePeerLocked(p)
	allDone := true
	for _, d := range p.devices {
		if !r.devs[d].done {
			allDone = false
		}
	}
	if r.ringMode {
		// Ring recovery is not surgical: the peers' in-flight exchanges
		// with the dead worker cannot be replayed one-sided, so the whole
		// attempt fails and the ring driver restarts it from the global
		// cut (budget permitting). The typed error carries that intent.
		r.mu.Unlock()
		p.conn.Close()
		p.out.Kill()
		p.out.Close()
		if allDone {
			r.co.logf("worker %s dropped after finishing devices %v; no recovery needed", p.addr, p.devices)
			return
		}
		r.fail(workerLostError{cause: cause})
		return
	}
	canRecover := r.ft && r.restarts < r.co.cfg.MaxRestarts
	if !allDone && canRecover {
		r.restarts++
		r.co.cfg.Metrics.Add("recoveries", 1)
	}
	r.mu.Unlock()

	// Unblock a writer stuck in Send, then drain the outbox unsent.
	p.conn.Close()
	p.out.Kill()
	p.out.Close()

	if allDone {
		// Every hosted device already completed; the lost connection
		// cannot affect the result.
		r.co.logf("worker %s dropped after finishing devices %v; no recovery needed", p.addr, p.devices)
		return
	}
	if !canRecover {
		r.fail(cause)
		return
	}
	r.co.logf("worker %s lost (%v); re-placing devices %v", p.addr, cause, p.devices)
	if err := r.recoverPeer(p); err != nil {
		r.fail(fmt.Errorf("cluster: recovering devices %v after %w: %v", p.devices, cause, err))
	}
}

// retirePeerLocked removes p from the live set; its devices stay detached
// until a replacement attaches.
func (r *run) retirePeerLocked(p *peerConn) {
	for i, q := range r.peers {
		if q == p {
			r.peers = append(r.peers[:i], r.peers[i+1:]...)
			break
		}
	}
	for _, d := range p.devices {
		delete(r.byDev, d)
	}
}

// recoverPeer re-places a dead peer's devices: it builds a Resume frame
// from the per-device snapshots, finds a worker to host them — the dead
// peer's own address first (a restarted worker re-joining), then the
// other configured workers (which accept the extra session alongside
// their own) — and attaches the new connection, re-sending every retained
// input the restored devices need to replay.
func (r *run) recoverPeer(p *peerConn) error {
	sid := r.newSessionID()
	resume := r.buildResume(p.devices, sid)
	candidates := []string{p.addr}
	for _, a := range r.addrs {
		if a != p.addr {
			candidates = append(candidates, a)
		}
	}
	conn, addr, err := r.dialResume(candidates, resume)
	if err != nil {
		return err
	}
	np, ok := r.attachResumed(conn, addr, p.devices, sid)
	if !ok {
		return nil
	}
	r.startReader(np)
	r.co.logf("devices %v re-placed on worker %s (restart %d of %d), replaying from per-device snapshots",
		p.devices, addr, r.restartCount(), r.co.cfg.MaxRestarts)
	return nil
}

// attachResumed registers a freshly handshaken Resume session and queues
// the retained inputs its restored devices need to replay. It reports
// false — after cleaning the connection up — when the run already closed.
func (r *run) attachResumed(conn transport.Conn, addr string, devices []int, sid int64) (*peerConn, bool) {
	link, res := r.resumeControl(conn, addr, sid)
	np := &peerConn{addr: addr, conn: link, res: res, out: newOutbox(link), devices: devices}
	np.touch()
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		conn.Close()
		np.out.Kill()
		np.out.Close()
		return nil, false
	}
	r.peers = append(r.peers, np)
	for _, d := range devices {
		r.byDev[d] = np
		ds := r.devs[d]
		// The restored device consumed everything up to its snapshot;
		// replay needs the retained inputs after it, in step order.
		ds.stepGoSent = ds.snapStep
		steps := make([]int, 0, len(ds.inputs))
		for s := range ds.inputs {
			steps = append(steps, s)
		}
		sort.Ints(steps)
		for _, s := range steps {
			np.out.Enqueue(&wire.Frame{Kind: wire.KindInput, Dev: int32(d), Step: int32(s), Payload: ds.inputs[s]})
		}
	}
	r.mu.Unlock()
	return np, true
}

func (r *run) restartCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.restarts
}

// buildResume encodes the Resume frame for a set of devices from their
// current snapshots.
func (r *run) buildResume(devices []int, sid int64) *wire.Frame {
	r.mu.Lock()
	defer r.mu.Unlock()
	res := &wire.Resume{Assign: wire.Assign{Plan: r.plan, Spec: r.co.cfg.Spec,
		Run: r.runCfg, Devices: devices, Snapshot: r.seedSnap,
		Peers: r.peerDir, Epoch: r.epoch, Session: sid, Degraded: r.degraded,
		Inputs: r.prestageInputs(devices)}}
	for _, d := range devices {
		ds := r.devs[d]
		res.States = append(res.States, wire.DeviceState{
			Dev: d, Step: ds.snapStep, Params: ds.params, Velocity: ds.velocity})
	}
	return wire.EncodeResume(res)
}

// dialResume finds a worker to host a Resume session, cycling through the
// candidate addresses until one accepts and handshakes, bounded by the
// join timeout.
func (r *run) dialResume(candidates []string, resume *wire.Frame) (transport.Conn, string, error) {
	deadline := time.Now().Add(r.joinTimeout())
	for {
		conn, addr, err := r.dialHandshake(candidates, deadline)
		if err != nil {
			return nil, "", err
		}
		if err := conn.Send(resume); err != nil {
			conn.Close()
			if time.Now().After(deadline) {
				return nil, "", fmt.Errorf("no worker accepted the re-placement within %v (last error: %v)", r.joinTimeout(), err)
			}
			time.Sleep(50 * time.Millisecond)
			continue
		}
		return conn, addr, nil
	}
}

// dialHandshake finds a worker among the candidates that accepts a
// connection and presents its hello, cycling until the deadline. The
// caller owns the returned connection and sends the session's opening
// frame (Assign or Resume) on it.
func (r *run) dialHandshake(candidates []string, deadline time.Time) (transport.Conn, string, error) {
	var lastErr error
	for {
		for _, addr := range candidates {
			select {
			case <-r.failed:
				return nil, "", fmt.Errorf("cluster: run failed during placement")
			case <-r.finished:
				return nil, "", fmt.Errorf("cluster: run finished during placement")
			default:
			}
			conn, err := r.net().Dial(addr)
			if err != nil {
				lastErr = err
				continue
			}
			hello, err := recvDeadline(conn, deadline)
			if err != nil {
				conn.Close()
				lastErr = err
				continue
			}
			if hello.Kind != wire.KindHello {
				conn.Close()
				lastErr = fmt.Errorf("worker %s sent %v, want hello", addr, hello.Kind)
				continue
			}
			return conn, addr, nil
		}
		if time.Now().After(deadline) {
			return nil, "", fmt.Errorf("no worker accepted the placement within %v (last error: %v)", r.joinTimeout(), lastErr)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// teardown closes every session. After a failure the connections close
// first so an outbox writer stuck mid-Send is unblocked before its drain
// is awaited — otherwise a peer that died with a full transport window
// would leak the writer goroutine (and block Run) forever. On the
// graceful path the outbox flushes first so the final Drain frames reach
// the workers.
func (r *run) teardown() {
	r.mu.Lock()
	r.closed = true
	peers := append([]*peerConn(nil), r.peers...)
	if r.led != nil && !r.ledShared {
		r.led.Close()
	}
	r.mu.Unlock()
	if r.coTrack != nil {
		if spans := r.coTrack.Drain(); len(spans) > 0 {
			r.co.cfg.TraceSink(r.coTrack.Name(), spans)
		}
	}
	graceful := true
	select {
	case <-r.failed:
		// A planned repartition supersedes the attempt deliberately:
		// flush the outboxes so every session receives its Repartition
		// frame before the connection closes. Real failures kill the
		// outboxes — a dead worker is not reading.
		var pr *plannedRepartition
		graceful = errors.As(r.firstErr, &pr)
	default:
	}
	for _, p := range peers {
		if graceful {
			p.out.Close()
			p.conn.Close()
		} else {
			p.conn.Close()
			p.out.Kill()
			p.out.Close()
		}
	}
}

// handle processes one inbound frame on the owning peer's reader
// goroutine. Payload decoding — the hub's hottest work — happens here,
// outside the session lock, so readers for different workers decode
// concurrently; only the gather bookkeeping, reductions, and counters
// run under r.mu (r.devs' map structure is immutable once readers start).
//
// Every state-mutating branch re-checks r.closed under r.mu and drops
// the frame once teardown ran: reader goroutines can outlive their run
// (teardown closes connections but does not join them), and some state —
// the coordinator's workbench, the carried ring loss matrix — is shared
// with the next ring attempt, which owns a different mutex. The closed
// flag flips inside teardown's critical section on the driver goroutine,
// so any write a reader commits before it is ordered before the next
// attempt's reads, and any reader arriving after it observes closed and
// touches nothing.
func (r *run) handle(p *peerConn, f *wire.Frame) error {
	dev := int(f.Dev)
	ds, ok := r.devs[dev]
	if !ok && f.Kind != wire.KindHello && f.Kind != wire.KindHeartbeat && f.Kind != wire.KindLinkDown {
		return fmt.Errorf("cluster: worker %s sent %v for unknown device %d", p.addr, f.Kind, f.Dev)
	}
	step := int(f.Step)
	switch f.Kind {
	case wire.KindHello, wire.KindHeartbeat:
		return nil // heartbeats already refreshed lastHeard; late hellos are harmless
	case wire.KindLinkDown:
		from, to, err := wire.DecodeLinkDown(f)
		if err != nil {
			return err
		}
		r.onLinkDown(p, from, to)
		return nil
	case wire.KindRelay, wire.KindRelayAck:
		if !r.ringMode {
			return fmt.Errorf("cluster: hub worker sent a degraded-edge %v frame (device %d step %d)", f.Kind, dev, step)
		}
		// Hub relay across a degraded peer edge: the frame routes by Dev
		// (relay → receiver, ack → original sender) and its contents are
		// opaque to the coordinator — forwarding the payload verbatim is
		// what keeps the degraded path bit-identical to the direct link.
		r.mu.Lock()
		defer r.mu.Unlock()
		if r.closed {
			return nil
		}
		if q := r.byDev[dev]; q != nil {
			q.out.Enqueue(f)
		}
		return nil
	case wire.KindOutput:
		if r.ringMode {
			return fmt.Errorf("cluster: ring worker relayed an output through the hub (device %d step %d)", dev, step)
		}
		place := ds.place
		if place.gi >= len(r.plan.Groups)-1 {
			return fmt.Errorf("cluster: last group relayed an output for step %d", step)
		}
		if r.plan.Groups[place.gi].Split() == 1 {
			// Unsplit group: the shard IS the full batch. Forward the
			// encoded payload verbatim — decoding and re-encoding it here
			// would produce identical bytes (validation happens at the
			// receiving worker's decode).
			r.mu.Lock()
			defer r.mu.Unlock()
			if r.closed {
				return nil
			}
			if step <= ds.outputSeen {
				return r.replayOnly(ds, "output", step) // already forwarded downstream
			}
			ds.outputSeen = step
			r.sendGroupInputLocked(r.plan.Groups[place.gi+1].Devices, step, f.Payload)
			r.tryCommitLocked(place.gi)
			return nil
		}
		t, err := wire.DecodeTensor(f)
		if err != nil {
			return err
		}
		return r.onOutput(ds, step, t, f.Payload)
	case wire.KindGrads:
		if r.ringMode && !r.degradedGroups[ds.place.gi] {
			return fmt.Errorf("cluster: ring worker sent gradients to the hub (device %d step %d)", dev, step)
		}
		lists, err := wire.DecodeTensors(f)
		if err != nil {
			return err
		}
		return r.onGrads(dev, ds, step, lists)
	case wire.KindStepDone:
		return r.onStepDone(dev, ds, step)
	case wire.KindLosses:
		vals, err := wire.DecodeLosses(f)
		if err != nil {
			return err
		}
		return r.onLosses(ds, step, vals)
	case wire.KindSnapshot:
		if !r.ft {
			return nil // stray snapshot from a session we did not ask to send them
		}
		params, velocity, err := wire.DecodeDeviceSnapshot(f)
		if err != nil {
			return err
		}
		return r.onSnapshot(dev, ds, step, params, velocity)
	case wire.KindSpans:
		if !r.co.cfg.Trace && r.repart == nil {
			return nil // stray batch from a session we did not ask to trace
		}
		b, err := wire.DecodeSpans(f)
		if err != nil {
			return err
		}
		spans := make([]obs.Span, len(b.Spans))
		for i, s := range b.Spans {
			spans[i] = obs.Span{Name: s.Name, Cat: sim.Category(s.Cat), Start: s.Start, Dur: s.Dur}
		}
		// Sink delivery and repartition aggregation happen here on the
		// reader goroutine, outside r.mu — span batches never contend
		// with the data plane.
		if r.co.cfg.Trace {
			r.co.cfg.TraceSink(b.Track, spans)
		}
		if r.repart != nil {
			r.observeSpans(b.Track, spans)
		}
		return nil
	case wire.KindFinalParams:
		params, err := wire.DecodeTensors(f)
		if err != nil {
			return err
		}
		return r.onFinalParams(ds.place, params)
	case wire.KindDone:
		r.mu.Lock()
		defer r.mu.Unlock()
		if r.closed {
			return nil
		}
		if ds.done {
			return nil // replayed completion
		}
		ds.done = true
		r.done++
		if r.done == r.nDev {
			close(r.finished)
		}
		return nil
	default:
		return fmt.Errorf("cluster: worker %s sent unexpected %v frame", p.addr, f.Kind)
	}
}

// replayOnly guards the duplicate-frame paths: with fault tolerance on, a
// duplicate is a legitimate replay and is dropped; without it, no replay
// can exist, so a duplicate is a protocol violation.
func (r *run) replayOnly(ds *devState, what string, step int) error {
	if r.ft {
		return nil
	}
	return fmt.Errorf("cluster: duplicate %s from group %d rank %d step %d", what, ds.place.gi, ds.place.j, step)
}

// onOutput collects a split group's boundary-activation shards (the
// k == 1 case forwards payloads directly in handle). The shard is
// persisted before it enters the gather — a member whose snapshot later
// passes this step will never re-send it, so a restarted coordinator must
// already hold it — and once every member's shard of the step arrived,
// applyOutputLocked assembles the full batch in rank order and relays it
// to each member of the next group.
func (r *run) onOutput(ds *devState, step int, t *tensor.Tensor, payload []byte) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil
	}
	if step <= ds.outputSeen {
		return r.replayOnly(ds, "output", step)
	}
	r.logRecord(ledger.Output(int(r.plan.Groups[ds.place.gi].Devices[ds.place.j]), step, payload))
	if err := r.applyOutputLocked(ds, step, t); err != nil {
		return err
	}
	r.tryCommitLocked(ds.place.gi)
	return nil
}

// applyOutputLocked is the gather mutation shared by live shard arrivals
// and ledger restore: record the member's shard and, when the step's
// gather completes, assemble and forward the full batch downstream.
func (r *run) applyOutputLocked(ds *devState, step int, t *tensor.Tensor) error {
	place := ds.place
	ds.outputSeen = step
	k := r.plan.Groups[place.gi].Split()
	st := r.outputs[place.gi]
	g := st[step]
	if g == nil {
		g = &gather{parts: make([]*tensor.Tensor, k)}
		st[step] = g
	}
	if g.parts[place.j] != nil {
		return fmt.Errorf("cluster: duplicate output from group %d rank %d step %d", place.gi, place.j, step)
	}
	g.parts[place.j] = t
	g.have++
	if g.have < k {
		return nil
	}
	delete(st, step)
	shape := append([]int(nil), g.parts[0].Shape()...)
	shape[0] *= k
	full := tensor.New(shape...)
	per := g.parts[0].Numel()
	for j, part := range g.parts {
		if part.Numel() != per {
			return fmt.Errorf("cluster: group %d step %d shard sizes differ", place.gi, step)
		}
		copy(full.Data()[j*per:(j+1)*per], part.Data())
	}
	payload := wire.EncodeTensor(wire.KindInput, wire.NoDev, int32(step), full).Payload
	r.sendGroupInputLocked(r.plan.Groups[place.gi+1].Devices, step, payload)
	return nil
}

// onGrads collects a split group's gradient lists and, once complete,
// performs the deterministic all-reduce — sum over member ranks 0..k-1,
// scale by 1/k, exactly the in-process evaluation order — and returns the
// mean to every member. Completed reductions are cached (under fault
// tolerance) until every member's snapshot passes the step, so a replayed
// member re-requesting an old step gets the identical bytes back.
func (r *run) onGrads(dev int, ds *devState, step int, lists []*tensor.Tensor) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil
	}
	place := ds.place
	k := r.plan.Groups[place.gi].Split()
	if k == 1 {
		return fmt.Errorf("cluster: gradient frame from unsplit group %d", place.gi)
	}
	if payload, ok := r.reduceCache[place.gi][step]; ok {
		// Replay of an already-reduced step: answer from the cache.
		if p := r.byDev[dev]; p != nil {
			p.out.Enqueue(&wire.Frame{Kind: wire.KindGradsReduced,
				Dev: int32(dev), Step: int32(step), Payload: payload})
		}
		return nil
	}
	st := r.grads[place.gi]
	g := st[step]
	if g == nil {
		g = &gatherLists{parts: make([][]*tensor.Tensor, k)}
		st[step] = g
	}
	if g.parts[place.j] != nil {
		// The member's pre-crash gradients are already in the gather; the
		// replayed copy is bit-identical by construction.
		return r.replayOnly(ds, "gradients", step)
	}
	g.parts[place.j] = lists
	g.have++
	if g.have < k {
		return nil
	}
	delete(st, step)
	n := len(g.parts[0])
	for rk, l := range g.parts {
		if len(l) != n {
			return fmt.Errorf("cluster: group %d step %d gradient counts differ", place.gi, step)
		}
		for pi, t := range l {
			if !t.SameShape(g.parts[0][pi]) {
				return fmt.Errorf("cluster: group %d step %d rank %d gradient %d shape %v, rank 0 has %v",
					place.gi, step, rk, pi, t.Shape(), g.parts[0][pi].Shape())
			}
		}
	}
	inv := 1 / float32(k)
	reduced := make([]*tensor.Tensor, n)
	for pi := 0; pi < n; pi++ {
		sum := tensor.New(g.parts[0][pi].Shape()...)
		for rk := 0; rk < k; rk++ {
			tensor.AddInto(sum, g.parts[rk][pi])
		}
		tensor.ScaleInPlace(sum, inv)
		reduced[pi] = sum
	}
	payload := wire.EncodeTensors(wire.KindGradsReduced, wire.NoDev, int32(step), reduced).Payload
	if r.ft {
		r.reduceCache[place.gi][step] = payload
		// Persist before answering: a member that receives the reduction
		// can snapshot past the step and never re-send its gradients, so a
		// restarted coordinator must be able to answer the other members'
		// replays from the persisted cache.
		r.logRecord(ledger.Reduction(place.gi, step, payload))
	}
	for _, d := range r.plan.Groups[place.gi].Devices {
		if p := r.byDev[d]; p != nil {
			p.out.Enqueue(&wire.Frame{Kind: wire.KindGradsReduced,
				Dev: int32(d), Step: int32(step), Payload: payload})
		}
	}
	return nil
}

// onStepDone counts the global no-DPU barrier and releases it per device:
// every device receives its own StepGo exactly once per step, tracked by
// stepGoSent so replayed arrivals are re-answered (when the barrier
// already released) without double-counting or double-delivery.
func (r *run) onStepDone(dev int, ds *devState, step int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil
	}
	if step <= ds.barrierSeen {
		// Replayed arrival: the count already includes this device. If the
		// barrier has released, re-answer the restored device directly.
		if err := r.replayOnly(ds, "step-done", step); err != nil {
			return err
		}
		if step <= r.stepGoThrough && ds.stepGoSent < step {
			r.sendStepGoLocked(dev, ds, step)
		}
		return nil
	}
	ds.barrierSeen = step
	r.barrier[step]++
	if r.barrier[step] == r.nDev {
		delete(r.barrier, step)
		r.stepGoThrough = step
		// Only the release is persisted: an unreleased barrier means no
		// device completed the step, so every device re-arrives on replay
		// and the count rebuilds itself.
		r.logRecord(ledger.Barrier(step))
		for d, dds := range r.devs {
			if dds.stepGoSent < step {
				r.sendStepGoLocked(d, dds, step)
			}
		}
	}
	r.tryCommitLocked(ds.place.gi)
	return nil
}

// sendStepGoLocked delivers one device's barrier release, if the device
// is currently attached; a dead device's release is re-sent when its
// replayed StepDone arrives after re-placement.
func (r *run) sendStepGoLocked(dev int, ds *devState, step int) {
	if p := r.byDev[dev]; p != nil {
		p.out.Enqueue(wire.Control(wire.KindStepGo, int32(dev), int32(step)))
		ds.stepGoSent = step
	}
}

// onLosses records a member's per-block losses and releases a pipeline
// credit when the whole first group finishes a step.
func (r *run) onLosses(ds *devState, step int, vals []float64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil
	}
	place := ds.place
	nbg := len(r.plan.Groups[place.gi].Blocks)
	if len(vals) != nbg {
		return fmt.Errorf("cluster: group %d rank %d reported %d losses, want %d", place.gi, place.j, len(vals), nbg)
	}
	if step < 0 || step >= r.steps {
		return fmt.Errorf("cluster: loss report for step %d of %d", step, r.steps)
	}
	if step <= ds.lossSeen {
		// A replayed step recomputes bit-identical losses; the matrix and
		// the pipeline credit already account for them.
		return r.replayOnly(ds, "losses", step)
	}
	r.logRecord(ledger.Losses(int(r.plan.Groups[place.gi].Devices[place.j]), step, vals))
	r.applyLossesLocked(ds, step, vals)
	r.tryCommitLocked(place.gi)
	return nil
}

// applyLossesLocked is the loss-row mutation shared by live reports and
// ledger restore: fill the matrix and release a pipeline credit when the
// whole first group finishes a step.
func (r *run) applyLossesLocked(ds *devState, step int, vals []float64) {
	place := ds.place
	nbg := len(r.plan.Groups[place.gi].Blocks)
	ds.lossSeen = step
	for bi, v := range vals {
		r.losses[place.gi][place.j*nbg+bi][step] = v
	}
	if place.gi == 0 {
		r.g0done[step]++
		if r.g0done[step] == r.plan.Groups[0].Split() {
			delete(r.g0done, step)
			r.co.cfg.Metrics.Add("steps_completed", 1)
			select {
			case r.credits <- struct{}{}:
			default:
			}
		}
	}
}

// onSnapshot handles a device's post-step recovery state. Under the
// per-member policy it installs directly; under Rank0Dedup the frame must
// come from the group's rank 0 and only becomes the group's committed
// snapshot once every member has accounted for the covered steps.
func (r *run) onSnapshot(dev int, ds *devState, step int, params, velocity []*tensor.Tensor) error {
	if err := r.checkSnapshotShapes(dev, ds.place.gi, params, velocity); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil
	}
	if step <= ds.snapStep {
		return r.replayOnly(ds, "snapshot", step)
	}
	r.co.cfg.Metrics.Add("snapshots", 1)
	if !r.policy.Rank0Dedup {
		r.logRecord(ledger.DevSnapshot(dev, step, params, velocity))
		r.applyDevSnapshotLocked(ds, step, params, velocity)
		return nil
	}
	if ds.place.j != 0 {
		return fmt.Errorf("cluster: snapshot from rank %d of group %d under rank-0 dedup", ds.place.j, ds.place.gi)
	}
	gi := ds.place.gi
	// A re-placed rank 0 replays past its commit point and re-emits
	// pending snapshots; replace rather than duplicate (bit-identical by
	// the replica guarantee).
	replaced := false
	for i := range r.pend[gi] {
		if r.pend[gi][i].step == step {
			r.pend[gi][i] = pendingSnap{step: step, params: params, velocity: velocity}
			replaced = true
			break
		}
	}
	if !replaced {
		r.pend[gi] = append(r.pend[gi], pendingSnap{step: step, params: params, velocity: velocity})
	}
	// The pending parameters are already valid ring-restart state for the
	// whole group (bit-identical replicas): record them even though the
	// group-level commit may later skip this step, or two groups whose
	// commits skip different steps could lose every common cut candidate.
	r.recordHistLocked(gi, step, params, velocity)
	r.tryCommitLocked(gi)
	return nil
}

func (r *run) checkSnapshotShapes(dev, gi int, params, velocity []*tensor.Tensor) error {
	expect := r.groupParams[gi]
	if len(params) != len(expect) {
		return fmt.Errorf("cluster: device %d snapshot has %d params, group %d trains %d",
			dev, len(params), gi, len(expect))
	}
	for i, t := range params {
		if !t.SameShape(expect[i]) || !velocity[i].SameShape(expect[i]) {
			return fmt.Errorf("cluster: device %d snapshot param %d shape %v/%v, want %v",
				dev, i, t.Shape(), velocity[i].Shape(), expect[i].Shape())
		}
	}
	return nil
}

// applyDevSnapshotLocked installs one device's snapshot and prunes the
// retention it obsoletes: inputs the device will never replay and
// reductions no member of its group can re-request. Shared by live
// per-member snapshots and ledger restore.
func (r *run) applyDevSnapshotLocked(ds *devState, step int, params, velocity []*tensor.Tensor) {
	ds.snapStep = step
	ds.params = params
	ds.velocity = velocity
	for s := range ds.inputs {
		if s <= step {
			delete(ds.inputs, s)
		}
	}
	r.recordHistLocked(ds.place.gi, step, params, velocity)
	r.pruneReductionsLocked(ds.place.gi)
}

func (r *run) pruneReductionsLocked(gi int) {
	if len(r.reduceCache[gi]) == 0 {
		return
	}
	minSnap := r.steps
	for _, d := range r.plan.Groups[gi].Devices {
		if s := r.devs[d].snapStep; s < minSnap {
			minSnap = s
		}
	}
	for s := range r.reduceCache[gi] {
		if s <= minSnap {
			delete(r.reduceCache[gi], s)
		}
	}
}

// accountedLocked returns the highest step the device has fully accounted
// for at the hub: its loss row is recorded and — where the protocol
// demands it — its output shard was incorporated and its barrier arrival
// counted. A group snapshot may only commit up to the minimum of its
// members' accounted steps; anything further would let a resumed member
// skip replaying work the hub never saw.
func (r *run) accountedLocked(ds *devState) int {
	a := ds.lossSeen
	// Ring sessions forward activations peer-to-peer; the hub never sees
	// an output shard, so the loss row (and barrier) are the whole account.
	if !r.ringMode && ds.place.gi < len(r.plan.Groups)-1 && ds.outputSeen < a {
		a = ds.outputSeen
	}
	if !r.co.cfg.DPU && ds.barrierSeen < a {
		a = ds.barrierSeen
	}
	return a
}

// tryCommitLocked advances a group's committed snapshot to the newest
// pending rank-0 snapshot every member has accounted for. No-op unless
// rank-0 dedup is active and a pending snapshot exists.
func (r *run) tryCommitLocked(gi int) {
	if !r.policy.Rank0Dedup || len(r.pend[gi]) == 0 {
		return
	}
	acct := r.steps
	for _, d := range r.plan.Groups[gi].Devices {
		if a := r.accountedLocked(r.devs[d]); a < acct {
			acct = a
		}
	}
	best := -1
	for i, p := range r.pend[gi] {
		if p.step <= acct && (best < 0 || p.step > r.pend[gi][best].step) {
			best = i
		}
	}
	if best < 0 {
		return
	}
	p := r.pend[gi][best]
	r.logRecord(ledger.GroupSnapshot(gi, p.step, p.params, p.velocity))
	r.applyGroupSnapshotLocked(gi, p.step, p.params, p.velocity)
}

// applyGroupSnapshotLocked commits one group-level snapshot: every member
// adopts the (bit-identical) parameters, retained inputs and reductions
// the commit obsoletes are pruned, and older pending snapshots drop.
// Shared by live commits and ledger restore.
func (r *run) applyGroupSnapshotLocked(gi, step int, params, velocity []*tensor.Tensor) {
	for _, d := range r.plan.Groups[gi].Devices {
		ds := r.devs[d]
		if step <= ds.snapStep {
			continue
		}
		ds.snapStep = step
		ds.params = params
		ds.velocity = velocity
		for s := range ds.inputs {
			if s <= step {
				delete(ds.inputs, s)
			}
		}
	}
	r.recordHistLocked(gi, step, params, velocity)
	r.pruneReductionsLocked(gi)
	kept := r.pend[gi][:0]
	for _, p := range r.pend[gi] {
		if p.step > step {
			kept = append(kept, p)
		}
	}
	r.pend[gi] = kept
}

// onFinalParams installs a group leader's trained student parameters
// into the coordinator's workbench. A replayed report re-installs the
// identical values.
func (r *run) onFinalParams(place devPlace, params []*tensor.Tensor) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil
	}
	if place.j != 0 {
		return fmt.Errorf("cluster: final params from non-leader rank %d of group %d", place.j, place.gi)
	}
	var dst []*tensor.Tensor
	for _, b := range r.plan.Groups[place.gi].Blocks {
		for _, p := range r.workb.Pairs[b].Student.Params() {
			dst = append(dst, p.Value)
		}
	}
	if len(params) != len(dst) {
		return fmt.Errorf("cluster: group %d returned %d trained params, workbench wants %d", place.gi, len(params), len(dst))
	}
	for i, t := range params {
		if !t.SameShape(dst[i]) {
			return fmt.Errorf("cluster: group %d trained param %d shape %v, want %v", place.gi, i, t.Shape(), dst[i].Shape())
		}
		dst[i].CopyFrom(t)
	}
	return nil
}

// result merges the per-member loss rows into the per-block trajectory,
// through the same helper (and therefore the same float64 evaluation
// order) as engine.RunPipelined.
func (r *run) result() engine.Result {
	res := engine.Result{Loss: make([][]float64, r.nb)}
	for gi, g := range r.plan.Groups {
		merged := engine.MergeGroupLosses(r.losses[gi], len(g.Blocks), g.Split(), r.steps)
		for bi, b := range g.Blocks {
			res.Loss[b] = merged[bi]
		}
	}
	return res
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}
