package cluster

import (
	"fmt"
	"sync"
	"time"

	"pipebd/internal/cluster/transport"
	"pipebd/internal/cluster/wire"
	"pipebd/internal/dataset"
	"pipebd/internal/distill"
	"pipebd/internal/engine"
	"pipebd/internal/sched"
	"pipebd/internal/tensor"
)

// Config parameterizes a cluster run.
type Config struct {
	// Plan distributes blocks over devices exactly as in engine.Config.
	Plan sched.Plan
	// DPU enables decoupled parameter update; without it the coordinator
	// runs a global per-step barrier across all devices.
	DPU bool
	// LR and Momentum configure each block's SGD optimizer.
	LR, Momentum float32
	// Buffer is the pipeline depth: how many batches may be in flight
	// ahead of the slowest group-0 device; <= 0 means 2.
	Buffer int
	// Backend optionally names the tensor backend workers should use
	// (bit-identical by contract, so purely a throughput knob).
	Backend string
	// Spec names the model the workers rebuild. Its architecture must
	// match the workbench passed to Run.
	Spec wire.ModelSpec
	// JoinTimeout bounds how long the coordinator waits for each worker
	// to come up; <= 0 means 10 seconds.
	JoinTimeout time.Duration
	// Logf receives progress lines; nil is silent.
	Logf func(format string, args ...any)
}

// Coordinator drives a cluster run: it joins the workers, maps the plan's
// devices onto them, broadcasts the model spec, seed parameters, and
// batches, and acts as the hub for the session's data flow — assembling
// teacher-relay activation shards and forwarding them downstream,
// performing the rank-ordered intra-group gradient reduction, counting
// the global no-DPU step barrier, accumulating per-block losses, and
// installing the trained weights it receives back.
//
// Every reduction the hub performs uses the exact floating-point
// evaluation order of the in-process engine (rank-ordered sums, merge via
// engine.MergeGroupLosses), so a cluster run's trajectory is bit-identical
// to engine.RunPipelined's.
type Coordinator struct {
	net transport.Network
	cfg Config
}

// NewCoordinator returns a coordinator that dials workers over net.
func NewCoordinator(net transport.Network, cfg Config) *Coordinator {
	return &Coordinator{net: net, cfg: cfg}
}

// Run is shorthand for NewCoordinator(net, cfg).Run(w, batches, addrs).
func Run(net transport.Network, addrs []string, w *distill.Workbench, batches []dataset.Batch, cfg Config) (engine.Result, error) {
	return NewCoordinator(net, cfg).Run(w, batches, addrs)
}

// PlaceDevices maps nDev device ranks onto nWorkers workers
// contiguously, giving earlier workers one extra device when the split is
// uneven. Workers beyond nDev receive no devices.
func PlaceDevices(nDev, nWorkers int) [][]int {
	if nWorkers <= 0 {
		return nil
	}
	out := make([][]int, nWorkers)
	base, extra := nDev/nWorkers, nDev%nWorkers
	next := 0
	for i := range out {
		n := base
		if i < extra {
			n++
		}
		for d := 0; d < n; d++ {
			out[i] = append(out[i], next)
			next++
		}
	}
	return out
}

// peerConn is the coordinator's handle on one joined worker.
type peerConn struct {
	addr    string
	conn    transport.Conn
	out     *outbox
	devices []int
}

// devPlace locates a device rank within the plan.
type devPlace struct {
	gi int // group index
	j  int // rank within the group
}

// run is the mutable state of one cluster session.
type run struct {
	co      *Coordinator
	plan    sched.Plan
	nb      int
	steps   int
	nDev    int
	peers   []*peerConn
	byDev   map[int]*peerConn
	places  map[int]devPlace
	workb   *distill.Workbench
	batches []dataset.Batch

	mu       sync.Mutex
	outputs  []map[int]*gather      // [gi] step → collected activation shards
	grads    []map[int]*gatherLists // [gi] step → collected gradient lists
	barrier  map[int]int            // step → devices arrived (no-DPU only)
	losses   [][][]float64          // [gi][j*nb+bi][step]
	g0done   map[int]int            // step → group-0 members that completed it
	credits  chan struct{}
	done     int
	finished chan struct{}

	failOnce sync.Once
	firstErr error
	failed   chan struct{}
}

type gather struct {
	parts []*tensor.Tensor
	have  int
}

type gatherLists struct {
	parts [][]*tensor.Tensor
	have  int
}

// Run executes the pipelined plan across the workers at addrs and
// returns the loss trajectory; w's student parameters are updated with
// the trained weights the group leaders send back. The run is
// bit-equivalent to engine.RunPipelined(w, batches, ...) with the same
// plan and hyperparameters.
func (c *Coordinator) Run(w *distill.Workbench, batches []dataset.Batch, addrs []string) (engine.Result, error) {
	r, err := c.newRun(w, batches, addrs)
	if err != nil {
		return engine.Result{}, err
	}
	defer r.teardown()
	if err := r.join(addrs); err != nil {
		return engine.Result{}, err
	}
	r.start()
	select {
	case <-r.finished:
	case <-r.failed:
		return engine.Result{}, r.firstErr
	}
	// Graceful drain: every device reported Done, all frames consumed.
	for _, p := range r.peers {
		p.out.Enqueue(wire.Control(wire.KindDrain, wire.NoDev, wire.NoStep))
	}
	return r.result(), nil
}

func (c *Coordinator) newRun(w *distill.Workbench, batches []dataset.Batch, addrs []string) (*run, error) {
	plan := c.cfg.Plan
	nDev := 0
	for _, g := range plan.Groups {
		nDev += g.Split()
	}
	if err := plan.Validate(nDev, w.NumBlocks()); err != nil {
		return nil, err
	}
	if len(batches) == 0 {
		return nil, fmt.Errorf("cluster: no batches")
	}
	if len(addrs) == 0 {
		return nil, fmt.Errorf("cluster: no worker addresses")
	}
	for _, g := range plan.Groups {
		if k := g.Split(); batches[0].X.Dim(0)%k != 0 {
			return nil, fmt.Errorf("cluster: batch %d not divisible by group size %d", batches[0].X.Dim(0), k)
		}
	}
	if c.cfg.Spec.Blocks != w.NumBlocks() {
		return nil, fmt.Errorf("cluster: spec has %d blocks, workbench has %d", c.cfg.Spec.Blocks, w.NumBlocks())
	}
	buffer := c.cfg.Buffer
	if buffer <= 0 {
		buffer = 2
	}
	r := &run{
		co: c, plan: plan, nb: w.NumBlocks(), steps: len(batches), nDev: nDev,
		byDev: make(map[int]*peerConn), places: make(map[int]devPlace),
		workb: w, batches: batches,
		outputs:  make([]map[int]*gather, len(plan.Groups)),
		grads:    make([]map[int]*gatherLists, len(plan.Groups)),
		barrier:  make(map[int]int),
		losses:   make([][][]float64, len(plan.Groups)),
		g0done:   make(map[int]int),
		credits:  make(chan struct{}, len(batches)+buffer),
		finished: make(chan struct{}),
		failed:   make(chan struct{}),
	}
	for gi, g := range plan.Groups {
		r.outputs[gi] = make(map[int]*gather)
		r.grads[gi] = make(map[int]*gatherLists)
		r.losses[gi] = make([][]float64, len(g.Blocks)*g.Split())
		for i := range r.losses[gi] {
			r.losses[gi][i] = make([]float64, r.steps)
		}
		for j, d := range g.Devices {
			r.places[d] = devPlace{gi: gi, j: j}
		}
	}
	for i := 0; i < buffer; i++ {
		r.credits <- struct{}{}
	}
	return r, nil
}

// join dials every worker (retrying while it comes up), performs the
// hello handshake, and sends the session assignment.
func (r *run) join(addrs []string) error {
	placement := PlaceDevices(r.nDev, len(addrs))
	snapshot := CaptureSnapshot(r.workb)
	runCfg := wire.RunConfig{DPU: r.co.cfg.DPU, LR: r.co.cfg.LR, Momentum: r.co.cfg.Momentum,
		Buffer: r.co.cfg.Buffer, Steps: r.steps, Backend: r.co.cfg.Backend}
	for i, addr := range addrs {
		if len(placement[i]) == 0 {
			r.co.logf("worker %s: no devices to place, skipping", addr)
			continue
		}
		conn, deadline, err := r.dialJoin(addr)
		if err != nil {
			return err
		}
		hello, err := recvDeadline(conn, deadline)
		if err != nil {
			conn.Close()
			return fmt.Errorf("cluster: worker %s handshake: %w", addr, err)
		}
		if hello.Kind != wire.KindHello {
			conn.Close()
			return fmt.Errorf("cluster: worker %s sent %v, want hello", addr, hello.Kind)
		}
		assign := &wire.Assign{Plan: r.plan, Spec: r.co.cfg.Spec, Run: runCfg,
			Devices: placement[i], Snapshot: snapshot}
		if err := conn.Send(wire.EncodeAssign(assign)); err != nil {
			conn.Close()
			return fmt.Errorf("cluster: worker %s assign: %w", addr, err)
		}
		p := &peerConn{addr: addr, conn: conn, out: newOutbox(conn), devices: placement[i]}
		r.peers = append(r.peers, p)
		for _, d := range placement[i] {
			r.byDev[d] = p
		}
		r.co.logf("worker %s joined, hosting devices %v", addr, placement[i])
	}
	return nil
}

func (r *run) dialJoin(addr string) (transport.Conn, time.Time, error) {
	timeout := r.co.cfg.JoinTimeout
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	deadline := time.Now().Add(timeout)
	for {
		conn, err := r.net().Dial(addr)
		if err == nil {
			return conn, deadline, nil
		}
		if time.Now().After(deadline) {
			return nil, deadline, fmt.Errorf("cluster: worker %s did not join within %v: %w", addr, timeout, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// recvDeadline bounds a single handshake Recv by the join deadline: a
// TCP connect can succeed against a silent or busy peer (listen backlog)
// long before anything speaks, and Conn has no deadline of its own. On
// timeout the connection is closed, which unblocks the pending Recv; the
// spawned goroutine then drains into the buffered channel and exits.
func recvDeadline(conn transport.Conn, deadline time.Time) (*wire.Frame, error) {
	type result struct {
		f   *wire.Frame
		err error
	}
	ch := make(chan result, 1)
	go func() {
		f, err := conn.Recv()
		ch <- result{f, err}
	}()
	timer := time.NewTimer(time.Until(deadline))
	defer timer.Stop()
	select {
	case res := <-ch:
		return res.f, res.err
	case <-timer.C:
		conn.Close()
		return nil, fmt.Errorf("cluster: no handshake before join deadline")
	}
}

func (r *run) net() transport.Network { return r.co.net }

// start launches the per-peer readers and the group-0 batch feeder.
func (r *run) start() {
	for _, p := range r.peers {
		go func(p *peerConn) {
			// A panic while handling a malformed-but-decodable frame must
			// fail the run, not crash the coordinator process.
			defer func() {
				if rec := recover(); rec != nil {
					r.fail(fmt.Errorf("cluster: handling frames from worker %s panicked: %v", p.addr, rec))
				}
			}()
			for {
				f, err := p.conn.Recv()
				if err != nil {
					select {
					case <-r.finished: // normal teardown
					default:
						r.fail(fmt.Errorf("cluster: worker %s: %w", p.addr, err))
					}
					return
				}
				if err := r.handle(p, f); err != nil {
					r.fail(err)
					return
				}
			}
		}(p)
	}
	go r.feed()
}

// feed streams the training batches to every member of the first group,
// windowed by the pipeline depth: a new batch enters only when the
// slowest group-0 member finishes an earlier step — the cluster analogue
// of the in-process relay channel's backpressure.
func (r *run) feed() {
	g0 := r.plan.Groups[0]
	for s, b := range r.batches {
		select {
		case <-r.credits:
		case <-r.failed:
			return
		case <-r.finished:
			return
		}
		r.broadcastTensor(wire.KindInput, g0.Devices, s, b.X)
	}
}

// broadcastTensor sends one tensor to several devices, encoding the
// payload once.
func (r *run) broadcastTensor(kind wire.Kind, devs []int, step int, t *tensor.Tensor) {
	payload := wire.EncodeTensor(kind, wire.NoDev, int32(step), t).Payload
	for _, d := range devs {
		r.byDev[d].out.Enqueue(&wire.Frame{Kind: kind, Dev: int32(d), Step: int32(step), Payload: payload})
	}
}

func (r *run) fail(err error) {
	r.failOnce.Do(func() {
		r.firstErr = err
		close(r.failed)
	})
}

func (r *run) teardown() {
	for _, p := range r.peers {
		p.out.Close()
		p.conn.Close()
	}
}

// handle processes one inbound frame on the owning peer's reader
// goroutine. Payload decoding — the hub's hottest work — happens here,
// outside the session lock, so readers for different workers decode
// concurrently; only the gather bookkeeping, reductions, and counters
// run under r.mu (r.places is immutable once the readers start).
func (r *run) handle(p *peerConn, f *wire.Frame) error {
	dev := int(f.Dev)
	place, ok := r.places[dev]
	if !ok && f.Kind != wire.KindHello {
		return fmt.Errorf("cluster: worker %s sent %v for unknown device %d", p.addr, f.Kind, f.Dev)
	}
	step := int(f.Step)
	switch f.Kind {
	case wire.KindHello:
		return nil // late hello: harmless
	case wire.KindOutput:
		if place.gi >= len(r.plan.Groups)-1 {
			return fmt.Errorf("cluster: last group relayed an output for step %d", step)
		}
		if r.plan.Groups[place.gi].Split() == 1 {
			// Unsplit group: the shard IS the full batch. Forward the
			// encoded payload verbatim — decoding and re-encoding it here
			// would produce identical bytes (validation happens at the
			// receiving worker's decode).
			for _, d := range r.plan.Groups[place.gi+1].Devices {
				r.byDev[d].out.Enqueue(&wire.Frame{Kind: wire.KindInput,
					Dev: int32(d), Step: f.Step, Payload: f.Payload})
			}
			return nil
		}
		t, err := wire.DecodeTensor(f)
		if err != nil {
			return err
		}
		return r.onOutput(place, step, t)
	case wire.KindGrads:
		lists, err := wire.DecodeTensors(f)
		if err != nil {
			return err
		}
		return r.onGrads(place, step, lists)
	case wire.KindStepDone:
		r.mu.Lock()
		defer r.mu.Unlock()
		r.barrier[step]++
		if r.barrier[step] == r.nDev {
			delete(r.barrier, step)
			for _, peer := range r.peers {
				peer.out.Enqueue(wire.Control(wire.KindStepGo, wire.NoDev, f.Step))
			}
		}
		return nil
	case wire.KindLosses:
		vals, err := wire.DecodeLosses(f)
		if err != nil {
			return err
		}
		return r.onLosses(place, step, vals)
	case wire.KindFinalParams:
		params, err := wire.DecodeTensors(f)
		if err != nil {
			return err
		}
		return r.onFinalParams(place, params)
	case wire.KindDone:
		r.mu.Lock()
		defer r.mu.Unlock()
		r.done++
		if r.done == r.nDev {
			close(r.finished)
		}
		return nil
	default:
		return fmt.Errorf("cluster: worker %s sent unexpected %v frame", p.addr, f.Kind)
	}
}

// onOutput collects a split group's boundary-activation shards (the
// k == 1 case forwards payloads directly in handle) and, once every
// member's shard of the step arrived, assembles the full batch in rank
// order and relays it to each member of the next group.
func (r *run) onOutput(place devPlace, step int, t *tensor.Tensor) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	k := r.plan.Groups[place.gi].Split()
	st := r.outputs[place.gi]
	g := st[step]
	if g == nil {
		g = &gather{parts: make([]*tensor.Tensor, k)}
		st[step] = g
	}
	if g.parts[place.j] != nil {
		return fmt.Errorf("cluster: duplicate output from group %d rank %d step %d", place.gi, place.j, step)
	}
	g.parts[place.j] = t
	g.have++
	if g.have < k {
		return nil
	}
	delete(st, step)
	shape := append([]int(nil), g.parts[0].Shape()...)
	shape[0] *= k
	full := tensor.New(shape...)
	per := g.parts[0].Numel()
	for j, part := range g.parts {
		if part.Numel() != per {
			return fmt.Errorf("cluster: group %d step %d shard sizes differ", place.gi, step)
		}
		copy(full.Data()[j*per:(j+1)*per], part.Data())
	}
	r.broadcastTensor(wire.KindInput, r.plan.Groups[place.gi+1].Devices, step, full)
	return nil
}

// onGrads collects a split group's gradient lists and, once complete,
// performs the deterministic all-reduce — sum over member ranks 0..k-1,
// scale by 1/k, exactly the in-process evaluation order — and returns the
// mean to every member.
func (r *run) onGrads(place devPlace, step int, lists []*tensor.Tensor) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	k := r.plan.Groups[place.gi].Split()
	if k == 1 {
		return fmt.Errorf("cluster: gradient frame from unsplit group %d", place.gi)
	}
	st := r.grads[place.gi]
	g := st[step]
	if g == nil {
		g = &gatherLists{parts: make([][]*tensor.Tensor, k)}
		st[step] = g
	}
	if g.parts[place.j] != nil {
		return fmt.Errorf("cluster: duplicate gradients from group %d rank %d step %d", place.gi, place.j, step)
	}
	g.parts[place.j] = lists
	g.have++
	if g.have < k {
		return nil
	}
	delete(st, step)
	n := len(g.parts[0])
	for rk, l := range g.parts {
		if len(l) != n {
			return fmt.Errorf("cluster: group %d step %d gradient counts differ", place.gi, step)
		}
		for pi, t := range l {
			if !t.SameShape(g.parts[0][pi]) {
				return fmt.Errorf("cluster: group %d step %d rank %d gradient %d shape %v, rank 0 has %v",
					place.gi, step, rk, pi, t.Shape(), g.parts[0][pi].Shape())
			}
		}
	}
	inv := 1 / float32(k)
	reduced := make([]*tensor.Tensor, n)
	for pi := 0; pi < n; pi++ {
		sum := tensor.New(g.parts[0][pi].Shape()...)
		for rk := 0; rk < k; rk++ {
			tensor.AddInto(sum, g.parts[rk][pi])
		}
		tensor.ScaleInPlace(sum, inv)
		reduced[pi] = sum
	}
	payload := wire.EncodeTensors(wire.KindGradsReduced, wire.NoDev, int32(step), reduced).Payload
	for _, d := range r.plan.Groups[place.gi].Devices {
		r.byDev[d].out.Enqueue(&wire.Frame{Kind: wire.KindGradsReduced,
			Dev: int32(d), Step: int32(step), Payload: payload})
	}
	return nil
}

// onLosses records a member's per-block losses and releases a pipeline
// credit when the whole first group finishes a step.
func (r *run) onLosses(place devPlace, step int, vals []float64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	nbg := len(r.plan.Groups[place.gi].Blocks)
	if len(vals) != nbg {
		return fmt.Errorf("cluster: group %d rank %d reported %d losses, want %d", place.gi, place.j, len(vals), nbg)
	}
	if step < 0 || step >= r.steps {
		return fmt.Errorf("cluster: loss report for step %d of %d", step, r.steps)
	}
	for bi, v := range vals {
		r.losses[place.gi][place.j*nbg+bi][step] = v
	}
	if place.gi == 0 {
		r.g0done[step]++
		if r.g0done[step] == r.plan.Groups[0].Split() {
			delete(r.g0done, step)
			select {
			case r.credits <- struct{}{}:
			default:
			}
		}
	}
	return nil
}

// onFinalParams installs a group leader's trained student parameters
// into the coordinator's workbench.
func (r *run) onFinalParams(place devPlace, params []*tensor.Tensor) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if place.j != 0 {
		return fmt.Errorf("cluster: final params from non-leader rank %d of group %d", place.j, place.gi)
	}
	var dst []*tensor.Tensor
	for _, b := range r.plan.Groups[place.gi].Blocks {
		for _, p := range r.workb.Pairs[b].Student.Params() {
			dst = append(dst, p.Value)
		}
	}
	if len(params) != len(dst) {
		return fmt.Errorf("cluster: group %d returned %d trained params, workbench wants %d", place.gi, len(params), len(dst))
	}
	for i, t := range params {
		if !t.SameShape(dst[i]) {
			return fmt.Errorf("cluster: group %d trained param %d shape %v, want %v", place.gi, i, t.Shape(), dst[i].Shape())
		}
		dst[i].CopyFrom(t)
	}
	return nil
}

// result merges the per-member loss rows into the per-block trajectory,
// through the same helper (and therefore the same float64 evaluation
// order) as engine.RunPipelined.
func (r *run) result() engine.Result {
	res := engine.Result{Loss: make([][]float64, r.nb)}
	for gi, g := range r.plan.Groups {
		merged := engine.MergeGroupLosses(r.losses[gi], len(g.Blocks), g.Split(), r.steps)
		for bi, b := range g.Blocks {
			res.Loss[b] = merged[bi]
		}
	}
	return res
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}
