package cluster

import (
	"path/filepath"
	"strings"
	"testing"
	"time"

	"pipebd/internal/cluster/ledger"
	"pipebd/internal/cluster/transport"
	"pipebd/internal/cluster/wire"
	"pipebd/internal/distill"
)

// expectTestLedger writes a minimal valid ledger for a hybrid-plan ring
// run, returning its directory. Only the manifest matters: every case
// below must fail validation before a single worker is dialed.
func expectTestLedger(t *testing.T, steps int) string {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "ledger")
	w := distill.NewTinyWorkbench(distill.DefaultTinyConfig())
	led, err := ledger.Create(dir, &ledger.Manifest{
		Assign: wire.Assign{
			Plan: hybridPlan(),
			Spec: TinySpec(distill.DefaultTinyConfig()),
			Run: wire.RunConfig{LR: 0.05, Momentum: 0.9, Steps: steps,
				Topology: "ring", Snap: wire.SnapshotPolicy{Interval: 1}},
			Snapshot: CaptureSnapshot(w),
		},
		Addrs:   []string{"127.0.0.1:1"},
		Batches: tinyBatches(steps, 6),
	})
	if err != nil {
		t.Fatalf("creating expectation-test ledger: %v", err)
	}
	led.Close()
	return dir
}

// TestResumeExpectationMismatches is the satellite mismatch matrix: a
// caller resuming with explicit expectations about the run (plan name,
// topology, step count, model spec) must get a clear diagnostic when the
// ledger holds a different run, instead of silently training it.
func TestResumeExpectationMismatches(t *testing.T) {
	const steps = 4
	dir := expectTestLedger(t, steps)
	wrongSpec := TinySpec(distill.DefaultTinyConfig())
	wrongSpec.Seed++
	cases := []struct {
		name   string
		expect ResumeExpectation
		want   string
	}{
		{"plan", ResumeExpectation{PlanName: "tr"}, `holds plan "hybrid"`},
		{"topology", ResumeExpectation{Topology: "hub"}, "holds a ring-topology run, not hub"},
		{"steps", ResumeExpectation{Steps: steps + 3}, "holds a 4-step run, not 7"},
		{"spec", ResumeExpectation{Spec: &wrongSpec}, "holds model"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := ResumeRun(transport.NewLoopback(), dir, ResumeConfig{Expect: &tc.expect})
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("expectation %+v: got %v, want error containing %q", tc.expect, err, tc.want)
			}
			if err != nil && !strings.Contains(err.Error(), "resume inherits") {
				t.Fatalf("mismatch diagnostic should explain that resume inherits from the manifest: %v", err)
			}
		})
	}

	// Matching expectations pass validation: the resume proceeds to dial
	// the (dead) manifest address and fails there instead — proving the
	// gate, not the network, decided the cases above.
	good := ResumeExpectation{PlanName: "hybrid", Topology: "ring", Steps: steps,
		Spec: func() *wire.ModelSpec { s := TinySpec(distill.DefaultTinyConfig()); return &s }()}
	_, _, err := ResumeRun(transport.NewLoopback(), dir,
		ResumeConfig{Expect: &good, JoinTimeout: 200 * time.Millisecond})
	if err == nil {
		t.Fatal("resume against a dead worker address should fail after validation")
	}
	if strings.Contains(err.Error(), "resume inherits") {
		t.Fatalf("matching expectations must not trip validation: %v", err)
	}
}

// TestResumeRejectsInconsistentManifest: a manifest whose plan cannot
// drive its own seed snapshot (wrong block count) is corrupt provenance,
// not an operational mismatch — resume refuses it up front.
func TestResumeRejectsInconsistentManifest(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ledger")
	w := distill.NewTinyWorkbench(distill.DefaultTinyConfig())
	bad := hybridPlan()
	bad.Groups[1].Blocks = []int{2} // plan now covers 3 of the snapshot's 4 blocks
	led, err := ledger.Create(dir, &ledger.Manifest{
		Assign: wire.Assign{
			Plan:     bad,
			Spec:     TinySpec(distill.DefaultTinyConfig()),
			Run:      wire.RunConfig{LR: 0.05, Momentum: 0.9, Steps: 3, Topology: "ring"},
			Snapshot: CaptureSnapshot(w),
		},
		Addrs:   []string{"127.0.0.1:1"},
		Batches: tinyBatches(3, 6),
	})
	if err != nil {
		t.Fatalf("creating inconsistent-manifest ledger: %v", err)
	}
	led.Close()
	_, _, err = ResumeRun(transport.NewLoopback(), dir, ResumeConfig{})
	if err == nil || !strings.Contains(err.Error(), "does not fit its own seed snapshot") {
		t.Fatalf("inconsistent manifest: got %v, want self-consistency refusal", err)
	}
}
