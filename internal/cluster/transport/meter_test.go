package transport

import (
	"sync"
	"testing"

	"pipebd/internal/cluster/wire"
)

// TestMeterCountsDialSideTraffic: a metered dialer's totals cover both
// directions of its connections with exact byte accounting (16-byte
// header + payload per frame), and the accept side stays unmetered.
func TestMeterCountsDialSideTraffic(t *testing.T) {
	inner := NewLoopback()
	m := NewMeter(inner)
	lis, err := inner.Listen("")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer lis.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		conn, err := lis.Accept()
		if err != nil {
			t.Errorf("accept: %v", err)
			return
		}
		defer conn.Close()
		for {
			f, err := conn.Recv()
			if err != nil {
				return
			}
			_ = conn.Send(f) // echo
		}
	}()

	conn, err := m.Dial(lis.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	payload := []byte{1, 2, 3, 4, 5}
	for i := 0; i < 3; i++ {
		if err := conn.Send(&wire.Frame{Kind: wire.KindHello, Dev: wire.NoDev, Step: wire.NoStep, Payload: payload}); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
		if _, err := conn.Recv(); err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
	}
	conn.Close()
	wg.Wait()

	got := m.Totals()
	wantBytes := int64(3 * (16 + len(payload)))
	if got.SentBytes != wantBytes || got.RecvBytes != wantBytes {
		t.Fatalf("byte totals %+v, want %d each way", got, wantBytes)
	}
	if got.SentFrames != 3 || got.RecvFrames != 3 {
		t.Fatalf("frame totals %+v, want 3 each way", got)
	}
	if got.Bytes() != 2*wantBytes {
		t.Fatalf("Bytes() = %d, want %d", got.Bytes(), 2*wantBytes)
	}

	m.Reset()
	if tot := m.Totals(); tot.Bytes() != 0 || tot.SentFrames != 0 || tot.RecvFrames != 0 {
		t.Fatalf("Reset left %+v", tot)
	}
}
