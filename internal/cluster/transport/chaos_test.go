package transport

import (
	"errors"
	"io"
	"reflect"
	"sync"
	"testing"
	"time"

	"pipebd/internal/cluster/wire"
	"pipebd/internal/tensor"
)

// chaosPair dials through a Chaos wrapper over loopback and returns both
// ends plus a cleanup-registered listener.
func chaosPair(t *testing.T, faults ...Fault) (client, server Conn) {
	t.Helper()
	inner := NewLoopback()
	lis, err := inner.Listen("")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	t.Cleanup(func() { lis.Close() })
	accepted := make(chan Conn, 1)
	go func() {
		c, err := lis.Accept()
		if err != nil {
			t.Errorf("Accept: %v", err)
			return
		}
		accepted <- c
	}()
	c, err := NewChaos(inner, faults...).Dial(lis.Addr())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	return c, <-accepted
}

// TestChaosKillOnSend: the fated frame is lost, the op errors with
// ErrChaos, and the peer observes a broken stream. Frames before the
// trigger pass untouched.
func TestChaosKillOnSend(t *testing.T) {
	client, server := chaosPair(t, Fault{
		Trigger: Trigger{Conn: 0, Op: OpSend, Kind: wire.KindLosses, Step: 2, Count: 1},
		Action:  ActKill,
	})
	for s := int32(0); s < 2; s++ {
		if err := client.Send(wire.EncodeLosses(0, s, []float64{1})); err != nil {
			t.Fatalf("pre-fault send %d: %v", s, err)
		}
	}
	// A different kind at the fated step passes: triggers match on content.
	if err := client.Send(wire.Control(wire.KindStepDone, 0, 2)); err != nil {
		t.Fatalf("non-matching kind was faulted: %v", err)
	}
	err := client.Send(wire.EncodeLosses(0, 2, []float64{1}))
	if !errors.Is(err, ErrChaos) {
		t.Fatalf("fated send: got %v, want ErrChaos", err)
	}
	// Later ops fail too.
	if err := client.Send(wire.Control(wire.KindDone, 0, 3)); !errors.Is(err, ErrChaos) {
		t.Fatalf("post-kill send: got %v, want ErrChaos", err)
	}
	// The peer drains the 3 delivered frames, then hits EOF — the fated
	// frame never crossed.
	for i := 0; i < 3; i++ {
		if _, err := server.Recv(); err != nil {
			t.Fatalf("peer drain %d: %v", i, err)
		}
	}
	if _, err := server.Recv(); err != io.EOF {
		t.Fatalf("peer after kill: got %v, want io.EOF", err)
	}
}

// TestChaosKillOnRecv: the frame that would have been delivered is
// dropped and the reader sees ErrChaos.
func TestChaosKillOnRecv(t *testing.T) {
	client, server := chaosPair(t, Fault{
		Trigger: Trigger{Conn: 0, Op: OpRecv, Kind: wire.KindStepGo, Step: AnyStep, Count: 2},
		Action:  ActKill,
	})
	for s := int32(0); s < 3; s++ {
		if err := server.Send(wire.Control(wire.KindStepGo, 0, s)); err != nil {
			t.Fatalf("server send %d: %v", s, err)
		}
	}
	if f, err := client.Recv(); err != nil || f.Step != 0 {
		t.Fatalf("first recv: %+v, %v", f, err)
	}
	if _, err := client.Recv(); !errors.Is(err, ErrChaos) {
		t.Fatalf("second recv: got %v, want ErrChaos", err)
	}
	if _, err := client.Recv(); !errors.Is(err, ErrChaos) {
		t.Fatalf("post-kill recv: got %v, want ErrChaos", err)
	}
}

// TestChaosDelay: ActDelay injects latency but loses nothing.
func TestChaosDelay(t *testing.T) {
	client, server := chaosPair(t, Fault{
		Trigger: Trigger{Conn: 0, Op: OpSend, Kind: wire.KindInput, Step: AnyStep, Count: 1},
		Action:  ActDelay, Delay: 30 * time.Millisecond,
	})
	start := time.Now()
	if err := client.Send(wire.EncodeTensor(wire.KindInput, 0, 0, tensor.Ones(2, 2))); err != nil {
		t.Fatalf("delayed send: %v", err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("send returned after %v, want >= 30ms", d)
	}
	if f, err := server.Recv(); err != nil || f.Kind != wire.KindInput {
		t.Fatalf("delayed frame lost: %+v, %v", f, err)
	}
}

// TestChaosTruncate: the peer receives a structurally broken frame (the
// payload no longer decodes) and the sender's connection dies — a crash
// mid-write.
func TestChaosTruncate(t *testing.T) {
	client, server := chaosPair(t, Fault{
		Trigger: Trigger{Conn: 0, Op: OpSend, Kind: wire.KindInput, Step: AnyStep, Count: 1},
		Action:  ActTruncate,
	})
	err := client.Send(wire.EncodeTensor(wire.KindInput, 0, 0, tensor.Ones(4, 4)))
	if !errors.Is(err, ErrChaos) {
		t.Fatalf("truncated send: got %v, want ErrChaos", err)
	}
	f, err := server.Recv()
	if err != nil {
		t.Fatalf("peer should receive the mangled frame: %v", err)
	}
	if _, err := wire.DecodeTensor(f); err == nil {
		t.Fatal("mangled payload decoded successfully")
	}
	if _, err := server.Recv(); err != io.EOF {
		t.Fatalf("peer after truncate: got %v, want io.EOF", err)
	}
}

// TestChaosConnSelection: faults arm by dial order; other connections are
// untouched.
func TestChaosConnSelection(t *testing.T) {
	inner := NewLoopback()
	lis, err := inner.Listen("")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer lis.Close()
	var mu sync.Mutex
	var servers []Conn
	go func() {
		for {
			c, err := lis.Accept()
			if err != nil {
				return
			}
			mu.Lock()
			servers = append(servers, c)
			mu.Unlock()
		}
	}()
	net := NewChaos(inner, Fault{
		Trigger: Trigger{Conn: 1, Op: OpSend, Step: AnyStep, Count: 1},
		Action:  ActKill,
	})
	c0, err := net.Dial(lis.Addr())
	if err != nil {
		t.Fatalf("dial 0: %v", err)
	}
	c1, err := net.Dial(lis.Addr())
	if err != nil {
		t.Fatalf("dial 1: %v", err)
	}
	if err := c0.Send(wire.Control(wire.KindHello, wire.NoDev, wire.NoStep)); err != nil {
		t.Fatalf("conn 0 was faulted: %v", err)
	}
	if err := c1.Send(wire.Control(wire.KindHello, wire.NoDev, wire.NoStep)); !errors.Is(err, ErrChaos) {
		t.Fatalf("conn 1 send: got %v, want ErrChaos", err)
	}
	c0.Close()
	c1.Close()
}

// TestChaosUnfired: faults that never matched — aimed at a connection
// that was never dialed, or at content that never crossed — are
// reported, so a chaos self-test can detect that it tested nothing.
func TestChaosUnfired(t *testing.T) {
	fired := Fault{Trigger: Trigger{Conn: 0, Op: OpSend, Kind: wire.KindHello, Step: wire.NoStep, Count: 1}, Action: ActKill}
	neverDialed := Fault{Trigger: Trigger{Conn: 5, Op: OpSend, Step: AnyStep, Count: 1}, Action: ActKill}
	inner := NewLoopback()
	lis, err := inner.Listen("")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer lis.Close()
	go func() {
		if c, err := lis.Accept(); err == nil {
			defer c.Close()
			c.Recv()
		}
	}()
	net := NewChaos(inner, fired, neverDialed)
	if got := len(net.Unfired()); got != 2 {
		t.Fatalf("before any traffic: %d unfired, want 2", got)
	}
	conn, err := net.Dial(lis.Addr())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer conn.Close()
	if err := conn.Send(wire.Control(wire.KindHello, wire.NoDev, wire.NoStep)); !errors.Is(err, ErrChaos) {
		t.Fatalf("armed kill did not fire: %v", err)
	}
	un := net.Unfired()
	if len(un) != 1 || un[0].Conn != 5 {
		t.Fatalf("after firing: unfired = %v, want only the conn-5 fault", un)
	}
}

// TestRandomKillsDeterministic: the generator is a pure function of its
// seed, and every fault it emits is a mid-run kill.
func TestRandomKillsDeterministic(t *testing.T) {
	a := RandomKills(7, 2, 6, 3)
	b := RandomKills(7, 2, 6, 3)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different schedules:\n%v\n%v", a, b)
	}
	c := RandomKills(8, 2, 6, 3)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical schedules")
	}
	for _, f := range a {
		if f.Action != ActKill || f.Kind != wire.KindLosses || f.Op != OpRecv {
			t.Fatalf("unexpected fault shape: %+v", f)
		}
		if f.Conn < 0 || f.Conn >= 2 || f.Step < 0 || f.Step >= 6 {
			t.Fatalf("fault outside run bounds: %+v", f)
		}
	}
}

// TestChaosFlapAllowsRedial: a flap kills the connection like a kill,
// but dialing the same address again succeeds immediately — the fault a
// resumable link absorbs by reconnect-and-replay.
func TestChaosFlapAllowsRedial(t *testing.T) {
	inner := NewLoopback()
	lis, err := inner.Listen("")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer lis.Close()
	go func() {
		for {
			c, err := lis.Accept()
			if err != nil {
				return
			}
			go func(c Conn) {
				for {
					if _, err := c.Recv(); err != nil {
						return
					}
				}
			}(c)
		}
	}()
	net := NewChaos(inner, Fault{
		Trigger: Trigger{Conn: 0, Op: OpSend, Kind: wire.KindLosses, Step: 1, Count: 1},
		Action:  ActFlap,
	})
	conn, err := net.Dial(lis.Addr())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	if err := conn.Send(wire.EncodeLosses(0, 0, []float64{1})); err != nil {
		t.Fatalf("pre-flap send: %v", err)
	}
	if err := conn.Send(wire.EncodeLosses(0, 1, []float64{1})); !errors.Is(err, ErrChaos) {
		t.Fatalf("flap send: got %v, want ErrChaos", err)
	}
	redialed, err := net.Dial(lis.Addr())
	if err != nil {
		t.Fatalf("redial after flap: %v", err)
	}
	defer redialed.Close()
	if err := redialed.Send(wire.EncodeLosses(0, 1, []float64{1})); err != nil {
		t.Fatalf("send on redialed conn: %v", err)
	}
	if n := len(net.Unfired()); n != 0 {
		t.Fatalf("%d faults unfired; the flap did not re-arm on the new conn, as intended", n)
	}
}

// TestChaosPartitionHeals: a partition kills the connection AND
// blackholes the address for the fault's duration; dialing fails until
// the partition heals, then succeeds.
func TestChaosPartitionHeals(t *testing.T) {
	inner := NewLoopback()
	lis, err := inner.Listen("")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer lis.Close()
	go func() {
		for {
			c, err := lis.Accept()
			if err != nil {
				return
			}
			go func(c Conn) {
				for {
					if _, err := c.Recv(); err != nil {
						return
					}
				}
			}(c)
		}
	}()
	net := NewChaos(inner, Fault{
		Trigger: Trigger{Conn: 0, Op: OpSend, Kind: wire.KindLosses, Step: 0, Count: 1},
		Action:  ActPartition,
		Delay:   60 * time.Millisecond,
	})
	conn, err := net.Dial(lis.Addr())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	if err := conn.Send(wire.EncodeLosses(0, 0, []float64{1})); !errors.Is(err, ErrChaos) {
		t.Fatalf("partition send: got %v, want ErrChaos", err)
	}
	if _, err := net.Dial(lis.Addr()); !errors.Is(err, ErrChaos) {
		t.Fatalf("dial inside partition: got %v, want ErrChaos", err)
	}
	time.Sleep(80 * time.Millisecond)
	healed, err := net.Dial(lis.Addr())
	if err != nil {
		t.Fatalf("dial after heal: %v", err)
	}
	healed.Close()
}

// TestChaosPartitionPersistent: Delay <= 0 never heals — the degrade
// tier's scenario.
func TestChaosPartitionPersistent(t *testing.T) {
	inner := NewLoopback()
	lis, err := inner.Listen("")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer lis.Close()
	go func() {
		for {
			c, err := lis.Accept()
			if err != nil {
				return
			}
			c.Close()
		}
	}()
	net := NewChaos(inner, Fault{
		Trigger: Trigger{Conn: 0, Op: OpSend, Step: AnyStep, Count: 1},
		Action:  ActPartition,
	})
	conn, err := net.Dial(lis.Addr())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	if err := conn.Send(wire.Control(wire.KindHello, wire.NoDev, wire.NoStep)); !errors.Is(err, ErrChaos) {
		t.Fatalf("partition send: got %v, want ErrChaos", err)
	}
	time.Sleep(20 * time.Millisecond)
	if _, err := net.Dial(lis.Addr()); !errors.Is(err, ErrChaos) {
		t.Fatalf("dial into persistent partition: got %v, want ErrChaos", err)
	}
}

// TestChaosSpikeWindow: the matched frame and everything after it inside
// the window are delayed; frames after the window pass at full speed.
func TestChaosSpikeWindow(t *testing.T) {
	client, server := chaosPair(t, Fault{
		Trigger: Trigger{Conn: 0, Op: OpSend, Kind: wire.KindLosses, Step: 0, Count: 1},
		Action:  ActSpike,
		Delay:   15 * time.Millisecond,
		Window:  200 * time.Millisecond,
	})
	defer client.Close()
	defer server.Close()
	start := time.Now()
	for s := int32(0); s < 3; s++ {
		if err := client.Send(wire.EncodeLosses(0, s, []float64{1})); err != nil {
			t.Fatalf("send %d: %v", s, err)
		}
	}
	if elapsed := time.Since(start); elapsed < 40*time.Millisecond {
		t.Fatalf("3 frames inside the spike window took only %v, want >= 45ms of injected latency", elapsed)
	}
	for s := int32(0); s < 3; s++ {
		if _, err := server.Recv(); err != nil {
			t.Fatalf("recv %d: %v", s, err)
		}
	}
}

// TestRandomFlapsDeterministic: the flap generator is seed-pure and
// every fault is a mid-run flap.
func TestRandomFlapsDeterministic(t *testing.T) {
	a := RandomFlaps(7, 2, 6, 3)
	b := RandomFlaps(7, 2, 6, 3)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different schedules:\n%v\n%v", a, b)
	}
	for _, f := range a {
		if f.Action != ActFlap || f.Kind != wire.KindLosses || f.Op != OpRecv {
			t.Fatalf("unexpected fault shape: %+v", f)
		}
	}
}
