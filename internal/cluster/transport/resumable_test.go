package transport

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pipebd/internal/cluster/wire"
)

// resumableHarness wires two Resumables over a loopback listener the way
// the cluster does: the dialer side owns redial with a SessionResume
// handshake, the acceptor side adopts redialed connections.
type resumableHarness struct {
	a, b *Resumable // a dials, b accepts
	lis  Listener
}

func newResumableHarness(t *testing.T, policy RetryPolicy, aOpts, bOpts ResumableOptions) *resumableHarness {
	t.Helper()
	net := NewLoopback()
	lis, err := net.Listen("")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	accepted := make(chan Conn, 1)
	go func() {
		c, err := lis.Accept()
		if err != nil {
			return
		}
		accepted <- c
	}()
	rawA, err := net.Dial(lis.Addr())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	rawB := <-accepted

	h := &resumableHarness{lis: lis}
	aOpts.Redial = func(recvd int64) (Conn, int64, error) {
		c, err := net.Dial(lis.Addr())
		if err != nil {
			return nil, 0, err
		}
		if err := c.Send(wire.EncodeSessionResume(wire.SessionResume{Session: 1, Recvd: recvd})); err != nil {
			c.Close()
			return nil, 0, err
		}
		f, err := c.Recv()
		if err != nil {
			c.Close()
			return nil, 0, err
		}
		sr, err := wire.DecodeSessionResume(f)
		if err != nil {
			c.Close()
			return nil, 0, err
		}
		return c, sr.Recvd, nil
	}
	h.a = NewResumable(rawA, policy, aOpts)
	h.b = NewResumable(rawB, policy, bOpts)

	// Adoption loop: every later accepted connection carries a resume
	// handshake and re-attaches to b.
	go func() {
		for {
			c, err := lis.Accept()
			if err != nil {
				return
			}
			go func(c Conn) {
				f, err := c.Recv()
				if err != nil {
					c.Close()
					return
				}
				sr, err := wire.DecodeSessionResume(f)
				if err != nil {
					c.Close()
					return
				}
				h.b.Adopt(c, sr.Recvd, func(recvd int64) *wire.Frame {
					return wire.EncodeSessionResume(wire.SessionResume{Session: 1, Recvd: recvd})
				})
			}(c)
		}
	}()
	t.Cleanup(func() {
		h.a.Close()
		h.b.Close()
		h.lis.Close()
	})
	return h
}

// breakLink closes the current underlying connection of r, simulating a
// transport fault; both sides observe a broken stream.
func breakLink(t *testing.T, r *Resumable) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		r.mu.Lock()
		c := r.conn
		r.mu.Unlock()
		if c != nil {
			c.Close()
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("breakLink: link never came back up")
		}
		time.Sleep(time.Millisecond)
	}
}

func seqFrame(i int) *wire.Frame {
	return wire.EncodeLosses(0, int32(i), []float64{float64(i)})
}

// TestResumableReplaysThroughBreaks: a bidirectional stream survives
// repeated connection loss bit-identically — every frame arrives exactly
// once, in order, on both sides.
func TestResumableReplaysThroughBreaks(t *testing.T) {
	var absorbs atomic.Int64
	h := newResumableHarness(t,
		RetryPolicy{Backoff: 2 * time.Millisecond, Budget: 5 * time.Second, AckEvery: 4},
		ResumableOptions{Name: "a", OnAbsorb: func(int) { absorbs.Add(1) }},
		ResumableOptions{Name: "b"})

	const n = 60
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	send := func(r *Resumable) {
		defer wg.Done()
		for i := 0; i < n; i++ {
			if err := r.Send(seqFrame(i)); err != nil {
				errs <- fmt.Errorf("send %d: %w", i, err)
				return
			}
			time.Sleep(time.Millisecond / 2)
		}
	}
	recv := func(r *Resumable, label string) {
		defer wg.Done()
		for i := 0; i < n; i++ {
			f, err := r.Recv()
			if err != nil {
				errs <- fmt.Errorf("%s recv %d: %w", label, i, err)
				return
			}
			if int(f.Step) != i {
				errs <- fmt.Errorf("%s got step %d, want %d", label, f.Step, i)
				return
			}
		}
	}
	wg.Add(4)
	go send(h.a)
	go send(h.b)
	go recv(h.a, "a")
	go recv(h.b, "b")

	for i := 0; i < 3; i++ {
		time.Sleep(8 * time.Millisecond)
		breakLink(t, h.a)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if absorbs.Load() == 0 {
		t.Error("no fault was absorbed despite forced breaks")
	}
}

// TestResumableDialerBudgetExhausted: when every redial fails, the
// dialer side turns terminal with ErrLinkDown within the budget, and
// the un-adopted acceptor side does the same.
func TestResumableDialerBudgetExhausted(t *testing.T) {
	h := newResumableHarness(t,
		RetryPolicy{Backoff: 2 * time.Millisecond, Budget: 80 * time.Millisecond, AckEvery: 4},
		ResumableOptions{Name: "a"}, ResumableOptions{Name: "b"})
	h.lis.Close() // all redials now fail
	breakLink(t, h.a)

	start := time.Now()
	if _, err := h.a.Recv(); !errors.Is(err, ErrLinkDown) {
		t.Fatalf("dialer Recv: got %v, want ErrLinkDown", err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("terminal error took %v", elapsed)
	}
	if err := h.a.Send(seqFrame(0)); !errors.Is(err, ErrLinkDown) {
		t.Fatalf("post-terminal Send: got %v, want ErrLinkDown", err)
	}
	if _, err := h.b.Recv(); !errors.Is(err, ErrLinkDown) {
		t.Fatalf("acceptor Recv: got %v, want ErrLinkDown", err)
	}
}

// TestResumableReconnecting: the down state is visible while absorption
// is in progress, and clears after adoption.
func TestResumableReconnecting(t *testing.T) {
	h := newResumableHarness(t,
		RetryPolicy{Backoff: 2 * time.Millisecond, Budget: 5 * time.Second, AckEvery: 4},
		ResumableOptions{Name: "a"}, ResumableOptions{Name: "b"})
	if h.a.Reconnecting() {
		t.Fatal("fresh link reports reconnecting")
	}
	if err := h.a.Send(seqFrame(0)); err != nil {
		t.Fatalf("send: %v", err)
	}
	if f, err := h.b.Recv(); err != nil || f.Step != 0 {
		t.Fatalf("recv: %v, %v", f, err)
	}
	breakLink(t, h.a)
	// The link heals on its own; once it does, the flag clears.
	deadline := time.Now().Add(5 * time.Second)
	for h.a.Reconnecting() || h.b.Reconnecting() {
		if time.Now().After(deadline) {
			t.Fatal("link never healed")
		}
		time.Sleep(time.Millisecond)
	}
	if err := h.a.Send(seqFrame(1)); err != nil {
		t.Fatalf("post-heal send: %v", err)
	}
	if f, err := h.b.Recv(); err != nil || f.Step != 1 {
		t.Fatalf("post-heal recv: %v, %v", f, err)
	}
}

// TestResumableRetire: after Retire a peer close is a plain terminal
// error, immediately — no reconnect, no ErrLinkDown, no budget wait.
func TestResumableRetire(t *testing.T) {
	h := newResumableHarness(t,
		RetryPolicy{Backoff: 2 * time.Millisecond, Budget: 10 * time.Second, AckEvery: 4},
		ResumableOptions{Name: "a"}, ResumableOptions{Name: "b"})
	h.b.Retire()
	start := time.Now()
	h.a.Close() // deliberate teardown: b sees EOF
	_, err := h.b.Recv()
	if err == nil || errors.Is(err, ErrLinkDown) {
		t.Fatalf("retired Recv: got %v, want a plain terminal error", err)
	}
	if !errors.Is(err, io.EOF) && !errors.Is(err, ErrClosed) {
		t.Fatalf("retired Recv: got %v, want the peer-close error", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("retired teardown took %v (waited for a budget?)", elapsed)
	}
}

// TestResumableAcksBoundReplay: with acks flowing, a break late in the
// stream replays only the unacked tail, not the whole history.
func TestResumableAcksBoundReplay(t *testing.T) {
	var replayed atomic.Int64
	h := newResumableHarness(t,
		RetryPolicy{Backoff: 2 * time.Millisecond, Budget: 5 * time.Second, AckEvery: 2},
		ResumableOptions{Name: "a", OnAbsorb: func(n int) { replayed.Add(int64(n)) }},
		ResumableOptions{Name: "b"})
	const n = 40
	for i := 0; i < n; i++ {
		if err := h.a.Send(seqFrame(i)); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
		if f, err := h.b.Recv(); err != nil || int(f.Step) != i {
			t.Fatalf("recv %d: %v, %v", i, f, err)
		}
	}
	// Give the last ack a moment to land, then break and heal.
	time.Sleep(20 * time.Millisecond)
	breakLink(t, h.a)
	if err := h.a.Send(seqFrame(n)); err != nil {
		t.Fatalf("post-break send: %v", err)
	}
	if f, err := h.b.Recv(); err != nil || int(f.Step) != n {
		t.Fatalf("post-break recv: %v, %v", f, err)
	}
	if r := replayed.Load(); r > 8 {
		t.Fatalf("replayed %d frames; acks should have trimmed the buffer (want <= 8)", r)
	}
}
