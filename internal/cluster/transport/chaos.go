package transport

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"pipebd/internal/cluster/wire"
)

// ErrChaos is wrapped by every failure the Chaos network injects, so
// tests and recovery code can tell an injected fault from a real one.
var ErrChaos = errors.New("transport: chaos fault injected")

// Op selects which direction of a connection a chaos trigger watches.
type Op uint8

const (
	// OpSend matches frames written by the wrapped (dialing) side.
	OpSend Op = iota
	// OpRecv matches frames read by the wrapped (dialing) side.
	OpRecv
)

func (o Op) String() string {
	if o == OpSend {
		return "send"
	}
	return "recv"
}

// Action is what a fault does once its trigger fires.
type Action uint8

const (
	// ActKill closes the connection abruptly; the matched operation (and
	// every later one) fails, and the peer observes a broken stream. A
	// matched Recv drops the received frame, modeling a crash before
	// delivery.
	ActKill Action = iota
	// ActDelay sleeps for Fault.Delay before letting the operation
	// proceed — pure latency, no data loss.
	ActDelay
	// ActTruncate (send only) delivers a frame whose payload was cut in
	// half — the peer decodes a structurally broken message — and then
	// kills the connection, modeling a crash mid-write.
	ActTruncate
	// ActFlap closes the connection exactly like ActKill but models a
	// transient link fault rather than a process crash: redialing the
	// same address succeeds immediately, so a resumable link absorbs the
	// flap by reconnect-and-replay. (ActKill semantics are untouched;
	// the distinct action exists so schedules and logs say what they
	// mean.)
	ActFlap
	// ActPartition closes the connection and blackholes its dialed
	// address for Fault.Delay: every Chaos.Dial of that address fails
	// until the partition heals (Delay <= 0 never heals). Models a
	// healing — or persistent — network partition in front of a
	// reconnecting link.
	ActPartition
	// ActSpike opens a latency window: the matched frame and every later
	// frame crossing this connection within Fault.Window sleep
	// Fault.Delay each — a congestion burst rather than a single slow
	// frame.
	ActSpike
)

func (a Action) String() string {
	switch a {
	case ActKill:
		return "kill"
	case ActDelay:
		return "delay"
	case ActFlap:
		return "flap"
	case ActPartition:
		return "partition"
	case ActSpike:
		return "spike"
	default:
		return "truncate"
	}
}

// AnyStep is the Trigger.Step wildcard. (wire.NoStep is a real step value
// carried by control frames, so the wildcard must be distinct from it.)
const AnyStep int32 = -1 << 30

// AnyConn is the Trigger.Conn wildcard: the fault arms on every dialed
// connection and fires on the first match anywhere. Peer-mesh tests need
// it — worker-to-worker dial order is scheduling-dependent, so a fault
// aimed at "the first ring segment of step S" cannot name a connection
// index.
const AnyConn = -1

// Trigger selects the frame a fault fires on. A frame matches when it
// crosses the Conn-th dialed connection (or any connection, for AnyConn)
// in direction Op with the given Kind and Step; Count picks the Nth match
// (1-based, <= 1 meaning the first). Kind 0 and Step AnyStep are
// wildcards. Counts are global across connections for AnyConn faults.
//
// Because triggers key on protocol content (kind + step) rather than
// wall-clock time, a schedule is reproducible: the same seed or literal
// schedule injects the same fault at the same protocol position on every
// run, regardless of machine speed.
type Trigger struct {
	Conn  int
	Op    Op
	Kind  wire.Kind
	Step  int32
	Count int
}

// Fault is one scheduled injection.
type Fault struct {
	Trigger
	Action Action
	// Delay is the sleep of ActDelay and ActSpike, and the partition
	// duration of ActPartition (<= 0 partitions forever).
	Delay time.Duration
	// Window is the duration of an ActSpike latency burst after its
	// trigger fires.
	Window time.Duration
	// Repeat re-arms the fault after it fires, so it injects on every
	// matching frame from the Count-th on — a persistent perturbation
	// (e.g. a permanently slow link) rather than a one-shot event. Only
	// meaningful for ActDelay; a repeated kill is still terminal.
	Repeat bool
}

func (f Fault) String() string {
	kind := "any-kind"
	if f.Kind != 0 {
		kind = f.Kind.String()
	}
	step := "any-step"
	if f.Step != AnyStep {
		step = fmt.Sprintf("step %d", f.Step)
	}
	conn := fmt.Sprintf("conn %d", f.Conn)
	if f.Conn == AnyConn {
		conn = "any-conn"
	}
	return fmt.Sprintf("%v %s on %v of %s %s", f.Action, conn, f.Op, kind, step)
}

// Chaos wraps a Network and injects a deterministic schedule of faults
// into the connections it Dials (listeners pass through untouched, so
// workers can share the inner network). It is both the recovery driver in
// production-shaped tests — kill a worker's connection mid-run, assert
// the run still finishes bit-identically — and a reusable scenario
// generator via RandomKills.
type Chaos struct {
	inner Network
	// Logf, when set, receives one line per injected fault.
	Logf func(format string, args ...any)

	mu     sync.Mutex
	faults []*chaosFault
	dials  int
	// heal maps blackholed addresses (ActPartition) to when dialing them
	// works again; the zero time means the partition never heals.
	heal map[string]time.Time
}

type chaosFault struct {
	Fault
	matches int
	fired   bool
}

// NewChaos wraps inner with the given fault schedule.
func NewChaos(inner Network, schedule ...Fault) *Chaos {
	c := &Chaos{inner: inner, heal: make(map[string]time.Time)}
	for _, f := range schedule {
		c.faults = append(c.faults, &chaosFault{Fault: f})
	}
	return c
}

// RandomFlaps derives n transient link-flap faults from a seed, shaped
// like RandomKills: each closes a random dialed connection on receipt of
// a loss report for a random step. Under a resumable link every flap
// should be absorbed — reconnected and replayed — without consuming any
// restart budget.
func RandomFlaps(seed int64, conns, steps, n int) []Fault {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Fault, n)
	for i := range out {
		out[i] = Fault{
			Trigger: Trigger{Conn: rng.Intn(conns), Op: OpRecv,
				Kind: wire.KindLosses, Step: rng.Int31n(int32(steps)), Count: 1},
			Action: ActFlap,
		}
	}
	return out
}

// RandomKills derives n kill faults from a seed: each closes a random
// dialed connection (of the first conns) on receipt of a loss report for
// a random step in [0, steps). Loss frames flow from every device on
// every step, so a kill always lands mid-run — after join, before drain —
// which is the window recovery must handle.
func RandomKills(seed int64, conns, steps, n int) []Fault {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Fault, n)
	for i := range out {
		out[i] = Fault{
			Trigger: Trigger{Conn: rng.Intn(conns), Op: OpRecv,
				Kind: wire.KindLosses, Step: rng.Int31n(int32(steps)), Count: 1},
			Action: ActKill,
		}
	}
	return out
}

// Listen passes through to the wrapped network.
func (c *Chaos) Listen(addr string) (Listener, error) { return c.inner.Listen(addr) }

// Dial connects through the wrapped network and arms the faults scheduled
// for this connection (by dial order, 0-based). Dialing an address inside
// an unhealed partition fails with ErrChaos.
func (c *Chaos) Dial(addr string) (Conn, error) {
	c.mu.Lock()
	if until, ok := c.heal[addr]; ok {
		if until.IsZero() || time.Now().Before(until) {
			c.mu.Unlock()
			return nil, fmt.Errorf("%w: address %s partitioned", ErrChaos, addr)
		}
		delete(c.heal, addr) // healed
	}
	c.mu.Unlock()
	conn, err := c.inner.Dial(addr)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	idx := c.dials
	c.dials++
	var armed []*chaosFault
	for _, f := range c.faults {
		if f.Conn == idx || f.Conn == AnyConn {
			armed = append(armed, f)
		}
	}
	c.mu.Unlock()
	return &chaosConn{inner: conn, chaos: c, addr: addr, faults: armed}, nil
}

// Unfired returns the scheduled faults that have not fired (yet): a
// fault aimed at a connection that was never dialed, or whose trigger
// never matched. Self-tests should fail when a schedule did not fully
// fire — otherwise a mis-aimed kill silently degrades a chaos run into a
// fault-free one.
func (c *Chaos) Unfired() []Fault {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []Fault
	for _, f := range c.faults {
		if !f.fired {
			out = append(out, f.Fault)
		}
	}
	return out
}

func (c *Chaos) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

type chaosConn struct {
	inner  Conn
	chaos  *Chaos
	addr   string
	mu     sync.Mutex
	faults []*chaosFault
	killed bool
	// Active ActSpike window: frames crossing before spikeUntil sleep
	// spikeDelay each.
	spikeUntil time.Time
	spikeDelay time.Duration
}

// match reports the armed fault (if any) fired by a frame crossing in
// direction op, advancing per-fault match counts. Fault state lives under
// the Chaos-wide mutex, not the per-connection one: an AnyConn fault is
// shared by every dialed connection, and frames of the same kind and step
// can cross several of them concurrently (ring segments fan out), so
// firing must be serialized globally or one fault could kill two
// connections.
func (cc *chaosConn) match(op Op, f *wire.Frame) *chaosFault {
	if cc.dead() {
		return nil
	}
	cc.chaos.mu.Lock()
	defer cc.chaos.mu.Unlock()
	for _, fl := range cc.faults {
		if (fl.fired && !fl.Repeat) || fl.Op != op {
			continue
		}
		if fl.Kind != 0 && fl.Kind != f.Kind {
			continue
		}
		if fl.Step != AnyStep && fl.Step != f.Step {
			continue
		}
		fl.matches++
		want := fl.Count
		if want < 1 {
			want = 1
		}
		if fl.matches < want {
			continue
		}
		fl.fired = true
		switch fl.Action {
		case ActKill, ActTruncate, ActFlap, ActPartition:
			cc.mu.Lock()
			cc.killed = true
			cc.mu.Unlock()
		case ActSpike:
			cc.mu.Lock()
			cc.spikeUntil = time.Now().Add(fl.Window)
			cc.spikeDelay = fl.Delay
			cc.mu.Unlock()
		}
		if fl.Action == ActPartition {
			// chaos.mu is held: record the blackhole for Dial to honor.
			var until time.Time // zero: never heals
			if fl.Delay > 0 {
				until = time.Now().Add(fl.Delay)
			}
			cc.chaos.heal[cc.addr] = until
		}
		return fl
	}
	return nil
}

// spikePause sleeps if an ActSpike latency window is active.
func (cc *chaosConn) spikePause() {
	cc.mu.Lock()
	d := cc.spikeDelay
	active := !cc.spikeUntil.IsZero() && time.Now().Before(cc.spikeUntil)
	cc.mu.Unlock()
	if active {
		time.Sleep(d)
	}
}

func (cc *chaosConn) dead() bool {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return cc.killed
}

func (cc *chaosConn) Send(f *wire.Frame) error {
	if cc.dead() {
		return fmt.Errorf("%w: connection killed", ErrChaos)
	}
	fl := cc.match(OpSend, f)
	if fl == nil {
		cc.spikePause()
		return cc.inner.Send(f)
	}
	cc.chaos.logf("chaos: %v fired on %v frame (dev %d step %d)", fl.Fault, f.Kind, f.Dev, f.Step)
	switch fl.Action {
	case ActDelay:
		time.Sleep(fl.Delay)
		return cc.inner.Send(f)
	case ActSpike:
		time.Sleep(fl.Delay)
		return cc.inner.Send(f)
	case ActFlap:
		cc.inner.Close()
		return fmt.Errorf("%w: link flapped on send", ErrChaos)
	case ActPartition:
		cc.inner.Close()
		return fmt.Errorf("%w: link partitioned on send", ErrChaos)
	case ActTruncate:
		mangled := &wire.Frame{Kind: f.Kind, Dev: f.Dev, Step: f.Step,
			Payload: f.Payload[:len(f.Payload)/2]}
		_ = cc.inner.Send(mangled)
		cc.inner.Close()
		return fmt.Errorf("%w: frame truncated mid-write", ErrChaos)
	default: // ActKill: the frame is lost
		cc.inner.Close()
		return fmt.Errorf("%w: connection killed on send", ErrChaos)
	}
}

func (cc *chaosConn) Recv() (*wire.Frame, error) {
	if cc.dead() {
		return nil, fmt.Errorf("%w: connection killed", ErrChaos)
	}
	f, err := cc.inner.Recv()
	if err != nil {
		return nil, err
	}
	fl := cc.match(OpRecv, f)
	if fl == nil {
		cc.spikePause()
		return f, nil
	}
	cc.chaos.logf("chaos: %v fired on %v frame (dev %d step %d)", fl.Fault, f.Kind, f.Dev, f.Step)
	switch fl.Action {
	case ActDelay, ActSpike:
		time.Sleep(fl.Delay)
		return f, nil
	case ActFlap:
		// The received frame is dropped with the connection: a resumable
		// link must get it back via replay, never from this stream.
		cc.inner.Close()
		return nil, fmt.Errorf("%w: link flapped on recv", ErrChaos)
	case ActPartition:
		cc.inner.Close()
		return nil, fmt.Errorf("%w: link partitioned on recv", ErrChaos)
	}
	// ActKill (and ActTruncate, nonsensical on recv, treated as kill):
	// the received frame is dropped, as if the peer crashed before it
	// was delivered.
	cc.inner.Close()
	return nil, fmt.Errorf("%w: connection killed on recv", ErrChaos)
}

func (cc *chaosConn) Close() error { return cc.inner.Close() }

var (
	_ Network = (*Chaos)(nil)
	_ Conn    = (*chaosConn)(nil)
)
