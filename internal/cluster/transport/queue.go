package transport

import (
	"io"
	"sync"

	"pipebd/internal/cluster/wire"
)

// FrameQueue is an unbounded FIFO of frames with close semantics: Pop
// drains remaining frames after Close and then reports io.EOF. Unbounded
// on purpose — the cluster session layer guarantees progress by never
// blocking a sender, and bounds memory via the pipeline's flow-control
// window rather than the queue. Safe for concurrent use.
type FrameQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	frames []*wire.Frame
	closed bool
}

// NewFrameQueue returns an empty queue.
func NewFrameQueue() *FrameQueue {
	q := &FrameQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// Push appends a frame; it fails with io.ErrClosedPipe after Close.
func (q *FrameQueue) Push(f *wire.Frame) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return io.ErrClosedPipe
	}
	q.frames = append(q.frames, f)
	q.cond.Signal()
	return nil
}

// Pop blocks for the next frame; after Close it drains the backlog and
// then returns io.EOF.
func (q *FrameQueue) Pop() (*wire.Frame, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.frames) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.frames) == 0 {
		return nil, io.EOF
	}
	f := q.frames[0]
	q.frames[0] = nil
	q.frames = q.frames[1:]
	return f, nil
}

// Close marks the queue finished; concurrent and future Pops drain and
// then return io.EOF. Idempotent.
func (q *FrameQueue) Close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}
