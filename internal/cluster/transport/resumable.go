package transport

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"pipebd/internal/cluster/wire"
)

// ErrLinkDown marks a resumable link whose reconnect budget is
// exhausted: every redial attempt failed (or no adoption arrived) within
// the policy's budget. Callers classify it with errors.Is to tell a
// persistently dead link from a transient hiccup the layer absorbed.
var ErrLinkDown = errors.New("transport: link down (reconnect budget exhausted)")

// RetryPolicy governs how a Resumable absorbs connection loss: redial
// (or await adoption) with exponential backoff starting at Backoff,
// declare the link terminally down after Budget of downtime, and ack
// every AckEvery received frames so the far side can trim its replay
// buffer. The zero value of Backoff and AckEvery take defaults; Budget
// must be positive for absorption to be meaningful.
type RetryPolicy struct {
	Backoff  time.Duration
	Budget   time.Duration
	AckEvery int
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.Backoff <= 0 {
		p.Backoff = 10 * time.Millisecond
	}
	if p.Budget <= 0 {
		p.Budget = time.Second
	}
	if p.AckEvery <= 0 {
		p.AckEvery = 8
	}
	return p
}

// RedialFunc re-establishes a broken link: it dials the peer, performs
// the resume handshake carrying recvd (the local count of application
// frames received so far), and returns the fresh connection plus the
// peer's received count from the handshake echo. It is called from the
// reconnect goroutine; each invocation should bound its own blocking.
type RedialFunc func(recvd int64) (Conn, int64, error)

// Resumable wraps a Conn in a sequence-counted, ack-tracked stream that
// survives connection loss: both sides count the application frames they
// send and receive, the sender buffers frames the peer has not yet
// acknowledged, and after a break the resume handshake exchanges the two
// received counts so each side replays exactly the frames the other
// never saw — the stream delivered to callers is bit-identical to an
// unbroken one.
//
// The wrapper is installed after the initial handshake, so handshake
// frames live outside the counted stream; KindLinkAck frames are
// likewise consumed internally and never surface to callers. One side
// owns redial (the original dialer, via a RedialFunc); the other waits
// for the peer to redial and re-attaches the fresh connection with
// Adopt. Like the Conn it wraps, each direction must be driven by at
// most one goroutine.
type Resumable struct {
	policy   RetryPolicy
	redial   RedialFunc // nil on the accepting side
	name     string
	logf     func(format string, args ...any)
	onAbsorb func(replayed int)

	// sendMu serializes everything that writes to the current connection
	// in stream order: application sends, internal acks, and replay.
	// Lock order is always sendMu before mu.
	sendMu sync.Mutex

	mu      sync.Mutex
	cond    *sync.Cond
	conn    Conn  // nil while the link is down
	err     error // terminal; set at most once
	closed  bool
	closeCh chan struct{} // closed on Close or terminal error

	sent     int64         // application frames appended to the stream
	ackBase  int64         // frames the peer has confirmed receiving
	buf      []*wire.Frame // unacked outbound frames: buf[i] is frame ackBase+i
	recvd    int64         // application frames received
	sinceAck int           // received frames since the last ack sent
	retired  bool          // teardown expected: the next break is terminal

	downTimer *time.Timer // accepting side: terminal deadline while down
}

// ResumableOptions carries the optional wiring of a Resumable.
type ResumableOptions struct {
	// Redial makes this side the reconnect owner; nil waits for Adopt.
	Redial RedialFunc
	// Name labels the link in log lines ("dev 2<->1", "worker w0").
	Name string
	// Logf receives absorption progress lines; nil is silent.
	Logf func(format string, args ...any)
	// OnAbsorb fires after every successful reconnect with the number of
	// frames replayed (metrics hook).
	OnAbsorb func(replayed int)
}

// NewResumable wraps an established connection. Call it only after the
// link's initial handshake so both sides agree on where the counted
// stream begins.
func NewResumable(conn Conn, policy RetryPolicy, opts ResumableOptions) *Resumable {
	r := &Resumable{
		policy:   policy.withDefaults(),
		redial:   opts.Redial,
		name:     opts.Name,
		logf:     opts.Logf,
		onAbsorb: opts.OnAbsorb,
		conn:     conn,
		closeCh:  make(chan struct{}),
	}
	if r.name == "" {
		r.name = "link"
	}
	r.cond = sync.NewCond(&r.mu)
	return r
}

// Send appends one application frame to the stream. It never fails on a
// transient break — the frame is buffered and replayed after reconnect —
// and only returns an error once the link is terminally down or closed.
func (r *Resumable) Send(f *wire.Frame) error {
	r.sendMu.Lock()
	defer r.sendMu.Unlock()
	r.mu.Lock()
	if r.err != nil {
		err := r.err
		r.mu.Unlock()
		return err
	}
	if r.closed {
		r.mu.Unlock()
		return ErrClosed
	}
	r.buf = append(r.buf, f)
	r.sent++
	conn := r.conn
	r.mu.Unlock()
	if conn == nil {
		return nil // down: buffered for replay
	}
	if err := conn.Send(f); err != nil {
		r.linkBroke(conn, err)
	}
	return nil
}

// Recv returns the next application frame of the stream, blocking
// through reconnects. It fails only when the link is terminally down or
// the local side closed.
func (r *Resumable) Recv() (*wire.Frame, error) {
	for {
		r.mu.Lock()
		for r.conn == nil && r.err == nil && !r.closed {
			r.cond.Wait()
		}
		if r.err != nil {
			err := r.err
			r.mu.Unlock()
			return nil, err
		}
		if r.closed {
			r.mu.Unlock()
			return nil, ErrClosed
		}
		conn := r.conn
		r.mu.Unlock()
		f, err := conn.Recv()
		if err != nil {
			r.linkBroke(conn, err)
			continue
		}
		r.mu.Lock()
		if r.conn != conn {
			// The connection was replaced while this frame was in flight;
			// anything it carried past our reported high-water mark will be
			// replayed on the new connection, so drop it uncounted.
			r.mu.Unlock()
			continue
		}
		if f.Kind == wire.KindLinkAck {
			if acked, err := wire.DecodeLinkAck(f); err == nil {
				r.trimLocked(acked)
			}
			r.mu.Unlock()
			continue
		}
		r.recvd++
		r.sinceAck++
		needAck := r.sinceAck >= r.policy.AckEvery
		if needAck {
			r.sinceAck = 0
		}
		recvd := r.recvd
		r.mu.Unlock()
		if needAck {
			r.sendAck(recvd)
		}
		return f, nil
	}
}

// trimLocked drops buffered frames the peer confirmed receiving.
func (r *Resumable) trimLocked(acked int64) {
	drop := acked - r.ackBase
	if drop <= 0 || drop > int64(len(r.buf)) {
		return
	}
	rest := r.buf[drop:]
	r.buf = append(r.buf[:0:0], rest...) // reallocate so acked frames free
	r.ackBase = acked
}

// sendAck ships the cumulative received count; a failure here is just
// another link break.
func (r *Resumable) sendAck(recvd int64) {
	r.sendMu.Lock()
	defer r.sendMu.Unlock()
	r.mu.Lock()
	conn := r.conn
	r.mu.Unlock()
	if conn == nil {
		return // down: the resume handshake carries a fresher count anyway
	}
	if err := conn.Send(wire.EncodeLinkAck(recvd)); err != nil {
		r.linkBroke(conn, err)
	}
}

// linkBroke transitions the link into the down state (once per
// connection): the redial owner starts its reconnect loop, the accepting
// side arms the terminal deadline and waits for adoption.
func (r *Resumable) linkBroke(conn Conn, cause error) {
	r.mu.Lock()
	if r.closed || r.err != nil || r.conn != conn {
		r.mu.Unlock()
		return
	}
	r.conn = nil
	r.cond.Broadcast()
	if r.retired {
		r.mu.Unlock()
		conn.Close()
		r.die(cause)
		return
	}
	redial := r.redial
	if redial == nil && r.downTimer == nil {
		r.downTimer = time.AfterFunc(r.policy.Budget, func() {
			r.die(fmt.Errorf("transport: %s not re-adopted within %v (last error: %v): %w",
				r.name, r.policy.Budget, cause, ErrLinkDown))
		})
	}
	r.mu.Unlock()
	conn.Close()
	if r.logf != nil {
		r.logf("transport: %s lost (%v); absorbing", r.name, cause)
	}
	if redial != nil {
		go r.reconnectLoop(cause)
	}
}

// reconnectLoop redials with exponential backoff until the budget
// elapses, then declares the link terminally down.
func (r *Resumable) reconnectLoop(cause error) {
	deadline := time.Now().Add(r.policy.Budget)
	backoff := r.policy.Backoff
	for {
		r.mu.Lock()
		if r.closed || r.err != nil || r.conn != nil || r.retired {
			r.mu.Unlock()
			return
		}
		recvd := r.recvd
		redial := r.redial
		r.mu.Unlock()
		conn, peerRecvd, err := redial(recvd)
		if err == nil {
			if r.install(conn, peerRecvd, nil) {
				return
			}
			continue // raced with Close or a concurrent break
		}
		if !time.Now().Before(deadline) {
			r.die(fmt.Errorf("transport: %s reconnect budget %v exhausted (dial: %v; broke: %v): %w",
				r.name, r.policy.Budget, err, cause, ErrLinkDown))
			return
		}
		wait := backoff
		if remaining := time.Until(deadline); wait > remaining {
			wait = remaining
		}
		select {
		case <-time.After(wait):
		case <-r.closeCh:
			return
		}
		backoff *= 2
	}
}

// Adopt re-attaches a fresh connection on the accepting side: the peer
// redialed and its resume handshake reported peerRecvd application
// frames received. echo, when non-nil, builds the handshake reply from
// this side's own received count; it is sent on the raw connection
// before any replay, completing the handshake the dialer is waiting on.
func (r *Resumable) Adopt(conn Conn, peerRecvd int64, echo func(recvd int64) *wire.Frame) error {
	if r.install(conn, peerRecvd, echo) {
		return nil
	}
	r.mu.Lock()
	err := r.err
	r.mu.Unlock()
	if err == nil {
		err = ErrClosed
	}
	return err
}

// install swaps conn in as the live connection and replays every
// buffered frame past peerRecvd. It reports whether the connection was
// accepted; a false return means the link closed or died first and conn
// was discarded.
func (r *Resumable) install(conn Conn, peerRecvd int64, echo func(recvd int64) *wire.Frame) bool {
	r.sendMu.Lock()
	defer r.sendMu.Unlock()
	r.mu.Lock()
	if r.closed || r.err != nil {
		r.mu.Unlock()
		conn.Close()
		return false
	}
	if peerRecvd < r.ackBase || peerRecvd > r.sent {
		r.mu.Unlock()
		conn.Close()
		r.die(fmt.Errorf("transport: %s resume reports %d frames received, outside acked window [%d, %d]: %w",
			r.name, peerRecvd, r.ackBase, r.sent, ErrLinkDown))
		return false
	}
	// Detach any still-installed connection first (the peer noticed the
	// break before we did): once detached, frames still draining from it
	// are dropped uncounted by Recv, so the received count frozen below is
	// exactly what the replay contract needs.
	old := r.conn
	r.conn = nil
	r.trimLocked(peerRecvd)
	recvd := r.recvd
	r.mu.Unlock()
	if old != nil {
		old.Close()
	}
	if echo != nil {
		if err := conn.Send(echo(recvd)); err != nil {
			conn.Close()
			// Still down; re-arm the terminal deadline for the next attempt.
			r.mu.Lock()
			if !r.closed && r.err == nil && r.redial == nil && r.downTimer == nil && !r.retired {
				r.downTimer = time.AfterFunc(r.policy.Budget, func() {
					r.die(fmt.Errorf("transport: %s not re-adopted within %v (echo failed: %v): %w",
						r.name, r.policy.Budget, err, ErrLinkDown))
				})
			}
			r.mu.Unlock()
			return false
		}
	}
	r.mu.Lock()
	if r.closed || r.err != nil {
		r.mu.Unlock()
		conn.Close()
		return false
	}
	r.conn = conn
	if r.downTimer != nil {
		r.downTimer.Stop()
		r.downTimer = nil
	}
	r.sinceAck = 0
	replay := r.buf
	r.cond.Broadcast()
	r.mu.Unlock()
	for _, f := range replay {
		if err := conn.Send(f); err != nil {
			r.linkBroke(conn, err)
			return true // installed; the new break restarts absorption
		}
	}
	if r.logf != nil {
		r.logf("transport: %s absorbed a fault: reconnected, %d frame(s) replayed", r.name, len(replay))
	}
	if r.onAbsorb != nil {
		r.onAbsorb(len(replay))
	}
	return true
}

// die records the terminal error and wakes every waiter.
func (r *Resumable) die(err error) {
	r.mu.Lock()
	if r.closed || r.err != nil {
		r.mu.Unlock()
		return
	}
	r.err = err
	if r.downTimer != nil {
		r.downTimer.Stop()
		r.downTimer = nil
	}
	close(r.closeCh)
	r.cond.Broadcast()
	r.mu.Unlock()
	if r.logf != nil {
		r.logf("transport: %s terminally down: %v", r.name, err)
	}
}

// Retire disables absorption: the next break (or EOF) becomes a plain
// terminal error instead of a reconnect, and a link already down dies
// immediately. Sessions call it when teardown is expected — a drain
// notice arrived or the run completed — so a deliberate close by the
// peer is not mistaken for a fault.
func (r *Resumable) Retire() {
	r.mu.Lock()
	r.retired = true
	r.redial = nil
	down := r.conn == nil && r.err == nil && !r.closed
	r.mu.Unlock()
	if down {
		r.die(fmt.Errorf("transport: %s retired while down", r.name))
	}
}

// Reconnecting reports whether the link is currently down with
// absorption still in progress (heartbeat monitors skip silence checks
// while it is true).
func (r *Resumable) Reconnecting() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.conn == nil && r.err == nil && !r.closed
}

// Close tears the link down locally: the current connection closes, the
// reconnect machinery stops, and pending Send/Recv return ErrClosed.
func (r *Resumable) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	conn := r.conn
	r.conn = nil
	if r.downTimer != nil {
		r.downTimer.Stop()
		r.downTimer = nil
	}
	if r.err == nil {
		close(r.closeCh)
	}
	r.cond.Broadcast()
	r.mu.Unlock()
	if conn != nil {
		return conn.Close()
	}
	return nil
}
