package transport

import (
	"bufio"
	"net"
	"sync"
	"time"

	"pipebd/internal/cluster/wire"
)

// TCP is the real multi-process Network: wire frames, already
// length-prefixed by their header, stream over buffered TCP sockets.
// TCP_NODELAY is left on (Go's default) so small control frames — step
// barriers, loss reports — are not delayed behind Nagle batching.
type TCP struct {
	// DialTimeout bounds a single Dial attempt; zero means 5 seconds.
	DialTimeout time.Duration
}

// Listen binds a TCP listener (addr in host:port form; ":0" picks a
// free port, reported by Addr).
func (t TCP) Listen(addr string) (Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &tcpListener{l: l}, nil
}

// Dial connects to a worker at addr.
func (t TCP) Dial(addr string) (Conn, error) {
	timeout := t.DialTimeout
	if timeout == 0 {
		timeout = 5 * time.Second
	}
	c, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	return newTCPConn(c), nil
}

type tcpListener struct {
	l net.Listener
}

func (l *tcpListener) Accept() (Conn, error) {
	c, err := l.l.Accept()
	if err != nil {
		return nil, err
	}
	return newTCPConn(c), nil
}

func (l *tcpListener) Addr() string { return l.l.Addr().String() }

func (l *tcpListener) Close() error { return l.l.Close() }

type tcpConn struct {
	c  net.Conn
	r  *bufio.Reader
	mu sync.Mutex // serializes Send (header + payload must not interleave)
	w  *bufio.Writer
}

func newTCPConn(c net.Conn) *tcpConn {
	return &tcpConn{
		c: c,
		r: bufio.NewReaderSize(c, 1<<16),
		w: bufio.NewWriterSize(c, 1<<16),
	}
}

func (c *tcpConn) Send(f *wire.Frame) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := wire.WriteFrame(c.w, f); err != nil {
		return err
	}
	return c.w.Flush()
}

func (c *tcpConn) Recv() (*wire.Frame, error) {
	return wire.ReadFrame(c.r)
}

func (c *tcpConn) Close() error { return c.c.Close() }

var (
	_ Network = TCP{}
	_ Conn    = (*tcpConn)(nil)
)
