package transport

import (
	"sync/atomic"

	"pipebd/internal/cluster/wire"
)

// Meter wraps a Network and counts the traffic crossing the connections
// it Dials: bytes and frames, each direction, aggregated atomically
// across all connections. Listen passes through untouched, so the totals
// never double-count — every connection has exactly one dialing side, and
// that side sees the full traffic of both directions (its sends and its
// receives).
//
// Wrapping each endpoint role's dial network in its own Meter therefore
// attributes traffic by role: the coordinator's Meter counts the control
// plane, the workers' shared dial Meter counts the peer data plane. The
// benchmark uses exactly that split to report coordinator-bytes-per-step
// against peer-bytes-per-step.
type Meter struct {
	inner Network

	sentBytes  atomic.Int64
	recvBytes  atomic.Int64
	sentFrames atomic.Int64
	recvFrames atomic.Int64
}

// NewMeter wraps inner with zeroed counters.
func NewMeter(inner Network) *Meter { return &Meter{inner: inner} }

// Totals is a point-in-time snapshot of a Meter's counters.
type Totals struct {
	SentBytes  int64
	RecvBytes  int64
	SentFrames int64
	RecvFrames int64
}

// Bytes returns the total bytes crossing metered connections in both
// directions.
func (t Totals) Bytes() int64 { return t.SentBytes + t.RecvBytes }

// Totals snapshots the counters.
func (m *Meter) Totals() Totals {
	return Totals{
		SentBytes:  m.sentBytes.Load(),
		RecvBytes:  m.recvBytes.Load(),
		SentFrames: m.sentFrames.Load(),
		RecvFrames: m.recvFrames.Load(),
	}
}

// Reset zeroes the counters (e.g. after a warm-up phase).
func (m *Meter) Reset() {
	m.sentBytes.Store(0)
	m.recvBytes.Store(0)
	m.sentFrames.Store(0)
	m.recvFrames.Store(0)
}

// frameBytes is the on-wire size of a frame: the fixed header plus the
// payload. This is exact for the TCP transport and the natural equivalent
// for loopback (which never serializes).
func frameBytes(f *wire.Frame) int64 { return 16 + int64(len(f.Payload)) }

// Listen passes through to the wrapped network.
func (m *Meter) Listen(addr string) (Listener, error) { return m.inner.Listen(addr) }

// Dial connects through the wrapped network and meters the connection.
func (m *Meter) Dial(addr string) (Conn, error) {
	conn, err := m.inner.Dial(addr)
	if err != nil {
		return nil, err
	}
	return &meterConn{inner: conn, m: m}, nil
}

type meterConn struct {
	inner Conn
	m     *Meter
}

func (mc *meterConn) Send(f *wire.Frame) error {
	if err := mc.inner.Send(f); err != nil {
		return err
	}
	mc.m.sentBytes.Add(frameBytes(f))
	mc.m.sentFrames.Add(1)
	return nil
}

func (mc *meterConn) Recv() (*wire.Frame, error) {
	f, err := mc.inner.Recv()
	if err != nil {
		return nil, err
	}
	mc.m.recvBytes.Add(frameBytes(f))
	mc.m.recvFrames.Add(1)
	return f, nil
}

func (mc *meterConn) Close() error { return mc.inner.Close() }

var (
	_ Network = (*Meter)(nil)
	_ Conn    = (*meterConn)(nil)
)
