// Package transport abstracts how cluster peers exchange wire frames: a
// Network can listen on and dial addresses, yielding ordered,
// bidirectional frame streams. Two implementations ship — an in-memory
// loopback network for tests and single-process clusters, and a
// length-prefixed TCP transport for real multi-process runs. Because
// both carry the identical wire encoding, a loopback cluster run is
// bit-equivalent to a TCP one, which the equivalence suite exploits.
package transport

import (
	"errors"

	"pipebd/internal/cluster/wire"
)

// Conn is one end of an ordered, bidirectional frame stream. Send and
// Recv may be called concurrently with each other, but each direction
// must be driven by at most one goroutine at a time.
type Conn interface {
	// Send writes one frame. It may block on transport backpressure.
	Send(f *wire.Frame) error
	// Recv reads the next frame, blocking until one arrives. It returns
	// io.EOF after the peer closes cleanly.
	Recv() (*wire.Frame, error)
	// Close tears down the stream; the peer's Recv drains already-sent
	// frames and then returns io.EOF.
	Close() error
}

// Listener accepts inbound connections on one address.
type Listener interface {
	// Accept blocks for the next inbound connection.
	Accept() (Conn, error)
	// Addr returns the bound address (useful with ":0"-style requests).
	Addr() string
	// Close stops the listener; blocked Accepts return ErrClosed.
	Close() error
}

// Network creates listeners and dials peers. Implementations must be safe
// for concurrent use.
type Network interface {
	// Listen binds a listener to addr.
	Listen(addr string) (Listener, error)
	// Dial connects to a listener previously bound to addr.
	Dial(addr string) (Conn, error)
}

// ErrClosed is returned by operations on closed listeners or networks.
var ErrClosed = errors.New("transport: closed")
