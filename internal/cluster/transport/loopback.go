package transport

import (
	"fmt"
	"sync"

	"pipebd/internal/cluster/wire"
)

// Loopback is an in-memory Network: listeners are named entries in a
// shared registry and connections are pairs of unbounded frame queues.
// It exists so cluster tests (and single-process "clusters") can run the
// full coordinator/worker protocol with zero serialization latency and no
// sockets — while still exchanging the exact same encoded frames a TCP
// run would, preserving bit-equivalence between the two.
//
// Frames must not be mutated after Send: the receiver observes the same
// Frame value.
type Loopback struct {
	mu        sync.Mutex
	listeners map[string]*loopListener
	next      int
}

// NewLoopback returns an empty in-memory network.
func NewLoopback() *Loopback {
	return &Loopback{listeners: make(map[string]*loopListener)}
}

// Listen binds a listener. An empty addr (or ":0") allocates a fresh
// "loop-N" address, reported by Addr.
func (n *Loopback) Listen(addr string) (Listener, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if addr == "" || addr == ":0" {
		n.next++
		addr = fmt.Sprintf("loop-%d", n.next)
	}
	if _, ok := n.listeners[addr]; ok {
		return nil, fmt.Errorf("transport: loopback address %q already in use", addr)
	}
	l := &loopListener{net: n, addr: addr, accept: make(chan Conn, 16)}
	n.listeners[addr] = l
	return l, nil
}

// Dial connects to the listener bound to addr.
func (n *Loopback) Dial(addr string) (Conn, error) {
	n.mu.Lock()
	l, ok := n.listeners[addr]
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("transport: no loopback listener at %q", addr)
	}
	client, server := newLoopPair()
	// The closed check and the accept-queue send share l.mu so a
	// concurrent Close (which closes the channel under the same lock)
	// cannot turn the send into a panic. accept is buffered, so the send
	// under the lock never blocks — the full-backlog case errors instead.
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil, ErrClosed
	}
	select {
	case l.accept <- server:
		return client, nil
	default:
		return nil, fmt.Errorf("transport: loopback listener %q accept backlog full", addr)
	}
}

type loopListener struct {
	net    *Loopback
	addr   string
	accept chan Conn
	mu     sync.Mutex
	closed bool
}

func (l *loopListener) Accept() (Conn, error) {
	c, ok := <-l.accept
	if !ok {
		return nil, ErrClosed
	}
	return c, nil
}

func (l *loopListener) Addr() string { return l.addr }

func (l *loopListener) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.mu.Unlock()
	l.net.mu.Lock()
	delete(l.net.listeners, l.addr)
	l.net.mu.Unlock()
	close(l.accept)
	return nil
}

// newLoopPair returns the two ends of an in-memory connection.
func newLoopPair() (a, b *loopConn) {
	qa, qb := NewFrameQueue(), NewFrameQueue()
	return &loopConn{in: qa, out: qb}, &loopConn{in: qb, out: qa}
}

type loopConn struct {
	in, out *FrameQueue
}

func (c *loopConn) Send(f *wire.Frame) error { return c.out.Push(f) }

func (c *loopConn) Recv() (*wire.Frame, error) { return c.in.Pop() }

func (c *loopConn) Close() error {
	c.in.Close()
	c.out.Close()
	return nil
}

var (
	_ Network = (*Loopback)(nil)
	_ Conn    = (*loopConn)(nil)
)
