package transport

import (
	"io"
	"sync"
	"testing"

	"pipebd/internal/cluster/wire"
	"pipebd/internal/tensor"
)

// exerciseNetwork runs the same conversation over any Network: dial,
// exchange frames both ways, verify ordering, then close and observe EOF.
func exerciseNetwork(t *testing.T, net Network, addr string) {
	t.Helper()
	lis, err := net.Listen(addr)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer lis.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		server, err := lis.Accept()
		if err != nil {
			t.Errorf("Accept: %v", err)
			return
		}
		defer server.Close()
		for i := 0; ; i++ {
			f, err := server.Recv()
			if err == io.EOF {
				return
			}
			if err != nil {
				t.Errorf("server Recv: %v", err)
				return
			}
			if int(f.Step) != i {
				t.Errorf("server got step %d, want %d", f.Step, i)
			}
			// Echo with the kind flipped.
			if err := server.Send(wire.Control(wire.KindStepGo, f.Dev, f.Step)); err != nil {
				t.Errorf("server Send: %v", err)
				return
			}
		}
	}()

	client, err := net.Dial(lis.Addr())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	payload := wire.EncodeTensor(wire.KindInput, 1, 0, tensor.Ones(2, 3, 4, 4))
	for i := 0; i < 50; i++ {
		f := &wire.Frame{Kind: wire.KindInput, Dev: 1, Step: int32(i), Payload: payload.Payload}
		if err := client.Send(f); err != nil {
			t.Fatalf("client Send %d: %v", i, err)
		}
		echo, err := client.Recv()
		if err != nil {
			t.Fatalf("client Recv %d: %v", i, err)
		}
		if echo.Kind != wire.KindStepGo || int(echo.Step) != i {
			t.Fatalf("echo %d: got %+v", i, echo)
		}
	}
	client.Close()
	wg.Wait()
}

func TestLoopbackConversation(t *testing.T) {
	exerciseNetwork(t, NewLoopback(), "")
}

func TestTCPConversation(t *testing.T) {
	exerciseNetwork(t, TCP{}, "127.0.0.1:0")
}

func TestLoopbackDialUnknownAddr(t *testing.T) {
	if _, err := NewLoopback().Dial("nowhere"); err == nil {
		t.Fatal("dial to unbound address succeeded")
	}
}

func TestLoopbackAddrReuseRejected(t *testing.T) {
	n := NewLoopback()
	l, err := n.Listen("a")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	if _, err := n.Listen("a"); err == nil {
		t.Fatal("duplicate listen succeeded")
	}
	l.Close()
	// After close, the address is free again and dialing it fails.
	if _, err := n.Dial("a"); err == nil {
		t.Fatal("dial to closed listener succeeded")
	}
	if _, err := n.Listen("a"); err != nil {
		t.Fatalf("re-listen after close: %v", err)
	}
}

func TestLoopbackCloseUnblocksRecv(t *testing.T) {
	n := NewLoopback()
	lis, _ := n.Listen("")
	done := make(chan error, 1)
	go func() {
		server, err := lis.Accept()
		if err != nil {
			done <- err
			return
		}
		_, err = server.Recv()
		done <- err
	}()
	client, err := n.Dial(lis.Addr())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	client.Close()
	if err := <-done; err != io.EOF {
		t.Fatalf("Recv after peer close: got %v, want io.EOF", err)
	}
}

func TestLoopbackListenerCloseUnblocksAccept(t *testing.T) {
	n := NewLoopback()
	lis, _ := n.Listen("")
	done := make(chan error, 1)
	go func() {
		_, err := lis.Accept()
		done <- err
	}()
	lis.Close()
	if err := <-done; err != ErrClosed {
		t.Fatalf("Accept after close: got %v, want ErrClosed", err)
	}
}

// TestLoopbackDrainBeforeEOF: frames sent before Close are still
// delivered — Close ends the stream, it does not drop queued frames.
func TestLoopbackDrainBeforeEOF(t *testing.T) {
	n := NewLoopback()
	lis, _ := n.Listen("")
	accepted := make(chan Conn, 1)
	go func() {
		c, err := lis.Accept()
		if err != nil {
			t.Errorf("Accept: %v", err)
			return
		}
		accepted <- c
	}()
	client, err := n.Dial(lis.Addr())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	for i := 0; i < 10; i++ {
		if err := client.Send(wire.Control(wire.KindStepDone, 0, int32(i))); err != nil {
			t.Fatalf("Send %d: %v", i, err)
		}
	}
	client.Close()
	server := <-accepted
	for i := 0; i < 10; i++ {
		f, err := server.Recv()
		if err != nil {
			t.Fatalf("Recv %d after close: %v", i, err)
		}
		if int(f.Step) != i {
			t.Fatalf("Recv %d: got step %d", i, f.Step)
		}
	}
	if _, err := server.Recv(); err != io.EOF {
		t.Fatalf("after drain: got %v, want io.EOF", err)
	}
}

// TestTCPRejectsGarbagePeer: a TCP conn fed non-frame bytes surfaces a
// decode error rather than hanging or panicking.
func TestTCPRejectsGarbagePeer(t *testing.T) {
	lis, err := TCP{}.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer lis.Close()
	go func() {
		server, err := lis.Accept()
		if err != nil {
			return
		}
		// Not a wire frame.
		if tc, ok := server.(*tcpConn); ok {
			tc.c.Write([]byte("GET / HTTP/1.1\r\n\r\n"))
		}
		server.Close()
	}()
	client, err := TCP{}.Dial(lis.Addr())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer client.Close()
	if _, err := client.Recv(); err == nil {
		t.Fatal("garbage bytes decoded as a frame")
	}
}
