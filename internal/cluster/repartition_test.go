package cluster

import (
	"errors"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"pipebd/internal/cluster/ledger"
	"pipebd/internal/cluster/transport"
	"pipebd/internal/cluster/wire"
	"pipebd/internal/distill"
	"pipebd/internal/engine"
	"pipebd/internal/obs"
	"pipebd/internal/sched"
	"pipebd/internal/tensor"
)

// lopsidedPlan is the repartition tests' starting placement: an unsplit
// three-device plan whose front device carries half the blocks. Throttle
// the worker hosting device 0 and the measured re-plan sheds a block off
// it.
func lopsidedPlan() sched.Plan {
	return plan("lopsided", g([]int{0}, []int{0, 1}), g([]int{1}, []int{2}), g([]int{2}, []int{3}))
}

// startWorkersMixed is startWorkers with one config per worker, for
// heterogeneous clusters (e.g. one throttled straggler among fast
// siblings).
func startWorkersMixed(t *testing.T, net transport.Network, cfgs []WorkerConfig) []string {
	t.Helper()
	addrs := make([]string, len(cfgs))
	workers := make([]*Worker, len(cfgs))
	var wg sync.WaitGroup
	for i, cfg := range cfgs {
		lis, err := net.Listen(listenAddr(net))
		if err != nil {
			t.Fatalf("worker %d listen: %v", i, err)
		}
		w := NewWorker(lis, cfg)
		addrs[i] = w.Addr()
		workers[i] = w
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := w.Serve(); err != nil {
				t.Errorf("worker serve: %v", err)
			}
		}()
	}
	t.Cleanup(func() {
		for _, w := range workers {
			w.Close()
		}
		wg.Wait()
	})
	return addrs
}

// stragglerWorkerConfigs is three one-session rejoin-capable workers, the
// first throttled by the given factor: a bit-identical compute straggler.
func stragglerWorkerConfigs(net transport.Network, factor int) []WorkerConfig {
	slow := WorkerConfig{Sessions: 1, Rejoin: true, Dial: net,
		Backend: tensor.NewThrottled(tensor.Default(), factor)}
	fast := WorkerConfig{Sessions: 1, Rejoin: true, Dial: net}
	return []WorkerConfig{slow, fast, fast}
}

// TestRepartitionShedsStraggler is the tentpole equivalence test: a
// three-worker cluster whose first worker computes 4x slower runs a
// lopsided plan with the repartitioner armed. The controller must fire
// at least once (shedding load off the straggler from measured span
// timings), and the final loss trajectory and trained weights must stay
// bit-identical to the fault-free in-process pipeline under the original
// plan — repartitioning may only move wall-clock, never a float. Both
// data planes are covered: the ring (peer-to-peer) and the hub.
func TestRepartitionShedsStraggler(t *testing.T) {
	leakCheck(t)
	for _, topo := range []string{"ring", "hub"} {
		t.Run(topo, func(t *testing.T) {
			const steps, batch = 10, 4
			batches := tinyBatches(steps, batch)
			p := lopsidedPlan()
			ref := distill.NewTinyWorkbench(distill.DefaultTinyConfig())
			refRes := engine.RunPipelined(ref, batches, engine.Config{Plan: p, DPU: true, LR: 0.05, Momentum: 0.9})

			net := transport.NewLoopback()
			addrs := startWorkersMixed(t, net, stragglerWorkerConfigs(net, 4))
			counters := obs.NewMetrics()
			logf, logs := captureLog()
			w := distill.NewTinyWorkbench(distill.DefaultTinyConfig())
			res, err := Run(net, addrs, w, batches, Config{
				Plan: p, DPU: true, LR: 0.05, Momentum: 0.9,
				Topology: topoArg(topo), Spec: TinySpec(distill.DefaultTinyConfig()),
				Repartition: RepartitionConfig{Enabled: true, Threshold: 0.2, Hysteresis: 2, Warmup: 2},
				Metrics:     counters, Logf: logf,
				JoinTimeout: 10 * time.Second,
			})
			if err != nil {
				t.Fatalf("%s straggler run: %v\nlog:\n%s", topo, err, logs())
			}
			if n := counters.Counter("repartitions").Load(); n < 1 {
				t.Fatalf("%s: repartitioner never fired against a 4x straggler; log:\n%s", topo, logs())
			}
			if !strings.Contains(logs(), "repartitioning after step") {
				t.Fatalf("%s: no repartition log line; log:\n%s", topo, logs())
			}
			lossesBitIdentical(t, topo+" straggler repartition", res, refRes)
			weightsBitIdentical(t, topo+" straggler repartition", w, ref)
		})
	}
}

// topoArg maps the test label onto Config.Topology ("hub" is spelled ""
// in half the call sites; exercise the explicit form here).
func topoArg(topo string) string { return topo }

// TestRepartitionRefusesSplitPlan: split groups fold gradients across
// members, so moving their block boundaries would change the float fold
// order — the repartitioner must refuse them at run start, loudly.
func TestRepartitionRefusesSplitPlan(t *testing.T) {
	w := distill.NewTinyWorkbench(distill.DefaultTinyConfig())
	_, err := Run(transport.NewLoopback(), []string{"unused"}, w, tinyBatches(3, 6), Config{
		Plan: hybridPlan(), DPU: true, LR: 0.05, Momentum: 0.9,
		Topology: "ring", Spec: TinySpec(distill.DefaultTinyConfig()),
		Repartition: RepartitionConfig{Enabled: true},
	})
	if err == nil || !strings.Contains(err.Error(), "all-unsplit") {
		t.Fatalf("split plan with repartition: got %v, want all-unsplit refusal", err)
	}
}

// TestRepartitionPersistentPeerDelayBitIdentical pins down the boundary
// of what repartitioning can fix: a persistent transport delay on a peer
// activation link (chaos Repeat fault) slows the run but lands in wait
// spans, not block compute, so the measured per-block costs stay
// balanced and the controller correctly refrains from firing — while the
// run, chaos and all, stays bit-identical with the machinery armed.
func TestRepartitionPersistentPeerDelayBitIdentical(t *testing.T) {
	leakCheck(t)
	const steps, batch = 6, 4
	batches := tinyBatches(steps, batch)
	p := lopsidedPlan()
	ref := distill.NewTinyWorkbench(distill.DefaultTinyConfig())
	refRes := engine.RunPipelined(ref, batches, engine.Config{Plan: p, DPU: true, LR: 0.05, Momentum: 0.9})

	inner := transport.NewLoopback()
	// Every peer activation send on every worker-to-worker link stalls:
	// a persistently slow interconnect rather than a slow device.
	delay := transport.NewChaos(inner, transport.Fault{
		Trigger: transport.Trigger{Conn: transport.AnyConn, Op: transport.OpSend,
			Kind: wire.KindPeerInput, Step: transport.AnyStep, Count: 1},
		Action: transport.ActDelay, Delay: 3 * time.Millisecond, Repeat: true,
	})
	cfg := WorkerConfig{Sessions: 1, Rejoin: true, Dial: delay}
	addrs := startWorkers(t, inner, 3, cfg)
	counters := obs.NewMetrics()
	w := distill.NewTinyWorkbench(distill.DefaultTinyConfig())
	res, err := Run(inner, addrs, w, batches, Config{
		Plan: p, DPU: true, LR: 0.05, Momentum: 0.9,
		Topology: "ring", Spec: TinySpec(distill.DefaultTinyConfig()),
		Repartition: RepartitionConfig{Enabled: true, Threshold: 0.2, Hysteresis: 2, Warmup: 2},
		Metrics:     counters,
		JoinTimeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatalf("peer-delay run: %v", err)
	}
	lossesBitIdentical(t, "peer delay under repartitioner", res, refRes)
	weightsBitIdentical(t, "peer delay under repartitioner", w, ref)
}

// TestRepartitionCoordinatorKillResume crosses the two recovery planes:
// a durable ring run repartitions away from a straggler mid-run, then
// the coordinator is killed near the end, and ResumeRun must restore
// across the plan-generation boundary — replaying the first generation's
// records under the original plan, remapping the carry onto the recorded
// re-plan, and finishing bit-identically under the new placement.
func TestRepartitionCoordinatorKillResume(t *testing.T) {
	leakCheck(t)
	const steps, batch = 10, 4
	batches := tinyBatches(steps, batch)
	p := lopsidedPlan()
	ref := distill.NewTinyWorkbench(distill.DefaultTinyConfig())
	refRes := engine.RunPipelined(ref, batches, engine.Config{Plan: p, DPU: true, LR: 0.05, Momentum: 0.9})

	inner := transport.NewLoopback()
	addrs := startWorkersMixed(t, inner, stragglerWorkerConfigs(inner, 4))
	dir := filepath.Join(t.TempDir(), "ledger")
	// The chaos net carries only the coordinator's control plane; the kill
	// lands on whichever post-repartition connection delivers the step-8
	// losses, simulating a coordinator crash late in the run.
	chaos := transport.NewChaos(inner, transport.Fault{
		Trigger: transport.Trigger{Conn: transport.AnyConn, Op: transport.OpRecv,
			Kind: wire.KindLosses, Step: steps - 2, Count: 1},
		Action: transport.ActKill,
	})
	counters := obs.NewMetrics()
	logf, logs := captureLog()
	w := distill.NewTinyWorkbench(distill.DefaultTinyConfig())
	_, err := Run(chaos, addrs, w, batches, Config{
		Plan: p, DPU: true, LR: 0.05, Momentum: 0.9,
		Topology: "ring", Spec: TinySpec(distill.DefaultTinyConfig()),
		Repartition: RepartitionConfig{Enabled: true, Threshold: 0.1, Hysteresis: 2, Warmup: 2},
		LedgerDir:   dir,
		Metrics:     counters, Logf: logf,
		JoinTimeout: 10 * time.Second,
	})
	if err == nil {
		t.Fatal("rigged run finished despite the injected coordinator crash")
	}
	if !errors.Is(err, transport.ErrChaos) {
		t.Fatalf("crash should surface the injected fault: %v\nlog:\n%s", err, logs())
	}
	if n := counters.Counter("repartitions").Load(); n < 1 {
		t.Fatalf("repartitioner never fired before the crash; log:\n%s", logs())
	}
	// The crashed run must have recorded the cut: the ledger now spans
	// two plan generations.
	led, _, rep, err := ledger.Open(dir)
	if err != nil {
		t.Fatalf("reopening crashed ledger: %v", err)
	}
	led.Close()
	if gens := splitGenerations(rep.Records); len(gens) < 2 {
		t.Fatalf("crashed ledger holds %d plan generation(s), want >= 2; log:\n%s", len(gens), logs())
	}

	rlogf, rlogs := captureLog()
	res, w2, err := ResumeRun(inner, dir, ResumeConfig{JoinTimeout: 10 * time.Second, Logf: rlogf})
	if err != nil {
		t.Fatalf("resume across repartition failed: %v\nlog:\n%s", err, rlogs())
	}
	if !strings.Contains(rlogs(), "plan generation(s)") {
		t.Fatalf("resume log missing the generation restore line:\n%s", rlogs())
	}
	lossesBitIdentical(t, "resume across repartition", res, refRes)
	weightsBitIdentical(t, "resume across repartition", w2, ref)
}

// TestRepartitionCompactedLedgerResume extends the compaction acceptance
// to plan generations: the same crashed repartitioned run as above, but
// the ledger is compacted before the resume. The compacted log must hold
// one checkpoint per generation with the repartition records between
// them, and the resume across the generation boundary must still finish
// bit-identically to the fault-free in-process pipeline.
func TestRepartitionCompactedLedgerResume(t *testing.T) {
	leakCheck(t)
	const steps, batch = 10, 4
	batches := tinyBatches(steps, batch)
	p := lopsidedPlan()
	ref := distill.NewTinyWorkbench(distill.DefaultTinyConfig())
	refRes := engine.RunPipelined(ref, batches, engine.Config{Plan: p, DPU: true, LR: 0.05, Momentum: 0.9})

	inner := transport.NewLoopback()
	addrs := startWorkersMixed(t, inner, stragglerWorkerConfigs(inner, 4))
	dir := filepath.Join(t.TempDir(), "ledger")
	chaos := transport.NewChaos(inner, transport.Fault{
		Trigger: transport.Trigger{Conn: transport.AnyConn, Op: transport.OpRecv,
			Kind: wire.KindLosses, Step: steps - 2, Count: 1},
		Action: transport.ActKill,
	})
	counters := obs.NewMetrics()
	w := distill.NewTinyWorkbench(distill.DefaultTinyConfig())
	_, err := Run(chaos, addrs, w, batches, Config{
		Plan: p, DPU: true, LR: 0.05, Momentum: 0.9,
		Topology: "ring", Spec: TinySpec(distill.DefaultTinyConfig()),
		Repartition: RepartitionConfig{Enabled: true, Threshold: 0.1, Hysteresis: 2, Warmup: 2},
		LedgerDir:   dir,
		Metrics:     counters,
		JoinTimeout: 10 * time.Second,
	})
	if err == nil {
		t.Fatal("rigged run finished despite the injected coordinator crash")
	}
	if n := counters.Counter("repartitions").Load(); n < 1 {
		t.Fatal("repartitioner never fired before the crash")
	}

	if err := ledger.Compact(dir); err != nil {
		t.Fatalf("compacting repartitioned ledger: %v", err)
	}
	led, _, rep, err := ledger.Open(dir)
	if err != nil {
		t.Fatalf("reopening compacted ledger: %v", err)
	}
	led.Close()
	gens := splitGenerations(rep.Records)
	if len(gens) < 2 {
		t.Fatalf("compacted ledger holds %d plan generation(s), want >= 2", len(gens))
	}
	for gi, gen := range gens {
		if len(gen.recs) != 1 || gen.recs[0].Type != ledger.TypeCheckpoint {
			t.Fatalf("generation %d compacted to %d record(s) (first %v), want one checkpoint",
				gi, len(gen.recs), gen.recs[0].Type)
		}
	}

	res, w2, err := ResumeRun(inner, dir, ResumeConfig{JoinTimeout: 10 * time.Second})
	if err != nil {
		t.Fatalf("resume from compacted repartitioned ledger failed: %v", err)
	}
	lossesBitIdentical(t, "compacted resume across repartition", res, refRes)
	weightsBitIdentical(t, "compacted resume across repartition", w2, ref)
}
