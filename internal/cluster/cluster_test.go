package cluster

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"pipebd/internal/cluster/transport"
	"pipebd/internal/dataset"
	"pipebd/internal/distill"
	"pipebd/internal/engine"
	"pipebd/internal/sched"
	"pipebd/internal/tensor"
)

func tinyBatches(n, batch int) []dataset.Batch {
	cfg := distill.DefaultTinyConfig()
	data := dataset.NewRandom(rand.New(rand.NewSource(7)), n*batch, 3, cfg.Height, cfg.Width, 4)
	return data.Batches(batch)
}

func g(devs, blocks []int) sched.Group { return sched.Group{Devices: devs, Blocks: blocks} }

func plan(name string, groups ...sched.Group) sched.Plan {
	return sched.Plan{Name: name, Groups: groups}
}

// hybridPlan is an AHD-shaped distribution: the first two devices train
// blocks 0-1 data-parallel, the third trains blocks 2-3 alone.
func hybridPlan() sched.Plan {
	return plan("hybrid", g([]int{0, 1}, []int{0, 1}), g([]int{2}, []int{2, 3}))
}

// startWorkers brings up n worker servers on the network and returns
// their addresses. Cleanup closes them and waits for Serve to return.
func startWorkers(t *testing.T, net transport.Network, n int, cfg WorkerConfig) []string {
	t.Helper()
	addrs := make([]string, n)
	workers := make([]*Worker, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		lis, err := net.Listen(listenAddr(net))
		if err != nil {
			t.Fatalf("worker %d listen: %v", i, err)
		}
		w := NewWorker(lis, cfg)
		addrs[i] = w.Addr()
		workers[i] = w
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := w.Serve(); err != nil {
				t.Errorf("worker serve: %v", err)
			}
		}()
	}
	// Close every worker before waiting: a still-serving worker must not
	// deadlock the wait for an already-closed sibling.
	t.Cleanup(func() {
		for _, w := range workers {
			w.Close()
		}
		wg.Wait()
	})
	return addrs
}

func listenAddr(net transport.Network) string {
	if _, ok := net.(transport.TCP); ok {
		return "127.0.0.1:0"
	}
	return ""
}

// lossesBitIdentical compares two loss trajectories for exact float64
// equality.
func lossesBitIdentical(t *testing.T, label string, a, b engine.Result) {
	t.Helper()
	if len(a.Loss) != len(b.Loss) {
		t.Fatalf("%s: %d vs %d blocks", label, len(a.Loss), len(b.Loss))
	}
	for blk := range a.Loss {
		if len(a.Loss[blk]) != len(b.Loss[blk]) {
			t.Fatalf("%s: block %d has %d vs %d steps", label, blk, len(a.Loss[blk]), len(b.Loss[blk]))
		}
		for s := range a.Loss[blk] {
			if a.Loss[blk][s] != b.Loss[blk][s] {
				t.Fatalf("%s: loss diverged at block %d step %d: %v vs %v",
					label, blk, s, a.Loss[blk][s], b.Loss[blk][s])
			}
		}
	}
}

// weightsBitIdentical compares every student parameter of two
// workbenches exactly.
func weightsBitIdentical(t *testing.T, label string, a, b *distill.Workbench) {
	t.Helper()
	for blk := 0; blk < a.NumBlocks(); blk++ {
		pa, pb := a.StudentParams(blk), b.StudentParams(blk)
		if len(pa) != len(pb) {
			t.Fatalf("%s: block %d param count mismatch", label, blk)
		}
		for i := range pa {
			if !pa[i].Value.Equal(pb[i].Value) {
				t.Fatalf("%s: block %d param %d (%s) differs", label, blk, i, pa[i].Name)
			}
		}
	}
}

// TestClusterBitEquivalenceLoopbackAndTCP is the subsystem's acceptance
// test: a hybrid (AHD) plan executed (a) in-process by RunPipelined, (b)
// on a 2-worker loopback cluster, and (c) on a real 2-worker TCP cluster
// on localhost must produce bit-identical per-block loss trajectories and
// bit-identical trained student weights. Combined with the engine's
// equivalence suite (which pins RunPipelined to RunSequential), this
// extends the paper's "no modification to the mathematical formulation"
// claim across process boundaries.
func TestClusterBitEquivalenceLoopbackAndTCP(t *testing.T) {
	batches := tinyBatches(6, 8)
	p := hybridPlan()
	cfg := Config{Plan: p, DPU: true, LR: 0.05, Momentum: 0.9,
		Spec: TinySpec(distill.DefaultTinyConfig())}

	ref := distill.NewTinyWorkbench(distill.DefaultTinyConfig())
	refRes := engine.RunPipelined(ref, batches, engine.Config{Plan: p, DPU: true, LR: 0.05, Momentum: 0.9})

	loopNet := transport.NewLoopback()
	loopAddrs := startWorkers(t, loopNet, 2, WorkerConfig{Sessions: 1})
	loopW := distill.NewTinyWorkbench(distill.DefaultTinyConfig())
	loopRes, err := Run(loopNet, loopAddrs, loopW, batches, cfg)
	if err != nil {
		t.Fatalf("loopback cluster run: %v", err)
	}
	lossesBitIdentical(t, "loopback vs in-process", loopRes, refRes)
	weightsBitIdentical(t, "loopback vs in-process", loopW, ref)

	tcpNet := transport.TCP{}
	tcpAddrs := startWorkers(t, tcpNet, 2, WorkerConfig{Sessions: 1})
	tcpW := distill.NewTinyWorkbench(distill.DefaultTinyConfig())
	tcpRes, err := Run(tcpNet, tcpAddrs, tcpW, batches, cfg)
	if err != nil {
		t.Fatalf("tcp cluster run: %v", err)
	}
	lossesBitIdentical(t, "tcp vs in-process", tcpRes, refRes)
	weightsBitIdentical(t, "tcp vs in-process", tcpW, ref)
}

// TestClusterMatchesPipelinedAcrossPlans sweeps plan shapes, DPU modes,
// and worker counts on loopback: every combination must reproduce the
// in-process trajectory exactly.
func TestClusterMatchesPipelinedAcrossPlans(t *testing.T) {
	batches := tinyBatches(5, 8)
	plans := map[string]sched.Plan{
		"tr-2dev": plan("tr-2dev", g([]int{0}, []int{0, 1}), g([]int{1}, []int{2, 3})),
		"tr-4dev": plan("tr-4dev", g([]int{0}, []int{0}), g([]int{1}, []int{1}), g([]int{2}, []int{2}), g([]int{3}, []int{3})),
		"hybrid":  hybridPlan(),
		"ir-2dev": sched.InternalRelaying(2, 4),
		"tail-dp": plan("tail-dp", g([]int{0}, []int{0, 1}), g([]int{1, 2}, []int{2, 3})),
	}
	for name, p := range plans {
		for _, dpu := range []bool{false, true} {
			for _, workers := range []int{1, 2} {
				ref := distill.NewTinyWorkbench(distill.DefaultTinyConfig())
				refRes := engine.RunPipelined(ref, batches, engine.Config{Plan: p, DPU: dpu, LR: 0.05, Momentum: 0.9})

				net := transport.NewLoopback()
				addrs := startWorkers(t, net, workers, WorkerConfig{Sessions: 1})
				w := distill.NewTinyWorkbench(distill.DefaultTinyConfig())
				res, err := Run(net, addrs, w, batches, Config{Plan: p, DPU: dpu,
					LR: 0.05, Momentum: 0.9, Spec: TinySpec(distill.DefaultTinyConfig())})
				if err != nil {
					t.Fatalf("%s dpu=%v workers=%d: %v", name, dpu, workers, err)
				}
				label := name
				lossesBitIdentical(t, label, res, refRes)
				weightsBitIdentical(t, label, w, ref)
			}
		}
	}
}

// TestClusterSupernetSpec runs the mini-NAS workbench through the
// cluster: a different architecture (MixedOp students) exercising the
// spec registry, with the same bit-equivalence requirement.
func TestClusterSupernetSpec(t *testing.T) {
	cfg := distill.DefaultSupernetConfig()
	data := dataset.NewRandom(rand.New(rand.NewSource(9)), 4*8, 3, cfg.Height, cfg.Width, 4)
	batches := data.Batches(8)
	p := plan("supernet", g([]int{0, 1}, []int{0}), g([]int{2}, []int{1, 2}))

	ref := distill.NewTinySupernetWorkbench(cfg)
	refRes := engine.RunPipelined(ref, batches, engine.Config{Plan: p, DPU: true, LR: 0.05, Momentum: 0.9})

	net := transport.NewLoopback()
	addrs := startWorkers(t, net, 2, WorkerConfig{Sessions: 1})
	w := distill.NewTinySupernetWorkbench(cfg)
	res, err := Run(net, addrs, w, batches, Config{Plan: p, DPU: true,
		LR: 0.05, Momentum: 0.9, Spec: SupernetSpec(cfg)})
	if err != nil {
		t.Fatalf("supernet cluster run: %v", err)
	}
	lossesBitIdentical(t, "supernet", res, refRes)
	weightsBitIdentical(t, "supernet", w, ref)
}

// TestClusterSnapshotOverridesDrift: the coordinator's workbench weights
// (not the spec's fresh initialization) are what the cluster trains —
// verified by perturbing the coordinator's weights first.
func TestClusterSnapshotOverridesDrift(t *testing.T) {
	batches := tinyBatches(3, 8)
	p := plan("tr-2dev", g([]int{0}, []int{0, 1}), g([]int{1}, []int{2, 3}))

	perturb := func(w *distill.Workbench) {
		for blk := 0; blk < w.NumBlocks(); blk++ {
			for _, prm := range w.StudentParams(blk) {
				d := prm.Value.Data()
				for i := range d {
					d[i] += 0.01
				}
			}
		}
	}
	ref := distill.NewTinyWorkbench(distill.DefaultTinyConfig())
	perturb(ref)
	refRes := engine.RunPipelined(ref, batches, engine.Config{Plan: p, DPU: true, LR: 0.05, Momentum: 0.9})

	net := transport.NewLoopback()
	addrs := startWorkers(t, net, 1, WorkerConfig{Sessions: 1})
	w := distill.NewTinyWorkbench(distill.DefaultTinyConfig())
	perturb(w)
	res, err := Run(net, addrs, w, batches, Config{Plan: p, DPU: true,
		LR: 0.05, Momentum: 0.9, Spec: TinySpec(distill.DefaultTinyConfig())})
	if err != nil {
		t.Fatalf("cluster run: %v", err)
	}
	lossesBitIdentical(t, "drifted seed", res, refRes)
	weightsBitIdentical(t, "drifted seed", w, ref)
}

// TestWorkerServesSequentialSessions: one worker handles several
// coordinator sessions back to back (join / drain / rejoin).
func TestWorkerServesSequentialSessions(t *testing.T) {
	batches := tinyBatches(3, 8)
	p := plan("tr-2dev", g([]int{0}, []int{0, 1}), g([]int{1}, []int{2, 3}))
	net := transport.NewLoopback()
	addrs := startWorkers(t, net, 1, WorkerConfig{Sessions: 2})

	var results []*distill.Workbench
	for i := 0; i < 2; i++ {
		w := distill.NewTinyWorkbench(distill.DefaultTinyConfig())
		if _, err := Run(net, addrs, w, batches, Config{Plan: p, DPU: true,
			LR: 0.05, Momentum: 0.9, Spec: TinySpec(distill.DefaultTinyConfig())}); err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
		results = append(results, w)
	}
	weightsBitIdentical(t, "session 1 vs 2", results[0], results[1])
}

// TestCoordinatorRejectsBadConfigs: setup errors surface as errors, not
// hangs or panics.
func TestCoordinatorRejectsBadConfigs(t *testing.T) {
	batches := tinyBatches(2, 8)
	w := distill.NewTinyWorkbench(distill.DefaultTinyConfig())
	net := transport.NewLoopback()
	good := Config{Plan: hybridPlan(), LR: 0.05, Spec: TinySpec(distill.DefaultTinyConfig())}

	bad := good
	bad.Plan = plan("short", g([]int{0}, []int{0})) // covers 1 of 4 blocks
	if _, err := Run(net, []string{"x"}, w, batches, bad); err == nil {
		t.Fatal("invalid plan accepted")
	}
	if _, err := Run(net, nil, w, batches, good); err == nil {
		t.Fatal("no workers accepted")
	}
	if _, err := Run(net, []string{"x"}, w, nil, good); err == nil {
		t.Fatal("no batches accepted")
	}
	bad = good
	bad.Spec.Blocks = 7
	if _, err := Run(net, []string{"x"}, w, batches, bad); err == nil {
		t.Fatal("spec/workbench block mismatch accepted")
	}
	// Batch size not divisible by a group's split.
	odd := tinyBatches(1, 9)
	if _, err := Run(net, []string{"x"}, w, odd, good); err == nil {
		t.Fatal("indivisible batch accepted")
	}
}

// TestWorkerSurvivesPoisonedSession: a session that blows up inside a
// device loop (here: a mid-stream batch whose size is not divisible by
// the group split, which panics in shardOf) must fail that session only —
// the coordinator gets an error, and the same worker then serves a clean
// session successfully.
func TestWorkerSurvivesPoisonedSession(t *testing.T) {
	p := hybridPlan()
	cfg := Config{Plan: p, DPU: true, LR: 0.05, Momentum: 0.9,
		Spec: TinySpec(distill.DefaultTinyConfig())}
	net := transport.NewLoopback()
	addrs := startWorkers(t, net, 1, WorkerConfig{Sessions: 2})

	poisoned := tinyBatches(2, 8)
	// Step 1's batch of 7 is indivisible by group 0's 2-way split; the
	// coordinator's up-front check only sees step 0.
	cfgTiny := distill.DefaultTinyConfig()
	poisoned[1] = dataset.Batch{X: tensor.Rand(rand.New(rand.NewSource(13)), -1, 1, 7, 3, cfgTiny.Height, cfgTiny.Width)}
	w := distill.NewTinyWorkbench(distill.DefaultTinyConfig())
	if _, err := Run(net, addrs, w, poisoned, cfg); err == nil {
		t.Fatal("poisoned session reported success")
	}

	// The worker must still be alive and serve a correct session.
	batches := tinyBatches(3, 8)
	ref := distill.NewTinyWorkbench(distill.DefaultTinyConfig())
	refRes := engine.RunPipelined(ref, batches, engine.Config{Plan: p, DPU: true, LR: 0.05, Momentum: 0.9})
	w2 := distill.NewTinyWorkbench(distill.DefaultTinyConfig())
	res, err := Run(net, addrs, w2, batches, cfg)
	if err != nil {
		t.Fatalf("clean session after poisoned one: %v", err)
	}
	lossesBitIdentical(t, "post-poison session", res, refRes)
	weightsBitIdentical(t, "post-poison session", w2, ref)
}

// TestCoordinatorHandshakeTimeout: a TCP peer that accepts connections
// (listen backlog) but never speaks must not hang the join past the
// configured window.
func TestCoordinatorHandshakeTimeout(t *testing.T) {
	lis, err := transport.TCP{}.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer lis.Close() // never Accept: connects succeed, nothing is sent
	batches := tinyBatches(2, 8)
	w := distill.NewTinyWorkbench(distill.DefaultTinyConfig())
	cfg := Config{Plan: plan("tr-2dev", g([]int{0}, []int{0, 1}), g([]int{1}, []int{2, 3})),
		LR: 0.05, Spec: TinySpec(distill.DefaultTinyConfig()),
		JoinTimeout: 300 * time.Millisecond}
	start := time.Now()
	if _, err := Run(transport.TCP{}, []string{lis.Addr(), lis.Addr()}, w, batches, cfg); err == nil {
		t.Fatal("silent peer joined successfully")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("handshake wait was not bounded by the join timeout")
	}
}

// TestCoordinatorJoinTimeout: dialing a worker that never comes up fails
// within the join window instead of hanging.
func TestCoordinatorJoinTimeout(t *testing.T) {
	batches := tinyBatches(2, 8)
	w := distill.NewTinyWorkbench(distill.DefaultTinyConfig())
	cfg := Config{Plan: plan("tr-2dev", g([]int{0}, []int{0, 1}), g([]int{1}, []int{2, 3})),
		LR: 0.05, Spec: TinySpec(distill.DefaultTinyConfig()),
		JoinTimeout: 200 * time.Millisecond}
	start := time.Now()
	if _, err := Run(transport.NewLoopback(), []string{"ghost-a", "ghost-b"}, w, batches, cfg); err == nil {
		t.Fatal("join to absent workers succeeded")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("join timeout did not bound the wait")
	}
}

// TestWorkerRejectsUnknownSpec: a worker handed a spec it cannot build
// fails the session; the coordinator surfaces an error.
func TestWorkerRejectsUnknownSpec(t *testing.T) {
	batches := tinyBatches(2, 8)
	net := transport.NewLoopback()
	addrs := startWorkers(t, net, 1, WorkerConfig{Sessions: 1})
	w := distill.NewTinyWorkbench(distill.DefaultTinyConfig())
	cfg := Config{Plan: plan("tr-2dev", g([]int{0}, []int{0, 1}), g([]int{1}, []int{2, 3})),
		LR: 0.05, Spec: TinySpec(distill.DefaultTinyConfig())}
	cfg.Spec.Name = "no-such-model"
	if _, err := Run(net, addrs, w, batches, cfg); err == nil {
		t.Fatal("unknown spec trained successfully")
	}
}

func TestPlaceDevices(t *testing.T) {
	cases := []struct {
		nDev, nWorkers int
		want           [][]int
	}{
		{4, 2, [][]int{{0, 1}, {2, 3}}},
		{3, 2, [][]int{{0, 1}, {2}}},
		{2, 3, [][]int{{0}, {1}, nil}},
		{5, 1, [][]int{{0, 1, 2, 3, 4}}},
	}
	for _, c := range cases {
		got := PlaceDevices(c.nDev, c.nWorkers)
		if len(got) != len(c.want) {
			t.Fatalf("PlaceDevices(%d,%d) = %v", c.nDev, c.nWorkers, got)
		}
		for i := range got {
			if len(got[i]) != len(c.want[i]) {
				t.Fatalf("PlaceDevices(%d,%d)[%d] = %v, want %v", c.nDev, c.nWorkers, i, got[i], c.want[i])
			}
			for j := range got[i] {
				if got[i][j] != c.want[i][j] {
					t.Fatalf("PlaceDevices(%d,%d)[%d] = %v, want %v", c.nDev, c.nWorkers, i, got[i], c.want[i])
				}
			}
		}
	}
}

// TestSnapshotCaptureInstall round-trips a workbench's parameters through
// capture + install on a fresh replica.
func TestSnapshotCaptureInstall(t *testing.T) {
	a := distill.NewTinyWorkbench(distill.DefaultTinyConfig())
	// Make a's weights distinctive.
	for blk := 0; blk < a.NumBlocks(); blk++ {
		for _, prm := range a.StudentParams(blk) {
			d := prm.Value.Data()
			for i := range d {
				d[i] *= 1.5
			}
		}
	}
	snap := CaptureSnapshot(a)
	b := distill.NewTinyWorkbench(distill.DefaultTinyConfig())
	if err := InstallSnapshot(b, snap); err != nil {
		t.Fatalf("InstallSnapshot: %v", err)
	}
	weightsBitIdentical(t, "capture/install", a, b)

	// Mismatched architecture is rejected.
	cfg := distill.DefaultTinyConfig()
	cfg.Blocks = 2
	if err := InstallSnapshot(distill.NewTinyWorkbench(cfg), snap); err == nil {
		t.Fatal("snapshot installed into wrong architecture")
	}
}

func TestBuildWorkbenchUnknownSpec(t *testing.T) {
	if _, err := BuildWorkbench(TinySpec(distill.DefaultTinyConfig())); err != nil {
		t.Fatalf("tiny spec: %v", err)
	}
	bad := TinySpec(distill.DefaultTinyConfig())
	bad.Name = "mystery"
	if _, err := BuildWorkbench(bad); err == nil {
		t.Fatal("unknown spec built")
	}
}
