package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"strings"
	"testing"

	"pipebd/internal/dataset"
	"pipebd/internal/sched"
	"pipebd/internal/tensor"
)

func roundTripFrame(t *testing.T, f *Frame) *Frame {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteFrame(&buf, f); err != nil {
		t.Fatalf("WriteFrame: %v", err)
	}
	got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	if buf.Len() != 0 {
		t.Fatalf("ReadFrame left %d bytes unconsumed", buf.Len())
	}
	return got
}

func TestFrameRoundTrip(t *testing.T) {
	f := &Frame{Kind: KindLosses, Dev: 3, Step: 41, Payload: []byte{1, 2, 3}}
	got := roundTripFrame(t, f)
	if got.Kind != f.Kind || got.Dev != f.Dev || got.Step != f.Step || !bytes.Equal(got.Payload, f.Payload) {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, f)
	}
}

func TestFrameNoDevNoStep(t *testing.T) {
	got := roundTripFrame(t, Control(KindHello, NoDev, NoStep))
	if got.Dev != NoDev || got.Step != NoStep {
		t.Fatalf("sentinel dev/step did not survive: %+v", got)
	}
}

// TestTensorRoundTripExact is the codec's core property: every float32
// bit pattern — including negative zero, infinities, NaN, and denormals —
// survives a round trip bit-for-bit.
func TestTensorRoundTripExact(t *testing.T) {
	specials := []float32{
		0, float32(math.Copysign(0, -1)), 1, -1,
		float32(math.Inf(1)), float32(math.Inf(-1)), float32(math.NaN()),
		math.SmallestNonzeroFloat32, math.MaxFloat32, 1e-42,
	}
	src := tensor.New(2, 5)
	copy(src.Data(), specials)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		var ts *tensor.Tensor
		if trial == 0 {
			ts = src
		} else {
			rank := 1 + rng.Intn(4)
			shape := make([]int, rank)
			for i := range shape {
				shape[i] = 1 + rng.Intn(5)
			}
			ts = tensor.Rand(rng, -10, 10, shape...)
		}
		f := EncodeTensor(KindInput, 0, int32(trial), ts)
		got, err := DecodeTensor(roundTripFrame(t, f))
		if err != nil {
			t.Fatalf("trial %d: decode: %v", trial, err)
		}
		if !got.SameShape(ts) {
			t.Fatalf("trial %d: shape %v vs %v", trial, got.Shape(), ts.Shape())
		}
		for i, v := range ts.Data() {
			if math.Float32bits(v) != math.Float32bits(got.Data()[i]) {
				t.Fatalf("trial %d: element %d not bit-identical: %v vs %v", trial, i, v, got.Data()[i])
			}
		}
	}
}

func TestTensorsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ts := []*tensor.Tensor{
		tensor.Rand(rng, -1, 1, 3),
		tensor.Rand(rng, -1, 1, 2, 3, 4),
		tensor.Rand(rng, -1, 1, 1, 1, 1, 1),
	}
	got, err := DecodeTensors(roundTripFrame(t, EncodeTensors(KindGrads, 1, 2, ts)))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(got) != len(ts) {
		t.Fatalf("got %d tensors, want %d", len(got), len(ts))
	}
	for i := range ts {
		if !got[i].Equal(ts[i]) {
			t.Fatalf("tensor %d differs", i)
		}
	}
	// An empty list round-trips too.
	got, err = DecodeTensors(roundTripFrame(t, EncodeTensors(KindGrads, 1, 2, nil)))
	if err != nil || len(got) != 0 {
		t.Fatalf("empty tensor list: got %v, %v", got, err)
	}
}

func TestLossesRoundTrip(t *testing.T) {
	vals := []float64{0.25, -3.5, math.Pi, 0}
	got, err := DecodeLosses(roundTripFrame(t, EncodeLosses(2, 9, vals)))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("loss %d: %v vs %v", i, got[i], vals[i])
		}
	}
}

func TestBatchRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	b := dataset.Batch{X: tensor.Rand(rng, -1, 1, 4, 3, 2, 2), Labels: []int{0, 3, 1, 2}}
	got, err := DecodeBatch(roundTripFrame(t, EncodeBatch(0, 0, b)))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !got.X.Equal(b.X) {
		t.Fatal("batch tensor differs")
	}
	for i := range b.Labels {
		if got.Labels[i] != b.Labels[i] {
			t.Fatalf("label %d differs", i)
		}
	}
}

// TestEmptyBatchRoundTrip: a batch with no tensor and no labels is legal
// on the wire (e.g. a drained loader) and must not error or panic.
func TestEmptyBatchRoundTrip(t *testing.T) {
	got, err := DecodeBatch(roundTripFrame(t, EncodeBatch(0, 0, dataset.Batch{})))
	if err != nil {
		t.Fatalf("decode empty batch: %v", err)
	}
	if got.X != nil || len(got.Labels) != 0 {
		t.Fatalf("empty batch decoded to %+v", got)
	}
}

func sampleAssign() *Assign {
	rng := rand.New(rand.NewSource(4))
	return &Assign{
		Plan: sched.Plan{Name: "hybrid", Groups: []sched.Group{
			{Devices: []int{0, 1}, Blocks: []int{0, 1}},
			{Devices: []int{2}, Blocks: []int{2, 3}, Shares: nil},
		}},
		Spec: ModelSpec{Name: "transformer", Seed: 42, Blocks: 4, Channels: 6, Height: 8, Width: 8,
			Heads: 2, FFTeacher: 32, FFStudent: 8, SeqLen: 6, Vocab: 16, Classes: 4, Temp: 2.5},
		Run: RunConfig{DPU: true, LR: 0.05, Momentum: 0.9, Buffer: 2, Steps: 6, Backend: "serial",
			Snap: SnapshotPolicy{Interval: 3, Rank0Dedup: true}, Topology: "ring", Trace: true,
			Data: DataSpec{Seed: 11, N: 72, C: 3, H: 8, W: 8, Classes: 4, Batch: 12,
				Kind: "tokens", L: 6, Vocab: 16}},
		Devices: []int{0, 1},
		Peers:   []string{"w0:1", "w0:1", "w1:2"},
		Epoch:   77,
		Inputs:  []*tensor.Tensor{tensor.Rand(rng, -1, 1, 4, 3, 2, 2), tensor.Rand(rng, -1, 1, 4, 3, 2, 2)},
		Snapshot: Snapshot{
			Teacher: [][]*tensor.Tensor{{tensor.Rand(rng, -1, 1, 2, 2)}, {}},
			Student: [][]*tensor.Tensor{{tensor.Rand(rng, -1, 1, 3), tensor.Rand(rng, -1, 1, 1, 4)}, {tensor.Rand(rng, -1, 1, 2)}},
		},
	}
}

func TestAssignRoundTrip(t *testing.T) {
	a := sampleAssign()
	got, err := DecodeAssign(roundTripFrame(t, EncodeAssign(a)))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Plan.Name != a.Plan.Name || len(got.Plan.Groups) != len(a.Plan.Groups) {
		t.Fatalf("plan mismatch: %+v", got.Plan)
	}
	for gi, g := range a.Plan.Groups {
		gg := got.Plan.Groups[gi]
		if len(gg.Devices) != len(g.Devices) || len(gg.Blocks) != len(g.Blocks) {
			t.Fatalf("group %d mismatch: %+v vs %+v", gi, gg, g)
		}
	}
	if got.Spec != a.Spec {
		t.Fatalf("spec mismatch: %+v vs %+v", got.Spec, a.Spec)
	}
	if got.Run != a.Run {
		t.Fatalf("run config mismatch: %+v vs %+v", got.Run, a.Run)
	}
	if len(got.Devices) != 2 || got.Devices[0] != 0 || got.Devices[1] != 1 {
		t.Fatalf("devices mismatch: %v", got.Devices)
	}
	if len(got.Peers) != 3 || got.Peers[0] != "w0:1" || got.Peers[2] != "w1:2" {
		t.Fatalf("peer directory mismatch: %v", got.Peers)
	}
	if got.Epoch != 77 {
		t.Fatalf("epoch mismatch: %d", got.Epoch)
	}
	for bi := range a.Snapshot.Student {
		for pi := range a.Snapshot.Student[bi] {
			if !got.Snapshot.Student[bi][pi].Equal(a.Snapshot.Student[bi][pi]) {
				t.Fatalf("student snapshot block %d param %d differs", bi, pi)
			}
		}
	}
	if !got.Snapshot.Teacher[0][0].Equal(a.Snapshot.Teacher[0][0]) {
		t.Fatal("teacher snapshot differs")
	}
	if len(got.Inputs) != len(a.Inputs) {
		t.Fatalf("prestaged inputs: %d vs %d", len(got.Inputs), len(a.Inputs))
	}
	for i := range a.Inputs {
		if !got.Inputs[i].Equal(a.Inputs[i]) {
			t.Fatalf("prestaged input %d differs", i)
		}
	}
}

func TestDeviceSnapshotRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	params := []*tensor.Tensor{tensor.Rand(rng, -1, 1, 3, 2), tensor.Rand(rng, -1, 1, 4)}
	vels := []*tensor.Tensor{tensor.Rand(rng, -1, 1, 3, 2), tensor.New(4)}
	f := roundTripFrame(t, EncodeDeviceSnapshot(2, 7, params, vels))
	if f.Dev != 2 || f.Step != 7 {
		t.Fatalf("snapshot header: %+v", f)
	}
	gp, gv, err := DecodeDeviceSnapshot(f)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	for i := range params {
		if !gp[i].Equal(params[i]) || !gv[i].Equal(vels[i]) {
			t.Fatalf("snapshot tensor %d differs", i)
		}
	}
}

func TestDeviceSnapshotCountMismatchRejected(t *testing.T) {
	w := NewWriter()
	w.Tensors([]*tensor.Tensor{tensor.Ones(2)})
	w.Tensors(nil) // 1 param, 0 velocities
	if _, _, err := DecodeDeviceSnapshot(&Frame{Kind: KindSnapshot, Payload: w.Bytes()}); err == nil {
		t.Fatal("param/velocity count mismatch accepted")
	}
}

func sampleResume() *Resume {
	rng := rand.New(rand.NewSource(6))
	res := &Resume{Assign: *sampleAssign()}
	for _, d := range res.Devices {
		res.States = append(res.States, DeviceState{
			Dev: d, Step: 3,
			Params:   []*tensor.Tensor{tensor.Rand(rng, -1, 1, 3), tensor.Rand(rng, -1, 1, 1, 4)},
			Velocity: []*tensor.Tensor{tensor.Rand(rng, -1, 1, 3), tensor.New(1, 4)},
		})
	}
	return res
}

func TestResumeRoundTrip(t *testing.T) {
	res := sampleResume()
	res.States[0].Step = -1 // never finished a step: seed state
	got, err := DecodeResume(roundTripFrame(t, EncodeResume(res)))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Plan.Name != res.Plan.Name || got.Spec != res.Spec || got.Run != res.Run {
		t.Fatalf("assign body mismatch: %+v", got.Assign)
	}
	if len(got.States) != len(res.States) {
		t.Fatalf("got %d states, want %d", len(got.States), len(res.States))
	}
	for i, st := range res.States {
		g := got.States[i]
		if g.Dev != st.Dev || g.Step != st.Step {
			t.Fatalf("state %d header: %+v vs %+v", i, g, st)
		}
		for pi := range st.Params {
			if !g.Params[pi].Equal(st.Params[pi]) || !g.Velocity[pi].Equal(st.Velocity[pi]) {
				t.Fatalf("state %d tensor %d differs", i, pi)
			}
		}
	}
}

// TestResumeStateDeviceMismatchRejected: the decoder enforces the
// one-state-per-assigned-device invariant so a worker never starts a
// half-restored session.
func TestResumeStateDeviceMismatchRejected(t *testing.T) {
	res := sampleResume()
	res.States = res.States[:1]
	if _, err := DecodeResume(roundTripFrame(t, EncodeResume(res))); err == nil {
		t.Fatal("missing device state accepted")
	}
	res = sampleResume()
	res.States[1].Dev = res.States[0].Dev
	if _, err := DecodeResume(roundTripFrame(t, EncodeResume(res))); err == nil {
		t.Fatal("duplicate device state accepted")
	}
	res = sampleResume()
	res.States[1].Dev = 99
	if _, err := DecodeResume(roundTripFrame(t, EncodeResume(res))); err == nil {
		t.Fatal("state for unassigned device accepted")
	}
}

func TestResumeTruncatedPayloadRejected(t *testing.T) {
	f := EncodeResume(sampleResume())
	for n := 0; n < len(f.Payload); n += 7 {
		if _, err := DecodeResume(&Frame{Kind: KindResume, Dev: NoDev, Step: NoStep, Payload: f.Payload[:n]}); err == nil {
			t.Fatalf("Resume payload truncated to %d bytes decoded successfully", n)
		}
	}
}

// TestVersionSkewOldWorker models an un-upgraded worker talking to this
// coordinator: its hello frame is stamped with an older codec version and
// must be rejected with ErrVersion — a clean, diagnosable handshake
// failure rather than a mis-decoded session setup (the v2→v3 transition
// moved RunConfig's snapshot fields, so a mis-decode would silently
// scramble the policy).
func TestVersionSkewOldWorker(t *testing.T) {
	for _, old := range []byte{1, 2, 3} {
		raw := encodeFrameBytes(t, Control(KindHello, NoDev, NoStep))
		raw[1] = old
		_, err := ReadFrame(bytes.NewReader(raw))
		if !errors.Is(err, ErrVersion) {
			t.Fatalf("v%d hello: got %v, want ErrVersion", old, err)
		}
		if !strings.Contains(err.Error(), fmt.Sprintf("version %d", old)) || !strings.Contains(err.Error(), fmt.Sprint(Version)) {
			t.Fatalf("version error should name both versions: %v", err)
		}
	}
}

func TestSpansRoundTrip(t *testing.T) {
	b := SpanBatch{Dev: 2, Track: "dev2", Spans: []Span{
		{Name: "teacher_fwd", Cat: 1, Start: 1_000_000, Dur: 500},
		{Name: "peer_ack_wait", Cat: 7, Start: 1_000_600, Dur: 90},
		{Name: "allreduce", Cat: 6, Start: 1_000_700, Dur: 1200},
	}}
	got, err := DecodeSpans(roundTripFrame(t, EncodeSpans(b)))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Dev != b.Dev || got.Track != b.Track || len(got.Spans) != len(b.Spans) {
		t.Fatalf("batch mismatch: %+v vs %+v", got, b)
	}
	for i, s := range b.Spans {
		if got.Spans[i] != s {
			t.Fatalf("span %d mismatch: %+v vs %+v", i, got.Spans[i], s)
		}
	}

	// Empty batches are legal (a step with tracing enabled but no events).
	empty, err := DecodeSpans(roundTripFrame(t, EncodeSpans(SpanBatch{Dev: NoDev, Track: "coord"})))
	if err != nil {
		t.Fatalf("decode empty: %v", err)
	}
	if empty.Track != "coord" || len(empty.Spans) != 0 {
		t.Fatalf("empty batch mismatch: %+v", empty)
	}
}

func TestSpansMalformed(t *testing.T) {
	f := EncodeSpans(SpanBatch{Dev: 0, Track: "dev0", Spans: []Span{{Name: "x", Cat: 1, Start: 1, Dur: 1}}})
	// Wrong kind.
	if _, err := DecodeSpans(Control(KindPeerAck, 0, 3)); err == nil {
		t.Fatal("wrong-kind frame decoded")
	}
	// Truncated payload.
	trunc := &Frame{Kind: KindSpans, Dev: f.Dev, Step: f.Step, Payload: f.Payload[:len(f.Payload)-4]}
	if _, err := DecodeSpans(trunc); err == nil {
		t.Fatal("truncated payload decoded")
	}
	// Span count far beyond the payload must fail count validation, not
	// allocate.
	bad := append([]byte(nil), f.Payload...)
	// Payload layout: track string (4-byte len + "dev0"), then the count.
	binary.LittleEndian.PutUint32(bad[8:], 1<<30)
	if _, err := DecodeSpans(&Frame{Kind: KindSpans, Payload: bad}); err == nil {
		t.Fatal("oversized span count decoded")
	}
}

func TestPeerHelloRoundTrip(t *testing.T) {
	h := PeerHello{Epoch: 1234567890123, From: 3, To: 1}
	got, err := DecodePeerHello(roundTripFrame(t, EncodePeerHello(h)))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got != h {
		t.Fatalf("peer hello mismatch: %+v vs %+v", got, h)
	}
	if _, err := DecodePeerHello(Control(KindHello, NoDev, NoStep)); err == nil {
		t.Fatal("DecodePeerHello accepted a hello frame")
	}
}

// TestRingSegmentRoundTrip: ring frames carry raw float32 slices and must
// preserve every bit pattern — they ARE the gradient data in ring mode.
func TestRingSegmentRoundTrip(t *testing.T) {
	data := []float32{0, float32(math.Copysign(0, -1)), -1.5,
		float32(math.Inf(1)), float32(math.NaN()), 1e-42}
	for _, phase := range []uint8{RingContrib, RingGather, RingFull} {
		f := roundTripFrame(t, EncodeRingSegment(2, 9, phase, 5, data))
		if f.Dev != 2 || f.Step != 9 {
			t.Fatalf("ring frame header: %+v", f)
		}
		gp, seg, got, err := DecodeRingSegment(f)
		if err != nil {
			t.Fatalf("phase %d decode: %v", phase, err)
		}
		if gp != phase || seg != 5 || len(got) != len(data) {
			t.Fatalf("phase %d: got phase=%d seg=%d len=%d", phase, gp, seg, len(got))
		}
		for i := range data {
			if math.Float32bits(got[i]) != math.Float32bits(data[i]) {
				t.Fatalf("element %d not bit-identical: %v vs %v", i, got[i], data[i])
			}
		}
	}
	// An empty segment round-trips (zero-length remainder slices are legal).
	if _, _, got, err := DecodeRingSegment(roundTripFrame(t, EncodeRingSegment(0, 0, RingContrib, 0, nil))); err != nil || len(got) != 0 {
		t.Fatalf("empty segment: %v, %v", got, err)
	}
	// Unknown phases are rejected.
	if _, _, _, err := DecodeRingSegment(EncodeRingSegment(0, 0, 9, 0, nil)); err == nil {
		t.Fatal("unknown ring phase accepted")
	}
	// Forged counts error out instead of allocating.
	w := NewWriter()
	w.U8(RingContrib)
	w.U32(0)
	w.U32(0xFFFFFFF0)
	if _, _, _, err := DecodeRingSegment(&Frame{Kind: KindRingSegment, Payload: w.Bytes()}); err == nil {
		t.Fatal("forged segment count accepted")
	}
}

// TestSnapshotPolicy pins the policy helpers the worker and coordinator
// both rely on: which steps an interval covers, and which policies are
// rejected.
func TestSnapshotPolicy(t *testing.T) {
	if (SnapshotPolicy{}).Enabled() {
		t.Fatal("zero policy reports enabled")
	}
	p := SnapshotPolicy{Interval: 3}
	var covered []int
	for s := 0; s < 7; s++ {
		if p.Covers(s) {
			covered = append(covered, s)
		}
	}
	if len(covered) != 2 || covered[0] != 2 || covered[1] != 5 {
		t.Fatalf("interval 3 covered %v, want [2 5]", covered)
	}
	if (SnapshotPolicy{Interval: 1}).Covers(0) != true {
		t.Fatal("interval 1 must cover every step")
	}
	if err := (SnapshotPolicy{Interval: -1}).Validate(); err == nil {
		t.Fatal("negative interval validated")
	}
	if err := (SnapshotPolicy{Rank0Dedup: true}).Validate(); err == nil {
		t.Fatal("dedup without snapshots validated")
	}
	if err := (SnapshotPolicy{Interval: 4, Rank0Dedup: true}).Validate(); err != nil {
		t.Fatalf("valid policy rejected: %v", err)
	}
}

// TestBlobRoundTrip: the length-prefixed byte-slice primitive added for
// ledger records must round-trip (including empty) and must not alias
// the source payload.
func TestBlobRoundTrip(t *testing.T) {
	w := NewWriter()
	w.Blob([]byte{9, 8, 7})
	w.Blob(nil)
	r := NewReader(w.Bytes())
	got := r.Blob()
	if len(got) != 3 || got[0] != 9 || got[2] != 7 {
		t.Fatalf("blob round trip: %v", got)
	}
	got[0] = 0
	if w.Bytes()[4] == 0 {
		t.Fatal("decoded blob aliases the payload buffer")
	}
	if b := r.Blob(); len(b) != 0 {
		t.Fatalf("empty blob decoded to %v", b)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// A truncated blob errors instead of panicking.
	r = NewReader(w.Bytes()[:5])
	r.Blob()
	if r.Err() == nil {
		t.Fatal("truncated blob decoded successfully")
	}
}

// --- edge cases: every malformed input must error, never panic ---------------

func encodeFrameBytes(t *testing.T, f *Frame) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteFrame(&buf, f); err != nil {
		t.Fatalf("WriteFrame: %v", err)
	}
	return buf.Bytes()
}

// TestTruncatedFrames feeds every proper prefix of valid frames to the
// decoder; all must return an error (EOF before the header, unexpected
// EOF inside it) and none may panic.
func TestTruncatedFrames(t *testing.T) {
	frames := [][]byte{
		encodeFrameBytes(t, EncodeAssign(sampleAssign())),
		encodeFrameBytes(t, EncodeTensor(KindInput, 0, 0, tensor.Ones(2, 3))),
		encodeFrameBytes(t, EncodeLosses(0, 0, []float64{1, 2})),
	}
	for fi, full := range frames {
		for n := 0; n < len(full); n++ {
			f, err := ReadFrame(bytes.NewReader(full[:n]))
			if err == nil {
				t.Fatalf("frame %d truncated to %d bytes: decode succeeded (%+v)", fi, n, f)
			}
			if n == 0 && err != io.EOF {
				t.Fatalf("clean EOF should yield io.EOF, got %v", err)
			}
			if n > 0 && err == io.EOF {
				t.Fatalf("frame %d truncated to %d bytes: got bare io.EOF, want a mid-frame error", fi, n)
			}
		}
	}
}

// TestTruncatedPayloads truncates the payload *content* while keeping the
// header length consistent, exercising the payload readers' bounds
// checks.
func TestTruncatedPayloads(t *testing.T) {
	a := EncodeAssign(sampleAssign())
	for n := 0; n < len(a.Payload); n++ {
		if _, err := DecodeAssign(&Frame{Kind: KindAssign, Dev: NoDev, Step: NoStep, Payload: a.Payload[:n]}); err == nil {
			t.Fatalf("Assign payload truncated to %d bytes decoded successfully", n)
		}
	}
	tf := EncodeTensor(KindInput, 0, 0, tensor.Ones(3, 3))
	for n := 0; n < len(tf.Payload); n++ {
		if _, err := DecodeTensor(&Frame{Kind: KindInput, Payload: tf.Payload[:n]}); err == nil {
			t.Fatalf("tensor payload truncated to %d bytes decoded successfully", n)
		}
	}
}

// TestZeroDimTensorRejected: the engine has no zero- or negative-sized
// dimensions; the decoder must reject them with an error (tensor.New
// would panic).
func TestZeroDimTensorRejected(t *testing.T) {
	w := NewWriter()
	w.U32(2) // rank 2
	w.U32(3)
	w.U32(0) // zero dimension
	if _, err := DecodeTensor(&Frame{Kind: KindInput, Payload: w.Bytes()}); err == nil {
		t.Fatal("zero-dimension tensor decoded successfully")
	}
	// Rank 0 is likewise rejected.
	w = NewWriter()
	w.U32(0)
	if _, err := DecodeTensor(&Frame{Kind: KindInput, Payload: w.Bytes()}); err == nil {
		t.Fatal("rank-0 tensor decoded successfully")
	}
	// Absurd rank is rejected before any allocation.
	w = NewWriter()
	w.U32(1 << 20)
	if _, err := DecodeTensor(&Frame{Kind: KindInput, Payload: w.Bytes()}); err == nil {
		t.Fatal("rank 2^20 tensor decoded successfully")
	}
}

// TestOversizedTensorRejected: a shape whose element count overflows the
// payload limit errors out instead of allocating.
func TestOversizedTensorRejected(t *testing.T) {
	w := NewWriter()
	w.U32(4)
	for i := 0; i < 4; i++ {
		w.U32(1 << 16)
	}
	if _, err := DecodeTensor(&Frame{Kind: KindInput, Payload: w.Bytes()}); err == nil {
		t.Fatal("2^64-element tensor decoded successfully")
	}
}

// TestCrossVersionRejected: frames stamped with a different codec version
// are refused with ErrVersion, regardless of content.
func TestCrossVersionRejected(t *testing.T) {
	raw := encodeFrameBytes(t, Control(KindHello, NoDev, NoStep))
	raw[1] = Version + 1
	_, err := ReadFrame(bytes.NewReader(raw))
	if !errors.Is(err, ErrVersion) {
		t.Fatalf("version+1 frame: got %v, want ErrVersion", err)
	}
	raw[1] = 0
	if _, err := ReadFrame(bytes.NewReader(raw)); !errors.Is(err, ErrVersion) {
		t.Fatalf("version-0 frame: got %v, want ErrVersion", err)
	}
}

func TestBadMagicAndKindRejected(t *testing.T) {
	raw := encodeFrameBytes(t, Control(KindHello, NoDev, NoStep))
	raw[0] = 0x00
	if _, err := ReadFrame(bytes.NewReader(raw)); err == nil {
		t.Fatal("bad magic accepted")
	}
	raw = encodeFrameBytes(t, Control(KindHello, NoDev, NoStep))
	raw[2] = 0xEE
	if _, err := ReadFrame(bytes.NewReader(raw)); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

// TestHugePayloadLengthRejected: a forged header length beyond MaxPayload
// must error before allocating.
func TestHugePayloadLengthRejected(t *testing.T) {
	raw := encodeFrameBytes(t, Control(KindHello, NoDev, NoStep))
	raw[12], raw[13], raw[14], raw[15] = 0xFF, 0xFF, 0xFF, 0xFF
	if _, err := ReadFrame(bytes.NewReader(raw)); err == nil {
		t.Fatal("4 GiB payload length accepted")
	}
}

// TestTrailingBytesRejected: kind-specific decoders must consume their
// payload exactly.
func TestTrailingBytesRejected(t *testing.T) {
	f := EncodeLosses(0, 0, []float64{1})
	f.Payload = append(f.Payload, 0xAB)
	if _, err := DecodeLosses(f); err == nil {
		t.Fatal("trailing payload byte accepted")
	}
}

// TestForgedCountsRejected: collection counts far beyond the remaining
// payload error out instead of allocating huge slices.
func TestForgedCountsRejected(t *testing.T) {
	w := NewWriter()
	w.U32(0xFFFFFFF0) // losses count
	if _, err := DecodeLosses(&Frame{Kind: KindLosses, Payload: w.Bytes()}); err == nil {
		t.Fatal("forged losses count accepted")
	}
	w = NewWriter()
	w.U32(0xFFFFFFF0) // tensor-list count
	if _, err := DecodeTensors(&Frame{Kind: KindGrads, Payload: w.Bytes()}); err == nil {
		t.Fatal("forged tensor count accepted")
	}
}

func TestDecodeAssignWrongKind(t *testing.T) {
	if _, err := DecodeAssign(Control(KindHello, NoDev, NoStep)); err == nil {
		t.Fatal("DecodeAssign accepted a hello frame")
	}
}

// TestStreamOfFrames: multiple frames on one stream decode in order —
// the transport relies on frame boundaries being self-describing.
func TestStreamOfFrames(t *testing.T) {
	var buf bytes.Buffer
	want := []*Frame{
		Control(KindHello, NoDev, NoStep),
		EncodeLosses(1, 0, []float64{0.5}),
		EncodeTensor(KindInput, 2, 1, tensor.Ones(1, 2)),
		Control(KindDrain, NoDev, NoStep),
	}
	for _, f := range want {
		if err := WriteFrame(&buf, f); err != nil {
			t.Fatalf("WriteFrame: %v", err)
		}
	}
	for i, w := range want {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Kind != w.Kind || got.Dev != w.Dev || got.Step != w.Step {
			t.Fatalf("frame %d: got %+v, want %+v", i, got, w)
		}
	}
	if _, err := ReadFrame(&buf); err != io.EOF {
		t.Fatalf("stream end: got %v, want io.EOF", err)
	}
}
