package wire

import (
	"bytes"
	"testing"
)

// FuzzReadFrame drives the frame and payload decoders with arbitrary
// bytes: nothing may panic, and anything that decodes must re-encode to a
// frame that decodes identically (the round-trip property on the surviving
// inputs).
func FuzzReadFrame(f *testing.F) {
	f.Add(encodeSeed(Control(KindHello, NoDev, NoStep)))
	f.Add(encodeSeed(EncodeLosses(0, 3, []float64{1.5, -2})))
	f.Add(encodeSeed(EncodeAssign(&Assign{})))
	f.Add(encodeSeed(Control(KindHeartbeat, NoDev, NoStep)))
	f.Add(encodeSeed(EncodeDeviceSnapshot(1, 2, nil, nil)))
	f.Add(encodeSeed(EncodeResume(&Resume{})))
	f.Add([]byte{Magic, Version, byte(KindInput), 0})
	f.Add([]byte{Magic, 1, byte(KindHello), 0}) // version skew: old peer

	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Whatever decoded must survive a re-encode/decode round trip.
		var buf bytes.Buffer
		if err := WriteFrame(&buf, fr); err != nil {
			t.Fatalf("re-encode of decoded frame failed: %v", err)
		}
		fr2, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if fr2.Kind != fr.Kind || fr2.Dev != fr.Dev || fr2.Step != fr.Step || !bytes.Equal(fr2.Payload, fr.Payload) {
			t.Fatalf("round trip changed frame: %+v vs %+v", fr2, fr)
		}
		// Kind-specific decoders must not panic on arbitrary payloads.
		_, _ = DecodeAssign(&Frame{Kind: KindAssign, Payload: fr.Payload})
		_, _ = DecodeTensor(&Frame{Kind: KindInput, Payload: fr.Payload})
		_, _ = DecodeTensors(&Frame{Kind: KindGrads, Payload: fr.Payload})
		_, _ = DecodeLosses(&Frame{Kind: KindLosses, Payload: fr.Payload})
		_, _ = DecodeBatch(&Frame{Kind: KindBatch, Payload: fr.Payload})
		_, _, _ = DecodeDeviceSnapshot(&Frame{Kind: KindSnapshot, Payload: fr.Payload})
		_, _ = DecodeResume(&Frame{Kind: KindResume, Payload: fr.Payload})
	})
}

func encodeSeed(fr *Frame) []byte {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, fr); err != nil {
		panic(err)
	}
	return buf.Bytes()
}
