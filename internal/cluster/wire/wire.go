// Package wire is the compact binary codec of the cluster subsystem: a
// framed, versioned message format carrying tensors, batches, parameter
// and gradient snapshots, loss reports, and control messages between the
// coordinator and worker processes.
//
// Every frame is a fixed 16-byte header (magic, version, kind, device
// rank, step index, payload length) followed by a little-endian payload.
// Float32 tensor data crosses the wire via math.Float32bits, so encoding
// is exact: a round trip reproduces every value bit-for-bit, which the
// cluster's bit-equivalence guarantee depends on. All decode paths return
// errors — never panic — on truncated, oversized, or malformed input, and
// frames from a different codec version are rejected outright.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"pipebd/internal/tensor"
)

const (
	// Magic is the first byte of every frame.
	Magic = 0xBD
	// Version is the codec version; frames with any other version are
	// rejected by ReadFrame. Version 2 added the fault-tolerance frames
	// (Heartbeat, Snapshot, Resume); version 3 replaced RunConfig's
	// all-or-nothing Snapshots flag with a SnapshotPolicy (interval k plus
	// rank-0 dedup for split groups), so an un-upgraded peer fails its
	// handshake cleanly instead of mis-decoding the session setup; version
	// 4 added the peer-to-peer data plane (RunConfig.Topology, the Assign
	// peer directory, epoch, and prestaged batch-input schedule, and the
	// PeerHello / PeerInput / RingSegment / PeerAck frames that carry
	// activations and ring-all-reduce segments directly between workers);
	// version 5 added the observability plane (RunConfig.Trace and the
	// Spans frame carrying worker-side span batches to the coordinator);
	// version 6 added the runtime repartition plane (the Repartition
	// frame announcing a planned placement change, cut step plus the new
	// plan, so workers distinguish an intentional session supersession
	// from a failure); version 7 added the transformer workload (the
	// ModelSpec attention/MLP/sequence geometry and KL temperature, and
	// the DataSpec kind selecting token-sequence recipes); version 8
	// added the transient-fault absorption plane (RunConfig.Retry, the
	// Assign session id and degraded-edge list, the PeerHello resume
	// fields, and the LinkAck / SessionResume / LinkDown / Relay /
	// RelayAck frames behind resumable links and hub-degraded routing).
	Version = 8

	headerLen = 16
	// MaxPayload bounds a frame's payload so a corrupted or adversarial
	// length prefix cannot trigger a giant allocation.
	MaxPayload = 1 << 30
	// maxRank bounds tensor rank; the engine's tensors are at most 4-D.
	maxRank = 8
	// maxString bounds encoded string lengths (names, spec labels).
	maxString = 1 << 16
)

// Kind identifies a frame's message type.
type Kind uint8

const (
	// KindHello is sent by a worker immediately after a coordinator
	// connects, announcing the worker is ready for an Assign.
	KindHello Kind = iota + 1
	// KindAssign carries the session setup: plan, model spec, run
	// config, hosted device ranks, and the seed parameter snapshot.
	KindAssign
	// KindInput carries a device's full-batch input activation for one
	// step (the data batch for group 0, the relayed teacher activation
	// otherwise).
	KindInput
	// KindOutput carries a device's boundary-activation shard for one
	// step, flowing back to the coordinator for assembly.
	KindOutput
	// KindGrads carries a member's flattened gradient tensors for one
	// step of the intra-group all-reduce.
	KindGrads
	// KindGradsReduced carries the rank-ordered gradient mean back to a
	// member.
	KindGradsReduced
	// KindStepDone signals a device finished its backward pass for one
	// step (only sent when decoupled parameter update is disabled).
	KindStepDone
	// KindStepGo releases all devices' parameter updates for one step
	// (the global no-DPU barrier).
	KindStepGo
	// KindLosses streams a device's per-block losses for one step.
	KindLosses
	// KindFinalParams carries a group leader's trained student
	// parameters back to the coordinator after the last step.
	KindFinalParams
	// KindDone signals a device completed its run.
	KindDone
	// KindDrain asks the worker to end the session; the worker returns
	// to accepting coordinators (or exits, for bounded-session servers).
	KindDrain
	// KindBatch carries a full dataset batch (input tensor plus labels),
	// for pipelines that also ship labels to the first group.
	KindBatch
	// KindHeartbeat is a liveness beacon a worker emits on an interval so
	// the coordinator can declare it dead on silence (hang, partition)
	// rather than only on a connection error.
	KindHeartbeat
	// KindSnapshot carries one device's recovery state after it finished a
	// step: the student parameters and optimizer velocities the device
	// would need to replay the next step bit-identically.
	KindSnapshot
	// KindResume is the session-setup message of a re-placement: an Assign
	// plus the per-device snapshots (and step counters) to restore, sent
	// instead of KindAssign when a coordinator moves a dead worker's
	// devices onto a surviving or re-joined worker.
	KindResume
	// KindPeerHello is the worker-to-worker handshake of the peer data
	// plane: after dialing a peer worker, a session identifies the link it
	// is establishing (run epoch, dialing device, target device). The
	// accepting session echoes the frame back on the same connection to
	// complete the handshake.
	KindPeerHello
	// KindPeerInput carries a device's boundary-activation shard for one
	// step directly to a member of the next group (ring topology's
	// replacement for the KindOutput → coordinator → KindInput relay).
	KindPeerInput
	// KindRingSegment carries one segment of the decentralized gradient
	// all-reduce between members of a split group: reduce-scatter
	// contributions, all-gather rounds, and the two-member full-vector
	// exchange.
	KindRingSegment
	// KindPeerAck acknowledges consumption of a peer-input frame so the
	// sending device can bound its in-flight activation window.
	KindPeerAck
	// KindSpans carries a batch of observability span events from a
	// worker-hosted device track to the coordinator (sent at step
	// boundaries when RunConfig.Trace is set; never on the hot path of an
	// untraced run).
	KindSpans
	// KindRepartition announces a planned runtime repartition to every
	// device of a session: the run is being cut at the frame's Step (the
	// last step whose state carries over) and will restart on the payload
	// plan. Receiving it means the session is superseded deliberately —
	// the worker ends the session cleanly and stays up for the resumed
	// placement — not that anything failed.
	KindRepartition
	// KindLinkAck is the resumable-link acknowledgement: the cumulative
	// count of application frames the sender has received on this link.
	// It is consumed inside transport.Resumable — never counted as an
	// application frame itself — and lets the far side trim its replay
	// buffer.
	KindLinkAck
	// KindSessionResume re-attaches a redialed control connection to a
	// live worker session: the session id the coordinator was assigned
	// and the count of application frames the dialer had received before
	// the link broke. The worker echoes the frame back with its own
	// received count, and both sides replay exactly the frames the other
	// never saw.
	KindSessionResume
	// KindLinkDown reports a peer link whose reconnect budget is
	// exhausted: the payload names the device edge. The coordinator's
	// fault classifier uses these reports (plus a worker liveness probe)
	// to degrade the broken edges to hub-relayed routing instead of
	// consuming a restart-budget unit.
	KindLinkDown
	// KindRelay carries a boundary-activation shard for one step across a
	// degraded peer edge: the sending device ships it to the coordinator,
	// which forwards it verbatim to the receiving device's session (Dev
	// is the receiver; the payload names the sender). Bit-identical to
	// the KindPeerInput frame it replaces.
	KindRelay
	// KindRelayAck acknowledges consumption of a relayed activation shard
	// across a degraded edge (Dev is the original sender, for routing;
	// the payload names the acking receiver) — the hub-relayed twin of
	// KindPeerAck.
	KindRelayAck
	kindEnd // sentinel: all valid kinds are below this
)

var kindNames = map[Kind]string{
	KindHello: "hello", KindAssign: "assign", KindInput: "input",
	KindOutput: "output", KindGrads: "grads", KindGradsReduced: "grads-reduced",
	KindStepDone: "step-done", KindStepGo: "step-go", KindLosses: "losses",
	KindFinalParams: "final-params", KindDone: "done", KindDrain: "drain",
	KindBatch: "batch", KindHeartbeat: "heartbeat", KindSnapshot: "snapshot",
	KindResume: "resume", KindPeerHello: "peer-hello", KindPeerInput: "peer-input",
	KindRingSegment: "ring-segment", KindPeerAck: "peer-ack", KindSpans: "spans",
	KindRepartition: "repartition", KindLinkAck: "link-ack",
	KindSessionResume: "session-resume", KindLinkDown: "link-down",
	KindRelay: "relay", KindRelayAck: "relay-ack",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Frame is one wire message: a kind, the device rank and step it applies
// to (NoDev / NoStep when not applicable), and an opaque payload decoded
// by the kind-specific helpers.
type Frame struct {
	Kind    Kind
	Dev     int32
	Step    int32
	Payload []byte
}

// NoDev and NoStep mark frames that are not scoped to a device or step.
const (
	NoDev  int32 = -1
	NoStep int32 = -1
)

// ErrVersion is wrapped by ReadFrame errors caused by a frame from a
// different codec version.
var ErrVersion = errors.New("wire: version mismatch")

// WriteFrame encodes f to w: 16-byte header followed by the payload.
func WriteFrame(w io.Writer, f *Frame) error {
	if len(f.Payload) > MaxPayload {
		return fmt.Errorf("wire: %v payload %d exceeds limit %d", f.Kind, len(f.Payload), MaxPayload)
	}
	var hdr [headerLen]byte
	hdr[0] = Magic
	hdr[1] = Version
	hdr[2] = uint8(f.Kind)
	hdr[3] = 0
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(f.Dev))
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(f.Step))
	binary.LittleEndian.PutUint32(hdr[12:16], uint32(len(f.Payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(f.Payload)
	return err
}

// ReadFrame decodes the next frame from r. Truncated input yields
// io.EOF (clean end before a header) or io.ErrUnexpectedEOF; malformed
// headers yield descriptive errors, and version mismatches wrap
// ErrVersion.
func ReadFrame(r io.Reader) (*Frame, error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		return nil, err
	}
	if hdr[0] != Magic {
		return nil, fmt.Errorf("wire: bad magic 0x%02x (not a pipebd frame)", hdr[0])
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		return nil, truncated(err)
	}
	if hdr[1] != Version {
		return nil, fmt.Errorf("%w: frame version %d, this codec speaks %d", ErrVersion, hdr[1], Version)
	}
	kind := Kind(hdr[2])
	if kind == 0 || kind >= kindEnd {
		return nil, fmt.Errorf("wire: unknown frame kind %d", hdr[2])
	}
	n := binary.LittleEndian.Uint32(hdr[12:16])
	if n > MaxPayload {
		return nil, fmt.Errorf("wire: %v payload %d exceeds limit %d", kind, n, MaxPayload)
	}
	f := &Frame{
		Kind:    kind,
		Dev:     int32(binary.LittleEndian.Uint32(hdr[4:8])),
		Step:    int32(binary.LittleEndian.Uint32(hdr[8:12])),
		Payload: make([]byte, n),
	}
	if _, err := io.ReadFull(r, f.Payload); err != nil {
		return nil, truncated(err)
	}
	return f, nil
}

// truncated normalizes mid-message EOF to io.ErrUnexpectedEOF.
func truncated(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// --- payload primitives ------------------------------------------------------

// Writer accumulates a little-endian payload.
type Writer struct{ buf []byte }

// NewWriter returns an empty payload writer.
func NewWriter() *Writer { return &Writer{} }

// Bytes returns the accumulated payload.
func (w *Writer) Bytes() []byte { return w.buf }

// U8 appends a byte.
func (w *Writer) U8(v uint8) { w.buf = append(w.buf, v) }

// U32 appends a little-endian uint32.
func (w *Writer) U32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }

// I32 appends a little-endian int32.
func (w *Writer) I32(v int32) { w.U32(uint32(v)) }

// I64 appends a little-endian int64.
func (w *Writer) I64(v int64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, uint64(v)) }

// F32 appends a float32 via its IEEE-754 bits (exact).
func (w *Writer) F32(v float32) { w.U32(math.Float32bits(v)) }

// F64 appends a float64 via its IEEE-754 bits (exact).
func (w *Writer) F64(v float64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, math.Float64bits(v))
}

// Bool appends a bool as one byte.
func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// String appends a length-prefixed string.
func (w *Writer) String(s string) {
	w.U32(uint32(len(s)))
	w.buf = append(w.buf, s...)
}

// Blob appends a length-prefixed byte slice, bounded by MaxPayload (the
// payloads the cluster nests — encoded frames inside ledger records — can
// far exceed the maxString name bound).
func (w *Writer) Blob(b []byte) {
	w.U32(uint32(len(b)))
	w.buf = append(w.buf, b...)
}

// I32s appends a count-prefixed int32 slice.
func (w *Writer) I32s(vs []int) {
	w.U32(uint32(len(vs)))
	for _, v := range vs {
		w.I32(int32(v))
	}
}

// F64s appends a count-prefixed float64 slice.
func (w *Writer) F64s(vs []float64) {
	w.U32(uint32(len(vs)))
	for _, v := range vs {
		w.F64(v)
	}
}

// F32s appends a count-prefixed float32 slice, bulk-encoded into a
// pre-sized region like Tensor's data section — ring-all-reduce segments
// are a per-step hot path.
func (w *Writer) F32s(vs []float32) {
	w.U32(uint32(len(vs)))
	off := len(w.buf)
	w.buf = append(w.buf, make([]byte, 4*len(vs))...)
	for i, v := range vs {
		binary.LittleEndian.PutUint32(w.buf[off+4*i:], math.Float32bits(v))
	}
}

// Tensor appends a tensor: rank, dims, then the raw float32 data. The
// data section is bulk-encoded into a pre-sized region — tensor frames
// are the per-step hot path (activations, gradients), so no per-element
// append growth.
func (w *Writer) Tensor(t *tensor.Tensor) {
	shape := t.Shape()
	w.U32(uint32(len(shape)))
	for _, d := range shape {
		w.U32(uint32(d))
	}
	data := t.Data()
	off := len(w.buf)
	w.buf = append(w.buf, make([]byte, 4*len(data))...)
	for i, v := range data {
		binary.LittleEndian.PutUint32(w.buf[off+4*i:], math.Float32bits(v))
	}
}

// Tensors appends a count-prefixed tensor list.
func (w *Writer) Tensors(ts []*tensor.Tensor) {
	w.U32(uint32(len(ts)))
	for _, t := range ts {
		w.Tensor(t)
	}
}

// Reader consumes a little-endian payload. The first decode error sticks:
// every later call returns zero values, and Err reports it, so decoders
// can run straight-line and check once.
type Reader struct {
	buf []byte
	pos int
	err error
}

// NewReader wraps a payload.
func NewReader(payload []byte) *Reader { return &Reader{buf: payload} }

// Err returns the first error encountered, if any.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of unconsumed bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.pos }

// Close verifies the payload was consumed exactly.
func (r *Reader) Close() error {
	if r.err != nil {
		return r.err
	}
	if r.pos != len(r.buf) {
		return fmt.Errorf("wire: %d trailing bytes in payload", len(r.buf)-r.pos)
	}
	return nil
}

func (r *Reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("wire: "+format, args...)
	}
}

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.pos+n > len(r.buf) {
		r.fail("truncated payload: need %d bytes at offset %d of %d: %w", n, r.pos, len(r.buf), io.ErrUnexpectedEOF)
		return nil
	}
	b := r.buf[r.pos : r.pos+n]
	r.pos += n
	return b
}

// U8 reads a byte.
func (r *Reader) U8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U32 reads a little-endian uint32.
func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// I32 reads a little-endian int32.
func (r *Reader) I32() int32 { return int32(r.U32()) }

// I64 reads a little-endian int64.
func (r *Reader) I64() int64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return int64(binary.LittleEndian.Uint64(b))
}

// F32 reads a float32.
func (r *Reader) F32() float32 { return math.Float32frombits(r.U32()) }

// F64 reads a float64.
func (r *Reader) F64() float64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}

// Bool reads a bool.
func (r *Reader) Bool() bool { return r.U8() != 0 }

// String reads a length-prefixed string.
func (r *Reader) String() string {
	n := r.U32()
	if n > maxString {
		r.fail("string length %d exceeds limit %d", n, maxString)
		return ""
	}
	b := r.take(int(n))
	return string(b)
}

// Blob reads a length-prefixed byte slice (copied, so the result does not
// alias the payload buffer).
func (r *Reader) Blob() []byte {
	n := r.U32()
	if n > MaxPayload {
		r.fail("blob length %d exceeds limit %d", n, MaxPayload)
		return nil
	}
	b := r.take(int(n))
	if b == nil {
		return nil
	}
	return append([]byte(nil), b...)
}

// count validates a collection count against the bytes that could
// plausibly back it (at least minElem bytes per element must remain).
func (r *Reader) count(n uint32, minElem int) int {
	if r.err != nil {
		return 0
	}
	if int64(n)*int64(minElem) > int64(r.Remaining()) {
		r.fail("count %d exceeds remaining payload (%d bytes)", n, r.Remaining())
		return 0
	}
	return int(n)
}

// I32s reads a count-prefixed int32 slice into ints.
func (r *Reader) I32s() []int {
	n := r.count(r.U32(), 4)
	if n == 0 {
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = int(r.I32())
	}
	return out
}

// F32s reads a count-prefixed float32 slice with one bounds check and a
// bulk decode loop.
func (r *Reader) F32s() []float32 {
	n := r.count(r.U32(), 4)
	if n == 0 {
		return nil
	}
	raw := r.take(n * 4)
	if raw == nil {
		return nil
	}
	out := make([]float32, n)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(raw[4*i:]))
	}
	return out
}

// F64s reads a count-prefixed float64 slice.
func (r *Reader) F64s() []float64 {
	n := r.count(r.U32(), 8)
	if n == 0 {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = r.F64()
	}
	return out
}

// Tensor reads a tensor, validating rank and dimensions: rank must be in
// [1, 8] and every dimension positive (the engine has no zero-dimension
// tensors, and tensor.New would panic on one — the codec turns that into
// an error instead).
func (r *Reader) Tensor() *tensor.Tensor {
	rank := r.U32()
	if r.err != nil {
		return nil
	}
	if rank == 0 || rank > maxRank {
		r.fail("tensor rank %d outside [1, %d]", rank, maxRank)
		return nil
	}
	shape := make([]int, rank)
	n := int64(1)
	for i := range shape {
		d := r.U32()
		if d == 0 {
			r.fail("tensor has zero dimension in shape %v", shape[:i+1])
			return nil
		}
		shape[i] = int(d)
		n *= int64(d)
		if n*4 > int64(MaxPayload) {
			r.fail("tensor of shape %v exceeds payload limit", shape[:i+1])
			return nil
		}
	}
	if int64(r.Remaining()) < n*4 {
		r.fail("truncated tensor: shape %v needs %d bytes, %d remain: %w", shape, n*4, r.Remaining(), io.ErrUnexpectedEOF)
		return nil
	}
	t := tensor.New(shape...)
	data := t.Data()
	// Bulk-decode the data section: one bounds check, then a tight loop.
	raw := r.take(int(n) * 4)
	for i := range data {
		data[i] = math.Float32frombits(binary.LittleEndian.Uint32(raw[4*i:]))
	}
	return t
}

// Tensors reads a count-prefixed tensor list.
func (r *Reader) Tensors() []*tensor.Tensor {
	// Each tensor is at least rank + one dim + one element = 12 bytes.
	n := r.count(r.U32(), 12)
	if n == 0 {
		return nil
	}
	out := make([]*tensor.Tensor, n)
	for i := range out {
		out[i] = r.Tensor()
		if r.err != nil {
			return nil
		}
	}
	return out
}
