package wire

import (
	"reflect"
	"strings"
	"testing"

	"pipebd/internal/sched"
)

func repartitionPlan() sched.Plan {
	return sched.Plan{Name: "rebalanced", Groups: []sched.Group{
		{Devices: []int{0}, Blocks: []int{0}},
		{Devices: []int{1}, Blocks: []int{1, 2}},
		{Devices: []int{2, 3}, Blocks: []int{3}, Shares: []int{2, 1}},
	}}
}

// TestPlanPayloadRoundTrip: the standalone plan codec (the ledger's
// repartition record body) preserves every field, including shares.
func TestPlanPayloadRoundTrip(t *testing.T) {
	p := repartitionPlan()
	got, err := DecodePlan(EncodePlan(p))
	if err != nil {
		t.Fatalf("DecodePlan: %v", err)
	}
	if !reflect.DeepEqual(got, p) {
		t.Fatalf("plan round trip mismatch:\n got %+v\nwant %+v", got, p)
	}
}

// TestPlanPayloadTruncatedRejected: every truncation of a valid plan
// payload must error, never yield a silently partial plan.
func TestPlanPayloadTruncatedRejected(t *testing.T) {
	full := EncodePlan(repartitionPlan())
	for cut := 0; cut < len(full); cut++ {
		if _, err := DecodePlan(full[:cut]); err == nil {
			t.Fatalf("truncation at %d/%d bytes decoded without error", cut, len(full))
		}
	}
	if _, err := DecodePlan(append(append([]byte{}, full...), 0xff)); err == nil {
		t.Fatal("trailing byte decoded without error")
	}
}

// TestRepartitionFrameRoundTrip: the cut step rides the frame header,
// the plan rides the payload, and both survive the wire.
func TestRepartitionFrameRoundTrip(t *testing.T) {
	p := repartitionPlan()
	got := roundTripFrame(t, EncodeRepartition(6, p))
	if got.Kind != KindRepartition || got.Step != 6 || got.Dev != NoDev {
		t.Fatalf("frame header mismatch: %+v", got)
	}
	plan, err := DecodeRepartition(got)
	if err != nil {
		t.Fatalf("DecodeRepartition: %v", err)
	}
	if !reflect.DeepEqual(plan, p) {
		t.Fatalf("repartition plan mismatch:\n got %+v\nwant %+v", plan, p)
	}
}

// TestDecodeRepartitionWrongKind: feeding another frame kind is a
// protocol bug and must be reported as such.
func TestDecodeRepartitionWrongKind(t *testing.T) {
	_, err := DecodeRepartition(Control(KindHello, NoDev, NoStep))
	if err == nil || !strings.Contains(err.Error(), "expected") {
		t.Fatalf("wrong kind: got %v, want kind refusal", err)
	}
}
