package wire

import (
	"fmt"
	"math/rand"

	"pipebd/internal/dataset"
	"pipebd/internal/sched"
	"pipebd/internal/tensor"
)

// ModelSpec names a reproducible workbench constructor plus its sizing,
// so a worker can rebuild a bit-identical replica of the coordinator's
// model from the spec alone (the parameter snapshot then guards against
// any drift in the coordinator's weights).
//
// The conv families use Channels/Height/Width; the transformer family
// (codec v7) reuses Channels as the hidden width and adds its own
// geometry — attention heads, per-side MLP widths, sequence length,
// vocabulary, and the KL temperature of the logit block.
type ModelSpec struct {
	Name     string // registry name, e.g. "tiny", "supernet", or "transformer"
	Seed     int64
	Blocks   int
	Channels int
	Height   int
	Width    int
	Classes  int

	Heads     int
	FFTeacher int
	FFStudent int
	SeqLen    int
	Vocab     int
	Temp      float64
}

// SnapshotPolicy governs the recovery-snapshot traffic of a session. It
// replaced the v2 codec's all-or-nothing Snapshots flag: the interval
// trades snapshot bandwidth against replay length, and rank-0 dedup
// exploits the engine's replica guarantee (all members of a split group
// hold bit-identical parameters after every step) to ship one member
// snapshot per group instead of k.
type SnapshotPolicy struct {
	// Interval asks each snapshotting device to emit its recovery state
	// after every k-th step (steps k-1, 2k-1, ...). 0 disables snapshots;
	// negative intervals are invalid.
	Interval int
	// Rank0Dedup restricts snapshot emission to each group's rank-0
	// member. The coordinator commits the group snapshot only once every
	// member has accounted for the covered steps (losses, relayed
	// outputs, barrier arrivals), so replayed loss rows stay complete.
	Rank0Dedup bool
}

// Enabled reports whether the policy asks for any snapshots at all.
func (p SnapshotPolicy) Enabled() bool { return p.Interval > 0 }

// Covers reports whether a device finishing the given step should emit
// (or a committed snapshot may exist for) that step under the policy.
func (p SnapshotPolicy) Covers(step int) bool {
	return p.Interval > 0 && (step+1)%p.Interval == 0
}

// Validate rejects malformed policies.
func (p SnapshotPolicy) Validate() error {
	if p.Interval < 0 {
		return fmt.Errorf("wire: snapshot interval must be >= 0, got %d", p.Interval)
	}
	if p.Rank0Dedup && p.Interval == 0 {
		return fmt.Errorf("wire: snapshot rank-0 dedup needs snapshots enabled (interval >= 1)")
	}
	return nil
}

// RunConfig is the per-session training configuration.
type RunConfig struct {
	DPU      bool
	LR       float32
	Momentum float32
	Buffer   int
	Steps    int
	Backend  string // tensor backend registry name; "" keeps the worker default
	// Snap schedules the KindSnapshot frames that feed the coordinator's
	// replay-based recovery; the zero policy disables them.
	Snap SnapshotPolicy
	// HeartbeatMillis asks the worker to emit KindHeartbeat frames on this
	// interval; <= 0 disables the beacon.
	HeartbeatMillis int
	// Topology selects the data plane: "" or "hub" routes activations and
	// gradient reductions through the coordinator; "ring" moves them onto
	// direct worker-to-worker links (the coordinator keeps only the
	// control plane: placement, barriers, losses, snapshots).
	Topology string
	// Data optionally describes the run's batch schedule as a
	// deterministic recipe (N > 0 enables it): ring sessions hosting
	// first-group devices regenerate their batches locally instead of
	// receiving input bytes from the coordinator — distributed data
	// loading. The coordinator validates at run start that the recipe
	// reproduces the actual batches bit-exactly.
	Data DataSpec
	// Trace asks the worker to record per-step span events on every
	// hosted device and ship them to the coordinator as KindSpans frames
	// at step boundaries. Off by default; tracing never alters the
	// training trajectory.
	Trace bool
	// Retry enables resumable links (codec v8): both the control link and
	// every peer link buffer unacked frames and survive connection loss
	// by redial-and-replay instead of failing the session. The zero spec
	// disables absorption, keeping the pre-v8 fail-fast behavior.
	Retry RetrySpec
}

// RetrySpec is the transient-fault absorption policy of a session's
// links. BudgetMillis > 0 enables it: a broken link redials with
// exponential backoff starting at BackoffMillis, gives up (terminal
// link-down) once BudgetMillis of downtime elapses, and each side acks
// every AckEvery received frames so replay buffers stay bounded. Zero
// Backoff/AckEvery take defaults (10 ms / 8 frames).
type RetrySpec struct {
	BackoffMillis int
	BudgetMillis  int
	AckEvery      int
}

// Enabled reports whether the spec asks for fault absorption at all.
func (r RetrySpec) Enabled() bool { return r.BudgetMillis > 0 }

// DataSpec is a deterministic synthetic-dataset recipe split at Batch
// samples each: Kind "" (images) regenerates
// dataset.NewRandom(rand.NewSource(Seed), N, C, H, W, Classes), Kind
// "tokens" (codec v7) regenerates dataset.NewTokens(rand.NewSource(Seed),
// N, L, Vocab, Classes). Any process evaluating a recipe gets
// bit-identical tensors, which is what lets ring workers source training
// inputs without moving them over any wire.
type DataSpec struct {
	Seed                int64
	N, C, H, W, Classes int
	Batch               int

	Kind     string // "" for images, "tokens" for token sequences
	L, Vocab int    // token-sequence geometry (Kind "tokens")
}

// Build evaluates the recipe into its synthetic dataset. The generators
// draw from the seeded source in a fixed order, so every process gets
// bit-identical data.
func (ds DataSpec) Build() (*dataset.Synthetic, error) {
	switch ds.Kind {
	case "":
		return dataset.NewRandom(rand.New(rand.NewSource(ds.Seed)), ds.N, ds.C, ds.H, ds.W, ds.Classes), nil
	case "tokens":
		return dataset.NewTokens(rand.New(rand.NewSource(ds.Seed)), ds.N, ds.L, ds.Vocab, ds.Classes), nil
	default:
		return nil, fmt.Errorf("wire: unknown data recipe kind %q (want \"\" or \"tokens\")", ds.Kind)
	}
}

// Batches evaluates the recipe and splits it into its batch schedule.
func (ds DataSpec) Batches() ([]dataset.Batch, error) {
	s, err := ds.Build()
	if err != nil {
		return nil, err
	}
	return s.Batches(ds.Batch), nil
}

// Snapshot is a full parameter snapshot of a workbench, indexed
// [block][param] in declaration order, for the frozen teacher and the
// trainable student separately.
type Snapshot struct {
	Teacher [][]*tensor.Tensor
	Student [][]*tensor.Tensor
}

// Assign is the session-setup message: everything a worker needs to host
// its share of a plan's devices.
type Assign struct {
	Plan    sched.Plan
	Spec    ModelSpec
	Run     RunConfig
	Devices []int // device ranks hosted by the receiving worker
	// Peers is the placement directory for the peer data plane: Peers[d]
	// is the listen address of the worker hosting device d. Required
	// (len == total devices) when Run.Topology is "ring"; empty for hub
	// sessions.
	Peers []string
	// Epoch stamps the run attempt the session belongs to. Peer handshakes
	// carry it so a stale connection from a previous attempt (or a previous
	// coordinator generation) can never wire into a new mesh.
	Epoch    int64
	Snapshot Snapshot
	// Inputs prestages the run's whole batch-input schedule (Inputs[s] is
	// step s's full batch) on ring sessions hosting first-group devices,
	// so the steady-state run needs no per-step input frames from the
	// coordinator. Empty for hub sessions and for ring sessions hosting
	// only later groups.
	Inputs []*tensor.Tensor
	// Session identifies this control link for resume (codec v8): a
	// redialed connection carrying KindSessionResume with this id
	// re-attaches to the live session. 0 when Run.Retry is disabled.
	Session int64
	// Degraded lists peer edges demoted to hub-relayed routing, as
	// flattened device-rank pairs [from0, to0, from1, to1, ...]. The mesh
	// skips these pairs; activations cross them as KindRelay frames via
	// the coordinator, and groups containing a degraded edge fall back to
	// the hub gradient reduction. Empty in the fault-free case.
	Degraded []int
}

// DegradedEdges decodes the flattened Degraded list into pairs.
func (a *Assign) DegradedEdges() [][2]int {
	var out [][2]int
	for i := 0; i+1 < len(a.Degraded); i += 2 {
		out = append(out, [2]int{a.Degraded[i], a.Degraded[i+1]})
	}
	return out
}

// writeAssignBody packs the Assign fields; shared by the Assign and
// Resume frames so the two session-setup messages cannot drift apart.
func writeAssignBody(w *Writer, a *Assign) {
	writePlan(w, a.Plan)
	w.String(a.Spec.Name)
	w.I64(a.Spec.Seed)
	w.I32(int32(a.Spec.Blocks))
	w.I32(int32(a.Spec.Channels))
	w.I32(int32(a.Spec.Height))
	w.I32(int32(a.Spec.Width))
	w.I32(int32(a.Spec.Classes))
	w.I32(int32(a.Spec.Heads))
	w.I32(int32(a.Spec.FFTeacher))
	w.I32(int32(a.Spec.FFStudent))
	w.I32(int32(a.Spec.SeqLen))
	w.I32(int32(a.Spec.Vocab))
	w.F64(a.Spec.Temp)
	w.Bool(a.Run.DPU)
	w.F32(a.Run.LR)
	w.F32(a.Run.Momentum)
	w.I32(int32(a.Run.Buffer))
	w.I32(int32(a.Run.Steps))
	w.String(a.Run.Backend)
	w.I32(int32(a.Run.Snap.Interval))
	w.Bool(a.Run.Snap.Rank0Dedup)
	w.I32(int32(a.Run.HeartbeatMillis))
	w.String(a.Run.Topology)
	w.I64(a.Run.Data.Seed)
	w.I32(int32(a.Run.Data.N))
	w.I32(int32(a.Run.Data.C))
	w.I32(int32(a.Run.Data.H))
	w.I32(int32(a.Run.Data.W))
	w.I32(int32(a.Run.Data.Classes))
	w.I32(int32(a.Run.Data.Batch))
	w.String(a.Run.Data.Kind)
	w.I32(int32(a.Run.Data.L))
	w.I32(int32(a.Run.Data.Vocab))
	w.Bool(a.Run.Trace)
	w.I32s(a.Devices)
	w.U32(uint32(len(a.Peers)))
	for _, p := range a.Peers {
		w.String(p)
	}
	w.I64(a.Epoch)
	writeSnapshotHalf(w, a.Snapshot.Teacher)
	writeSnapshotHalf(w, a.Snapshot.Student)
	w.Tensors(a.Inputs)
	w.I64(a.Session)
	w.I32s(a.Degraded)
	w.I32(int32(a.Run.Retry.BackoffMillis))
	w.I32(int32(a.Run.Retry.BudgetMillis))
	w.I32(int32(a.Run.Retry.AckEvery))
}

// readAssignBody unpacks the Assign fields written by writeAssignBody.
func readAssignBody(r *Reader) (*Assign, error) {
	a := &Assign{}
	a.Plan = readPlan(r)
	a.Spec.Name = r.String()
	a.Spec.Seed = r.I64()
	a.Spec.Blocks = int(r.I32())
	a.Spec.Channels = int(r.I32())
	a.Spec.Height = int(r.I32())
	a.Spec.Width = int(r.I32())
	a.Spec.Classes = int(r.I32())
	a.Spec.Heads = int(r.I32())
	a.Spec.FFTeacher = int(r.I32())
	a.Spec.FFStudent = int(r.I32())
	a.Spec.SeqLen = int(r.I32())
	a.Spec.Vocab = int(r.I32())
	a.Spec.Temp = r.F64()
	a.Run.DPU = r.Bool()
	a.Run.LR = r.F32()
	a.Run.Momentum = r.F32()
	a.Run.Buffer = int(r.I32())
	a.Run.Steps = int(r.I32())
	a.Run.Backend = r.String()
	a.Run.Snap.Interval = int(r.I32())
	a.Run.Snap.Rank0Dedup = r.Bool()
	a.Run.HeartbeatMillis = int(r.I32())
	a.Run.Topology = r.String()
	a.Run.Data.Seed = r.I64()
	a.Run.Data.N = int(r.I32())
	a.Run.Data.C = int(r.I32())
	a.Run.Data.H = int(r.I32())
	a.Run.Data.W = int(r.I32())
	a.Run.Data.Classes = int(r.I32())
	a.Run.Data.Batch = int(r.I32())
	a.Run.Data.Kind = r.String()
	a.Run.Data.L = int(r.I32())
	a.Run.Data.Vocab = int(r.I32())
	a.Run.Trace = r.Bool()
	a.Devices = r.I32s()
	np := r.count(r.U32(), 4)
	for i := 0; i < np && r.Err() == nil; i++ {
		a.Peers = append(a.Peers, r.String())
	}
	a.Epoch = r.I64()
	var err error
	if a.Snapshot.Teacher, err = readSnapshotHalf(r); err != nil {
		return nil, err
	}
	if a.Snapshot.Student, err = readSnapshotHalf(r); err != nil {
		return nil, err
	}
	a.Inputs = r.Tensors()
	a.Session = r.I64()
	a.Degraded = r.I32s()
	a.Run.Retry.BackoffMillis = int(r.I32())
	a.Run.Retry.BudgetMillis = int(r.I32())
	a.Run.Retry.AckEvery = int(r.I32())
	if len(a.Degraded)%2 != 0 {
		return nil, fmt.Errorf("wire: degraded edge list has odd length %d", len(a.Degraded))
	}
	return a, r.Err()
}

// writePlan packs a sched.Plan; the single codec shared by the Assign /
// Resume session setup, the Repartition announcement, and the ledger's
// repartition record, so a plan round-trips identically everywhere.
func writePlan(w *Writer, p sched.Plan) {
	w.String(p.Name)
	w.U32(uint32(len(p.Groups)))
	for _, g := range p.Groups {
		w.I32s(g.Devices)
		w.I32s(g.Blocks)
		w.I32s(g.Shares)
	}
}

// readPlan unpacks a plan written by writePlan; errors surface through
// the reader's sticky error.
func readPlan(r *Reader) sched.Plan {
	var p sched.Plan
	p.Name = r.String()
	ng := r.count(r.U32(), 12) // each group holds three counted slices
	for i := 0; i < ng && r.Err() == nil; i++ {
		g := sched.Group{Devices: r.I32s(), Blocks: r.I32s(), Shares: r.I32s()}
		p.Groups = append(p.Groups, g)
	}
	return p
}

// EncodePlan packs a plan into a standalone byte payload (the ledger's
// repartition record body).
func EncodePlan(p sched.Plan) []byte {
	w := NewWriter()
	writePlan(w, p)
	return w.Bytes()
}

// DecodePlan unpacks a payload written by EncodePlan.
func DecodePlan(b []byte) (sched.Plan, error) {
	r := NewReader(b)
	p := readPlan(r)
	if err := r.Close(); err != nil {
		return sched.Plan{}, err
	}
	return p, nil
}

// EncodeRepartition packs a planned-repartition announcement: the run is
// cut after step `cut` and restarts on plan p.
func EncodeRepartition(cut int32, p sched.Plan) *Frame {
	return &Frame{Kind: KindRepartition, Dev: NoDev, Step: cut, Payload: EncodePlan(p)}
}

// DecodeRepartition unpacks a Repartition frame's plan (the cut step is
// the frame's Step field).
func DecodeRepartition(f *Frame) (sched.Plan, error) {
	if f.Kind != KindRepartition {
		return sched.Plan{}, fmt.Errorf("wire: expected %v frame, got %v", KindRepartition, f.Kind)
	}
	return DecodePlan(f.Payload)
}

// EncodeAssign packs an Assign into a frame.
func EncodeAssign(a *Assign) *Frame {
	w := NewWriter()
	writeAssignBody(w, a)
	return &Frame{Kind: KindAssign, Dev: NoDev, Step: NoStep, Payload: w.Bytes()}
}

// DecodeAssign unpacks an Assign frame.
func DecodeAssign(f *Frame) (*Assign, error) {
	if f.Kind != KindAssign {
		return nil, fmt.Errorf("wire: expected %v frame, got %v", KindAssign, f.Kind)
	}
	r := NewReader(f.Payload)
	a, err := readAssignBody(r)
	if err != nil {
		return nil, err
	}
	if err := r.Close(); err != nil {
		return nil, err
	}
	return a, nil
}

// DeviceState is one device's recovery state: the step it completed last
// and the student parameters plus optimizer velocities it held right
// after that step's update (its GradTensors order: blocks in group order,
// parameters in declaration order). Step -1 means the device never
// finished a step and Params/Velocity hold the seed state.
type DeviceState struct {
	Dev      int
	Step     int
	Params   []*tensor.Tensor
	Velocity []*tensor.Tensor
}

// EncodeDeviceSnapshot packs one device's post-step recovery state.
func EncodeDeviceSnapshot(dev, step int32, params, velocity []*tensor.Tensor) *Frame {
	w := NewWriter()
	w.Tensors(params)
	w.Tensors(velocity)
	return &Frame{Kind: KindSnapshot, Dev: dev, Step: step, Payload: w.Bytes()}
}

// DecodeDeviceSnapshot unpacks a snapshot frame into its parameter and
// velocity lists. The two lists must have the same length.
func DecodeDeviceSnapshot(f *Frame) (params, velocity []*tensor.Tensor, err error) {
	r := NewReader(f.Payload)
	params = r.Tensors()
	velocity = r.Tensors()
	if err := r.Close(); err != nil {
		return nil, nil, err
	}
	if len(params) != len(velocity) {
		return nil, nil, fmt.Errorf("wire: snapshot has %d params but %d velocities", len(params), len(velocity))
	}
	return params, velocity, nil
}

// Resume is the re-placement session-setup message: the full Assign a
// fresh worker needs to rebuild the devices, plus the per-device states
// to restore before replaying. States must cover every entry of
// Assign.Devices exactly once.
type Resume struct {
	Assign
	States []DeviceState
}

// EncodeResume packs a Resume into a frame.
func EncodeResume(res *Resume) *Frame {
	w := NewWriter()
	writeAssignBody(w, &res.Assign)
	w.U32(uint32(len(res.States)))
	for _, st := range res.States {
		w.I32(int32(st.Dev))
		w.I32(int32(st.Step))
		w.Tensors(st.Params)
		w.Tensors(st.Velocity)
	}
	return &Frame{Kind: KindResume, Dev: NoDev, Step: NoStep, Payload: w.Bytes()}
}

// DecodeResume unpacks a Resume frame, validating that the states match
// the assigned devices one-to-one.
func DecodeResume(f *Frame) (*Resume, error) {
	if f.Kind != KindResume {
		return nil, fmt.Errorf("wire: expected %v frame, got %v", KindResume, f.Kind)
	}
	r := NewReader(f.Payload)
	a, err := readAssignBody(r)
	if err != nil {
		return nil, err
	}
	res := &Resume{Assign: *a}
	n := r.count(r.U32(), 16) // dev + step + two counted tensor lists
	for i := 0; i < n && r.Err() == nil; i++ {
		st := DeviceState{Dev: int(r.I32()), Step: int(r.I32())}
		st.Params = r.Tensors()
		st.Velocity = r.Tensors()
		if len(st.Params) != len(st.Velocity) {
			return nil, fmt.Errorf("wire: resume state for device %d has %d params but %d velocities",
				st.Dev, len(st.Params), len(st.Velocity))
		}
		res.States = append(res.States, st)
	}
	if err := r.Close(); err != nil {
		return nil, err
	}
	if len(res.States) != len(res.Devices) {
		return nil, fmt.Errorf("wire: resume carries %d states for %d devices", len(res.States), len(res.Devices))
	}
	byDev := make(map[int]bool, len(res.States))
	for _, st := range res.States {
		if byDev[st.Dev] {
			return nil, fmt.Errorf("wire: resume has duplicate state for device %d", st.Dev)
		}
		byDev[st.Dev] = true
	}
	for _, d := range res.Devices {
		if !byDev[d] {
			return nil, fmt.Errorf("wire: resume is missing state for device %d", d)
		}
	}
	return res, nil
}

func writeSnapshotHalf(w *Writer, blocks [][]*tensor.Tensor) {
	w.U32(uint32(len(blocks)))
	for _, params := range blocks {
		w.Tensors(params)
	}
}

func readSnapshotHalf(r *Reader) ([][]*tensor.Tensor, error) {
	n := r.count(r.U32(), 4)
	out := make([][]*tensor.Tensor, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, r.Tensors())
		if err := r.Err(); err != nil {
			return nil, err
		}
	}
	return out, r.Err()
}

// EncodeTensor packs a single tensor into a frame of the given kind
// (KindInput or KindOutput).
func EncodeTensor(kind Kind, dev, step int32, t *tensor.Tensor) *Frame {
	w := NewWriter()
	w.Tensor(t)
	return &Frame{Kind: kind, Dev: dev, Step: step, Payload: w.Bytes()}
}

// DecodeTensor unpacks a single-tensor frame.
func DecodeTensor(f *Frame) (*tensor.Tensor, error) {
	r := NewReader(f.Payload)
	t := r.Tensor()
	if err := r.Close(); err != nil {
		return nil, err
	}
	return t, nil
}

// EncodeTensors packs a tensor list into a frame of the given kind
// (KindGrads, KindGradsReduced, or KindFinalParams).
func EncodeTensors(kind Kind, dev, step int32, ts []*tensor.Tensor) *Frame {
	w := NewWriter()
	w.Tensors(ts)
	return &Frame{Kind: kind, Dev: dev, Step: step, Payload: w.Bytes()}
}

// DecodeTensors unpacks a tensor-list frame.
func DecodeTensors(f *Frame) ([]*tensor.Tensor, error) {
	r := NewReader(f.Payload)
	ts := r.Tensors()
	if err := r.Close(); err != nil {
		return nil, err
	}
	return ts, nil
}

// EncodeLosses packs a device's per-block losses for one step.
func EncodeLosses(dev, step int32, losses []float64) *Frame {
	w := NewWriter()
	w.F64s(losses)
	return &Frame{Kind: KindLosses, Dev: dev, Step: step, Payload: w.Bytes()}
}

// DecodeLosses unpacks a losses frame.
func DecodeLosses(f *Frame) ([]float64, error) {
	r := NewReader(f.Payload)
	v := r.F64s()
	if err := r.Close(); err != nil {
		return nil, err
	}
	return v, nil
}

// EncodeBatch packs a dataset batch (input tensor plus labels). An empty
// batch — no tensor, no labels — encodes and decodes cleanly.
func EncodeBatch(dev, step int32, b dataset.Batch) *Frame {
	w := NewWriter()
	w.Bool(b.X != nil)
	if b.X != nil {
		w.Tensor(b.X)
	}
	w.I32s(b.Labels)
	return &Frame{Kind: KindBatch, Dev: dev, Step: step, Payload: w.Bytes()}
}

// DecodeBatch unpacks a batch frame.
func DecodeBatch(f *Frame) (dataset.Batch, error) {
	r := NewReader(f.Payload)
	var b dataset.Batch
	if r.Bool() {
		b.X = r.Tensor()
	}
	b.Labels = r.I32s()
	if err := r.Close(); err != nil {
		return dataset.Batch{}, err
	}
	return b, nil
}

// PeerHello identifies a worker-to-worker link during the mesh-dial
// phase: the run epoch it belongs to and the device pair it connects
// (From dialed, To accepted). A resume hello (codec v8) re-attaches a
// redialed connection to an existing link: Resume marks it and Recvd
// carries the sender's count of application frames received before the
// break, so the far side replays exactly the frames that were lost.
type PeerHello struct {
	Epoch  int64
	From   int
	To     int
	Resume bool
	Recvd  int64
}

// EncodePeerHello packs a peer handshake frame.
func EncodePeerHello(h PeerHello) *Frame {
	w := NewWriter()
	w.I64(h.Epoch)
	w.I32(int32(h.From))
	w.I32(int32(h.To))
	w.Bool(h.Resume)
	w.I64(h.Recvd)
	return &Frame{Kind: KindPeerHello, Dev: int32(h.From), Step: NoStep, Payload: w.Bytes()}
}

// DecodePeerHello unpacks a peer handshake frame.
func DecodePeerHello(f *Frame) (PeerHello, error) {
	if f.Kind != KindPeerHello {
		return PeerHello{}, fmt.Errorf("wire: expected %v frame, got %v", KindPeerHello, f.Kind)
	}
	r := NewReader(f.Payload)
	h := PeerHello{Epoch: r.I64(), From: int(r.I32()), To: int(r.I32())}
	h.Resume = r.Bool()
	h.Recvd = r.I64()
	if err := r.Close(); err != nil {
		return PeerHello{}, err
	}
	return h, nil
}

// EncodeLinkAck packs a resumable-link acknowledgement: the cumulative
// count of application frames received on the link.
func EncodeLinkAck(recvd int64) *Frame {
	w := NewWriter()
	w.I64(recvd)
	return &Frame{Kind: KindLinkAck, Dev: NoDev, Step: NoStep, Payload: w.Bytes()}
}

// DecodeLinkAck unpacks a link acknowledgement.
func DecodeLinkAck(f *Frame) (int64, error) {
	if f.Kind != KindLinkAck {
		return 0, fmt.Errorf("wire: expected %v frame, got %v", KindLinkAck, f.Kind)
	}
	r := NewReader(f.Payload)
	n := r.I64()
	if err := r.Close(); err != nil {
		return 0, err
	}
	return n, nil
}

// SessionResume re-attaches a redialed control connection to a live
// worker session: the session id from the Assign and the dialer's count
// of application frames received before the break. The worker echoes it
// back with its own received count.
type SessionResume struct {
	Session int64
	Recvd   int64
}

// EncodeSessionResume packs a control-link resume handshake frame.
func EncodeSessionResume(s SessionResume) *Frame {
	w := NewWriter()
	w.I64(s.Session)
	w.I64(s.Recvd)
	return &Frame{Kind: KindSessionResume, Dev: NoDev, Step: NoStep, Payload: w.Bytes()}
}

// DecodeSessionResume unpacks a control-link resume handshake frame.
func DecodeSessionResume(f *Frame) (SessionResume, error) {
	if f.Kind != KindSessionResume {
		return SessionResume{}, fmt.Errorf("wire: expected %v frame, got %v", KindSessionResume, f.Kind)
	}
	r := NewReader(f.Payload)
	s := SessionResume{Session: r.I64(), Recvd: r.I64()}
	if err := r.Close(); err != nil {
		return SessionResume{}, err
	}
	return s, nil
}

// EncodeLinkDown packs a terminal peer-link failure report: the device
// edge whose reconnect budget is exhausted.
func EncodeLinkDown(from, to int) *Frame {
	w := NewWriter()
	w.I32(int32(from))
	w.I32(int32(to))
	return &Frame{Kind: KindLinkDown, Dev: NoDev, Step: NoStep, Payload: w.Bytes()}
}

// DecodeLinkDown unpacks a link-down report into its device edge.
func DecodeLinkDown(f *Frame) (from, to int, err error) {
	if f.Kind != KindLinkDown {
		return 0, 0, fmt.Errorf("wire: expected %v frame, got %v", KindLinkDown, f.Kind)
	}
	r := NewReader(f.Payload)
	from, to = int(r.I32()), int(r.I32())
	if err := r.Close(); err != nil {
		return 0, 0, err
	}
	return from, to, nil
}

// EncodeRelay packs a boundary-activation shard crossing a degraded peer
// edge via the hub: Dev routes to the receiver, the payload names the
// sending device, and the tensor bytes are identical to the KindPeerInput
// frame the direct link would have carried.
func EncodeRelay(sender, receiver, step int32, t *tensor.Tensor) *Frame {
	w := NewWriter()
	w.U32(uint32(sender))
	w.Tensor(t)
	return &Frame{Kind: KindRelay, Dev: receiver, Step: step, Payload: w.Bytes()}
}

// RelaySender peeks the sending device of a relay frame without paying
// for the tensor decode — receivers use it to stash frames by sender.
func RelaySender(f *Frame) (int, error) {
	if f.Kind != KindRelay {
		return 0, fmt.Errorf("wire: expected %v frame, got %v", KindRelay, f.Kind)
	}
	r := NewReader(f.Payload)
	s := int(r.U32())
	return s, r.Err()
}

// DecodeRelay unpacks a relayed activation shard into its sending device
// and tensor.
func DecodeRelay(f *Frame) (sender int, t *tensor.Tensor, err error) {
	if f.Kind != KindRelay {
		return 0, nil, fmt.Errorf("wire: expected %v frame, got %v", KindRelay, f.Kind)
	}
	r := NewReader(f.Payload)
	sender = int(r.U32())
	t = r.Tensor()
	if err := r.Close(); err != nil {
		return 0, nil, err
	}
	return sender, t, nil
}

// EncodeRelayAck packs a degraded-edge activation acknowledgement: Dev
// routes to the original sender, the payload names the acking receiver.
func EncodeRelayAck(sender, receiver, step int32) *Frame {
	w := NewWriter()
	w.U32(uint32(receiver))
	return &Frame{Kind: KindRelayAck, Dev: sender, Step: step, Payload: w.Bytes()}
}

// DecodeRelayAck unpacks a relay acknowledgement into the acking
// receiver's device rank.
func DecodeRelayAck(f *Frame) (receiver int, err error) {
	if f.Kind != KindRelayAck {
		return 0, fmt.Errorf("wire: expected %v frame, got %v", KindRelayAck, f.Kind)
	}
	r := NewReader(f.Payload)
	receiver = int(r.U32())
	if err := r.Close(); err != nil {
		return 0, err
	}
	return receiver, nil
}

// Ring-all-reduce phases carried by KindRingSegment frames.
const (
	// RingContrib is a reduce-scatter contribution: the sender's raw
	// gradient slice for the segment owned by the receiving rank.
	RingContrib uint8 = 0
	// RingGather is an all-gather round: a fully reduced segment
	// propagating around the ring.
	RingGather uint8 = 1
	// RingFull is the two-member fallback: the sender's entire flattened
	// gradient vector in one frame.
	RingFull uint8 = 2
)

// EncodeRingSegment packs one hop of the decentralized all-reduce: the
// phase, the segment index, and the raw float32 slice.
func EncodeRingSegment(dev, step int32, phase uint8, seg int, data []float32) *Frame {
	w := NewWriter()
	w.U8(phase)
	w.U32(uint32(seg))
	w.F32s(data)
	return &Frame{Kind: KindRingSegment, Dev: dev, Step: step, Payload: w.Bytes()}
}

// DecodeRingSegment unpacks a ring-all-reduce frame.
func DecodeRingSegment(f *Frame) (phase uint8, seg int, data []float32, err error) {
	if f.Kind != KindRingSegment {
		return 0, 0, nil, fmt.Errorf("wire: expected %v frame, got %v", KindRingSegment, f.Kind)
	}
	r := NewReader(f.Payload)
	phase = r.U8()
	seg = int(r.U32())
	data = r.F32s()
	if err := r.Close(); err != nil {
		return 0, 0, nil, err
	}
	if phase > RingFull {
		return 0, 0, nil, fmt.Errorf("wire: unknown ring phase %d", phase)
	}
	return phase, seg, data, nil
}

// Span is one observability span event as it crosses the wire: a named
// region, its category (the sim.Category taxonomy plus obs's runtime
// extensions, as a raw int32 so the codec stays dependency-free), and
// its wall-clock start/duration in nanoseconds since the Unix epoch.
type Span struct {
	Name  string
	Cat   int32
	Start int64
	Dur   int64
}

// SpanBatch is a batch of spans from one worker-side track, shipped to
// the coordinator at a step boundary.
type SpanBatch struct {
	Dev   int32 // hosting device rank (NoDev for non-device tracks)
	Track string
	Spans []Span
}

// EncodeSpans packs a span batch.
func EncodeSpans(b SpanBatch) *Frame {
	w := NewWriter()
	w.String(b.Track)
	w.U32(uint32(len(b.Spans)))
	for _, s := range b.Spans {
		w.String(s.Name)
		w.I32(s.Cat)
		w.I64(s.Start)
		w.I64(s.Dur)
	}
	return &Frame{Kind: KindSpans, Dev: b.Dev, Step: NoStep, Payload: w.Bytes()}
}

// DecodeSpans unpacks a span-batch frame.
func DecodeSpans(f *Frame) (SpanBatch, error) {
	if f.Kind != KindSpans {
		return SpanBatch{}, fmt.Errorf("wire: expected %v frame, got %v", KindSpans, f.Kind)
	}
	r := NewReader(f.Payload)
	b := SpanBatch{Dev: f.Dev, Track: r.String()}
	n := r.count(r.U32(), 24) // name length + cat + start + dur
	for i := 0; i < n && r.Err() == nil; i++ {
		b.Spans = append(b.Spans, Span{
			Name: r.String(), Cat: r.I32(), Start: r.I64(), Dur: r.I64(),
		})
	}
	if err := r.Close(); err != nil {
		return SpanBatch{}, err
	}
	return b, nil
}

// Control returns a payload-free frame of the given kind (KindHello,
// KindStepDone, KindStepGo, KindDone, KindDrain, KindPeerAck).
func Control(kind Kind, dev, step int32) *Frame {
	return &Frame{Kind: kind, Dev: dev, Step: step}
}
