// Package cluster executes the Pipe-BD pipelined schedule across worker
// processes: a coordinator maps a sched.Plan's devices onto workers over
// a pluggable transport, broadcasts the model spec, seed parameters, and
// training batches, routes teacher-relay activations and intra-group
// gradient all-reduce frames between pipeline stages, and streams back
// per-block losses and the trained weights.
//
// Every worker runs the exact engine.RunMember device loop the in-process
// pipeline uses, behind a transport-backed engine.DeviceLink, and all
// floats cross the wire bit-exactly — so a cluster run reproduces
// engine.RunPipelined's training trajectory bit-for-bit, on loopback and
// TCP alike. The equivalence suite pins this, extending the paper's "no
// modification to the mathematical formulation" claim across process
// boundaries.
//
// # Topologies: hub and peer-to-peer ring
//
// Config.Topology selects the data plane (wire codec v4). The default
// "hub" routes every tensor through the coordinator. "ring" gives the
// workers direct links: each session's Assign carries the run's
// placement directory and a unique epoch, the workers dial each other
// (higher-ranked device's host dials the lower's, a PeerHello echo pins
// (epoch, from, to) so a stale dial from a superseded attempt can never
// wire into a fresh mesh), and then
//
//   - stage-to-stage activations flow from every member of a group
//     straight to every member of the next group (PeerInput frames,
//     acknowledged per step so the sender's window matches the hub's
//     pipeline-depth backpressure), and
//   - split groups average gradients with a ring collective: a direct
//     reduce-scatter (each member sends each segment to its owner, the
//     owner folds contributions in ascending rank order from a zeroed
//     accumulator — the exact order the hub uses) followed by a ring
//     all-gather (RingSegment frames; two-member groups exchange whole
//     vectors instead).
//
// The coordinator is demoted to a control plane — placement, loss
// collection, the step barrier, snapshots. Even the training inputs
// bypass it: a ring session hosting first-group devices gets the whole
// batch schedule prestaged in its Assign, or, when Config.Data carries a
// deterministic dataset recipe (wire.DataSpec), regenerates it locally,
// bit-identically — validated against the run's actual batches at start.
// Coordinator traffic therefore no longer scales with activation,
// gradient, or input size, while both topologies stay bit-identical to
// the in-process pipeline and to each other.
//
// Ring recovery is a global-cut restart rather than the hub's surgical
// re-placement: a ring exchange is symmetric, so a lost worker strands
// its peers mid-collective with no one to replay the other side. The
// attempt fails fast and the driver restarts every device from the
// newest step every group holds snapshot state for and every device has
// accounted at the coordinator; replayed steps are pure functions of the
// restored state, so the trajectory is unchanged. Durable ring runs
// persist snapshots, losses, and barriers to the same ledger, and
// ResumeRun restarts a killed ring coordinator from the persisted cut.
//
// # Snapshot/replay fault tolerance
//
// With Config.MaxRestarts > 0 a run survives worker loss. The protocol
// adds three frames (wire codec v2):
//
//   - Heartbeat: workers beacon on Config.HeartbeatInterval so the
//     coordinator can declare a silent worker dead (HeartbeatTimeout),
//     not just one whose connection errors.
//   - Snapshot: after every step, each device ships the state that makes
//     its next step a pure function — student parameters and SGD
//     momentum, captured right after the update. The coordinator keeps
//     the latest per device, plus the inputs the device has not
//     snapshotted past and the completed gradient reductions its group
//     may re-request.
//   - Resume: on a death the coordinator re-places the lost devices —
//     dialing the dead worker's address first (a restarted pipebd-worker
//     -rejoin), then the surviving workers, which host the extra session
//     concurrently — and sends an Assign extended with the per-device
//     states. The worker rebuilds the replicas, restores them, and runs
//     the same device loop from snapStep+1.
//
// Replayed frames (outputs, gradients, losses, barrier arrivals) are
// deduplicated against per-device high-water marks, so the hub
// incorporates each step's contribution exactly once; replayed all-reduce
// requests are answered from the reduction cache byte-for-byte. The
// result: a run that loses and recovers workers produces losses and
// trained weights bit-identical to a fault-free run — pinned by the
// recovery suite under a deterministic transport.Chaos fault schedule on
// loopback and TCP, with and without DPU.
//
// # Snapshot policy
//
// Config.Snapshot replaces the v2 all-or-nothing snapshot switch:
// Interval k makes each device snapshot every k-th step (recovery then
// replays up to k steps from the last covered one), and Rank0Dedup ships
// one snapshot per split group — the members are bit-identical replicas —
// committed at the hub only once every member's losses, output shards,
// and barrier arrivals are accounted for, so a member resumed from the
// committed step never skips work the hub still needs.
//
// # Durable runs and coordinator restart
//
// With Config.LedgerDir the hub persists its entire recovery state — the
// manifest (plan, spec, run config, batches, seed weights) plus every
// snapshot, retained input, output shard, completed reduction, loss row,
// and barrier release — to an internal/cluster/ledger store. ResumeRun
// restarts a killed coordinator from that directory: it replays the
// record log, re-attaches every worker via the same Resume machinery
// single-worker recovery uses, and finishes the run with losses and
// trained weights bit-identical to an uninterrupted run; the resumed run
// keeps appending, so it can itself be killed and resumed again.
package cluster

import (
	"fmt"

	"pipebd/internal/cluster/wire"
	"pipebd/internal/distill"
	"pipebd/internal/nn"
	"pipebd/internal/tensor"
)

// TinySpec describes the compression workbench (conv teacher, depthwise-
// separable student) as a wire model spec.
func TinySpec(cfg distill.TinyConfig) wire.ModelSpec {
	return wire.ModelSpec{Name: "tiny", Seed: cfg.Seed, Blocks: cfg.Blocks,
		Channels: cfg.Channels, Height: cfg.Height, Width: cfg.Width, Classes: cfg.Classes}
}

// SupernetSpec describes the mini-NAS workbench (MixedOp students) as a
// wire model spec.
func SupernetSpec(cfg distill.SupernetConfig) wire.ModelSpec {
	return wire.ModelSpec{Name: "supernet", Seed: cfg.Seed, Blocks: cfg.Blocks,
		Channels: cfg.Channels, Height: cfg.Height, Width: cfg.Width}
}

// TransformerSpec describes the transformer workbench (encoder-layer
// blocks, KL logit distillation) as a wire model spec. The hidden width
// rides the Channels field; the attention/MLP/sequence geometry uses the
// codec-v7 transformer fields.
func TransformerSpec(cfg distill.TransformerConfig) wire.ModelSpec {
	return wire.ModelSpec{Name: "transformer", Seed: cfg.Seed, Blocks: cfg.Blocks,
		Channels: cfg.Dim, Classes: cfg.Classes, Heads: cfg.Heads,
		FFTeacher: cfg.TeacherFF, FFStudent: cfg.StudentFF,
		SeqLen: cfg.SeqLen, Vocab: cfg.Vocab, Temp: cfg.Temp}
}

// BuildWorkbench reconstructs the workbench named by a spec. The
// constructors are deterministic, so every process building the same spec
// gets bit-identical initial weights (including the teacher's frozen
// batch-norm statistics, which the parameter snapshot does not carry).
func BuildWorkbench(spec wire.ModelSpec) (*distill.Workbench, error) {
	switch spec.Name {
	case "tiny":
		return distill.NewTinyWorkbench(distill.TinyConfig{Seed: spec.Seed,
			Blocks: spec.Blocks, Channels: spec.Channels, Height: spec.Height,
			Width: spec.Width, Classes: spec.Classes}), nil
	case "supernet":
		return distill.NewTinySupernetWorkbench(distill.SupernetConfig{Seed: spec.Seed,
			Blocks: spec.Blocks, Channels: spec.Channels, Height: spec.Height,
			Width: spec.Width}), nil
	case "transformer":
		return distill.NewTransformerWorkbench(distill.TransformerConfig{Seed: spec.Seed,
			Blocks: spec.Blocks, Dim: spec.Channels, Heads: spec.Heads,
			TeacherFF: spec.FFTeacher, StudentFF: spec.FFStudent,
			SeqLen: spec.SeqLen, Vocab: spec.Vocab, Classes: spec.Classes,
			Temp: spec.Temp}), nil
	default:
		return nil, fmt.Errorf("cluster: unknown model spec %q (want tiny, supernet, or transformer)", spec.Name)
	}
}

// CaptureSnapshot clones every teacher and student parameter of w — the
// seed weights the coordinator broadcasts so worker replicas start from
// the coordinator's exact state even if it has drifted from the spec's
// initialization.
func CaptureSnapshot(w *distill.Workbench) wire.Snapshot {
	snap := wire.Snapshot{
		Teacher: make([][]*tensor.Tensor, w.NumBlocks()),
		Student: make([][]*tensor.Tensor, w.NumBlocks()),
	}
	for b, pair := range w.Pairs {
		for _, p := range pair.Teacher.Params() {
			snap.Teacher[b] = append(snap.Teacher[b], p.Value.Clone())
		}
		for _, p := range pair.Student.Params() {
			snap.Student[b] = append(snap.Student[b], p.Value.Clone())
		}
	}
	return snap
}

// InstallSnapshot copies snapshot values into w's parameters. Block and
// parameter counts (and shapes) must match w's architecture.
func InstallSnapshot(w *distill.Workbench, snap wire.Snapshot) error {
	if len(snap.Teacher) != w.NumBlocks() || len(snap.Student) != w.NumBlocks() {
		return fmt.Errorf("cluster: snapshot has %d/%d blocks, workbench has %d",
			len(snap.Teacher), len(snap.Student), w.NumBlocks())
	}
	install := func(b int, side string, got []*tensor.Tensor, params []*nn.Param) error {
		if len(got) != len(params) {
			return fmt.Errorf("cluster: snapshot block %d has %d %s params, workbench has %d",
				b, len(got), side, len(params))
		}
		for pi, t := range got {
			if !t.SameShape(params[pi].Value) {
				return fmt.Errorf("cluster: snapshot block %d %s param %d shape %v, workbench wants %v",
					b, side, pi, t.Shape(), params[pi].Value.Shape())
			}
			params[pi].Value.CopyFrom(t)
		}
		return nil
	}
	for b, pair := range w.Pairs {
		if err := install(b, "teacher", snap.Teacher[b], pair.Teacher.Params()); err != nil {
			return err
		}
		if err := install(b, "student", snap.Student[b], pair.Student.Params()); err != nil {
			return err
		}
	}
	return nil
}
