package cluster

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"pipebd/internal/cluster/transport"
	"pipebd/internal/cluster/wire"
	"pipebd/internal/engine"
	"pipebd/internal/obs"
	"pipebd/internal/sim"
	"pipebd/internal/tensor"
)

// Peer mesh: the worker-to-worker data plane of ring-topology sessions.
//
// In hub topology every activation and gradient crosses the coordinator.
// In ring topology the coordinator only distributes a placement directory
// (Assign.Peers: device rank -> worker address) and the workers dial each
// other directly: one connection per device pair that communicates —
// every pair within a split group (reduce-scatter contributions plus the
// all-gather ring) and every (member, member) pair across adjacent groups
// (activation forwarding). The higher-ranked device's session dials the
// lower device's worker; device pairs hosted on the same worker (or even
// the same session) still dial through the network, so every pair is
// wired identically.
//
// Handshake: dialer connects, consumes the worker's Hello, sends a
// PeerHello{Epoch, From, To}; the accepting worker routes the connection
// to the session hosting device To (registered under the run epoch, so a
// stale connection from a previous attempt can never wire into a new
// mesh), which echoes the PeerHello back. Only then does the dialer treat
// the link as established.

const (
	// defaultPeerAcceptTimeout bounds how long an accepted peer connection
	// waits for the session hosting its target device to register, unless
	// WorkerConfig.PeerTimeout overrides it.
	defaultPeerAcceptTimeout = 5 * time.Second
	// defaultMeshTimeout bounds a session's whole mesh-establishment
	// phase, unless WorkerConfig.MeshTimeout overrides it.
	defaultMeshTimeout = 10 * time.Second
)

// peerEndpoint is one device's end of a worker-to-worker connection.
type peerEndpoint struct {
	local  int // local device rank
	remote int // remote device rank
	conn   transport.Conn
	res    *transport.Resumable // == conn when the session's retry policy is on; nil otherwise
	out    *outbox
	in     *inbox
}

// startReader demuxes the endpoint's inbound frames into its inbox until
// the connection dies. Under a resumable link "dies" means terminally —
// transient breaks are absorbed inside Recv — and a budget-exhausted
// link is reported to the mesh's link-down hook before the inbox fails,
// so the coordinator can classify the failure as degradable.
func (ep *peerEndpoint) startReader(m *mesh) {
	m.readers.Add(1)
	go func() {
		defer m.readers.Done()
		for {
			f, err := ep.conn.Recv()
			if err != nil {
				if errors.Is(err, transport.ErrLinkDown) && m.linkDown != nil {
					m.linkDown(ep.local, ep.remote)
				}
				ep.in.fail(fmt.Errorf("cluster: peer link %d<->%d lost: %w", ep.local, ep.remote, err))
				return
			}
			ep.in.put(f)
		}
	}()
}

// pairKey identifies a directed endpoint: the local device's view of its
// link to the remote device.
type pairKey struct{ local, remote int }

// mesh is one session's set of peer endpoints. The worker's accept path
// hands incoming peer connections to acceptPeer (on the listener's
// handler goroutine); the session's establish phase dials the outbound
// half and blocks in wait until every expected endpoint exists.
type mesh struct {
	epoch int64
	dir   []string // peers directory: device rank -> worker address

	// Transient-fault absorption wiring (zero/nil when Run.Retry is off):
	// retry is the session's policy, net redials broken dialer-side links,
	// linkDown reports a budget-exhausted link's device edge, onAbsorb and
	// logf observe successful reconnects.
	retry    wire.RetrySpec
	net      transport.Network
	linkDown func(local, remote int)
	onAbsorb func(replayed int)
	logf     func(format string, args ...any)

	mu      sync.Mutex
	cond    *sync.Cond
	eps     map[pairKey]*peerEndpoint
	pending map[pairKey]bool // endpoints acceptPeer must still deliver
	err     error
	closed  bool
	readers sync.WaitGroup
}

func newMesh(epoch int64, dir []string) *mesh {
	m := &mesh{epoch: epoch, dir: dir,
		eps: make(map[pairKey]*peerEndpoint), pending: make(map[pairKey]bool)}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// retryPolicy converts a wire-level retry spec into the transport policy
// of one link.
func retryPolicy(r wire.RetrySpec) transport.RetryPolicy {
	return transport.RetryPolicy{
		Backoff:  time.Duration(r.BackoffMillis) * time.Millisecond,
		Budget:   time.Duration(r.BudgetMillis) * time.Millisecond,
		AckEvery: r.AckEvery,
	}
}

func (m *mesh) retryPolicy() transport.RetryPolicy { return retryPolicy(m.retry) }

// resume wraps an established peer connection in its resumable layer;
// redial is nil on the accepting side.
func (m *mesh) resume(conn transport.Conn, local, remote int, redial transport.RedialFunc) *transport.Resumable {
	return transport.NewResumable(conn, m.retryPolicy(), transport.ResumableOptions{
		Redial:   redial,
		Name:     fmt.Sprintf("peer link %d<->%d", local, remote),
		Logf:     m.logf,
		OnAbsorb: m.onAbsorb,
	})
}

// expectAccept marks a (local, remote) endpoint as one the worker's
// accept path will deliver; called before any peer dials out.
func (m *mesh) expectAccept(local, remote int) {
	m.mu.Lock()
	m.pending[pairKey{local, remote}] = true
	m.mu.Unlock()
}

// acceptPeer installs an accepted peer connection and echoes the
// handshake, signalling the dialer that the hosting session picked the
// link up. Runs on the worker's connection-handler goroutine; on error
// the caller closes the connection.
func (m *mesh) acceptPeer(h wire.PeerHello, conn transport.Conn) error {
	key := pairKey{local: h.To, remote: h.From}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return fmt.Errorf("cluster: mesh closed")
	}
	if !m.pending[key] {
		return fmt.Errorf("cluster: unexpected peer link %d->%d", h.From, h.To)
	}
	echo := wire.EncodePeerHello(wire.PeerHello{Epoch: m.epoch, From: h.To, To: h.From})
	link := transport.Conn(conn)
	var res *transport.Resumable
	if m.retry.Enabled() {
		// The echo must travel on the raw connection before the resumable
		// wrapper installs: both sides start counting application frames
		// right after the handshake, so the echo must stay outside the
		// counted stream.
		if err := conn.Send(echo); err != nil {
			return fmt.Errorf("cluster: peer echo %d->%d: %w", h.To, h.From, err)
		}
		res = m.resume(conn, h.To, h.From, nil)
		link = res
	}
	delete(m.pending, key)
	ep := &peerEndpoint{local: h.To, remote: h.From, conn: link, res: res,
		out: newOutbox(link), in: newInbox()}
	if res == nil {
		// The echo goes through the endpoint's own outbox — the only writer
		// this connection will ever have on this side.
		ep.out.Enqueue(echo)
	}
	ep.startReader(m)
	m.eps[key] = ep
	m.cond.Broadcast()
	return nil
}

// adoptPeer re-attaches a redialed peer connection (a resume PeerHello)
// to its existing endpoint: the resumable layer echoes the handshake
// with our receive count and replays the unacked tail.
func (m *mesh) adoptPeer(h wire.PeerHello, conn transport.Conn) error {
	m.mu.Lock()
	ep := m.eps[pairKey{local: h.To, remote: h.From}]
	closed := m.closed
	m.mu.Unlock()
	if closed {
		return fmt.Errorf("cluster: mesh closed")
	}
	if ep == nil || ep.res == nil {
		return fmt.Errorf("cluster: resume for unknown peer link %d->%d", h.From, h.To)
	}
	return ep.res.Adopt(conn, h.Recvd, func(recvd int64) *wire.Frame {
		return wire.EncodePeerHello(wire.PeerHello{
			Epoch: m.epoch, From: h.To, To: h.From, Resume: true, Recvd: recvd})
	})
}

// dialPeer establishes the outbound half of one pair: dial the remote
// device's worker, consume its Hello, send our PeerHello, and wait for
// the echo proving the hosting session accepted the link. Retries until
// the deadline — the remote session may not have received its Assign yet.
func (m *mesh) dialPeer(net transport.Network, local, remote int, deadline time.Time) (*peerEndpoint, error) {
	addr := m.dir[remote]
	var lastErr error
	for {
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("cluster: peer link %d->%d to %s not established before deadline (last error: %v)",
				local, remote, addr, lastErr)
		}
		conn, err := net.Dial(addr)
		if err != nil {
			lastErr = err
			time.Sleep(10 * time.Millisecond)
			continue
		}
		ep, err := m.handshakePeer(conn, local, remote, deadline)
		if err != nil {
			conn.Close()
			lastErr = err
			time.Sleep(10 * time.Millisecond)
			continue
		}
		return ep, nil
	}
}

func (m *mesh) handshakePeer(conn transport.Conn, local, remote int, deadline time.Time) (*peerEndpoint, error) {
	hello, err := recvDeadline(conn, deadline)
	if err != nil {
		return nil, err
	}
	if hello.Kind != wire.KindHello {
		return nil, fmt.Errorf("worker sent %v, want hello", hello.Kind)
	}
	if err := conn.Send(wire.EncodePeerHello(wire.PeerHello{Epoch: m.epoch, From: local, To: remote})); err != nil {
		return nil, err
	}
	echo, err := recvDeadline(conn, deadline)
	if err != nil {
		return nil, err
	}
	h, err := wire.DecodePeerHello(echo)
	if err != nil {
		return nil, err
	}
	if h.Epoch != m.epoch || h.From != remote || h.To != local {
		return nil, fmt.Errorf("peer echo names epoch %d link %d->%d, want epoch %d link %d->%d",
			h.Epoch, h.From, h.To, m.epoch, remote, local)
	}
	link := transport.Conn(conn)
	var res *transport.Resumable
	if m.retry.Enabled() {
		addr := m.dir[remote]
		res = m.resume(conn, local, remote, func(recvd int64) (transport.Conn, int64, error) {
			return m.redialPeer(addr, local, remote, recvd)
		})
		link = res
	}
	ep := &peerEndpoint{local: local, remote: remote, conn: link, res: res,
		out: newOutbox(link), in: newInbox()}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		if res != nil {
			res.Close()
		}
		return nil, fmt.Errorf("mesh closed")
	}
	ep.startReader(m)
	m.eps[pairKey{local, remote}] = ep
	m.mu.Unlock()
	return ep, nil
}

// redialPeer re-establishes a broken dialer-side peer link: fresh dial,
// the worker's Hello, then a resume PeerHello carrying our count of
// received application frames; the echo carries the remote's count,
// which bounds the replay to exactly the frames the break swallowed.
func (m *mesh) redialPeer(addr string, local, remote int, recvd int64) (transport.Conn, int64, error) {
	conn, err := m.net.Dial(addr)
	if err != nil {
		return nil, 0, err
	}
	deadline := time.Now().Add(m.retryPolicy().Budget)
	hello, err := recvDeadline(conn, deadline)
	if err == nil && hello.Kind != wire.KindHello {
		err = fmt.Errorf("worker sent %v, want hello", hello.Kind)
	}
	if err == nil {
		err = conn.Send(wire.EncodePeerHello(wire.PeerHello{
			Epoch: m.epoch, From: local, To: remote, Resume: true, Recvd: recvd}))
	}
	var h wire.PeerHello
	if err == nil {
		var echo *wire.Frame
		if echo, err = recvDeadline(conn, deadline); err == nil {
			h, err = wire.DecodePeerHello(echo)
		}
	}
	if err == nil && (h.Epoch != m.epoch || h.From != remote || h.To != local || !h.Resume) {
		err = fmt.Errorf("resume echo names epoch %d link %d->%d, want epoch %d link %d->%d",
			h.Epoch, h.From, h.To, m.epoch, remote, local)
	}
	if err != nil {
		conn.Close()
		return nil, 0, err
	}
	return conn, h.Recvd, nil
}

// waitAccepted blocks until every expected inbound endpoint was delivered
// by the worker's accept path, or the deadline passes.
func (m *mesh) waitAccepted(deadline time.Time) error {
	timer := time.AfterFunc(time.Until(deadline), func() {
		m.mu.Lock()
		m.cond.Broadcast()
		m.mu.Unlock()
	})
	defer timer.Stop()
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.pending) > 0 && !m.closed && time.Now().Before(deadline) {
		m.cond.Wait()
	}
	if len(m.pending) > 0 {
		missing := make([]pairKey, 0, len(m.pending))
		for k := range m.pending {
			missing = append(missing, k)
		}
		return fmt.Errorf("cluster: peer links %v never dialed in before deadline", missing)
	}
	return nil
}

// endpoint returns the established endpoint for a (local, remote) pair.
func (m *mesh) endpoint(local, remote int) *peerEndpoint {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.eps[pairKey{local, remote}]
}

// fail wakes every endpoint's waiters: a dead session or device must not
// leave a sibling device blocked on a peer frame that will never arrive.
func (m *mesh) fail(err error) {
	m.mu.Lock()
	eps := make([]*peerEndpoint, 0, len(m.eps))
	for _, ep := range m.eps {
		eps = append(eps, ep)
	}
	m.mu.Unlock()
	for _, ep := range eps {
		ep.in.fail(err)
	}
}

// close tears the mesh down. Graceful close flushes each outbox before
// closing the connection (in-flight frames were already consumed by the
// time the coordinator drains the session); on the failure path the
// connections close first so a writer stuck mid-Send is unblocked.
func (m *mesh) close(graceful bool) {
	m.mu.Lock()
	m.closed = true
	eps := make([]*peerEndpoint, 0, len(m.eps))
	for _, ep := range m.eps {
		eps = append(eps, ep)
	}
	m.cond.Broadcast()
	m.mu.Unlock()
	for _, ep := range eps {
		// Retiring first makes the teardown's own connection breaks
		// terminal instead of triggering a futile reconnect dance.
		if ep.res != nil {
			ep.res.Retire()
		}
		if graceful {
			ep.out.Close()
			ep.conn.Close()
		} else {
			ep.conn.Close()
			ep.out.Kill()
			ep.out.Close()
		}
	}
	m.readers.Wait()
}

// peerSets enumerates the remote devices one local device communicates
// with under ring topology: every other member of its own (split) group,
// every member of the previous group, and every member of the next group.
func peerSets(plan []groupInfo, dev int) (group, prev, next []int) {
	for gi, g := range plan {
		for _, d := range g.devices {
			if d != dev {
				continue
			}
			group = g.devices
			if gi > 0 {
				prev = plan[gi-1].devices
			}
			if gi < len(plan)-1 {
				next = plan[gi+1].devices
			}
			return group, prev, next
		}
	}
	return nil, nil, nil
}

// groupInfo is the slice of plan structure the mesh needs.
type groupInfo struct{ devices []int }

// ringLink implements engine.DeviceLink for ring topology: stage-to-stage
// activations and the intra-group all-reduce travel over peer endpoints,
// while the control plane — group-0 batch input, loss reports, the global
// step barrier, and recovery snapshots — stays on the embedded
// coordinator link.
type ringLink struct {
	*clusterLink
	gi    int
	rank  int
	k     int
	group []int // own group's device ranks in rank order
	prev  []int // previous group's device ranks (nil for group 0)
	next  []int // next group's device ranks (nil for the last group)
	peers map[int]*peerEndpoint

	// Degraded-edge routing (tier 2 of fault absorption): remotes whose
	// direct link is persistently down exchange activations and acks via
	// the coordinator hub relay instead; groupHub is set when any
	// intra-group edge is degraded, falling the whole group's all-reduce
	// back to the coordinator's fold — bit-identical by construction.
	degraded  map[int]bool
	groupHub  bool
	relayIn   map[int][]*wire.Frame // stashed KindRelay frames by sender
	relayAcks map[int][]*wire.Frame // stashed KindRelayAck frames by receiver

	// inputs is the prestaged batch schedule from the Assign (inputs[s]
	// is step s's full batch); set only on group-0 members, which source
	// every input locally instead of receiving per-step frames.
	inputs []*tensor.Tensor

	// Activation-forward flow control: a sender may run at most window
	// steps ahead of the slowest downstream consumer's acks.
	window    int
	nextAcked []int // per next-group member: highest acked step
	ackInit   bool

	// Reusable all-reduce buffers.
	flat   []float32
	acc    []float32
	segOff []int
}

// nextRelay returns the step's hub-relayed activation from the given
// degraded sender, stashing relay frames that belong to other senders.
// Frames from one sender arrive in order (the hub preserves per-link
// ordering), so a strict step check suffices.
func (l *ringLink) nextRelay(sender, step int) *tensor.Tensor {
	for {
		if q := l.relayIn[sender]; len(q) > 0 {
			f := q[0]
			l.relayIn[sender] = q[1:]
			if int(f.Step) != step {
				sessionFail("cluster: dev %d got relayed input for step %d from device %d, want %d", l.dev, f.Step, sender, step)
			}
			_, t, err := wire.DecodeRelay(f)
			if err != nil {
				sessionFail("cluster: dev %d decoding relayed input of step %d from device %d: %w", l.dev, step, sender, err)
			}
			return t
		}
		f, err := l.in.next(wire.KindRelay)
		if err != nil {
			sessionFail("cluster: dev %d waiting for relayed input from device %d (step %d): %w", l.dev, sender, step, err)
		}
		s, err := wire.RelaySender(f)
		if err != nil {
			sessionFail("cluster: dev %d reading relay sender: %w", l.dev, err)
		}
		if l.relayIn == nil {
			l.relayIn = make(map[int][]*wire.Frame)
		}
		l.relayIn[s] = append(l.relayIn[s], f)
	}
}

// nextRelayAck returns the next hub-relayed activation ack from the given
// degraded receiver, stashing acks that belong to other receivers.
func (l *ringLink) nextRelayAck(receiver int) *wire.Frame {
	for {
		if q := l.relayAcks[receiver]; len(q) > 0 {
			f := q[0]
			l.relayAcks[receiver] = q[1:]
			return f
		}
		f, err := l.in.next(wire.KindRelayAck)
		if err != nil {
			sessionFail("cluster: dev %d waiting for relayed ack from device %d: %w", l.dev, receiver, err)
		}
		rcv, err := wire.DecodeRelayAck(f)
		if err != nil {
			sessionFail("cluster: dev %d decoding relayed ack: %w", l.dev, err)
		}
		if l.relayAcks == nil {
			l.relayAcks = make(map[int][]*wire.Frame)
		}
		l.relayAcks[rcv] = append(l.relayAcks[rcv], f)
	}
}

func (l *ringLink) recvPeer(remote int, kind wire.Kind, step int) *wire.Frame {
	ep := l.peers[remote]
	if ep == nil {
		sessionFail("cluster: dev %d has no peer link to device %d", l.dev, remote)
	}
	f, err := ep.in.next(kind)
	if err != nil {
		sessionFail("cluster: dev %d waiting for %v from peer %d (step %d): %w", l.dev, kind, remote, step, err)
	}
	if int(f.Step) != step {
		sessionFail("cluster: dev %d got %v from peer %d for step %d, want %d", l.dev, kind, remote, f.Step, step)
	}
	return f
}

// RecvInput assembles the step's full-batch input from the previous
// group's members (each sends its boundary-activation shard directly),
// in ascending previous-rank order — byte-identical to the hub's
// assembly — and acks each upstream endpoint. Group 0 reads the batch
// from the schedule prestaged in its Assign: no wire traffic at all.
// Sharing one tensor across co-hosted members is safe for the same
// reason the in-process pipeline hands every device the same batch —
// members only read their shard.
func (l *ringLink) RecvInput(step int) *tensor.Tensor {
	if l.gi == 0 {
		if step >= len(l.inputs) {
			sessionFail("cluster: dev %d asked for prestaged input of step %d, schedule has %d", l.dev, step, len(l.inputs))
		}
		return l.inputs[step]
	}
	parts := make([]*tensor.Tensor, len(l.prev))
	for i, pd := range l.prev {
		if l.degraded[pd] {
			parts[i] = l.nextRelay(pd, step)
			continue
		}
		f := l.recvPeer(pd, wire.KindPeerInput, step)
		t, err := wire.DecodeTensor(f)
		if err != nil {
			sessionFail("cluster: dev %d decoding peer input of step %d from device %d: %w", l.dev, step, pd, err)
		}
		parts[i] = t
	}
	full := parts[0]
	if len(parts) > 1 {
		per := parts[0].Numel()
		shape := append([]int(nil), parts[0].Shape()...)
		shape[0] *= len(parts)
		full = tensor.New(shape...)
		for j, p := range parts {
			if p.Numel() != per {
				sessionFail("cluster: dev %d step %d upstream shard sizes differ", l.dev, step)
			}
			copy(full.Data()[j*per:(j+1)*per], p.Data())
		}
	}
	for _, pd := range l.prev {
		if l.degraded[pd] {
			l.out.Enqueue(wire.EncodeRelayAck(int32(pd), int32(l.dev), int32(step)))
			continue
		}
		l.peers[pd].out.Enqueue(wire.Control(wire.KindPeerAck, l.dev, int32(step)))
	}
	return full
}

// SendOutput forwards the member's boundary activation (its shard when
// the group is split) to every member of the next group, after waiting
// for acks that keep the sender within the pipeline window.
func (l *ringLink) SendOutput(step int, out *tensor.Tensor) {
	if l.lastGroup {
		return
	}
	if !l.ackInit {
		// The first step this session runs (0, or cut+1 on a restart)
		// anchors the ack window: earlier steps were consumed before the
		// restart and will never be acked again.
		l.nextAcked = make([]int, len(l.next))
		for i := range l.nextAcked {
			l.nextAcked[i] = step - 1
		}
		l.ackInit = true
	}
	// The ack wait is backpressure, not transfer: it nests inside the
	// engine's send_output span so the report attributes it as wait time,
	// not communication.
	rg := l.trace.Begin(obs.CatWait, "peer_ack_wait")
	target := step - l.window
	for i, nd := range l.next {
		for l.nextAcked[i] < target {
			var f *wire.Frame
			if l.degraded[nd] {
				f = l.nextRelayAck(nd)
			} else {
				var err error
				f, err = l.peers[nd].in.next(wire.KindPeerAck)
				if err != nil {
					sessionFail("cluster: dev %d waiting for ack from device %d: %w", l.dev, nd, err)
				}
			}
			if int(f.Step) != l.nextAcked[i]+1 {
				sessionFail("cluster: dev %d got ack for step %d from device %d, want %d", l.dev, f.Step, nd, l.nextAcked[i]+1)
			}
			l.nextAcked[i] = int(f.Step)
		}
	}
	rg.End()
	var f *wire.Frame
	for _, nd := range l.next {
		if l.degraded[nd] {
			l.out.Enqueue(wire.EncodeRelay(int32(l.dev), int32(nd), int32(step), out))
			continue
		}
		if f == nil {
			f = wire.EncodeTensor(wire.KindPeerInput, l.dev, int32(step), out)
		}
		l.peers[nd].out.Enqueue(f)
	}
}

// AllReduce replaces each gradient with the deterministic intra-group
// mean without touching the coordinator. The gradients are flattened into
// one float32 vector split into k near-equal segments; each rank owns one
// segment.
//
// Reduce-scatter sends every rank's raw slice for segment s directly to
// its owner (rank s), which folds the k contributions in ascending rank
// order into a zeroed accumulator and scales by 1/k — the exact
// evaluation order of the hub and the in-process engine, which a
// conventional rotated-start reduce-scatter (fold in arrival order)
// would break. The byte volume is the same either way: each rank sends
// k-1 slices of ~G/k elements.
//
// All-gather then runs as a true ring: k-1 rounds, each rank forwarding
// the segment it just completed (or received) to its successor. With
// k == 2 the ring degenerates, so both members exchange their full
// vectors instead and fold them identically.
func (l *ringLink) AllReduce(step int, grads []*tensor.Tensor, scratch *tensor.Arena) {
	if l.groupHub {
		// A degraded intra-group edge: the whole group falls back to the
		// coordinator's hub fold, which evaluates in the same rank order
		// and is therefore bit-identical to the peer ring.
		l.clusterLink.AllReduce(step, grads, scratch)
		return
	}
	k := l.k
	if l.flat == nil {
		total := 0
		for _, g := range grads {
			total += g.Numel()
		}
		l.flat = make([]float32, total)
		l.segOff = make([]int, k+1)
		base, rem := total/k, total%k
		off := 0
		for i := 0; i < k; i++ {
			l.segOff[i] = off
			off += base
			if i < rem {
				off++
			}
		}
		l.segOff[k] = off
		maxSeg := base
		if rem > 0 {
			maxSeg++
		}
		l.acc = make([]float32, maxSeg)
	}
	off := 0
	for _, g := range grads {
		copy(l.flat[off:], g.Data())
		off += g.Numel()
	}

	if k == 2 {
		l.allReducePair(step)
	} else {
		l.allReduceRing(step)
	}

	off = 0
	for _, g := range grads {
		copy(g.Data(), l.flat[off:off+g.Numel()])
		off += g.Numel()
	}
}

// allReducePair is the two-member fallback: exchange full vectors, fold
// rank 0 then rank 1 into a zeroed accumulator, scale by 1/2.
func (l *ringLink) allReducePair(step int) {
	rg := l.trace.Begin(sim.CatAllReduce, "pair_exchange")
	defer rg.End()
	other := l.group[1-l.rank]
	l.peers[other].out.Enqueue(wire.EncodeRingSegment(l.dev, int32(step), wire.RingFull, 0, l.flat))
	f := l.recvPeer(other, wire.KindRingSegment, step)
	phase, seg, data, err := wire.DecodeRingSegment(f)
	if err != nil {
		sessionFail("cluster: dev %d decoding ring frame of step %d: %w", l.dev, step, err)
	}
	if phase != wire.RingFull || seg != 0 || len(data) != len(l.flat) {
		sessionFail("cluster: dev %d got ring phase %d seg %d len %d, want full vector of %d",
			l.dev, phase, seg, len(data), len(l.flat))
	}
	r0, r1 := l.flat, data
	if l.rank == 1 {
		r0, r1 = data, l.flat
	}
	inv := 1 / float32(2)
	for i := range l.flat {
		// Zero-init + rank-ordered adds, matching the hub's AddInto chain
		// bit for bit (including the +0 result of 0 + -0).
		var s float32
		s += r0[i]
		s += r1[i]
		s *= inv
		l.flat[i] = s
	}
}

func (l *ringLink) allReduceRing(step int) {
	k, rank := l.k, l.rank
	rg := l.trace.Begin(sim.CatAllReduce, "reduce_scatter")
	// Reduce-scatter: raw slices go straight to each segment's owner.
	for s := 0; s < k; s++ {
		if s == rank {
			continue
		}
		l.peers[l.group[s]].out.Enqueue(wire.EncodeRingSegment(
			l.dev, int32(step), wire.RingContrib, s, l.flat[l.segOff[s]:l.segOff[s+1]]))
	}
	// Fold the owned segment in ascending rank order.
	segLen := l.segOff[rank+1] - l.segOff[rank]
	own := l.acc[:segLen]
	for i := range own {
		own[i] = 0
	}
	for r := 0; r < k; r++ {
		if r == rank {
			mine := l.flat[l.segOff[rank]:l.segOff[rank+1]]
			for i := range own {
				own[i] += mine[i]
			}
			continue
		}
		f := l.recvPeer(l.group[r], wire.KindRingSegment, step)
		phase, seg, data, err := wire.DecodeRingSegment(f)
		if err != nil {
			sessionFail("cluster: dev %d decoding contribution of step %d: %w", l.dev, step, err)
		}
		if phase != wire.RingContrib || seg != rank || len(data) != segLen {
			sessionFail("cluster: dev %d got ring phase %d seg %d len %d from rank %d, want contribution for seg %d len %d",
				l.dev, phase, seg, len(data), r, rank, segLen)
		}
		for i := range own {
			own[i] += data[i]
		}
	}
	inv := 1 / float32(k)
	for i := range own {
		own[i] *= inv
	}
	copy(l.flat[l.segOff[rank]:l.segOff[rank+1]], own)
	rg.End()
	rg = l.trace.Begin(sim.CatAllReduce, "all_gather")
	defer rg.End()

	// All-gather ring: k-1 rounds of forwarding completed segments.
	nextDev := l.group[(rank+1)%k]
	prevDev := l.group[(rank-1+k)%k]
	for t := 0; t < k-1; t++ {
		sendSeg := (rank - t + k) % k
		l.peers[nextDev].out.Enqueue(wire.EncodeRingSegment(
			l.dev, int32(step), wire.RingGather, sendSeg, l.flat[l.segOff[sendSeg]:l.segOff[sendSeg+1]]))
		recvSeg := (rank - 1 - t + k) % k
		f := l.recvPeer(prevDev, wire.KindRingSegment, step)
		phase, seg, data, err := wire.DecodeRingSegment(f)
		if err != nil {
			sessionFail("cluster: dev %d decoding gather of step %d: %w", l.dev, step, err)
		}
		if phase != wire.RingGather || seg != recvSeg || len(data) != l.segOff[recvSeg+1]-l.segOff[recvSeg] {
			sessionFail("cluster: dev %d got ring phase %d seg %d in gather round %d, want seg %d",
				l.dev, phase, seg, t, recvSeg)
		}
		copy(l.flat[l.segOff[recvSeg]:l.segOff[recvSeg+1]], data)
	}
}

var (
	_ engine.DeviceLink   = (*ringLink)(nil)
	_ engine.StepFinisher = (*ringLink)(nil)
)
