package cluster

import (
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"pipebd/internal/cluster/ledger"
	"pipebd/internal/cluster/transport"
	"pipebd/internal/distill"
	"pipebd/internal/engine"
)

// TestRingCoordinatorKillResume is the durable-ring acceptance matrix: a
// ring coordinator killed at the first, a middle, and the last step must
// be restartable via ResumeRun. Unlike the hub, nothing of the data plane
// is replayed through the coordinator — the resume recovers the global
// cut from the ledger and restarts every device there, so the matrix
// covers both snapshot densities (interval 1 and a sparse interval whose
// cut trails the crash point) and both step-accounting modes (the DPU
// loss path and the barrier path).
func TestRingCoordinatorKillResume(t *testing.T) {
	leakCheck(t)
	batches := tinyBatches(stepsPerRun, 8)
	p := hybridPlan()
	refs := map[bool]*distill.Workbench{}
	refRes := map[bool]engine.Result{}
	for _, dpu := range []bool{false, true} {
		ref := distill.NewTinyWorkbench(distill.DefaultTinyConfig())
		refRes[dpu] = engine.RunPipelined(ref, batches, engine.Config{Plan: p, DPU: dpu, LR: 0.05, Momentum: 0.9})
		refs[dpu] = ref
	}

	for _, interval := range []int{1, 2} {
		// Interval 1 runs the DPU loss accounting, interval 2 the barrier
		// accounting — both feed the ring cut the resume restarts from.
		dpu := interval == 1
		for _, killStep := range []int32{0, stepsPerRun / 2, stepsPerRun - 1} {
			label := fmt.Sprintf("interval-%d/kill-step-%d", interval, killStep)
			t.Run(label, func(t *testing.T) {
				inner := transport.NewLoopback()
				addrs := startWorkers(t, inner, 2, WorkerConfig{Sessions: 1, Rejoin: true, Dial: inner})
				dir := filepath.Join(t.TempDir(), "ledger")
				// The chaos net carries only the coordinator's control-plane
				// connections; peer links dial over the clean inner net, so
				// the kill is a coordinator crash, not a worker loss.
				chaos := transport.NewChaos(inner, killLosses(1, killStep))
				w := distill.NewTinyWorkbench(distill.DefaultTinyConfig())
				_, err := Run(chaos, addrs, w, batches, Config{
					Plan: p, DPU: dpu, LR: 0.05, Momentum: 0.9, Topology: "ring",
					Spec:        TinySpec(distill.DefaultTinyConfig()),
					Snapshot:    SnapshotPolicy{Interval: interval},
					LedgerDir:   dir,
					JoinTimeout: 10 * time.Second,
				})
				if err == nil {
					t.Fatal("rigged ring run finished despite the injected coordinator crash")
				}
				if !errors.Is(err, transport.ErrChaos) {
					t.Fatalf("crash should surface the injected fault: %v", err)
				}

				logf, logs := captureLog()
				res, w2, err := ResumeRun(inner, dir, ResumeConfig{
					JoinTimeout: 10 * time.Second, Logf: logf,
				})
				if err != nil {
					t.Fatalf("ring resume failed: %v\nlog:\n%s", err, logs())
				}
				if !strings.Contains(logs(), "ring restart of") {
					t.Fatalf("resume did not take the ring restart path; log:\n%s", logs())
				}
				lossesBitIdentical(t, label, res, refRes[dpu])
				weightsBitIdentical(t, label, w2, refs[dpu])
			})
		}
	}
}

// TestRingDoubleCrashResume kills the ring coordinator, kills the RESUMED
// ring coordinator too, and resumes again: the shared ledger grows across
// generations and the third coordinator's cut reflects both predecessors.
func TestRingDoubleCrashResume(t *testing.T) {
	leakCheck(t)
	batches := tinyBatches(stepsPerRun, 8)
	p := hybridPlan()
	ref := distill.NewTinyWorkbench(distill.DefaultTinyConfig())
	refRes := engine.RunPipelined(ref, batches, engine.Config{Plan: p, DPU: true, LR: 0.05, Momentum: 0.9})

	inner := transport.NewLoopback()
	addrs := startWorkers(t, inner, 2, WorkerConfig{Sessions: 1, Rejoin: true, Dial: inner})
	dir := filepath.Join(t.TempDir(), "ledger")

	chaos := transport.NewChaos(inner, killLosses(1, 1))
	w := distill.NewTinyWorkbench(distill.DefaultTinyConfig())
	if _, err := Run(chaos, addrs, w, batches, Config{
		Plan: p, DPU: true, LR: 0.05, Momentum: 0.9, Topology: "ring",
		Spec: TinySpec(distill.DefaultTinyConfig()), LedgerDir: dir,
		JoinTimeout: 10 * time.Second,
	}); err == nil {
		t.Fatal("first rigged ring run finished")
	}

	chaos2 := transport.NewChaos(inner, killLosses(1, 3))
	if _, _, err := ResumeRun(chaos2, dir, ResumeConfig{JoinTimeout: 10 * time.Second}); err == nil {
		t.Fatal("second rigged ring run finished")
	}

	res, w3, err := ResumeRun(inner, dir, ResumeConfig{JoinTimeout: 10 * time.Second})
	if err != nil {
		t.Fatalf("second ring resume failed: %v", err)
	}
	lossesBitIdentical(t, "ring double crash", res, refRes)
	weightsBitIdentical(t, "ring double crash", w3, ref)
}

// TestRingResumeOfCompletedRun: resuming a finished ring ledger restarts
// at the last cut, replays the (possibly empty) tail idempotently, and
// returns the identical result.
func TestRingResumeOfCompletedRun(t *testing.T) {
	leakCheck(t)
	batches := tinyBatches(4, 8)
	p := hybridPlan()
	ref := distill.NewTinyWorkbench(distill.DefaultTinyConfig())
	refRes := engine.RunPipelined(ref, batches, engine.Config{Plan: p, DPU: true, LR: 0.05, Momentum: 0.9})

	inner := transport.NewLoopback()
	addrs := startWorkers(t, inner, 2, WorkerConfig{Sessions: 2, Rejoin: true, Dial: inner})
	dir := filepath.Join(t.TempDir(), "ledger")
	w := distill.NewTinyWorkbench(distill.DefaultTinyConfig())
	res, err := Run(inner, addrs, w, batches, Config{
		Plan: p, DPU: true, LR: 0.05, Momentum: 0.9, Topology: "ring",
		Spec:     TinySpec(distill.DefaultTinyConfig()),
		Snapshot: SnapshotPolicy{Interval: 3}, LedgerDir: dir,
		JoinTimeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatalf("durable ring run failed: %v", err)
	}
	lossesBitIdentical(t, "durable ring run", res, refRes)

	res2, w2, err := ResumeRun(inner, dir, ResumeConfig{JoinTimeout: 10 * time.Second})
	if err != nil {
		t.Fatalf("resume of completed ring run failed: %v", err)
	}
	lossesBitIdentical(t, "resume of completed ring run", res2, refRes)
	weightsBitIdentical(t, "resume of completed ring run", w2, ref)
}

// TestCompactedLedgerResume is the compaction acceptance matrix: for both
// topologies, a ledger compacted after a coordinator crash (and after a
// completed run) must still resume bit-identically — the checkpoint
// record is a valid sub-history and, for the ring, still contains a
// common snapshot step every group can restart from.
func TestCompactedLedgerResume(t *testing.T) {
	leakCheck(t)
	batches := tinyBatches(stepsPerRun, 8)
	p := hybridPlan()
	ref := distill.NewTinyWorkbench(distill.DefaultTinyConfig())
	refRes := engine.RunPipelined(ref, batches, engine.Config{Plan: p, DPU: true, LR: 0.05, Momentum: 0.9})

	for _, topology := range []string{"hub", "ring"} {
		for _, crash := range []bool{true, false} {
			label := fmt.Sprintf("%s/crash-%v", topology, crash)
			t.Run(label, func(t *testing.T) {
				inner := transport.NewLoopback()
				addrs := startWorkers(t, inner, 2, WorkerConfig{Sessions: 2, Rejoin: true, Dial: inner})
				dir := filepath.Join(t.TempDir(), "ledger")
				net := transport.Network(inner)
				if crash {
					net = transport.NewChaos(inner, killLosses(1, stepsPerRun/2))
				}
				w := distill.NewTinyWorkbench(distill.DefaultTinyConfig())
				res, err := Run(net, addrs, w, batches, Config{
					Plan: p, DPU: true, LR: 0.05, Momentum: 0.9, Topology: topology,
					Spec:        TinySpec(distill.DefaultTinyConfig()),
					Snapshot:    SnapshotPolicy{Interval: 2},
					LedgerDir:   dir,
					JoinTimeout: 10 * time.Second,
				})
				if crash && err == nil {
					t.Fatal("rigged run finished despite the injected coordinator crash")
				}
				if !crash {
					if err != nil {
						t.Fatalf("durable run failed: %v", err)
					}
					lossesBitIdentical(t, label+" first pass", res, refRes)
				}

				if err := ledger.Compact(dir); err != nil {
					t.Fatalf("compact: %v", err)
				}
				// The compacted log must be a single checkpoint record.
				led, _, rep, err := ledger.Open(dir)
				if err != nil {
					t.Fatalf("reopening compacted ledger: %v", err)
				}
				led.Close()
				if len(rep.Records) != 1 || rep.Records[0].Type != ledger.TypeCheckpoint {
					t.Fatalf("compacted log holds %d records (first %v), want one checkpoint",
						len(rep.Records), rep.Records[0].Type)
				}

				res2, w2, err := ResumeRun(inner, dir, ResumeConfig{JoinTimeout: 10 * time.Second})
				if err != nil {
					t.Fatalf("resume from compacted ledger failed: %v", err)
				}
				lossesBitIdentical(t, label, res2, refRes)
				weightsBitIdentical(t, label, w2, ref)
			})
		}
	}
}
