package cluster

import (
	"math/rand"
	"testing"

	"pipebd/internal/cluster/transport"
	"pipebd/internal/cluster/wire"
	"pipebd/internal/dataset"
	"pipebd/internal/distill"
	"pipebd/internal/engine"
)

func transformerBatches(steps, batch int) []dataset.Batch {
	cfg := distill.DefaultTransformerConfig()
	data := dataset.NewTokens(rand.New(rand.NewSource(7)), steps*batch, cfg.SeqLen, cfg.Vocab, cfg.Classes)
	return data.Batches(batch)
}

// TestClusterTransformerSpec closes the tentpole's equivalence chain: the
// transformer workbench trained (a) in-process, (b) on a hub-topology
// loopback cluster, and (c) on a peer-to-peer ring over real TCP must
// produce bit-identical loss trajectories and student weights. Combined
// with the engine suite pinning RunPipelined to RunSequential, this is
// serial ≡ parallel ≡ hub ≡ ring for encoder blocks.
func TestClusterTransformerSpec(t *testing.T) {
	cfg := distill.DefaultTransformerConfig()
	batches := transformerBatches(5, 8)
	p := hybridPlan()

	ref := distill.NewTransformerWorkbench(cfg)
	refRes := engine.RunPipelined(ref, batches, engine.Config{Plan: p, DPU: true, LR: 0.05, Momentum: 0.9})

	hubNet := transport.NewLoopback()
	hubAddrs := startWorkers(t, hubNet, 2, WorkerConfig{Sessions: 1})
	hubW := distill.NewTransformerWorkbench(cfg)
	hubRes, err := Run(hubNet, hubAddrs, hubW, batches, Config{Plan: p, DPU: true,
		LR: 0.05, Momentum: 0.9, Spec: TransformerSpec(cfg)})
	if err != nil {
		t.Fatalf("hub transformer run: %v", err)
	}
	lossesBitIdentical(t, "transformer hub vs in-process", hubRes, refRes)
	weightsBitIdentical(t, "transformer hub vs in-process", hubW, ref)

	tcpNet := transport.TCP{}
	ringAddrs := ringWorkers(t, tcpNet, 3, WorkerConfig{Sessions: 1})
	ringW := distill.NewTransformerWorkbench(cfg)
	ringRes, err := Run(tcpNet, ringAddrs, ringW, batches, Config{Plan: p, DPU: true,
		LR: 0.05, Momentum: 0.9, Topology: "ring", Spec: TransformerSpec(cfg)})
	if err != nil {
		t.Fatalf("tcp ring transformer run: %v", err)
	}
	lossesBitIdentical(t, "transformer tcp ring vs in-process", ringRes, refRes)
	weightsBitIdentical(t, "transformer tcp ring vs in-process", ringW, ref)
}

// TestRingTransformerDataRecipe: the token-sequence data recipe
// regenerates the batch schedule on ring workers without shipping
// tensors, bit-identical to the in-process run; a recipe whose kind
// evaluates to different batches is rejected up front.
func TestRingTransformerDataRecipe(t *testing.T) {
	const steps, batch = 4, 8
	cfg := distill.DefaultTransformerConfig()
	batches := transformerBatches(steps, batch)
	spec := wire.DataSpec{Seed: 7, N: steps * batch, Classes: cfg.Classes, Batch: batch,
		Kind: "tokens", L: cfg.SeqLen, Vocab: cfg.Vocab}
	p := hybridPlan()

	ref := distill.NewTransformerWorkbench(cfg)
	refRes := engine.RunPipelined(ref, batches, engine.Config{Plan: p, DPU: true, LR: 0.05, Momentum: 0.9})

	net := transport.NewLoopback()
	addrs := ringWorkers(t, net, 3, WorkerConfig{Sessions: 1})
	w := distill.NewTransformerWorkbench(cfg)
	res, err := Run(net, addrs, w, batches, Config{Plan: p, DPU: true,
		LR: 0.05, Momentum: 0.9, Topology: "ring", Data: spec,
		Spec: TransformerSpec(cfg)})
	if err != nil {
		t.Fatalf("ring transformer data-recipe run: %v", err)
	}
	lossesBitIdentical(t, "transformer data recipe", res, refRes)
	weightsBitIdentical(t, "transformer data recipe", w, ref)

	// An image-kind recipe cannot reproduce token batches.
	bad := spec
	bad.Kind = ""
	bad.C, bad.H, bad.W = 1, cfg.SeqLen, 1
	w2 := distill.NewTransformerWorkbench(cfg)
	if _, err := Run(transport.NewLoopback(), []string{"unused"}, w2, batches,
		Config{Plan: p, DPU: true, LR: 0.05, Momentum: 0.9,
			Topology: "ring", Data: bad, Spec: TransformerSpec(cfg)}); err == nil {
		t.Fatal("mismatched data recipe accepted")
	}
}
