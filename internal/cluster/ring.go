package cluster

// Ring-topology coordination: the control-plane-only counterpart of the
// hub data path. Activations and gradient reductions travel directly
// between workers (see peer.go); the coordinator keeps placement, the
// batch feed, the step barrier, loss accounting, and restart state.
//
// Recovery is deliberately different from the hub's surgical re-placement.
// A ring exchange is symmetric — every member of a group participates in
// every step's reduce-scatter and all-gather — so losing one worker
// strands its peers mid-collective with no one to replay the other side.
// Instead the whole attempt fails fast, and the driver restarts every
// device from the newest global cut: the highest step for which every
// group holds snapshot parameters and every device's losses (and barrier
// arrival) are already accounted at the coordinator. Replayed steps are
// pure functions of the restored state and the re-fed batches, so the
// trajectory stays bit-identical to a fault-free run.

import (
	"errors"
	"fmt"
	"time"

	"pipebd/internal/cluster/ledger"
	"pipebd/internal/cluster/transport"
	"pipebd/internal/cluster/wire"
	"pipebd/internal/dataset"
	"pipebd/internal/distill"
	"pipebd/internal/engine"
	"pipebd/internal/tensor"
)

// histEntry is one group's restart state after a step: the snapshotted
// student parameters and optimizer velocities (bit-identical across the
// group's members).
type histEntry struct {
	params, velocity []*tensor.Tensor
}

// workerLostError marks a worker-connection loss in a ring attempt; the
// ring driver catches it and restarts from the global cut instead of
// failing the run.
type workerLostError struct{ cause error }

func (e workerLostError) Error() string { return e.cause.Error() }
func (e workerLostError) Unwrap() error { return e.cause }

// ringCarry is the state one ring attempt hands the next: the global cut,
// the group parameters at that cut (nil when the cut is the seed), the
// loss matrix holding the completed prefix's rows, and the peer edges the
// failed attempt reported persistently down (for the driver's degrade
// classification).
type ringCarry struct {
	cut       int
	params    [][]*tensor.Tensor
	velocity  [][]*tensor.Tensor
	losses    [][][]float64
	linkDowns [][2]int
}

// runDriven is the attempt-driver body of Coordinator.Run, used for ring
// topology and for any repartition-enabled run: create the ledger once
// (the driver shares it across attempts) and hand off to driveRing.
func (c *Coordinator) runDriven(w *distill.Workbench, batches []dataset.Batch, addrs []string) (engine.Result, error) {
	var led *ledger.Ledger
	if c.cfg.LedgerDir != "" {
		probe, err := c.newRun(w, batches, addrs)
		if err != nil {
			return engine.Result{}, err
		}
		led, err = c.createLedger(probe, batches, addrs)
		if err != nil {
			return engine.Result{}, err
		}
		defer led.Close()
	}
	return c.driveRing(w, batches, addrs, led, nil)
}

// driveRing runs attempts until one completes or the restart budget is
// spent. Each attempt is a fresh run (fresh epoch, fresh sessions, fresh
// meshes) rewound to the carry's cut. Two kinds of supersession restart
// the loop: worker losses (retried against the restart budget; the hub
// data plane recovers surviving workers surgically and only lands here
// in ring mode) and planned repartitions (deliberate, budget-free — the
// carry is remapped onto the measured re-plan and the run resumes on the
// new placement). Protocol errors fail the run immediately.
func (c *Coordinator) driveRing(w *distill.Workbench, batches []dataset.Batch, addrs []string, led *ledger.Ledger, carry *ringCarry) (engine.Result, error) {
	// Epochs only need to be unique per attempt within the workers'
	// lifetime, so stale peer dials from a superseded attempt (or a
	// crashed coordinator's) can never wire into a new mesh.
	epochBase := time.Now().UnixNano()
	var rp *repartitioner
	if c.cfg.Repartition.Enabled {
		rp = newRepartitioner(c.cfg.Repartition, c.cfg.Plan)
	}
	restarts := 0
	rejoin := carry != nil // a resumed run re-places against already-running workers
	var degraded [][2]int  // peer edges routed via hub relay, accumulated across attempts
	for attempt := 0; ; attempt++ {
		res, next, err := c.ringAttempt(w, batches, addrs, led, carry, rp, epochBase+int64(attempt), rejoin, degraded)
		if err == nil {
			return res, nil
		}
		var pr *plannedRepartition
		if errors.As(err, &pr) {
			// The cut the carry captured is authoritative (snapshots may
			// have advanced it past the decision's); the ledger records
			// it with the new plan so a killed coordinator resumes onto
			// the right placement generation.
			carry = remapCarry(next, c.cfg.Plan, pr.plan, w)
			if led != nil {
				if lerr := led.Append(ledger.Repartition(carry.cut, wire.EncodePlan(pr.plan))); lerr != nil {
					return engine.Result{}, lerr
				}
			}
			c.cfg.Plan = pr.plan
			c.cfg.Metrics.Add("repartitions", 1)
			rejoin = true
			c.logf("repartitioning after step %d: %v", carry.cut, err)
			continue
		}
		var lost workerLostError
		if !errors.As(err, &lost) {
			return engine.Result{}, err
		}
		if next != nil && len(next.linkDowns) > 0 && c.cfg.Retry.Enabled() && c.workersAlive(addrs) {
			// Tier 2, graceful degradation: every worker is reachable but
			// one or more peer edges are persistently severed (a healing
			// partition that never healed). Route just the broken edges
			// through the coordinator hub — bit-identical, since hub and
			// ring share the same evaluation order — and restart from the
			// global cut without consuming the restart budget.
			degraded = mergeEdges(degraded, next.linkDowns)
			carry = next
			rejoin = true
			c.cfg.Metrics.Add("degrades", 1)
			c.logf("degrading peer link(s) %v to hub relay; ring resumes from step %d on the remaining direct edges",
				next.linkDowns, carry.cut+1)
			continue
		}
		if restarts >= c.cfg.MaxRestarts {
			return engine.Result{}, err
		}
		restarts++
		c.cfg.Metrics.Add("recoveries", 1)
		carry = next
		rejoin = true
		c.logf("ring attempt lost a worker (%v); restarting every device from step %d (restart %d of %d)",
			err, carry.cut+1, restarts, c.cfg.MaxRestarts)
	}
}

// mergeEdges appends newly reported degraded edges, dropping duplicates
// (both orientations name the same link).
func mergeEdges(have, add [][2]int) [][2]int {
	for _, e := range add {
		dup := false
		for _, h := range have {
			if (h[0] == e[0] && h[1] == e[1]) || (h[0] == e[1] && h[1] == e[0]) {
				dup = true
				break
			}
		}
		if !dup {
			have = append(have, e)
		}
	}
	return have
}

// workersAlive probes every worker address with a dial-and-hello
// handshake, distinguishing a severed peer edge (all workers fine,
// degradable) from a dead worker (restart). Probe connections are closed
// right after the hello; the worker logs them as failed sessions.
func (c *Coordinator) workersAlive(addrs []string) bool {
	timeout := c.cfg.JoinTimeout
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	for _, addr := range addrs {
		conn, err := c.net.Dial(addr)
		if err != nil {
			c.logf("liveness probe: worker %s unreachable (%v); not degradable", addr, err)
			return false
		}
		hello, err := recvDeadline(conn, time.Now().Add(timeout))
		conn.Close()
		if err != nil || hello.Kind != wire.KindHello {
			c.logf("liveness probe: worker %s did not handshake (%v); not degradable", addr, err)
			return false
		}
	}
	return true
}

// ringAttempt executes one attempt end to end and, on failure, captures
// the carry the next attempt restarts from.
func (c *Coordinator) ringAttempt(w *distill.Workbench, batches []dataset.Batch, addrs []string,
	led *ledger.Ledger, carry *ringCarry, rp *repartitioner, epoch int64, rejoin bool,
	degraded [][2]int) (engine.Result, *ringCarry, error) {
	r, err := c.newRun(w, batches, addrs)
	if err != nil {
		return engine.Result{}, nil, err
	}
	r.setDegraded(degraded)
	r.epoch = epoch
	r.led = led
	r.ledShared = led != nil
	if rp != nil {
		// Fresh placement (or fresh hosting), fresh measurements; the
		// applied-fingerprint set persists across attempts.
		rp.resetMeasurements()
		r.repart = rp
	}
	defer r.teardown()
	r.installRingCarry(carry)
	if rejoin {
		err = r.ringRejoin(addrs)
	} else {
		err = r.join(addrs)
	}
	if err != nil {
		return engine.Result{}, nil, err
	}
	res, err := c.execute(r)
	if err != nil {
		return engine.Result{}, r.captureRingCarry(), err
	}
	return res, nil, nil
}

// installRingCarry rewinds a fresh run's state to a previous attempt's
// global cut: every device restarts at cut+1 with the carried group
// parameters, the feed cursors restart there, and the loss matrix keeps
// the rows the completed prefix already produced (replayed rows are
// rewritten bit-identically). A nil carry is attempt zero.
func (r *run) installRingCarry(c *ringCarry) {
	if c == nil {
		return
	}
	cut := c.cut
	r.losses = c.losses
	r.stepGoThrough = cut
	r.fedThrough = cut
	for gi := range r.groupInThrough {
		r.groupInThrough[gi] = cut
	}
	for _, ds := range r.devs {
		ds.snapStep = cut
		ds.outputSeen = cut
		ds.lossSeen = cut
		ds.barrierSeen = cut
		ds.stepGoSent = cut
		if cut >= 0 {
			ds.params = c.params[ds.place.gi]
			ds.velocity = c.velocity[ds.place.gi]
		}
	}
	if cut >= 0 && r.histG != nil {
		// Seed the history with the cut itself: a second failure before
		// the first new snapshot must restart here again, not regress.
		for gi := range r.histG {
			r.histG[gi][cut] = histEntry{params: c.params[gi], velocity: c.velocity[gi]}
		}
	}
}

// captureRingCarry snapshots what a failed attempt proved: the global cut
// and the group parameters held for it, plus the loss rows of the
// completed prefix.
func (r *run) captureRingCarry() *ringCarry {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := &ringCarry{cut: r.ringCutLocked(), losses: r.losses,
		linkDowns: r.linkDowns,
		params:    make([][]*tensor.Tensor, len(r.plan.Groups)),
		velocity:  make([][]*tensor.Tensor, len(r.plan.Groups))}
	if c.cut >= 0 {
		for gi := range r.histG {
			e := r.histG[gi][c.cut]
			c.params[gi], c.velocity[gi] = e.params, e.velocity
		}
	}
	return c
}

// ringCutLocked returns the highest step that is both covered by every
// group's held restart state and fully accounted for by every device;
// -1 means the seed. Devices send their step's losses before the snapshot
// covering it on the same connection, so any loss row the cut claims is
// already recorded.
func (r *run) ringCutLocked() int {
	if r.histG == nil {
		return -1
	}
	acct := r.steps - 1
	for _, ds := range r.devs {
		if a := r.accountedLocked(ds); a < acct {
			acct = a
		}
	}
	for s := acct; s >= 0; s-- {
		all := true
		for _, h := range r.histG {
			if _, ok := h[s]; !ok {
				all = false
				break
			}
		}
		if all {
			return s
		}
	}
	return -1
}

// recordHistLocked stores one group's restart state for a step (first
// writer wins; members are bit-identical) and drops entries the advancing
// cut has obsoleted. Hub runs keep no history (histG is nil).
func (r *run) recordHistLocked(gi, step int, params, velocity []*tensor.Tensor) {
	if r.histG == nil {
		return
	}
	if _, ok := r.histG[gi][step]; !ok {
		r.histG[gi][step] = histEntry{params: params, velocity: velocity}
	}
	if cut := r.ringCutLocked(); cut > 0 {
		for _, h := range r.histG {
			for s := range h {
				if s < cut {
					delete(h, s)
				}
			}
		}
	}
}

// ringRejoin re-places every device for a restart attempt: the failed
// attempt's sessions are gone (workers with Rejoin stay up to accept
// replacements), so each placement slot is dialed fresh — its configured
// worker first, the survivors as fallback. All connections are held open
// until the actual placement is known, because every Resume must carry
// the final peer directory before any worker starts dialing its mesh.
func (r *run) ringRejoin(addrs []string) error {
	placement := PlaceDevices(r.nDev, len(addrs))
	type held struct {
		conn    transport.Conn
		addr    string
		devices []int
		sid     int64
	}
	var holds []held
	bail := func(err error) error {
		for _, h := range holds {
			h.conn.Close()
		}
		return err
	}
	for i, addr := range addrs {
		if len(placement[i]) == 0 {
			continue
		}
		candidates := []string{addr}
		for _, a := range addrs {
			if a != addr {
				candidates = append(candidates, a)
			}
		}
		conn, actual, err := r.dialHandshake(candidates, time.Now().Add(r.joinTimeout()))
		if err != nil {
			return bail(err)
		}
		holds = append(holds, held{conn, actual, placement[i], r.newSessionID()})
	}
	peers := make([]string, r.nDev)
	for _, h := range holds {
		for _, d := range h.devices {
			peers[d] = h.addr
		}
	}
	r.mu.Lock()
	r.peerDir = peers
	r.mu.Unlock()
	for _, h := range holds {
		if err := h.conn.Send(r.buildResume(h.devices, h.sid)); err != nil {
			// The worker died between handshake and resume: retryable, the
			// next attempt re-places around it.
			return bail(workerLostError{cause: fmt.Errorf("cluster: worker %s resume: %w", h.addr, err)})
		}
	}
	for i, h := range holds {
		if _, ok := r.attachResumed(h.conn, h.addr, h.devices, h.sid); !ok {
			for _, rest := range holds[i+1:] {
				rest.conn.Close()
			}
			return fmt.Errorf("cluster: run closed during ring rejoin")
		}
		r.co.logf("worker %s hosting devices %v for ring restart", h.addr, h.devices)
	}
	return nil
}
