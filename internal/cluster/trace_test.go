package cluster

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"pipebd/internal/cluster/transport"
	"pipebd/internal/cluster/wire"
	"pipebd/internal/distill"
	"pipebd/internal/engine"
	"pipebd/internal/obs"
)

// TestRingTracingShipsSpans is the cluster half of the observability
// contract: a traced ring run ships every device's span batches to the
// coordinator's sink, the collected timeline covers the paper's phase
// taxonomy — forward, backward, all-reduce collective phases, peer-ack
// waits — and recording it all changes nothing about the trajectory.
func TestRingTracingShipsSpans(t *testing.T) {
	leakCheck(t)
	batches := tinyBatches(4, 12)
	// dp3: a 3-way split group (true reduce-scatter + all-gather ring)
	// feeding a single-device tail.
	p := plan("dp3", g([]int{0, 1, 2}, []int{0, 1}), g([]int{3}, []int{2, 3}))
	ref := distill.NewTinyWorkbench(distill.DefaultTinyConfig())
	refRes := engine.RunPipelined(ref, batches, engine.Config{Plan: p, DPU: true, LR: 0.05, Momentum: 0.9})

	net := transport.NewLoopback()
	addrs := ringWorkers(t, net, 3, WorkerConfig{Sessions: 1})
	collect := obs.NewCollector()
	metrics := obs.NewMetrics()
	w := distill.NewTinyWorkbench(distill.DefaultTinyConfig())
	res, err := Run(net, addrs, w, batches, Config{Plan: p, DPU: true,
		LR: 0.05, Momentum: 0.9, Topology: "ring",
		Spec:      TinySpec(distill.DefaultTinyConfig()),
		Trace:     true,
		TraceSink: collect.Add,
		Metrics:   metrics})
	if err != nil {
		t.Fatalf("traced ring run: %v", err)
	}
	lossesBitIdentical(t, "traced ring", res, refRes)
	weightsBitIdentical(t, "traced ring", w, ref)

	names, byTrack := collect.Tracks()
	for _, want := range []string{"dev0", "dev1", "dev2", "dev3"} {
		if _, ok := byTrack[want]; !ok {
			t.Fatalf("no spans collected for track %s (have %v)", want, names)
		}
	}
	seen := map[string]map[string]bool{}
	for tr, spans := range byTrack {
		seen[tr] = map[string]bool{}
		for _, s := range spans {
			seen[tr][s.Name] = true
		}
	}
	// Split-group members run the full taxonomy; the tail device relays
	// nothing onward and reduces nothing.
	for _, tr := range []string{"dev0", "dev1", "dev2"} {
		for _, span := range []string{"teacher_fwd", "student_fwd", "student_bwd",
			"sgd_update", "send_output", "peer_ack_wait", "allreduce",
			"reduce_scatter", "all_gather"} {
			if !seen[tr][span] {
				t.Fatalf("track %s missing span %q (saw %v)", tr, span, seen[tr])
			}
		}
	}
	for _, span := range []string{"teacher_fwd", "student_fwd", "student_bwd", "recv_act"} {
		if !seen["dev3"][span] {
			t.Fatalf("track dev3 missing span %q (saw %v)", span, seen["dev3"])
		}
	}
	if v := metrics.Counter("steps_completed").Load(); v != int64(len(batches)) {
		t.Fatalf("steps_completed = %d, want %d", v, len(batches))
	}
}

// TestHubTracingAndCoordinatorTrack covers the hub data plane plus the
// coordinator's own track: a durable traced run must surface
// ledger_append spans under the "coordinator" track and keep the ledger
// byte counters live.
func TestHubTracingAndCoordinatorTrack(t *testing.T) {
	leakCheck(t)
	batches := tinyBatches(3, 8)
	p := hybridPlan()
	net := transport.NewLoopback()
	addrs := startWorkers(t, net, 2, WorkerConfig{Sessions: 1})
	collect := obs.NewCollector()
	metrics := obs.NewMetrics()
	w := distill.NewTinyWorkbench(distill.DefaultTinyConfig())
	_, err := Run(net, addrs, w, batches, Config{Plan: p, DPU: true,
		LR: 0.05, Momentum: 0.9,
		Spec:      TinySpec(distill.DefaultTinyConfig()),
		LedgerDir: filepath.Join(t.TempDir(), "led"),
		Trace:     true,
		TraceSink: collect.Add,
		Metrics:   metrics})
	if err != nil {
		t.Fatalf("traced hub run: %v", err)
	}
	_, byTrack := collect.Tracks()
	found := false
	for _, s := range byTrack["coordinator"] {
		if s.Name == "ledger_append" && s.Cat == obs.CatLedger {
			found = true
		}
	}
	if !found {
		t.Fatalf("coordinator track has no ledger_append span; tracks: %s", collect)
	}
	for _, span := range []string{"recv_input", "send_output", "allreduce", "snapshot_write"} {
		if !hasSpan(byTrack["dev0"], span) {
			t.Fatalf("hub track dev0 missing span %q", span)
		}
	}
	if metrics.Counter("ledger_records").Load() == 0 || metrics.Counter("ledger_bytes").Load() == 0 {
		t.Fatal("ledger counters never advanced")
	}
	if metrics.Counter("snapshots").Load() == 0 {
		t.Fatal("snapshot counter never advanced")
	}
}

func hasSpan(spans []obs.Span, name string) bool {
	for _, s := range spans {
		if s.Name == name {
			return true
		}
	}
	return false
}

// TestTraceWithoutSinkRejected: asking for spans with nowhere to deliver
// them is a configuration error, caught before any session starts.
func TestTraceWithoutSinkRejected(t *testing.T) {
	w := distill.NewTinyWorkbench(distill.DefaultTinyConfig())
	_, err := Run(transport.NewLoopback(), []string{"x"}, w, tinyBatches(2, 8),
		Config{Plan: hybridPlan(), DPU: true, LR: 0.05,
			Spec: TinySpec(distill.DefaultTinyConfig()), Trace: true})
	if err == nil || !strings.Contains(err.Error(), "TraceSink") {
		t.Fatalf("got %v, want TraceSink configuration error", err)
	}
}

// TestWorkerTraceDirDump: a worker with TraceDir traces its sessions
// locally — even when the coordinator never asked for spans — and dumps
// a loadable Chrome trace file with one thread-name metadata entry per
// hosted device, while the worker metrics accumulate per-category busy
// time.
func TestWorkerTraceDirDump(t *testing.T) {
	leakCheck(t)
	batches := tinyBatches(3, 8)
	p := hybridPlan()
	dir := t.TempDir()
	metrics := obs.NewMetrics()
	net := transport.NewLoopback()
	addrs := startWorkers(t, net, 1, WorkerConfig{Sessions: 1, Dial: net,
		TraceDir: dir, Metrics: metrics})
	w := distill.NewTinyWorkbench(distill.DefaultTinyConfig())
	if _, err := Run(net, addrs, w, batches, Config{Plan: p, DPU: true,
		LR: 0.05, Momentum: 0.9, Topology: "ring",
		Spec: TinySpec(distill.DefaultTinyConfig())}); err != nil {
		t.Fatalf("run with worker-local tracing: %v", err)
	}
	// The worker writes the dump after the coordinator's drain, so the
	// file lands shortly after Run returns.
	var files []string
	deadline := time.Now().Add(5 * time.Second)
	for {
		files, _ = filepath.Glob(filepath.Join(dir, "trace-*.json"))
		if len(files) > 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if len(files) != 1 {
		t.Fatalf("want one trace dump in %s, got %v", dir, files)
	}
	raw, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph   string `json:"ph"`
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace dump is not valid JSON: %v", err)
	}
	threads := 0
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" {
			threads++
		}
	}
	if threads != 3 {
		t.Fatalf("trace dump names %d tracks, want 3 (one per device)", threads)
	}
	if metrics.Counter("busy_student_bwd_ns").Load() <= 0 {
		t.Fatal("worker metrics never accumulated student_bwd busy time")
	}
	if metrics.Counter("sessions_completed").Load() != 1 {
		t.Fatal("sessions_completed != 1")
	}
}

// TestMeterConcurrentRingTraffic (satellite): transport.Meter counters
// must stay race-free and monotonic while the full peer mesh of a 3-way
// split hammers them from many connections, and must never go backwards
// across a chaos kill and ring restart.
func TestMeterConcurrentRingTraffic(t *testing.T) {
	leakCheck(t)
	batches := tinyBatches(5, 12)
	p := plan("dp3", g([]int{0, 1, 2}, []int{0, 1}), g([]int{3}, []int{2, 3}))
	inner := transport.NewLoopback()
	chaos := transport.NewChaos(inner, transport.Fault{
		Trigger: transport.Trigger{Conn: transport.AnyConn, Op: transport.OpRecv,
			Kind: wire.KindRingSegment, Step: 2, Count: 1},
		Action: transport.ActKill,
	})
	peerMeter := transport.NewMeter(chaos)
	coordMeter := transport.NewMeter(inner)

	// A monitor goroutine polls the counters concurrently with the run,
	// asserting monotonicity; -race turns any unsynchronized counter
	// update into a failure.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	var violation error
	go func() {
		defer wg.Done()
		var last transport.Totals
		for {
			select {
			case <-stop:
				return
			default:
			}
			cur := peerMeter.Totals()
			if cur.SentBytes < last.SentBytes || cur.RecvBytes < last.RecvBytes ||
				cur.SentFrames < last.SentFrames || cur.RecvFrames < last.RecvFrames {
				violation = errMeterRegressed
				return
			}
			last = cur
		}
	}()

	addrs := startWorkers(t, inner, 3, WorkerConfig{Rejoin: true, Sessions: 1, Dial: peerMeter})
	w := distill.NewTinyWorkbench(distill.DefaultTinyConfig())
	_, err := Run(coordMeter, addrs, w, batches, Config{Plan: p, DPU: true,
		LR: 0.05, Momentum: 0.9, Topology: "ring",
		Spec:        TinySpec(distill.DefaultTinyConfig()),
		MaxRestarts: 2})
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatalf("metered chaos ring run: %v", err)
	}
	if violation != nil {
		t.Fatal(violation)
	}
	pt, ct := peerMeter.Totals(), coordMeter.Totals()
	if pt.SentBytes == 0 || pt.RecvBytes == 0 {
		t.Fatalf("peer meter saw no traffic: %+v", pt)
	}
	if ct.SentBytes == 0 {
		t.Fatalf("coordinator meter saw no traffic: %+v", ct)
	}
	if pt.SentFrames < ct.SentFrames {
		t.Fatalf("peer data plane (%d frames) should dominate the control plane (%d frames)",
			pt.SentFrames, ct.SentFrames)
	}
}

var errMeterRegressed = &meterRegression{}

type meterRegression struct{}

func (*meterRegression) Error() string { return "meter totals went backwards" }
