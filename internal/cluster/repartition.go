package cluster

// Measurement-driven dynamic repartitioning (the runtime half of ROADMAP
// item 4's rebalancing): the coordinator folds the span batches workers
// already ship (wire v5) into per-device measured step times, re-derives
// the contiguous plan from those measurements (sched.Replan over a
// profilegen.FromMeasured-shaped cost table), and — when the predicted
// improvement clears a threshold for enough consecutive evaluations —
// executes a planned global cut at a synchronous step boundary using the
// exact snapshot + re-placement machinery the ring recovery path already
// has, then resumes on the new placement.
//
// The bit-identity contract survives because re-planning is restricted
// to all-unsplit plans: each block's training trajectory is a pure
// function of its input activations (the deterministic frozen teacher
// chain) and its own optimizer state, so moving a contiguous block
// boundary between devices relocates work without reordering a single
// float fold. The win is wall-clock only — exactly the paper's framing
// of scheduling as acceleration "without modifying the mathematical
// formulation".
//
// Conservativeness: measured block costs are treated as properties of
// the block, not the device. For the move that matters — shedding
// blocks off a straggler — the moved blocks' costs were measured on the
// slow device, so the predicted bottleneck of the new placement
// overestimates and the realized improvement is at least the predicted
// one. Moves in the optimistic direction are guarded by the threshold,
// the hysteresis streak, and the applied-fingerprint set (a partition
// never repeats, so the controller terminates and cannot oscillate).

import (
	"fmt"
	"sync"

	"pipebd/internal/cluster/wire"
	"pipebd/internal/distill"
	"pipebd/internal/obs"
	"pipebd/internal/sched"
	"pipebd/internal/tensor"
)

// RepartitionConfig tunes the runtime repartitioner. Enabling it forces
// fault tolerance on (snapshots are the cut mechanism) and makes workers
// ship span batches even when Config.Trace is off.
type RepartitionConfig struct {
	// Enabled turns the controller on. Requires an all-unsplit plan
	// (every group hosted by exactly one device); split groups would
	// break the bit-identity contract and are refused at run start.
	Enabled bool
	// Threshold is the minimum predicted relative step-time improvement
	// a proposal must clear, e.g. 0.1 = 10%. <= 0 means 0.1.
	Threshold float64
	// Hysteresis is how many consecutive qualifying evaluations (one per
	// measured step batch) must agree before the cut executes; a
	// non-qualifying evaluation resets the streak. <= 0 means 3.
	Hysteresis int
	// Warmup is the minimum number of measured steps every device must
	// have contributed before proposals are evaluated. <= 0 means 3.
	Warmup int
}

func (c RepartitionConfig) withDefaults() RepartitionConfig {
	if c.Threshold <= 0 {
		c.Threshold = 0.1
	}
	if c.Hysteresis <= 0 {
		c.Hysteresis = 3
	}
	if c.Warmup <= 0 {
		c.Warmup = 3
	}
	return c
}

// plannedRepartition is the typed "error" a run fails with when the
// controller triggers: the drive loop recognizes it as a deliberate
// supersession — capture the carry, remap it to the new plan, restart —
// rather than a failure, and teardown flushes outboxes so every session
// sees its Repartition frame.
type plannedRepartition struct {
	cut  int
	plan sched.Plan
	eval sched.ReplanEval
}

func (e *plannedRepartition) Error() string {
	return fmt.Sprintf("cluster: planned repartition after step %d to %s (measured bottleneck %.2fms, predicted %.2fms, %.0f%% better)",
		e.cut, e.plan.Describe(), e.eval.Current/1e6, e.eval.Proposed/1e6, 100*e.eval.Improvement())
}

// repartitioner is the drive-loop-scoped controller state. It outlives
// individual attempts: the applied-fingerprint set must persist across
// repartitions (termination), while measurements reset every attempt.
type repartitioner struct {
	cfg RepartitionConfig
	agg *obs.StepAggregator

	mu      sync.Mutex
	streak  int
	stopped bool            // re-planning refused (split groups); never retry
	applied map[string]bool // partition fingerprints already run
}

func newRepartitioner(cfg RepartitionConfig, initial sched.Plan) *repartitioner {
	return &repartitioner{
		cfg:     cfg.withDefaults(),
		agg:     obs.NewStepAggregator(),
		applied: map[string]bool{sched.Fingerprint(initial): true},
	}
}

// resetMeasurements discards span statistics and the qualification
// streak; called at every attempt start (the placement — or the worker
// hosting it — changed, so old timings no longer describe the run).
func (rp *repartitioner) resetMeasurements() {
	rp.agg.Reset()
	rp.mu.Lock()
	rp.streak = 0
	rp.mu.Unlock()
}

// observeSpans folds one device's step span batch and evaluates whether
// to trigger a repartition. Called from handle on a reader goroutine.
func (r *run) observeSpans(track string, spans []obs.Span) {
	rp := r.repart
	rp.agg.Add(track, spans)
	plan, eval, ok := rp.evaluate(r.plan)
	if !ok {
		return
	}
	r.triggerRepartition(plan, eval)
}

// evaluate folds the current measurements into a proposal and advances
// the hysteresis streak. ok is true when the streak just reached the
// configured length — the caller should execute the cut.
func (rp *repartitioner) evaluate(current sched.Plan) (sched.Plan, sched.ReplanEval, bool) {
	rp.mu.Lock()
	defer rp.mu.Unlock()
	if rp.stopped {
		return sched.Plan{}, sched.ReplanEval{}, false
	}
	blockCost, ok := rp.measuredBlockCosts(current)
	if !ok {
		return sched.Plan{}, sched.ReplanEval{}, false
	}
	plan, eval, err := sched.Replan(current, blockCost)
	if err != nil {
		// Split groups: permanently out of scope (the seam left for an
		// asynchronous schedule that relaxes bit-identity).
		rp.stopped = true
		return sched.Plan{}, sched.ReplanEval{}, false
	}
	fp := sched.Fingerprint(plan)
	if eval.Improvement() < rp.cfg.Threshold || rp.applied[fp] {
		rp.streak = 0
		return sched.Plan{}, sched.ReplanEval{}, false
	}
	rp.streak++
	if rp.streak < rp.cfg.Hysteresis {
		return sched.Plan{}, sched.ReplanEval{}, false
	}
	return plan, eval, true
}

// measuredBlockCosts maps the per-device statistics onto global block
// indices under the current plan. ok is false until every device has
// warmed up with consistent measurements.
func (rp *repartitioner) measuredBlockCosts(current sched.Plan) ([]float64, bool) {
	stats := rp.agg.Stats()
	nb := 0
	for _, g := range current.Groups {
		nb += len(g.Blocks)
	}
	blockCost := make([]float64, nb)
	for _, g := range current.Groups {
		if g.Split() != 1 {
			return nil, false
		}
		st, ok := stats[fmt.Sprintf("dev%d", g.Devices[0])]
		if !ok || st.Steps < rp.cfg.Warmup || len(st.BlockBusy) != len(g.Blocks) {
			return nil, false
		}
		for i, b := range g.Blocks {
			blockCost[b] = st.BlockBusy[i]
		}
	}
	return blockCost, true
}

// triggerRepartition executes a qualified proposal: announce the planned
// cut to every session (wire v6 Repartition frames, flushed by the
// graceful teardown) and fail the attempt with the typed error the drive
// loop converts into a restart on the new plan. The cut itself is
// whatever global step boundary the carry capture lands on; requiring a
// committed cut here (>= 0, before the last step) keeps the restart
// meaningful.
func (r *run) triggerRepartition(plan sched.Plan, eval sched.ReplanEval) {
	rp := r.repart
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	cut := r.ringCutLocked()
	if cut < 0 || cut >= r.steps-1 {
		r.mu.Unlock()
		return // no committed boundary yet (or nothing left to rebalance); retry on the next batch
	}
	rp.mu.Lock()
	rp.applied[sched.Fingerprint(plan)] = true
	rp.streak = 0
	rp.mu.Unlock()
	for _, p := range r.peers {
		p.out.Enqueue(wire.EncodeRepartition(int32(cut), plan))
	}
	r.mu.Unlock()
	r.fail(&plannedRepartition{cut: cut, plan: plan, eval: eval})
}

// remapCarry reshapes a captured carry from the old plan's grouping to
// the new plan's. Both plans are all-unsplit and cover the same blocks
// in order, so each group's flattened parameter/velocity lists split
// cleanly at block boundaries (parameter counts from the workbench) and
// each group's loss rows are exactly its blocks' rows; the remap moves
// slices between groups without copying or recombining any tensor.
func remapCarry(c *ringCarry, oldPlan, newPlan sched.Plan, w *distill.Workbench) *ringCarry {
	nb := w.NumBlocks()
	paramsB := make([][]*tensor.Tensor, nb)
	velB := make([][]*tensor.Tensor, nb)
	lossB := make([][]float64, nb)
	for gi, g := range oldPlan.Groups {
		pi := 0
		for bi, b := range g.Blocks {
			n := len(w.StudentParams(b))
			if c.cut >= 0 {
				paramsB[b] = c.params[gi][pi : pi+n]
				velB[b] = c.velocity[gi][pi : pi+n]
			}
			pi += n
			lossB[b] = c.losses[gi][bi]
		}
	}
	out := &ringCarry{cut: c.cut,
		params:   make([][]*tensor.Tensor, len(newPlan.Groups)),
		velocity: make([][]*tensor.Tensor, len(newPlan.Groups)),
		losses:   make([][][]float64, len(newPlan.Groups))}
	for gi, g := range newPlan.Groups {
		for _, b := range g.Blocks {
			if c.cut >= 0 {
				out.params[gi] = append(out.params[gi], paramsB[b]...)
				out.velocity[gi] = append(out.velocity[gi], velB[b]...)
			}
			out.losses[gi] = append(out.losses[gi], lossB[b])
		}
	}
	return out
}
