package sched

import (
	"strings"
	"testing"
)

// unsplitPlan builds a one-device-per-group plan from (device, blocks)
// pairs, with deliberately non-sequential device IDs where the caller
// wants to check device-order preservation.
func unsplitPlan(name string, groups ...Group) Plan {
	return Plan{Name: name, Groups: groups}
}

// TestReplanShedsOverloadedDevice: with measured costs that make the
// first group the bottleneck, Replan must move the boundary, keep the
// current device order, cover the blocks contiguously, and report the
// improvement against the measured current bottleneck.
func TestReplanShedsOverloadedDevice(t *testing.T) {
	cur := unsplitPlan("lop",
		Group{Devices: []int{5}, Blocks: []int{0, 1}},
		Group{Devices: []int{2}, Blocks: []int{2}},
		Group{Devices: []int{7}, Blocks: []int{3}},
	)
	// Block 0 measured 4x its siblings: current bottleneck 4+1=5, best
	// contiguous split [0][1,2][3] (or [0][1][2,3]) has bottleneck 4.
	costs := []float64{4, 1, 1, 1}
	next, eval, err := Replan(cur, costs)
	if err != nil {
		t.Fatalf("Replan: %v", err)
	}
	if eval.Current != 5 || eval.Proposed != 4 {
		t.Fatalf("eval = %+v, want Current 5 Proposed 4", eval)
	}
	if imp := eval.Improvement(); imp != 0.2 {
		t.Fatalf("Improvement() = %v, want 0.2", imp)
	}
	if len(next.Groups) != 3 {
		t.Fatalf("proposed plan has %d groups, want 3", len(next.Groups))
	}
	wantDevs := []int{5, 2, 7}
	b := 0
	for gi, g := range next.Groups {
		if len(g.Devices) != 1 || g.Devices[0] != wantDevs[gi] {
			t.Fatalf("group %d devices = %v, want [%d] (device order must survive)", gi, g.Devices, wantDevs[gi])
		}
		for _, blk := range g.Blocks {
			if blk != b {
				t.Fatalf("group %d blocks %v break contiguity at %d", gi, g.Blocks, b)
			}
			b++
		}
	}
	if b != len(costs) {
		t.Fatalf("proposed plan covers %d blocks, want %d", b, len(costs))
	}
	if len(next.Groups[0].Blocks) != 1 {
		t.Fatalf("straggler group kept %v, want block 0 alone", next.Groups[0].Blocks)
	}
}

// TestReplanStableAtOptimum: when the measurement says the current
// boundaries are already optimal, the proposal is shape-identical
// (same fingerprint) and the predicted improvement is zero — the
// controller's no-oscillation guarantee rests on this.
func TestReplanStableAtOptimum(t *testing.T) {
	cur := unsplitPlan("flat",
		Group{Devices: []int{0}, Blocks: []int{0}},
		Group{Devices: []int{1}, Blocks: []int{1}},
		Group{Devices: []int{2}, Blocks: []int{2}},
	)
	next, eval, err := Replan(cur, []float64{1, 1, 1})
	if err != nil {
		t.Fatalf("Replan: %v", err)
	}
	if eval.Improvement() != 0 {
		t.Fatalf("balanced costs predicted improvement %v, want 0", eval.Improvement())
	}
	if Fingerprint(next) != Fingerprint(cur) {
		t.Fatalf("optimal placement re-planned: %s -> %s", Fingerprint(cur), Fingerprint(next))
	}
}

// TestReplanRefusesSplitGroups: split groups fold gradients, so their
// boundaries cannot move bit-identically — Replan must refuse them.
func TestReplanRefusesSplitGroups(t *testing.T) {
	cur := unsplitPlan("hybrid",
		Group{Devices: []int{0, 1}, Blocks: []int{0, 1}},
		Group{Devices: []int{2}, Blocks: []int{2}},
	)
	_, _, err := Replan(cur, []float64{1, 1, 1})
	if err == nil || !strings.Contains(err.Error(), "all-unsplit") {
		t.Fatalf("split plan: got %v, want all-unsplit refusal", err)
	}
}

// TestReplanRejectsCostMismatch: a cost vector that does not cover the
// plan's blocks is a measurement bug, not something to paper over.
func TestReplanRejectsCostMismatch(t *testing.T) {
	cur := unsplitPlan("two",
		Group{Devices: []int{0}, Blocks: []int{0}},
		Group{Devices: []int{1}, Blocks: []int{1}},
	)
	_, _, err := Replan(cur, []float64{1, 2, 3})
	if err == nil || !strings.Contains(err.Error(), "measured block costs") {
		t.Fatalf("cost mismatch: got %v, want coverage refusal", err)
	}
}

// TestImprovementEdgeCases: a zero or negative measured bottleneck means
// no meaningful measurement; Improvement must not divide by it.
func TestImprovementEdgeCases(t *testing.T) {
	if imp := (ReplanEval{Current: 0, Proposed: 0}).Improvement(); imp != 0 {
		t.Fatalf("zero-current improvement = %v, want 0", imp)
	}
	if imp := (ReplanEval{Current: 4, Proposed: 5}).Improvement(); imp >= 0 {
		t.Fatalf("regressing proposal improvement = %v, want negative", imp)
	}
}

// TestFingerprintCanonical: fingerprints compare partition shape, not
// names, and distinguish both boundary moves and share changes.
func TestFingerprintCanonical(t *testing.T) {
	a := unsplitPlan("a",
		Group{Devices: []int{0}, Blocks: []int{0, 1}},
		Group{Devices: []int{1}, Blocks: []int{2}},
	)
	b := unsplitPlan("renamed",
		Group{Devices: []int{0}, Blocks: []int{0, 1}},
		Group{Devices: []int{1}, Blocks: []int{2}},
	)
	if Fingerprint(a) != Fingerprint(b) {
		t.Fatalf("same shape, different names: %s vs %s", Fingerprint(a), Fingerprint(b))
	}
	moved := unsplitPlan("a",
		Group{Devices: []int{0}, Blocks: []int{0}},
		Group{Devices: []int{1}, Blocks: []int{1, 2}},
	)
	if Fingerprint(a) == Fingerprint(moved) {
		t.Fatalf("boundary move invisible to fingerprint: %s", Fingerprint(a))
	}
	shared := Plan{Name: "a", Groups: []Group{
		{Devices: []int{0, 1}, Blocks: []int{0, 1, 2}, Shares: []int{2, 1}},
	}}
	plain := Plan{Name: "a", Groups: []Group{
		{Devices: []int{0, 1}, Blocks: []int{0, 1, 2}},
	}}
	if Fingerprint(shared) == Fingerprint(plain) {
		t.Fatalf("share change invisible to fingerprint: %s", Fingerprint(shared))
	}
}
