// Package sched implements Pipe-BD's scheduling decisions: the contiguous
// block distribution used by plain teacher relaying, the automatic hybrid
// distribution (AHD) search over device-group/block-range compositions,
// the internal-relaying special case, and the LPT bin packing used by the
// layerwise-scheduling (LS) baseline.
package sched

import (
	"fmt"
	"strings"
)

// Group assigns a contiguous range of blocks to a contiguous range of
// devices. A group with more than one device trains its blocks
// data-parallel (the batch splits across members and gradients are
// all-reduced within the group), which is AHD's extra degree of freedom.
//
// Shares optionally fixes each member's slice of the global batch; nil
// means an equal split. Unequal shares are how the heterogeneous
// extension (the paper's stated future work, §VIII) balances members of
// different speeds: faster devices take proportionally larger slices.
type Group struct {
	Devices []int // contiguous device ranks
	Blocks  []int // contiguous block indices
	Shares  []int // per-member batch share; nil = equal split
}

// Split returns the number of devices sharing the group's blocks.
func (g Group) Split() int { return len(g.Devices) }

// MemberBatch returns member j's local batch for a global batch size.
func (g Group) MemberBatch(globalBatch, j int) int {
	if g.Shares == nil {
		return globalBatch / g.Split()
	}
	return g.Shares[j]
}

// ValidateShares checks that explicit shares cover the global batch.
func (g Group) ValidateShares(globalBatch int) error {
	if g.Shares == nil {
		return nil
	}
	if len(g.Shares) != g.Split() {
		return fmt.Errorf("sched: group has %d shares for %d devices", len(g.Shares), g.Split())
	}
	sum := 0
	for _, s := range g.Shares {
		if s <= 0 {
			return fmt.Errorf("sched: non-positive batch share %d", s)
		}
		sum += s
	}
	if sum != globalBatch {
		return fmt.Errorf("sched: shares sum to %d, want %d", sum, globalBatch)
	}
	return nil
}

// Plan is a complete block-to-device distribution for teacher relaying:
// an ordered list of groups covering all blocks and all devices exactly
// once, in order (group i+1 receives group i's boundary activation).
type Plan struct {
	Name   string
	Groups []Group
}

// Validate checks that the plan covers nDev devices and nBlocks blocks
// exactly once each, contiguously and in order.
func (p Plan) Validate(nDev, nBlocks int) error {
	nextDev, nextBlock := 0, 0
	for gi, g := range p.Groups {
		if len(g.Devices) == 0 || len(g.Blocks) == 0 {
			return fmt.Errorf("sched: plan %q group %d is empty", p.Name, gi)
		}
		for _, d := range g.Devices {
			if d != nextDev {
				return fmt.Errorf("sched: plan %q group %d device %d out of order (want %d)", p.Name, gi, d, nextDev)
			}
			nextDev++
		}
		for _, b := range g.Blocks {
			if b != nextBlock {
				return fmt.Errorf("sched: plan %q group %d block %d out of order (want %d)", p.Name, gi, b, nextBlock)
			}
			nextBlock++
		}
	}
	if nextDev != nDev {
		return fmt.Errorf("sched: plan %q covers %d devices, want %d", p.Name, nextDev, nDev)
	}
	if nextBlock != nBlocks {
		return fmt.Errorf("sched: plan %q covers %d blocks, want %d", p.Name, nextBlock, nBlocks)
	}
	return nil
}

// Describe renders the plan the way the paper narrates Fig. 5 schedules,
// e.g. "dev0-2: B0-B2 (3-way DP) | dev3: B3-B5".
func (p Plan) Describe() string {
	var parts []string
	for _, g := range p.Groups {
		dev := fmt.Sprintf("dev%d", g.Devices[0])
		if len(g.Devices) > 1 {
			dev = fmt.Sprintf("dev%d-%d", g.Devices[0], g.Devices[len(g.Devices)-1])
		}
		blk := fmt.Sprintf("B%d", g.Blocks[0])
		if len(g.Blocks) > 1 {
			blk = fmt.Sprintf("B%d-B%d", g.Blocks[0], g.Blocks[len(g.Blocks)-1])
		}
		s := fmt.Sprintf("%s: %s", dev, blk)
		if len(g.Devices) > 1 {
			s += fmt.Sprintf(" (%d-way DP)", len(g.Devices))
		}
		parts = append(parts, s)
	}
	return strings.Join(parts, " | ")
}

// GroupOf returns the index of the group containing the given device.
func (p Plan) GroupOf(device int) int {
	for gi, g := range p.Groups {
		for _, d := range g.Devices {
			if d == device {
				return gi
			}
		}
	}
	return -1
}

// seq returns [from, from+1, ..., to-1].
func seq(from, to int) []int {
	out := make([]int, 0, to-from)
	for i := from; i < to; i++ {
		out = append(out, i)
	}
	return out
}

// InternalRelaying returns the plan corresponding to the paper's TR+IR
// ablation: a single group in which every device holds every block and
// parallelism is pure data parallelism. It is the degenerate hybrid plan
// where all blocks are split only along the batch dimension.
func InternalRelaying(nDev, nBlocks int) Plan {
	return Plan{
		Name:   "internal-relaying",
		Groups: []Group{{Devices: seq(0, nDev), Blocks: seq(0, nBlocks)}},
	}
}
