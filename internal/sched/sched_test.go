package sched

import (
	"math"
	"testing"
	"testing/quick"

	"pipebd/internal/hw"
	"pipebd/internal/model"
	"pipebd/internal/profilegen"
)

func nasProfile(t *testing.T, imagenet bool) profilegen.Profile {
	t.Helper()
	classes := 10
	if imagenet {
		classes = 1000
	}
	w := model.NAS(imagenet)
	_ = classes
	return profilegen.Measure(w, hw.RTXA6000(), 256, 4, 10)
}

func TestPlanValidate(t *testing.T) {
	good := Plan{Name: "g", Groups: []Group{
		{Devices: []int{0}, Blocks: []int{0, 1}},
		{Devices: []int{1, 2}, Blocks: []int{2}},
		{Devices: []int{3}, Blocks: []int{3, 4, 5}},
	}}
	if err := good.Validate(4, 6); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
	cases := map[string]Plan{
		"missing device": {Groups: []Group{{Devices: []int{0}, Blocks: []int{0, 1, 2, 3, 4, 5}}}},
		"block gap": {Groups: []Group{
			{Devices: []int{0, 1}, Blocks: []int{0}},
			{Devices: []int{2, 3}, Blocks: []int{2, 3, 4, 5}},
		}},
		"out of order devices": {Groups: []Group{
			{Devices: []int{1}, Blocks: []int{0, 1, 2}},
			{Devices: []int{0, 2, 3}, Blocks: []int{3, 4, 5}},
		}},
		"empty group": {Groups: []Group{
			{Devices: []int{0, 1, 2, 3}, Blocks: nil},
		}},
	}
	for name, p := range cases {
		if err := p.Validate(4, 6); err == nil {
			t.Errorf("%s: invalid plan accepted", name)
		}
	}
}

func TestPlanDescribe(t *testing.T) {
	p := Plan{Groups: []Group{
		{Devices: []int{0, 1, 2}, Blocks: []int{0, 1, 2}},
		{Devices: []int{3}, Blocks: []int{3, 4, 5}},
	}}
	got := p.Describe()
	want := "dev0-2: B0-B2 (3-way DP) | dev3: B3-B5"
	if got != want {
		t.Fatalf("Describe = %q, want %q", got, want)
	}
}

func TestPlanGroupOf(t *testing.T) {
	p := InternalRelaying(4, 6)
	if p.GroupOf(2) != 0 {
		t.Fatal("all devices are in group 0 under internal relaying")
	}
	if p.GroupOf(7) != -1 {
		t.Fatal("unknown device should return -1")
	}
}

func TestInternalRelayingShape(t *testing.T) {
	p := InternalRelaying(4, 6)
	if err := p.Validate(4, 6); err != nil {
		t.Fatal(err)
	}
	if len(p.Groups) != 1 || p.Groups[0].Split() != 4 || len(p.Groups[0].Blocks) != 6 {
		t.Fatalf("bad IR plan: %+v", p)
	}
}

func TestTRContiguousKnownPartition(t *testing.T) {
	// Hand-crafted profile: block costs 10,1,1,1,1,10 over 3 devices
	// should isolate the two heavy blocks: {0},{1..4},{5}.
	p := profilegen.Profile{
		GlobalBatch: 8, MaxSplit: 1,
		TeacherFwd: [][]float64{{10}, {1}, {1}, {1}, {1}, {10}},
		StudentFwd: [][]float64{{0}, {0}, {0}, {0}, {0}, {0}},
		StudentBwd: [][]float64{{0}, {0}, {0}, {0}, {0}, {0}},
		Update:     []float64{0, 0, 0, 0, 0, 0},
	}
	plan := TRContiguous(p, 3)
	if err := plan.Validate(3, 6); err != nil {
		t.Fatal(err)
	}
	want := [][]int{{0}, {1, 2, 3, 4}, {5}}
	for i, g := range plan.Groups {
		if len(g.Blocks) != len(want[i]) {
			t.Fatalf("group %d blocks %v, want %v", i, g.Blocks, want[i])
		}
	}
}

func TestTRContiguousMoreDevicesThanBlocks(t *testing.T) {
	p := profilegen.Profile{
		GlobalBatch: 8, MaxSplit: 1,
		TeacherFwd: [][]float64{{1}, {1}},
		StudentFwd: [][]float64{{0}, {0}},
		StudentBwd: [][]float64{{0}, {0}},
		Update:     []float64{0, 0},
	}
	plan := TRContiguous(p, 4)
	// Only two devices can receive blocks; plan covers 2 devices.
	if len(plan.Groups) != 2 {
		t.Fatalf("got %d groups, want 2", len(plan.Groups))
	}
}

func TestTRContiguousMinimizesBottleneck(t *testing.T) {
	// Compare against brute force on random costs.
	for trial := 0; trial < 30; trial++ {
		costs := make([]float64, 6)
		for i := range costs {
			costs[i] = float64((trial*7+i*13)%17 + 1)
		}
		p := profilegen.Profile{GlobalBatch: 8, MaxSplit: 1,
			TeacherFwd: make([][]float64, 6), StudentFwd: make([][]float64, 6),
			StudentBwd: make([][]float64, 6), Update: make([]float64, 6)}
		for i := range costs {
			p.TeacherFwd[i] = []float64{costs[i]}
			p.StudentFwd[i] = []float64{0}
			p.StudentBwd[i] = []float64{0}
		}
		plan := TRContiguous(p, 4)
		got := planBottleneck(plan, costs)
		want := bruteForceBottleneck(costs, 4)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: bottleneck %v, optimal %v (costs %v)", trial, got, want, costs)
		}
	}
}

func planBottleneck(p Plan, costs []float64) float64 {
	var worst float64
	for _, g := range p.Groups {
		var s float64
		for _, b := range g.Blocks {
			s += costs[b]
		}
		if s > worst {
			worst = s
		}
	}
	return worst
}

func bruteForceBottleneck(costs []float64, nDev int) float64 {
	n := len(costs)
	best := math.MaxFloat64
	// Choose cut positions via bitmask over n-1 gaps.
	for mask := 0; mask < 1<<(n-1); mask++ {
		parts := 1
		for i := 0; i < n-1; i++ {
			if mask&(1<<i) != 0 {
				parts++
			}
		}
		if parts > nDev {
			continue
		}
		var worst, cur float64
		for i := 0; i < n; i++ {
			cur += costs[i]
			if i == n-1 || mask&(1<<i) != 0 {
				if cur > worst {
					worst = cur
				}
				cur = 0
			}
		}
		if worst < best {
			best = worst
		}
	}
	return best
}

func TestAHDValidAndAtLeastAsGoodAsTR(t *testing.T) {
	for _, imagenet := range []bool{false, true} {
		p := nasProfile(t, imagenet)
		sys := hw.A6000x4()
		trPlan := TRContiguous(p, 4)
		ahdPlan := AHD(p, sys, DefaultAHDConfig())
		if err := ahdPlan.Validate(4, p.NumBlocks()); err != nil {
			t.Fatalf("imagenet=%v: %v", imagenet, err)
		}
		cfg := DefaultAHDConfig()
		trCost := estimatePlan(p, sys, cfg, trPlan)
		ahdCost := estimatePlan(p, sys, cfg, ahdPlan)
		if ahdCost > trCost+1e-12 {
			t.Fatalf("imagenet=%v: AHD bottleneck %v worse than TR %v", imagenet, ahdCost, trCost)
		}
	}
}

func estimatePlan(p profilegen.Profile, sys hw.System, cfg AHDConfig, plan Plan) float64 {
	var worst float64
	for _, g := range plan.Groups {
		c, ok := groupCost(p, sys, cfg, g)
		if !ok {
			return math.MaxFloat64
		}
		if c > worst {
			worst = c
		}
	}
	return worst
}

func TestAHDSplitsDominantBlockOnImageNet(t *testing.T) {
	// The ImageNet NAS workload has a dominant block 0 (Fig. 5); AHD
	// must choose a hybrid plan that shares it across devices.
	p := nasProfile(t, true)
	plan := AHD(p, hw.A6000x4(), DefaultAHDConfig())
	first := plan.Groups[0]
	if first.Split() < 2 {
		t.Fatalf("expected block 0 shared by >=2 devices, got %s", plan.Describe())
	}
	if first.Blocks[0] != 0 {
		t.Fatalf("first group must start at block 0: %s", plan.Describe())
	}
}

func TestAHDRespectsMemoryLimit(t *testing.T) {
	// Shrink device memory until single-device groups become infeasible;
	// AHD must fall back to wider splits (or IR) rather than return an
	// infeasible plan.
	p := nasProfile(t, true)
	sys := hw.A6000x4()
	for i := range sys.GPUs {
		sys.GPUs[i].MemBytes = 6 << 30 // 6 GiB: too small for block 0 at full batch
	}
	plan := AHD(p, sys, DefaultAHDConfig())
	if err := plan.Validate(4, p.NumBlocks()); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultAHDConfig()
	for _, g := range plan.Groups {
		if _, ok := groupCost(p, sys, cfg, g); !ok {
			// The IR fallback may violate the estimate too when nothing
			// fits; only flag plans that claim feasibility.
			if len(plan.Groups) != 1 {
				t.Fatalf("AHD returned infeasible group %v", g)
			}
		}
	}
}

func TestCompositionsCount(t *testing.T) {
	// Number of compositions of n is 2^(n-1).
	for n := 1; n <= 6; n++ {
		got := len(compositions(n))
		want := 1 << (n - 1)
		if got != want {
			t.Fatalf("compositions(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestLPTPackBalances(t *testing.T) {
	costs := []float64{10, 9, 8, 7, 6, 5, 4}
	assign := LPTPack(costs, 3)
	loads := make([]float64, 3)
	seen := map[int]bool{}
	for d, tasks := range assign {
		for _, u := range tasks {
			if seen[u] {
				t.Fatalf("task %d assigned twice", u)
			}
			seen[u] = true
			loads[d] += costs[u]
		}
	}
	if len(seen) != len(costs) {
		t.Fatal("not all tasks assigned")
	}
	// LPT guarantees max load <= (4/3 - 1/3m) * optimal; for this input
	// optimal = 17, LPT achieves <= 21.
	for _, l := range loads {
		if l > 21 {
			t.Fatalf("load %v exceeds LPT bound", l)
		}
	}
}

func TestLPTPackProperty(t *testing.T) {
	f := func(raw []float64) bool {
		costs := make([]float64, len(raw))
		var total float64
		for i, v := range raw {
			costs[i] = math.Abs(math.Mod(v, 100)) + 0.001
			total += costs[i]
		}
		if len(costs) == 0 {
			return true
		}
		assign := LPTPack(costs, 4)
		// Every task assigned exactly once.
		count := 0
		var maxLoad, maxCost float64
		for _, tasks := range assign {
			var load float64
			for _, u := range tasks {
				load += costs[u]
				count++
				if costs[u] > maxCost {
					maxCost = costs[u]
				}
			}
			if load > maxLoad {
				maxLoad = load
			}
		}
		if count != len(costs) {
			return false
		}
		// Classic LPT bound: makespan <= total/m + max task.
		return maxLoad <= total/4+maxCost+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
