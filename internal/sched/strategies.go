package sched

import (
	"fmt"
	"math"
	"sort"

	"pipebd/internal/hw"
	"pipebd/internal/profilegen"
)

// TRContiguous returns the plain teacher-relaying plan: blocks distributed
// to devices in contiguous runs, one device per group, chosen among the
// (B-1 choose N-1) contiguous partitions to minimize the bottleneck
// device's per-step compute time. This is the paper's "naive distribution"
// that TR and TR+DPU use before AHD is enabled.
func TRContiguous(p profilegen.Profile, nDev int) Plan {
	nb := p.NumBlocks()
	if nDev > nb {
		nDev = nb // more devices than blocks: leave the excess idle
	}
	blockCost := make([]float64, nb)
	for b := 0; b < nb; b++ {
		blockCost[b] = p.StepTime(b, 1) + p.Update[b]
	}
	ends, _ := contiguousPartition(blockCost, nDev)
	var groups []Group
	b := 0
	for d, end := range ends {
		groups = append(groups, Group{Devices: []int{d}, Blocks: seq(b, end)})
		b = end
	}
	return Plan{Name: "tr-contiguous", Groups: groups}
}

// contiguousPartition splits nb block costs into nDev contiguous
// segments minimizing the maximum segment sum, via dynamic programming
// over the (nb-1 choose nDev-1) contiguous partitions: best[d][b] is the
// minimal bottleneck splitting blocks b..nb-1 over devices d..nDev-1. It
// returns each segment's exclusive end index (len nDev, last entry nb)
// and the achieved bottleneck. Shared by the static TRContiguous planner
// and the runtime measured re-planner, so both pick partitions the same
// way.
func contiguousPartition(blockCost []float64, nDev int) ([]int, float64) {
	nb := len(blockCost)
	prefix := make([]float64, nb+1)
	for b := 0; b < nb; b++ {
		prefix[b+1] = prefix[b] + blockCost[b]
	}
	segment := func(from, to int) float64 { return prefix[to] - prefix[from] }

	const inf = math.MaxFloat64
	best := make([][]float64, nDev+1)
	choice := make([][]int, nDev+1)
	for d := range best {
		best[d] = make([]float64, nb+1)
		choice[d] = make([]int, nb+1)
		for b := range best[d] {
			best[d][b] = inf
		}
	}
	best[nDev][nb] = 0
	for d := nDev - 1; d >= 0; d-- {
		for b := nb - 1; b >= 0; b-- {
			remainingDevices := nDev - d
			remainingBlocks := nb - b
			if remainingBlocks < remainingDevices {
				continue // not enough blocks for the rest
			}
			for end := b + 1; end <= nb-(remainingDevices-1); end++ {
				rest := best[d+1][end]
				if rest == inf {
					continue
				}
				bottleneck := math.Max(segment(b, end), rest)
				if bottleneck < best[d][b] {
					best[d][b] = bottleneck
					choice[d][b] = end
				}
			}
		}
	}
	if best[0][0] == inf {
		panic(fmt.Sprintf("sched: no contiguous partition of %d blocks over %d devices", nb, nDev))
	}
	ends := make([]int, nDev)
	b := 0
	for d := 0; d < nDev; d++ {
		ends[d] = choice[d][b]
		b = ends[d]
	}
	return ends, best[0][0]
}

// AHDConfig tunes the automatic hybrid distribution search.
type AHDConfig struct {
	// DDPOverlap is the fraction of intra-group gradient all-reduce
	// hidden beneath the backward pass (bucketed DDP behaviour).
	DDPOverlap float64
	// MemHeadroom is the usable fraction of device memory (frameworks
	// reserve some for workspace/fragmentation).
	MemHeadroom float64
}

// DefaultAHDConfig returns the defaults used by the experiments.
func DefaultAHDConfig() AHDConfig {
	return AHDConfig{DDPOverlap: 0.7, MemHeadroom: 0.92}
}

// AHD searches hybrid plans exhaustively: every composition of the N
// devices into contiguous groups combined with every composition of the B
// blocks into equally many contiguous ranges. Group cost is estimated
// from the profiled table as the group's per-step compute plus exposed
// all-reduce plus update time; the plan minimizing the bottleneck group
// that also fits device memory wins. This mirrors §IV-C of the paper
// (exhaustive search over the practical B≈10, N≈4..8 space, decided once
// before training).
func AHD(p profilegen.Profile, sys hw.System, cfg AHDConfig) Plan {
	nDev := sys.NumDevices()
	nb := p.NumBlocks()
	if nDev > p.MaxSplit {
		panic(fmt.Sprintf("sched: AHD needs profile with MaxSplit >= %d devices, have %d", nDev, p.MaxSplit))
	}

	bestCost := math.MaxFloat64
	var bestGroups []Group
	feasibleFound := false

	devComps := compositions(nDev)
	blockComps := compositions(nb)
	for _, dc := range devComps {
		for _, bc := range blockComps {
			if len(dc) != len(bc) {
				continue
			}
			groups, cost, fits := evaluate(p, sys, cfg, dc, bc)
			if !fits {
				continue
			}
			feasibleFound = true
			if cost < bestCost-1e-15 {
				bestCost = cost
				bestGroups = groups
			}
		}
	}
	if !feasibleFound {
		// No plan fits memory; fall back to the widest splitting (pure
		// data parallelism over all blocks), the lowest-memory option.
		return InternalRelaying(nDev, nb)
	}
	return Plan{Name: "ahd", Groups: bestGroups}
}

// evaluate builds the groups for one (device sizes, block sizes)
// composition pair and estimates the bottleneck group cost.
func evaluate(p profilegen.Profile, sys hw.System, cfg AHDConfig, devSizes, blockSizes []int) ([]Group, float64, bool) {
	groups := make([]Group, len(devSizes))
	dev, blk := 0, 0
	for i := range devSizes {
		groups[i] = Group{Devices: seq(dev, dev+devSizes[i]), Blocks: seq(blk, blk+blockSizes[i])}
		dev += devSizes[i]
		blk += blockSizes[i]
	}
	var bottleneck float64
	for _, g := range groups {
		cost, fits := groupCost(p, sys, cfg, g)
		if !fits {
			return nil, 0, false
		}
		if cost > bottleneck {
			bottleneck = cost
		}
	}
	return groups, bottleneck, true
}

// groupCost estimates one group's steady-state per-step time and checks
// per-device memory feasibility.
func groupCost(p profilegen.Profile, sys hw.System, cfg AHDConfig, g Group) (float64, bool) {
	k := g.Split()
	var compute, bwd, update float64
	var gradBytes, mem int64
	for _, b := range g.Blocks {
		compute += p.StepTime(b, k)
		bwd += p.StudentBwd[b][k-1]
		update += p.Update[b]
		gradBytes += p.StudentParamBytes[b]
		mem += p.TeacherMem[b][k-1] + p.StudentMem[b][k-1]
	}
	if mem > int64(cfg.MemHeadroom*float64(sys.GPUs[g.Devices[0]].MemBytes)) {
		return 0, false
	}
	exposed := sys.Link.AllReduceTime(gradBytes, k) - cfg.DDPOverlap*bwd
	if exposed < 0 {
		exposed = 0
	}
	return compute + exposed + update, true
}

// compositions returns all ordered compositions of n (ways of writing n
// as an ordered sum of positive integers), e.g. 3 -> [3],[1,2],[2,1],[1,1,1].
func compositions(n int) [][]int {
	if n == 0 {
		return [][]int{{}}
	}
	var out [][]int
	for first := 1; first <= n; first++ {
		for _, rest := range compositions(n - first) {
			comp := append([]int{first}, rest...)
			out = append(out, comp)
		}
	}
	return out
}

// LPTPack distributes task costs over nDev devices with longest-
// processing-time-first greedy bin packing (the scheduling used by the LS
// baseline [7]). It returns per-device task-index lists, each sorted
// ascending.
func LPTPack(costs []float64, nDev int) [][]int {
	type task struct {
		idx  int
		cost float64
	}
	tasks := make([]task, len(costs))
	for i, c := range costs {
		tasks[i] = task{i, c}
	}
	sort.SliceStable(tasks, func(a, b int) bool { return tasks[a].cost > tasks[b].cost })

	loads := make([]float64, nDev)
	assign := make([][]int, nDev)
	for _, t := range tasks {
		best := 0
		for d := 1; d < nDev; d++ {
			if loads[d] < loads[best] {
				best = d
			}
		}
		loads[best] += t.cost
		assign[best] = append(assign[best], t.idx)
	}
	for d := range assign {
		sort.Ints(assign[d])
	}
	return assign
}
