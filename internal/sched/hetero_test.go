package sched

import (
	"testing"

	"pipebd/internal/hw"
	"pipebd/internal/model"
)

// mixedSystem returns 2x A6000 + 2x 2080Ti on a shared PCIe 4 link.
func mixedSystem() hw.System {
	return HeteroSystem("2xA6000+2x2080Ti", hw.PCIe4(), hw.EPYC7302Host(),
		hw.RTXA6000(), hw.RTXA6000(), hw.RTX2080Ti(), hw.RTX2080Ti())
}

func TestHeteroSystemValidates(t *testing.T) {
	sys := mixedSystem()
	if err := sys.Validate(); err != nil {
		t.Fatal(err)
	}
	if sys.GPUs[0].Name == sys.GPUs[2].Name {
		t.Fatal("system should mix GPU types")
	}
}

func TestHeteroSystemPanicsWithoutGPUs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	HeteroSystem("empty", hw.PCIe4(), hw.EPYC7302Host())
}

func TestAHDHeteroProducesValidPlan(t *testing.T) {
	w := model.NAS(false)
	sys := mixedSystem()
	plan := AHDHetero(w, sys, 256, DefaultHeteroConfig())
	if err := plan.Validate(sys.NumDevices(), w.NumBlocks()); err != nil {
		t.Fatal(err)
	}
	for _, g := range plan.Groups {
		if err := g.ValidateShares(256); err != nil {
			t.Fatal(err)
		}
	}
}

func TestApportionFavorsFasterDevices(t *testing.T) {
	w := model.NAS(false)
	sys := mixedSystem()
	// A group spanning one A6000 (device 1) and one 2080Ti (device 2).
	g := Group{Devices: []int{1, 2}, Blocks: []int{0, 1, 2}}
	shares := apportion(w, sys, 256, DefaultHeteroConfig(), g)
	if shares == nil {
		t.Fatal("heterogeneous members must receive unequal shares")
	}
	if shares[0] <= shares[1] {
		t.Fatalf("A6000 share %d should exceed 2080Ti share %d", shares[0], shares[1])
	}
	if shares[0]+shares[1] != 256 {
		t.Fatalf("shares %v must sum to the batch", shares)
	}
}

func TestApportionHomogeneousIsCanonical(t *testing.T) {
	w := model.NAS(false)
	sys := hw.A6000x4()
	g := Group{Devices: []int{0, 1}, Blocks: []int{0, 1}}
	if shares := apportion(w, sys, 256, DefaultHeteroConfig(), g); shares != nil {
		t.Fatalf("equal-speed members should get the canonical nil split, got %v", shares)
	}
}

func TestAHDHeteroMatchesAHDOnHomogeneousSystem(t *testing.T) {
	// On a homogeneous system the heterogeneous planner must produce a
	// plan whose bottleneck estimate is no worse than the homogeneous
	// planner's (both search the same composition space).
	w := model.NAS(true)
	sys := hw.A6000x4()
	hetero := AHDHetero(w, sys, 256, DefaultHeteroConfig())
	if err := hetero.Validate(4, w.NumBlocks()); err != nil {
		t.Fatal(err)
	}
	// All groups should carry canonical (nil) shares.
	for _, g := range hetero.Groups {
		if g.Shares != nil {
			t.Fatalf("homogeneous plan carries explicit shares: %v", g.Shares)
		}
	}
}

func TestAHDHeteroSplitsDominantBlock(t *testing.T) {
	w := model.NAS(true)
	plan := AHDHetero(w, mixedSystem(), 256, DefaultHeteroConfig())
	first := plan.Groups[0]
	if first.Blocks[0] != 0 || first.Split() < 2 {
		t.Fatalf("expected block 0 shared, got %s", plan.Describe())
	}
}

func TestAHDHeteroMemoryFallback(t *testing.T) {
	w := model.NAS(true)
	sys := mixedSystem()
	for i := range sys.GPUs {
		sys.GPUs[i].MemBytes = 2 << 30 // nothing fits
	}
	plan := AHDHetero(w, sys, 256, DefaultHeteroConfig())
	if err := plan.Validate(4, w.NumBlocks()); err != nil {
		t.Fatal(err)
	}
	if len(plan.Groups) != 1 {
		t.Fatalf("fallback should be the widest split, got %s", plan.Describe())
	}
}

func TestMemberBatch(t *testing.T) {
	g := Group{Devices: []int{0, 1}, Blocks: []int{0}}
	if g.MemberBatch(256, 0) != 128 || g.MemberBatch(256, 1) != 128 {
		t.Fatal("nil shares must split evenly")
	}
	g.Shares = []int{160, 96}
	if g.MemberBatch(256, 0) != 160 || g.MemberBatch(256, 1) != 96 {
		t.Fatal("explicit shares must be honoured")
	}
	if err := g.ValidateShares(256); err != nil {
		t.Fatal(err)
	}
	g.Shares = []int{200, 96}
	if err := g.ValidateShares(256); err == nil {
		t.Fatal("over-subscribed shares must fail validation")
	}
	g.Shares = []int{256, 0}
	if err := g.ValidateShares(256); err == nil {
		t.Fatal("zero share must fail validation")
	}
	g.Shares = []int{256}
	if err := g.ValidateShares(256); err == nil {
		t.Fatal("share count mismatch must fail validation")
	}
}
