package sched

import "fmt"

// Runtime re-planning: re-derive the contiguous block distribution from
// per-block step times measured on the live run (BaPipe-style dynamic
// repartitioning). The entry point deliberately restricts itself to
// all-unsplit plans — one device per group — because that is the exact
// set of placements the synchronous engine can switch between without
// changing a single arithmetic operation: each block's training
// trajectory depends only on its input activations (a deterministic
// function of the frozen teacher chain) and its own optimizer state, so
// moving a contiguous boundary between two devices relocates work but
// never reorders or regroups a float fold. Split (data-parallel) groups
// break that property — their all-reduce fold order is part of the
// trajectory — so re-planning them is refused and left as the seam for
// an asynchronous/1F1B schedule that relaxes bit-identity.

// ReplanEval compares the measured bottleneck of the current placement
// with the predicted bottleneck of a proposed one, in the measurement's
// own time unit.
type ReplanEval struct {
	// Current is the bottleneck device's measured per-step compute time
	// under the current placement: max over groups of the group's summed
	// measured block costs.
	Current float64
	// Proposed is the predicted bottleneck of the proposed placement,
	// evaluated on the same measured costs. For blocks that move to
	// another device the measurement was taken on the old (possibly
	// slower) host, so Proposed overestimates segments that shed load off
	// a straggler — the prediction is conservative in the direction that
	// matters.
	Proposed float64
}

// Improvement returns the predicted relative step-time reduction,
// (Current-Proposed)/Current, in [0,1] when the proposal helps.
func (e ReplanEval) Improvement() float64 {
	if e.Current <= 0 {
		return 0
	}
	return (e.Current - e.Proposed) / e.Current
}

// Replan re-derives the contiguous one-device-per-group partition from
// measured per-block costs (nanoseconds from obs.StepAggregator, or any
// consistent unit), keeping the current plan's device order. It returns
// the proposed plan — which may equal the current partition when the
// measurement already sits at the optimum — and the evaluation of the
// proposal against the current boundaries. It fails when the current
// plan has split groups (see the package comment on bit-identity) or
// when the cost vector does not cover the plan's blocks.
func Replan(current Plan, blockCost []float64) (Plan, ReplanEval, error) {
	nb := 0
	for gi, g := range current.Groups {
		if g.Split() != 1 {
			return Plan{}, ReplanEval{}, fmt.Errorf(
				"sched: replan: plan %q group %d spans %d devices; only all-unsplit plans repartition bit-identically",
				current.Name, gi, g.Split())
		}
		nb += len(g.Blocks)
	}
	if len(blockCost) != nb {
		return Plan{}, ReplanEval{}, fmt.Errorf(
			"sched: replan: %d measured block costs for plan %q covering %d blocks", len(blockCost), current.Name, nb)
	}
	nDev := len(current.Groups)

	var eval ReplanEval
	for _, g := range current.Groups {
		var sum float64
		for _, b := range g.Blocks {
			sum += blockCost[b]
		}
		if sum > eval.Current {
			eval.Current = sum
		}
	}

	ends, bottleneck := contiguousPartition(blockCost, nDev)
	eval.Proposed = bottleneck

	groups := make([]Group, nDev)
	b := 0
	for d, end := range ends {
		groups[d] = Group{Devices: []int{current.Groups[d].Devices[0]}, Blocks: seq(b, end)}
		b = end
	}
	return Plan{Name: "rebalanced", Groups: groups}, eval, nil
}

// Fingerprint renders a plan's partition shape canonically — device and
// block ranges only, name ignored — so callers can compare placements
// and detect repartition cycles.
func Fingerprint(p Plan) string {
	s := ""
	for gi, g := range p.Groups {
		if gi > 0 {
			s += "|"
		}
		s += fmt.Sprintf("d%d-%d:b%d-%d", g.Devices[0], g.Devices[len(g.Devices)-1],
			g.Blocks[0], g.Blocks[len(g.Blocks)-1])
		if g.Shares != nil {
			s += fmt.Sprintf("s%v", g.Shares)
		}
	}
	return s
}
