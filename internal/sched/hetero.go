package sched

import (
	"fmt"
	"math"

	"pipebd/internal/cost"
	"pipebd/internal/hw"
	"pipebd/internal/model"
)

// Heterogeneous scheduling — the paper's stated future direction
// ("Along with the heterogeneous GPU/servers, this will be our future
// direction", §VIII) implemented as an extension of AHD.
//
// Two things change relative to the homogeneous planner:
//
//  1. Every device is profiled against its own GPU model, so block
//     ranges placed on slower devices are costed honestly.
//  2. Data-parallel groups no longer split the batch evenly: each
//     member's share is proportional to its measured throughput on the
//     group's blocks (rounded to whole samples), so a group mixing an
//     A6000 with a 2080Ti gives the A6000 the larger slice.

// HeteroConfig tunes the heterogeneous search.
type HeteroConfig struct {
	// AHD carries the common knobs (overlap, memory headroom).
	AHD AHDConfig
	// ReferenceBatch is the batch used to measure relative member
	// throughput when apportioning shares; 0 uses the global batch.
	ReferenceBatch int
}

// DefaultHeteroConfig returns the defaults used by tests and examples.
func DefaultHeteroConfig() HeteroConfig {
	return HeteroConfig{AHD: DefaultAHDConfig()}
}

// AHDHetero searches hybrid plans for a possibly heterogeneous system:
// every composition of devices into contiguous groups crossed with every
// composition of blocks into contiguous ranges, with per-member batch
// shares apportioned by throughput. Group cost is the slowest member's
// per-step time; the bottleneck group decides the plan. Plans whose
// members exceed their device memory are rejected; if nothing fits, the
// widest split (internal relaying with proportional shares) is returned.
func AHDHetero(w model.Workload, sys hw.System, globalBatch int, cfg HeteroConfig) Plan {
	nDev := sys.NumDevices()
	nb := w.NumBlocks()
	if globalBatch <= 0 {
		panic("sched: AHDHetero requires a positive batch")
	}

	bestCost := math.MaxFloat64
	var bestGroups []Group
	feasible := false

	devComps := compositions(nDev)
	blockComps := compositions(nb)
	for _, dc := range devComps {
		for _, bc := range blockComps {
			if len(dc) != len(bc) {
				continue
			}
			groups, worst, ok := evaluateHetero(w, sys, globalBatch, cfg, dc, bc)
			if !ok {
				continue
			}
			feasible = true
			if worst < bestCost-1e-15 {
				bestCost = worst
				bestGroups = groups
			}
		}
	}
	if !feasible {
		plan := InternalRelaying(nDev, nb)
		plan.Groups[0].Shares = apportion(w, sys, globalBatch, cfg, plan.Groups[0])
		plan.Name = "ahd-hetero-fallback"
		return plan
	}
	return Plan{Name: "ahd-hetero", Groups: bestGroups}
}

func evaluateHetero(w model.Workload, sys hw.System, globalBatch int, cfg HeteroConfig,
	devSizes, blockSizes []int) ([]Group, float64, bool) {
	groups := make([]Group, len(devSizes))
	dev, blk := 0, 0
	for i := range devSizes {
		groups[i] = Group{Devices: seq(dev, dev+devSizes[i]), Blocks: seq(blk, blk+blockSizes[i])}
		dev += devSizes[i]
		blk += blockSizes[i]
	}
	var worst float64
	for i := range groups {
		groups[i].Shares = apportion(w, sys, globalBatch, cfg, groups[i])
		c, ok := heteroGroupCost(w, sys, globalBatch, cfg, groups[i])
		if !ok {
			return nil, 0, false
		}
		if c > worst {
			worst = c
		}
	}
	return groups, worst, true
}

// apportion splits the global batch across group members proportionally
// to their measured throughput on the group's blocks. Equal-speed members
// receive an equal split (Shares normalized to nil in that case so
// homogeneous plans stay canonical).
func apportion(w model.Workload, sys hw.System, globalBatch int, cfg HeteroConfig, g Group) []int {
	k := g.Split()
	if k == 1 {
		return nil
	}
	ref := cfg.ReferenceBatch
	if ref <= 0 {
		ref = globalBatch
	}
	speeds := make([]float64, k)
	var total float64
	for j, d := range g.Devices {
		t := groupStepTime(w, sys.GPUs[d], g, ref)
		if t <= 0 {
			t = math.SmallestNonzeroFloat64
		}
		speeds[j] = 1 / t
		total += speeds[j]
	}
	shares := make([]int, k)
	assigned := 0
	for j := range shares {
		shares[j] = int(math.Floor(float64(globalBatch) * speeds[j] / total))
		if shares[j] < 1 {
			shares[j] = 1
		}
		assigned += shares[j]
	}
	// Distribute the rounding remainder to the fastest members first.
	for assigned < globalBatch {
		best := 0
		for j := 1; j < k; j++ {
			if speeds[j] > speeds[best] {
				best = j
			}
		}
		shares[best]++
		speeds[best] = 0 // round-robin over descending speed
		assigned++
	}
	for assigned > globalBatch {
		worstIdx := 0
		for j := 1; j < k; j++ {
			if shares[j] > shares[worstIdx] {
				worstIdx = j
			}
		}
		shares[worstIdx]--
		assigned--
	}
	// Canonicalize: equal shares mean nil.
	equal := true
	for _, s := range shares {
		if s != shares[0] {
			equal = false
		}
	}
	if equal && globalBatch%k == 0 {
		return nil
	}
	return shares
}

// groupStepTime measures one device's per-step time over a group's blocks
// at the given local batch (teacher forward + student training).
func groupStepTime(w model.Workload, gpu hw.GPU, g Group, batch int) float64 {
	var t float64
	for _, b := range g.Blocks {
		t += cost.BlockFwdTime(gpu, w.Teacher.Net.Blocks[b], batch)
		t += cost.BlockTrainTime(gpu, w.Student.Net.Blocks[b], batch)
	}
	return t
}

// heteroGroupCost returns the group's bottleneck member time plus exposed
// all-reduce and update, and checks per-member memory feasibility.
func heteroGroupCost(w model.Workload, sys hw.System, globalBatch int, cfg HeteroConfig, g Group) (float64, bool) {
	k := g.Split()
	var gradBytes int64
	for _, b := range g.Blocks {
		gradBytes += w.Student.Net.Blocks[b].ParamBytes()
	}
	var worst float64
	for j, d := range g.Devices {
		gpu := sys.GPUs[d]
		lb := g.MemberBatch(globalBatch, j)
		var compute, bwd, update float64
		var mem int64
		for _, b := range g.Blocks {
			tb := w.Teacher.Net.Blocks[b]
			sb := w.Student.Net.Blocks[b]
			compute += cost.BlockFwdTime(gpu, tb, lb)
			compute += cost.BlockFwdTime(gpu, sb, lb)
			bw := cost.BlockBwdTime(gpu, sb, lb)
			compute += bw
			bwd += bw
			update += cost.UpdateTime(gpu, sb)
			mem += cost.TeacherBlockMemory(tb, lb) + cost.StudentBlockMemory(sb, lb)
		}
		mem += w.Teacher.Net.Blocks[g.Blocks[0]].InBytes(lb) +
			w.Teacher.Net.Blocks[g.Blocks[len(g.Blocks)-1]].OutBytes(lb)
		if mem > int64(cfg.AHD.MemHeadroom*float64(gpu.MemBytes)) {
			return 0, false
		}
		exposed := sys.Link.AllReduceTime(gradBytes, k) - cfg.AHD.DDPOverlap*bwd
		if exposed < 0 {
			exposed = 0
		}
		t := compute + exposed + update
		if t > worst {
			worst = t
		}
	}
	return worst, true
}

// HeteroSystem builds a mixed system from per-device GPU models sharing
// one link and host — a convenience for heterogeneous experiments.
func HeteroSystem(name string, link hw.Link, host hw.Host, gpus ...hw.GPU) hw.System {
	if len(gpus) == 0 {
		panic(fmt.Sprintf("sched: hetero system %q needs GPUs", name))
	}
	return hw.System{Name: name, GPUs: gpus, Link: link, Host: host}
}
