package experiments

import (
	"strings"
	"testing"

	"pipebd/internal/hw"
	"pipebd/internal/model"
)

// quick keeps experiment tests in milliseconds while staying deep enough
// in steady state for shape assertions.
var quick = Options{Batch: 256, MaxSteps: 40}

func TestFig2Shapes(t *testing.T) {
	rows := Fig2(hw.A6000x4(), quick)
	if len(rows) != 3 {
		t.Fatalf("Fig2 rows = %d, want 3 (baseline, ideal, pipe-bd)", len(rows))
	}
	baseline, ideal, pipeBD := rows[0], rows[1], rows[2]
	// The baseline towers over the ideal; Pipe-BD sits between them,
	// much closer to ideal than to the baseline (the paper's Fig. 2).
	if baseline.Total() < 3*ideal.Total() {
		t.Errorf("baseline (%.2fs) should be >=3x ideal (%.2fs)", baseline.Total(), ideal.Total())
	}
	if pipeBD.Total() >= baseline.Total()/2 {
		t.Errorf("Pipe-BD (%.2fs) should be far below the baseline (%.2fs)", pipeBD.Total(), baseline.Total())
	}
	if ideal.Idle != 0 {
		t.Error("the ideal system has no idle time by construction")
	}
	// Baseline inefficiencies visible in all three categories.
	if baseline.Load <= ideal.Load || baseline.Teacher <= ideal.Teacher || baseline.Student <= ideal.Student {
		t.Error("baseline must exceed ideal in loading, teacher, and student time")
	}
	out := FormatFig2(rows)
	if !strings.Contains(out, "Baseline (DP)") || !strings.Contains(out, "Ideal") {
		t.Error("FormatFig2 missing row labels")
	}
}

func TestFig4Shapes(t *testing.T) {
	rows := Fig4(hw.A6000x4(), quick)
	if len(rows) != 4*6 {
		t.Fatalf("Fig4 rows = %d, want 24", len(rows))
	}
	speedup := map[string]map[string]float64{}
	for _, r := range rows {
		if speedup[r.Workload] == nil {
			speedup[r.Workload] = map[string]float64{}
		}
		speedup[r.Workload][r.Strategy] = r.Speedup
	}
	for wl, s := range speedup {
		// Pipe-BD (full stack) is the fastest configuration everywhere.
		for strat, v := range s {
			if v > s["TR+DPU+AHD"]+1e-9 {
				t.Errorf("%s: %s (%.2fx) beats TR+DPU+AHD (%.2fx)", wl, strat, v, s["TR+DPU+AHD"])
			}
		}
		// The ablation is ordered: TR <= TR+DPU <= TR+DPU+AHD.
		if s["TR"] > s["TR+DPU"]+1e-9 || s["TR+DPU"] > s["TR+DPU+AHD"]+1e-9 {
			t.Errorf("%s: ablation order violated: TR %.2f, +DPU %.2f, +AHD %.2f",
				wl, s["TR"], s["TR+DPU"], s["TR+DPU+AHD"])
		}
	}
	// LS crossover: better than DP on CIFAR, worse on ImageNet.
	if speedup["nas-cifar10"]["LS"] <= 1 || speedup["compression-cifar10"]["LS"] <= 1 {
		t.Error("LS should beat DP on CIFAR-10 workloads")
	}
	if speedup["nas-imagenet"]["LS"] >= 1 || speedup["compression-imagenet"]["LS"] >= 1 {
		t.Error("LS should lose to DP on ImageNet workloads")
	}
	// Headline range: Pipe-BD speedups in the multi-fold regime.
	for wl, s := range speedup {
		if v := s["TR+DPU+AHD"]; v < 1.8 || v > 10 {
			t.Errorf("%s: Pipe-BD speedup %.2fx outside plausible range", wl, v)
		}
	}
}

func TestFig5Shapes(t *testing.T) {
	res := Fig5(quick)
	if len(res.Rows) != 10 {
		t.Fatalf("Fig5 rows = %d, want 10", len(res.Rows))
	}
	// Both systems must end up with hybrid plans that share block 0
	// (the paper's Fig. 5b/5c), and both give multi-fold speedups.
	for sysName, desc := range res.Schedules {
		if !strings.Contains(desc, "B0") || !strings.Contains(desc, "DP") {
			t.Errorf("%s: AHD schedule %q does not share block 0", sysName, desc)
		}
	}
	for _, g := range res.Gantts {
		if !strings.Contains(g, "gpu0") || !strings.Contains(g, "legend:") {
			t.Error("Gantt rendering incomplete")
		}
	}
	out := FormatFig5(res)
	if !strings.Contains(out, "2080Ti") || !strings.Contains(out, "A6000") {
		t.Error("FormatFig5 missing systems")
	}
}

func TestFig6Shapes(t *testing.T) {
	rows := Fig6(hw.A6000x4(), quick)
	if len(rows) != 2*4*5 {
		t.Fatalf("Fig6 rows = %d, want 40", len(rows))
	}
	get := func(ds string, batch int, strat string) float64 {
		for _, r := range rows {
			if r.Dataset == ds && r.Batch == batch && r.Strategy == strat {
				return r.Speedup
			}
		}
		t.Fatalf("missing row %s/%d/%s", ds, batch, strat)
		return 0
	}
	// Speedups grow as the batch shrinks (utilization gap), the paper's
	// common trend, checked on both datasets for TR+DPU.
	for _, ds := range []string{"cifar10", "imagenet"} {
		if get(ds, 128, "TR+DPU") <= get(ds, 512, "TR+DPU") {
			t.Errorf("%s: TR+DPU speedup should be larger at batch 128 than 512", ds)
		}
	}
	// DP is always exactly 1.0 (self-normalized).
	for _, r := range rows {
		if r.Strategy == "DP" && (r.Speedup < 0.999 || r.Speedup > 1.001) {
			t.Errorf("DP speedup %v != 1", r.Speedup)
		}
	}
}

func TestFig7Shapes(t *testing.T) {
	rows := Fig7(hw.A6000x4(), quick)
	byKey := map[string]Fig7Row{}
	for _, r := range rows {
		byKey[r.Dataset+"/"+r.Strategy] = r
	}
	// TR concentrates memory on rank 0 for ImageNet (big early feature
	// maps at full batch).
	tr := byKey["imagenet/TR"]
	for i := 1; i < len(tr.PerRankGB); i++ {
		if tr.PerRankGB[i] > tr.PerRankGB[0] {
			t.Errorf("TR rank %d (%.2f GB) exceeds rank 0 (%.2f GB)", i, tr.PerRankGB[i], tr.PerRankGB[0])
		}
	}
	// AHD reduces the worst rank versus TR (Fig. 7's closing point).
	if ahd := byKey["imagenet/TR+DPU+AHD"]; ahd.MaxGB >= tr.MaxGB {
		t.Errorf("AHD max %.2f GB should be below TR max %.2f GB", ahd.MaxGB, tr.MaxGB)
	}
	// TR uses more memory than DP (full batch + relay buffers).
	if dp := byKey["imagenet/DP"]; tr.MaxGB <= dp.MaxGB {
		t.Error("TR peak memory should exceed DP's")
	}
	// Everything fits the A6000's 48 GiB.
	for key, r := range byKey {
		if r.MaxGB > 48 {
			t.Errorf("%s: %.2f GB exceeds device memory", key, r.MaxGB)
		}
	}
}

func TestTable1MentionsBothSystems(t *testing.T) {
	out := Table1()
	for _, frag := range []string{"A6000", "2080Ti", "EPYC", "Xeon", "MobileNetV2", "VGG-16"} {
		if !strings.Contains(out, frag) {
			t.Errorf("Table1 missing %q", frag)
		}
	}
}

func TestTable2Shapes(t *testing.T) {
	rows := Table2(hw.A6000x4(), quick, true)
	if len(rows) != 4 {
		t.Fatalf("Table2 rows = %d, want 4", len(rows))
	}
	for _, r := range rows {
		if r.PipeBDEpoch >= r.DPEpoch {
			t.Errorf("%s/%s: Pipe-BD (%v) not faster than DP (%v)", r.Task, r.Dataset, r.PipeBDEpoch, r.DPEpoch)
		}
		if r.TeacherParams <= 0 || r.StudentParams <= 0 {
			t.Errorf("%s/%s: missing model statistics", r.Task, r.Dataset)
		}
	}
	// Table II fidelity on the fully determined teachers.
	if r := rows[0]; r.TeacherParams < 2.2 || r.TeacherParams > 2.3 {
		t.Errorf("MNv2-CIFAR params %.2fM, want ~2.24M", r.TeacherParams)
	}
	if r := rows[3]; r.TeacherParams < 137 || r.TeacherParams > 139 {
		t.Errorf("VGG16-ImageNet params %.2fM, want ~138.36M", r.TeacherParams)
	}
	out := FormatTable2(rows)
	if !strings.Contains(out, "Pipe-BD") {
		t.Error("FormatTable2 incomplete")
	}
}

func TestTable2AccuracyProxyEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("accuracy proxy trains real networks")
	}
	rows := Table2(hw.A6000x4(), quick, false)
	for _, r := range rows {
		if r.SeqAccuracy != r.PipeBDAccuracy {
			t.Fatalf("accuracies differ: %v vs %v (bit-equivalence broken)", r.SeqAccuracy, r.PipeBDAccuracy)
		}
		if r.SeqAccuracy < 0.5 {
			t.Fatalf("proxy accuracy %.2f implausibly low", r.SeqAccuracy)
		}
	}
}

func TestScheduleGanttRenders(t *testing.T) {
	out := ScheduleGantt(model.NAS(false), hw.A6000x4(), quick, 3)
	if !strings.Contains(out, "gpu0") || !strings.Contains(out, "legend:") {
		t.Fatalf("incomplete Gantt:\n%s", out)
	}
}

func TestOptionsDefaults(t *testing.T) {
	var o Options
	if o.batch() != 256 {
		t.Fatal("zero Options must default to batch 256")
	}
	if DefaultOptions().Batch != 256 {
		t.Fatal("DefaultOptions should use the paper's batch")
	}
}

func TestChartsRender(t *testing.T) {
	sys := hw.A6000x4()
	if out := ChartFig2(Fig2(sys, quick)); !strings.Contains(out, "legend:") {
		t.Error("ChartFig2 incomplete")
	}
	fig4 := ChartFig4(Fig4(sys, quick))
	for _, wl := range []string{"nas-cifar10", "compression-imagenet"} {
		if !strings.Contains(fig4, wl) {
			t.Errorf("ChartFig4 missing %s", wl)
		}
	}
	if out := ChartFig6(Fig6(sys, quick)); !strings.Contains(out, "batch 128") {
		t.Error("ChartFig6 missing batch groups")
	}
	if out := ChartFig7(Fig7(sys, quick)); !strings.Contains(out, "rank0") {
		t.Error("ChartFig7 missing ranks")
	}
}
