package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"pipebd/internal/dataset"
	"pipebd/internal/distill"
	"pipebd/internal/engine"
	"pipebd/internal/hw"
	"pipebd/internal/metrics"
	"pipebd/internal/model"
	"pipebd/internal/nn"
	"pipebd/internal/pipeline"
	"pipebd/internal/profilegen"
	"pipebd/internal/sched"
	"pipebd/internal/tensor"
	"pipebd/internal/trace"
)

// --- Table I: experimental environment --------------------------------------

// Table1 renders the experimental environment the way the paper's Table I
// does, from the hardware presets actually used by the simulator.
func Table1() string {
	var b strings.Builder
	b.WriteString("Table I — Experimental environment\n\n")
	for _, sys := range []hw.System{hw.A6000x4(), hw.RTX2080Tix4()} {
		g := sys.GPUs[0]
		fmt.Fprintf(&b, "%s\n", sys.Name)
		fmt.Fprintf(&b, "  GPU          %d x %s (%.1f TFLOPS FP32, %.0f GB/s eff., %d GiB)\n",
			sys.NumDevices(), g.Name, g.PeakFLOPS/1e12, g.MemBandwidth/1e9, g.MemBytes>>30)
		fmt.Fprintf(&b, "  CPU/host     %s (loader %.1f GB/s, %.1f ms/batch overhead)\n",
			sys.Host.Name, sys.Host.StorageBandwidth/1e9, sys.Host.PerBatchOverhead*1e3)
		fmt.Fprintf(&b, "  Interconnect %s (%.0f GB/s, %.0f us)\n\n",
			sys.Link.Name, sys.Link.BandwidthBytes/1e9, sys.Link.Latency*1e6)
	}
	b.WriteString("Workloads\n")
	b.WriteString("  NAS          teacher MobileNetV2, student ProxylessNAS supernet (kernel 3/5/7, expansion 3/6)\n")
	b.WriteString("  Compression  teacher VGG-16, student DS-Conv replacements\n")
	return b.String()
}

// --- Table II: training results ---------------------------------------------

// Table2Row is one row of Table II.
type Table2Row struct {
	Task, Dataset string

	TeacherName   string
	TeacherParams float64 // millions
	TeacherMACs   float64 // millions

	StudentName   string
	StudentParams float64
	StudentMACs   float64

	DPEpoch, LSEpoch, PipeBDEpoch float64 // seconds

	// Accuracy of the miniature numeric proxy (agreement with the
	// teacher's labels on held-out data), identical for baseline and
	// Pipe-BD training by construction — the paper's "same accuracy,
	// shorter time" claim. Negative when accuracy evaluation is skipped.
	SeqAccuracy, PipeBDAccuracy float64
}

// Table2 reproduces Table II: model statistics from the zoo, per-epoch
// elapsed times from the simulator, and the training-quality proxy from
// the numeric engine (unless skipAccuracy).
func Table2(sys hw.System, o Options, skipAccuracy bool) []Table2Row {
	found := map[string]model.Model{
		"nas-cifar10":  model.ProxylessNASFound(false, 10),
		"nas-imagenet": model.ProxylessNASFound(true, 1000),
	}
	studentName := map[string]string{
		"nas-cifar10": "ProxylessNAS", "nas-imagenet": "ProxylessNAS",
		"compression-cifar10": "DS-Conv", "compression-imagenet": "DS-Conv",
	}
	var rows []Table2Row
	seqAcc, pbdAcc := -1.0, -1.0
	if !skipAccuracy {
		seqAcc, pbdAcc = accuracyProxy()
	}
	for _, w := range model.AllWorkloads() {
		reps := runAll(w, sys, o)
		student := w.Student.Net
		if f, ok := found[w.Name]; ok {
			student = f.Net // Table II reports the found architecture
		}
		task, ds := "NAS", "Cifar-10"
		if strings.HasPrefix(w.Name, "compression") {
			task = "Compression"
		}
		if strings.HasSuffix(w.Name, "imagenet") {
			ds = "ImageNet"
		}
		rows = append(rows, Table2Row{
			Task: task, Dataset: ds,
			TeacherName:    strings.SplitN(w.Teacher.Net.Name, "-", 2)[0],
			TeacherParams:  float64(w.Teacher.Net.ParamCount()) / 1e6,
			TeacherMACs:    w.Teacher.Net.MACs() / 1e6,
			StudentName:    studentName[w.Name],
			StudentParams:  float64(student.ParamCount()) / 1e6,
			StudentMACs:    student.MACs() / 1e6,
			DPEpoch:        reps["DP"].EpochTime,
			LSEpoch:        reps["LS"].EpochTime,
			PipeBDEpoch:    reps["TR+DPU+AHD"].EpochTime,
			SeqAccuracy:    seqAcc,
			PipeBDAccuracy: pbdAcc,
		})
	}
	return rows
}

// accuracyProxy trains the miniature numeric workload twice — once
// sequentially, once under a Pipe-BD pipeline — and evaluates both
// students' agreement with the teacher on held-out data. Bit-equivalence
// of the two schedules makes the accuracies identical.
func accuracyProxy() (seq, pipeBD float64) {
	cfg := distill.DefaultTinyConfig()
	cfg.Classes = 4

	rng := rand.New(rand.NewSource(1234))
	makeBatches := func() []dataset.Batch {
		data := dataset.NewRandom(rng, 240, 3, cfg.Height, cfg.Width, cfg.Classes)
		var all []dataset.Batch
		for epoch := 0; epoch < 8; epoch++ {
			all = append(all, data.Batches(8)...)
		}
		return all
	}
	batches := makeBatches()

	wSeq := distill.NewTinyWorkbench(cfg)
	engine.RunSequential(wSeq, batches, 0.03, 0.9)

	wPipe := distill.NewTinyWorkbench(cfg)
	plan := sched.Plan{Name: "tr", Groups: []sched.Group{
		{Devices: []int{0}, Blocks: []int{0, 1}},
		{Devices: []int{1}, Blocks: []int{2, 3}},
	}}
	engine.RunPipelined(wPipe, batches, engine.Config{Plan: plan, DPU: true, LR: 0.03, Momentum: 0.9})

	test := tensor.Rand(rand.New(rand.NewSource(99)), -1, 1, 128, 3, cfg.Height, cfg.Width)
	teacherLabels := tensor.ArgMaxRow(wSeq.TeacherForward(test).Reshape(128, cfg.Classes))
	eval := func(w *distill.Workbench) float64 {
		logits := w.StudentForward(test).Reshape(128, cfg.Classes)
		return nn.Accuracy(logits, teacherLabels)
	}
	return eval(wSeq), eval(wPipe)
}

// FormatTable2 renders Table II as text.
func FormatTable2(rows []Table2Row) string {
	header := []string{"task", "dataset", "teacher", "params", "MACs", "student", "params", "MACs",
		"DP", "LS", "Pipe-BD", "acc(seq)", "acc(pipe-bd)"}
	var body [][]string
	for _, r := range rows {
		acc1, acc2 := "-", "-"
		if r.SeqAccuracy >= 0 {
			acc1 = fmt.Sprintf("%.1f%%", r.SeqAccuracy*100)
			acc2 = fmt.Sprintf("%.1f%%", r.PipeBDAccuracy*100)
		}
		body = append(body, []string{
			r.Task, r.Dataset,
			r.TeacherName, fmt.Sprintf("%.2fM", r.TeacherParams), fmt.Sprintf("%.2fM", r.TeacherMACs),
			r.StudentName, fmt.Sprintf("%.2fM", r.StudentParams), fmt.Sprintf("%.2fM", r.StudentMACs),
			metrics.FormatSeconds(r.DPEpoch), metrics.FormatSeconds(r.LSEpoch), metrics.FormatSeconds(r.PipeBDEpoch),
			acc1, acc2,
		})
	}
	return "Table II — Parallel blockwise distillation training results\n" +
		metrics.Table(header, body) +
		"(accuracy columns: miniature numeric proxy; identical by bit-equivalence)\n"
}

// --- schedule rendering ------------------------------------------------------

// ScheduleGantt renders the steady-state Pipe-BD timeline of a workload
// under its AHD plan — the textual analogue of Fig. 5b/5c.
func ScheduleGantt(w model.Workload, sys hw.System, o Options, steps int) string {
	prof := profilegen.Measure(w, sys.GPUs[0], o.batch(), sys.NumDevices(), 100)
	plan := sched.AHD(prof, sys, sched.DefaultAHDConfig())
	cfg := pipeline.Config{Workload: w, System: sys, GlobalBatch: o.batch(),
		MaxSteps: steps + 2, Record: true}
	_, tracks := pipeline.RunTRTracks(cfg, plan, true, "TR+DPU+AHD")
	t0, t1 := trace.Window(tracks.Devs, 0.4, 0.5)
	return trace.Gantt(tracks.Devs, t0, t1, 100)
}
