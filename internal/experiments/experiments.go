// Package experiments contains one driver per table and figure of the
// paper's evaluation (§VI-§VII). Each driver assembles the workloads,
// profiles, plans, and executors, runs the simulated epochs, and returns
// typed rows plus a paper-style text rendering. The cmd/pipebd binary and
// the repository's benchmark harness are thin wrappers over this package.
package experiments

import (
	"fmt"
	"strings"

	"pipebd/internal/hw"
	"pipebd/internal/metrics"
	"pipebd/internal/model"
	"pipebd/internal/pipeline"
	"pipebd/internal/profilegen"
	"pipebd/internal/sched"
)

// Options tunes the experiment drivers.
type Options struct {
	// Batch is the global batch size (the paper's default is 256).
	Batch int
	// MaxSteps truncates simulated passes for quick runs; 0 simulates
	// full epochs (the default used for reported numbers).
	MaxSteps int
}

// DefaultOptions returns the paper's configuration.
func DefaultOptions() Options { return Options{Batch: 256} }

func (o Options) batch() int {
	if o.Batch <= 0 {
		return 256
	}
	return o.Batch
}

// Strategies in the paper's Fig. 4 order.
var strategyOrder = []string{"DP", "LS", "TR", "TR+DPU", "TR+IR", "TR+DPU+AHD"}

// runAll simulates every strategy for one workload on one system.
func runAll(w model.Workload, sys hw.System, o Options) map[string]metrics.Report {
	cfg := pipeline.Config{Workload: w, System: sys, GlobalBatch: o.batch(), MaxSteps: o.MaxSteps}
	prof := profilegen.Measure(w, sys.GPUs[0], o.batch(), sys.NumDevices(), 100)
	trPlan := sched.TRContiguous(prof, sys.NumDevices())
	ahdPlan := sched.AHD(prof, sys, sched.DefaultAHDConfig())
	return map[string]metrics.Report{
		"DP":         pipeline.RunDP(cfg),
		"LS":         pipeline.RunLS(cfg),
		"TR":         pipeline.RunTR(cfg, trPlan, false, "TR"),
		"TR+DPU":     pipeline.RunTR(cfg, trPlan, true, "TR+DPU"),
		"TR+IR":      pipeline.RunIR(cfg),
		"TR+DPU+AHD": pipeline.RunTR(cfg, ahdPlan, true, "TR+DPU+AHD"),
	}
}

// --- Fig. 2: motivational breakdown ---------------------------------------

// Fig2Row is one stacked bar of Fig. 2: per-device average seconds spent
// per epoch on loading, teacher execution, student execution, and idling.
type Fig2Row struct {
	Config                       string
	Load, Teacher, Student, Idle float64
}

// Total returns the bar height (the per-device epoch time).
func (r Fig2Row) Total() float64 { return r.Load + r.Teacher + r.Student + r.Idle }

// Fig2 reproduces the motivational experiment: the DP baseline's epoch
// breakdown versus an imaginary perfectly parallel system ("Ideal") and
// versus Pipe-BD, on NAS/CIFAR-10 with four A6000s.
func Fig2(sys hw.System, o Options) []Fig2Row {
	w := model.NAS(false)
	reps := runAll(w, sys, o)

	rows := make([]Fig2Row, 0, 3)
	dp := reps["DP"]
	l, te, s, id := dp.FigTwoBreakdown()
	rows = append(rows, Fig2Row{Config: "Baseline (DP)", Load: l, Teacher: te, Student: s, Idle: id})

	// Ideal: each part measured alone on one device and divided by the
	// device count — perfect parallelization, infinite memory (§III).
	rows = append(rows, idealRow(w, sys, o))

	pb := reps["TR+DPU+AHD"]
	l, te, s, id = pb.FigTwoBreakdown()
	rows = append(rows, Fig2Row{Config: "Pipe-BD", Load: l, Teacher: te, Student: s, Idle: id})
	return rows
}

func idealRow(w model.Workload, sys hw.System, o Options) Fig2Row {
	batch := o.batch()
	gpu := sys.GPUs[0]
	steps := w.Data.StepsPerEpoch(batch)
	if o.MaxSteps > 0 && steps > o.MaxSteps {
		steps = o.MaxSteps
	}
	var teacher, student float64
	for b := range w.Teacher.Net.Blocks {
		teacher += profilegen.Measure(w, gpu, batch, 1, 1).TeacherFwd[b][0]
		p := profilegen.Measure(w, gpu, batch, 1, 1)
		student += p.StudentFwd[b][0] + p.StudentBwd[b][0] + p.Update[b]
	}
	load := sys.Host.LoadTime(w.Data.StorageBytes*int64(batch),
		w.Data.DecodeCPUSeconds*float64(batch)) + sys.Host.PerBatchOverhead
	n := float64(sys.NumDevices())
	return Fig2Row{
		Config:  "Ideal",
		Load:    float64(steps) * load / n,
		Teacher: float64(steps) * teacher / n,
		Student: float64(steps) * student / n,
	}
}

// FormatFig2 renders Fig. 2 as a text table.
func FormatFig2(rows []Fig2Row) string {
	header := []string{"config", "load(s)", "teacher(s)", "student(s)", "idle(s)", "total(s)"}
	var body [][]string
	for _, r := range rows {
		body = append(body, []string{
			r.Config,
			fmt.Sprintf("%.2f", r.Load), fmt.Sprintf("%.2f", r.Teacher),
			fmt.Sprintf("%.2f", r.Student), fmt.Sprintf("%.2f", r.Idle),
			fmt.Sprintf("%.2f", r.Total()),
		})
	}
	return "Fig. 2 — Motivational breakdown (NAS, CIFAR-10, per-device seconds/epoch)\n" +
		metrics.Table(header, body)
}

// --- Fig. 4: speedup and ablation ------------------------------------------

// Fig4Row is one bar of Fig. 4.
type Fig4Row struct {
	Workload  string
	Strategy  string
	EpochTime float64
	Speedup   float64 // over DP on the same workload
	Schedule  string
}

// Fig4 reproduces the speedup/ablation study over all four workloads on
// the given system.
func Fig4(sys hw.System, o Options) []Fig4Row {
	var rows []Fig4Row
	for _, w := range model.AllWorkloads() {
		reps := runAll(w, sys, o)
		dp := reps["DP"]
		for _, s := range strategyOrder {
			r := reps[s]
			rows = append(rows, Fig4Row{
				Workload:  w.Name,
				Strategy:  s,
				EpochTime: r.EpochTime,
				Speedup:   r.Speedup(dp),
				Schedule:  r.ScheduleDesc,
			})
		}
	}
	return rows
}

// FormatFig4 renders Fig. 4 as a text table.
func FormatFig4(rows []Fig4Row) string {
	header := []string{"workload", "strategy", "epoch", "speedup", "schedule"}
	var body [][]string
	for _, r := range rows {
		body = append(body, []string{
			r.Workload, r.Strategy, metrics.FormatSeconds(r.EpochTime),
			fmt.Sprintf("%.2fx", r.Speedup), r.Schedule,
		})
	}
	return "Fig. 4 — Speedup and ablation (4x " + "GPU, normalized to DP)\n" + metrics.Table(header, body)
}

// --- Fig. 5: GPU-type sensitivity ------------------------------------------

// Fig5Result holds the per-system speedups and chosen schedules for the
// NAS/ImageNet workload.
type Fig5Result struct {
	Rows      []Fig4Row
	Schedules map[string]string // system name -> AHD plan description
	Gantts    map[string]string // system name -> ASCII schedule
}

// Fig5 reproduces the GPU-type sensitivity study: the same workload
// scheduled on 4x RTX 2080Ti versus 4x RTX A6000.
func Fig5(o Options) Fig5Result {
	w := model.NAS(true)
	res := Fig5Result{Schedules: map[string]string{}, Gantts: map[string]string{}}
	for _, sys := range []hw.System{hw.RTX2080Tix4(), hw.A6000x4()} {
		reps := runAll(w, sys, o)
		dp := reps["DP"]
		for _, s := range []string{"DP", "LS", "TR", "TR+DPU", "TR+DPU+AHD"} {
			r := reps[s]
			rows := Fig4Row{
				Workload:  sys.Name,
				Strategy:  s,
				EpochTime: r.EpochTime,
				Speedup:   r.Speedup(dp),
				Schedule:  r.ScheduleDesc,
			}
			res.Rows = append(res.Rows, rows)
		}
		res.Schedules[sys.Name] = reps["TR+DPU+AHD"].ScheduleDesc
		res.Gantts[sys.Name] = ScheduleGantt(w, sys, o, 3)
	}
	return res
}

// FormatFig5 renders Fig. 5 as text.
func FormatFig5(r Fig5Result) string {
	header := []string{"system", "strategy", "epoch", "speedup"}
	var body [][]string
	for _, row := range r.Rows {
		body = append(body, []string{
			row.Workload, row.Strategy, metrics.FormatSeconds(row.EpochTime),
			fmt.Sprintf("%.2fx", row.Speedup),
		})
	}
	var b strings.Builder
	b.WriteString("Fig. 5 — GPU type sensitivity (NAS, ImageNet)\n")
	b.WriteString(metrics.Table(header, body))
	for sys, desc := range r.Schedules {
		fmt.Fprintf(&b, "\n%s schedule: %s\n", sys, desc)
	}
	for sys, g := range r.Gantts {
		fmt.Fprintf(&b, "\n%s steady-state timeline:\n%s", sys, g)
	}
	return b.String()
}

// --- Fig. 6: batch-size sensitivity ----------------------------------------

// Fig6Row is one point of Fig. 6.
type Fig6Row struct {
	Dataset  string
	Batch    int
	Strategy string
	Speedup  float64 // over DP at the same batch
}

// Fig6 reproduces the batch-size sensitivity study on the NAS workload.
func Fig6(sys hw.System, o Options) []Fig6Row {
	var rows []Fig6Row
	for _, imagenet := range []bool{false, true} {
		w := model.NAS(imagenet)
		for _, batch := range []int{128, 256, 384, 512} {
			opt := o
			opt.Batch = batch
			reps := runAll(w, sys, opt)
			dp := reps["DP"]
			for _, s := range []string{"DP", "LS", "TR", "TR+DPU", "TR+DPU+AHD"} {
				rows = append(rows, Fig6Row{
					Dataset:  w.Data.Name,
					Batch:    batch,
					Strategy: s,
					Speedup:  reps[s].Speedup(dp),
				})
			}
		}
	}
	return rows
}

// FormatFig6 renders Fig. 6 as a text table.
func FormatFig6(rows []Fig6Row) string {
	header := []string{"dataset", "batch", "strategy", "speedup"}
	var body [][]string
	for _, r := range rows {
		body = append(body, []string{
			r.Dataset, fmt.Sprintf("%d", r.Batch), r.Strategy, fmt.Sprintf("%.2fx", r.Speedup),
		})
	}
	return "Fig. 6 — Batch size sensitivity (NAS, normalized to DP per batch)\n" +
		metrics.Table(header, body)
}

// --- Fig. 7: memory overhead -----------------------------------------------

// Fig7Row is one strategy's per-rank peak memory for Fig. 7.
type Fig7Row struct {
	Dataset   string
	Strategy  string
	PerRankGB []float64
	MaxGB     float64
}

// Fig7 reproduces the per-rank memory study on the NAS workload.
func Fig7(sys hw.System, o Options) []Fig7Row {
	var rows []Fig7Row
	for _, imagenet := range []bool{false, true} {
		w := model.NAS(imagenet)
		reps := runAll(w, sys, o)
		for _, s := range []string{"DP", "LS", "TR", "TR+DPU", "TR+DPU+AHD"} {
			r := reps[s]
			per := make([]float64, len(r.Ranks))
			var max float64
			for i, rank := range r.Ranks {
				per[i] = float64(rank.PeakMemBytes) / (1 << 30)
				if per[i] > max {
					max = per[i]
				}
			}
			rows = append(rows, Fig7Row{Dataset: w.Data.Name, Strategy: s, PerRankGB: per, MaxGB: max})
		}
	}
	return rows
}

// FormatFig7 renders Fig. 7 as a text table.
func FormatFig7(rows []Fig7Row) string {
	header := []string{"dataset", "strategy", "rank0", "rank1", "rank2", "rank3", "max"}
	var body [][]string
	for _, r := range rows {
		cells := []string{r.Dataset, r.Strategy}
		for _, g := range r.PerRankGB {
			cells = append(cells, fmt.Sprintf("%.2f", g))
		}
		for len(cells) < 6 {
			cells = append(cells, "-")
		}
		cells = append(cells, fmt.Sprintf("%.2f", r.MaxGB))
		body = append(body, cells)
	}
	return "Fig. 7 — Peak memory per rank (NAS, GB)\n" + metrics.Table(header, body)
}
