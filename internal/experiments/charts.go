package experiments

import (
	"fmt"
	"strings"

	"pipebd/internal/viz"
)

// ASCII chart renderings of the figures — the terminal analogue of the
// paper's plots, attached to cmd/pipebd behind the -chart flag.

// ChartFig2 renders the Fig. 2 stacked breakdown.
func ChartFig2(rows []Fig2Row) string {
	bars := make([]viz.StackedBar, 0, len(rows))
	for _, r := range rows {
		bars = append(bars, viz.StackedBar{
			Label: r.Config,
			Segments: []viz.Segment{
				{Name: "load", Value: r.Load, Fill: 'L'},
				{Name: "teacher", Value: r.Teacher, Fill: 'T'},
				{Name: "student", Value: r.Student, Fill: 'S'},
				{Name: "idle", Value: r.Idle, Fill: '.'},
			},
		})
	}
	return viz.StackedBarChart("Fig. 2 breakdown (seconds/epoch per device)", bars, 72)
}

// ChartFig4 renders one bar chart per workload of the Fig. 4 speedups.
func ChartFig4(rows []Fig4Row) string {
	perWorkload := map[string][]viz.Bar{}
	var order []string
	for _, r := range rows {
		if _, seen := perWorkload[r.Workload]; !seen {
			order = append(order, r.Workload)
		}
		perWorkload[r.Workload] = append(perWorkload[r.Workload],
			viz.Bar{Label: r.Strategy, Value: r.Speedup})
	}
	var sb strings.Builder
	for _, wl := range order {
		sb.WriteString(viz.BarChart(fmt.Sprintf("Fig. 4 speedups — %s", wl), perWorkload[wl], 48, "%.2fx"))
		sb.WriteByte('\n')
	}
	return sb.String()
}

// ChartFig6 renders the batch-sensitivity series as grouped bars.
func ChartFig6(rows []Fig6Row) string {
	type key struct {
		ds    string
		batch int
	}
	groupsSeen := map[key]bool{}
	var groups []key
	seriesSeen := map[string]bool{}
	var series []string
	for _, r := range rows {
		k := key{r.Dataset, r.Batch}
		if !groupsSeen[k] {
			groupsSeen[k] = true
			groups = append(groups, k)
		}
		if !seriesSeen[r.Strategy] {
			seriesSeen[r.Strategy] = true
			series = append(series, r.Strategy)
		}
	}
	labels := make([]string, len(groups))
	values := make([][]float64, len(groups))
	for gi, g := range groups {
		labels[gi] = fmt.Sprintf("%s batch %d", g.ds, g.batch)
		values[gi] = make([]float64, len(series))
		for si, s := range series {
			for _, r := range rows {
				if r.Dataset == g.ds && r.Batch == g.batch && r.Strategy == s {
					values[gi][si] = r.Speedup
				}
			}
		}
	}
	return viz.GroupedBars("Fig. 6 batch sensitivity (speedup over DP)", labels, series, values, 40, "%.2fx")
}

// ChartFig7 renders the per-rank memory profile as grouped bars.
func ChartFig7(rows []Fig7Row) string {
	var groups []string
	var values [][]float64
	var series []string
	for _, r := range rows {
		groups = append(groups, fmt.Sprintf("%s %s", r.Dataset, r.Strategy))
		values = append(values, r.PerRankGB)
		if len(series) < len(r.PerRankGB) {
			series = series[:0]
			for i := range r.PerRankGB {
				series = append(series, fmt.Sprintf("rank%d", i))
			}
		}
	}
	return viz.GroupedBars("Fig. 7 peak memory per rank (GB)", groups, series, values, 40, "%.2fGB")
}
