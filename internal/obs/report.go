package obs

import (
	"fmt"
	"sort"
	"strings"

	"pipebd/internal/metrics"
	"pipebd/internal/sim"
)

// MeasuredRank is one track's measured per-category busy breakdown, in
// self-time seconds: a nested span (reduce_scatter inside allreduce,
// peer_ack_wait inside send_output) is attributed to its own category
// and subtracted from its parent, so the categories sum to wall time
// actually spent and nothing is double-counted.
type MeasuredRank struct {
	Track string
	Busy  [NumCategories]float64
}

// TotalBusy returns the rank's busy seconds over the sim compute/comm
// taxonomy — the part comparable to the simulator's RankStats. Runtime
// wait is idle by definition; snapshot and ledger time are runtime
// overheads the model doesn't predict, so they are excluded here too
// (they appear in their own columns of the breakdown table).
func (m MeasuredRank) TotalBusy() float64 {
	var s float64
	for c := 0; c < sim.NumCategories; c++ {
		s += m.Busy[c]
	}
	return s
}

// RankStats converts to the simulator's shape: the sim categories carry
// over, everything else (wait, snapshot, ledger) lands in Idle along
// with the unattributed remainder of the epoch.
func (m MeasuredRank) RankStats(epoch float64) metrics.RankStats {
	var rs metrics.RankStats
	for c := 0; c < sim.NumCategories; c++ {
		rs.Busy[c] = m.Busy[c]
	}
	rs.Idle = epoch - m.TotalBusy()
	if rs.Idle < 0 {
		rs.Idle = 0
	}
	return rs
}

// Measured aggregates collected spans into per-track self-time
// breakdowns plus the measured epoch: the wall-clock span from the
// earliest span start to the latest span end across the given tracks.
func Measured(order []string, byTrack map[string][]Span) ([]MeasuredRank, float64) {
	var ranks []MeasuredRank
	var minStart, maxEnd int64
	first := true
	for _, name := range order {
		spans, ok := byTrack[name]
		if !ok {
			continue
		}
		mr := MeasuredRank{Track: name}
		for c, ns := range selfTimes(spans) {
			mr.Busy[c] = float64(ns) / 1e9
		}
		ranks = append(ranks, mr)
		for _, s := range spans {
			if first || s.Start < minStart {
				minStart = s.Start
			}
			if first || s.Start+s.Dur > maxEnd {
				maxEnd = s.Start + s.Dur
			}
			first = false
		}
	}
	if first {
		return ranks, 0
	}
	return ranks, float64(maxEnd-minStart) / 1e9
}

// selfTimes computes per-category self time in nanoseconds: each span's
// duration minus its children's. Spans on one track come from a single
// goroutine, so they either nest or are disjoint; sorting by start
// (ties: longer span first) makes parents precede their children.
func selfTimes(spans []Span) [NumCategories]int64 {
	sorted := append([]Span(nil), spans...)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].Start != sorted[j].Start {
			return sorted[i].Start < sorted[j].Start
		}
		return sorted[i].Dur > sorted[j].Dur
	})
	var busy [NumCategories]int64
	type open struct {
		end  int64
		cat  sim.Category
		self int64
	}
	var stack []open
	flush := func(upTo int64) {
		for len(stack) > 0 && stack[len(stack)-1].end <= upTo {
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if int(top.cat) >= 0 && int(top.cat) < NumCategories && top.self > 0 {
				busy[top.cat] += top.self
			}
		}
	}
	for _, s := range sorted {
		flush(s.Start)
		if len(stack) > 0 {
			stack[len(stack)-1].self -= s.Dur
		}
		stack = append(stack, open{end: s.Start + s.Dur, cat: s.Cat, self: s.Dur})
	}
	flush(int64(1)<<62 - 1)
	return busy
}

// BreakdownTable renders the measured per-rank breakdown: one row per
// track with self-time seconds for every category (including the
// runtime-only wait/snapshot/ledger columns) plus busy/idle fractions
// of the measured epoch.
func BreakdownTable(ranks []MeasuredRank, epoch float64) string {
	header := []string{"rank"}
	for c := 0; c < NumCategories; c++ {
		header = append(header, CategoryName(sim.Category(c)))
	}
	header = append(header, "busy%", "idle%")
	var rows [][]string
	for _, r := range ranks {
		row := []string{r.Track}
		for c := 0; c < NumCategories; c++ {
			row = append(row, fmt.Sprintf("%.4f", r.Busy[c]))
		}
		busyFrac, idleFrac := fractions(r, epoch)
		row = append(row, fmt.Sprintf("%.1f", busyFrac*100), fmt.Sprintf("%.1f", idleFrac*100))
		rows = append(rows, row)
	}
	return metrics.Table(header, rows)
}

func fractions(r MeasuredRank, epoch float64) (busy, idle float64) {
	if epoch <= 0 {
		return 0, 0
	}
	busy = r.TotalBusy() / epoch
	idle = 1 - busy
	if idle < 0 {
		idle = 0
	}
	return busy, idle
}

// UtilizationReport renders the measured busy/idle breakdown and, when a
// modeled report is supplied, a side-by-side comparison normalized to
// fractions of each side's epoch (the measured run executes float32
// kernels on CPU while the model predicts GPU schedules, so absolute
// seconds are incomparable but the schedule *shape* — who waits, and how
// much — is). The model-error columns are measured − modeled in
// percentage points.
func UtilizationReport(ranks []MeasuredRank, epoch float64, modeled *metrics.Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "measured utilization (epoch %s, %d ranks)\n",
		metrics.FormatSeconds(epoch), len(ranks))
	b.WriteString(BreakdownTable(ranks, epoch))
	if modeled == nil {
		return b.String()
	}
	fmt.Fprintf(&b, "\nmeasured vs modeled (%s, modeled epoch %s)\n",
		modeled.Strategy, metrics.FormatSeconds(modeled.EpochTime))
	header := []string{"rank", "meas busy%", "model busy%", "err(pp)", "meas idle%", "model idle%", "err(pp)"}
	var rows [][]string
	n := len(ranks)
	if len(modeled.Ranks) < n {
		n = len(modeled.Ranks)
	}
	for i := 0; i < n; i++ {
		mb, mi := fractions(ranks[i], epoch)
		var pb, pi float64
		if modeled.EpochTime > 0 {
			pb = modeled.Ranks[i].TotalBusy() / modeled.EpochTime
			pi = modeled.Ranks[i].Idle / modeled.EpochTime
		}
		rows = append(rows, []string{
			ranks[i].Track,
			fmt.Sprintf("%.1f", mb*100), fmt.Sprintf("%.1f", pb*100),
			fmt.Sprintf("%+.1f", (mb-pb)*100),
			fmt.Sprintf("%.1f", mi*100), fmt.Sprintf("%.1f", pi*100),
			fmt.Sprintf("%+.1f", (mi-pi)*100),
		})
	}
	b.WriteString(metrics.Table(header, rows))
	if len(ranks) != len(modeled.Ranks) {
		fmt.Fprintf(&b, "(rank count mismatch: %d measured, %d modeled)\n",
			len(ranks), len(modeled.Ranks))
	}
	return b.String()
}
