package obs

import (
	"encoding/json"
	"io"
	"os"
	"sort"
)

// Chrome trace-event-format export. The output is the JSON Object Format
// ({"traceEvents": [...]}) of the Trace Event Format spec, loadable in
// chrome://tracing and https://ui.perfetto.dev: one "thread" (tid) per
// track with a thread_name metadata record, and one complete ("X") event
// per span with microsecond timestamps rebased so the earliest span
// starts at t=0.

type chromeEvent struct {
	Name  string  `json:"name"`
	Cat   string  `json:"cat,omitempty"`
	Phase string  `json:"ph"`
	TS    float64 `json:"ts"`
	// Dur must never be omitted: a complete ("X") event without a dur
	// field is rejected by strict trace viewers, and zero-duration spans
	// (clock-granularity regions) are legitimate — so no omitempty here.
	// Metadata records use chromeMeta, which is how they stay dur-free.
	Dur  float64        `json:"dur"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeMeta is a metadata ("M") record, which has no duration or
// timestamp semantics and therefore must not grow a "dur" field when
// chromeEvent's Dur stopped being omitempty.
type chromeMeta struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []any  `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

// WriteChromeTrace writes the collected spans as Chrome trace JSON.
// Track order fixes the tid assignment (and therefore the row order in
// the viewer); names absent from byTrack are skipped.
func WriteChromeTrace(w io.Writer, order []string, byTrack map[string][]Span) error {
	base := int64(0)
	first := true
	for _, spans := range byTrack {
		for _, s := range spans {
			if first || s.Start < base {
				base = s.Start
				first = false
			}
		}
	}
	trace := chromeTrace{DisplayTimeUnit: "ms", TraceEvents: []any{}}
	for tid, name := range order {
		spans, ok := byTrack[name]
		if !ok {
			continue
		}
		trace.TraceEvents = append(trace.TraceEvents, chromeMeta{
			Name: "thread_name", Phase: "M", PID: 1, TID: tid,
			Args: map[string]any{"name": name},
		})
		// Stable-sort by start so nested spans (e.g. reduce_scatter inside
		// allreduce) render as a proper stack in the viewer.
		sorted := append([]Span(nil), spans...)
		sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Start < sorted[j].Start })
		for _, s := range sorted {
			trace.TraceEvents = append(trace.TraceEvents, chromeEvent{
				Name:  s.Name,
				Cat:   CategoryName(s.Cat),
				Phase: "X",
				TS:    float64(s.Start-base) / 1e3,
				Dur:   float64(s.Dur) / 1e3,
				PID:   1,
				TID:   tid,
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(trace)
}

// WriteChromeTraceFile writes the collector's contents to path.
func WriteChromeTraceFile(path string, c *Collector) error {
	order, byTrack := c.Tracks()
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteChromeTrace(f, order, byTrack); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
