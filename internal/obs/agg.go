package obs

import "sync"

// Span-batch aggregation for the runtime repartitioner. Workers ship one
// KindSpans batch per device per finished step (clusterLink.FinishStep
// flushes the device track), so each Add call folds exactly one measured
// step into the device's running statistics. The aggregator extracts the
// per-block compute cost — the signal the measured re-plan needs — and
// the step's wall-clock span, and reports running means.

// Compute-span names emitted by the device loop (engine.RunMemberFrom and
// distill.StepObserved). The i-th occurrence of a per-block name inside
// one step batch belongs to the device's i-th hosted block.
const (
	spanTeacherFwd = "teacher_fwd"
	spanStudentFwd = "student_fwd"
	spanStudentBwd = "student_bwd"
	spanUpdate     = "sgd_update"
)

// DeviceStats is one device's aggregated step measurements.
type DeviceStats struct {
	// Steps is how many complete step batches have been folded in.
	Steps int
	// BlockBusy is the mean per-hosted-block compute time in nanoseconds:
	// teacher forward + student forward + student backward, plus an equal
	// share of the step's optimizer update (the update span covers every
	// hosted block at once). Index i is the device's i-th block in plan
	// order.
	BlockBusy []float64
	// StepWall is the mean wall-clock extent of one step batch in
	// nanoseconds (first span start to last span end), including waits.
	StepWall float64
}

// StepAggregator folds per-step span batches into per-device statistics.
// Safe for concurrent use: coordinator reader goroutines call Add while
// the repartition controller snapshots Stats.
type StepAggregator struct {
	mu   sync.Mutex
	devs map[string]*devAgg
}

type devAgg struct {
	steps int
	busy  []float64 // summed per-block busy ns
	wall  float64   // summed step wall ns
}

// NewStepAggregator returns an empty aggregator.
func NewStepAggregator() *StepAggregator {
	return &StepAggregator{devs: make(map[string]*devAgg)}
}

// Add folds one span batch for the named device track. Batches that
// contain no complete per-block compute triple (e.g. a trailing flush of
// wait-only spans) are ignored. A batch whose block count disagrees with
// the device's history resets that device's accumulation — the hosted
// block set changed, so older measurements no longer describe it.
func (a *StepAggregator) Add(track string, spans []Span) {
	busy, wall, ok := foldStep(spans)
	if !ok {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	d := a.devs[track]
	if d == nil || len(d.busy) != len(busy) {
		d = &devAgg{busy: make([]float64, len(busy))}
		a.devs[track] = d
	}
	for i, v := range busy {
		d.busy[i] += v
	}
	d.wall += wall
	d.steps++
}

// foldStep extracts per-block busy times and the wall extent from one
// step's spans. ok is false when the batch holds no complete compute
// triples.
func foldStep(spans []Span) (busy []float64, wall float64, ok bool) {
	var tf, sf, sb []int64
	var update int64
	first, last := int64(0), int64(0)
	seen := false
	for _, s := range spans {
		if !seen || s.Start < first {
			first = s.Start
		}
		if end := s.Start + s.Dur; !seen || end > last {
			last = end
		}
		seen = true
		switch s.Name {
		case spanTeacherFwd:
			tf = append(tf, s.Dur)
		case spanStudentFwd:
			sf = append(sf, s.Dur)
		case spanStudentBwd:
			sb = append(sb, s.Dur)
		case spanUpdate:
			update += s.Dur
		}
	}
	nb := len(tf)
	if nb == 0 || len(sf) != nb || len(sb) != nb {
		return nil, 0, false
	}
	busy = make([]float64, nb)
	share := float64(update) / float64(nb)
	for i := 0; i < nb; i++ {
		busy[i] = float64(tf[i]+sf[i]+sb[i]) + share
	}
	return busy, float64(last - first), true
}

// Stats returns a snapshot of every device's running means, keyed by
// track name. The returned slices are private copies.
func (a *StepAggregator) Stats() map[string]DeviceStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[string]DeviceStats, len(a.devs))
	for name, d := range a.devs {
		st := DeviceStats{Steps: d.steps, BlockBusy: make([]float64, len(d.busy))}
		if d.steps > 0 {
			for i, v := range d.busy {
				st.BlockBusy[i] = v / float64(d.steps)
			}
			st.StepWall = d.wall / float64(d.steps)
		}
		out[name] = st
	}
	return out
}

// Reset discards all accumulated measurements. The repartition controller
// calls it after a cut so the new placement is measured from scratch.
func (a *StepAggregator) Reset() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.devs = make(map[string]*devAgg)
}
