package obs

import "testing"

// computeBatch builds one step's span batch for a device hosting
// len(tf) blocks: per-block teacher/student triples in block order, one
// shared optimizer-update span, all laid out back to back from start 0.
func computeBatch(tf, sf, sb []int64, update int64) []Span {
	var spans []Span
	at := int64(0)
	emit := func(name string, dur int64) {
		spans = append(spans, Span{Name: name, Start: at, Dur: dur})
		at += dur
	}
	for i := range tf {
		emit(spanTeacherFwd, tf[i])
		emit(spanStudentFwd, sf[i])
		emit(spanStudentBwd, sb[i])
	}
	emit(spanUpdate, update)
	return spans
}

// TestStepAggregatorFoldsTriples: per-block busy is the compute triple
// plus an equal share of the update span, step wall is first-start to
// last-end, and repeated batches average.
func TestStepAggregatorFoldsTriples(t *testing.T) {
	agg := NewStepAggregator()
	batch := computeBatch([]int64{100, 200}, []int64{10, 20}, []int64{30, 40}, 20)
	agg.Add("dev0", batch)
	agg.Add("dev0", batch)

	st, ok := agg.Stats()["dev0"]
	if !ok {
		t.Fatal("no stats for dev0")
	}
	if st.Steps != 2 {
		t.Fatalf("Steps = %d, want 2", st.Steps)
	}
	// busy[i] = tf+sf+sb + update/nb: [100+10+30+10, 200+20+40+10].
	want := []float64{150, 270}
	if len(st.BlockBusy) != len(want) {
		t.Fatalf("BlockBusy = %v, want %v", st.BlockBusy, want)
	}
	for i, w := range want {
		if st.BlockBusy[i] != w {
			t.Fatalf("BlockBusy[%d] = %v, want %v", i, st.BlockBusy[i], w)
		}
	}
	// Spans are back to back, so the wall extent is the summed durations.
	if st.StepWall != 420 {
		t.Fatalf("StepWall = %v, want 420", st.StepWall)
	}
}

// TestStepAggregatorIgnoresIncompleteBatches: wait-only flushes (no
// complete compute triple) must not count as measured steps — transport
// stalls land in waits and must not dilute the compute signal.
func TestStepAggregatorIgnoresIncompleteBatches(t *testing.T) {
	agg := NewStepAggregator()
	agg.Add("dev0", computeBatch([]int64{50}, []int64{5}, []int64{5}, 10))
	agg.Add("dev0", []Span{{Name: "recv_wait", Start: 0, Dur: 1000}})
	agg.Add("dev0", []Span{{Name: spanTeacherFwd, Start: 0, Dur: 50}}) // torn triple
	if st := agg.Stats()["dev0"]; st.Steps != 1 {
		t.Fatalf("Steps = %d after incomplete batches, want 1", st.Steps)
	}
}

// TestStepAggregatorResetsOnBlockCountChange: when a device's hosted
// block set changes (a repartition moved a boundary), old measurements
// describe a placement that no longer exists and must be discarded.
func TestStepAggregatorResetsOnBlockCountChange(t *testing.T) {
	agg := NewStepAggregator()
	agg.Add("dev0", computeBatch([]int64{100, 200}, []int64{10, 20}, []int64{30, 40}, 20))
	agg.Add("dev0", computeBatch([]int64{60}, []int64{5}, []int64{5}, 10))
	st := agg.Stats()["dev0"]
	if st.Steps != 1 || len(st.BlockBusy) != 1 {
		t.Fatalf("stats after shape change = %+v, want a fresh single-block accumulation", st)
	}
	if st.BlockBusy[0] != 80 {
		t.Fatalf("BlockBusy[0] = %v, want 80", st.BlockBusy[0])
	}
}

// TestStepAggregatorReset: Reset drops every device — the controller
// calls it at each attempt start so stale generations never leak in.
func TestStepAggregatorReset(t *testing.T) {
	agg := NewStepAggregator()
	agg.Add("dev0", computeBatch([]int64{10}, []int64{1}, []int64{1}, 2))
	agg.Add("dev1", computeBatch([]int64{10}, []int64{1}, []int64{1}, 2))
	agg.Reset()
	if n := len(agg.Stats()); n != 0 {
		t.Fatalf("%d devices survived Reset, want 0", n)
	}
}

// TestStepAggregatorStatsAreCopies: mutating a returned snapshot must
// not corrupt the accumulator the controller keeps reading.
func TestStepAggregatorStatsAreCopies(t *testing.T) {
	agg := NewStepAggregator()
	agg.Add("dev0", computeBatch([]int64{10}, []int64{1}, []int64{1}, 2))
	agg.Stats()["dev0"].BlockBusy[0] = -1
	if got := agg.Stats()["dev0"].BlockBusy[0]; got < 0 {
		t.Fatalf("snapshot mutation reached the accumulator: %v", got)
	}
}
