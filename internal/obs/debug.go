package obs

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
	"time"
)

// Metrics is a small named-counter registry shared between a running
// component (coordinator or worker) and its debug server's /metrics
// page. A nil *Metrics is valid and discards updates, so instrumented
// code never has to branch.
type Metrics struct {
	mu    sync.Mutex
	order []string
	vals  map[string]*atomic.Int64
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{vals: map[string]*atomic.Int64{}}
}

// Counter returns the named counter, creating it at zero. On a nil
// registry it returns a detached throwaway counter.
func (m *Metrics) Counter(name string) *atomic.Int64 {
	if m == nil {
		return new(atomic.Int64)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.vals[name]
	if !ok {
		c = new(atomic.Int64)
		m.vals[name] = c
		m.order = append(m.order, name)
	}
	return c
}

// Add increments the named counter by d.
func (m *Metrics) Add(name string, d int64) {
	if m == nil {
		return
	}
	m.Counter(name).Add(d)
}

// Set stores v in the named counter.
func (m *Metrics) Set(name string, v int64) {
	if m == nil {
		return
	}
	m.Counter(name).Store(v)
}

// Render writes "name value" lines in registration order.
func (m *Metrics) Render(w io.Writer) {
	if m == nil {
		return
	}
	m.mu.Lock()
	names := append([]string(nil), m.order...)
	vals := make([]int64, len(names))
	for i, n := range names {
		vals[i] = m.vals[n].Load()
	}
	m.mu.Unlock()
	for i, n := range names {
		fmt.Fprintf(w, "%s %d\n", n, vals[i])
	}
}

// DebugServer is the opt-in HTTP listener behind -debug-addr: pprof
// under /debug/pprof/ and a plain-text /metrics page.
type DebugServer struct {
	lis net.Listener
	srv *http.Server
}

// StartDebugServer listens on addr and serves pprof plus a /metrics page
// rendered by the snapshot callback on every request (the callback must
// be safe for concurrent use; pass nil for a pprof-only listener).
// addr ":0" picks a free port — read it back with Addr.
func StartDebugServer(addr string, snapshot func(io.Writer)) (*DebugServer, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if snapshot != nil {
			snapshot(w)
		}
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "pipebd debug listener")
		fmt.Fprintln(w, "  /metrics       plain-text counters")
		fmt.Fprintln(w, "  /debug/pprof/  Go profiling endpoints")
	})
	s := &DebugServer{lis: lis, srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}}
	go s.srv.Serve(lis) //nolint:errcheck // Serve returns on Close; nothing to report.
	return s, nil
}

// Addr returns the bound listen address.
func (s *DebugServer) Addr() string { return s.lis.Addr().String() }

// Close stops the listener and any in-flight handlers.
func (s *DebugServer) Close() error { return s.srv.Close() }
