// Package obs is the runtime observability layer: a low-overhead span
// tracer threaded through the real execution paths (the in-process
// engine's device goroutines and the cluster workers' device loops), a
// Chrome trace-event exporter, a measured-vs-modeled utilization report,
// and an opt-in HTTP debug server (pprof + /metrics).
//
// The simulator renders the paper's Fig. 2 busy/idle breakdowns from the
// analytic cost model; this package produces the same breakdown from a
// *measured* run, reusing the sim.Category taxonomy (extended with wait,
// snapshot, and ledger categories that only exist at runtime) so the two
// sides are directly comparable — including the model-error columns that
// tell us when the planner's cost model drifts.
//
// Tracing is off by default and near-free when disabled: Track.Begin is
// a nil check plus one atomic load, allocates nothing, and takes no
// clock reading. TestDisabledTracingOverhead and the TraceOverhead
// registry benchmark guard that property.
package obs

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"pipebd/internal/sim"
)

// Runtime-only categories extending sim's compute taxonomy. They use the
// Category values just past sim's enum so a single array indexes both;
// conversions into metrics.RankStats keep only the first
// sim.NumCategories entries (wait time is idle, not busy).
const (
	// CatWait is time blocked on a step barrier or a peer ack window —
	// the measured analogue of the simulator's idle/bubble time.
	CatWait = sim.Category(sim.NumCategories)
	// CatSnapshot is time spent encoding and sending a device snapshot.
	CatSnapshot = sim.Category(sim.NumCategories + 1)
	// CatLedger is coordinator time spent appending durable-run records.
	CatLedger = sim.Category(sim.NumCategories + 2)

	// NumCategories counts sim's categories plus the runtime extensions.
	NumCategories = sim.NumCategories + 3
)

// CategoryName returns the display name of either a sim category or one
// of the runtime extensions above.
func CategoryName(c sim.Category) string {
	switch c {
	case CatWait:
		return "wait"
	case CatSnapshot:
		return "snapshot"
	case CatLedger:
		return "ledger"
	}
	return c.String()
}

// Span is one timed region on a track. Start is nanoseconds since the
// Unix epoch (wall clock, so spans from different processes on one
// machine share a timeline); Dur is the region's length in nanoseconds.
type Span struct {
	Name  string
	Cat   sim.Category
	Start int64
	Dur   int64
}

// maxSpansPerTrack bounds a track's buffered spans between drains. Spans
// are drained every step in the cluster path, so the cap only bites when
// a consumer stops draining; overflow increments Dropped instead of
// growing without bound.
const maxSpansPerTrack = 1 << 16

// Tracer owns the process-wide enable flag and the set of tracks. The
// zero value is unusable; construct with NewTracer. A nil *Tracer is a
// valid "tracing compiled out" value: NewTrack returns a nil *Track whose
// Begin is a no-op.
type Tracer struct {
	enabled atomic.Bool
	mu      sync.Mutex
	tracks  []*Track
}

// NewTracer returns a tracer with the given initial enable state.
func NewTracer(enabled bool) *Tracer {
	t := &Tracer{}
	t.enabled.Store(enabled)
	return t
}

// Enabled reports whether spans are being recorded.
func (t *Tracer) Enabled() bool {
	if t == nil {
		return false
	}
	return t.enabled.Load()
}

// SetEnabled flips recording on or off. Regions begun while enabled
// still record at End; regions begun while disabled never do.
func (t *Tracer) SetEnabled(v bool) { t.enabled.Store(v) }

// NewTrack registers and returns a named track (one per device
// goroutine by convention: "dev0", "dev1", ... plus "coordinator"). A
// nil tracer returns a nil track, which every Track method accepts.
func (t *Tracer) NewTrack(name string) *Track {
	if t == nil {
		return nil
	}
	tk := &Track{tracer: t, name: name}
	t.mu.Lock()
	t.tracks = append(t.tracks, tk)
	t.mu.Unlock()
	return tk
}

// Tracks returns the registered tracks in creation order.
func (t *Tracer) Tracks() []*Track {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]*Track(nil), t.tracks...)
}

// BusySeconds sums per-category cumulative busy seconds over all tracks
// (for the /metrics page; it survives drains, unlike the span buffers).
func (t *Tracer) BusySeconds() [NumCategories]float64 {
	var out [NumCategories]float64
	if t == nil {
		return out
	}
	t.mu.Lock()
	tracks := append([]*Track(nil), t.tracks...)
	t.mu.Unlock()
	for _, tk := range tracks {
		for c := 0; c < NumCategories; c++ {
			out[c] += float64(tk.busyNs[c].Load()) / 1e9
		}
	}
	return out
}

// Track is a per-goroutine span recorder. One goroutine appends (the
// device loop that owns it); Drain/Spans may be called from any
// goroutine.
type Track struct {
	tracer  *Tracer
	name    string
	mu      sync.Mutex
	spans   []Span
	dropped int64
	busyNs  [NumCategories]atomic.Int64
}

// Name returns the track's name.
func (tk *Track) Name() string {
	if tk == nil {
		return ""
	}
	return tk.name
}

// Region is an in-flight span handle returned by Begin. The zero value
// (disabled tracing, nil track) is valid and End on it does nothing.
type Region struct {
	tk    *Track
	name  string
	cat   sim.Category
	start int64
}

// Begin opens a span. When the track is nil or its tracer is disabled
// this is one branch plus one atomic load: no allocation, no clock read.
func (tk *Track) Begin(cat sim.Category, name string) Region {
	if tk == nil || !tk.tracer.enabled.Load() {
		return Region{}
	}
	return Region{tk: tk, name: name, cat: cat, start: time.Now().UnixNano()}
}

// End closes the span and records it.
func (r Region) End() {
	if r.tk == nil {
		return
	}
	dur := time.Now().UnixNano() - r.start
	r.tk.record(Span{Name: r.name, Cat: r.cat, Start: r.start, Dur: dur})
}

// Point records an instantaneous event as a zero-ish duration span —
// used for markers like a completed recovery.
func (tk *Track) Point(cat sim.Category, name string) {
	if tk == nil || !tk.tracer.enabled.Load() {
		return
	}
	tk.record(Span{Name: name, Cat: cat, Start: time.Now().UnixNano(), Dur: 1})
}

func (tk *Track) record(s Span) {
	if int(s.Cat) >= 0 && int(s.Cat) < NumCategories {
		tk.busyNs[s.Cat].Add(s.Dur)
	}
	tk.mu.Lock()
	if len(tk.spans) < maxSpansPerTrack {
		tk.spans = append(tk.spans, s)
	} else {
		tk.dropped++
	}
	tk.mu.Unlock()
}

// Drain returns the buffered spans and clears the buffer (cumulative
// busy counters are unaffected). Returns nil when empty.
func (tk *Track) Drain() []Span {
	if tk == nil {
		return nil
	}
	tk.mu.Lock()
	defer tk.mu.Unlock()
	if len(tk.spans) == 0 {
		return nil
	}
	out := tk.spans
	tk.spans = nil
	return out
}

// Dropped returns the number of spans discarded to the buffer cap.
func (tk *Track) Dropped() int64 {
	if tk == nil {
		return 0
	}
	tk.mu.Lock()
	defer tk.mu.Unlock()
	return tk.dropped
}

// Collector accumulates span batches by track name — the coordinator
// feeds it from workers' wire batches (and its own track), the CLI
// exports it. Safe for concurrent Add.
type Collector struct {
	mu     sync.Mutex
	order  []string
	tracks map[string][]Span
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{tracks: map[string][]Span{}}
}

// Add appends spans to the named track's timeline.
func (c *Collector) Add(track string, spans []Span) {
	if len(spans) == 0 {
		return
	}
	c.mu.Lock()
	if _, ok := c.tracks[track]; !ok {
		c.order = append(c.order, track)
	}
	c.tracks[track] = append(c.tracks[track], spans...)
	c.mu.Unlock()
}

// Tracks returns the collected spans keyed by track name, with track
// names in first-seen order.
func (c *Collector) Tracks() (names []string, byTrack map[string][]Span) {
	c.mu.Lock()
	defer c.mu.Unlock()
	names = append([]string(nil), c.order...)
	byTrack = make(map[string][]Span, len(c.tracks))
	for k, v := range c.tracks {
		byTrack[k] = append([]Span(nil), v...)
	}
	return names, byTrack
}

// SpanCount returns the total number of collected spans.
func (c *Collector) SpanCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, v := range c.tracks {
		n += len(v)
	}
	return n
}

// String summarizes the collector for log lines.
func (c *Collector) String() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, v := range c.tracks {
		n += len(v)
	}
	return fmt.Sprintf("%d spans on %d tracks", n, len(c.tracks))
}
