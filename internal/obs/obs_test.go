package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"pipebd/internal/metrics"
	"pipebd/internal/sim"
	"pipebd/internal/testutil"
)

func TestTrackRecordsAndDrains(t *testing.T) {
	tr := NewTracer(true)
	tk := tr.NewTrack("dev0")
	r := tk.Begin(sim.CatStudentFwd, "student_fwd")
	time.Sleep(time.Millisecond)
	r.End()
	tk.Point(CatSnapshot, "snapshot")
	spans := tk.Drain()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	if spans[0].Name != "student_fwd" || spans[0].Cat != sim.CatStudentFwd {
		t.Fatalf("bad span: %+v", spans[0])
	}
	if spans[0].Dur <= 0 {
		t.Fatalf("non-positive duration: %d", spans[0].Dur)
	}
	if got := tk.Drain(); got != nil {
		t.Fatalf("second drain returned %d spans", len(got))
	}
	busy := tr.BusySeconds()
	if busy[sim.CatStudentFwd] <= 0 {
		t.Fatal("cumulative busy not recorded")
	}
}

func TestDisabledTracerRecordsNothing(t *testing.T) {
	tr := NewTracer(false)
	tk := tr.NewTrack("dev0")
	tk.Begin(sim.CatUpdate, "update").End()
	tk.Point(CatWait, "marker")
	if got := tk.Drain(); got != nil {
		t.Fatalf("disabled tracer recorded %d spans", len(got))
	}
	// Nil track and nil tracer are valid no-ops everywhere.
	var nilTracer *Tracer
	nilTrack := nilTracer.NewTrack("x")
	nilTrack.Begin(sim.CatUpdate, "update").End()
	nilTrack.Point(CatWait, "marker")
	if nilTrack.Drain() != nil || nilTrack.Dropped() != 0 || nilTrack.Name() != "" {
		t.Fatal("nil track not inert")
	}
	if nilTracer.Enabled() || nilTracer.Tracks() != nil {
		t.Fatal("nil tracer not inert")
	}
}

func TestTrackDropsAtCap(t *testing.T) {
	tr := NewTracer(true)
	tk := tr.NewTrack("dev0")
	for i := 0; i < maxSpansPerTrack+10; i++ {
		tk.record(Span{Name: "s", Cat: sim.CatUpdate, Start: int64(i), Dur: 1})
	}
	if got := tk.Dropped(); got != 10 {
		t.Fatalf("dropped = %d, want 10", got)
	}
	if got := len(tk.Drain()); got != maxSpansPerTrack {
		t.Fatalf("buffered = %d, want %d", got, maxSpansPerTrack)
	}
}

func TestSelfTimesAttributesNesting(t *testing.T) {
	// allreduce [0,100) with nested reduce_scatter [10,40) and
	// all_gather [50,90); a disjoint wait [100,130).
	spans := []Span{
		{Name: "allreduce", Cat: sim.CatAllReduce, Start: 0, Dur: 100},
		{Name: "reduce_scatter", Cat: sim.CatAllReduce, Start: 10, Dur: 30},
		{Name: "all_gather", Cat: sim.CatAllReduce, Start: 50, Dur: 40},
		{Name: "barrier_wait", Cat: CatWait, Start: 100, Dur: 30},
	}
	busy := selfTimes(spans)
	if busy[sim.CatAllReduce] != 100 {
		t.Fatalf("allreduce self time = %d, want 100 (no double count)", busy[sim.CatAllReduce])
	}
	if busy[CatWait] != 30 {
		t.Fatalf("wait self time = %d, want 30", busy[CatWait])
	}
	// A nested wait subtracts from its parent's category.
	spans = []Span{
		{Name: "send_output", Cat: sim.CatComm, Start: 0, Dur: 100},
		{Name: "peer_ack_wait", Cat: CatWait, Start: 5, Dur: 60},
	}
	busy = selfTimes(spans)
	if busy[sim.CatComm] != 40 || busy[CatWait] != 60 {
		t.Fatalf("comm=%d wait=%d, want 40/60", busy[sim.CatComm], busy[CatWait])
	}
}

func TestMeasuredAndRankStats(t *testing.T) {
	byTrack := map[string][]Span{
		"dev0": {
			{Name: "student_fwd", Cat: sim.CatStudentFwd, Start: 1e9, Dur: 2e9},
			{Name: "barrier_wait", Cat: CatWait, Start: 3e9, Dur: 1e9},
		},
		"dev1": {
			{Name: "update", Cat: sim.CatUpdate, Start: 2e9, Dur: 1e9},
		},
	}
	ranks, epoch := Measured([]string{"dev0", "dev1"}, byTrack)
	if len(ranks) != 2 {
		t.Fatalf("got %d ranks", len(ranks))
	}
	if epoch != 3 { // 1s..4s across both tracks
		t.Fatalf("epoch = %v, want 3", epoch)
	}
	rs := ranks[0].RankStats(epoch)
	if rs.Busy[sim.CatStudentFwd] != 2 {
		t.Fatalf("busy = %v", rs.Busy[sim.CatStudentFwd])
	}
	if rs.Idle != 1 { // 3s epoch − 2s busy; the wait second is idle
		t.Fatalf("idle = %v, want 1", rs.Idle)
	}
}

func TestChromeTraceExport(t *testing.T) {
	c := NewCollector()
	c.Add("dev0", []Span{{Name: "teacher_fwd", Cat: sim.CatTeacherFwd, Start: 5e9, Dur: 1e6}})
	c.Add("dev1", []Span{{Name: "allreduce", Cat: sim.CatAllReduce, Start: 6e9, Dur: 2e6}})
	c.Add("dev0", []Span{{Name: "barrier_wait", Cat: CatWait, Start: 7e9, Dur: 3e6}})
	if c.SpanCount() != 3 {
		t.Fatalf("span count = %d", c.SpanCount())
	}
	var buf bytes.Buffer
	order, byTrack := c.Tracks()
	if err := WriteChromeTrace(&buf, order, byTrack); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Cat   string         `json:"cat"`
			Phase string         `json:"ph"`
			TS    float64        `json:"ts"`
			Dur   float64        `json:"dur"`
			TID   int            `json:"tid"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	threadNames := map[string]bool{}
	var sawX int
	for _, ev := range parsed.TraceEvents {
		switch ev.Phase {
		case "M":
			threadNames[ev.Args["name"].(string)] = true
		case "X":
			sawX++
			if ev.TS < 0 || ev.Dur <= 0 {
				t.Fatalf("bad event times: %+v", ev)
			}
			if ev.Name == "teacher_fwd" && ev.TS != 0 {
				t.Fatalf("earliest span not rebased to 0: ts=%v", ev.TS)
			}
		}
	}
	if !threadNames["dev0"] || !threadNames["dev1"] {
		t.Fatalf("missing thread_name metadata: %v", threadNames)
	}
	if sawX != 3 {
		t.Fatalf("got %d X events, want 3", sawX)
	}
}

func TestUtilizationReport(t *testing.T) {
	ranks := []MeasuredRank{{Track: "dev0"}, {Track: "dev1"}}
	ranks[0].Busy[sim.CatStudentFwd] = 0.6
	ranks[1].Busy[sim.CatUpdate] = 0.3
	modeled := &metrics.Report{Strategy: "TR", EpochTime: 10,
		Ranks: make([]metrics.RankStats, 2)}
	modeled.Ranks[0].Busy[sim.CatStudentFwd] = 7
	modeled.Ranks[0].Idle = 3
	modeled.Ranks[1].Busy[sim.CatUpdate] = 4
	modeled.Ranks[1].Idle = 6
	out := UtilizationReport(ranks, 1.0, modeled)
	for _, want := range []string{"measured utilization", "measured vs modeled",
		"dev0", "dev1", "err(pp)", "60.0", "70.0"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
	// Measured-only mode still renders a breakdown.
	out = UtilizationReport(ranks, 1.0, nil)
	if !strings.Contains(out, "busy%") || strings.Contains(out, "modeled") {
		t.Fatalf("measured-only report wrong:\n%s", out)
	}
}

func TestMetricsRegistry(t *testing.T) {
	m := NewMetrics()
	m.Add("steps_completed", 5)
	m.Add("steps_completed", 2)
	m.Set("restarts", 1)
	var buf bytes.Buffer
	m.Render(&buf)
	got := buf.String()
	if !strings.Contains(got, "steps_completed 7") || !strings.Contains(got, "restarts 1") {
		t.Fatalf("metrics page wrong:\n%s", got)
	}
	var nilM *Metrics
	nilM.Add("x", 1)
	nilM.Set("y", 2)
	nilM.Counter("z").Add(3)
	nilM.Render(&buf)
}

func TestDebugServer(t *testing.T) {
	testutil.LeakCheck(t)
	m := NewMetrics()
	m.Add("steps_completed", 42)
	srv, err := StartDebugServer("127.0.0.1:0", func(w io.Writer) { m.Render(w) })
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	get := func(path string) string {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}
	if got := get("/metrics"); !strings.Contains(got, "steps_completed 42") {
		t.Fatalf("/metrics wrong:\n%s", got)
	}
	if got := get("/debug/pprof/"); !strings.Contains(got, "goroutine") {
		t.Fatalf("pprof index wrong:\n%s", got)
	}
	if got := get("/"); !strings.Contains(got, "/metrics") {
		t.Fatalf("index wrong:\n%s", got)
	}
	// http.Get keeps the connection alive; close idle conns so LeakCheck
	// sees the handler goroutines exit after srv.Close.
	http.DefaultClient.CloseIdleConnections()
}

// TestDisabledTracingOverhead is the regression guard for the "near-free
// when disabled" contract: Begin+End on a disabled tracer must cost a
// couple of nanoseconds (one nil check + one atomic load) and allocate
// nothing. The threshold is two orders of magnitude above the expected
// cost so the guard never flakes on slow CI, while still catching an
// accidental allocation or clock read on the disabled path.
func TestDisabledTracingOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark-backed guard")
	}
	tr := NewTracer(false)
	tk := tr.NewTrack("dev0")
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tk.Begin(sim.CatStudentFwd, "student_fwd").End()
		}
	})
	if perOp := res.AllocsPerOp(); perOp != 0 {
		t.Fatalf("disabled path allocates: %d allocs/op", perOp)
	}
	if ns := float64(res.T.Nanoseconds()) / float64(res.N); ns > 250 {
		t.Fatalf("disabled path costs %.1f ns/op, want < 250", ns)
	}
	if got := tk.Drain(); got != nil {
		t.Fatalf("disabled path recorded %d spans", len(got))
	}
}

func TestCategoryNames(t *testing.T) {
	want := map[sim.Category]string{
		sim.CatTeacherFwd: "teacher_fwd",
		CatWait:           "wait",
		CatSnapshot:       "snapshot",
		CatLedger:         "ledger",
	}
	for c, name := range want {
		if got := CategoryName(c); got != name {
			t.Fatalf("CategoryName(%d) = %q, want %q", c, got, name)
		}
	}
	// Every category has a distinct printable name (table headers rely on it).
	seen := map[string]bool{}
	for c := 0; c < NumCategories; c++ {
		n := CategoryName(sim.Category(c))
		if n == "" || seen[n] {
			t.Fatalf("category %d name %q empty or duplicated", c, n)
		}
		seen[n] = true
	}
	_ = fmt.Sprintf("%v", seen)
}

func TestChromeTraceZeroDurationRoundTrip(t *testing.T) {
	// A zero-duration complete event must still carry an explicit
	// "dur":0 — strict trace viewers reject "X" events without a dur
	// field, and dur,omitempty used to drop exactly those.
	byTrack := map[string][]Span{
		"dev0": {
			{Name: "instant", Cat: sim.CatUpdate, Start: 5e9, Dur: 0},
			{Name: "long", Cat: sim.CatStudentFwd, Start: 5e9, Dur: 2e6},
		},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, []string{"dev0"}, byTrack); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	var sawInstant, sawLong bool
	for _, ev := range parsed.TraceEvents {
		switch ev["ph"] {
		case "X":
			dur, ok := ev["dur"]
			if !ok {
				t.Fatalf("complete event %v lacks a dur field", ev["name"])
			}
			switch ev["name"] {
			case "instant":
				sawInstant = true
				if dur.(float64) != 0 {
					t.Fatalf("instant span dur = %v, want 0", dur)
				}
			case "long":
				sawLong = true
				if dur.(float64) != 2e3 { // 2e6 ns = 2000 us
					t.Fatalf("long span dur = %v, want 2000", dur)
				}
			}
		case "M":
			// Metadata records have no duration semantics and must not have
			// grown a dur field when chromeEvent's omitempty was removed.
			if _, ok := ev["dur"]; ok {
				t.Fatalf("metadata record carries a dur field: %v", ev)
			}
		}
	}
	if !sawInstant || !sawLong {
		t.Fatalf("missing spans: instant=%v long=%v", sawInstant, sawLong)
	}
}
