// Package engine executes blockwise distillation with real float32
// training, either sequentially (the mathematical reference) or as a
// Pipe-BD pipeline: one goroutine per device, teacher activations relayed
// over channels (teacher relaying), updates applied immediately after each
// device's backward pass (decoupled parameter update) or behind a global
// per-step barrier, and hybrid groups training shared blocks
// data-parallel with a deterministic intra-group gradient all-reduce
// (automatic hybrid distribution).
//
// This is Algorithm 1 of the paper realized with actual concurrency. Its
// purpose is correctness, not throughput: the equivalence tests prove
// that the pipelined schedules produce exactly the training trajectory of
// the sequential formulation — the paper's "no modification to the
// mathematical formulation" claim.
package engine

import (
	"fmt"
	"sync"

	"pipebd/internal/dataset"
	"pipebd/internal/distill"
	"pipebd/internal/nn"
	"pipebd/internal/obs"
	"pipebd/internal/sched"
	"pipebd/internal/tensor"
)

// Config parameterizes a pipelined run.
type Config struct {
	// Plan distributes blocks over devices (sched.TRContiguous-shaped
	// plans give plain TR; sched.InternalRelaying gives IR; hybrid plans
	// give AHD behaviour).
	Plan sched.Plan
	// DPU enables decoupled parameter update: without it, a global
	// barrier delays every update until all devices finish their
	// backward pass (Fig. 3b); with it, devices update immediately and
	// start the next step (Fig. 3c).
	DPU bool
	// LR and Momentum configure each block's SGD optimizer.
	LR, Momentum float32
	// Buffer is the relay channel depth (pipeline depth); <= 0 means 2.
	Buffer int
	// Backend selects the tensor compute backend for every block replica
	// (e.g. tensor.Lookup("parallel")). nil keeps whatever the workbench
	// and the process default already use. All backends are bit-identical,
	// so this is purely a throughput knob — the equivalence guarantees
	// hold regardless.
	Backend tensor.Backend
	// Trace, when non-nil, records per-device span events of the run: one
	// obs track per plan device ("dev0", "dev1", ...), fed by the device
	// loop's phase instrumentation. Tracing never changes the training
	// trajectory; nil (the default) leaves the loop's instrumentation as
	// inert nil-track checks.
	Trace *obs.Tracer
}

// Result collects the training trajectory.
type Result struct {
	// Loss[b][s] is block b's distillation loss at step s (averaged over
	// group members when the block is trained data-parallel).
	Loss [][]float64
}

// FinalLoss returns the last-step loss of each block.
func (r Result) FinalLoss() []float64 {
	out := make([]float64, len(r.Loss))
	for b, l := range r.Loss {
		if len(l) > 0 {
			out[b] = l[len(l)-1]
		}
	}
	return out
}

// RunSequential trains every student block one step per batch in plain
// program order — the reference semantics of blockwise distillation.
// It mutates the workbench's student parameters.
func RunSequential(w *distill.Workbench, batches []dataset.Batch, lr, momentum float32) Result {
	nb := w.NumBlocks()
	res := Result{Loss: make([][]float64, nb)}
	opts := make([]*nn.SGD, nb)
	for b := 0; b < nb; b++ {
		opts[b] = nn.NewSGD(lr, momentum, 0)
		res.Loss[b] = make([]float64, len(batches))
	}
	for s, batch := range batches {
		x := batch.X
		for b := 0; b < nb; b++ {
			pair := w.Pairs[b]
			params := pair.Student.Params()
			nn.ZeroGrads(params)
			tOut, loss := distill.Step(pair, x)
			opts[b].Step(params)
			res.Loss[b][s] = loss
			x = tOut
		}
	}
	return res
}

// barrier is a reusable cyclic barrier for n participants.
type barrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	n     int
	count int
	phase int
}

func newBarrier(n int) *barrier {
	b := &barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Await blocks until all n participants have called it.
func (b *barrier) Await() {
	b.mu.Lock()
	phase := b.phase
	b.count++
	if b.count == b.n {
		b.count = 0
		b.phase++
		b.cond.Broadcast()
	} else {
		for b.phase == phase {
			b.cond.Wait()
		}
	}
	b.mu.Unlock()
}

// groupRuntime is the shared state of one plan group.
type groupRuntime struct {
	sched.Group
	in  chan *tensor.Tensor // full-batch input activations
	out chan *tensor.Tensor // nil for the last group

	sync *barrier // intra-group phases (assembly, all-reduce)

	// members[j] holds member j's private replica of the group's pairs.
	members [][]distill.Pair
	opts    [][]*nn.SGD

	// assembleMu latches the lazy allocation of assembled. It is
	// per-group state: independent groups — and independent concurrent
	// RunPipelined calls — must never contend on a shared lock.
	assembleMu sync.Mutex
	// assembled is the full-batch teacher output under construction.
	assembled *tensor.Tensor
	// assembledInput broadcasts the received input to group members.
	assembledInput *tensor.Tensor
}

// RunPipelined trains the workbench under the given plan with real
// concurrency. The workbench's own pairs are used by each group's member
// 0; additional group members train bit-identical replicas (their updates
// coincide, so member 0's weights are the result). It returns the loss
// trajectory; the workbench's student parameters hold the trained values.
func RunPipelined(w *distill.Workbench, batches []dataset.Batch, cfg Config) Result {
	nb := w.NumBlocks()
	if err := validatePlan(cfg.Plan, nb); err != nil {
		panic(err)
	}
	buffer := cfg.Buffer
	if buffer <= 0 {
		buffer = 2
	}
	steps := len(batches)
	nDev := 0
	for _, g := range cfg.Plan.Groups {
		nDev += g.Split()
	}

	// Build group runtimes and replicas.
	groups := make([]*groupRuntime, len(cfg.Plan.Groups))
	var prev *groupRuntime
	for gi, g := range cfg.Plan.Groups {
		gr := &groupRuntime{Group: g, sync: newBarrier(g.Split())}
		gr.members = make([][]distill.Pair, g.Split())
		gr.opts = make([][]*nn.SGD, g.Split())
		for j := 0; j < g.Split(); j++ {
			src := w
			if j > 0 {
				src = w.Replica()
			}
			if cfg.Backend != nil {
				src.SetBackend(cfg.Backend)
			}
			pairs := make([]distill.Pair, len(g.Blocks))
			opts := make([]*nn.SGD, len(g.Blocks))
			for bi, b := range g.Blocks {
				pairs[bi] = src.Pairs[b]
				opts[bi] = nn.NewSGD(cfg.LR, cfg.Momentum, 0)
			}
			gr.members[j] = pairs
			gr.opts[j] = opts
		}
		if gi > 0 {
			gr.in = make(chan *tensor.Tensor, buffer)
			prev.out = gr.in
		}
		groups[gi] = gr
		prev = gr
	}

	losses := make([][][]float64, len(groups)) // [group][blockInGroup*member]...
	for gi, gr := range groups {
		losses[gi] = make([][]float64, len(gr.Blocks)*gr.Split())
		for i := range losses[gi] {
			losses[gi][i] = make([]float64, steps)
		}
	}

	var stepSync *barrier
	if !cfg.DPU {
		stepSync = newBarrier(nDev)
	}

	var wg sync.WaitGroup
	for gi, gr := range groups {
		for j := 0; j < gr.Split(); j++ {
			wg.Add(1)
			go func(gi int, gr *groupRuntime, j int) {
				defer wg.Done()
				m := Member{Group: gi, Rank: j, GroupSize: gr.Split(),
					Pairs: gr.members[j], Opts: gr.opts[j]}
				if cfg.Trace != nil {
					m.Trace = cfg.Trace.NewTrack(fmt.Sprintf("dev%d", gr.Devices[j]))
				}
				link := &memberLink{gr: gr, j: j, batches: batches,
					stepSync: stepSync, losses: losses[gi]}
				RunMember(m, steps, link)
			}(gi, gr, j)
		}
	}
	wg.Wait()

	// Assemble the loss trajectory per block (mean over members).
	res := Result{Loss: make([][]float64, nb)}
	for gi, gr := range groups {
		merged := MergeGroupLosses(losses[gi], len(gr.Blocks), gr.Split(), steps)
		for bi, b := range gr.Blocks {
			res.Loss[b] = merged[bi]
		}
	}
	return res
}

// MergeGroupLosses folds one group's per-member loss rows (indexed
// j*nb+bi, the layout ReportLosses fills) into per-block means, summing
// members in rank order before dividing — the float64 evaluation order is
// part of the engine's bit-equivalence contract, so every runtime
// (in-process and cluster coordinator) must merge through this helper.
func MergeGroupLosses(groupLosses [][]float64, nb, k, steps int) [][]float64 {
	merged := make([][]float64, nb)
	for bi := 0; bi < nb; bi++ {
		row := make([]float64, steps)
		for s := 0; s < steps; s++ {
			var sum float64
			for j := 0; j < k; j++ {
				sum += groupLosses[j*nb+bi][s]
			}
			row[s] = sum / float64(k)
		}
		merged[bi] = row
	}
	return merged
}

// assembleShard writes a member's teacher-output shard into the group's
// full-batch assembly buffer. Members write disjoint ranges; the
// following barrier publishes the writes.
func (gr *groupRuntime) assembleShard(shard *tensor.Tensor, j int) {
	k := gr.Split()
	gr.assemblyOnce(shard, k)
	per := shard.Numel()
	copy(gr.assembled.Data()[j*per:(j+1)*per], shard.Data())
}

// assemblyOnce lazily allocates the assembly buffer for this step.
func (gr *groupRuntime) assemblyOnce(shard *tensor.Tensor, k int) {
	gr.assembleMu.Lock()
	defer gr.assembleMu.Unlock()
	if gr.assembled == nil {
		shape := append([]int(nil), shard.Shape()...)
		shape[0] *= k
		gr.assembled = tensor.New(shape...)
	}
}

// averageGroupGradients implements a deterministic all-reduce: every
// member sums all members' gradients in rank order into a private buffer,
// scales by 1/k, and installs the result into its own gradient tensors
// after a barrier. All replicas therefore apply bit-identical updates.
func averageGroupGradients(gr *groupRuntime, j int, scratch *tensor.Arena) {
	k := gr.Split()
	inv := 1 / float32(k)
	nb := len(gr.Blocks)
	// Phase 1: compute averaged gradients into private buffers.
	avg := make([][]*tensor.Tensor, nb)
	for bi := 0; bi < nb; bi++ {
		params := gr.members[j][bi].Student.Params()
		avg[bi] = make([]*tensor.Tensor, len(params))
		for pi := range params {
			sum := scratch.GetZeroed(params[pi].Grad.Shape()...)
			for r := 0; r < k; r++ {
				tensor.AddInto(sum, gr.members[r][bi].Student.Params()[pi].Grad)
			}
			tensor.ScaleInPlace(sum, inv)
			avg[bi][pi] = sum
		}
	}
	gr.sync.Await() // everyone done reading raw gradients
	// Phase 2: install, then recycle the buffers for the next step.
	for bi := 0; bi < nb; bi++ {
		params := gr.members[j][bi].Student.Params()
		for pi := range params {
			params[pi].Grad.CopyFrom(avg[bi][pi])
		}
		scratch.Release(avg[bi]...)
	}
}

// shardOf slices member j's contiguous batch shard (copying into arena
// scratch, so members never alias the same backing array).
func shardOf(full *tensor.Tensor, j, k int, scratch *tensor.Arena) *tensor.Tensor {
	if k == 1 {
		return full
	}
	shape := full.Shape()
	if shape[0]%k != 0 {
		panic(fmt.Sprintf("engine: batch %d not divisible by group size %d", shape[0], k))
	}
	per := shape[0] / k
	elems := full.Numel() / shape[0]
	out := scratch.Get(append([]int{per}, shape[1:]...)...)
	copy(out.Data(), full.Data()[j*per*elems:(j+1)*per*elems])
	return out
}

func validatePlan(p sched.Plan, nBlocks int) error {
	nDev := 0
	for _, g := range p.Groups {
		nDev += g.Split()
	}
	return p.Validate(nDev, nBlocks)
}
