package engine

import (
	"math/rand"
	"sync"
	"testing"

	"pipebd/internal/dataset"
	"pipebd/internal/distill"
	"pipebd/internal/sched"
	"pipebd/internal/tensor"
)

func tinyBatches(t *testing.T, n, batch int) []dataset.Batch {
	t.Helper()
	cfg := distill.DefaultTinyConfig()
	data := dataset.NewRandom(rand.New(rand.NewSource(7)), n*batch, 3, cfg.Height, cfg.Width, 4)
	return data.Batches(batch)
}

func plan(groups ...sched.Group) sched.Plan {
	return sched.Plan{Name: "test", Groups: groups}
}

func g(devs, blocks []int) sched.Group { return sched.Group{Devices: devs, Blocks: blocks} }

// paramsEqual compares every student parameter of two workbenches.
func paramsEqual(t *testing.T, a, b *distill.Workbench, exact bool, tol float64) bool {
	t.Helper()
	for blk := 0; blk < a.NumBlocks(); blk++ {
		pa, pb := a.StudentParams(blk), b.StudentParams(blk)
		if len(pa) != len(pb) {
			t.Fatalf("block %d: param count mismatch", blk)
		}
		for i := range pa {
			if exact {
				if !pa[i].Value.Equal(pb[i].Value) {
					return false
				}
			} else if !pa[i].Value.AllClose(pb[i].Value, tol, tol) {
				return false
			}
		}
	}
	return true
}

// TestPipelinedTRBitEquivalence is the core claim of the paper: teacher
// relaying with decoupled parameter updates changes scheduling only —
// the trained weights must be bit-identical to sequential training.
func TestPipelinedTRBitEquivalence(t *testing.T) {
	batches := tinyBatches(t, 6, 8)
	ref := distill.NewTinyWorkbench(distill.DefaultTinyConfig())
	seqRes := RunSequential(ref, batches, 0.05, 0.9)

	for name, p := range map[string]sched.Plan{
		"2dev": plan(g([]int{0}, []int{0, 1}), g([]int{1}, []int{2, 3})),
		"4dev": plan(g([]int{0}, []int{0}), g([]int{1}, []int{1}), g([]int{2}, []int{2}), g([]int{3}, []int{3})),
	} {
		for _, dpu := range []bool{false, true} {
			w := distill.NewTinyWorkbench(distill.DefaultTinyConfig())
			pipRes := RunPipelined(w, batches, Config{Plan: p, DPU: dpu, LR: 0.05, Momentum: 0.9})
			if !paramsEqual(t, ref, w, true, 0) {
				t.Errorf("%s dpu=%v: pipelined weights differ from sequential", name, dpu)
			}
			for b := range seqRes.Loss {
				for s := range seqRes.Loss[b] {
					if seqRes.Loss[b][s] != pipRes.Loss[b][s] {
						t.Fatalf("%s dpu=%v: loss trajectory diverged at block %d step %d", name, dpu, b, s)
					}
				}
			}
		}
	}
}

// TestDPUDoesNotChangeMath verifies the specific claim of §IV-B: removing
// the update barrier cannot alter any trained value because blocks have
// no weight dependencies on each other.
func TestDPUDoesNotChangeMath(t *testing.T) {
	batches := tinyBatches(t, 5, 8)
	p := plan(g([]int{0}, []int{0, 1}), g([]int{1}, []int{2, 3}))

	w1 := distill.NewTinyWorkbench(distill.DefaultTinyConfig())
	RunPipelined(w1, batches, Config{Plan: p, DPU: false, LR: 0.05, Momentum: 0.9})
	w2 := distill.NewTinyWorkbench(distill.DefaultTinyConfig())
	RunPipelined(w2, batches, Config{Plan: p, DPU: true, LR: 0.05, Momentum: 0.9})
	if !paramsEqual(t, w1, w2, true, 0) {
		t.Fatal("DPU changed trained weights")
	}
}

// TestHybridGroupMatchesSequential checks AHD's data-parallel sharing:
// averaging shard gradients equals the full-batch gradient up to float32
// reduction order, so hybrid training must match sequential training
// within a tight tolerance (and all replicas must stay bit-identical).
func TestHybridGroupMatchesSequential(t *testing.T) {
	batches := tinyBatches(t, 6, 8)
	ref := distill.NewTinyWorkbench(distill.DefaultTinyConfig())
	RunSequential(ref, batches, 0.05, 0.9)

	p := plan(g([]int{0, 1}, []int{0, 1}), g([]int{2}, []int{2, 3}))
	w := distill.NewTinyWorkbench(distill.DefaultTinyConfig())
	RunPipelined(w, batches, Config{Plan: p, DPU: true, LR: 0.05, Momentum: 0.9})
	if !paramsEqual(t, ref, w, false, 1e-3) {
		t.Fatal("hybrid-group training diverged from sequential beyond tolerance")
	}
}

// TestInternalRelayingMatchesSequential: IR is the all-blocks-shared
// special case.
func TestInternalRelayingMatchesSequential(t *testing.T) {
	batches := tinyBatches(t, 4, 8)
	ref := distill.NewTinyWorkbench(distill.DefaultTinyConfig())
	RunSequential(ref, batches, 0.05, 0.9)

	w := distill.NewTinyWorkbench(distill.DefaultTinyConfig())
	p := sched.InternalRelaying(2, 4)
	RunPipelined(w, batches, Config{Plan: p, DPU: true, LR: 0.05, Momentum: 0.9})
	if !paramsEqual(t, ref, w, false, 1e-3) {
		t.Fatal("internal relaying diverged from sequential beyond tolerance")
	}
}

func TestTrainingReducesDistillationLoss(t *testing.T) {
	batches := tinyBatches(t, 40, 8)
	w := distill.NewTinyWorkbench(distill.DefaultTinyConfig())
	p := plan(g([]int{0}, []int{0, 1}), g([]int{1}, []int{2, 3}))
	res := RunPipelined(w, batches, Config{Plan: p, DPU: true, LR: 0.05, Momentum: 0.9})
	for b := range res.Loss {
		first, last := res.Loss[b][0], res.Loss[b][len(res.Loss[b])-1]
		if last > first*0.7 {
			t.Errorf("block %d: loss did not decrease enough (%v -> %v)", b, first, last)
		}
	}
}

func TestPipelineDepthInvariance(t *testing.T) {
	// The relay buffer size is pure scheduling: results must be
	// bit-identical across depths.
	batches := tinyBatches(t, 5, 8)
	p := plan(g([]int{0}, []int{0}), g([]int{1}, []int{1}), g([]int{2}, []int{2, 3}))
	var ref *distill.Workbench
	for _, depth := range []int{1, 2, 8} {
		w := distill.NewTinyWorkbench(distill.DefaultTinyConfig())
		RunPipelined(w, batches, Config{Plan: p, DPU: true, LR: 0.05, Momentum: 0.9, Buffer: depth})
		if ref == nil {
			ref = w
			continue
		}
		if !paramsEqual(t, ref, w, true, 0) {
			t.Fatalf("buffer depth %d changed results", depth)
		}
	}
}

func TestConcurrentRunsAreIndependent(t *testing.T) {
	// Two pipelined runs in parallel must not interfere (no hidden
	// global state).
	batches := tinyBatches(t, 4, 8)
	p := plan(g([]int{0}, []int{0, 1}), g([]int{1}, []int{2, 3}))
	var wg sync.WaitGroup
	results := make([]*distill.Workbench, 4)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := distill.NewTinyWorkbench(distill.DefaultTinyConfig())
			RunPipelined(w, batches, Config{Plan: p, DPU: true, LR: 0.05, Momentum: 0.9})
			results[i] = w
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(results); i++ {
		if !paramsEqual(t, results[0], results[i], true, 0) {
			t.Fatal("concurrent runs interfered with each other")
		}
	}
}

func TestStudentLearnsTeacherFunction(t *testing.T) {
	// End-to-end Table II claim in miniature: after blockwise
	// distillation, the full student predicts the teacher's labels far
	// better than chance.
	cfg := distill.DefaultTinyConfig()
	cfg.Classes = 4
	w := distill.NewTinyWorkbench(cfg)

	rng := rand.New(rand.NewSource(11))
	labeller := func(x *tensor.Tensor) []int {
		return tensor.ArgMaxRow(w.TeacherForward(x).Reshape(x.Dim(0), cfg.Classes))
	}
	train := tensor.Rand(rng, -1, 1, 160, 3, cfg.Height, cfg.Width)
	batches := make([]dataset.Batch, 0, 20)
	for i := 0; i < 20; i++ {
		b := tensor.New(8, 3, cfg.Height, cfg.Width)
		copy(b.Data(), train.Data()[i*b.Numel():(i+1)*b.Numel()])
		batches = append(batches, dataset.Batch{X: b})
	}
	// Repeat the epoch several times.
	var all []dataset.Batch
	for e := 0; e < 15; e++ {
		all = append(all, batches...)
	}
	p := plan(g([]int{0}, []int{0, 1}), g([]int{1}, []int{2, 3}))
	RunPipelined(w, all, Config{Plan: p, DPU: true, LR: 0.03, Momentum: 0.9})

	test := tensor.Rand(rng, -1, 1, 64, 3, cfg.Height, cfg.Width)
	teacherLabels := labeller(test)
	studentLogits := w.StudentForward(test).Reshape(64, cfg.Classes)
	pred := tensor.ArgMaxRow(studentLogits)
	agree := 0
	for i := range pred {
		if pred[i] == teacherLabels[i] {
			agree++
		}
	}
	if frac := float64(agree) / 64; frac < 0.6 {
		t.Fatalf("student agrees with teacher on only %.0f%% of samples", frac*100)
	}
}

func TestRunPipelinedValidatesPlan(t *testing.T) {
	batches := tinyBatches(t, 2, 8)
	w := distill.NewTinyWorkbench(distill.DefaultTinyConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on invalid plan")
		}
	}()
	RunPipelined(w, batches, Config{Plan: plan(g([]int{0}, []int{0})), LR: 0.1})
}
