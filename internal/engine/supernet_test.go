package engine

import (
	"math/rand"
	"testing"

	"pipebd/internal/dataset"
	"pipebd/internal/distill"
	"pipebd/internal/sched"
)

// TestSupernetSearchBitEquivalence extends the equivalence result to the
// NAS workload: architecture parameters are ordinary trainable weights,
// so a Pipe-BD pipelined search must reproduce the sequential search
// bit for bit — same α trajectories, same derived architecture.
func TestSupernetSearchBitEquivalence(t *testing.T) {
	cfg := distill.DefaultSupernetConfig()
	data := dataset.NewRandom(rand.New(rand.NewSource(3)), 48, 3, cfg.Height, cfg.Width, 4)
	batches := data.Batches(8)

	seq := distill.NewTinySupernetWorkbench(cfg)
	RunSequential(seq, batches, 0.05, 0.9)

	pipe := distill.NewTinySupernetWorkbench(cfg)
	plan := sched.Plan{Name: "tr", Groups: []sched.Group{
		{Devices: []int{0}, Blocks: []int{0}},
		{Devices: []int{1}, Blocks: []int{1}},
		{Devices: []int{2}, Blocks: []int{2}},
	}}
	RunPipelined(pipe, batches, Config{Plan: plan, DPU: true, LR: 0.05, Momentum: 0.9})

	for b := 0; b < seq.NumBlocks(); b++ {
		ps, pp := seq.StudentParams(b), pipe.StudentParams(b)
		for i := range ps {
			if !ps[i].Value.Equal(pp[i].Value) {
				t.Fatalf("block %d param %q differs between schedules", b, ps[i].Name)
			}
		}
	}
	archSeq := distill.DeriveArchitecture(seq)
	archPipe := distill.DeriveArchitecture(pipe)
	for b := range archSeq {
		if archSeq[b] != archPipe[b] {
			t.Fatalf("derived architectures differ at block %d", b)
		}
	}
}

// TestSupernetHybridGroupSearch checks the AHD-style data-parallel case
// on the supernet: gradient averaging keeps the α updates within float32
// reduction tolerance of sequential search.
func TestSupernetHybridGroupSearch(t *testing.T) {
	cfg := distill.DefaultSupernetConfig()
	data := dataset.NewRandom(rand.New(rand.NewSource(4)), 48, 3, cfg.Height, cfg.Width, 4)
	batches := data.Batches(8)

	seq := distill.NewTinySupernetWorkbench(cfg)
	RunSequential(seq, batches, 0.05, 0.9)

	pipe := distill.NewTinySupernetWorkbench(cfg)
	plan := sched.Plan{Name: "hybrid", Groups: []sched.Group{
		{Devices: []int{0, 1}, Blocks: []int{0, 1}},
		{Devices: []int{2}, Blocks: []int{2}},
	}}
	RunPipelined(pipe, batches, Config{Plan: plan, DPU: true, LR: 0.05, Momentum: 0.9})

	for b := 0; b < seq.NumBlocks(); b++ {
		ps, pp := seq.StudentParams(b), pipe.StudentParams(b)
		for i := range ps {
			if !ps[i].Value.AllClose(pp[i].Value, 1e-3, 1e-3) {
				t.Fatalf("block %d param %q beyond tolerance", b, ps[i].Name)
			}
		}
	}
}
