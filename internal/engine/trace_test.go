package engine

import (
	"math/rand"
	"testing"

	"pipebd/internal/dataset"
	"pipebd/internal/distill"
	"pipebd/internal/obs"
	"pipebd/internal/sched"
)

// TestRunPipelinedTracing proves the observability layer's two contracts
// on the in-process engine: an enabled tracer captures every expected
// phase on every device track, and tracing does not perturb the training
// trajectory (losses stay bit-identical to an untraced run).
func TestRunPipelinedTracing(t *testing.T) {
	tiny := distill.DefaultTinyConfig()
	const steps, batch = 3, 8
	data := dataset.NewRandom(rand.New(rand.NewSource(11)), steps*batch, 3, tiny.Height, tiny.Width, 4)
	batches := data.Batches(batch)
	plan := sched.Plan{Name: "hybrid", Groups: []sched.Group{
		{Devices: []int{0, 1}, Blocks: []int{0, 1}},
		{Devices: []int{2}, Blocks: []int{2, 3}},
	}}
	cfg := Config{Plan: plan, DPU: false, LR: 0.05, Momentum: 0.9}

	ref := RunPipelined(distill.NewTinyWorkbench(tiny), batches, cfg)

	traced := cfg
	traced.Trace = obs.NewTracer(true)
	got := RunPipelined(distill.NewTinyWorkbench(tiny), batches, traced)

	for b := range ref.Loss {
		for s := range ref.Loss[b] {
			if ref.Loss[b][s] != got.Loss[b][s] {
				t.Fatalf("tracing changed the trajectory: block %d step %d: %v != %v",
					b, s, ref.Loss[b][s], got.Loss[b][s])
			}
		}
	}

	tracks := traced.Trace.Tracks()
	if len(tracks) != 3 {
		t.Fatalf("got %d tracks, want 3 (one per device)", len(tracks))
	}
	names := map[string]bool{}
	for _, tk := range tracks {
		names[tk.Name()] = true
		spans := tk.Drain()
		if len(spans) == 0 {
			t.Fatalf("track %s recorded no spans", tk.Name())
		}
		seen := map[string]bool{}
		for _, s := range spans {
			seen[s.Name] = true
		}
		want := []string{"teacher_fwd", "student_fwd", "student_bwd", "sgd_update", "barrier_wait"}
		if tk.Name() == "dev0" || tk.Name() == "dev1" {
			want = append(want, "recv_input", "send_output", "allreduce")
		} else {
			want = append(want, "recv_act")
		}
		for _, w := range want {
			if !seen[w] {
				t.Fatalf("track %s missing span %q (saw %v)", tk.Name(), w, seen)
			}
		}
	}
	for _, d := range []string{"dev0", "dev1", "dev2"} {
		if !names[d] {
			t.Fatalf("missing device track %s (have %v)", d, names)
		}
	}
}
