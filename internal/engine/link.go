package engine

import (
	"pipebd/internal/dataset"
	"pipebd/internal/distill"
	"pipebd/internal/nn"
	"pipebd/internal/obs"
	"pipebd/internal/sim"
	"pipebd/internal/tensor"
)

// DeviceLink is the communication seam of the device loop: everything a
// pipeline device needs from the outside world during training. The
// in-process implementation (memberLink) wires it to channels, barriers,
// and shared memory; the cluster package implements it over a wire
// transport so the very same loop runs inside a worker process.
//
// Implementations must preserve the engine's determinism contract:
// RecvInput delivers the step's full-batch input exactly as the previous
// stage produced it, and AllReduce leaves every member's gradient tensors
// holding the rank-ordered mean (sum over member ranks 0..k-1, then scale
// by 1/k) so all replicas apply bit-identical updates.
type DeviceLink interface {
	// RecvInput returns the full-batch input of the given step: the data
	// loader's batch for the first group, the relayed teacher activation
	// otherwise. The device loop only reads the returned tensor.
	RecvInput(step int) *tensor.Tensor
	// SendOutput relays the device's boundary activation for the step
	// toward the next group (the member's shard when the group is split;
	// links assemble shards in rank order). No-op for the last group.
	SendOutput(step int, out *tensor.Tensor)
	// AllReduce replaces each gradient tensor's contents with the
	// deterministic intra-group mean. Only called when the group has more
	// than one member. grads is the member's flattened gradient list
	// (blocks in group order, params in declaration order); scratch may be
	// used for temporaries.
	AllReduce(step int, grads []*tensor.Tensor, scratch *tensor.Arena)
	// ReportLosses publishes the member's per-block losses for the step.
	// The slice is reused between steps: implementations must copy.
	ReportLosses(step int, losses []float64)
	// StepBarrier delays the parameter update until every device in the
	// run finished the step's backward pass. No-op when decoupled
	// parameter update (DPU) is enabled.
	StepBarrier(step int)
}

// StepFinisher is an optional DeviceLink extension: when a link
// implements it, RunMember calls FinishStep after a step's parameter
// updates are installed — the point where the device's state is exactly
// "trained through step s". The cluster link uses it to emit recovery
// snapshots; the in-process link has no need for it.
type StepFinisher interface {
	FinishStep(step int)
}

// Member describes one pipeline device's role: its group, its rank within
// the group, and its private block replicas with their optimizers.
type Member struct {
	Group     int // group index within the plan
	Rank      int // rank j within the group
	GroupSize int // number of members k sharing the group's blocks
	Pairs     []distill.Pair
	Opts      []*nn.SGD

	// Trace, when non-nil, receives per-step span events from the device
	// loop (phase timings, communication waits, barrier time). A nil or
	// disabled track costs one branch per phase — see internal/obs.
	Trace *obs.Track
}

// GradTensors returns the member's flattened gradient list in the order
// AllReduce expects: blocks in group order, parameters in declaration
// order. The tensors are stable across steps (gradients are zeroed in
// place), so the slice is collected once per run.
func (m Member) GradTensors() []*tensor.Tensor {
	var grads []*tensor.Tensor
	for _, p := range m.Pairs {
		for _, prm := range p.Student.Params() {
			grads = append(grads, prm.Grad)
		}
	}
	return grads
}

// RunMember drives one device's step loop — Algorithm 1 of the paper —
// for the given number of steps, with all communication routed through
// link. It is the single device runtime shared by the in-process pipeline
// (RunPipelined) and the multi-process cluster worker.
func RunMember(m Member, steps int, link DeviceLink) {
	RunMemberFrom(m, 0, steps, link)
}

// RunMemberFrom runs the device loop for steps [start, steps). It exists
// for replay-based recovery: a device restored from a snapshot taken
// after step start-1 resumes here and, fed the same inputs, reproduces
// the remaining trajectory bit-identically.
func RunMemberFrom(m Member, start, steps int, link DeviceLink) {
	k := m.GroupSize
	nb := len(m.Pairs)
	// Every step reuses the same shapes, so this member's batch shard and
	// all-reduce temporaries cycle through a private arena: steady-state
	// steps allocate only the activations that cross device boundaries.
	scratch := tensor.NewArena()
	losses := make([]float64, nb)
	var grads []*tensor.Tensor
	if k > 1 {
		grads = m.GradTensors()
	}
	finisher, _ := link.(StepFinisher)
	// The first group's receive is the measured data-loading time; later
	// groups wait on the relayed activation, which is communication.
	recvCat, recvName := sim.CatLoad, "recv_input"
	if m.Group > 0 {
		recvCat, recvName = sim.CatComm, "recv_act"
	}
	tk := m.Trace
	for s := start; s < steps; s++ {
		// Receive the step's input: the data loader for the first group,
		// the relayed teacher activation otherwise (lines 8-9).
		r := tk.Begin(recvCat, recvName)
		full := link.RecvInput(s)
		r.End()
		shard := shardOf(full, m.Rank, k, scratch)
		x := shard
		for bi := 0; bi < nb; bi++ {
			pair := m.Pairs[bi]
			nn.ZeroGrads(pair.Student.Params())
			// Teacher forward (line 10), student forward/backward against
			// the teacher activation (lines 12-13).
			tOut, loss := distill.StepObserved(pair, x, tk)
			losses[bi] = loss
			x = tOut
		}

		// Relay the boundary activation to the next device (line 11). The
		// send overlaps with the remaining work of other members thanks to
		// the link's buffering.
		r = tk.Begin(sim.CatComm, "send_output")
		link.SendOutput(s, x)
		r.End()

		// Intra-group gradient sharing when AHD split a block along the
		// batch dimension (line 14).
		if k > 1 {
			r = tk.Begin(sim.CatAllReduce, "allreduce")
			link.AllReduce(s, grads, scratch)
			r.End()
			// The shard is a private copy (k > 1) and the first block's
			// backward cache no longer needs it once the step's gradients
			// are installed; recycle it for the next step.
			scratch.Release(shard)
		}

		link.ReportLosses(s, losses)

		// Decoupled parameter update (lines 15-16): update immediately,
		// or wait for every device when DPU is disabled.
		r = tk.Begin(obs.CatWait, "barrier_wait")
		link.StepBarrier(s)
		r.End()
		r = tk.Begin(sim.CatUpdate, "sgd_update")
		for bi := 0; bi < nb; bi++ {
			m.Opts[bi].Step(m.Pairs[bi].Student.Params())
		}
		r.End()
		if finisher != nil {
			finisher.FinishStep(s)
		}
	}
}

// memberLink is the in-process DeviceLink: relay over channels, assembly
// and all-reduce through the group's shared memory, barriers for
// intra-group phases.
type memberLink struct {
	gr       *groupRuntime
	j        int
	batches  []dataset.Batch
	stepSync *barrier    // nil when DPU is enabled
	losses   [][]float64 // run-owned [member*nb+block][step] matrix
}

func (l *memberLink) RecvInput(step int) *tensor.Tensor {
	if l.gr.in == nil {
		return l.batches[step].X
	}
	if l.j == 0 {
		full := <-l.gr.in
		l.gr.assembledInput = full
		l.gr.sync.Await()
		return full
	}
	l.gr.sync.Await()
	return l.gr.assembledInput
}

func (l *memberLink) SendOutput(step int, out *tensor.Tensor) {
	gr := l.gr
	if gr.out == nil {
		return
	}
	if gr.Split() == 1 {
		gr.out <- out
		return
	}
	gr.assembleShard(out, l.j)
	gr.sync.Await()
	if l.j == 0 {
		gr.out <- gr.assembled
		gr.assembled = nil
	}
}

func (l *memberLink) AllReduce(step int, grads []*tensor.Tensor, scratch *tensor.Arena) {
	l.gr.sync.Await() // all members finished backward
	averageGroupGradients(l.gr, l.j, scratch)
	l.gr.sync.Await() // all members consumed others' gradients
}

func (l *memberLink) ReportLosses(step int, losses []float64) {
	nb := len(l.gr.Blocks)
	for bi, v := range losses {
		l.losses[l.j*nb+bi][step] = v
	}
}

func (l *memberLink) StepBarrier(step int) {
	if l.stepSync != nil {
		l.stepSync.Await()
	}
}

var _ DeviceLink = (*memberLink)(nil)
