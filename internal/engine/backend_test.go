package engine

import (
	"sync"
	"testing"

	"pipebd/internal/distill"
	"pipebd/internal/tensor"
)

// TestPipelinedParallelBackendBitEquivalence closes the loop on the
// backend contract at system level: a pipelined run whose replicas
// compute on the parallel backend must still reproduce the serial
// sequential reference bit-for-bit — the paper's "scheduling only, not
// mathematics" claim must survive the compute backend swap too.
func TestPipelinedParallelBackendBitEquivalence(t *testing.T) {
	batches := tinyBatches(t, 4, 8)
	ref := distill.NewTinyWorkbench(distill.DefaultTinyConfig())
	seqRes := RunSequential(ref, batches, 0.05, 0.9)

	parallel, ok := tensor.Lookup("parallel")
	if !ok {
		t.Fatal("parallel backend not registered")
	}
	for _, dpu := range []bool{false, true} {
		w := distill.NewTinyWorkbench(distill.DefaultTinyConfig())
		pipRes := RunPipelined(w, batches, Config{
			Plan: plan(g([]int{0}, []int{0, 1}), g([]int{1}, []int{2, 3})),
			DPU:  dpu, LR: 0.05, Momentum: 0.9,
			Backend: parallel,
		})
		if !paramsEqual(t, ref, w, true, 0) {
			t.Errorf("dpu=%v: parallel-backend pipelined weights differ from serial sequential", dpu)
		}
		for b := range seqRes.Loss {
			for s := range seqRes.Loss[b] {
				if seqRes.Loss[b][s] != pipRes.Loss[b][s] {
					t.Fatalf("dpu=%v: loss diverged at block %d step %d", dpu, b, s)
				}
			}
		}
	}

	// Hybrid group on the parallel backend: data-parallel members of a
	// shared block must also stay bit-identical to each other.
	w := distill.NewTinyWorkbench(distill.DefaultTinyConfig())
	RunPipelined(w, batches, Config{
		Plan: plan(g([]int{0, 1}, []int{0, 1}), g([]int{2}, []int{2, 3})),
		DPU:  true, LR: 0.05, Momentum: 0.9,
		Backend: parallel,
	})
	if !paramsEqual(t, ref, w, false, 1e-3) {
		t.Error("hybrid-group parallel-backend weights drifted beyond 1e-3 of sequential")
	}
}

// TestConcurrentRunsIndependentAssembly regresses the assembly latch fix:
// two hybrid RunPipelined calls racing on separate workbenches must not
// interfere (the latch used to be process-global). Run with -race this
// also proves group-local synchronization is sufficient.
func TestConcurrentRunsIndependentAssembly(t *testing.T) {
	batches := tinyBatches(t, 3, 8)
	ref := distill.NewTinyWorkbench(distill.DefaultTinyConfig())
	RunSequential(ref, batches, 0.05, 0.9)

	hybrid := plan(g([]int{0, 1}, []int{0, 1}), g([]int{2, 3}, []int{2, 3}))
	results := make([]*distill.Workbench, 4)
	var wg sync.WaitGroup
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := distill.NewTinyWorkbench(distill.DefaultTinyConfig())
			RunPipelined(w, batches, Config{Plan: hybrid, DPU: true, LR: 0.05, Momentum: 0.9})
			results[i] = w
		}(i)
	}
	wg.Wait()
	for i, w := range results {
		if !paramsEqual(t, ref, w, false, 1e-3) {
			t.Errorf("concurrent run %d drifted beyond tolerance", i)
		}
	}
}
