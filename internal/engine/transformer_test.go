package engine

import (
	"math/rand"
	"testing"

	"pipebd/internal/dataset"
	"pipebd/internal/distill"
	"pipebd/internal/sched"
	"pipebd/internal/tensor"
)

// The transformer workbench must enjoy the same central equivalence the
// conv workbenches do: the engine is workload-agnostic, so pipelined
// scheduling, DPU, and backend swaps change throughput only — never the
// training trajectory. These tests pin that for encoder blocks with
// batched-GEMM attention and KL logit distillation.

func tokenBatches(t *testing.T, n, batch int) []dataset.Batch {
	t.Helper()
	cfg := distill.DefaultTransformerConfig()
	data := dataset.NewTokens(rand.New(rand.NewSource(7)), n*batch, cfg.SeqLen, cfg.Vocab, cfg.Classes)
	return data.Batches(batch)
}

func newTransformerBench() *distill.Workbench {
	return distill.NewTransformerWorkbench(distill.DefaultTransformerConfig())
}

// TestTransformerPipelinedBitEquivalence: the paper's bit-identity claim
// on the transformer workload — pipelined teacher relaying (with and
// without DPU, unsplit and split plans) must reproduce sequential
// training exactly.
func TestTransformerPipelinedBitEquivalence(t *testing.T) {
	batches := tokenBatches(t, 6, 8)
	ref := newTransformerBench()
	seqRes := RunSequential(ref, batches, 0.05, 0.9)

	for name, p := range map[string]sched.Plan{
		"2dev": plan(g([]int{0}, []int{0, 1}), g([]int{1}, []int{2, 3})),
		"4dev": plan(g([]int{0}, []int{0}), g([]int{1}, []int{1}), g([]int{2}, []int{2}), g([]int{3}, []int{3})),
	} {
		for _, dpu := range []bool{false, true} {
			w := newTransformerBench()
			pipRes := RunPipelined(w, batches, Config{Plan: p, DPU: dpu, LR: 0.05, Momentum: 0.9})
			if !paramsEqual(t, ref, w, true, 0) {
				t.Errorf("%s dpu=%v: pipelined transformer weights differ from sequential", name, dpu)
			}
			for b := range seqRes.Loss {
				for s := range seqRes.Loss[b] {
					if seqRes.Loss[b][s] != pipRes.Loss[b][s] {
						t.Fatalf("%s dpu=%v: loss diverged at block %d step %d", name, dpu, b, s)
					}
				}
			}
		}
	}
}

// TestTransformerParallelBackendBitEquivalence swaps in the parallel
// backend, which routes the attention GEMMs through the batched packed
// kernels — the trajectory must still match the serial sequential
// reference bit-for-bit.
func TestTransformerParallelBackendBitEquivalence(t *testing.T) {
	batches := tokenBatches(t, 4, 8)
	ref := newTransformerBench()
	seqRes := RunSequential(ref, batches, 0.05, 0.9)

	parallel, ok := tensor.Lookup("parallel")
	if !ok {
		t.Fatal("parallel backend not registered")
	}
	for _, dpu := range []bool{false, true} {
		w := newTransformerBench()
		pipRes := RunPipelined(w, batches, Config{
			Plan: plan(g([]int{0}, []int{0, 1}), g([]int{1}, []int{2, 3})),
			DPU:  dpu, LR: 0.05, Momentum: 0.9,
			Backend: parallel,
		})
		if !paramsEqual(t, ref, w, true, 0) {
			t.Errorf("dpu=%v: parallel-backend transformer weights differ from serial sequential", dpu)
		}
		for b := range seqRes.Loss {
			for s := range seqRes.Loss[b] {
				if seqRes.Loss[b][s] != pipRes.Loss[b][s] {
					t.Fatalf("dpu=%v: loss diverged at block %d step %d", dpu, b, s)
				}
			}
		}
	}
}

// TestTransformerHybridGroupMatchesSequential: batch-sharded encoder
// groups average shard gradients, equal to the full-batch gradient up to
// float32 reduction order.
func TestTransformerHybridGroupMatchesSequential(t *testing.T) {
	batches := tokenBatches(t, 6, 8)
	ref := newTransformerBench()
	RunSequential(ref, batches, 0.05, 0.9)

	p := plan(g([]int{0, 1}, []int{0, 1}), g([]int{2}, []int{2, 3}))
	w := newTransformerBench()
	RunPipelined(w, batches, Config{Plan: p, DPU: true, LR: 0.05, Momentum: 0.9})
	if !paramsEqual(t, ref, w, false, 1e-3) {
		t.Fatal("hybrid-group transformer training diverged from sequential beyond tolerance")
	}
}

// TestTransformerTrainingReducesLoss: the KL logit block and the MSE
// hidden-state blocks must all actually learn on the synthetic token
// task.
func TestTransformerTrainingReducesLoss(t *testing.T) {
	batches := tokenBatches(t, 40, 8)
	w := newTransformerBench()
	p := plan(g([]int{0}, []int{0, 1}), g([]int{1}, []int{2, 3}))
	res := RunPipelined(w, batches, Config{Plan: p, DPU: true, LR: 0.05, Momentum: 0.9})
	for b := range res.Loss {
		first, last := res.Loss[b][0], res.Loss[b][len(res.Loss[b])-1]
		if last > first*0.9 {
			t.Errorf("block %d: loss did not decrease enough (%v -> %v)", b, first, last)
		}
	}
}
