package tensor

import (
	"fmt"
	"time"
)

// Throttled is a compute straggler: it delegates every kernel to an
// inner backend untouched — so it is bit-identical to the inner backend
// by construction — and then sleeps proportionally to the time the
// kernel took, multiplying the device's effective compute time by the
// slowdown factor. It exists to exercise the runtime repartitioner and
// heterogeneity-sensitive scheduling against a reproducible slow rank:
// unlike a transport delay, the injected cost scales with the work the
// device hosts, so moving blocks off the throttled device genuinely
// shrinks its step time.
type Throttled struct {
	inner  Backend
	factor int
}

// NewThrottled wraps inner with a slowdown factor (>= 1; 1 is a
// pass-through). A factor of f makes every kernel take about f times as
// long.
func NewThrottled(inner Backend, factor int) Throttled {
	if factor < 1 {
		panic(fmt.Sprintf("tensor: throttle factor %d < 1", factor))
	}
	return Throttled{inner: inner, factor: factor}
}

// Name returns e.g. "serial+slow4".
func (t Throttled) Name() string { return fmt.Sprintf("%s+slow%d", t.inner.Name(), t.factor) }

// pace sleeps (factor-1)× the elapsed kernel time.
func (t Throttled) pace(start time.Time) {
	if t.factor > 1 {
		time.Sleep(time.Duration(t.factor-1) * time.Since(start))
	}
}

func (t Throttled) MatMulInto(out, a, b *Tensor) {
	defer t.pace(time.Now())
	t.inner.MatMulInto(out, a, b)
}

func (t Throttled) MatMulTAInto(out, a, b *Tensor) {
	defer t.pace(time.Now())
	t.inner.MatMulTAInto(out, a, b)
}

func (t Throttled) MatMulTBInto(out, a, b *Tensor) {
	defer t.pace(time.Now())
	t.inner.MatMulTBInto(out, a, b)
}

func (t Throttled) MatMulBatchInto(out, a, b *Tensor) {
	defer t.pace(time.Now())
	t.inner.MatMulBatchInto(out, a, b)
}

func (t Throttled) MatMulTABatchInto(out, a, b *Tensor) {
	defer t.pace(time.Now())
	t.inner.MatMulTABatchInto(out, a, b)
}

func (t Throttled) MatMulTBBatchInto(out, a, b *Tensor) {
	defer t.pace(time.Now())
	t.inner.MatMulTBBatchInto(out, a, b)
}

func (t Throttled) Add(dst, a, b *Tensor) {
	defer t.pace(time.Now())
	t.inner.Add(dst, a, b)
}

func (t Throttled) Sub(dst, a, b *Tensor) {
	defer t.pace(time.Now())
	t.inner.Sub(dst, a, b)
}

func (t Throttled) Mul(dst, a, b *Tensor) {
	defer t.pace(time.Now())
	t.inner.Mul(dst, a, b)
}

func (t Throttled) Scale(dst, a *Tensor, s float32) {
	defer t.pace(time.Now())
	t.inner.Scale(dst, a, s)
}

func (t Throttled) Axpy(dst *Tensor, alpha float32, src *Tensor) {
	defer t.pace(time.Now())
	t.inner.Axpy(dst, alpha, src)
}

func (t Throttled) Im2ColInto(out, x *Tensor, kh, kw, stride, pad int) {
	defer t.pace(time.Now())
	t.inner.Im2ColInto(out, x, kh, kw, stride, pad)
}

func (t Throttled) Col2ImInto(out, cols *Tensor, kh, kw, stride, pad int) {
	defer t.pace(time.Now())
	t.inner.Col2ImInto(out, cols, kh, kw, stride, pad)
}

func (t Throttled) ConvForwardInto(out, w, x *Tensor, kh, kw, stride, pad int) {
	defer t.pace(time.Now())
	t.inner.ConvForwardInto(out, w, x, kh, kw, stride, pad)
}

func (t Throttled) ConvGradWeightInto(out, grad, x *Tensor, kh, kw, stride, pad int) {
	defer t.pace(time.Now())
	t.inner.ConvGradWeightInto(out, grad, x, kh, kw, stride, pad)
}

var _ Backend = Throttled{}
