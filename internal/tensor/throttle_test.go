package tensor

import (
	"math/rand"
	"strings"
	"testing"
)

// TestThrottledBitIdentical is the straggler backend's contract: every
// kernel delegates to the inner backend untouched, so a throttled device
// computes exactly the same bits as an unthrottled one — only slower.
// The repartition equivalence tests rest on this.
func TestThrottledBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	inner := Serial{}
	th := NewThrottled(inner, 2)

	a := Rand(rng, -1, 1, 7, 5)
	b := Rand(rng, -1, 1, 5, 9)
	if got := MatMulWith(th, a, b); !got.Equal(MatMulWith(inner, a, b)) {
		t.Error("throttled MatMul diverges from inner backend")
	}

	e1 := Rand(rng, -2, 2, 6, 4)
	e2 := Rand(rng, -2, 2, 6, 4)
	for name, run := range map[string]func(be Backend) *Tensor{
		"Add":   func(be Backend) *Tensor { out := New(6, 4); be.Add(out, e1, e2); return out },
		"Sub":   func(be Backend) *Tensor { out := New(6, 4); be.Sub(out, e1, e2); return out },
		"Mul":   func(be Backend) *Tensor { out := New(6, 4); be.Mul(out, e1, e2); return out },
		"Scale": func(be Backend) *Tensor { out := e1.Clone(); be.Scale(out, out, -1.5); return out },
		"Axpy":  func(be Backend) *Tensor { out := e1.Clone(); be.Axpy(out, 0.25, e2); return out },
	} {
		if got, want := run(th), run(inner); !got.Equal(want) {
			t.Errorf("throttled %s diverges from inner backend", name)
		}
	}

	const n, c, h, w, k, stride, pad, outC = 2, 3, 8, 8, 3, 1, 1, 4
	x := Rand(rng, -1, 1, n, c, h, w)
	if got := Im2ColWith(th, x, k, k, stride, pad); !got.Equal(Im2ColWith(inner, x, k, k, stride, pad)) {
		t.Error("throttled Im2Col diverges from inner backend")
	}
	oh := ConvOutSize(h, k, stride, pad)
	ow := ConvOutSize(w, k, stride, pad)
	kw2 := Rand(rng, -1, 1, outC, c*k*k)
	grad := Rand(rng, -1, 1, outC, n*oh*ow)
	fwdT, fwdS := New(outC, n*oh*ow), New(outC, n*oh*ow)
	th.ConvForwardInto(fwdT, kw2, x, k, k, stride, pad)
	inner.ConvForwardInto(fwdS, kw2, x, k, k, stride, pad)
	if !fwdT.Equal(fwdS) {
		t.Error("throttled ConvForward diverges from inner backend")
	}
	dwT, dwS := New(outC, c*k*k), New(outC, c*k*k)
	th.ConvGradWeightInto(dwT, grad, x, k, k, stride, pad)
	inner.ConvGradWeightInto(dwS, grad, x, k, k, stride, pad)
	if !dwT.Equal(dwS) {
		t.Error("throttled ConvGradWeight diverges from inner backend")
	}
}

// TestThrottledName: the wrapped name advertises both the inner backend
// and the slowdown factor, so logs make stragglers identifiable.
func TestThrottledName(t *testing.T) {
	th := NewThrottled(Serial{}, 4)
	if got := th.Name(); !strings.Contains(got, "serial") || !strings.Contains(got, "slow4") {
		t.Fatalf("Name() = %q, want inner name and slow factor", got)
	}
}

// TestThrottledRejectsBadFactor: a factor below 1 is a programming error.
func TestThrottledRejectsBadFactor(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewThrottled(_, 0) did not panic")
		}
	}()
	NewThrottled(Serial{}, 0)
}
