package tensor

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// chunksPerWorker oversubscribes the chunk count relative to the worker
// count so uneven chunk costs (e.g. zero-skip sparsity) still balance.
const chunksPerWorker = 4

// Pool is a bounded worker pool for data-parallel kernels. Work is
// submitted as a fixed set of index-range chunks drained through a shared
// atomic cursor (a chunk queue with no work stealing): every runner —
// the submitting goroutine plus any idle workers — grabs the next chunk
// until the range is exhausted. Submission never blocks; when all workers
// are busy the submitter simply computes every chunk itself, so nested or
// concurrent ParallelFor calls (one per pipeline device) cannot deadlock.
//
// Workers are started lazily on first use and live for the life of the
// pool. A Pool is safe for concurrent use by multiple goroutines.
type Pool struct {
	workers int
	tasks   chan func()
	start   sync.Once
}

// NewPool returns a pool with the given number of workers; workers <= 0
// selects GOMAXPROCS.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers, tasks: make(chan func(), workers)}
}

// Workers returns the pool's worker count.
func (p *Pool) Workers() int { return p.workers }

// startWorkers spawns the long-lived workers (the submitting goroutine
// always participates, so only workers-1 extra goroutines are needed).
func (p *Pool) startWorkers() {
	p.start.Do(func() {
		for i := 1; i < p.workers; i++ {
			go func() {
				for task := range p.tasks {
					task()
				}
			}()
		}
	})
}

// ParallelFor partitions [0, n) into contiguous chunks of at least
// minChunk indices and runs body on each. Chunks are disjoint, so body
// may write its range without synchronization; ParallelFor returns only
// after every chunk has completed. Small ranges run inline.
func (p *Pool) ParallelFor(n, minChunk int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if minChunk < 1 {
		minChunk = 1
	}
	if p.workers == 1 || n <= minChunk {
		body(0, n)
		return
	}
	chunks := (n + minChunk - 1) / minChunk
	if lim := p.workers * chunksPerWorker; chunks > lim {
		chunks = lim
	}
	size := (n + chunks - 1) / chunks
	chunks = (n + size - 1) / size // recompute so every chunk is non-empty
	if chunks < 2 {
		body(0, n)
		return
	}
	p.startWorkers()

	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(chunks)
	runner := func() {
		for {
			c := int(next.Add(1)) - 1
			if c >= chunks {
				return
			}
			lo := c * size
			hi := lo + size
			if hi > n {
				hi = n
			}
			body(lo, hi)
			wg.Done()
		}
	}
	// Offer runners to idle workers without ever blocking; a runner that
	// fires after the range is drained exits immediately.
submit:
	for i := 1; i < p.workers && i < chunks; i++ {
		select {
		case p.tasks <- runner:
		default:
			break submit
		}
	}
	runner()
	wg.Wait()
}

var (
	sharedPoolMu sync.Mutex
	sharedPool   *Pool
)

// SharedPool returns the process-wide pool used by the default parallel
// backend, creating it sized by GOMAXPROCS on first use. One pool per
// process keeps total compute goroutines bounded no matter how many
// pipeline devices issue kernels concurrently.
func SharedPool() *Pool {
	sharedPoolMu.Lock()
	defer sharedPoolMu.Unlock()
	if sharedPool == nil {
		sharedPool = NewPool(0)
	}
	return sharedPool
}
