package tensor

// Parallel is a Backend that row-partitions GEMMs (and the other hot
// kernels) across a bounded worker pool. It is bit-identical to Serial:
// both run the same row-range kernels, and partitioning is only ever
// along dimensions that keep each output element's accumulation sequence
// on a single goroutine in the reference order.
type Parallel struct {
	pool *Pool
}

// NewParallel returns a parallel backend. workers <= 0 selects the shared
// process-wide pool sized by GOMAXPROCS — the recommended configuration,
// since it bounds total compute goroutines across all pipeline devices.
// workers > 0 builds a dedicated pool of that size (used by the
// -workers flag of cmd/pipebd and by tests).
func NewParallel(workers int) *Parallel {
	if workers <= 0 {
		return &Parallel{pool: SharedPool()}
	}
	return &Parallel{pool: NewPool(workers)}
}

// Name implements Backend.
func (*Parallel) Name() string { return "parallel" }

// Workers returns the size of the backing pool.
func (p *Parallel) Workers() int { return p.pool.Workers() }

// Grain sizes: a chunk must amortize the submission overhead (a closure
// enqueue plus two atomics), so each one carries at least this many
// multiply-adds (GEMM) or element visits (elementwise / reshape kernels).
const (
	gemmGrainFlops  = 1 << 15
	elemGrainElems  = 1 << 12
	im2colGrainElem = 1 << 13
)

// rowGrain converts a per-row cost into a minimum number of rows per
// chunk for the given total grain.
func rowGrain(perRow, grain int) int {
	if perRow <= 0 {
		return 1
	}
	g := grain / perRow
	if g < 1 {
		g = 1
	}
	return g
}

// MatMulInto implements Backend. On the packed path B is packed into
// panels once (the pack itself partitioned across workers) and the
// compute is partitioned by whole output row tiles over the shared
// panels, so packing cost is amortized across the pool.
func (p *Parallel) MatMulInto(out, a, b *Tensor) {
	m, k, n := matMulDims(a, b)
	checkOutShape("MatMulInto", out, m, n)
	matMulDriver(p.pool, out.data, a.data, b.data, m, k, n)
}

// MatMulTAInto implements Backend.
func (p *Parallel) MatMulTAInto(out, a, b *Tensor) {
	m, k, n := matMulTADims(a, b)
	checkOutShape("MatMulTAInto", out, m, n)
	matMulTADriver(p.pool, out.data, a.data, b.data, m, k, n)
}

// MatMulTBInto implements Backend.
func (p *Parallel) MatMulTBInto(out, a, b *Tensor) {
	m, k, n := matMulTBDims(a, b)
	checkOutShape("MatMulTBInto", out, m, n)
	matMulTBDriver(p.pool, out.data, a.data, b.data, m, k, n)
}

// MatMulBatchInto implements Backend: packing partitions over flat
// (instance, panel) indices and compute over flat (instance, tile)
// indices, so a batch of skinny GEMMs still feeds every worker.
func (p *Parallel) MatMulBatchInto(out, a, b *Tensor) {
	g, m, k, n := matMulBatchDims(a, b)
	checkBatchOutShape("MatMulBatchInto", out, g, m, n)
	matMulBatchDriverPlain(p.pool, out.data, a.data, b.data, g, m, k, n)
}

// MatMulTABatchInto implements Backend.
func (p *Parallel) MatMulTABatchInto(out, a, b *Tensor) {
	g, m, k, n := matMulTABatchDims(a, b)
	checkBatchOutShape("MatMulTABatchInto", out, g, m, n)
	matMulTABatchDriver(p.pool, out.data, a.data, b.data, g, m, k, n)
}

// MatMulTBBatchInto implements Backend.
func (p *Parallel) MatMulTBBatchInto(out, a, b *Tensor) {
	g, m, k, n := matMulTBBatchDims(a, b)
	checkBatchOutShape("MatMulTBBatchInto", out, g, m, n)
	matMulTBBatchDriver(p.pool, out.data, a.data, b.data, g, m, k, n)
}

// ConvForwardInto implements Backend: the fused im2col pack is
// partitioned across column panels, the GEMM across row tiles.
func (p *Parallel) ConvForwardInto(out, w, x *Tensor, kh, kw, stride, pad int) {
	g, m, k, n := checkConvForward(out, w, x, kh, kw, stride, pad)
	convForwardDriver(p.pool, out.data, w.data, x.data, g, m, k, n)
}

// ConvGradWeightInto implements Backend.
func (p *Parallel) ConvGradWeightInto(out, grad, x *Tensor, kh, kw, stride, pad int) {
	g, m, k, n := checkConvGradWeight(out, grad, x, kh, kw, stride, pad)
	convGradWeightDriver(p.pool, out.data, grad.data, x.data, g, m, k, n)
}

// Add implements Backend.
func (p *Parallel) Add(dst, a, b *Tensor) {
	checkElementwise3("Add", dst, a, b)
	p.pool.ParallelFor(len(dst.data), elemGrainElems, func(lo, hi int) {
		addRange(dst.data, a.data, b.data, lo, hi)
	})
}

// Sub implements Backend.
func (p *Parallel) Sub(dst, a, b *Tensor) {
	checkElementwise3("Sub", dst, a, b)
	p.pool.ParallelFor(len(dst.data), elemGrainElems, func(lo, hi int) {
		subRange(dst.data, a.data, b.data, lo, hi)
	})
}

// Mul implements Backend.
func (p *Parallel) Mul(dst, a, b *Tensor) {
	checkElementwise3("Mul", dst, a, b)
	p.pool.ParallelFor(len(dst.data), elemGrainElems, func(lo, hi int) {
		mulRange(dst.data, a.data, b.data, lo, hi)
	})
}

// Scale implements Backend.
func (p *Parallel) Scale(dst, a *Tensor, s float32) {
	mustSameShape("Scale", dst, a)
	p.pool.ParallelFor(len(dst.data), elemGrainElems, func(lo, hi int) {
		scaleRange(dst.data, a.data, s, lo, hi)
	})
}

// Axpy implements Backend.
func (p *Parallel) Axpy(dst *Tensor, alpha float32, src *Tensor) {
	mustSameShape("Axpy", dst, src)
	p.pool.ParallelFor(len(dst.data), elemGrainElems, func(lo, hi int) {
		axpyRange(dst.data, src.data, alpha, lo, hi)
	})
}

// Im2ColInto implements Backend. Rows of the column matrix are owned by
// single (channel, tap) pairs, so the row dimension partitions cleanly.
func (p *Parallel) Im2ColInto(out, x *Tensor, kh, kw, stride, pad int) {
	n, c, h, w, oh, ow := checkIm2ColOut(out, x, kh, kw, stride, pad)
	rows := c * kh * kw
	p.pool.ParallelFor(rows, rowGrain(n*oh*ow, im2colGrainElem), func(lo, hi int) {
		im2colRows(out.data, x.data, n, c, h, w, kh, kw, oh, ow, stride, pad, lo, hi)
	})
}

// Col2ImInto implements Backend. Accumulation only overlaps within one
// input channel, so the channel dimension partitions cleanly.
func (p *Parallel) Col2ImInto(out, cols *Tensor, kh, kw, stride, pad int) {
	n, c, h, w, oh, ow := checkCol2ImOut(out, cols, kh, kw, stride, pad)
	p.pool.ParallelFor(c, rowGrain(kh*kw*n*oh*ow, im2colGrainElem), func(lo, hi int) {
		col2imChannels(out.data, cols.data, n, c, h, w, kh, kw, oh, ow, stride, pad, lo, hi)
	})
}

var _ Backend = (*Parallel)(nil)
