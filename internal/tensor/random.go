package tensor

import (
	"math"
	"math/rand"
)

// Rand returns a tensor with elements drawn uniformly from [lo, hi) using
// the provided source, which makes results reproducible across runs.
func Rand(rng *rand.Rand, lo, hi float32, shape ...int) *Tensor {
	t := New(shape...)
	span := hi - lo
	for i := range t.data {
		t.data[i] = lo + span*rng.Float32()
	}
	return t
}

// Randn returns a tensor with elements drawn from N(mean, std²).
func Randn(rng *rand.Rand, mean, std float32, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = mean + std*float32(rng.NormFloat64())
	}
	return t
}

// KaimingNormal fills and returns a tensor with Kaiming-normal
// initialization for the given fan-in, the standard initializer for
// ReLU-activated convolutional and linear layers.
func KaimingNormal(rng *rand.Rand, fanIn int, shape ...int) *Tensor {
	std := float32(math.Sqrt(2.0 / float64(fanIn)))
	return Randn(rng, 0, std, shape...)
}

// XavierUniform fills and returns a tensor with Xavier-uniform
// initialization for the given fan-in and fan-out.
func XavierUniform(rng *rand.Rand, fanIn, fanOut int, shape ...int) *Tensor {
	limit := float32(math.Sqrt(6.0 / float64(fanIn+fanOut)))
	return Rand(rng, -limit, limit, shape...)
}
