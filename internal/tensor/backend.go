package tensor

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Backend is a pluggable implementation of the numeric engine's hot
// kernels: the GEMM family behind Linear and (via im2col) Conv, and the
// elementwise ops used by gradient accumulation and MixedOp.
//
// Contract: every Backend must be bit-identical to the serial reference.
// Implementations achieve this by partitioning work along dimensions that
// never split a single output element's accumulation (output rows for
// GEMMs, column-matrix rows for im2col, input channels for col2im, flat
// indices for elementwise ops), so the floating-point evaluation order of
// each element is invariant. The engine's equivalence suite relies on
// this: pipelined runs must reproduce sequential training bit-for-bit on
// any backend.
//
// Backends must be safe for concurrent use by multiple goroutines; the
// pipelined engine issues kernels from one goroutine per device.
type Backend interface {
	// Name returns the backend's registry name.
	Name() string

	// MatMulInto computes out = a·b (a: [m,k], b: [k,n], out: [m,n]).
	MatMulInto(out, a, b *Tensor)
	// MatMulTAInto computes out = aᵀ·b (a: [k,m], b: [k,n], out: [m,n]).
	MatMulTAInto(out, a, b *Tensor)
	// MatMulTBInto computes out = a·bᵀ (a: [m,k], b: [n,k], out: [m,n]).
	MatMulTBInto(out, a, b *Tensor)

	// MatMulBatchInto computes out[g] = a[g]·b[g] for every instance
	// (a: [G,m,k], b: [G,k,n], out: [G,m,n]). Instance g is bit-identical
	// to MatMulInto on the g-th slices; the batched form exists so
	// dispatch and packing amortize over the whole batch (attention's
	// skinny per-head GEMMs).
	MatMulBatchInto(out, a, b *Tensor)
	// MatMulTABatchInto computes out[g] = a[g]ᵀ·b[g]
	// (a: [G,k,m], b: [G,k,n], out: [G,m,n]).
	MatMulTABatchInto(out, a, b *Tensor)
	// MatMulTBBatchInto computes out[g] = a[g]·b[g]ᵀ
	// (a: [G,m,k], b: [G,n,k], out: [G,m,n]).
	MatMulTBBatchInto(out, a, b *Tensor)

	// Add computes dst = a + b elementwise; dst may alias a or b.
	Add(dst, a, b *Tensor)
	// Sub computes dst = a - b elementwise; dst may alias a or b.
	Sub(dst, a, b *Tensor)
	// Mul computes dst = a * b elementwise; dst may alias a or b.
	Mul(dst, a, b *Tensor)
	// Scale computes dst = a * s elementwise; dst may alias a.
	Scale(dst, a *Tensor, s float32)
	// Axpy computes dst += alpha*src elementwise.
	Axpy(dst *Tensor, alpha float32, src *Tensor)

	// Im2ColInto unfolds x (NCHW) into out ([C*KH*KW, N*OH*OW]),
	// overwriting out entirely.
	Im2ColInto(out, x *Tensor, kh, kw, stride, pad int)
	// Col2ImInto folds cols ([C*KH*KW, N*OH*OW]) into out (NCHW),
	// overwriting out entirely.
	Col2ImInto(out, cols *Tensor, kh, kw, stride, pad int)

	// ConvForwardInto computes out = w·im2col(x) — the Conv2d forward
	// GEMM fused with the im2col lowering, packing kernel taps straight
	// from the NCHW input so no column matrix is materialized.
	// w: [OutC, C*KH*KW], out: [OutC, N*OH*OW]. Bit-identical to
	// Im2ColInto followed by MatMulInto.
	ConvForwardInto(out, w, x *Tensor, kh, kw, stride, pad int)
	// ConvGradWeightInto computes out = grad·im2col(x)ᵀ — the Conv2d
	// weight-gradient GEMM, fused likewise. grad: [OutC, N*OH*OW],
	// out: [OutC, C*KH*KW]. Bit-identical to Im2ColInto followed by
	// MatMulTBInto.
	ConvGradWeightInto(out, grad, x *Tensor, kh, kw, stride, pad int)
}

// --- process default ---------------------------------------------------------

// backendBox works around atomic.Value's same-concrete-type requirement.
type backendBox struct{ be Backend }

var defaultBackend atomic.Value // backendBox

func init() {
	Register(Serial{})
	Register(NewParallel(0))
	defaultBackend.Store(backendBox{Serial{}})
}

// Default returns the process-default backend used by the package-level
// kernel functions. The initial default is the serial reference.
func Default() Backend { return defaultBackend.Load().(backendBox).be }

// SetDefault installs be as the process-default backend. It is safe to
// call concurrently with kernel execution, but for reproducible runs it
// should be called once at startup.
func SetDefault(be Backend) {
	if be == nil {
		panic("tensor: SetDefault(nil)")
	}
	defaultBackend.Store(backendBox{be})
}

// --- registry ----------------------------------------------------------------

var (
	registryMu sync.RWMutex
	registry   = map[string]Backend{}
)

// Register makes be selectable by name via Lookup. Re-registering a name
// replaces the previous backend.
func Register(be Backend) {
	registryMu.Lock()
	defer registryMu.Unlock()
	registry[be.Name()] = be
}

// Lookup returns the backend registered under name.
func Lookup(name string) (Backend, bool) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	be, ok := registry[name]
	return be, ok
}

// Backends returns the sorted names of all registered backends.
func Backends() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// --- serial reference backend ------------------------------------------------

// Serial is the single-threaded reference backend: the exact kernels the
// numeric-equivalence experiments were validated against. Every other
// backend is required to match it bit-for-bit.
type Serial struct{}

// Name implements Backend.
func (Serial) Name() string { return "serial" }

// MatMulInto implements Backend.
func (Serial) MatMulInto(out, a, b *Tensor) {
	m, k, n := matMulDims(a, b)
	checkOutShape("MatMulInto", out, m, n)
	matMulDriver(nil, out.data, a.data, b.data, m, k, n)
}

// MatMulTAInto implements Backend.
func (Serial) MatMulTAInto(out, a, b *Tensor) {
	m, k, n := matMulTADims(a, b)
	checkOutShape("MatMulTAInto", out, m, n)
	matMulTADriver(nil, out.data, a.data, b.data, m, k, n)
}

// MatMulTBInto implements Backend.
func (Serial) MatMulTBInto(out, a, b *Tensor) {
	m, k, n := matMulTBDims(a, b)
	checkOutShape("MatMulTBInto", out, m, n)
	matMulTBDriver(nil, out.data, a.data, b.data, m, k, n)
}

// MatMulBatchInto implements Backend.
func (Serial) MatMulBatchInto(out, a, b *Tensor) {
	g, m, k, n := matMulBatchDims(a, b)
	checkBatchOutShape("MatMulBatchInto", out, g, m, n)
	matMulBatchDriverPlain(nil, out.data, a.data, b.data, g, m, k, n)
}

// MatMulTABatchInto implements Backend.
func (Serial) MatMulTABatchInto(out, a, b *Tensor) {
	g, m, k, n := matMulTABatchDims(a, b)
	checkBatchOutShape("MatMulTABatchInto", out, g, m, n)
	matMulTABatchDriver(nil, out.data, a.data, b.data, g, m, k, n)
}

// MatMulTBBatchInto implements Backend.
func (Serial) MatMulTBBatchInto(out, a, b *Tensor) {
	g, m, k, n := matMulTBBatchDims(a, b)
	checkBatchOutShape("MatMulTBBatchInto", out, g, m, n)
	matMulTBBatchDriver(nil, out.data, a.data, b.data, g, m, k, n)
}

// ConvForwardInto implements Backend.
func (Serial) ConvForwardInto(out, w, x *Tensor, kh, kw, stride, pad int) {
	g, m, k, n := checkConvForward(out, w, x, kh, kw, stride, pad)
	convForwardDriver(nil, out.data, w.data, x.data, g, m, k, n)
}

// ConvGradWeightInto implements Backend.
func (Serial) ConvGradWeightInto(out, grad, x *Tensor, kh, kw, stride, pad int) {
	g, m, k, n := checkConvGradWeight(out, grad, x, kh, kw, stride, pad)
	convGradWeightDriver(nil, out.data, grad.data, x.data, g, m, k, n)
}

// Add implements Backend.
func (Serial) Add(dst, a, b *Tensor) {
	checkElementwise3("Add", dst, a, b)
	addRange(dst.data, a.data, b.data, 0, len(dst.data))
}

// Sub implements Backend.
func (Serial) Sub(dst, a, b *Tensor) {
	checkElementwise3("Sub", dst, a, b)
	subRange(dst.data, a.data, b.data, 0, len(dst.data))
}

// Mul implements Backend.
func (Serial) Mul(dst, a, b *Tensor) {
	checkElementwise3("Mul", dst, a, b)
	mulRange(dst.data, a.data, b.data, 0, len(dst.data))
}

// Scale implements Backend.
func (Serial) Scale(dst, a *Tensor, s float32) {
	mustSameShape("Scale", dst, a)
	scaleRange(dst.data, a.data, s, 0, len(dst.data))
}

// Axpy implements Backend.
func (Serial) Axpy(dst *Tensor, alpha float32, src *Tensor) {
	mustSameShape("Axpy", dst, src)
	axpyRange(dst.data, src.data, alpha, 0, len(dst.data))
}

// Im2ColInto implements Backend.
func (Serial) Im2ColInto(out, x *Tensor, kh, kw, stride, pad int) {
	n, c, h, w, oh, ow := checkIm2ColOut(out, x, kh, kw, stride, pad)
	im2colRows(out.data, x.data, n, c, h, w, kh, kw, oh, ow, stride, pad, 0, c*kh*kw)
}

// Col2ImInto implements Backend.
func (Serial) Col2ImInto(out, cols *Tensor, kh, kw, stride, pad int) {
	n, c, h, w, oh, ow := checkCol2ImOut(out, cols, kh, kw, stride, pad)
	col2imChannels(out.data, cols.data, n, c, h, w, kh, kw, oh, ow, stride, pad, 0, c)
}

func checkElementwise3(op string, dst, a, b *Tensor) {
	mustSameShape(op, dst, a)
	mustSameShape(op, dst, b)
}

func checkCol2ImOut(out, cols *Tensor, kh, kw, stride, pad int) (n, c, h, w, oh, ow int) {
	if len(out.shape) != 4 {
		panic(fmt.Sprintf("tensor: Col2ImInto requires NCHW output, got shape %v", out.shape))
	}
	n, c, h, w = out.shape[0], out.shape[1], out.shape[2], out.shape[3]
	oh, ow = checkCol2Im(cols, n, c, h, w, kh, kw, stride, pad)
	return n, c, h, w, oh, ow
}

var _ Backend = Serial{}
