package tensor

import "fmt"

// Batched GEMM: G independent products of identical shape, laid out as
// 3-D tensors with the instance index outermost. Attention is the
// motivating workload — per-(sample, head) score and context GEMMs are
// skinny (m ≈ sequence length, k ≈ head width), so a lone instance never
// clears the packed-path work threshold and the 2-D dispatch heuristic
// would strand the whole family on the reference kernels. The batched
// entry points judge the dispatch on the batch as a whole and amortize
// the packed engine's fixed costs (arena borrow, buffer sizing, pool
// submission) across all G instances.
//
// Bit-equivalence contract: instance g of a batched call is bit-identical
// to the corresponding 2-D call on the g-th slices — both paths run the
// same per-element accumulation sequence (see gemm.go), so dispatch stays
// a pure performance choice and every backend stays interchangeable.

// MatMulBatch returns the batch product a·b per instance
// (a: [G,m,k], b: [G,k,n] -> [G,m,n]) on the default backend.
func MatMulBatch(a, b *Tensor) *Tensor { return MatMulBatchWith(Default(), a, b) }

// MatMulBatchWith is MatMulBatch on an explicit backend.
func MatMulBatchWith(be Backend, a, b *Tensor) *Tensor {
	g, m, _, n := matMulBatchDims(a, b)
	out := New(g, m, n)
	be.MatMulBatchInto(out, a, b)
	return out
}

// MatMulTABatch returns aᵀ·b per instance
// (a: [G,k,m], b: [G,k,n] -> [G,m,n]) on the default backend.
func MatMulTABatch(a, b *Tensor) *Tensor { return MatMulTABatchWith(Default(), a, b) }

// MatMulTABatchWith is MatMulTABatch on an explicit backend.
func MatMulTABatchWith(be Backend, a, b *Tensor) *Tensor {
	g, m, _, n := matMulTABatchDims(a, b)
	out := New(g, m, n)
	be.MatMulTABatchInto(out, a, b)
	return out
}

// MatMulTBBatch returns a·bᵀ per instance
// (a: [G,m,k], b: [G,n,k] -> [G,m,n]) on the default backend.
func MatMulTBBatch(a, b *Tensor) *Tensor { return MatMulTBBatchWith(Default(), a, b) }

// MatMulTBBatchWith is MatMulTBBatch on an explicit backend.
func MatMulTBBatchWith(be Backend, a, b *Tensor) *Tensor {
	g, m, _, n := matMulTBBatchDims(a, b)
	out := New(g, m, n)
	be.MatMulTBBatchInto(out, a, b)
	return out
}

// --- shape validation --------------------------------------------------------

func matMulBatchDims(a, b *Tensor) (g, m, k, n int) {
	if len(a.shape) != 3 || len(b.shape) != 3 {
		panic(fmt.Sprintf("tensor: MatMulBatch requires 3-D tensors, got %v and %v", a.shape, b.shape))
	}
	g, m, k = a.shape[0], a.shape[1], a.shape[2]
	if b.shape[0] != g || b.shape[1] != k {
		panic(fmt.Sprintf("tensor: MatMulBatch shape mismatch %v x %v", a.shape, b.shape))
	}
	return g, m, k, b.shape[2]
}

func matMulTABatchDims(a, b *Tensor) (g, m, k, n int) {
	if len(a.shape) != 3 || len(b.shape) != 3 {
		panic(fmt.Sprintf("tensor: MatMulTABatch requires 3-D tensors, got %v and %v", a.shape, b.shape))
	}
	g, k, m = a.shape[0], a.shape[1], a.shape[2]
	if b.shape[0] != g || b.shape[1] != k {
		panic(fmt.Sprintf("tensor: MatMulTABatch shape mismatch %v x %v", a.shape, b.shape))
	}
	return g, m, k, b.shape[2]
}

func matMulTBBatchDims(a, b *Tensor) (g, m, k, n int) {
	if len(a.shape) != 3 || len(b.shape) != 3 {
		panic(fmt.Sprintf("tensor: MatMulTBBatch requires 3-D tensors, got %v and %v", a.shape, b.shape))
	}
	g, m, k = a.shape[0], a.shape[1], a.shape[2]
	if b.shape[0] != g || b.shape[2] != k {
		panic(fmt.Sprintf("tensor: MatMulTBBatch shape mismatch %v x %v", a.shape, b.shape))
	}
	return g, m, k, b.shape[1]
}

func checkBatchOutShape(op string, out *Tensor, g, m, n int) {
	if len(out.shape) != 3 || out.shape[0] != g || out.shape[1] != m || out.shape[2] != n {
		panic(fmt.Sprintf("tensor: %s output shape %v, want [%d %d %d]", op, out.shape, g, m, n))
	}
}

// --- dispatch ----------------------------------------------------------------

// gemmShouldPackBatch decides packed-vs-reference dispatch for a batch of
// g identically shaped GEMMs. One instance keeps the 2-D heuristic
// verbatim. For g > 1 the row floor relaxes to a single full register
// tile and the work threshold is judged on the whole batch: the packed
// engine's fixed per-call costs are paid once, so skinny-but-many shapes
// (per-head attention scores, m ≈ sequence length) amortize what a lone
// skinny call cannot. The decision depends only on the shape, never on
// the backend, so serial and parallel runs dispatch identically — and
// either path is bit-identical anyway.
func gemmShouldPackBatch(g, m, k, n int) bool {
	if g <= 1 {
		return gemmShouldPack(m, k, n)
	}
	return m >= mrTile && n >= nrTile && g*m*k*n >= packedMinWork
}

// --- driver ------------------------------------------------------------------

// matMulBatchDriver executes a batch of g m×k×n GEMMs. The per-variant
// hooks receive per-instance slices, so one driver serves all three
// operand layouts. Work is partitioned over flat (instance, row) or
// (instance, tile) indices — each output element's accumulation stays
// whole on one goroutine, preserving the bit-equivalence contract.
func matMulBatchDriver(pool *Pool, od, ad, bd []float32, g, m, k, n int,
	rowsRef func(odq, adq, bdq []float32, lo, hi int),
	packB func(bp, bdq []float32, pan0, pan1 int),
	packA func(ap, adq []float32, i0, rows, p0, p1 int)) {
	aStride, bStride, oStride := m*k, k*n, m*n
	if !gemmShouldPackBatch(g, m, k, n) {
		run := func(lo, hi int) {
			for r := lo; r < hi; {
				q, i0 := r/m, r%m
				rows := min(m-i0, hi-r)
				rowsRef(od[q*oStride:(q+1)*oStride], ad[q*aStride:(q+1)*aStride],
					bd[q*bStride:(q+1)*bStride], i0, i0+rows)
				r += rows
			}
		}
		if pool == nil {
			run(0, g*m)
			return
		}
		pool.ParallelFor(g*m, rowGrain(k*n, gemmGrainFlops), run)
		return
	}

	pans, tiles := panelsOf(n), tilesOf(m)
	bpStride := packedBLen(k, n)
	ar := getPackArena()
	bpT := ar.Get(g * bpStride)
	bp := bpT.data
	packRange := func(lo, hi int) {
		for f := lo; f < hi; {
			q, pan0 := f/pans, f%pans
			cnt := min(pans-pan0, hi-f)
			packB(bp[q*bpStride:(q+1)*bpStride], bd[q*bStride:(q+1)*bStride], pan0, pan0+cnt)
			f += cnt
		}
	}
	tileRange := func(ap []float32, lo, hi int) {
		for f := lo; f < hi; {
			q, t0 := f/tiles, f%tiles
			cnt := min(tiles-t0, hi-f)
			adq := ad[q*aStride : (q+1)*aStride]
			gemmPackedTilesInto(od[q*oStride:(q+1)*oStride], m, k, n,
				bp[q*bpStride:(q+1)*bpStride], t0, t0+cnt, ap,
				func(ap []float32, i0, rows, p0, p1 int) { packA(ap, adq, i0, rows, p0, p1) })
			f += cnt
		}
	}
	if pool == nil {
		apT := ar.Get(kcBlock * mrTile)
		packRange(0, g*pans)
		tileRange(apT.data, 0, g*tiles)
		ar.Release(apT)
	} else {
		pool.ParallelFor(g*pans, rowGrain(k*nrTile, elemGrainElems), packRange)
		pool.ParallelFor(g*tiles, rowGrain(mrTile*k*n, gemmGrainFlops), func(lo, hi int) {
			war := getPackArena()
			apT := war.Get(kcBlock * mrTile)
			tileRange(apT.data, lo, hi)
			war.Release(apT)
			putPackArena(war)
		})
	}
	ar.Release(bpT)
	putPackArena(ar)
}

func matMulBatchDriverPlain(pool *Pool, od, ad, bd []float32, g, m, k, n int) {
	matMulBatchDriver(pool, od, ad, bd, g, m, k, n,
		func(odq, adq, bdq []float32, lo, hi int) { matMulRowsRef(odq, adq, bdq, k, n, lo, hi) },
		func(bp, bdq []float32, pan0, pan1 int) { packBPanels(bp, bdq, k, n, pan0, pan1) },
		func(ap, adq []float32, i0, rows, p0, p1 int) { packATile(ap, adq, k, i0, rows, p0, p1) })
}

func matMulTABatchDriver(pool *Pool, od, ad, bd []float32, g, m, k, n int) {
	matMulBatchDriver(pool, od, ad, bd, g, m, k, n,
		func(odq, adq, bdq []float32, lo, hi int) { matMulTARowsRef(odq, adq, bdq, k, m, n, lo, hi) },
		func(bp, bdq []float32, pan0, pan1 int) { packBPanels(bp, bdq, k, n, pan0, pan1) },
		func(ap, adq []float32, i0, rows, p0, p1 int) { packATileT(ap, adq, m, i0, rows, p0, p1) })
}

func matMulTBBatchDriver(pool *Pool, od, ad, bd []float32, g, m, k, n int) {
	matMulBatchDriver(pool, od, ad, bd, g, m, k, n,
		func(odq, adq, bdq []float32, lo, hi int) { matMulTBRowsRef(odq, adq, bdq, k, n, lo, hi) },
		func(bp, bdq []float32, pan0, pan1 int) { packBPanelsTB(bp, bdq, k, n, pan0, pan1) },
		func(ap, adq []float32, i0, rows, p0, p1 int) { packATile(ap, adq, k, i0, rows, p0, p1) })
}
