package tensor

import (
	"math/rand"
	"testing"
)

// convNaive computes a direct convolution used as a reference against the
// im2col + matmul path.
func convNaive(x, w *Tensor, stride, pad int) *Tensor {
	n, c, h, wd := x.Shape()[0], x.Shape()[1], x.Shape()[2], x.Shape()[3]
	cout, _, kh, kw := w.Shape()[0], w.Shape()[1], w.Shape()[2], w.Shape()[3]
	oh := ConvOutSize(h, kh, stride, pad)
	ow := ConvOutSize(wd, kw, stride, pad)
	out := New(n, cout, oh, ow)
	for ni := 0; ni < n; ni++ {
		for co := 0; co < cout; co++ {
			for oi := 0; oi < oh; oi++ {
				for oj := 0; oj < ow; oj++ {
					var s float32
					for ci := 0; ci < c; ci++ {
						for ki := 0; ki < kh; ki++ {
							for kj := 0; kj < kw; kj++ {
								ih, iw := oi*stride-pad+ki, oj*stride-pad+kj
								if ih < 0 || ih >= h || iw < 0 || iw >= wd {
									continue
								}
								s += x.At(ni, ci, ih, iw) * w.At(co, ci, ki, kj)
							}
						}
					}
					out.Set(s, ni, co, oi, oj)
				}
			}
		}
	}
	return out
}

func TestConvOutSize(t *testing.T) {
	cases := []struct{ in, k, s, p, want int }{
		{32, 3, 1, 1, 32},
		{32, 3, 2, 1, 16},
		{224, 7, 2, 3, 112},
		{8, 2, 2, 0, 4},
		{5, 3, 1, 0, 3},
	}
	for _, c := range cases {
		if got := ConvOutSize(c.in, c.k, c.s, c.p); got != c.want {
			t.Errorf("ConvOutSize(%d,%d,%d,%d) = %d, want %d", c.in, c.k, c.s, c.p, got, c.want)
		}
	}
}

func TestIm2ColMatchesNaiveConv(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	configs := []struct{ n, c, h, w, cout, k, stride, pad int }{
		{1, 1, 4, 4, 1, 3, 1, 1},
		{2, 3, 8, 8, 4, 3, 1, 1},
		{1, 2, 7, 7, 3, 3, 2, 1},
		{2, 4, 6, 6, 2, 1, 1, 0},
		{1, 3, 9, 9, 2, 5, 2, 2},
	}
	for _, cfg := range configs {
		x := Rand(rng, -1, 1, cfg.n, cfg.c, cfg.h, cfg.w)
		w := Rand(rng, -1, 1, cfg.cout, cfg.c, cfg.k, cfg.k)
		oh := ConvOutSize(cfg.h, cfg.k, cfg.stride, cfg.pad)
		ow := ConvOutSize(cfg.w, cfg.k, cfg.stride, cfg.pad)

		cols := Im2Col(x, cfg.k, cfg.k, cfg.stride, cfg.pad)
		wm := w.Reshape(cfg.cout, cfg.c*cfg.k*cfg.k)
		flat := MatMul(wm, cols) // [cout, n*oh*ow]

		// Rearrange [cout, n*oh*ow] to NCHW.
		got := New(cfg.n, cfg.cout, oh, ow)
		for co := 0; co < cfg.cout; co++ {
			for ni := 0; ni < cfg.n; ni++ {
				for oi := 0; oi < oh; oi++ {
					for oj := 0; oj < ow; oj++ {
						got.Set(flat.At(co, (ni*oh+oi)*ow+oj), ni, co, oi, oj)
					}
				}
			}
		}
		want := convNaive(x, w, cfg.stride, cfg.pad)
		if !got.AllClose(want, 1e-4, 1e-4) {
			t.Fatalf("im2col conv mismatch for config %+v", cfg)
		}
	}
}

// TestCol2ImIsAdjointOfIm2Col checks <Im2Col(x), y> == <x, Col2Im(y)>,
// the defining property of an adjoint pair, which is exactly what the
// convolution backward pass relies on.
func TestCol2ImIsAdjointOfIm2Col(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 10; trial++ {
		n, c := 1+rng.Intn(2), 1+rng.Intn(3)
		h := 4 + rng.Intn(5)
		w := 4 + rng.Intn(5)
		k := 1 + 2*rng.Intn(2) // 1 or 3
		stride := 1 + rng.Intn(2)
		pad := rng.Intn(2)
		x := Rand(rng, -1, 1, n, c, h, w)
		cols := Im2Col(x, k, k, stride, pad)
		y := Rand(rng, -1, 1, cols.Shape()...)
		back := Col2Im(y, n, c, h, w, k, k, stride, pad)

		var lhs, rhs float64
		for i, v := range cols.Data() {
			lhs += float64(v) * float64(y.Data()[i])
		}
		for i, v := range x.Data() {
			rhs += float64(v) * float64(back.Data()[i])
		}
		if diff := lhs - rhs; diff > 1e-3 || diff < -1e-3 {
			t.Fatalf("adjoint property violated: %v vs %v (n=%d c=%d h=%d w=%d k=%d s=%d p=%d)",
				lhs, rhs, n, c, h, w, k, stride, pad)
		}
	}
}

func TestIm2ColShapes(t *testing.T) {
	x := New(2, 3, 8, 8)
	cols := Im2Col(x, 3, 3, 2, 1)
	oh := ConvOutSize(8, 3, 2, 1)
	if cols.Shape()[0] != 3*3*3 || cols.Shape()[1] != 2*oh*oh {
		t.Fatalf("Im2Col shape = %v", cols.Shape())
	}
}

func TestIm2ColPanicsOnNonNCHW(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Im2Col(New(3, 3), 3, 3, 1, 1)
}

func TestCol2ImPanicsOnWrongShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Col2Im(New(5, 5), 1, 1, 4, 4, 3, 3, 1, 1)
}
