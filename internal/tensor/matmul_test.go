package tensor

import (
	"math/rand"
	"testing"
)

// matMulNaive is an independent reference implementation used to validate
// the optimized kernels.
func matMulNaive(a, b *Tensor) *Tensor {
	m, k := a.Shape()[0], a.Shape()[1]
	n := b.Shape()[1]
	out := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float32
			for p := 0; p < k; p++ {
				s += a.At(i, p) * b.At(p, j)
			}
			out.Set(s, i, j)
		}
	}
	return out
}

func TestMatMulKnownValues(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float32{7, 8, 9, 10, 11, 12}, 3, 2)
	got := MatMul(a, b)
	want := FromSlice([]float32{58, 64, 139, 154}, 2, 2)
	if !got.Equal(want) {
		t.Fatalf("MatMul = %v, want %v", got, want)
	}
}

func TestMatMulAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		m, k, n := 1+rng.Intn(10), 1+rng.Intn(10), 1+rng.Intn(10)
		a := Rand(rng, -2, 2, m, k)
		b := Rand(rng, -2, 2, k, n)
		got := MatMul(a, b)
		want := matMulNaive(a, b)
		if !got.AllClose(want, 1e-5, 1e-5) {
			t.Fatalf("MatMul mismatch for %dx%dx%d", m, k, n)
		}
	}
}

func TestMatMulTAEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 20; trial++ {
		m, k, n := 1+rng.Intn(8), 1+rng.Intn(8), 1+rng.Intn(8)
		a := Rand(rng, -2, 2, k, m) // note: transposed layout
		b := Rand(rng, -2, 2, k, n)
		got := MatMulTA(a, b)
		want := MatMul(Transpose2D(a), b)
		if !got.AllClose(want, 1e-5, 1e-5) {
			t.Fatalf("MatMulTA mismatch for %dx%dx%d", m, k, n)
		}
	}
}

func TestMatMulTBEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 20; trial++ {
		m, k, n := 1+rng.Intn(8), 1+rng.Intn(8), 1+rng.Intn(8)
		a := Rand(rng, -2, 2, m, k)
		b := Rand(rng, -2, 2, n, k) // note: transposed layout
		got := MatMulTB(a, b)
		want := MatMul(a, Transpose2D(b))
		if !got.AllClose(want, 1e-5, 1e-5) {
			t.Fatalf("MatMulTB mismatch for %dx%dx%d", m, k, n)
		}
	}
}

func TestMatMulIdentityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 10; trial++ {
		n := 1 + rng.Intn(12)
		eye := New(n, n)
		for i := 0; i < n; i++ {
			eye.Set(1, i, i)
		}
		x := Rand(rng, -3, 3, n, n)
		if !MatMul(eye, x).AllClose(x, 1e-6, 1e-6) || !MatMul(x, eye).AllClose(x, 1e-6, 1e-6) {
			t.Fatalf("identity property failed for n=%d", n)
		}
	}
}

func TestMatMulShapePanics(t *testing.T) {
	a, b := New(2, 3), New(4, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on inner dimension mismatch")
		}
	}()
	MatMul(a, b)
}

func TestMatMulIntoOutputShapePanic(t *testing.T) {
	a, b := New(2, 3), New(3, 4)
	out := New(2, 5)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on wrong output shape")
		}
	}()
	MatMulInto(out, a, b)
}
