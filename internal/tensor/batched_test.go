package tensor

import (
	"fmt"
	"math/rand"
	"testing"
)

// Adversarial batched shapes: skinny attention-style instances (m ≈
// sequence length, k ≈ head width) that individually fall below the 2-D
// packed-path thresholds but clear the batch threshold, degenerate
// seq-len-1 instances, primes, single-instance batches (which must
// dispatch exactly like the 2-D heuristic), and batches straddling both
// sides of gemmShouldPackBatch.
var adversarialBatchShapes = []struct{ g, m, k, n int }{
	{1, 1, 1, 1},
	{1, 13, 17, 19},  // g=1: must behave like the 2-D call
	{1, 64, 300, 65}, // g=1 on the packed path
	{2, 1, 3, 2},     // seq-len-1 instances
	{3, 1, 8, 1},
	{16, 16, 8, 16}, // per-head attention scores: skinny but many
	{16, 16, 16, 8}, // per-head attention context
	{8, 4, 8, 8},    // exactly the relaxed row floor
	{8, 3, 8, 8},    // one row below it: reference path
	{5, 7, 11, 13},  // primes
	{4, 5, 300, 9},  // k spanning kcBlock boundaries
	{2, 31, 64, 33},
	{32, 2, 2, 2}, // many tiny instances below any threshold
}

// batchRef computes the per-instance reference result for a batched op.
func batchRef(g, m, n int, inst func(q int, od []float32)) *Tensor {
	out := New(g, m, n)
	for q := 0; q < g; q++ {
		inst(q, out.data[q*m*n:(q+1)*m*n])
	}
	return out
}

// TestBatchedGemmMatchesReferenceBits pins every batched entry point
// bit-for-bit to instance-by-instance reference kernels across both
// backends, both dispatch paths, and adversarial values (±0, NaN, ±Inf).
func TestBatchedGemmMatchesReferenceBits(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	backends := []Backend{Serial{}, NewParallel(3)}
	for _, s := range adversarialBatchShapes {
		for which := 0; which < 3; which++ {
			a := New(s.g, s.m, s.k)
			b := New(s.g, s.k, s.n)
			aT := New(s.g, s.k, s.m)
			bT := New(s.g, s.n, s.k)
			fillAdversarial(rng, a, which)
			fillAdversarial(rng, b, which+1)
			// Per-instance transposes so TA/TB see the same products.
			for q := 0; q < s.g; q++ {
				for i := 0; i < s.m; i++ {
					for p := 0; p < s.k; p++ {
						aT.data[q*s.k*s.m+p*s.m+i] = a.data[q*s.m*s.k+i*s.k+p]
					}
				}
				for p := 0; p < s.k; p++ {
					for j := 0; j < s.n; j++ {
						bT.data[q*s.n*s.k+j*s.k+p] = b.data[q*s.k*s.n+p*s.n+j]
					}
				}
			}

			ref := batchRef(s.g, s.m, s.n, func(q int, od []float32) {
				matMulRowsRef(od, a.data[q*s.m*s.k:], b.data[q*s.k*s.n:], s.k, s.n, 0, s.m)
			})
			refTA := batchRef(s.g, s.m, s.n, func(q int, od []float32) {
				matMulTARowsRef(od, aT.data[q*s.k*s.m:], b.data[q*s.k*s.n:], s.k, s.m, s.n, 0, s.m)
			})
			refTB := batchRef(s.g, s.m, s.n, func(q int, od []float32) {
				matMulTBRowsRef(od, a.data[q*s.m*s.k:], bT.data[q*s.n*s.k:], s.k, s.n, 0, s.m)
			})

			for _, be := range backends {
				label := fmt.Sprintf("g=%d m=%d k=%d n=%d specials=%d be=%s",
					s.g, s.m, s.k, s.n, which, be.Name())
				if diff := bitsDiff(MatMulBatchWith(be, a, b), ref); diff != "" {
					t.Errorf("MatMulBatch != reference (%s): %s", label, diff)
				}
				if diff := bitsDiff(MatMulTABatchWith(be, aT, b), refTA); diff != "" {
					t.Errorf("MatMulTABatch != reference (%s): %s", label, diff)
				}
				if diff := bitsDiff(MatMulTBBatchWith(be, a, bT), refTB); diff != "" {
					t.Errorf("MatMulTBBatch != reference (%s): %s", label, diff)
				}
			}
		}
	}
}

// TestBatchedMatchesLoopOf2D pins the batched entry points against a loop
// of the public 2-D calls on the same backend: a batched call must be a
// pure fusion, never a numeric change, whichever side of the dispatch
// heuristic either form lands on.
func TestBatchedMatchesLoopOf2D(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	backends := []Backend{Serial{}, NewParallel(3)}
	for _, s := range adversarialBatchShapes {
		a := Rand(rng, -1, 1, s.g, s.m, s.k)
		b := Rand(rng, -1, 1, s.g, s.k, s.n)
		want := New(s.g, s.m, s.n)
		for q := 0; q < s.g; q++ {
			aq := FromSlice(a.data[q*s.m*s.k:(q+1)*s.m*s.k], s.m, s.k)
			bq := FromSlice(b.data[q*s.k*s.n:(q+1)*s.k*s.n], s.k, s.n)
			copy(want.data[q*s.m*s.n:], MatMul(aq, bq).data)
		}
		for _, be := range backends {
			got := MatMulBatchWith(be, a, b)
			if diff := bitsDiff(got, want); diff != "" {
				t.Errorf("%s batched != loop-of-2D (g=%d m=%d k=%d n=%d): %s",
					be.Name(), s.g, s.m, s.k, s.n, diff)
			}
		}
	}
}

// TestGemmShouldPackBatch pins the dispatch heuristic's shape: g=1
// defers to the 2-D rule, larger batches relax the row floor to one
// register tile and judge work on the whole batch.
func TestGemmShouldPackBatch(t *testing.T) {
	cases := []struct {
		g, m, k, n int
		want       bool
	}{
		{1, 16, 16, 8, gemmShouldPack(16, 16, 8)},
		{16, 16, 8, 16, true},  // attention scores: 32k MACs across the batch
		{16, 4, 8, 8, false},   // batch work below threshold
		{64, 4, 16, 8, true},   // exactly at the relaxed floor, enough work
		{64, 3, 16, 8, false},  // below the row floor
		{64, 4, 16, 7, false},  // below the panel width
		{2, 128, 64, 64, true}, // big instances stay packed
	}
	for _, c := range cases {
		if got := gemmShouldPackBatch(c.g, c.m, c.k, c.n); got != c.want {
			t.Errorf("gemmShouldPackBatch(%d,%d,%d,%d) = %v, want %v", c.g, c.m, c.k, c.n, got, c.want)
		}
	}
}
