//go:build amd64

package tensor

// asmMicroAvailable reports that this build has an assembly microkernel.
const asmMicroAvailable = true

// useAsmMicro selects the SSE microkernel for full register tiles. It is
// a package variable (not a constant) so the bit-equivalence suite can
// force the generic path and pin the two implementations identical; the
// kernels themselves are bit-equal by construction, so flipping it never
// changes results.
var useAsmMicro = true

// microKernelSSE is the assembly microkernel (gemm_amd64.s): a full
// mrTile×nrTile register tile using baseline SSE — each of the eight
// output columns occupies one vector lane, so every lane performs exactly
// the scalar ascending-p multiply/add sequence and the result is
// bit-identical to microGeneric. accumulate is 0 (tile starts at zero)
// or 1 (tile resumes from the values in out).
//
//go:noescape
func microKernelSSE(out *float32, ldo int, ap, bp *float32, pc int, accumulate int)

// microKernel computes one full mrTile×nrTile tile from packed strips.
func microKernel(od []float32, ldo int, ap, bp []float32, pc int, accumulate bool) {
	if useAsmMicro {
		acc := 0
		if accumulate {
			acc = 1
		}
		microKernelSSE(&od[0], ldo, &ap[0], &bp[0], pc, acc)
		return
	}
	microGeneric(od, ldo, ap, bp, pc, mrTile, nrTile, accumulate)
}
