package tensor

// Arena recycles scratch tensors across training steps. Blockwise
// distillation re-runs the same shapes every step, so the im2col column
// matrices and gradient temporaries that dominate steady-state
// allocations can be handed back after each use and reused on the next:
// after warm-up, a layer's hot path allocates nothing.
//
// An Arena is deliberately not safe for concurrent use; the engine keeps
// one per device goroutine and each layer keeps its own. Released tensors
// must not be referenced again by the caller — Get may hand the same
// backing array to the next request of equal element count.
type Arena struct {
	free map[int][]*Tensor // released tensors, keyed by element count
}

// NewArena returns an empty arena.
func NewArena() *Arena { return &Arena{free: map[int][]*Tensor{}} }

// Get returns a tensor of the given shape, reusing a released buffer of
// equal element count when one is available. The contents are
// unspecified; use GetZeroed when the kernel does not overwrite the whole
// buffer.
func (a *Arena) Get(shape ...int) *Tensor {
	n := checkShape(shape)
	if list := a.free[n]; len(list) > 0 {
		t := list[len(list)-1]
		list[len(list)-1] = nil
		a.free[n] = list[:len(list)-1]
		t.shape = append(t.shape[:0], shape...)
		return t
	}
	return New(shape...)
}

// GetZeroed is Get with the buffer cleared.
func (a *Arena) GetZeroed(shape ...int) *Tensor {
	t := a.Get(shape...)
	t.Zero()
	return t
}

// Release returns tensors to the arena for reuse. nil entries are
// ignored, so callers can release not-yet-allocated scratch fields
// unconditionally. Releasing a tensor twice, or releasing one that is
// still referenced elsewhere, corrupts later computations — release only
// buffers the arena's owner obtained from Get and no longer reads.
func (a *Arena) Release(ts ...*Tensor) {
	for _, t := range ts {
		if t == nil {
			continue
		}
		n := len(t.data)
		a.free[n] = append(a.free[n], t)
	}
}
