package tensor

import "sync"

// Packed GEMM engine. The kernel family (MatMul, MatMulTA, MatMulTB and
// the fused im2col GEMMs) is built from one register-blocked microkernel
// operating on panel-packed operands:
//
//   - B is packed into column panels of width nrTile: panel j holds
//     output columns [j*nrTile, (j+1)*nrTile) with element (p, c) at
//     offset p*nrTile+c, so the microkernel streams it sequentially.
//     Partial trailing panels are zero-padded to full width.
//   - A is packed per output row tile into an interleaved [kc][mrTile]
//     strip, again giving the microkernel unit-stride loads.
//   - The microkernel computes an mrTile×nrTile register tile, adding
//     terms for every output element in ascending-p order. kcBlock splits
//     the reduction so the active packed strips stay cache resident;
//     between blocks the tile is spilled to the output and reloaded,
//     which does not change any intermediate rounding.
//
// Bit-equivalence contract: for every output element the sequence of
// floating-point operations — one multiply and one add per p, terms in
// ascending-p order starting from zero — is identical across the
// reference kernels (matmul.go), the generic microkernel, and the SSE
// microkernel (gemm_amd64.s, which vectorizes across output columns so
// each lane is exactly the scalar sequence). Packing only moves values.
// The serial and parallel backends therefore stay bit-identical, and so
// does every dispatch decision between the packed and reference paths.
const (
	// mrTile × nrTile is the register tile: 4 output rows × 8 output
	// columns (two SSE vectors) per microkernel invocation.
	mrTile = 4
	nrTile = 8

	// kcBlock tiles the reduction dimension so the packed strips of A
	// (kcBlock*mrTile floats) and the active B panel stay cache
	// resident. Blocks ascend, so per-element accumulation order is
	// unchanged.
	kcBlock = 256

	// packedMinWork is the m*k*n multiply-add count below which packing
	// overhead outweighs the microkernel win and the reference kernels
	// run directly. Both sides of the threshold are bit-identical, so
	// the cutoff is purely a performance choice.
	packedMinWork = 1 << 15

	// packedMinRows is the minimum output-row count for the packed path:
	// the B-panel pack costs O(k·n) and amortizes over m/mrTile row
	// tiles, so skinny outputs (measured: the tiny workbench's m≈6 conv
	// GEMMs) run faster on the reference kernels.
	packedMinRows = 2 * mrTile
)

// packArenas recycles packing buffers across GEMM calls and goroutines:
// each kernel invocation borrows an Arena (scratch tensors keyed by
// element count, see arena.go), so steady-state GEMMs allocate nothing.
var packArenas = sync.Pool{New: func() any { return NewArena() }}

func getPackArena() *Arena  { return packArenas.Get().(*Arena) }
func putPackArena(a *Arena) { packArenas.Put(a) }

// gemmShouldPack reports whether an m×k×n GEMM takes the packed path.
// The decision depends only on the problem shape, never on the backend,
// so serial and parallel runs dispatch identically.
func gemmShouldPack(m, k, n int) bool {
	return m >= packedMinRows && n >= nrTile && m*k*n >= packedMinWork
}

// panelsOf returns the number of column panels covering n output
// columns, including a zero-padded trailing partial panel.
func panelsOf(n int) int { return (n + nrTile - 1) / nrTile }

// tilesOf returns the number of row tiles covering m output rows.
func tilesOf(m int) int { return (m + mrTile - 1) / mrTile }

// packedBLen is the element count of a packed-B buffer for a [k, n]
// operand: every panel is padded to full nrTile width.
func packedBLen(k, n int) int { return panelsOf(n) * nrTile * k }

// --- operand packing ---------------------------------------------------------

// packBPanels packs panels [pan0,pan1) of a row-major [k, n] operand.
func packBPanels(bp, bd []float32, k, n, pan0, pan1 int) {
	for pan := pan0; pan < pan1; pan++ {
		j0 := pan * nrTile
		w := min(nrTile, n-j0)
		dst := bp[pan*k*nrTile:]
		if w == nrTile {
			for p := 0; p < k; p++ {
				s := bd[p*n+j0 : p*n+j0+nrTile : p*n+j0+nrTile]
				d := dst[p*nrTile : p*nrTile+nrTile : p*nrTile+nrTile]
				d[0], d[1], d[2], d[3] = s[0], s[1], s[2], s[3]
				d[4], d[5], d[6], d[7] = s[4], s[5], s[6], s[7]
			}
			continue
		}
		for p := 0; p < k; p++ {
			d := dst[p*nrTile : (p+1)*nrTile]
			c := copy(d, bd[p*n+j0:p*n+j0+w])
			for ; c < nrTile; c++ {
				d[c] = 0
			}
		}
	}
}

// packBPanelsTB packs panels [pan0,pan1) of a [n, k] operand whose
// transpose is the GEMM's B (the MatMulTB layout): element (p, c) of
// panel j is bd[(j*nrTile+c)*k + p].
func packBPanelsTB(bp, bd []float32, k, n, pan0, pan1 int) {
	for pan := pan0; pan < pan1; pan++ {
		j0 := pan * nrTile
		w := min(nrTile, n-j0)
		dst := bp[pan*k*nrTile : (pan+1)*k*nrTile]
		for c := 0; c < w; c++ {
			src := bd[(j0+c)*k : (j0+c+1)*k]
			for p, v := range src {
				dst[p*nrTile+c] = v
			}
		}
		for c := w; c < nrTile; c++ {
			for p := 0; p < k; p++ {
				dst[p*nrTile+c] = 0
			}
		}
	}
}

// packATile packs rows [i0, i0+rows) × reduction range [p0, p1) of a
// row-major operand with row stride lda into the interleaved [pc][mrTile]
// strip the microkernel consumes. Rows beyond the matrix (partial tiles)
// are zero-padded; the pad lanes are discarded by the edge microkernel
// and multiply against packed data only, so they never affect results.
func packATile(ap, ad []float32, lda, i0, rows, p0, p1 int) {
	pc := p1 - p0
	for r := 0; r < mrTile; r++ {
		if r >= rows {
			for p := 0; p < pc; p++ {
				ap[p*mrTile+r] = 0
			}
			continue
		}
		src := ad[(i0+r)*lda+p0 : (i0+r)*lda+p1]
		for p, v := range src {
			ap[p*mrTile+r] = v
		}
	}
}

// packATileT is packATile for a [k, m] operand read along columns (the
// MatMulTA layout): output row i is column i of the operand.
func packATileT(ap, ad []float32, m, i0, rows, p0, p1 int) {
	for p := p0; p < p1; p++ {
		base := p * m
		d := ap[(p-p0)*mrTile : (p-p0+1)*mrTile]
		for r := 0; r < rows; r++ {
			d[r] = ad[base+i0+r]
		}
		for r := rows; r < mrTile; r++ {
			d[r] = 0
		}
	}
}

// --- microkernels ------------------------------------------------------------

// microGeneric computes a rows×w output tile from packed strips in pure
// Go: the portable fallback and the edge-tile kernel. The per-element
// loop is the canonical accumulation sequence (ascending p, one multiply
// and one add per term).
func microGeneric(od []float32, ldo int, ap, bp []float32, pc, rows, w int, accumulate bool) {
	for r := 0; r < rows; r++ {
		orow := od[r*ldo : r*ldo+w]
		for c := range orow {
			var s float32
			if accumulate {
				s = orow[c]
			}
			for p := 0; p < pc; p++ {
				s += ap[p*mrTile+r] * bp[p*nrTile+c]
			}
			orow[c] = s
		}
	}
}

// --- drivers -----------------------------------------------------------------

// gemmPackedTiles computes output row tiles [t0, t1) of an m×n GEMM from
// pre-packed B panels. packA fills the caller-provided strip with one A
// tile per (row tile, kc block); partitioning by whole row tiles keeps
// every output element's accumulation on a single goroutine.
func gemmPackedTiles(od []float32, m, k, n int, bp []float32, t0, t1 int,
	packA func(ap []float32, i0, rows, p0, p1 int)) {
	ar := getPackArena()
	apT := ar.Get(kcBlock * mrTile)
	gemmPackedTilesInto(od, m, k, n, bp, t0, t1, apT.data, packA)
	ar.Release(apT)
	putPackArena(ar)
}

// gemmPackedTilesInto is gemmPackedTiles with a caller-provided A strip
// (kcBlock*mrTile floats): batched drivers hoist the arena borrow once
// per batch instead of once per instance.
func gemmPackedTilesInto(od []float32, m, k, n int, bp []float32, t0, t1 int, ap []float32,
	packA func(ap []float32, i0, rows, p0, p1 int)) {
	pans := panelsOf(n)
	for t := t0; t < t1; t++ {
		i0 := t * mrTile
		rows := min(mrTile, m-i0)
		for p0 := 0; p0 < k; p0 += kcBlock {
			p1 := min(p0+kcBlock, k)
			packA(ap, i0, rows, p0, p1)
			pc := p1 - p0
			acc := p0 > 0
			for pan := 0; pan < pans; pan++ {
				j0 := pan * nrTile
				w := min(nrTile, n-j0)
				bpan := bp[pan*k*nrTile+p0*nrTile:]
				out := od[i0*n+j0:]
				if rows == mrTile && w == nrTile {
					microKernel(out, n, ap, bpan, pc, acc)
				} else {
					microGeneric(out, n, ap, bpan, pc, rows, w, acc)
				}
			}
		}
	}
}

// gemmRun executes a packed GEMM end to end: pack B into panels, then
// sweep row tiles. With a nil pool it runs serially; with a pool it
// partitions the pack across panels and the compute across row tiles, so
// panel packing is done once and amortized over all workers.
func gemmRun(pool *Pool, od []float32, m, k, n int,
	packB func(bp []float32, pan0, pan1 int),
	packA func(ap []float32, i0, rows, p0, p1 int)) {
	ar := getPackArena()
	bpT := ar.Get(packedBLen(k, n))
	bp := bpT.data
	pans := panelsOf(n)
	tiles := tilesOf(m)
	if pool == nil {
		packB(bp, 0, pans)
		gemmPackedTiles(od, m, k, n, bp, 0, tiles, packA)
	} else {
		pool.ParallelFor(pans, rowGrain(k*nrTile, elemGrainElems), func(lo, hi int) {
			packB(bp, lo, hi)
		})
		pool.ParallelFor(tiles, rowGrain(mrTile*k*n, gemmGrainFlops), func(lo, hi int) {
			gemmPackedTiles(od, m, k, n, bp, lo, hi, packA)
		})
	}
	ar.Release(bpT)
	putPackArena(ar)
}
