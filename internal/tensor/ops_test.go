package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randVec builds a small deterministic tensor from quick-generated values.
func vecFrom(vals []float32) *Tensor {
	if len(vals) == 0 {
		vals = []float32{0}
	}
	clean := make([]float32, len(vals))
	for i, v := range vals {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			v = 0
		}
		// Keep magnitudes small so float32 arithmetic stays exact enough.
		clean[i] = float32(math.Mod(float64(v), 100))
	}
	return FromSlice(clean, len(clean))
}

func TestAddSubMulScale(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	b := FromSlice([]float32{10, 20, 30, 40}, 2, 2)
	if got := Add(a, b); !got.Equal(FromSlice([]float32{11, 22, 33, 44}, 2, 2)) {
		t.Fatalf("Add = %v", got)
	}
	if got := Sub(b, a); !got.Equal(FromSlice([]float32{9, 18, 27, 36}, 2, 2)) {
		t.Fatalf("Sub = %v", got)
	}
	if got := Mul(a, b); !got.Equal(FromSlice([]float32{10, 40, 90, 160}, 2, 2)) {
		t.Fatalf("Mul = %v", got)
	}
	if got := Scale(a, 0.5); !got.Equal(FromSlice([]float32{0.5, 1, 1.5, 2}, 2, 2)) {
		t.Fatalf("Scale = %v", got)
	}
}

func TestAddCommutativeProperty(t *testing.T) {
	f := func(vals []float32) bool {
		a, b := vecFrom(vals), vecFrom(vals)
		ScaleInPlace(b, 3)
		return Add(a, b).Equal(Add(b, a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSubOfSelfIsZeroProperty(t *testing.T) {
	f := func(vals []float32) bool {
		a := vecFrom(vals)
		d := Sub(a, a)
		for _, v := range d.Data() {
			if v != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddIntoAxpyInto(t *testing.T) {
	a := FromSlice([]float32{1, 2}, 2)
	b := FromSlice([]float32{3, 4}, 2)
	AddInto(a, b)
	if !a.Equal(FromSlice([]float32{4, 6}, 2)) {
		t.Fatalf("AddInto = %v", a)
	}
	AxpyInto(a, -2, b)
	if !a.Equal(FromSlice([]float32{-2, -2}, 2)) {
		t.Fatalf("AxpyInto = %v", a)
	}
}

func TestShapeMismatchPanics(t *testing.T) {
	a, b := New(2, 2), New(4)
	for name, fn := range map[string]func(){
		"Add":      func() { Add(a, b) },
		"Sub":      func() { Sub(a, b) },
		"Mul":      func() { Mul(a, b) },
		"AddInto":  func() { AddInto(a, b) },
		"AxpyInto": func() { AxpyInto(a, 1, b) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s with mismatched shapes did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestSumMeanMaxAbs(t *testing.T) {
	x := FromSlice([]float32{-3, 1, 2}, 3)
	if got := Sum(x); got != 0 {
		t.Fatalf("Sum = %v", got)
	}
	if got := Mean(x); got != 0 {
		t.Fatalf("Mean = %v", got)
	}
	if got := MaxAbs(x); got != 3 {
		t.Fatalf("MaxAbs = %v", got)
	}
}

func TestArgMaxRow(t *testing.T) {
	x := FromSlice([]float32{1, 5, 2, 9, 0, 3}, 2, 3)
	got := ArgMaxRow(x)
	if got[0] != 1 || got[1] != 0 {
		t.Fatalf("ArgMaxRow = %v, want [1 0]", got)
	}
	tie := FromSlice([]float32{2, 2}, 1, 2)
	if ArgMaxRow(tie)[0] != 0 {
		t.Fatal("ties must resolve to lowest index")
	}
}

func TestTranspose2D(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	got := Transpose2D(x)
	want := FromSlice([]float32{1, 4, 2, 5, 3, 6}, 3, 2)
	if !got.Equal(want) {
		t.Fatalf("Transpose2D = %v", got)
	}
}

func TestTransposeInvolutionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		r, c := 1+rng.Intn(8), 1+rng.Intn(8)
		x := Rand(rng, -5, 5, r, c)
		if !Transpose2D(Transpose2D(x)).Equal(x) {
			t.Fatalf("transpose(transpose(x)) != x for %dx%d", r, c)
		}
	}
}

func TestL2Norm(t *testing.T) {
	x := FromSlice([]float32{3, 4}, 2)
	if got := L2Norm(x); math.Abs(got-5) > 1e-9 {
		t.Fatalf("L2Norm = %v, want 5", got)
	}
}
