package tensor_test

// Kernel benchmarks live in the shared registry (internal/bench) so this
// harness and cmd/pipebd-bench measure identical definitions; this file
// only adapts them to go test -bench. At GOMAXPROCS >= 4 the parallel
// backend is expected to beat serial on the larger GEMMs; on a
// single-core host the two collapse to the same packed kernels.

import (
	"fmt"
	"testing"

	"pipebd/internal/bench"
)

func runCases(b *testing.B, cases []bench.Case) {
	for _, c := range cases {
		c := c
		b.Run(fmt.Sprintf("%s/%s", c.Name, c.Backend), func(b *testing.B) {
			if c.Bytes > 0 {
				b.SetBytes(c.Bytes)
			}
			c.Run(b)
		})
	}
}

// BenchmarkKernels sweeps the GEMM-family kernels per backend.
func BenchmarkKernels(b *testing.B) { runCases(b, bench.Kernel(testing.Short())) }

// BenchmarkConvLayers measures Conv2d forward and forward+backward via
// the fused im2col GEMMs.
func BenchmarkConvLayers(b *testing.B) { runCases(b, bench.Conv(testing.Short())) }
