package tensor

import (
	"fmt"
	"math/rand"
	"testing"
)

// BenchmarkMatMul compares the serial reference against the parallel
// backend over square GEMMs. At GOMAXPROCS >= 4 the 512 case is expected
// to run >= 2x faster on the parallel backend; on a single-core host the
// two collapse to the same kernel (ParallelFor runs inline).
func BenchmarkMatMul(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	for _, size := range []int{64, 128, 256, 512} {
		x := Rand(rng, -1, 1, size, size)
		y := Rand(rng, -1, 1, size, size)
		out := New(size, size)
		for _, be := range []Backend{Serial{}, NewParallel(0)} {
			b.Run(fmt.Sprintf("%d/%s", size, be.Name()), func(b *testing.B) {
				b.SetBytes(int64(2 * size * size * size * 4))
				for i := 0; i < b.N; i++ {
					be.MatMulInto(out, x, y)
				}
			})
		}
	}
}

// BenchmarkMatMulTB mirrors BenchmarkMatMul for the a·bᵀ kernel that
// dominates Linear forward passes.
func BenchmarkMatMulTB(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	for _, size := range []int{64, 256} {
		x := Rand(rng, -1, 1, size, size)
		y := Rand(rng, -1, 1, size, size)
		out := New(size, size)
		for _, be := range []Backend{Serial{}, NewParallel(0)} {
			b.Run(fmt.Sprintf("%d/%s", size, be.Name()), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					be.MatMulTBInto(out, x, y)
				}
			})
		}
	}
}

// BenchmarkIm2Col measures the convolution lowering on a mid-sized NCHW
// activation per backend.
func BenchmarkIm2Col(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	x := Rand(rng, -1, 1, 8, 32, 28, 28)
	out := New(32*3*3, 8*28*28)
	for _, be := range []Backend{Serial{}, NewParallel(0)} {
		b.Run(be.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				be.Im2ColInto(out, x, 3, 3, 1, 1)
			}
		})
	}
}
