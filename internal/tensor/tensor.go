// Package tensor provides dense float32 tensors in NCHW layout together
// with the arithmetic kernels needed by the nn package: elementwise ops,
// matrix multiplication, im2col/col2im for convolutions, reductions, and
// random initialization.
//
// Tensors are contiguous row-major arrays. Shape errors are programmer
// errors and panic with a descriptive message, mirroring the behaviour of
// established numeric libraries; all panics originate from exported
// functions whose doc comments state their shape requirements.
package tensor

import (
	"fmt"
	"math"
)

// Tensor is a dense, contiguous, row-major float32 tensor.
// The zero value is an empty tensor with no shape.
type Tensor struct {
	shape []int
	data  []float32
}

// New returns a zero-filled tensor with the given shape.
// All dimensions must be positive.
func New(shape ...int) *Tensor {
	n := checkShape(shape)
	return &Tensor{shape: append([]int(nil), shape...), data: make([]float32, n)}
}

// FromSlice wraps data in a tensor of the given shape. The slice is used
// directly (not copied); len(data) must equal the shape's element count.
func FromSlice(data []float32, shape ...int) *Tensor {
	n := checkShape(shape)
	if len(data) != n {
		panic(fmt.Sprintf("tensor: FromSlice data length %d does not match shape %v (%d elements)", len(data), shape, n))
	}
	return &Tensor{shape: append([]int(nil), shape...), data: data}
}

// Full returns a tensor with every element set to v.
func Full(v float32, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = v
	}
	return t
}

// Ones returns a tensor of ones.
func Ones(shape ...int) *Tensor { return Full(1, shape...) }

func checkShape(shape []int) int {
	if len(shape) == 0 {
		panic("tensor: empty shape")
	}
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dimension in shape %v", shape))
		}
		n *= d
	}
	return n
}

// Shape returns the tensor's shape. The returned slice must not be mutated.
func (t *Tensor) Shape() []int { return t.shape }

// Data returns the backing slice. Mutations are visible to the tensor.
func (t *Tensor) Data() []float32 { return t.data }

// Numel returns the number of elements.
func (t *Tensor) Numel() int { return len(t.data) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// NDim returns the number of dimensions.
func (t *Tensor) NDim() int { return len(t.shape) }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := New(t.shape...)
	copy(c.data, t.data)
	return c
}

// CopyFrom copies src's elements into t. Shapes must have equal element
// counts (shape itself may differ, enabling cheap reshape-copies).
func (t *Tensor) CopyFrom(src *Tensor) {
	if len(t.data) != len(src.data) {
		panic(fmt.Sprintf("tensor: CopyFrom size mismatch %v vs %v", t.shape, src.shape))
	}
	copy(t.data, src.data)
}

// Reshape returns a tensor sharing t's data with a new shape of the same
// element count.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := checkShape(shape)
	if n != len(t.data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (%d elements) to %v (%d elements)", t.shape, len(t.data), shape, n))
	}
	return &Tensor{shape: append([]int(nil), shape...), data: t.data}
}

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float32 { return t.data[t.offset(idx)] }

// Set stores v at the given multi-index.
func (t *Tensor) Set(v float32, idx ...int) { t.data[t.offset(idx)] = v }

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index %v has wrong rank for shape %v", idx, t.shape))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// SameShape reports whether t and o have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.shape) != len(o.shape) {
		return false
	}
	for i := range t.shape {
		if t.shape[i] != o.shape[i] {
			return false
		}
	}
	return true
}

// Zero sets every element to 0.
func (t *Tensor) Zero() {
	for i := range t.data {
		t.data[i] = 0
	}
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.data {
		t.data[i] = v
	}
}

// String renders a compact description (shape plus a few leading values).
func (t *Tensor) String() string {
	const maxShown = 8
	n := len(t.data)
	if n <= maxShown {
		return fmt.Sprintf("Tensor%v%v", t.shape, t.data)
	}
	return fmt.Sprintf("Tensor%v%v...", t.shape, t.data[:maxShown])
}

// AllClose reports whether all elements of t and o differ by at most
// atol + rtol*|o|. Shapes must match exactly.
func (t *Tensor) AllClose(o *Tensor, rtol, atol float64) bool {
	if !t.SameShape(o) {
		return false
	}
	for i := range t.data {
		a, b := float64(t.data[i]), float64(o.data[i])
		if math.IsNaN(a) || math.IsNaN(b) {
			return false
		}
		if math.Abs(a-b) > atol+rtol*math.Abs(b) {
			return false
		}
	}
	return true
}

// Equal reports exact elementwise equality (including shape).
func (t *Tensor) Equal(o *Tensor) bool {
	if !t.SameShape(o) {
		return false
	}
	for i := range t.data {
		if t.data[i] != o.data[i] {
			return false
		}
	}
	return true
}
