package tensor

import (
	"fmt"
	"math"
)

// Elementwise ops route through the process-default Backend; parallel
// backends partition the flat index range, which cannot change results
// because every element is computed independently. Reductions (Sum, Mean,
// MaxAbs, L2Norm) stay serial on every backend: their accumulation order
// is part of the bit-exactness contract.

// Add returns a + b elementwise. Shapes must match.
func Add(a, b *Tensor) *Tensor {
	mustSameShape("Add", a, b)
	out := New(a.shape...)
	Default().Add(out, a, b)
	return out
}

// Sub returns a - b elementwise. Shapes must match.
func Sub(a, b *Tensor) *Tensor {
	mustSameShape("Sub", a, b)
	out := New(a.shape...)
	Default().Sub(out, a, b)
	return out
}

// Mul returns a * b elementwise (Hadamard product). Shapes must match.
func Mul(a, b *Tensor) *Tensor {
	mustSameShape("Mul", a, b)
	out := New(a.shape...)
	Default().Mul(out, a, b)
	return out
}

// Scale returns a * s elementwise.
func Scale(a *Tensor, s float32) *Tensor {
	out := New(a.shape...)
	Default().Scale(out, a, s)
	return out
}

// AddInto accumulates src into dst (dst += src). Shapes must match.
func AddInto(dst, src *Tensor) { Default().Axpy(dst, 1, src) }

// AxpyInto computes dst += alpha*src. Shapes must match.
func AxpyInto(dst *Tensor, alpha float32, src *Tensor) { Default().Axpy(dst, alpha, src) }

// ScaleInPlace multiplies every element of t by s.
func ScaleInPlace(t *Tensor, s float32) { Default().Scale(t, t, s) }

// Sum returns the sum of all elements (accumulated in float64 for
// determinism-friendly precision).
func Sum(t *Tensor) float64 {
	var s float64
	for _, v := range t.data {
		s += float64(v)
	}
	return s
}

// Mean returns the arithmetic mean of all elements.
func Mean(t *Tensor) float64 { return Sum(t) / float64(len(t.data)) }

// MaxAbs returns the largest absolute element value.
func MaxAbs(t *Tensor) float32 {
	var m float32
	for _, v := range t.data {
		a := float32(math.Abs(float64(v)))
		if a > m {
			m = a
		}
	}
	return m
}

// ArgMaxRow returns, for a 2-D tensor, the column index of the maximum in
// each row. Ties resolve to the lowest index.
func ArgMaxRow(t *Tensor) []int {
	if len(t.shape) != 2 {
		panic(fmt.Sprintf("tensor: ArgMaxRow requires 2-D tensor, got shape %v", t.shape))
	}
	rows, cols := t.shape[0], t.shape[1]
	out := make([]int, rows)
	for r := 0; r < rows; r++ {
		best, bestIdx := t.data[r*cols], 0
		for c := 1; c < cols; c++ {
			if v := t.data[r*cols+c]; v > best {
				best, bestIdx = v, c
			}
		}
		out[r] = bestIdx
	}
	return out
}

// Transpose2D returns the transpose of a 2-D tensor.
func Transpose2D(t *Tensor) *Tensor {
	if len(t.shape) != 2 {
		panic(fmt.Sprintf("tensor: Transpose2D requires 2-D tensor, got shape %v", t.shape))
	}
	rows, cols := t.shape[0], t.shape[1]
	out := New(cols, rows)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			out.data[c*rows+r] = t.data[r*cols+c]
		}
	}
	return out
}

// L2Norm returns the Euclidean norm of all elements.
func L2Norm(t *Tensor) float64 {
	var s float64
	for _, v := range t.data {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

func mustSameShape(op string, a, b *Tensor) {
	if !a.SameShape(b) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %v vs %v", op, a.shape, b.shape))
	}
}

// --- index-range kernels -----------------------------------------------------

func addRange(dd, ad, bd []float32, lo, hi int) {
	for i := lo; i < hi; i++ {
		dd[i] = ad[i] + bd[i]
	}
}

func subRange(dd, ad, bd []float32, lo, hi int) {
	for i := lo; i < hi; i++ {
		dd[i] = ad[i] - bd[i]
	}
}

func mulRange(dd, ad, bd []float32, lo, hi int) {
	for i := lo; i < hi; i++ {
		dd[i] = ad[i] * bd[i]
	}
}

func scaleRange(dd, ad []float32, s float32, lo, hi int) {
	for i := lo; i < hi; i++ {
		dd[i] = ad[i] * s
	}
}

func axpyRange(dd, sd []float32, alpha float32, lo, hi int) {
	for i := lo; i < hi; i++ {
		dd[i] += alpha * sd[i]
	}
}
