package tensor

import "fmt"

// The matmul family routes through the process-default Backend (see
// backend.go); the *With variants select a backend explicitly. All
// backends share the row-range kernels at the bottom of this file, so
// every implementation produces bit-identical results: parallel backends
// partition the output-row dimension only, leaving the per-element
// accumulation order untouched.

// MatMul returns the matrix product a·b for 2-D tensors
// (a: [m,k], b: [k,n] -> [m,n]).
func MatMul(a, b *Tensor) *Tensor { return MatMulWith(Default(), a, b) }

// MatMulWith is MatMul on an explicit backend.
func MatMulWith(be Backend, a, b *Tensor) *Tensor {
	m, _, n := matMulDims(a, b)
	out := New(m, n)
	be.MatMulInto(out, a, b)
	return out
}

// MatMulInto computes out = a·b, overwriting out. out must be [m,n].
func MatMulInto(out, a, b *Tensor) { Default().MatMulInto(out, a, b) }

// MatMulTA returns aᵀ·b for 2-D tensors (a: [k,m], b: [k,n] -> [m,n]).
func MatMulTA(a, b *Tensor) *Tensor { return MatMulTAWith(Default(), a, b) }

// MatMulTAWith is MatMulTA on an explicit backend.
func MatMulTAWith(be Backend, a, b *Tensor) *Tensor {
	m, _, n := matMulTADims(a, b)
	out := New(m, n)
	be.MatMulTAInto(out, a, b)
	return out
}

// MatMulTAInto computes out = aᵀ·b, overwriting out. out must be [m,n].
func MatMulTAInto(out, a, b *Tensor) { Default().MatMulTAInto(out, a, b) }

// MatMulTB returns a·bᵀ for 2-D tensors (a: [m,k], b: [n,k] -> [m,n]).
func MatMulTB(a, b *Tensor) *Tensor { return MatMulTBWith(Default(), a, b) }

// MatMulTBWith is MatMulTB on an explicit backend.
func MatMulTBWith(be Backend, a, b *Tensor) *Tensor {
	m, _, n := matMulTBDims(a, b)
	out := New(m, n)
	be.MatMulTBInto(out, a, b)
	return out
}

// MatMulTBInto computes out = a·bᵀ, overwriting out. out must be [m,n].
func MatMulTBInto(out, a, b *Tensor) { Default().MatMulTBInto(out, a, b) }

// --- shape validation --------------------------------------------------------

func matMulDims(a, b *Tensor) (m, k, n int) {
	if len(a.shape) != 2 || len(b.shape) != 2 {
		panic(fmt.Sprintf("tensor: MatMul requires 2-D tensors, got %v and %v", a.shape, b.shape))
	}
	m, k = a.shape[0], a.shape[1]
	if b.shape[0] != k {
		panic(fmt.Sprintf("tensor: MatMul inner dimension mismatch %v x %v", a.shape, b.shape))
	}
	return m, k, b.shape[1]
}

func matMulTADims(a, b *Tensor) (m, k, n int) {
	if len(a.shape) != 2 || len(b.shape) != 2 {
		panic(fmt.Sprintf("tensor: MatMulTA requires 2-D tensors, got %v and %v", a.shape, b.shape))
	}
	k, m = a.shape[0], a.shape[1]
	if b.shape[0] != k {
		panic(fmt.Sprintf("tensor: MatMulTA inner dimension mismatch %v x %v", a.shape, b.shape))
	}
	return m, k, b.shape[1]
}

func matMulTBDims(a, b *Tensor) (m, k, n int) {
	if len(a.shape) != 2 || len(b.shape) != 2 {
		panic(fmt.Sprintf("tensor: MatMulTB requires 2-D tensors, got %v and %v", a.shape, b.shape))
	}
	m, k = a.shape[0], a.shape[1]
	if b.shape[1] != k {
		panic(fmt.Sprintf("tensor: MatMulTB inner dimension mismatch %v x %v", a.shape, b.shape))
	}
	return m, k, b.shape[0]
}

func checkOutShape(op string, out *Tensor, m, n int) {
	if len(out.shape) != 2 || out.shape[0] != m || out.shape[1] != n {
		panic(fmt.Sprintf("tensor: %s output shape %v, want [%d %d]", op, out.shape, m, n))
	}
}

// --- reference kernels -------------------------------------------------------

// The reference kernels define the package's canonical accumulation: for
// every output element, one multiply and one add per reduction index,
// terms in ascending-p order, starting from zero. They are retained both
// as the oracle the packed kernels (gemm.go) are pinned bit-identical to
// and as the fast path for problems too small to amortize packing. All
// take an explicit row range [lo,hi) so both backends partition them
// identically to the old row kernels.

// matMulRowsRef computes rows [lo,hi) of out = a·b with a cache-friendly
// ikj loop (a: [m,k] row-major, b: [k,n] row-major).
func matMulRowsRef(od, ad, bd []float32, k, n, lo, hi int) {
	for i := lo; i < hi; i++ {
		orow := od[i*n : (i+1)*n]
		for j := range orow {
			orow[j] = 0
		}
		arow := ad[i*k : (i+1)*k]
		for p, av := range arow {
			brow := bd[p*n : (p+1)*n]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// matMulTARowsRef computes rows [lo,hi) of out = aᵀ·b (a: [k,m],
// b: [k,n]). Row i of the output reads column i of a.
func matMulTARowsRef(od, ad, bd []float32, k, m, n, lo, hi int) {
	for i := lo; i < hi; i++ {
		orow := od[i*n : (i+1)*n]
		for j := range orow {
			orow[j] = 0
		}
		for p := 0; p < k; p++ {
			av := ad[p*m+i]
			brow := bd[p*n : (p+1)*n]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// matMulTBRowsRef computes rows [lo,hi) of out = a·bᵀ (a: [m,k],
// b: [n,k]) as dense row-dot-row products.
func matMulTBRowsRef(od, ad, bd []float32, k, n, lo, hi int) {
	for i := lo; i < hi; i++ {
		arow := ad[i*k : (i+1)*k]
		orow := od[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := bd[j*k : (j+1)*k]
			var s float32
			for p, av := range arow {
				s += av * brow[p]
			}
			orow[j] = s
		}
	}
}

// --- drivers -----------------------------------------------------------------

// The drivers pick between the reference kernels (small problems) and
// the packed engine, serially (pool == nil) or partitioned over a worker
// pool. Both paths and both schedules produce identical bits.

func matMulDriver(pool *Pool, od, ad, bd []float32, m, k, n int) {
	if !gemmShouldPack(m, k, n) {
		if pool == nil {
			matMulRowsRef(od, ad, bd, k, n, 0, m)
			return
		}
		pool.ParallelFor(m, rowGrain(k*n, gemmGrainFlops), func(lo, hi int) {
			matMulRowsRef(od, ad, bd, k, n, lo, hi)
		})
		return
	}
	gemmRun(pool, od, m, k, n,
		func(bp []float32, pan0, pan1 int) { packBPanels(bp, bd, k, n, pan0, pan1) },
		func(ap []float32, i0, rows, p0, p1 int) { packATile(ap, ad, k, i0, rows, p0, p1) })
}

func matMulTADriver(pool *Pool, od, ad, bd []float32, m, k, n int) {
	if !gemmShouldPack(m, k, n) {
		if pool == nil {
			matMulTARowsRef(od, ad, bd, k, m, n, 0, m)
			return
		}
		pool.ParallelFor(m, rowGrain(k*n, gemmGrainFlops), func(lo, hi int) {
			matMulTARowsRef(od, ad, bd, k, m, n, lo, hi)
		})
		return
	}
	gemmRun(pool, od, m, k, n,
		func(bp []float32, pan0, pan1 int) { packBPanels(bp, bd, k, n, pan0, pan1) },
		func(ap []float32, i0, rows, p0, p1 int) { packATileT(ap, ad, m, i0, rows, p0, p1) })
}

func matMulTBDriver(pool *Pool, od, ad, bd []float32, m, k, n int) {
	if !gemmShouldPack(m, k, n) {
		if pool == nil {
			matMulTBRowsRef(od, ad, bd, k, n, 0, m)
			return
		}
		pool.ParallelFor(m, rowGrain(k*n, gemmGrainFlops), func(lo, hi int) {
			matMulTBRowsRef(od, ad, bd, k, n, lo, hi)
		})
		return
	}
	gemmRun(pool, od, m, k, n,
		func(bp []float32, pan0, pan1 int) { packBPanelsTB(bp, bd, k, n, pan0, pan1) },
		func(ap []float32, i0, rows, p0, p1 int) { packATile(ap, ad, k, i0, rows, p0, p1) })
}
