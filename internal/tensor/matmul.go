package tensor

import "fmt"

// MatMul returns the matrix product a·b for 2-D tensors
// (a: [m,k], b: [k,n] -> [m,n]).
//
// The kernel is a cache-friendly ikj loop; it is deliberately simple and
// dependency-free, adequate for the small models exercised by the numeric
// engine (performance experiments use the analytic simulator instead).
func MatMul(a, b *Tensor) *Tensor {
	if len(a.shape) != 2 || len(b.shape) != 2 {
		panic(fmt.Sprintf("tensor: MatMul requires 2-D tensors, got %v and %v", a.shape, b.shape))
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dimension mismatch %v x %v", a.shape, b.shape))
	}
	out := New(m, n)
	MatMulInto(out, a, b)
	return out
}

// MatMulInto computes out = a·b, overwriting out. out must be [m,n].
func MatMulInto(out, a, b *Tensor) {
	m, k := a.shape[0], a.shape[1]
	n := b.shape[1]
	if out.shape[0] != m || out.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulInto output shape %v, want [%d %d]", out.shape, m, n))
	}
	ad, bd, od := a.data, b.data, out.data
	for i := range od {
		od[i] = 0
	}
	for i := 0; i < m; i++ {
		arow := ad[i*k : (i+1)*k]
		orow := od[i*n : (i+1)*n]
		for p := 0; p < k; p++ {
			av := arow[p]
			if av == 0 {
				continue
			}
			brow := bd[p*n : (p+1)*n]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// MatMulTA returns aᵀ·b for 2-D tensors (a: [k,m], b: [k,n] -> [m,n]).
func MatMulTA(a, b *Tensor) *Tensor {
	if len(a.shape) != 2 || len(b.shape) != 2 {
		panic(fmt.Sprintf("tensor: MatMulTA requires 2-D tensors, got %v and %v", a.shape, b.shape))
	}
	k, m := a.shape[0], a.shape[1]
	if b.shape[0] != k {
		panic(fmt.Sprintf("tensor: MatMulTA inner dimension mismatch %v x %v", a.shape, b.shape))
	}
	n := b.shape[1]
	out := New(m, n)
	ad, bd, od := a.data, b.data, out.data
	for p := 0; p < k; p++ {
		arow := ad[p*m : (p+1)*m]
		brow := bd[p*n : (p+1)*n]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			orow := od[i*n : (i+1)*n]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// MatMulTB returns a·bᵀ for 2-D tensors (a: [m,k], b: [n,k] -> [m,n]).
func MatMulTB(a, b *Tensor) *Tensor {
	if len(a.shape) != 2 || len(b.shape) != 2 {
		panic(fmt.Sprintf("tensor: MatMulTB requires 2-D tensors, got %v and %v", a.shape, b.shape))
	}
	m, k := a.shape[0], a.shape[1]
	if b.shape[1] != k {
		panic(fmt.Sprintf("tensor: MatMulTB inner dimension mismatch %v x %v", a.shape, b.shape))
	}
	n := b.shape[0]
	out := New(m, n)
	ad, bd, od := a.data, b.data, out.data
	for i := 0; i < m; i++ {
		arow := ad[i*k : (i+1)*k]
		for j := 0; j < n; j++ {
			brow := bd[j*k : (j+1)*k]
			var s float32
			for p, av := range arow {
				s += av * brow[p]
			}
			od[i*n+j] = s
		}
	}
	return out
}
