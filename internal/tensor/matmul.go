package tensor

import "fmt"

// The matmul family routes through the process-default Backend (see
// backend.go); the *With variants select a backend explicitly. All
// backends share the row-range kernels at the bottom of this file, so
// every implementation produces bit-identical results: parallel backends
// partition the output-row dimension only, leaving the per-element
// accumulation order untouched.

// MatMul returns the matrix product a·b for 2-D tensors
// (a: [m,k], b: [k,n] -> [m,n]).
func MatMul(a, b *Tensor) *Tensor { return MatMulWith(Default(), a, b) }

// MatMulWith is MatMul on an explicit backend.
func MatMulWith(be Backend, a, b *Tensor) *Tensor {
	m, _, n := matMulDims(a, b)
	out := New(m, n)
	be.MatMulInto(out, a, b)
	return out
}

// MatMulInto computes out = a·b, overwriting out. out must be [m,n].
func MatMulInto(out, a, b *Tensor) { Default().MatMulInto(out, a, b) }

// MatMulTA returns aᵀ·b for 2-D tensors (a: [k,m], b: [k,n] -> [m,n]).
func MatMulTA(a, b *Tensor) *Tensor { return MatMulTAWith(Default(), a, b) }

// MatMulTAWith is MatMulTA on an explicit backend.
func MatMulTAWith(be Backend, a, b *Tensor) *Tensor {
	m, _, n := matMulTADims(a, b)
	out := New(m, n)
	be.MatMulTAInto(out, a, b)
	return out
}

// MatMulTAInto computes out = aᵀ·b, overwriting out. out must be [m,n].
func MatMulTAInto(out, a, b *Tensor) { Default().MatMulTAInto(out, a, b) }

// MatMulTB returns a·bᵀ for 2-D tensors (a: [m,k], b: [n,k] -> [m,n]).
func MatMulTB(a, b *Tensor) *Tensor { return MatMulTBWith(Default(), a, b) }

// MatMulTBWith is MatMulTB on an explicit backend.
func MatMulTBWith(be Backend, a, b *Tensor) *Tensor {
	m, _, n := matMulTBDims(a, b)
	out := New(m, n)
	be.MatMulTBInto(out, a, b)
	return out
}

// MatMulTBInto computes out = a·bᵀ, overwriting out. out must be [m,n].
func MatMulTBInto(out, a, b *Tensor) { Default().MatMulTBInto(out, a, b) }

// --- shape validation --------------------------------------------------------

func matMulDims(a, b *Tensor) (m, k, n int) {
	if len(a.shape) != 2 || len(b.shape) != 2 {
		panic(fmt.Sprintf("tensor: MatMul requires 2-D tensors, got %v and %v", a.shape, b.shape))
	}
	m, k = a.shape[0], a.shape[1]
	if b.shape[0] != k {
		panic(fmt.Sprintf("tensor: MatMul inner dimension mismatch %v x %v", a.shape, b.shape))
	}
	return m, k, b.shape[1]
}

func matMulTADims(a, b *Tensor) (m, k, n int) {
	if len(a.shape) != 2 || len(b.shape) != 2 {
		panic(fmt.Sprintf("tensor: MatMulTA requires 2-D tensors, got %v and %v", a.shape, b.shape))
	}
	k, m = a.shape[0], a.shape[1]
	if b.shape[0] != k {
		panic(fmt.Sprintf("tensor: MatMulTA inner dimension mismatch %v x %v", a.shape, b.shape))
	}
	return m, k, b.shape[1]
}

func matMulTBDims(a, b *Tensor) (m, k, n int) {
	if len(a.shape) != 2 || len(b.shape) != 2 {
		panic(fmt.Sprintf("tensor: MatMulTB requires 2-D tensors, got %v and %v", a.shape, b.shape))
	}
	m, k = a.shape[0], a.shape[1]
	if b.shape[1] != k {
		panic(fmt.Sprintf("tensor: MatMulTB inner dimension mismatch %v x %v", a.shape, b.shape))
	}
	return m, k, b.shape[0]
}

func checkOutShape(op string, out *Tensor, m, n int) {
	if len(out.shape) != 2 || out.shape[0] != m || out.shape[1] != n {
		panic(fmt.Sprintf("tensor: %s output shape %v, want [%d %d]", op, out.shape, m, n))
	}
}

// --- row-range kernels -------------------------------------------------------

// kcBlock tiles the reduction dimension so the active b-panel stays cache
// resident. Tiles ascend, so for any output element the terms are still
// added in ascending-p order — blocking never changes the result bits.
const kcBlock = 256

// matMulRows computes rows [lo,hi) of out = a·b with a cache-friendly
// ikj loop (a: [m,k] row-major, b: [k,n] row-major).
func matMulRows(od, ad, bd []float32, k, n, lo, hi int) {
	for i := lo; i < hi; i++ {
		orow := od[i*n : (i+1)*n]
		for j := range orow {
			orow[j] = 0
		}
	}
	for p0 := 0; p0 < k; p0 += kcBlock {
		p1 := p0 + kcBlock
		if p1 > k {
			p1 = k
		}
		for i := lo; i < hi; i++ {
			arow := ad[i*k : (i+1)*k]
			orow := od[i*n : (i+1)*n]
			for p := p0; p < p1; p++ {
				av := arow[p]
				if av == 0 {
					continue
				}
				brow := bd[p*n : (p+1)*n]
				for j, bv := range brow {
					orow[j] += av * bv
				}
			}
		}
	}
}

// matMulTARows computes rows [lo,hi) of out = aᵀ·b (a: [k,m], b: [k,n]).
// Row i of the output reads column i of a; p ascends for every element,
// matching the serial reference order exactly.
func matMulTARows(od, ad, bd []float32, k, m, n, lo, hi int) {
	for i := lo; i < hi; i++ {
		orow := od[i*n : (i+1)*n]
		for j := range orow {
			orow[j] = 0
		}
		for p := 0; p < k; p++ {
			av := ad[p*m+i]
			if av == 0 {
				continue
			}
			brow := bd[p*n : (p+1)*n]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// matMulTBRows computes rows [lo,hi) of out = a·bᵀ (a: [m,k], b: [n,k])
// as dense row-dot-row products.
func matMulTBRows(od, ad, bd []float32, k, n, lo, hi int) {
	for i := lo; i < hi; i++ {
		arow := ad[i*k : (i+1)*k]
		orow := od[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := bd[j*k : (j+1)*k]
			var s float32
			for p, av := range arow {
				s += av * brow[p]
			}
			orow[j] = s
		}
	}
}
