package tensor

import (
	"math/rand"
	"testing"
)

func TestNewShapeAndZeroFill(t *testing.T) {
	x := New(2, 3, 4)
	if x.Numel() != 24 {
		t.Fatalf("Numel = %d, want 24", x.Numel())
	}
	if x.NDim() != 3 || x.Dim(0) != 2 || x.Dim(1) != 3 || x.Dim(2) != 4 {
		t.Fatalf("bad shape %v", x.Shape())
	}
	for i, v := range x.Data() {
		if v != 0 {
			t.Fatalf("element %d = %v, want 0", i, v)
		}
	}
}

func TestNewPanicsOnBadShape(t *testing.T) {
	for _, shape := range [][]int{{}, {0}, {2, -1}, {3, 0, 4}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%v) did not panic", shape)
				}
			}()
			New(shape...)
		}()
	}
}

func TestFromSlice(t *testing.T) {
	d := []float32{1, 2, 3, 4, 5, 6}
	x := FromSlice(d, 2, 3)
	if x.At(0, 0) != 1 || x.At(1, 2) != 6 {
		t.Fatalf("wrong values: %v", x.Data())
	}
	x.Set(99, 1, 0)
	if d[3] != 99 {
		t.Fatal("FromSlice must alias the provided slice")
	}
}

func TestFromSlicePanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromSlice([]float32{1, 2, 3}, 2, 2)
}

func TestAtSetRoundTrip(t *testing.T) {
	x := New(3, 4, 5)
	x.Set(7.5, 2, 1, 3)
	if got := x.At(2, 1, 3); got != 7.5 {
		t.Fatalf("At = %v, want 7.5", got)
	}
	// Row-major offset check: ((2*4)+1)*5 + 3 = 48.
	if x.Data()[48] != 7.5 {
		t.Fatal("offset computation is not row-major")
	}
}

func TestAtPanicsOutOfRange(t *testing.T) {
	x := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	_ = x.At(0, 2)
}

func TestCloneIndependence(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	y := x.Clone()
	y.Set(100, 0, 0)
	if x.At(0, 0) != 1 {
		t.Fatal("Clone must not alias original data")
	}
	if !x.SameShape(y) {
		t.Fatal("Clone must preserve shape")
	}
}

func TestReshapeSharesData(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	y := x.Reshape(3, 2)
	y.Set(42, 0, 1)
	if x.At(0, 1) != 42 {
		t.Fatal("Reshape must share backing data")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on element-count change")
		}
	}()
	x.Reshape(4, 2)
}

func TestFillZero(t *testing.T) {
	x := Full(3, 2, 2)
	for _, v := range x.Data() {
		if v != 3 {
			t.Fatalf("Full: got %v", v)
		}
	}
	x.Zero()
	for _, v := range x.Data() {
		if v != 0 {
			t.Fatalf("Zero: got %v", v)
		}
	}
	x.Fill(-1)
	if x.At(1, 1) != -1 {
		t.Fatal("Fill failed")
	}
}

func TestEqualAndAllClose(t *testing.T) {
	a := FromSlice([]float32{1, 2}, 2)
	b := FromSlice([]float32{1, 2.00001}, 2)
	if a.Equal(b) {
		t.Fatal("Equal should be exact")
	}
	if !a.AllClose(b, 1e-3, 1e-3) {
		t.Fatal("AllClose should tolerate 1e-5 difference")
	}
	c := FromSlice([]float32{1, 2}, 1, 2)
	if a.Equal(c) || a.AllClose(c, 1, 1) {
		t.Fatal("shape mismatch must not compare equal")
	}
}

func TestCopyFrom(t *testing.T) {
	a := New(2, 3)
	b := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 3, 2)
	a.CopyFrom(b) // same numel, different shape: allowed
	if a.At(1, 2) != 6 {
		t.Fatal("CopyFrom did not copy values")
	}
}

func TestRandDeterminism(t *testing.T) {
	a := Rand(rand.New(rand.NewSource(7)), -1, 1, 3, 3)
	b := Rand(rand.New(rand.NewSource(7)), -1, 1, 3, 3)
	if !a.Equal(b) {
		t.Fatal("Rand with equal seeds must be deterministic")
	}
	c := Rand(rand.New(rand.NewSource(8)), -1, 1, 3, 3)
	if a.Equal(c) {
		t.Fatal("different seeds should give different tensors")
	}
	for _, v := range a.Data() {
		if v < -1 || v >= 1 {
			t.Fatalf("Rand value %v outside [-1,1)", v)
		}
	}
}

func TestRandnMoments(t *testing.T) {
	x := Randn(rand.New(rand.NewSource(1)), 2, 0.5, 100, 100)
	mean := Mean(x)
	if mean < 1.95 || mean > 2.05 {
		t.Fatalf("Randn mean = %v, want ~2", mean)
	}
	var varSum float64
	for _, v := range x.Data() {
		d := float64(v) - mean
		varSum += d * d
	}
	std := varSum / float64(x.Numel())
	if std < 0.2 || std > 0.3 {
		t.Fatalf("Randn variance = %v, want ~0.25", std)
	}
}

func TestStringCompact(t *testing.T) {
	small := FromSlice([]float32{1, 2}, 2)
	if small.String() == "" {
		t.Fatal("String should not be empty")
	}
	big := New(100)
	s := big.String()
	if len(s) > 200 {
		t.Fatalf("String for big tensor too long: %d chars", len(s))
	}
}
