package tensor

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// parallelVariants returns parallel backends with worker counts chosen to
// exercise awkward partitions: more workers than rows, row counts not
// divisible by the worker count, and the shared GOMAXPROCS pool.
func parallelVariants() []*Parallel {
	return []*Parallel{NewParallel(0), NewParallel(2), NewParallel(3), NewParallel(7)}
}

// TestMatMulFamilyBackendParity is the backend contract test: for every
// GEMM variant and a table of deliberately odd shapes — 1×N, N×1, primes,
// rows not divisible by any worker count — the parallel backend must be
// bit-identical to the serial reference.
func TestMatMulFamilyBackendParity(t *testing.T) {
	shapes := []struct{ m, k, n int }{
		{1, 1, 1},
		{1, 7, 5},
		{7, 1, 5},
		{5, 7, 1},
		{3, 5, 4},
		{13, 11, 17},
		{64, 64, 64},
		{65, 33, 29}, // odd everything
		{129, 300, 31},
		{2, 1024, 3}, // deep reduction exercises kc blocking
	}
	rng := rand.New(rand.NewSource(1))
	for _, s := range shapes {
		a := Rand(rng, -1, 1, s.m, s.k)
		b := Rand(rng, -1, 1, s.k, s.n)
		// Sparsify a few entries so exact-zero terms are exercised.
		a.Data()[0] = 0
		if s.m*s.k > 3 {
			a.Data()[3] = 0
		}
		aT := Transpose2D(a) // [k, m]
		bT := Transpose2D(b) // [n, k]

		ref := MatMulWith(Serial{}, a, b)
		refTA := MatMulTAWith(Serial{}, aT, b)
		refTB := MatMulTBWith(Serial{}, a, bT)
		for _, p := range parallelVariants() {
			label := fmt.Sprintf("m=%d k=%d n=%d workers=%d", s.m, s.k, s.n, p.Workers())
			if got := MatMulWith(p, a, b); !got.Equal(ref) {
				t.Errorf("MatMul not bit-identical to serial (%s)", label)
			}
			if got := MatMulTAWith(p, aT, b); !got.Equal(refTA) {
				t.Errorf("MatMulTA not bit-identical to serial (%s)", label)
			}
			if got := MatMulTBWith(p, a, bT); !got.Equal(refTB) {
				t.Errorf("MatMulTB not bit-identical to serial (%s)", label)
			}
		}
	}
}

// TestMatMulTransposedAgreement pins the refactored TA/TB kernels to the
// plain MatMul on explicitly transposed operands.
func TestMatMulTransposedAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := Rand(rng, -1, 1, 9, 6)
	b := Rand(rng, -1, 1, 6, 11)
	want := MatMul(a, b)
	if got := MatMulTA(Transpose2D(a), b); !got.AllClose(want, 1e-6, 1e-6) {
		t.Fatal("MatMulTA(aᵀ, b) disagrees with MatMul(a, b)")
	}
	if got := MatMulTB(a, Transpose2D(b)); !got.AllClose(want, 1e-6, 1e-6) {
		t.Fatal("MatMulTB(a, bᵀ) disagrees with MatMul(a, b)")
	}
}

// TestIm2ColCol2ImBackendParity checks the convolution lowering kernels
// across geometry corner cases (pad 0/1/2, stride 1/2, 1×1 kernels,
// single-channel and channel counts not divisible by worker counts).
func TestIm2ColCol2ImBackendParity(t *testing.T) {
	cases := []struct{ n, c, h, w, k, stride, pad int }{
		{1, 1, 5, 5, 3, 1, 1},
		{2, 3, 8, 8, 3, 1, 1},
		{2, 5, 7, 9, 3, 2, 1},
		{1, 7, 6, 6, 1, 1, 0},
		{3, 4, 11, 5, 5, 2, 2},
	}
	rng := rand.New(rand.NewSource(3))
	for _, cse := range cases {
		x := Rand(rng, -1, 1, cse.n, cse.c, cse.h, cse.w)
		refCols := Im2ColWith(Serial{}, x, cse.k, cse.k, cse.stride, cse.pad)
		refBack := Col2ImWith(Serial{}, refCols, cse.n, cse.c, cse.h, cse.w, cse.k, cse.k, cse.stride, cse.pad)
		for _, p := range parallelVariants() {
			label := fmt.Sprintf("%+v workers=%d", cse, p.Workers())
			cols := Im2ColWith(p, x, cse.k, cse.k, cse.stride, cse.pad)
			if !cols.Equal(refCols) {
				t.Errorf("Im2Col not bit-identical to serial (%s)", label)
			}
			back := Col2ImWith(p, cols, cse.n, cse.c, cse.h, cse.w, cse.k, cse.k, cse.stride, cse.pad)
			if !back.Equal(refBack) {
				t.Errorf("Col2Im not bit-identical to serial (%s)", label)
			}
		}
	}
}

// TestElementwiseBackendParity covers the elementwise interface surface,
// including dst aliasing an operand.
func TestElementwiseBackendParity(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := Rand(rng, -2, 2, 13, 7)
	b := Rand(rng, -2, 2, 13, 7)
	for _, p := range parallelVariants() {
		for name, run := range map[string]func(be Backend) *Tensor{
			"Add": func(be Backend) *Tensor { out := New(13, 7); be.Add(out, a, b); return out },
			"Sub": func(be Backend) *Tensor { out := New(13, 7); be.Sub(out, a, b); return out },
			"Mul": func(be Backend) *Tensor { out := New(13, 7); be.Mul(out, a, b); return out },
			"Scale": func(be Backend) *Tensor {
				out := a.Clone()
				be.Scale(out, out, -1.5) // aliased dst
				return out
			},
			"Axpy": func(be Backend) *Tensor {
				out := a.Clone()
				be.Axpy(out, 0.25, b)
				return out
			},
		} {
			want, got := run(Serial{}), run(p)
			if !got.Equal(want) {
				t.Errorf("%s not bit-identical to serial (workers=%d)", name, p.Workers())
			}
		}
	}
}

// TestBackendRegistry checks the registry plumbing used by the -backend
// flag and engine.Config.
func TestBackendRegistry(t *testing.T) {
	for _, name := range []string{"serial", "parallel"} {
		be, ok := Lookup(name)
		if !ok || be.Name() != name {
			t.Fatalf("Lookup(%q) = %v, %v", name, be, ok)
		}
	}
	if _, ok := Lookup("no-such-backend"); ok {
		t.Fatal("Lookup of unregistered backend succeeded")
	}
	if Default() == nil {
		t.Fatal("no default backend")
	}
}

// TestParallelForCoversRange checks the chunk queue visits every index
// exactly once for sizes around the chunking boundaries.
func TestParallelForCoversRange(t *testing.T) {
	pool := NewPool(4)
	for _, n := range []int{0, 1, 2, 3, 7, 16, 17, 101, 1000} {
		var mu sync.Mutex
		seen := make([]int, n)
		pool.ParallelFor(n, 2, func(lo, hi int) {
			if lo < 0 || hi > n || lo >= hi {
				t.Errorf("n=%d: bad chunk [%d,%d)", n, lo, hi)
			}
			mu.Lock()
			for i := lo; i < hi; i++ {
				seen[i]++
			}
			mu.Unlock()
		})
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, c)
			}
		}
	}
}

// TestParallelForConcurrentCallers drives one pool from many goroutines
// at once, the shape of load the pipelined engine generates. Run under
// -race this also proves submission is properly synchronized.
func TestParallelForConcurrentCallers(t *testing.T) {
	pool := NewPool(3)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 50; iter++ {
				n := 64
				out := make([]int, n)
				pool.ParallelFor(n, 4, func(lo, hi int) {
					for i := lo; i < hi; i++ {
						out[i] = i * i
					}
				})
				for i := range out {
					if out[i] != i*i {
						t.Errorf("lost update at %d", i)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

// TestArenaReuse checks that released buffers are recycled (same backing
// array) and that shape bookkeeping survives the round trip.
func TestArenaReuse(t *testing.T) {
	ar := NewArena()
	a := ar.Get(4, 6)
	a.Fill(3)
	ar.Release(a)
	b := ar.Get(6, 4) // same element count, different shape
	if &b.Data()[0] != &a.Data()[0] {
		t.Fatal("arena did not recycle the released buffer")
	}
	if b.Dim(0) != 6 || b.Dim(1) != 4 {
		t.Fatalf("recycled tensor has shape %v, want [6 4]", b.Shape())
	}
	z := ar.GetZeroed(6, 4)
	for _, v := range z.Data() {
		if v != 0 {
			t.Fatal("GetZeroed returned dirty buffer")
		}
	}
	ar.Release(nil, b) // nil entries must be ignored
	if got := ar.Get(2, 12); &got.Data()[0] != &b.Data()[0] {
		t.Fatal("release after nil entry was dropped")
	}
}
