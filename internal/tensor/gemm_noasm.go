//go:build !amd64

package tensor

// asmMicroAvailable reports that this build has an assembly microkernel.
const asmMicroAvailable = false

// useAsmMicro mirrors the amd64 toggle so shared tests compile; without
// an assembly microkernel it stays false.
var useAsmMicro = false

// microKernel computes one full mrTile×nrTile tile from packed strips
// using the portable generic kernel.
func microKernel(od []float32, ldo int, ap, bp []float32, pc int, accumulate bool) {
	microGeneric(od, ldo, ap, bp, pc, mrTile, nrTile, accumulate)
}
