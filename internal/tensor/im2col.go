package tensor

import "fmt"

// ConvOutSize returns the spatial output size of a convolution with the
// given input size, kernel, stride and symmetric padding.
func ConvOutSize(in, kernel, stride, pad int) int {
	return (in+2*pad-kernel)/stride + 1
}

// Im2Col unfolds an NCHW input into a matrix of shape
// [C*KH*KW, N*OH*OW] so that a convolution becomes a single matrix
// multiplication with a [Cout, C*KH*KW] weight matrix.
//
// Padding is zero-padding; stride applies to both spatial dimensions.
func Im2Col(x *Tensor, kh, kw, stride, pad int) *Tensor {
	return Im2ColWith(Default(), x, kh, kw, stride, pad)
}

// Im2ColWith is Im2Col on an explicit backend.
func Im2ColWith(be Backend, x *Tensor, kh, kw, stride, pad int) *Tensor {
	n, c, oh, ow := im2ColDims(x, kh, kw, stride, pad)
	out := New(c*kh*kw, n*oh*ow)
	be.Im2ColInto(out, x, kh, kw, stride, pad)
	return out
}

// Im2ColInto unfolds x into out, which must be [C*KH*KW, N*OH*OW]. The
// whole buffer is overwritten (padding positions are zeroed), so out may
// be recycled scratch.
func Im2ColInto(out, x *Tensor, kh, kw, stride, pad int) {
	Default().Im2ColInto(out, x, kh, kw, stride, pad)
}

// Col2Im folds a [C*KH*KW, N*OH*OW] column matrix back into an NCHW tensor
// of the given input geometry, accumulating overlapping contributions.
// It is the adjoint of Im2Col and is used by convolution backward passes.
func Col2Im(cols *Tensor, n, c, h, w, kh, kw, stride, pad int) *Tensor {
	return Col2ImWith(Default(), cols, n, c, h, w, kh, kw, stride, pad)
}

// Col2ImWith is Col2Im on an explicit backend.
func Col2ImWith(be Backend, cols *Tensor, n, c, h, w, kh, kw, stride, pad int) *Tensor {
	checkCol2Im(cols, n, c, h, w, kh, kw, stride, pad)
	out := New(n, c, h, w)
	be.Col2ImInto(out, cols, kh, kw, stride, pad)
	return out
}

// Col2ImInto folds cols into out (NCHW), overwriting it. cols must be
// [C*KH*KW, N*OH*OW] for out's geometry.
func Col2ImInto(out, cols *Tensor, kh, kw, stride, pad int) {
	Default().Col2ImInto(out, cols, kh, kw, stride, pad)
}

// --- shape validation --------------------------------------------------------

func im2ColDims(x *Tensor, kh, kw, stride, pad int) (n, c, oh, ow int) {
	if len(x.shape) != 4 {
		panic(fmt.Sprintf("tensor: Im2Col requires NCHW tensor, got shape %v", x.shape))
	}
	n, c = x.shape[0], x.shape[1]
	h, w := x.shape[2], x.shape[3]
	oh = ConvOutSize(h, kh, stride, pad)
	ow = ConvOutSize(w, kw, stride, pad)
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("tensor: Im2Col produces empty output for input %v kernel %dx%d stride %d pad %d", x.shape, kh, kw, stride, pad))
	}
	return n, c, oh, ow
}

func checkIm2ColOut(out, x *Tensor, kh, kw, stride, pad int) (n, c, h, w, oh, ow int) {
	n, c, oh, ow = im2ColDims(x, kh, kw, stride, pad)
	h, w = x.shape[2], x.shape[3]
	if len(out.shape) != 2 || out.shape[0] != c*kh*kw || out.shape[1] != n*oh*ow {
		panic(fmt.Sprintf("tensor: Im2ColInto output shape %v, want [%d %d]", out.shape, c*kh*kw, n*oh*ow))
	}
	return n, c, h, w, oh, ow
}

func checkCol2Im(cols *Tensor, n, c, h, w, kh, kw, stride, pad int) (oh, ow int) {
	oh = ConvOutSize(h, kh, stride, pad)
	ow = ConvOutSize(w, kw, stride, pad)
	wantRows, wantCols := c*kh*kw, n*oh*ow
	if len(cols.shape) != 2 || cols.shape[0] != wantRows || cols.shape[1] != wantCols {
		panic(fmt.Sprintf("tensor: Col2Im input shape %v, want [%d %d]", cols.shape, wantRows, wantCols))
	}
	return oh, ow
}

// --- fused conv GEMMs --------------------------------------------------------

// convGeom is the geometry of one im2col lowering: the virtual column
// matrix has K = c*kh*kw rows and S = n*oh*ow columns.
type convGeom struct {
	n, c, h, w, oh, ow, kh, kw, stride, pad int
}

func (g convGeom) colRows() int { return g.c * g.kh * g.kw }
func (g convGeom) colCols() int { return g.n * g.oh * g.ow }

// at returns the column-matrix element (row p, column j): the input value
// under kernel tap p at output position j, zero in the padding. It is the
// scalar definition the fused packers below gather with, and the oracle
// the fusion tests compare against.
func (g convGeom) at(xd []float32, p, j int) float32 {
	kj := p % g.kw
	ki := (p / g.kw) % g.kh
	ci := p / (g.kw * g.kh)
	oj := j % g.ow
	oi := (j / g.ow) % g.oh
	ni := j / (g.ow * g.oh)
	ih := oi*g.stride - g.pad + ki
	iw := oj*g.stride - g.pad + kj
	if ih < 0 || ih >= g.h || iw < 0 || iw >= g.w {
		return 0
	}
	return xd[((ni*g.c+ci)*g.h+ih)*g.w+iw]
}

func checkConvForward(out, w, x *Tensor, kh, kw, stride, pad int) (g convGeom, m, k, n int) {
	gn, c, oh, ow := im2ColDims(x, kh, kw, stride, pad)
	g = convGeom{n: gn, c: c, h: x.shape[2], w: x.shape[3], oh: oh, ow: ow,
		kh: kh, kw: kw, stride: stride, pad: pad}
	k, n = g.colRows(), g.colCols()
	if len(w.shape) != 2 || w.shape[1] != k {
		panic(fmt.Sprintf("tensor: ConvForwardInto weight shape %v, want [*, %d]", w.shape, k))
	}
	m = w.shape[0]
	checkOutShape("ConvForwardInto", out, m, n)
	return g, m, k, n
}

func checkConvGradWeight(out, gr, x *Tensor, kh, kw, stride, pad int) (g convGeom, m, k, n int) {
	gn, c, oh, ow := im2ColDims(x, kh, kw, stride, pad)
	g = convGeom{n: gn, c: c, h: x.shape[2], w: x.shape[3], oh: oh, ow: ow,
		kh: kh, kw: kw, stride: stride, pad: pad}
	// The dW GEMM is grad·colsᵀ: reduction over the S output positions,
	// output columns over the K kernel taps.
	k, n = g.colCols(), g.colRows()
	if len(gr.shape) != 2 || gr.shape[1] != k {
		panic(fmt.Sprintf("tensor: ConvGradWeightInto grad shape %v, want [*, %d]", gr.shape, k))
	}
	m = gr.shape[0]
	checkOutShape("ConvGradWeightInto", out, m, n)
	return g, m, k, n
}

// im2colPackPanels packs panels [pan0,pan1) of the virtual column matrix
// straight from the NCHW input — the fused replacement for materializing
// im2col output and re-packing it. Produces exactly the values
// packBPanels would produce from a materialized column matrix.
func im2colPackPanels(bp, xd []float32, g convGeom, pan0, pan1 int) {
	K, S := g.colRows(), g.colCols()
	for pan := pan0; pan < pan1; pan++ {
		j0 := pan * nrTile
		w := min(nrTile, S-j0)
		dst := bp[pan*K*nrTile : (pan+1)*K*nrTile]
		// Decode the panel's output positions once. A panel whose every
		// position has its full kh×kw window inside the input (the vast
		// majority away from the padded border) takes a check-free path.
		var ni, ihBase, iwBase [nrTile]int
		interior := true
		for c := 0; c < w; c++ {
			j := j0 + c
			oj := j % g.ow
			oi := (j / g.ow) % g.oh
			ni[c] = j / (g.ow * g.oh)
			ihBase[c] = oi*g.stride - g.pad
			iwBase[c] = oj*g.stride - g.pad
			if ihBase[c] < 0 || ihBase[c]+g.kh > g.h || iwBase[c] < 0 || iwBase[c]+g.kw > g.w {
				interior = false
			}
		}
		p := 0
		var base [nrTile]int
		for ci := 0; ci < g.c; ci++ {
			for c := 0; c < w; c++ {
				base[c] = ((ni[c]*g.c+ci)*g.h+ihBase[c])*g.w + iwBase[c]
			}
			for ki := 0; ki < g.kh; ki++ {
				for kj := 0; kj < g.kw; kj++ {
					d := dst[p*nrTile : (p+1)*nrTile]
					if interior {
						off := ki*g.w + kj
						for c := 0; c < w; c++ {
							d[c] = xd[base[c]+off]
						}
					} else {
						for c := 0; c < w; c++ {
							ih := ihBase[c] + ki
							iw := iwBase[c] + kj
							if ih < 0 || ih >= g.h || iw < 0 || iw >= g.w {
								d[c] = 0
								continue
							}
							d[c] = xd[base[c]+ki*g.w+kj]
						}
					}
					for c := w; c < nrTile; c++ {
						d[c] = 0
					}
					p++
				}
			}
		}
	}
}

// im2colPackPanelsT packs panels of the column matrix's transpose-as-TB
// operand for the dW GEMM: panel row j is kernel tap j, element (p, c) is
// the column-matrix value at (tap j0+c, output position p). Equivalent to
// packBPanelsTB over a materialized column matrix.
func im2colPackPanelsT(bp, xd []float32, g convGeom, pan0, pan1 int) {
	K, S := g.colRows(), g.colCols()
	for pan := pan0; pan < pan1; pan++ {
		j0 := pan * nrTile
		w := min(nrTile, K-j0)
		dst := bp[pan*S*nrTile : (pan+1)*S*nrTile]
		// Decode the panel's kernel taps once; off[c] is each tap's flat
		// offset from the window origin within one image.
		var ci, ki, kj, off [nrTile]int
		for c := 0; c < w; c++ {
			j := j0 + c
			kj[c] = j % g.kw
			ki[c] = (j / g.kw) % g.kh
			ci[c] = j / (g.kw * g.kh)
			off[c] = ci[c]*g.h*g.w + ki[c]*g.w + kj[c]
		}
		// Walk output positions with running counters (ascending p). A
		// position whose full window is interior needs no per-tap checks.
		oj, oi, ni := 0, 0, 0
		for p := 0; p < S; p++ {
			d := dst[p*nrTile : (p+1)*nrTile]
			ihB := oi*g.stride - g.pad
			iwB := oj*g.stride - g.pad
			if ihB >= 0 && ihB+g.kh <= g.h && iwB >= 0 && iwB+g.kw <= g.w {
				base := ni*g.c*g.h*g.w + ihB*g.w + iwB
				for c := 0; c < w; c++ {
					d[c] = xd[base+off[c]]
				}
			} else {
				for c := 0; c < w; c++ {
					ih := ihB + ki[c]
					iw := iwB + kj[c]
					if ih < 0 || ih >= g.h || iw < 0 || iw >= g.w {
						d[c] = 0
						continue
					}
					d[c] = xd[((ni*g.c+ci[c])*g.h+ih)*g.w+iw]
				}
			}
			for c := w; c < nrTile; c++ {
				d[c] = 0
			}
			if oj++; oj == g.ow {
				oj = 0
				if oi++; oi == g.oh {
					oi = 0
					ni++
				}
			}
		}
	}
}

// convForwardDriver computes out = w·im2col(x) without materializing the
// column matrix on the packed path; small problems materialize into
// recycled scratch and run the reference GEMM. Identical bits either way.
func convForwardDriver(pool *Pool, od, wd, xd []float32, g convGeom, m, k, n int) {
	if !gemmShouldPack(m, k, n) {
		ar := getPackArena()
		cols := ar.Get(k, n)
		im2colRows(cols.data, xd, g.n, g.c, g.h, g.w, g.kh, g.kw, g.oh, g.ow, g.stride, g.pad, 0, k)
		if pool == nil {
			matMulRowsRef(od, wd, cols.data, k, n, 0, m)
		} else {
			pool.ParallelFor(m, rowGrain(k*n, gemmGrainFlops), func(lo, hi int) {
				matMulRowsRef(od, wd, cols.data, k, n, lo, hi)
			})
		}
		ar.Release(cols)
		putPackArena(ar)
		return
	}
	gemmRun(pool, od, m, k, n,
		func(bp []float32, pan0, pan1 int) { im2colPackPanels(bp, xd, g, pan0, pan1) },
		func(ap []float32, i0, rows, p0, p1 int) { packATile(ap, wd, k, i0, rows, p0, p1) })
}

// convGradWeightDriver computes out = grad·im2col(x)ᵀ, likewise fused.
func convGradWeightDriver(pool *Pool, od, gd, xd []float32, g convGeom, m, k, n int) {
	if !gemmShouldPack(m, k, n) {
		ar := getPackArena()
		cols := ar.Get(n, k) // [K, S]: the TB operand's natural layout
		im2colRows(cols.data, xd, g.n, g.c, g.h, g.w, g.kh, g.kw, g.oh, g.ow, g.stride, g.pad, 0, n)
		if pool == nil {
			matMulTBRowsRef(od, gd, cols.data, k, n, 0, m)
		} else {
			pool.ParallelFor(m, rowGrain(k*n, gemmGrainFlops), func(lo, hi int) {
				matMulTBRowsRef(od, gd, cols.data, k, n, lo, hi)
			})
		}
		ar.Release(cols)
		putPackArena(ar)
		return
	}
	gemmRun(pool, od, m, k, n,
		func(bp []float32, pan0, pan1 int) { im2colPackPanelsT(bp, xd, g, pan0, pan1) },
		func(ap []float32, i0, rows, p0, p1 int) { packATile(ap, gd, k, i0, rows, p0, p1) })
}

// --- range kernels -----------------------------------------------------------

// im2colRows fills output rows [lo,hi) of the column matrix. Each row is
// owned by exactly one (channel, kernel-offset) triple, so row ranges are
// disjoint and safe to fill in parallel.
func im2colRows(od, xd []float32, n, c, h, w, kh, kw, oh, ow, stride, pad, lo, hi int) {
	cols := n * oh * ow
	for row := lo; row < hi; row++ {
		kj := row % kw
		ki := (row / kw) % kh
		ci := row / (kw * kh)
		base := row * cols
		orow := od[base : base+cols]
		for i := range orow {
			orow[i] = 0
		}
		for ni := 0; ni < n; ni++ {
			inBase := (ni*c + ci) * h * w
			for oi := 0; oi < oh; oi++ {
				ih := oi*stride - pad + ki
				outBase := base + (ni*oh+oi)*ow
				if ih < 0 || ih >= h {
					continue // row already zeroed
				}
				inRow := inBase + ih*w
				for oj := 0; oj < ow; oj++ {
					iw := oj*stride - pad + kj
					if iw < 0 || iw >= w {
						continue
					}
					od[outBase+oj] = xd[inRow+iw]
				}
			}
		}
	}
}

// col2imChannels folds input channels [lo,hi) of the column matrix back
// into the NCHW output. Overlapping kernel taps only ever accumulate
// within one input channel, so partitioning along C keeps every output
// element owned by a single range — and the (ki,kj,ni,oi,oj) accumulation
// order inside a channel matches the serial reference exactly.
func col2imChannels(od, cd []float32, n, c, h, w, kh, kw, oh, ow, stride, pad, lo, hi int) {
	total := n * oh * ow
	for ci := lo; ci < hi; ci++ {
		for ni := 0; ni < n; ni++ {
			base := (ni*c + ci) * h * w
			blk := od[base : base+h*w]
			for i := range blk {
				blk[i] = 0
			}
		}
		for ki := 0; ki < kh; ki++ {
			for kj := 0; kj < kw; kj++ {
				row := ((ci*kh)+ki)*kw + kj
				rowBase := row * total
				for ni := 0; ni < n; ni++ {
					outBase := (ni*c + ci) * h * w
					for oi := 0; oi < oh; oi++ {
						ih := oi*stride - pad + ki
						if ih < 0 || ih >= h {
							continue
						}
						colBase := rowBase + (ni*oh+oi)*ow
						outRow := outBase + ih*w
						for oj := 0; oj < ow; oj++ {
							iw := oj*stride - pad + kj
							if iw < 0 || iw >= w {
								continue
							}
							od[outRow+iw] += cd[colBase+oj]
						}
					}
				}
			}
		}
	}
}
