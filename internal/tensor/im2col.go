package tensor

import "fmt"

// ConvOutSize returns the spatial output size of a convolution with the
// given input size, kernel, stride and symmetric padding.
func ConvOutSize(in, kernel, stride, pad int) int {
	return (in+2*pad-kernel)/stride + 1
}

// Im2Col unfolds an NCHW input into a matrix of shape
// [C*KH*KW, N*OH*OW] so that a convolution becomes a single matrix
// multiplication with a [Cout, C*KH*KW] weight matrix.
//
// Padding is zero-padding; stride applies to both spatial dimensions.
func Im2Col(x *Tensor, kh, kw, stride, pad int) *Tensor {
	if len(x.shape) != 4 {
		panic(fmt.Sprintf("tensor: Im2Col requires NCHW tensor, got shape %v", x.shape))
	}
	n, c, h, w := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	oh := ConvOutSize(h, kh, stride, pad)
	ow := ConvOutSize(w, kw, stride, pad)
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("tensor: Im2Col produces empty output for input %v kernel %dx%d stride %d pad %d", x.shape, kh, kw, stride, pad))
	}
	out := New(c*kh*kw, n*oh*ow)
	xd, od := x.data, out.data
	cols := n * oh * ow
	for ci := 0; ci < c; ci++ {
		for ki := 0; ki < kh; ki++ {
			for kj := 0; kj < kw; kj++ {
				row := ((ci*kh)+ki)*kw + kj
				base := row * cols
				for ni := 0; ni < n; ni++ {
					inBase := (ni*c + ci) * h * w
					for oi := 0; oi < oh; oi++ {
						ih := oi*stride - pad + ki
						outBase := base + (ni*oh+oi)*ow
						if ih < 0 || ih >= h {
							continue // output already zero
						}
						inRow := inBase + ih*w
						for oj := 0; oj < ow; oj++ {
							iw := oj*stride - pad + kj
							if iw < 0 || iw >= w {
								continue
							}
							od[outBase+oj] = xd[inRow+iw]
						}
					}
				}
			}
		}
	}
	return out
}

// Col2Im folds a [C*KH*KW, N*OH*OW] column matrix back into an NCHW tensor
// of the given input geometry, accumulating overlapping contributions.
// It is the adjoint of Im2Col and is used by convolution backward passes.
func Col2Im(cols *Tensor, n, c, h, w, kh, kw, stride, pad int) *Tensor {
	oh := ConvOutSize(h, kh, stride, pad)
	ow := ConvOutSize(w, kw, stride, pad)
	wantRows, wantCols := c*kh*kw, n*oh*ow
	if len(cols.shape) != 2 || cols.shape[0] != wantRows || cols.shape[1] != wantCols {
		panic(fmt.Sprintf("tensor: Col2Im input shape %v, want [%d %d]", cols.shape, wantRows, wantCols))
	}
	out := New(n, c, h, w)
	cd, od := cols.data, out.data
	total := wantCols
	for ci := 0; ci < c; ci++ {
		for ki := 0; ki < kh; ki++ {
			for kj := 0; kj < kw; kj++ {
				row := ((ci*kh)+ki)*kw + kj
				base := row * total
				for ni := 0; ni < n; ni++ {
					outBase := (ni*c + ci) * h * w
					for oi := 0; oi < oh; oi++ {
						ih := oi*stride - pad + ki
						if ih < 0 || ih >= h {
							continue
						}
						colBase := base + (ni*oh+oi)*ow
						outRow := outBase + ih*w
						for oj := 0; oj < ow; oj++ {
							iw := oj*stride - pad + kj
							if iw < 0 || iw >= w {
								continue
							}
							od[outRow+iw] += cd[colBase+oj]
						}
					}
				}
			}
		}
	}
	return out
}
